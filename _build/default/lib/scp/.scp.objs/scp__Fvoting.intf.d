lib/scp/fvoting.mli: Fbqs Graphkit Pid Statement
