lib/cup/local_slices.mli: Fbqs Graphkit Participant_detector Pid
