lib/cup/knowledge.ml: Graphkit Hashtbl Msg Option Pid
