open Graphkit

let test_fig1_metrics () =
  let m = Metrics.compute Builtin.fig1 in
  Alcotest.(check int) "vertices" 8 m.vertices;
  Alcotest.(check int) "edges" 18 m.edges;
  Alcotest.(check int) "min out-degree" 1 m.min_out_degree;
  Alcotest.(check int) "max out-degree" 3 m.max_out_degree;
  Alcotest.(check (option int)) "sink size" (Some 4) m.sink_size;
  Alcotest.(check int) "sccs: 4 singletons + sink" 5 m.scc_count

let test_complete_graph_metrics () =
  let m = Metrics.compute (Generators.complete ~n:5) in
  Alcotest.(check int) "edges" 20 m.edges;
  Alcotest.(check (float 0.001)) "density 1.0" 1.0 m.density;
  Alcotest.(check (option int)) "diameter 1" (Some 1) m.diameter;
  Alcotest.(check int) "one scc" 1 m.scc_count

let test_chain_metrics () =
  let m = Metrics.compute (Digraph.of_edges [ (1, 2); (2, 3); (3, 4) ]) in
  Alcotest.(check (option int)) "diameter 3" (Some 3) m.diameter;
  Alcotest.(check int) "min out-degree 0 (tail)" 0 m.min_out_degree;
  Alcotest.(check (option int)) "sink is {4}" (Some 1) m.sink_size

let test_degenerate () =
  let m = Metrics.compute Digraph.empty in
  Alcotest.(check int) "no vertices" 0 m.vertices;
  Alcotest.(check (option int)) "no diameter" None m.diameter;
  let m1 = Metrics.compute (Digraph.add_vertex 1 Digraph.empty) in
  Alcotest.(check int) "one vertex" 1 m1.vertices;
  Alcotest.(check (option int)) "single vertex sink" (Some 1) m1.sink_size

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "fig1" `Quick test_fig1_metrics;
        Alcotest.test_case "complete graph" `Quick test_complete_graph_metrics;
        Alcotest.test_case "chain" `Quick test_chain_metrics;
        Alcotest.test_case "degenerate graphs" `Quick test_degenerate;
      ] );
  ]
