(* Reachability on the compiled CSR kernel: one int-array BFS (dense
   queue + distance array) replaces the seed's set-union frontier
   expansion. The seed implementations are kept as the negative-pid
   fallback and as qcheck baselines. Layers, distances and reachable
   sets are canonical values, so both paths agree exactly. *)

(* ---- seed implementations (baseline + negative-pid fallback) --------- *)

let bfs_layers_baseline g src =
  if not (Digraph.mem_vertex src g) then []
  else
    let rec go seen frontier layers =
      if Pid.Set.is_empty frontier then List.rev layers
      else
        let next =
          Pid.Set.fold
            (fun i acc -> Pid.Set.union acc (Digraph.succs g i))
            frontier Pid.Set.empty
        in
        let next = Pid.Set.diff next seen in
        go (Pid.Set.union seen next) next
          (if Pid.Set.is_empty next then layers else next :: layers)
    in
    let start = Pid.Set.singleton src in
    go start start [ start ]

let reachable_baseline g src =
  List.fold_left Pid.Set.union Pid.Set.empty (bfs_layers_baseline g src)

let is_connected_undirected_baseline g =
  match Pid.Set.choose_opt (Digraph.vertices g) with
  | None -> true
  | Some v ->
      let u = Digraph.undirected g in
      Pid.Set.equal (reachable_baseline u v) (Digraph.vertices g)

(* ---- CSR kernels ------------------------------------------------------ *)

(* Distance array for a BFS from dense vertex [s]; [-1] marks
   unreached. The queue is a plain int array cursor pair — no
   allocation past the two arrays. *)
let bfs_dist h s =
  let n = Csr.n_vertices h in
  let off = Csr.succ_off h and arr = Csr.succ_arr h in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(s) <- 0;
  queue.(!tail) <- s;
  incr tail;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    for i = off.(v) to off.(v + 1) - 1 do
      let w = arr.(i) in
      if dist.(w) < 0 then begin
        dist.(w) <- dist.(v) + 1;
        queue.(!tail) <- w;
        incr tail
      end
    done
  done;
  dist

let set_of_reached h dist =
  let acc = ref Pid.Set.empty in
  for v = Csr.n_vertices h - 1 downto 0 do
    if dist.(v) >= 0 then acc := Pid.Set.add (Csr.pid_of h v) !acc
  done;
  !acc

(* ---- public API: CSR with seed fallback ------------------------------- *)

let bfs_layers g src =
  match Csr.get g with
  | None -> bfs_layers_baseline g src
  | Some h -> (
      match Csr.index_of h src with
      | None -> []
      | Some s ->
          let dist = bfs_dist h s in
          let maxd = Array.fold_left max 0 dist in
          let layers = Array.make (maxd + 1) Pid.Set.empty in
          for v = 0 to Csr.n_vertices h - 1 do
            let d = dist.(v) in
            if d >= 0 then layers.(d) <- Pid.Set.add (Csr.pid_of h v) layers.(d)
          done;
          Array.to_list layers)

let reachable g src =
  match Csr.get g with
  | None -> reachable_baseline g src
  | Some h -> (
      match Csr.index_of h src with
      | None -> Pid.Set.empty
      | Some s -> set_of_reached h (bfs_dist h s))

let reachable_from_set g srcs =
  match Csr.get g with
  | None ->
      Pid.Set.fold
        (fun i acc -> Pid.Set.union acc (reachable_baseline g i))
        srcs Pid.Set.empty
  | Some h ->
      (* One multi-source BFS: the union of per-source reachable sets is
         exactly the set reached from all (present) sources at once. *)
      let n = Csr.n_vertices h in
      let off = Csr.succ_off h and arr = Csr.succ_arr h in
      let dist = Array.make n (-1) in
      let queue = Array.make n 0 in
      let head = ref 0 and tail = ref 0 in
      Pid.Set.iter
        (fun i ->
          match Csr.index_of h i with
          | Some s when dist.(s) < 0 ->
              dist.(s) <- 0;
              queue.(!tail) <- s;
              incr tail
          | _ -> ())
        srcs;
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        for i = off.(v) to off.(v + 1) - 1 do
          let w = arr.(i) in
          if dist.(w) < 0 then begin
            dist.(w) <- 0;
            queue.(!tail) <- w;
            incr tail
          end
        done
      done;
      set_of_reached h dist

let distance g src dst =
  match Csr.get g with
  | None ->
      let rec find d = function
        | [] -> None
        | layer :: rest ->
            if Pid.Set.mem dst layer then Some d else find (d + 1) rest
      in
      find 0 (bfs_layers_baseline g src)
  | Some h -> (
      match (Csr.index_of h src, Csr.index_of h dst) with
      | Some s, Some t ->
          let d = (bfs_dist h s).(t) in
          if d < 0 then None else Some d
      | _ -> None)

let shortest_path g src dst =
  if not (Digraph.mem_vertex src g && Digraph.mem_vertex dst g) then None
  else
    (* Standard BFS keeping a parent pointer per discovered vertex. *)
    let parents = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace parents src src;
    let rec loop () =
      if Queue.is_empty q then None
      else
        let i = Queue.pop q in
        if Pid.equal i dst then
          let rec rebuild acc j =
            if Pid.equal j src then src :: acc
            else rebuild (j :: acc) (Hashtbl.find parents j)
          in
          Some (rebuild [] dst)
        else begin
          Pid.Set.iter
            (fun j ->
              if not (Hashtbl.mem parents j) then begin
                Hashtbl.replace parents j i;
                Queue.add j q
              end)
            (Digraph.succs g i);
          loop ()
        end
    in
    loop ()

let is_connected_undirected g =
  match Csr.get g with
  | None -> is_connected_undirected_baseline g
  | Some h ->
      let n = Csr.n_vertices h in
      n = 0
      ||
      (* BFS over the symmetric closure directly on the compiled rows —
         no undirected copy of the graph is materialised. *)
      let soff = Csr.succ_off h and sarr = Csr.succ_arr h in
      let poff = Csr.pred_off h and parr = Csr.pred_arr h in
      let seen = Array.make n false in
      let queue = Array.make n 0 in
      let head = ref 0 and tail = ref 0 in
      seen.(0) <- true;
      queue.(0) <- 0;
      incr tail;
      let visit w =
        if not seen.(w) then begin
          seen.(w) <- true;
          queue.(!tail) <- w;
          incr tail
        end
      in
      while !head < !tail do
        let v = queue.(!head) in
        incr head;
        for i = soff.(v) to soff.(v + 1) - 1 do
          visit sarr.(i)
        done;
        for i = poff.(v) to poff.(v + 1) - 1 do
          visit parr.(i)
        done
      done;
      !tail = n

let eccentricity g i =
  match Csr.get g with
  | None ->
      if not (Digraph.mem_vertex i g) then None
      else Some (List.length (bfs_layers_baseline g i) - 1)
  | Some h -> (
      match Csr.index_of h i with
      | None -> None
      | Some s -> Some (Array.fold_left max 0 (bfs_dist h s)))
