let to_dot ?(highlight = Pid.Set.empty) ?(faulty = Pid.Set.empty)
    ?(name = "knowledge") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Pid.Set.iter
    (fun v ->
      let attrs = ref [] in
      if Pid.Set.mem v highlight then attrs := "peripheries=2" :: !attrs;
      if Pid.Set.mem v faulty then
        attrs := "style=filled" :: "fillcolor=gray" :: !attrs;
      let attr_s =
        match !attrs with
        | [] -> ""
        | l -> Printf.sprintf " [%s]" (String.concat ", " l)
      in
      Buffer.add_string buf (Printf.sprintf "  %d%s;\n" v attr_s))
    (Digraph.vertices g);
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" i j))
    (Digraph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?highlight ?faulty ?name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight ?faulty ?name g))
