test/test_cluster.ml: Alcotest Cluster Fbqs Graphkit Intertwine List Pid Quorum Slice
