(** On-disk representation of a slice assignment ([Quorum.system]).

    A line-based plain-text format — one process per line:

    {v
    # stellar-cup fbas v1
    0 threshold 4 of 0 1 2 3 5
    1 slices { 0 1 2 } { 1 2 4 }
    2 none
    v}

    [threshold T of ...] is the symbolic Algorithm-2 form, [slices
    { ... } ...] an explicit slice list, [none] a process with no
    declared slices. Blank lines and [#] comments are ignored on input;
    output is in ascending pid order with a version header, so printing
    is deterministic and round trips through parsing. The committed
    live-network fixture under [test/fixtures/] uses this format, and
    the [fbas] CLI verbs read and write it. *)

val to_string : Quorum.system -> string

val to_buffer : Buffer.t -> Quorum.system -> unit

val to_file : string -> Quorum.system -> unit

val of_string : string -> (Quorum.system, string) result
(** Parse errors name the offending line. *)

val of_file : string -> (Quorum.system, string) result
