(* Fixture: polymorphic comparison on container values. *)
let bad_eq s = s = Pid.Set.empty
let bad_cmp x y = compare (x : Pid.Set.t) y
let bad_hash members = Hashtbl.hash (Slice.threshold ~members ~threshold:2)
let bad_ne m = m <> Pid.Map.empty
