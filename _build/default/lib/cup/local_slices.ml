open Graphkit

let all_but_one pd i =
  let members = Participant_detector.query pd i in
  Fbqs.Slice.threshold ~members
    ~threshold:(max 1 (Pid.Set.cardinal members - 1))

let drop_f pd i =
  let members = Participant_detector.query pd i in
  Fbqs.Slice.threshold ~members
    ~threshold:(max 1 (Pid.Set.cardinal members - Participant_detector.f pd))

let system ~rule pd =
  Pid.Set.fold
    (fun i sys -> Pid.Map.add i (rule pd i) sys)
    (Participant_detector.participants pd)
    Pid.Map.empty
