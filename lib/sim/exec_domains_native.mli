(** Domain-pool backend for {!Exec} (OCaml 5 variant).

    Copied to [exec_domains.mli] by a dune rule when the compiler
    supports domains; see [exec_domains_stub.mli] for the 4.14 side.
    Both variants expose exactly this signature. *)

val available : bool
(** Whether this runtime can actually spawn domains ([true] here;
    [false] in the stub). *)

val locked : (unit -> 'a) -> 'a
(** Runs the thunk inside the backend's global lock — the critical
    section {!Exec} arms {!Core.Cache} with. The stub's version is the
    identity: without domains there is nothing to race. *)

val map_chunked :
  chunk:int -> domains:int -> (int -> unit) -> int -> (int * string) list
(** [map_chunked ~chunk ~domains do_job n] runs [do_job i] for every
    [i] in [0..n-1] across [domains] domains (the caller counts as
    one), handing out chunks of [chunk] consecutive indices from a
    mutex-protected counter. Returns the failures as
    [(job index, exception text)] pairs, in no particular order; a
    failure abandons the rest of its chunk only. Blocks until every
    spawned domain has joined. *)
