type t = { succ : Pid.Set.t Pid.Map.t; pred : Pid.Set.t Pid.Map.t }

let empty = { succ = Pid.Map.empty; pred = Pid.Map.empty }

let touch i m =
  if Pid.Map.mem i m then m else Pid.Map.add i Pid.Set.empty m

let add_vertex i g = { succ = touch i g.succ; pred = touch i g.pred }

let add_to i j m =
  let s = Option.value ~default:Pid.Set.empty (Pid.Map.find_opt i m) in
  Pid.Map.add i (Pid.Set.add j s) m

let add_edge i j g =
  let g = add_vertex i (add_vertex j g) in
  { succ = add_to i j g.succ; pred = add_to j i g.pred }

let vertices g = Pid.Map.keys g.succ
let n_vertices g = Pid.Map.cardinal g.succ
let mem_vertex i g = Pid.Map.mem i g.succ

let succs g i =
  Option.value ~default:Pid.Set.empty (Pid.Map.find_opt i g.succ)

let preds g i =
  Option.value ~default:Pid.Set.empty (Pid.Map.find_opt i g.pred)

let mem_edge i j g = Pid.Set.mem j (succs g i)

let n_edges g = Pid.Map.fold (fun _ s n -> n + Pid.Set.cardinal s) g.succ 0

let remove_vertex i g =
  let drop m = Pid.Map.map (Pid.Set.remove i) (Pid.Map.remove i m) in
  { succ = drop g.succ; pred = drop g.pred }

let remove_vertices vs g =
  (* One pass per map instead of folding [remove_vertex] (which rebuilds
     both maps once per removed vertex): drop the removed keys and
     subtract [vs] from every surviving adjacency row. *)
  if Pid.Set.is_empty vs then g
  else
    let drop m =
      Pid.Map.filter_map
        (fun i s -> if Pid.Set.mem i vs then None else Some (Pid.Set.diff s vs))
        m
    in
    { succ = drop g.succ; pred = drop g.pred }

let of_edges es = List.fold_left (fun g (i, j) -> add_edge i j g) empty es

let of_adjacency adj =
  List.fold_left
    (fun g (i, js) ->
      List.fold_left (fun g j -> add_edge i j g) (add_vertex i g) js)
    empty adj

let edges g =
  Pid.Map.fold
    (fun i s acc -> Pid.Set.fold (fun j acc -> (i, j) :: acc) s acc)
    g.succ []
  |> List.rev

let fold_vertices f g acc = Pid.Map.fold (fun i _ acc -> f i acc) g.succ acc
let iter_succs f g = Pid.Map.iter f g.succ
let fold_edges f g acc = List.fold_left (fun acc (i, j) -> f i j acc) acc (edges g)

let subgraph vs g =
  let keep m =
    Pid.Map.filter_map
      (fun i s -> if Pid.Set.mem i vs then Some (Pid.Set.inter s vs) else None)
      m
  in
  { succ = keep g.succ; pred = keep g.pred }

let transpose g = { succ = g.pred; pred = g.succ }

let union a b =
  let merged base extra =
    Pid.Map.union (fun _ s1 s2 -> Some (Pid.Set.union s1 s2)) base extra
  in
  { succ = merged a.succ b.succ; pred = merged a.pred b.pred }

let undirected g = union g (transpose g)

let equal a b = Pid.Map.equal Pid.Set.equal a.succ b.succ

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  Pid.Map.iter
    (fun i s -> Format.fprintf ppf "%d -> %a@," i Pid.Set.pp s)
    g.succ;
  Format.fprintf ppf "@]"
