(** Process identities.

    Every participant of the system is named by a small non-negative
    integer. This module fixes that representation and provides the
    specialised sets and maps used across the whole code base, so that
    protocol code never manipulates bare [int] containers. *)

type t = int
(** A process identity. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit

  val of_range : int -> int -> t
  (** [of_range lo hi] is the set [{lo, lo+1, ..., hi}]; empty if
      [hi < lo]. *)

  val to_string : t -> string

  val choose_distinct : int -> t -> elt list option
  (** [choose_distinct k s] returns [k] distinct elements of [s] in
      increasing order, or [None] if [cardinal s < k]. *)
end

module Map : sig
  include Map.S with type key = t

  val keys : 'a t -> Set.t

  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end
