(** Turnkey SCP executions over a slice system.

    Builds an engine, wires one SCP node per participant (honest or
    Byzantine), runs to completion and reports the consensus verdict:
    whether all correct nodes decided, whether they agreed, and whether
    validity held (every decided value is a combination of proposed
    values — values are transaction sets and nomination merges them). *)

open Graphkit

type fault =
  | Silent
  | Accept_forger of Statement.t list
  | Nomination_equivocator of {
      split : Pid.t -> bool;
      value_a : Value.t;
      value_b : Value.t;
    }
  | Slice_equivocator of {
      split : Pid.t -> bool;
      slices_a : Fbqs.Slice.t;
      slices_b : Fbqs.Slice.t;
      value : Value.t;
    }
      (** declares [slices_a] to peers satisfying [split], [slices_b]
          to the rest, while nominating [value] *)

type outcome = {
  decisions : Node.decision Pid.Map.t;  (** per correct node *)
  all_decided : bool;
  agreement : bool;  (** vacuously true when fewer than 2 decided *)
  validity : bool;
  stats : Simkit.Engine.stats;
}

val pp_outcome : Format.formatter -> outcome -> unit

type cfg = {
  run : Simkit.Run_config.t;
      (** timing, seed and observability sinks, shared with the engine *)
  ballot_timeout : int;
  nomination : Node.nomination_strategy;
}

val default_cfg : cfg
(** [run = Run_config.default], [ballot_timeout = 40],
    [nomination = Echo_all]. *)

val run_cfg :
  ?cfg:cfg ->
  system:Fbqs.Quorum.system ->
  peers_of:(Pid.t -> Pid.Set.t) ->
  initial_value_of:(Pid.t -> Value.t) ->
  fault_of:(Pid.t -> fault option) ->
  unit ->
  outcome
(** Runs one consensus instance. Participants are the processes of
    [system]. [peers_of] gives each node its initial contact list
    (normally its slice domain). The run stops when every correct node
    has decided or at [cfg.run.max_time]. When [cfg.run] carries
    observability sinks, the engine and every honest node are
    instrumented, scope-["runner"] [run_start]/[run_end] events bracket
    the trace, and the process-global quorum-cache counters are scraped
    as per-run deltas ([fbqs_cache_hits]/[fbqs_cache_misses]). *)

val run :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  ?ballot_timeout:int ->
  ?nomination:Node.nomination_strategy ->
  ?delay:Simkit.Delay.t ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.sink ->
  system:Fbqs.Quorum.system ->
  peers_of:(Pid.t -> Pid.Set.t) ->
  initial_value_of:(Pid.t -> Value.t) ->
  fault_of:(Pid.t -> fault option) ->
  unit ->
  outcome
[@@deprecated "use run_cfg (default_cfg carries the historical defaults)"]
(** Flat-parameter wrapper over {!run_cfg} preserving the historical
    defaults (seed 0, gst 50, delta 5, max_time 200_000, ballot_timeout
    40, [Echo_all]). [delay] overrides the default partial-synchrony
    model — pass a {!Simkit.Delay.targeted} model to act as a network
    adversary.
    @deprecated Use {!run_cfg} with a {!type:cfg} built from
    {!Simkit.Run_config.t} ({!default_cfg} carries these defaults). *)
