type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int

module Set = struct
  include Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      (elements s)

  let of_range lo hi =
    let rec go acc i = if i < lo then acc else go (add i acc) (i - 1) in
    go empty hi

  let to_string s = Format.asprintf "%a" pp s

  let choose_distinct k s =
    if cardinal s < k then None
    else
      let rec take k = function
        | _ when k = 0 -> []
        | [] -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      Some (take k (elements s))
end

module Dense_set = struct
  (* Packed bitset over native ints: word [w], bit [b] encodes membership
     of pid [w * bits_per_word + b]. Process ids are small non-negative
     integers, so the universe is dense and a handful of words covers a
     whole system; the quorum kernel then reduces to word-wise [land]
     plus popcount. Invariant: the word array is canonical (no trailing
     zero word), so structural equality of arrays coincides with set
     equality and the arrays hash well as table keys. *)

  let bits_per_word = Sys.int_size

  type t = int array

  let check_elt i =
    if i < 0 then invalid_arg "Pid.Dense_set: negative process id"

  (* Popcount via a 16-bit lookup table: the 64-bit SWAR constants do
     not fit OCaml's 63-bit immediates, and the table is branch-free and
     fast enough for the kernel. Words are split with logical shifts, so
     a set bit in the (negative) sign position is counted like any
     other. *)
  let pop16 =
    let naive x =
      let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
      go 0 x
    in
    Bytes.init 65536 (fun i -> Char.chr (naive i))

  let popcount x =
    Char.code (Bytes.unsafe_get pop16 (x land 0xffff))
    + Char.code (Bytes.unsafe_get pop16 ((x lsr 16) land 0xffff))
    + Char.code (Bytes.unsafe_get pop16 ((x lsr 32) land 0xffff))
    + Char.code (Bytes.unsafe_get pop16 (x lsr 48))

  (* Number of trailing zeros of a one-bit word [b = x land (-x)]. *)
  let ntz_of_bit b = popcount (b - 1)

  let empty = [||]

  let is_empty t = Array.length t = 0

  let normalize a =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let mem i t =
    i >= 0
    &&
    let w = i / bits_per_word in
    w < Array.length t && (t.(w) lsr (i mod bits_per_word)) land 1 = 1

  let add i t =
    check_elt i;
    let w = i / bits_per_word in
    let bit = 1 lsl (i mod bits_per_word) in
    let len = Array.length t in
    if w < len then
      if t.(w) land bit <> 0 then t
      else begin
        let a = Array.copy t in
        a.(w) <- a.(w) lor bit;
        a
      end
    else begin
      let a = Array.make (w + 1) 0 in
      Array.blit t 0 a 0 len;
      a.(w) <- bit;
      a
    end

  let singleton i = add i empty

  let remove i t =
    if not (mem i t) then t
    else begin
      let a = Array.copy t in
      let w = i / bits_per_word in
      a.(w) <- a.(w) land lnot (1 lsl (i mod bits_per_word));
      normalize a
    end

  let union a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let big, small = if la >= lb then (a, b) else (b, a) in
      let r = Array.copy big in
      for i = 0 to Array.length small - 1 do
        r.(i) <- r.(i) lor small.(i)
      done;
      r
    end

  let inter a b =
    let l = min (Array.length a) (Array.length b) in
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    normalize r

  let diff a b =
    let r = Array.copy a in
    let l = min (Array.length a) (Array.length b) in
    for i = 0 to l - 1 do
      r.(i) <- r.(i) land lnot b.(i)
    done;
    normalize r

  let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t

  let inter_cardinal a b =
    let l = min (Array.length a) (Array.length b) in
    let c = ref 0 in
    for i = 0 to l - 1 do
      c := !c + popcount (a.(i) land b.(i))
    done;
    !c

  let subset a b =
    let la = Array.length a in
    la <= Array.length b
    &&
    let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
    go 0

  let disjoint a b =
    let l = min (Array.length a) (Array.length b) in
    let rec go i = i >= l || (a.(i) land b.(i) = 0 && go (i + 1)) in
    go 0

  let equal (a : t) (b : t) = a = b

  let iter f t =
    for w = 0 to Array.length t - 1 do
      let base = w * bits_per_word in
      let x = ref t.(w) in
      while !x <> 0 do
        let b = !x land - !x in
        f (base + ntz_of_bit b);
        x := !x lxor b
      done
    done

  let fold f t acc =
    let acc = ref acc in
    iter (fun i -> acc := f i !acc) t;
    !acc

  exception Found of int

  let for_all p t =
    try
      iter (fun i -> if not (p i) then raise (Found i)) t;
      true
    with Found _ -> false

  let exists p t =
    try
      iter (fun i -> if p i then raise (Found i)) t;
      false
    with Found _ -> true

  let filter p t =
    let r = Array.make (Array.length t) 0 in
    iter
      (fun i ->
        if p i then
          r.(i / bits_per_word) <-
            r.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
      t;
    normalize r

  let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

  let to_list = elements

  let of_list l =
    List.iter check_elt l;
    match l with
    | [] -> empty
    | _ ->
        let m = List.fold_left max 0 l in
        let r = Array.make ((m / bits_per_word) + 1) 0 in
        List.iter
          (fun i ->
            r.(i / bits_per_word) <-
              r.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
          l;
        normalize r

  let of_range lo hi =
    if hi < lo then empty
    else begin
      check_elt lo;
      let r = Array.make ((hi / bits_per_word) + 1) 0 in
      for i = lo to hi do
        r.(i / bits_per_word) <-
          r.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))
      done;
      r
    end

  let of_set s =
    match Set.min_elt_opt s with
    | None -> empty
    | Some mn ->
        check_elt mn;
        let m = Set.max_elt s in
        let r = Array.make ((m / bits_per_word) + 1) 0 in
        Set.iter
          (fun i ->
            r.(i / bits_per_word) <-
              r.(i / bits_per_word) lor (1 lsl (i mod bits_per_word)))
          s;
        r

  let to_set t = fold (fun i acc -> Set.add i acc) t Set.empty

  let min_elt_opt t =
    if is_empty t then None
    else begin
      let w = ref 0 in
      while t.(!w) = 0 do
        incr w
      done;
      let x = t.(!w) in
      Some ((!w * bits_per_word) + ntz_of_bit (x land -x))
    end

  let max_elt_opt t =
    if is_empty t then None
    else begin
      let w = Array.length t - 1 in
      let x = ref t.(w) and last = ref 0 in
      while !x <> 0 do
        let b = !x land - !x in
        last := ntz_of_bit b;
        x := !x lxor b
      done;
      Some ((w * bits_per_word) + !last)
    end

  let choose_opt = min_elt_opt

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      (elements t)

  let to_string t = Format.asprintf "%a" pp t
end

module Map = struct
  include Map.Make (Int)

  let keys m = fold (fun k _ acc -> Set.add k acc) m Set.empty

  let pp pp_v ppf m =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (k, v) -> Format.fprintf ppf "%d -> %a" k pp_v v))
      (bindings m)
end
