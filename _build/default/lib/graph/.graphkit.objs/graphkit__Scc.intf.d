lib/graph/scc.mli: Digraph Pid
