test/test_knowledge.ml: Alcotest Builtin Cup Digraph Generators Graphkit Hashtbl Knowledge List Msg Pid Printf QCheck QCheck_alcotest Queue
