(** A PBFT-style consensus for a known membership, used by the BFT-CUP
    baseline among the discovered sink members (the paper's Section
    III-E: "sink members solve consensus among themselves by executing a
    consensus protocol (e.g., PBFT)").

    The quorum size is [ceil ((n + f + 1) / 2)] — with at most [f]
    faulty members out of [n], two quorums always intersect in a correct
    process: the same arithmetic the paper uses for sink slices.

    View changes carry each replica's prepared lock; a new leader's
    proposal must quote a quorum of view-change messages and re-propose
    the highest lock among them. Replicas check the quote's shape but —
    as in deployed PBFT, where messages are signed — cannot forge-proof
    it without signatures; the simulation's Byzantine behaviours do not
    forge quotes (see DESIGN.md). *)

open Graphkit

type lock = { locked_view : int; locked_value : Scp.Value.t }

type msg =
  | Pre_prepare of {
      view : int;
      value : Scp.Value.t;
      just : (Pid.t * lock option) list;
          (** view-change certificate; empty and unchecked for view 0 *)
    }
  | Prepare of { view : int; value : Scp.Value.t }
  | Commit of { view : int; value : Scp.Value.t }
  | View_change of { new_view : int; lock : lock option }
  | Decision_req
  | Decision of Scp.Value.t

val pp_msg : Format.formatter -> msg -> unit

type decision = { value : Scp.Value.t; view : int; time : int }

type config = {
  self : Pid.t;
  members : Pid.Set.t;  (** the discovered sink, self included *)
  f : int;
  initial_value : Scp.Value.t;
  view_timeout : int;
  on_decide : Pid.t -> decision -> unit;
}

val quorum_size : n:int -> f:int -> int

val leader_of : Pid.Set.t -> int -> Pid.t
(** Round-robin leader: the [view mod n]-th member in id order. *)

val behavior : config -> msg Simkit.Engine.behavior
(** A replica. Also answers [Decision_req] messages (from non-members)
    with [Decision v] once decided — the dissemination half of
    BFT-CUP. *)

val silent : msg Simkit.Engine.behavior
