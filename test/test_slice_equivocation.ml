open Graphkit
open Scp

let v = Value.of_ints

let threshold_slices n t =
  Fbqs.Slice.threshold ~members:(Pid.Set.of_range 1 n) ~threshold:t

let system n t =
  Fbqs.Quorum.system_of_list
    (List.init n (fun i -> (i + 1, threshold_slices n t)))

(* The flat [Runner.run] wrapper's historical defaults, through the
   Run_config-based entry point. *)
let run_scp ?(seed = 0) ~system ~peers_of ~initial_value_of ~fault_of () =
  let d = Runner.default_cfg in
  Runner.run_cfg
    ~cfg:{ d with run = { d.run with seed } }
    ~system ~peers_of ~initial_value_of ~fault_of ()

let test_slices_learned_from_envelopes () =
  (* Nodes start knowing only their own declaration; consensus requires
     learning everyone else's from the envelopes. If learning were
     broken nothing could ever be confirmed. *)
  let o =
    run_scp ~system:(system 4 3)
      ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
      ~initial_value_of:(fun i -> v [ i ])
      ~fault_of:(fun _ -> None)
      ()
  in
  Alcotest.(check bool) "consensus via learned slices" true
    (o.all_decided && o.agreement && o.validity)

let test_slice_equivocator_harmless_to_correct_quorums () =
  (* Node 5 declares two different slice sets to the two halves of the
     network while nominating its value. The four correct nodes' own
     slices (3-of-{1..4}) do not depend on 5, so consensus among them
     is unaffected; 5's value may or may not be included, but safety
     and liveness hold. *)
  let correct_members = Pid.Set.of_range 1 4 in
  let correct_slices =
    Fbqs.Slice.threshold ~members:correct_members ~threshold:3
  in
  let system =
    Fbqs.Quorum.system_of_list
      ((5, threshold_slices 5 4)
      :: List.init 4 (fun i -> (i + 1, correct_slices)))
  in
  let fault_of i =
    if i = 5 then
      Some
        (Runner.Slice_equivocator
           {
             split = (fun j -> j mod 2 = 0);
             slices_a = Fbqs.Slice.explicit [ Pid.Set.of_list [ 1; 2 ] ];
             slices_b = Fbqs.Slice.explicit [ Pid.Set.of_list [ 3; 4 ] ];
             value = v [ 50 ];
           })
    else None
  in
  let o =
    run_scp ~system
      ~peers_of:(fun _ -> Pid.Set.of_range 1 5)
      ~initial_value_of:(fun i -> v [ i ])
      ~fault_of ()
  in
  Alcotest.(check bool) "all correct decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "validity" true o.validity

let test_first_declaration_pinned () =
  (* Directly exercise the pinning rule: a node that hears two
     different declarations from the same origin keeps the first. We
     observe this indirectly — an equivocator cannot make one correct
     node treat it as trusting {1,2} and later {3,4}: behaviourally the
     run stays deterministic and safe (determinism implies a stable
     pin). *)
  let run () =
    let system = system 4 3 in
    run_scp ~seed:5 ~system
      ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
      ~initial_value_of:(fun i -> v [ i ])
      ~fault_of:(fun _ -> None)
      ()
  in
  let o1 = run () and o2 = run () in
  Alcotest.(check int) "deterministic with slice learning"
    o1.stats.messages_sent o2.stats.messages_sent

let prop_equivocator_never_breaks_agreement =
  QCheck.Test.make ~count:10
    ~name:"slice equivocator never breaks correct-node agreement"
    QCheck.(int_bound 500)
    (fun seed ->
      let correct_members = Pid.Set.of_range 1 4 in
      let correct_slices =
        Fbqs.Slice.threshold ~members:correct_members ~threshold:3
      in
      let system =
        Fbqs.Quorum.system_of_list
          ((5, threshold_slices 5 4)
          :: List.init 4 (fun i -> (i + 1, correct_slices)))
      in
      let fault_of i =
        if i = 5 then
          Some
            (Runner.Slice_equivocator
               {
                 split = (fun j -> j <= 2);
                 slices_a = threshold_slices 5 1;
                 slices_b = threshold_slices 5 5;
                 value = v [ 50 + seed ];
               })
        else None
      in
      let o =
        run_scp ~seed ~system
          ~peers_of:(fun _ -> Pid.Set.of_range 1 5)
          ~initial_value_of:(fun i -> v [ i ])
          ~fault_of ()
      in
      o.all_decided && o.agreement)

let suites =
  [
    ( "slice_equivocation",
      [
        Alcotest.test_case "slices learned from envelopes" `Quick
          test_slices_learned_from_envelopes;
        Alcotest.test_case "equivocator harmless to correct quorums" `Quick
          test_slice_equivocator_harmless_to_correct_quorums;
        Alcotest.test_case "first declaration pinned" `Quick
          test_first_declaration_pinned;
        QCheck_alcotest.to_alcotest prop_equivocator_never_breaks_agreement;
      ] );
  ]
