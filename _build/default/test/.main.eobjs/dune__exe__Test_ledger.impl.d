test/test_ledger.ml: Alcotest Fbqs Graphkit Ledger List Pid Printf Runner Scp Value
