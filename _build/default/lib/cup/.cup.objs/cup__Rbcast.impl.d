lib/cup/rbcast.ml: Graphkit Hashtbl Int List Msg Option Pid
