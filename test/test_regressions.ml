(* Pinned regressions for bugs found during development (DESIGN.md §7). *)

open Graphkit

(* Bug 1: non-FIFO reordering could mask a newer Know view with a stale
   one, stalling the SINK termination check forever. Found by qcheck on
   this exact instance (generator seed 198). *)
let test_knowledge_reordering_seed198 () =
  let seed = 198 and f = 1 in
  let g, sink =
    Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:3 ()
  in
  let faulty = Generators.random_faulty_set ~seed ~f g in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  let r =
    Cup.Sink_protocol.run_cfg
      ~cfg:{ Cup.Sink_protocol.default_run_config with seed }
      ~graph:g ~f ~fault_of ()
  in
  Pid.Set.iter
    (fun i ->
      if not (Pid.Set.mem i faulty) then
        match Pid.Map.find_opt i r.answers with
        | None -> Alcotest.failf "process %d stalled (regression!)" i
        | Some a ->
            Alcotest.(check bool)
              (Printf.sprintf "answer of %d legal" i)
              true
              (a.in_sink = Pid.Set.mem i sink && Pid.Set.subset a.view sink))
    (Digraph.vertices g)

(* Bug 2: PBFT replicas that decided in an early view froze, leaving
   stragglers in later views unable to assemble quorums. The triggering
   shape: enough pre-GST reordering that commits are seen asymmetrically
   around a view change. We re-run the E8 configuration that exposed
   it. *)
let test_pbft_decided_straggler () =
  let seed = 7 and f = 1 in
  let g, _ =
    Generators.random_byzantine_safe ~seed ~f ~sink_size:6 ~non_sink:6 ()
  in
  let faulty = Generators.random_faulty_set ~seed ~f g in
  let o =
    Bftcup.Protocol.run ~seed ~graph:g ~f
      ~initial_value_of:(fun i -> Scp.Value.of_ints [ i ])
      ~faulty ()
  in
  Alcotest.(check bool) "all decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement

(* The monotone-view rule must not let a Byzantine sender shrink its
   recorded view: stale (smaller) reports are ignored. *)
let test_knowledge_monotone_views () =
  let k = Cup.Knowledge.create ~self:1 ~pd:(Pid.Set.of_list [ 2; 3 ]) ~f:0 in
  let sent = ref [] in
  let send dst m = sent := (dst, m) :: !sent in
  Cup.Knowledge.start k ~send;
  let big = Pid.Set.of_list [ 2; 3; 4 ] in
  let small = Pid.Set.of_list [ 2 ] in
  Cup.Knowledge.on_know k ~send ~src:2 big;
  Cup.Knowledge.on_know k ~send ~src:2 small;
  (* 4 was vouched once by 2 via [big]; with f = 0 one voucher
     suffices, and the later smaller report must not retract it *)
  Alcotest.(check bool) "4 stays known" true
    (Pid.Set.mem 4 (Cup.Knowledge.known k))

let suites =
  [
    ( "regressions",
      [
        Alcotest.test_case "knowledge non-FIFO stall (seed 198)" `Quick
          test_knowledge_reordering_seed198;
        Alcotest.test_case "pbft decided-straggler deadlock" `Quick
          test_pbft_decided_straggler;
        Alcotest.test_case "knowledge views monotone" `Quick
          test_knowledge_monotone_views;
      ] );
  ]
