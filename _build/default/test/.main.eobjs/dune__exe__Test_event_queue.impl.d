test/test_event_queue.ml: Alcotest Event_queue Fun List QCheck QCheck_alcotest Simkit
