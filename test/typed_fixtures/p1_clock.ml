(* The entropy source for the P1 fixture chain. No .mli on purpose:
   [wall] itself is unexported, so P1 must walk the call graph up to
   [P1_chain.stamp] to find something to report. *)

let wall () = Unix.gettimeofday ()
