(** Algorithm 2: building slices from the sink-detector answer.

    Sink members take all subsets of [V] of size
    [ceil ((|V| + f + 1) / 2)]; non-sink members take all subsets of
    their view [V] of size [f + 1]. With these slices every two correct
    processes are intertwined (Theorem 3) and every correct process
    keeps an all-correct quorum (Theorem 4), provided the sink holds at
    least [2f + 1] correct processes. *)

open Graphkit

val sink_threshold : sink_size:int -> f:int -> int
(** [ceil ((sink_size + f + 1) / 2)]. *)

val build_slices : f:int -> Sink_oracle.answer -> Fbqs.Slice.t
(** The literal Algorithm 2, on a sink-detector answer. *)

val system_via_oracle :
  ?oracle:(Pid.t -> Sink_oracle.answer) ->
  f:int ->
  Digraph.t ->
  Fbqs.Quorum.system
(** Builds the whole system's slices by querying an oracle for every
    participant (default: {!Sink_oracle.get_sink} on the graph). *)
