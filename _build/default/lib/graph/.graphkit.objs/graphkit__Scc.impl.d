lib/graph/scc.ml: Digraph Hashtbl List Pid Stack
