examples/ledger.mli:
