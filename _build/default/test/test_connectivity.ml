open Graphkit

let set = Pid.Set.of_list

let test_complete_graph () =
  let g = Generators.complete ~n:5 in
  (* Between any two vertices of K5: the direct edge plus one path
     through each of the other 3 vertices. *)
  Alcotest.(check int) "K5 disjoint paths" 4
    (Connectivity.node_disjoint_paths g 0 3);
  Alcotest.(check bool) "K5 is 4-strong" true
    (Connectivity.is_k_strongly_connected g 4);
  Alcotest.(check bool) "K5 is not 5-strong" false
    (Connectivity.is_k_strongly_connected g 5);
  Alcotest.(check int) "K5 connectivity" 4 (Connectivity.vertex_connectivity g)

let test_circulant_connectivity () =
  List.iter
    (fun (n, k) ->
      let g = Generators.circulant ~n ~k in
      Alcotest.(check int)
        (Printf.sprintf "circulant n=%d k=%d" n k)
        k
        (Connectivity.vertex_connectivity g))
    [ (5, 1); (6, 2); (7, 3); (8, 2) ]

let test_chain () =
  let g = Digraph.of_edges [ (1, 2); (2, 3) ] in
  Alcotest.(check int) "one path" 1 (Connectivity.node_disjoint_paths g 1 3);
  Alcotest.(check int) "none backwards" 0
    (Connectivity.node_disjoint_paths g 3 1)

let test_self_and_absent () =
  let g = Digraph.of_edges [ (1, 2) ] in
  Alcotest.(check int) "self" 0 (Connectivity.node_disjoint_paths g 1 1);
  Alcotest.(check int) "absent endpoint" 0
    (Connectivity.node_disjoint_paths g 1 9)

let test_bottleneck_vertex () =
  (* Two diamonds joined through a single cut vertex 3. *)
  let g =
    Digraph.of_edges
      [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 5); (4, 6); (5, 6) ]
  in
  Alcotest.(check int) "cut vertex limits to 1" 1
    (Connectivity.node_disjoint_paths g 0 6);
  Alcotest.(check int) "before the cut" 2
    (Connectivity.node_disjoint_paths g 0 3)

let test_disjoint_paths_within () =
  let g =
    Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (0, 3) ]
  in
  Alcotest.(check int) "all allowed" 3
    (Connectivity.node_disjoint_paths g 0 3);
  Alcotest.(check int) "vertex 1 excluded" 2
    (Connectivity.disjoint_paths_within g ~allowed:(set [ 0; 2; 3 ]) 0 3)

let test_f_reachable () =
  let g =
    Digraph.of_edges [ (0, 1); (1, 3); (0, 2); (2, 3); (0, 3) ]
  in
  let all = set [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "f=2 with all correct" true
    (Connectivity.f_reachable g ~correct:all 2 0 3);
  Alcotest.(check bool) "f=2 fails when 1 is faulty" false
    (Connectivity.f_reachable g ~correct:(set [ 0; 2; 3 ]) 2 0 3);
  Alcotest.(check bool) "f=1 survives 1 faulty" true
    (Connectivity.f_reachable g ~correct:(set [ 0; 2; 3 ]) 1 0 3);
  Alcotest.(check bool) "endpoint faulty" false
    (Connectivity.f_reachable g ~correct:(set [ 1; 2; 3 ]) 0 0 3)

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Digraph.pp g)
    QCheck.Gen.(
      let* n = int_range 2 7 in
      let* edges =
        list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (Digraph.of_edges (List.filter (fun (u, v) -> u <> v) edges)))

let prop_paths_bounded_by_degrees =
  QCheck.Test.make ~count:200 ~name:"disjoint paths <= min degree" arb_graph
    (fun g ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i = j
              || Connectivity.node_disjoint_paths g i j
                 <= min
                      (Pid.Set.cardinal (Digraph.succs g i))
                      (Pid.Set.cardinal (Digraph.preds g j)))
            vs)
        vs)

let prop_adding_edges_monotone =
  QCheck.Test.make ~count:100 ~name:"adding an edge never lowers path count"
    QCheck.(pair arb_graph (pair small_nat small_nat))
    (fun (g, (a, b)) ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      match vs with
      | x :: y :: _ when x <> y ->
          let a = List.nth vs (a mod List.length vs) in
          let b = List.nth vs (b mod List.length vs) in
          a = b
          ||
          let before = Connectivity.node_disjoint_paths g x y in
          let after =
            Connectivity.node_disjoint_paths (Digraph.add_edge a b g) x y
          in
          after >= before
      | _ -> true)

let suites =
  [
    ( "connectivity",
      [
        Alcotest.test_case "complete graph" `Quick test_complete_graph;
        Alcotest.test_case "circulant connectivity" `Quick
          test_circulant_connectivity;
        Alcotest.test_case "chain" `Quick test_chain;
        Alcotest.test_case "self and absent vertices" `Quick
          test_self_and_absent;
        Alcotest.test_case "cut vertex" `Quick test_bottleneck_vertex;
        Alcotest.test_case "restricted to allowed set" `Quick
          test_disjoint_paths_within;
        Alcotest.test_case "f-reachability" `Quick test_f_reachable;
        QCheck_alcotest.to_alcotest prop_paths_bounded_by_degrees;
        QCheck_alcotest.to_alcotest prop_adding_edges_monotone;
      ] );
  ]
