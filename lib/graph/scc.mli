(** Strongly connected components (Tarjan's algorithm).

    Queries run on the compiled {!Csr} kernel (memoized per graph
    value); graphs naming negative pids fall back to the seed tree-set
    implementation, which is also exposed as {!components_baseline} for
    equivalence tests and benchmarks. Both paths emit identical
    results, ordering included. *)

val components : Digraph.t -> Pid.Set.t list
(** The strongly connected components of the graph, in reverse
    topological order of the condensation (a component is listed before
    any component it has an edge to... specifically, Tarjan emits each
    component only after all components reachable from it). Every vertex
    appears in exactly one component. *)

val component_of : Digraph.t -> Pid.t -> Pid.Set.t
(** The component containing the given vertex.
    @raise Not_found if the vertex is not in the graph. *)

val component_index : Digraph.t -> int Pid.Map.t
(** Maps each vertex to the index of its component in [components]. *)

val is_strongly_connected : Digraph.t -> bool
(** Whether the whole (non-empty) graph is a single SCC. The empty graph
    is considered strongly connected. *)

val components_baseline : Digraph.t -> Pid.Set.t list
(** The seed tree-set Tarjan, kept verbatim: the fallback for
    negative-pid graphs and the qcheck/bench baseline for the CSR
    kernel. Same emission order as {!components}. *)
