lib/fbqs/analysis.mli: Graphkit Pid Quorum
