(* A condensation is either a thin view over the memoized CSR handle
   (the fast path — the SCC partition and DAG are computed once per
   graph value and shared by every query) or the seed record built from
   the tree-set algorithms (negative-pid fallback and test baseline).
   Both constructions produce identical component ids, DAG successor
   lists and sink ids — Csr's determinism contract. *)

type seed = {
  comps : Pid.Set.t array;
  index : int Pid.Map.t;
  dag : int list array;
}

type t = Dense of Csr.t | Seed of seed

let make_baseline g =
  let comps = Array.of_list (Scc.components_baseline g) in
  let index =
    Array.to_seqi comps
    |> Seq.fold_left
         (fun m (k, c) -> Pid.Set.fold (fun v m -> Pid.Map.add v k m) c m)
         Pid.Map.empty
  in
  let n = Array.length comps in
  let succ_sets = Array.make n [] in
  Digraph.fold_edges
    (fun i j () ->
      let ci = Pid.Map.find i index and cj = Pid.Map.find j index in
      if ci <> cj && not (List.mem cj succ_sets.(ci)) then
        succ_sets.(ci) <- cj :: succ_sets.(ci))
    g ();
  Seed { comps; index; dag = succ_sets }

let make g =
  match Csr.get g with Some h -> Dense h | None -> make_baseline g

let components = function
  | Dense h -> Csr.scc_component_sets h
  | Seed s -> s.comps

let component_of t i =
  match t with
  | Dense h -> (
      match Csr.scc_component_of h i with
      | Some k -> k
      | None -> raise Not_found)
  | Seed s -> (
      match Pid.Map.find_opt i s.index with
      | Some k -> k
      | None -> raise Not_found)

let dag_succs t k =
  match t with Dense h -> (Csr.dag_succs h).(k) | Seed s -> s.dag.(k)

let sinks = function
  | Dense h -> Csr.dag_sinks h
  | Seed s ->
      let acc = ref [] in
      Array.iteri (fun k succs -> if succs = [] then acc := k :: !acc) s.dag;
      List.rev !acc

let sink_components g =
  let t = make g in
  let comps = components t in
  List.map (fun k -> comps.(k)) (sinks t)

let sink_components_baseline g =
  let t = make_baseline g in
  let comps = components t in
  List.map (fun k -> comps.(k)) (sinks t)

let unique_sink g =
  match sink_components g with [ c ] -> Some c | _ -> None

let is_sink_member g i =
  List.exists (Pid.Set.mem i) (sink_components g)
