open Graphkit

let delete sys b =
  Pid.Map.filter_map
    (fun i slices ->
      if Pid.Set.mem i b then None
      else
        Some
          (match slices with
          | Slice.Explicit l ->
              Slice.Explicit (List.map (fun s -> Pid.Set.diff s b) l)
          | Slice.Threshold { members; threshold } ->
              (* Deleting [b] from "all t-subsets of members" yields the
                 set {s \ b}, whose weakest elements are the
                 (t - |members ∩ b|)-subsets of the survivors; both
                 has_slice_within and all_slices_intersect depend only
                 on those, so the result is exactly a threshold slice
                 over the survivors with the reduced threshold. *)
              let hit = Pid.Set.cardinal (Pid.Set.inter members b) in
              Slice.Threshold
                {
                  members = Pid.Set.diff members b;
                  threshold = max 0 (threshold - hit);
                }))
    sys

(* Mazières' definition: V \ B must be a quorum of the ORIGINAL system
   (or B covers everything) — availability is judged before deletion,
   intersection after. *)
let quorum_availability_despite sys b =
  let survivors = Pid.Set.diff (Quorum.participants sys) b in
  Pid.Set.is_empty survivors || Quorum.is_quorum sys survivors

let quorum_intersection_despite sys b =
  let deleted = delete sys b in
  let quorums = Quorum.enum_quorums deleted in
  let rec pairwise = function
    | [] -> true
    | q :: rest ->
        List.for_all
          (fun q' -> not (Pid.Set.is_empty (Pid.Set.inter q q')))
          rest
        && pairwise rest
  in
  pairwise quorums

(* [b] may name nodes outside the slice map (e.g. Byzantine processes
   that declared nothing): they belong to no quorum, so deleting them
   only prunes them out of others' slices. *)
let is_dset sys b =
  quorum_availability_despite sys b && quorum_intersection_despite sys b

let subsets_of set =
  let elts = Array.of_list (Pid.Set.elements set) in
  let n = Array.length elts in
  if n > 20 then invalid_arg "Dset: more than 20 participants";
  List.init (1 lsl n) (fun mask ->
      let s = ref Pid.Set.empty in
      for b = 0 to n - 1 do
        if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
      done;
      !s)

let all_dsets ?(extra = Pid.Set.empty) sys =
  List.filter (is_dset sys)
    (subsets_of (Pid.Set.union (Quorum.participants sys) extra))

let minimal_dsets sys =
  let dsets = all_dsets sys in
  List.filter
    (fun d ->
      not
        (List.exists
           (fun d' -> (not (Pid.Set.equal d d')) && Pid.Set.subset d' d)
           dsets))
    dsets

let intact sys ~faulty =
  let dsets = all_dsets ~extra:faulty sys in
  Pid.Set.filter
    (fun v ->
      List.exists
        (fun d -> Pid.Set.subset faulty d && not (Pid.Set.mem v d))
        dsets)
    (Quorum.participants sys)

let befouled sys ~faulty =
  Pid.Set.diff (Quorum.participants sys) (intact sys ~faulty)
