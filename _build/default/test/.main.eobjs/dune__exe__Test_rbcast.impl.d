test/test_rbcast.ml: Alcotest Builtin Cup Digraph Generators Graphkit Hashtbl List Msg Pid Printf QCheck QCheck_alcotest Queue Rbcast
