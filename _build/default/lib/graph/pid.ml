type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int

module Set = struct
  include Set.Make (Int)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      (elements s)

  let of_range lo hi =
    let rec go acc i = if i < lo then acc else go (add i acc) (i - 1) in
    go empty hi

  let to_string s = Format.asprintf "%a" pp s

  let choose_distinct k s =
    if cardinal s < k then None
    else
      let rec take k = function
        | _ when k = 0 -> []
        | [] -> []
        | x :: rest -> x :: take (k - 1) rest
      in
      Some (take k (elements s))
end

module Map = struct
  include Map.Make (Int)

  let keys m = fold (fun k _ acc -> Set.add k acc) m Set.empty

  let pp pp_v ppf m =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (k, v) -> Format.fprintf ppf "%d -> %a" k pp_v v))
      (bindings m)
end
