(** stellar-lint: AST-level determinism and protocol-purity rules.

    The analyzer parses sources with [Pparse] (compiler-libs) and walks
    the Parsetree with [Ast_iterator]. There is no typing pass, so
    every rule is a syntactic heuristic, scoped by the file's
    repo-relative path:

    - D1 — [Hashtbl.iter]/[Hashtbl.fold] whose result can escape in
      enumeration order. Allowed when an ordering step appears in the
      same expression: a [List.sort]-family call enclosing or inside
      the enumeration, or a conversion through a [Set]/[Map] submodule
      (e.g. folding into [Pid.Map.add]).
    - D2 — wall-clock and ambient entropy ([Random.self_init],
      [Unix.gettimeofday], [Unix.time], [Sys.time]) outside [bench/].
    - D3 — polymorphic [compare]/[(=)]/[(<>)]/[Hashtbl.hash] applied
      to [Pid.Set]/[Pid.Map]/[Slice] values; use the typed comparators.
    - D4 — [Marshal] outside the executor library ([lib/sim/pool.ml]
      and [lib/sim/exec.ml]), and [Obj.*] anywhere.
    - D5 — float [Printf]/[Format] conversions inside [lib/obs] render
      paths; JSON floats must go through the [Obs.Json] encoder.
    - D6 — shared-memory parallelism primitives ([Domain.spawn],
      [Mutex.*], [Condition.*]) outside [lib/sim/]; parallel work goes
      through [Simkit.Exec].
    - M1 — every [lib/] module must have an [.mli].

    Any finding on line [l] is waived by a
    [(* lint: allow RULE — reason *)] comment on line [l] or [l - 1];
    repo-wide grandfathering goes through [lint/baseline.txt]
    (matching on {!baseline_key}). *)

type finding = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;
  col : int;
  rule : string;
  message : string;
}

type report = {
  active : finding list;  (** findings that gate the build *)
  suppressed : finding list;  (** waived by a per-site allow comment *)
}

val to_string : finding -> string
(** ["file:line:col [RULE] message"] — the grep-friendly report line. *)

val baseline_key : finding -> string
(** ["file [RULE]"] — the granularity at which [lint/baseline.txt]
    entries grandfather findings. *)

val compare_finding : finding -> finding -> int
(** Order by file, then line, column and rule; the report order. *)

val allowed_rules_of_line : string -> string list
(** The rule names waived by a [lint: allow] comment on this source
    line; [[]] when the line carries no allow marker. *)

val lint_source : rel:string -> string -> report
(** [lint_source ~rel path] parses [path] (an [.ml] or [.mli],
    dispatched on extension) and runs rules D1–D6 scoped as if the
    file lived at [rel]. Unparseable sources yield a single [PARSE]
    finding. Both lists come back sorted by {!compare_finding}. *)

val rule_m1 : ml_files:string list -> mli_files:string list -> finding list
(** M1 over repo-relative path lists: every [lib/**.ml] without its
    sibling [.mli]. *)
