(* stellar-lint self-tests, syntactic phase: every rule fires on its
   positive fixture and stays silent on the negative one, per-site
   allow comments suppress, and the path scoping (bench/, lib/obs/,
   the lib/sim executor library) is honoured. Fixtures are parsed by
   compiler-libs only — they are never compiled, so they can violate
   the rules freely. The typed phase (R1/R2/P1/T1) is covered by
   Test_lint_typed over the compiled typed_fixtures corpus. *)

let fx name = Filename.concat "lint_fixtures" name

let run ?(rel = "lib/cup/fixture.ml") name =
  Rules_syntactic.lint_source ~rel (fx name)

let brief (f : Lint_core.finding) = (f.line, f.rule)

let check_active msg expected (report : Lint_core.report) =
  Alcotest.(check (list (pair int string)))
    msg expected
    (List.map brief report.active)

let test_d1 () =
  check_active "d1 positives" [ (2, "D1"); (3, "D1") ] (run "d1_pos.ml");
  check_active "d1 negatives" [] (run "d1_neg.ml")

let test_d1_allow () =
  let r = run "d1_allow.ml" in
  check_active "allow comment gates nothing" [] r;
  Alcotest.(check (list (pair int string)))
    "finding recorded as suppressed" [ (4, "D1") ]
    (List.map brief r.suppressed)

let test_d2 () =
  check_active "d2 positives"
    [ (2, "D2"); (3, "D2"); (4, "D2"); (5, "D2") ]
    (run "d2_pos.ml");
  check_active "d2 negatives" [] (run "d2_neg.ml");
  check_active "entropy is legal in bench/" []
    (run ~rel:"bench/fixture.ml" "d2_pos.ml")

let test_d3 () =
  check_active "d3 positives"
    [ (2, "D3"); (3, "D3"); (4, "D3"); (5, "D3") ]
    (run "d3_pos.ml");
  check_active "d3 negatives" [] (run "d3_neg.ml")

let test_d4 () =
  check_active "d4 positives" [ (2, "D4"); (3, "D4") ] (run "d4_pos.ml");
  check_active "d4 negatives" [] (run "d4_neg.ml");
  check_active "Marshal is legal in Simkit.Pool (Obj still is not)"
    [ (3, "D4") ]
    (run ~rel:"lib/sim/pool.ml" "d4_pos.ml");
  check_active "Marshal is legal in Simkit.Exec (Obj still is not)"
    [ (3, "D4") ]
    (run ~rel:"lib/sim/exec.ml" "d4_pos.ml")

let test_d5 () =
  check_active "d5 positives"
    [ (2, "D5"); (3, "D5") ]
    (run ~rel:"lib/obs/fixture.ml" "d5_pos.ml");
  check_active "d5 negatives" [] (run ~rel:"lib/obs/fixture.ml" "d5_neg.ml");
  check_active "float formats are legal outside lib/obs" [] (run "d5_pos.ml")

let test_d6 () =
  check_active "d6 positives"
    [ (2, "D6"); (3, "D6"); (4, "D6"); (5, "D6"); (6, "D6") ]
    (run "d6_pos.ml");
  check_active "d6 negatives" [] (run "d6_neg.ml");
  check_active "parallelism primitives are legal under lib/sim" []
    (run ~rel:"lib/sim/exec_domains_native.ml" "d6_pos.ml")

let test_m1 () =
  let files dir =
    Sys.readdir (fx dir) |> Array.to_list |> List.sort String.compare
    |> List.map (fun f -> "lib/" ^ dir ^ "/" ^ f)
  in
  let all = files "m1_pos" @ files "m1_neg" in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml") all in
  let mlis = List.filter (fun f -> Filename.check_suffix f ".mli") all in
  Alcotest.(check (list (pair string string)))
    "lonely.ml flagged, paired.ml not"
    [ ("lib/m1_pos/lonely.ml", "M1") ]
    (List.map
       (fun (f : Lint_core.finding) -> (f.file, f.rule))
       (Rules_syntactic.rule_m1 ~ml_files:mls ~mli_files:mlis));
  Alcotest.(check (list (pair string string)))
    "bin/ modules never need an mli" []
    (List.map
       (fun (f : Lint_core.finding) -> (f.file, f.rule))
       (Rules_syntactic.rule_m1 ~ml_files:[ "bin/cli.ml" ] ~mli_files:[]))

let test_allow_parsing () =
  Alcotest.(check (list string))
    "multi-rule allow" [ "D1"; "D3" ]
    (Lint_core.allowed_rules_of_line "(* lint: allow D1, D3 — reason *)");
  Alcotest.(check (list string))
    "no marker" []
    (Lint_core.allowed_rules_of_line "let x = 1")

let test_alias_allow () =
  (* T1 supersedes D3, so an existing [allow D3] waives T1 too. *)
  let allows = Hashtbl.create 4 in
  Hashtbl.replace allows 7 [ "D3" ];
  let t1 =
    Lint_core.mk ~file:"lib/cup/x.ml" ~line:7 ~col:0 ~rule:"T1" ~message:"m"
  in
  Alcotest.(check bool) "allow D3 waives T1" true (Lint_core.is_allowed allows t1);
  Alcotest.(check bool)
    "allow D3 does not waive R1" false
    (Lint_core.is_allowed allows { t1 with rule = "R1" })

let test_report_line () =
  let f =
    Lint_core.mk ~file:"lib/cup/x.ml" ~line:9 ~col:2 ~rule:"D1" ~message:"m"
  in
  Alcotest.(check string)
    "grep-friendly line" "lib/cup/x.ml:9:2 [D1] m" (Lint_core.to_string f);
  Alcotest.(check string)
    "chain rendered" "lib/cup/x.ml:9:2 [P1] m (chain: a -> b)"
    (Lint_core.to_string { f with rule = "P1"; chain = [ "a"; "b" ] });
  Alcotest.(check string)
    "baseline key carries the line" "lib/cup/x.ml:9 [D1]"
    (Lint_core.baseline_key f)

let test_baseline_regates () =
  (* The point of the line-keyed format: a baselined finding stops
     matching — and gates again — as soon as its site moves. *)
  let f =
    Lint_core.mk ~file:"lib/cup/x.ml" ~line:9 ~col:2 ~rule:"D1" ~message:"m"
  in
  let baseline = [ Lint_core.baseline_key f ] in
  Alcotest.(check bool)
    "unmoved finding stays baselined" true
    (List.mem (Lint_core.baseline_key f) baseline);
  Alcotest.(check bool)
    "moved finding gates again" false
    (List.mem (Lint_core.baseline_key { f with line = 10 }) baseline);
  (* --baseline-update regenerates exactly these keys, sorted. *)
  let g = { f with file = "lib/cup/a.ml"; rule = "T1" } in
  let rendered = Lint_core.render_baseline [ f; g ] in
  let body =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')
  in
  Alcotest.(check (list string))
    "render_baseline emits sorted keys"
    [ "lib/cup/a.ml:9 [T1]"; "lib/cup/x.ml:9 [D1]" ]
    body

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "D1 fires and passes ordering steps" `Quick test_d1;
        Alcotest.test_case "D1 per-site allow" `Quick test_d1_allow;
        Alcotest.test_case "D2 entropy, bench/ scoped" `Quick test_d2;
        Alcotest.test_case "D3 polymorphic comparison" `Quick test_d3;
        Alcotest.test_case "D4 Marshal/Obj, Pool scoped" `Quick test_d4;
        Alcotest.test_case "D5 float formats in lib/obs" `Quick test_d5;
        Alcotest.test_case "D6 parallelism primitives, lib/sim scoped" `Quick
          test_d6;
        Alcotest.test_case "M1 missing mli" `Quick test_m1;
        Alcotest.test_case "allow-comment parsing" `Quick test_allow_parsing;
        Alcotest.test_case "allow D3 also waives T1" `Quick test_alias_allow;
        Alcotest.test_case "report and baseline formats" `Quick
          test_report_line;
        Alcotest.test_case "line-keyed baseline re-gates on move" `Quick
          test_baseline_regates;
      ] );
  ]
