test/test_parse.ml: Alcotest Builtin Digraph Graphkit Parse Pid QCheck QCheck_alcotest String
