test/test_schedule_fuzz.ml: Alcotest Builtin Cup Fbqs Generators Graphkit List Pid QCheck QCheck_alcotest Runner Scp Simkit Value
