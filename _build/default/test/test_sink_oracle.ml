open Graphkit
open Cup

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_fig1_answers () =
  Pid.Set.iter
    (fun i ->
      let a = Sink_oracle.get_sink Builtin.fig1 i in
      Alcotest.(check bool)
        (Printf.sprintf "in_sink for %d" i)
        (Pid.Set.mem i Builtin.fig1_sink)
        a.in_sink;
      Alcotest.check pid_set
        (Printf.sprintf "view for %d" i)
        Builtin.fig1_sink a.view)
    (Digraph.vertices Builtin.fig1)

let test_no_unique_sink_rejected () =
  let g = Digraph.of_edges [ (1, 2); (1, 3) ] in
  Alcotest.check_raises "two sinks"
    (Invalid_argument "Sink_oracle: graph has no unique sink component")
    (fun () -> ignore (Sink_oracle.get_sink g 1))

let test_restricted_oracle_definition8 () =
  let f = 1 in
  let faulty = Pid.Set.singleton 8 in
  let correct = Pid.Set.diff (Digraph.vertices Builtin.fig1) faulty in
  Pid.Set.iter
    (fun i ->
      let a =
        Sink_oracle.get_sink_restricted ~seed:3 ~f ~correct Builtin.fig1 i
      in
      if Pid.Set.mem i Builtin.fig1_sink then begin
        Alcotest.(check bool) "sink member flagged" true a.in_sink;
        Alcotest.check pid_set "sink member gets full V_sink"
          Builtin.fig1_sink a.view
      end
      else begin
        Alcotest.(check bool) "non-sink flagged" false a.in_sink;
        Alcotest.(check bool) "view within V_sink" true
          (Pid.Set.subset a.view Builtin.fig1_sink);
        Alcotest.(check bool)
          "at least f+1 correct sink members"
          true
          (Pid.Set.cardinal (Pid.Set.inter a.view correct) >= f + 1)
      end)
    (Digraph.vertices Builtin.fig1)

let test_restricted_deterministic () =
  let f = 1 in
  let correct = Pid.Set.of_range 1 7 in
  let a1 = Sink_oracle.get_sink_restricted ~seed:5 ~f ~correct Builtin.fig1 1 in
  let a2 = Sink_oracle.get_sink_restricted ~seed:5 ~f ~correct Builtin.fig1 1 in
  Alcotest.check pid_set "same seed, same view" a1.view a2.view

let prop_oracle_on_random_graphs =
  QCheck.Test.make ~count:40 ~name:"oracle answers satisfy Definition 8"
    QCheck.(pair (int_bound 500) (int_range 1 2))
    (fun (seed, f) ->
      let sink_size = (3 * f) + 2 in
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size ~non_sink:3 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let correct = Pid.Set.diff (Digraph.vertices g) faulty in
      Pid.Set.for_all
        (fun i ->
          let a = Sink_oracle.get_sink_restricted ~seed ~f ~correct g i in
          if Pid.Set.mem i sink then a.in_sink && Pid.Set.equal a.view sink
          else
            (not a.in_sink)
            && Pid.Set.subset a.view sink
            && Pid.Set.cardinal (Pid.Set.inter a.view correct) >= f + 1)
        (Digraph.vertices g))

let suites =
  [
    ( "sink_oracle",
      [
        Alcotest.test_case "fig1 answers" `Quick test_fig1_answers;
        Alcotest.test_case "no unique sink rejected" `Quick
          test_no_unique_sink_rejected;
        Alcotest.test_case "restricted oracle meets Definition 8" `Quick
          test_restricted_oracle_definition8;
        Alcotest.test_case "restricted oracle deterministic" `Quick
          test_restricted_deterministic;
        QCheck_alcotest.to_alcotest prop_oracle_on_random_graphs;
      ] );
  ]
