(** The knowledge-dissemination core of the SINK primitive
    (Alchieri et al., reconstructed; see DESIGN.md for the fidelity
    notes).

    Each process maintains a [known] set seeded with [{i} ∪ PD_i] and
    grown by exchanging [Know] messages with the processes it knows.
    Fabricated ids are filtered by an [f + 1]-voucher rule: an id that
    is not first-hand knowledge is accepted only once [f + 1] distinct
    known processes have claimed it, so at least one claimant is
    correct and the id is real.

    SINK termination (step 3 of the primitive): a process declares
    itself a sink member once at least [|known| - f] members of [known]
    (itself included) report a known set equal to its own. Correct sink
    members eventually converge on [V_sink] and pass the test; the test
    is unsatisfiable for correct non-sink members because their known
    set strictly contains the ≥ 2f+1 correct sink members' sets. *)

open Graphkit

type t

val create : self:Pid.t -> pd:Pid.Set.t -> f:int -> t

val known : t -> Pid.Set.t

val sink_result : t -> Pid.Set.t option
(** [Some v] once the SINK termination test has passed; the process is
    a sink member and [v] is its converged view of [V_sink]. *)

val start : t -> send:(Pid.t -> Msg.t -> unit) -> unit
(** Sends the initial subscription round. *)

val on_know_request :
  t -> send:(Pid.t -> Msg.t -> unit) -> src:Pid.t -> unit

val on_know :
  t -> send:(Pid.t -> Msg.t -> unit) -> src:Pid.t -> Pid.Set.t -> unit

val check_sink : t -> Pid.Set.t option
(** Re-evaluates the termination test (also done internally after every
    update) and returns the current result. *)
