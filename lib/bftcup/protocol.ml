open Graphkit
open Simkit

type outcome = {
  decisions : Scp.Value.t Pid.Map.t;
  all_decided : bool;
  agreement : bool;
  validity : bool;
  discovery_stats : Engine.stats;
  consensus_stats : Engine.stats;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>all_decided=%b agreement=%b validity=%b disc_msgs=%d cons_msgs=%d@]"
    o.all_decided o.agreement o.validity o.discovery_stats.messages_sent
    o.consensus_stats.messages_sent

(* Stage 2/3 behaviour for a non-sink member: poll the sink members of
   the discovered view and adopt a value confirmed by f+1 of them. *)
let requester ~self ~view ~f ~on_decide : Pbft.msg Engine.behavior =
  let replies = ref Pid.Map.empty in
  let decided = ref false in
  let on_start ctx =
    Pid.Set.iter
      (fun j -> Engine.send ctx j Pbft.Decision_req)
      (Pid.Set.remove self view)
  in
  let on_message _ctx ~src m =
    match m with
    | Pbft.Decision v when not !decided ->
        if Pid.Set.mem src view then begin
          replies := Pid.Map.add src v !replies;
          let count =
            Pid.Map.fold
              (fun _ v' n -> if Scp.Value.equal v v' then n + 1 else n)
              !replies 0
          in
          if count >= f + 1 then begin
            decided := true;
            on_decide self v
          end
        end
    | _ -> ()
  in
  { Engine.idle_behavior with on_start; on_message }

let run ?(seed = 0) ?(gst = 50) ?(delta = 5) ?(max_time = 200_000)
    ?(view_timeout = 60) ~graph ~f ~initial_value_of ~faulty () =
  let fault_of i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  (* Stage 1: knowledge acquisition. *)
  let discovery =
    Cup.Sink_protocol.run_cfg
      ~cfg:{ Run_config.default with seed; gst; delta; max_time }
      ~graph ~f ~fault_of ()
  in
  (* Stage 2 + 3: consensus among the sink, dissemination outwards. *)
  let engine =
    Engine.create_cfg ~pp_msg:Pbft.pp_msg
      {
        Run_config.default with
        seed = seed + 1;
        gst;
        delta;
        max_time = 1_000_000;
      }
  in
  let decisions = ref Pid.Map.empty in
  let correct = Pid.Set.diff (Digraph.vertices graph) faulty in
  let expected =
    (* only processes that completed discovery can take part *)
    Pid.Set.filter
      (fun i -> Pid.Map.mem i discovery.answers)
      correct
  in
  Pid.Set.iter
    (fun i ->
      if Pid.Set.mem i faulty then Engine.add_node engine i Pbft.silent
      else
        match Pid.Map.find_opt i discovery.answers with
        | None -> ()
        | Some (a : Cup.Sink_oracle.answer) ->
            if a.in_sink then
              Engine.add_node engine i
                (Pbft.behavior
                   {
                     Pbft.self = i;
                     members = a.view;
                     f;
                     initial_value = initial_value_of i;
                     view_timeout;
                     on_decide =
                       (fun pid (d : Pbft.decision) ->
                         decisions := Pid.Map.add pid d.value !decisions);
                   })
            else
              Engine.add_node engine i
                (requester ~self:i ~view:a.view ~f ~on_decide:(fun pid v ->
                     decisions := Pid.Map.add pid v !decisions)))
    (Digraph.vertices graph);
  let all_decided () =
    Pid.Set.for_all (fun i -> Pid.Map.mem i !decisions) expected
  in
  let consensus_stats = Engine.run ~max_time ~stop:all_decided engine in
  let decisions = !decisions in
  let values = Pid.Map.fold (fun _ v acc -> v :: acc) decisions [] in
  let agreement =
    match values with
    | [] -> true
    | v :: rest -> List.for_all (Scp.Value.equal v) rest
  in
  let proposed =
    Pid.Set.fold
      (fun i acc -> Scp.Value.union acc (initial_value_of i))
      (Digraph.vertices graph) Scp.Value.empty
  in
  let validity =
    List.for_all
      (fun v ->
        List.for_all
          (fun tx -> List.mem tx (Scp.Value.to_list proposed))
          (Scp.Value.to_list v))
      values
  in
  {
    decisions;
    all_decided =
      all_decided () && Pid.Set.equal expected correct;
    agreement;
    validity;
    discovery_stats = discovery.stats;
    consensus_stats;
  }
