(** The unified run configuration.

    One record carries everything that shapes an execution — the seed,
    the partial-synchrony parameters, the time budget, an optional
    explicit delay model, and the observability sinks — and is accepted
    by {!Engine.create_cfg}, [Scp.Runner.run_cfg],
    [Cup.Sink_protocol.run_cfg] and the [Stellar_cup.Pipeline] entry
    points, replacing their formerly divergent optional-argument lists.
    CLI subcommands build a single value of this type and pass it down
    the whole stack. *)

type t = {
  seed : int;  (** drives the delay model's randomness *)
  gst : int;  (** global stabilization time *)
  delta : int;  (** post-GST delay bound *)
  max_time : int;  (** logical-time budget for the run *)
  delay : Delay.t option;
      (** explicit delay model; overrides [seed]/[gst]/[delta] (used to
          plug in {!Delay.targeted} adversaries) *)
  metrics : Obs.Metrics.t option;  (** counter/gauge/histogram sink *)
  trace : Obs.Trace.sink option;  (** structured trace-event sink *)
}

val default : t
(** [seed = 0], [gst = 50], [delta = 5], [max_time = 200_000], no
    explicit delay model, no observability sinks. *)

val with_seed : int -> t -> t
(** Convenience for seed sweeps: [{ cfg with seed }]. *)

val delay_model : t -> Delay.t
(** The explicit [delay] when given, otherwise
    [Delay.partial_synchrony ~gst ~delta ~seed]. Builds a fresh model
    (fresh RNG state) on every call. *)
