(** The concrete knowledge-connectivity graphs used throughout the
    paper: the running example of Fig. 1 and the Theorem 2
    counter-example of Fig. 2. *)

val fig1 : Digraph.t
(** The 8-participant graph of Fig. 1. [PD_1 = {2,5}], [PD_2 = {4}],
    [PD_3 = {5,7}], [PD_4 = {5,6,8}], [PD_5 = {6,7}], [PD_6 = {5,7,8}],
    [PD_7 = {5,6,8}] (these are the unions of the slices listed in
    Section III-D) and [PD_8 = {5,7}] (the figure's sink membership of 8
    forces [PD_8] inside the sink; the exact edges of 8 are not
    printed in the paper's text, so we pick a representative choice and
    validate the stated structure in tests). Participants 5-8 form the
    sink component. *)

val fig1_sink : Pid.Set.t
(** [{5, 6, 7, 8}]. *)

val fig1_faulty : Pid.Set.t
(** [{8}] — the faulty set assumed by the Section III-D example. *)

val fig1_slices : (Pid.t * Pid.Set.t list) list
(** The slice assignment of the Section III-D example:
    [S_1 = {{2,5}}], [S_2 = {{4}}], [S_3 = {{5,7}}],
    [S_4 = {{5,6},{6,8}}], [S_5 = {{6,7}}], [S_6 = {{5,7},{7,8}}],
    [S_7 = {{5,6},{6,8}}]. Process 8 is Byzantine and declares no
    slices. *)

val fig2 : Digraph.t
(** A 7-participant graph realising Fig. 2: a 3-OSR knowledge graph with
    [V_sink = {1,2,3,4}] (a complete digraph) and non-sink members
    [{5,6,7}] with [PD_5 = {6,7,1}], [PD_6 = {5,7,2}], [PD_7 = {5,6,3}].
    With the local slice rule of Theorem 2 (all subsets of [PD_i] of
    size [|PD_i| - 1]) both [{5,6,7}] and [{1,2,3,4}] are quorums, and
    they are disjoint. The paper's figure is reconstructed from its
    stated properties; every property (3-OSR, the two quorums, the
    Byzantine-safety for f = 1) is machine-checked in the test suite. *)

val fig2_sink : Pid.Set.t
(** [{1, 2, 3, 4}]. *)

val fig2_quorum_sinkside : Pid.Set.t
(** [{1, 2, 3, 4}] — the dashed quorum formed by sink members. *)

val fig2_quorum_nonsink : Pid.Set.t
(** [{5, 6, 7}] — the dashed quorum formed by non-sink members. *)
