lib/cup/participant_detector.mli: Digraph Format Graphkit Pid
