lib/scp/value.mli: Format
