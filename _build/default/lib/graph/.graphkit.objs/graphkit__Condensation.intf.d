lib/graph/condensation.mli: Digraph Pid
