(** Consensus values.

    A value is a finite set of integers, standing for a batch of
    transactions as in the Stellar ledger: nomination can then merge
    candidate values with a deterministic, associative, commutative
    [combine] (set union), exactly the property SCP's nomination
    protocol requires. *)

type t

val of_ints : int list -> t

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val union : t -> t -> t

val combine : t list -> t
(** Deterministic merge of candidate values (set union); [empty] for
    the empty list. *)

val compare : t -> t -> int
(** Total order (by cardinality, then lexicographically on elements) —
    ballots need a total order on values. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_list : t -> int list
