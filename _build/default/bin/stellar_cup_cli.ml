(* stellar-cup — command-line front end.

   Subcommands:
     analyze     structural analysis of a knowledge graph (SCC, sink,
                 k-OSR, Byzantine safety)
     sink        run the distributed sink detector (Algorithm 3)
     consensus   run a consensus pipeline (scp-local / scp-sd / bftcup)
     experiment  print one experiment table (e1..e12, e4b) or all
     dot         emit a Graphviz rendering of a generated graph

   Graphs are selected with --graph fig1 | fig2 | random | family plus
   the generator parameters. *)

open Graphkit
open Cmdliner

(* ---- graph selection -------------------------------------------------- *)

type graph_spec = {
  kind : string;
  seed : int;
  sink_size : int;
  non_sink : int;
  f : int;
}

let build_graph spec =
  match spec.kind with
  | "fig1" -> Builtin.fig1
  | "fig2" -> Builtin.fig2
  | "family" ->
      Generators.fig2_family ~sink_size:spec.sink_size
        ~non_sink:spec.non_sink
  | "random" ->
      Generators.random_k_osr ~seed:spec.seed ~sink_size:spec.sink_size
        ~non_sink:spec.non_sink
        ~k:((2 * spec.f) + 1)
        ()
  | other when String.length other > 5 && String.sub other 0 5 = "file:" -> (
      let path = String.sub other 5 (String.length other - 5) in
      match Parse.of_file path with
      | Ok g -> g
      | Error e -> failwith (Printf.sprintf "cannot read %s: %s" path e))
  | other -> failwith (Printf.sprintf "unknown graph kind %S" other)

let graph_term =
  let kind =
    Arg.(
      value
      & opt string "fig2"
      & info [ "graph" ] ~docv:"KIND"
          ~doc:"Graph: fig1, fig2, family (generalized counter-example), \
                random (k-OSR with k = 2f+1), or file:PATH (adjacency \
                list: one 'vertex: succ succ ...' line per vertex).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let sink_size =
    Arg.(
      value & opt int 5
      & info [ "sink-size" ] ~docv:"N" ~doc:"Sink size for generators.")
  in
  let non_sink =
    Arg.(
      value & opt int 4
      & info [ "non-sink" ] ~docv:"N"
          ~doc:"Number of non-sink members for generators.")
  in
  let f =
    Arg.(
      value & opt int 1
      & info [ "f" ] ~docv:"N" ~doc:"Fault threshold f.")
  in
  let make kind seed sink_size non_sink f =
    { kind; seed; sink_size; non_sink; f }
  in
  Term.(const make $ kind $ seed $ sink_size $ non_sink $ f)

let faulty_term =
  Arg.(
    value
    & opt (list int) []
    & info [ "faulty" ] ~docv:"IDS"
        ~doc:"Comma-separated ids of silent Byzantine processes.")

(* ---- analyze ----------------------------------------------------------- *)

let analyze spec faulty_ids =
  let g = build_graph spec in
  let f = spec.f in
  let faulty = Pid.Set.of_list faulty_ids in
  Format.printf "knowledge graph:@.%a@." Digraph.pp g;
  Format.printf "%a@." Metrics.pp (Metrics.compute g);
  List.iteri
    (fun i c -> Format.printf "scc %d: %a@." i Pid.Set.pp c)
    (Scc.components g);
  (match Condensation.unique_sink g with
  | Some sink ->
      Format.printf "unique sink component: %a@." Pid.Set.pp sink;
      Format.printf "sink connectivity: %d@."
        (Connectivity.vertex_connectivity (Digraph.subgraph sink g))
  | None -> Format.printf "no unique sink component@.");
  List.iter
    (fun k ->
      match Properties.check_k_osr g k with
      | Ok _ -> Format.printf "%d-OSR: yes@." k
      | Error e ->
          Format.printf "%d-OSR: no (%a)@." k Properties.pp_osr_failure e)
    [ 1; f + 1; (2 * f) + 1 ];
  if not (Pid.Set.is_empty faulty) then begin
    Format.printf "F = %a@." Pid.Set.pp faulty;
    Format.printf "byzantine-safe for F: %b@."
      (Properties.is_byzantine_safe g ~f ~faulty);
    Format.printf "solvable (Theorem 1): %b@."
      (Properties.solvable g ~f ~faulty)
  end

(* ---- sink ------------------------------------------------------------- *)

let run_sink spec faulty_ids =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  let r =
    Cup.Sink_protocol.run ~seed:spec.seed ~graph:g ~f:spec.f ~fault_of ()
  in
  Format.printf "messages: %d, simulated ticks: %d@." r.stats.messages_sent
    r.stats.end_time;
  Pid.Set.iter
    (fun i ->
      match Pid.Map.find_opt i r.answers with
      | Some (a : Cup.Sink_oracle.answer) ->
          Format.printf "%d: get_sink -> (%b, %a)@." i a.in_sink Pid.Set.pp
            a.view
      | None ->
          if Pid.Set.mem i faulty then Format.printf "%d: (faulty)@." i
          else Format.printf "%d: no answer@." i)
    (Digraph.vertices g)

(* ---- consensus --------------------------------------------------------- *)

let run_consensus spec faulty_ids pipeline =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  let initial_value_of i = Scp.Value.of_ints [ i ] in
  let verdict =
    match pipeline with
    | "scp-local" ->
        Stellar_cup.Pipeline.scp_with_local_slices ~seed:spec.seed ~graph:g
          ~f:spec.f ~faulty ~initial_value_of ()
    | "scp-sd" ->
        Stellar_cup.Pipeline.scp_with_sink_detector ~seed:spec.seed ~graph:g
          ~f:spec.f ~faulty ~initial_value_of ()
    | "bftcup" ->
        Stellar_cup.Pipeline.bftcup ~seed:spec.seed ~graph:g ~f:spec.f ~faulty
          ~initial_value_of ()
    | other -> failwith (Printf.sprintf "unknown pipeline %S" other)
  in
  Format.printf "%s: %a@." pipeline Stellar_cup.Pipeline.pp_verdict verdict

let pipeline_term =
  Arg.(
    value
    & opt string "scp-sd"
    & info [ "pipeline" ] ~docv:"P"
        ~doc:"Consensus stack: scp-local (Theorem 2 strawman), scp-sd \
              (Corollary 2) or bftcup (baseline).")

(* ---- experiment -------------------------------------------------------- *)

let run_experiment which markdown =
  let tables =
    match which with
    | "all" -> Stellar_cup.Experiments.all ()
    | "e1" -> [ Stellar_cup.Experiments.e1_fig1_example () ]
    | "e2" -> [ Stellar_cup.Experiments.e2_is_quorum () ]
    | "e3" -> [ Stellar_cup.Experiments.e3_theorem2_violation () ]
    | "e4" -> [ Stellar_cup.Experiments.e4_algorithm2_intertwined () ]
    | "e4b" -> [ Stellar_cup.Experiments.e4b_threshold_ablation () ]
    | "e5" -> [ Stellar_cup.Experiments.e5_availability () ]
    | "e6" -> [ Stellar_cup.Experiments.e6_sink_detector () ]
    | "e7" -> [ Stellar_cup.Experiments.e7_reachable_broadcast () ]
    | "e8" -> [ Stellar_cup.Experiments.e8_pipelines () ]
    | "e9" -> [ Stellar_cup.Experiments.e9_graph_machinery () ]
    | "e10" -> [ Stellar_cup.Experiments.e10_restricted_oracle () ]
    | "e11" -> [ Stellar_cup.Experiments.e11_gst_sweep () ]
    | "e12" -> [ Stellar_cup.Experiments.e12_nomination_ablation () ]
    | other -> failwith (Printf.sprintf "unknown experiment %S" other)
  in
  if markdown then
    List.iter (fun t -> print_string (Stellar_cup.Report.to_markdown t)) tables
  else List.iter Stellar_cup.Report.print tables

(* ---- dot --------------------------------------------------------------- *)

let emit_dot spec faulty_ids output =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  let highlight =
    Option.value ~default:Pid.Set.empty (Condensation.unique_sink g)
  in
  match output with
  | "-" -> print_string (Dot.to_dot ~highlight ~faulty g)
  | path ->
      Dot.to_file ~highlight ~faulty path g;
      Format.printf "wrote %s@." path

(* ---- command wiring ---------------------------------------------------- *)

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Analyse a knowledge-connectivity graph")
    Term.(const analyze $ graph_term $ faulty_term)

let sink_cmd =
  Cmd.v
    (Cmd.info "sink" ~doc:"Run the distributed sink detector (Algorithm 3)")
    Term.(const run_sink $ graph_term $ faulty_term)

let consensus_cmd =
  Cmd.v (Cmd.info "consensus" ~doc:"Run a consensus pipeline")
    Term.(const run_consensus $ graph_term $ faulty_term $ pipeline_term)

let experiment_cmd =
  let which =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (e1..e12, e4b) or 'all'.")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit Markdown tables.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper artifact")
    Term.(const run_experiment $ which $ markdown)

let dot_cmd =
  let output =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output path ('-': stdout).")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Emit a Graphviz rendering")
    Term.(const emit_dot $ graph_term $ faulty_term $ output)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "stellar-cup" ~version:"1.0.0"
      ~doc:
        "Stellar consensus with minimal knowledge (ICDCS 2023 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ analyze_cmd; sink_cmd; consensus_cmd; experiment_cmd; dot_cmd ]))
