open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal
let pid_sets = Alcotest.(list pid_set)

(* Canonical order shared with Enum: ascending cardinality, then set
   compare — lets us diff whole set families against brute force. *)
let canonical sets =
  List.sort_uniq
    (fun a b ->
      match Int.compare (Pid.Set.cardinal a) (Pid.Set.cardinal b) with
      | 0 -> Pid.Set.compare a b
      | c -> c)
    sets

let subsets universe =
  let elts = Array.of_list (Pid.Set.elements universe) in
  let n = Array.length elts in
  List.init (1 lsl n) (fun mask ->
      let s = ref Pid.Set.empty in
      for b = 0 to n - 1 do
        if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
      done;
      !s)

let sets_equal a b =
  List.length a = List.length b && List.for_all2 Pid.Set.equal a b

let minimal_of sets =
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (Pid.Set.equal s s')) && Pid.Set.subset s' s)
           sets))
    sets

(* Classic 4-node 3f+1 system. *)
let pbft4 =
  let members = Pid.Set.of_range 1 4 in
  Quorum.system_of_list
    (List.map
       (fun i -> (i, Slice.threshold ~members ~threshold:3))
       (Pid.Set.elements members))

(* Two self-sufficient cliques: the canonical intersection
   counterexample (two disjoint quorums from the start). *)
let cliques =
  Quorum.system_of_list
    [
      (1, Slice.explicit [ set [ 1; 2 ] ]);
      (2, Slice.explicit [ set [ 1; 2 ] ]);
      (3, Slice.explicit [ set [ 3; 4 ] ]);
      (4, Slice.explicit [ set [ 3; 4 ] ]);
    ]

let test_pbft4 () =
  let t = Enum.prepare pbft4 in
  Alcotest.check pid_sets "minimal quorums = 3-subsets"
    (canonical
       (List.filter (fun s -> Pid.Set.cardinal s = 3)
          (subsets (Pid.Set.of_range 1 4))))
    (Enum.minimal_quorums t);
  Alcotest.check pid_set "top tier" (Pid.Set.of_range 1 4) (Enum.top_tier t);
  (match Enum.check_intersection t with
  | Enum.Intersects -> ()
  | Enum.Disjoint _ -> Alcotest.fail "pbft4 quorums intersect");
  let b = Enum.minimal_blocking_sets t in
  Alcotest.(check bool) "blocking complete" true b.Enum.complete;
  Alcotest.check pid_sets "blocking = 2-subsets"
    (canonical
       (List.filter (fun s -> Pid.Set.cardinal s = 2)
          (subsets (Pid.Set.of_range 1 4))))
    b.Enum.sets;
  Alcotest.check pid_sets "splitting = 2-subsets"
    (canonical
       (List.filter (fun s -> Pid.Set.cardinal s = 2)
          (subsets (Pid.Set.of_range 1 4))))
    (Enum.minimal_splitting_sets t)

let test_disjoint_cliques () =
  let t = Enum.prepare cliques in
  (match Enum.check_intersection t with
  | Enum.Intersects -> Alcotest.fail "cliques have disjoint quorums"
  | Enum.Disjoint (q1, q2) ->
      Alcotest.(check bool) "witness disjoint" true
        (Pid.Set.is_empty (Pid.Set.inter q1 q2));
      Alcotest.(check bool) "both are quorums" true
        (Quorum.is_quorum cliques q1 && Quorum.is_quorum cliques q2));
  Alcotest.(check bool) "deleting one clique restores intersection" true
    (Enum.quorum_intersection_despite cliques (set [ 3; 4 ]));
  Alcotest.check pid_sets "empty set splits"
    [ Pid.Set.empty ]
    (Enum.minimal_splitting_sets t)

let test_fig2_algorithm2 () =
  (* The paper's Fig. 2 running example with Algorithm 2 slices. *)
  let sys = Cup.Slice_builder.system_via_oracle ~f:1 Builtin.fig2 in
  let t = Enum.prepare sys in
  Alcotest.check pid_sets "minimal quorums match Gosper"
    (canonical (Quorum.minimal_quorums sys))
    (Enum.minimal_quorums t);
  (match Enum.check_intersection t with
  | Enum.Intersects -> ()
  | Enum.Disjoint _ -> Alcotest.fail "fig2 quorums intersect");
  Alcotest.check pid_set "top tier matches baseline"
    (Analysis.top_tier_baseline sys)
    (Enum.top_tier t)

let test_stats_move () =
  let t = Enum.prepare pbft4 in
  ignore (Enum.minimal_quorums t);
  let s = Enum.stats t in
  Alcotest.(check bool) "explored > 0" true (s.Enum.explored > 0);
  Alcotest.(check int) "found = minimal quorum count" 4 s.Enum.found

(* ---- fixture provenance ------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fixture_provenance () =
  (* The committed live-network fixture is exactly what the generator
     produces at the default seed — regenerating must be a no-op on
     every OCaml version (the generator uses its own LCG, not
     [Random]). *)
  let generated = Fbas_io.to_string (Topology.stellarbeat_like ()) in
  Alcotest.(check string)
    "fixtures/live_network.fbas = stellarbeat_like ()"
    (read_file "fixtures/live_network.fbas")
    generated

let test_fixture_analysis () =
  (* Smoke the committed fixture at full scale: the CI analyzer gate
     depends on these shapes staying put. *)
  match Fbas_io.of_file "fixtures/live_network.fbas" with
  | Error e -> Alcotest.fail e
  | Ok sys ->
      let t = Enum.prepare sys in
      Alcotest.(check int) "participants" 210
        (Pid.Set.cardinal (Quorum.participants sys));
      Alcotest.(check int) "minimal quorums" 519
        (List.length (Enum.minimal_quorums t));
      Alcotest.check pid_set "top tier = the 21 top validators"
        (Pid.Set.of_range 0 20) (Enum.top_tier t);
      (match Enum.check_intersection t with
      | Enum.Intersects -> ()
      | Enum.Disjoint _ -> Alcotest.fail "fixture enjoys intersection")

(* ---- random systems ---------------------------------------------------- *)

(* Deterministic explicit-slice system from an int seed: n nodes, each
   with 1-3 slices over arbitrary subsets. Same LCG trick as
   [Topology] — the qcheck cases must replay identically under both
   OCaml 4.x and 5.x. *)
let random_system seed n =
  let state = ref (((seed * 2862933555777941757) + 3037000493) land max_int) in
  let next bound =
    state :=
      ((!state * 2685821657736338717) + 1442695040888963407) land max_int;
    (!state lsr 17) mod bound
  in
  Quorum.system_of_list
    (List.init n (fun i ->
         let i = i + 1 in
         let n_slices = 1 + next 3 in
         let slice () =
           let s =
             List.filter (fun _ -> next 2 = 0)
               (List.init n (fun j -> j + 1))
           in
           Pid.Set.of_list (if s = [] then [ i ] else s)
         in
         (i, Slice.explicit (List.init n_slices (fun _ -> slice ())))))

let sys_arb =
  QCheck.(
    map
      (fun (seed, n) -> (seed, n, random_system seed n))
      (pair (int_range 0 100000) (int_range 1 7)))
  |> QCheck.set_print (fun (seed, n, _) -> Printf.sprintf "seed=%d n=%d" seed n)

let prop_minimal_quorums_equiv =
  QCheck.Test.make ~count:200 ~name:"B&B minimal quorums = Gosper"
    sys_arb
    (fun (_, _, sys) ->
      sets_equal
        (Enum.minimal_quorums (Enum.prepare sys))
        (canonical (Quorum.minimal_quorums sys)))

let prop_intersection_equiv =
  QCheck.Test.make ~count:200 ~name:"intersection = baseline despite {}"
    sys_arb
    (fun (_, _, sys) ->
      let bb =
        match Enum.quorum_intersection sys with
        | Enum.Intersects -> true
        | Enum.Disjoint _ -> false
      in
      bb = Dset.quorum_intersection_despite_baseline sys Pid.Set.empty)

let prop_despite_equiv =
  QCheck.Test.make ~count:200 ~name:"intersection despite = baseline"
    QCheck.(pair sys_arb (int_range 0 127))
    (fun ((_, n, sys), bmask) ->
      let b =
        Pid.Set.filter
          (fun i -> bmask land (1 lsl (i - 1)) <> 0)
          (Pid.Set.of_range 1 n)
      in
      Enum.quorum_intersection_despite sys b
      = Dset.quorum_intersection_despite_baseline sys b)

let prop_blocking_equiv =
  (* Brute force: a set blocks iff its complement contains no quorum;
     minimal blocking sets are the inclusion-minimal such sets. *)
  QCheck.Test.make ~count:200 ~name:"B&B blocking sets = brute force"
    sys_arb
    (fun (_, _, sys) ->
      let parts = Quorum.participants sys in
      let brute =
        canonical
          (minimal_of
             (List.filter
                (fun b ->
                  (not (Pid.Set.is_empty b))
                  && not (Quorum.contains_quorum sys (Pid.Set.diff parts b)))
                (subsets parts)))
      in
      let r = Enum.minimal_blocking_sets (Enum.prepare sys) in
      r.Enum.complete && sets_equal r.Enum.sets brute)

let prop_splitting_equiv =
  QCheck.Test.make ~count:100 ~name:"splitting sets = baseline"
    sys_arb
    (fun (_, _, sys) ->
      sets_equal
        (canonical (Analysis.splitting_sets_baseline sys))
        (Enum.minimal_splitting_sets
           ~universe:(Quorum.participants sys)
           (Enum.prepare sys)))

let prop_fbas_io_roundtrip =
  QCheck.Test.make ~count:200 ~name:"fbas_io print/parse roundtrip"
    sys_arb
    (fun (_, _, sys) ->
      match Fbas_io.of_string (Fbas_io.to_string sys) with
      | Error _ -> false
      | Ok sys' ->
          Pid.Map.equal
            (fun a b ->
              match (a, b) with
              | Slice.Explicit xs, Slice.Explicit ys ->
                  List.length xs = List.length ys
                  && List.for_all2 Pid.Set.equal xs ys
              | ( Slice.Threshold { members = m1; threshold = t1 },
                  Slice.Threshold { members = m2; threshold = t2 } ) ->
                  Pid.Set.equal m1 m2 && t1 = t2
              | _ -> false)
            sys sys')

let prop_fbas_io_threshold_roundtrip =
  QCheck.Test.make ~count:100 ~name:"fbas_io threshold roundtrip"
    QCheck.(pair (int_range 1 8) (int_range 0 8))
    (fun (n, t) ->
      let members = Pid.Set.of_range 1 n in
      let sys =
        Quorum.system_of_list
          (List.map
             (fun i -> (i, Slice.threshold ~members ~threshold:(min t n)))
             (Pid.Set.elements members))
      in
      match Fbas_io.of_string (Fbas_io.to_string sys) with
      | Error _ -> false
      | Ok sys' ->
          Pid.Set.equal (Quorum.participants sys) (Quorum.participants sys')
          && sets_equal (Quorum.minimal_quorums sys)
               (Quorum.minimal_quorums sys'))

let suites =
  [
    ( "enum",
      [
        Alcotest.test_case "pbft4 families" `Quick test_pbft4;
        Alcotest.test_case "disjoint cliques" `Quick test_disjoint_cliques;
        Alcotest.test_case "fig2 with Algorithm 2 slices" `Quick
          test_fig2_algorithm2;
        Alcotest.test_case "search stats" `Quick test_stats_move;
        Alcotest.test_case "fixture provenance" `Quick
          test_fixture_provenance;
        Alcotest.test_case "fixture full-scale analysis" `Quick
          test_fixture_analysis;
        QCheck_alcotest.to_alcotest prop_minimal_quorums_equiv;
        QCheck_alcotest.to_alcotest prop_intersection_equiv;
        QCheck_alcotest.to_alcotest prop_despite_equiv;
        QCheck_alcotest.to_alcotest prop_blocking_equiv;
        QCheck_alcotest.to_alcotest prop_splitting_equiv;
        QCheck_alcotest.to_alcotest prop_fbas_io_roundtrip;
        QCheck_alcotest.to_alcotest prop_fbas_io_threshold_roundtrip;
      ] );
  ]
