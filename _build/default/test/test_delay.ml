open Simkit

let test_synchronous_bounds () =
  let d = Delay.synchronous ~delta:4 in
  for now = 0 to 50 do
    let delay = Delay.delay_of d ~now ~src:1 ~dst:2 in
    Alcotest.(check bool) "within [1, delta]" true (delay >= 1 && delay <= 4)
  done;
  Alcotest.(check int) "gst is 0" 0 (Delay.gst d)

let test_partial_synchrony_deadline () =
  let gst = 100 and delta = 7 in
  let d = Delay.partial_synchrony ~gst ~delta ~seed:5 in
  for now = 0 to 200 do
    let delay = Delay.delay_of d ~now ~src:1 ~dst:2 in
    Alcotest.(check bool) "positive" true (delay >= 1);
    if now < gst then
      Alcotest.(check bool)
        (Printf.sprintf "pre-GST message at %d lands by gst+delta" now)
        true
        (now + delay <= gst + delta || delay = 1)
    else
      Alcotest.(check bool) "post-GST bounded by delta" true (delay <= delta)
  done

let test_targeted_slows_selected_links () =
  let gst = 100 and delta = 5 in
  let d =
    Delay.targeted ~gst ~delta ~seed:1 ~slow:(fun a b -> a = 1 && b = 2)
  in
  (* the targeted link takes the maximal legal delay before GST *)
  let slow_delay = Delay.delay_of d ~now:10 ~src:1 ~dst:2 in
  Alcotest.(check int) "slow link rides the deadline" (gst + delta - 10)
    slow_delay;
  (* other links behave normally *)
  let normal = Delay.delay_of d ~now:10 ~src:2 ~dst:1 in
  Alcotest.(check bool) "other links fast" true (normal <= delta);
  (* after GST even the targeted link is bounded *)
  let post = Delay.delay_of d ~now:150 ~src:1 ~dst:2 in
  Alcotest.(check bool) "post-GST bound applies to targeted link" true
    (post <= delta)

let test_delta_floor () =
  let d = Delay.synchronous ~delta:0 in
  Alcotest.(check int) "delta floored to 1" 1
    (Delay.delay_of d ~now:0 ~src:1 ~dst:2)

let suites =
  [
    ( "delay",
      [
        Alcotest.test_case "synchronous bounds" `Quick test_synchronous_bounds;
        Alcotest.test_case "partial synchrony deadline" `Quick
          test_partial_synchrony_deadline;
        Alcotest.test_case "targeted adversary" `Quick
          test_targeted_slows_selected_links;
        Alcotest.test_case "delta floor" `Quick test_delta_floor;
      ] );
  ]
