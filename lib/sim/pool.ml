exception Job_failed of string

let has_fork = not Sys.win32

let run_in_parallel ~jobs n = has_fork && jobs > 1 && n > 1

(* Round-robin partition: worker [w] of [nw] owns the items at indices
   [i] with [i mod nw = w]. A pure function of the input list and the
   worker count, so the parent can scatter results back into input
   order without shipping indices over the pipe. *)
let partition nw xs =
  let buckets = Array.make nw [] in
  List.iteri (fun i x -> buckets.(i mod nw) <- (i, x) :: buckets.(i mod nw)) xs;
  Array.map List.rev buckets

(* One worker: compute the assigned jobs sequentially, stopping at the
   first failure (exactly the prefix a sequential [List.map] would have
   computed before raising), and marshal the outcome up the pipe. The
   child exits with [Unix._exit] so the duplicated stdio buffers and
   [at_exit] handlers of the parent never run twice. *)
let worker_main fd f items =
  let outcome : (_ list, string) result =
    try Ok (List.map (fun (_, x) -> f x) items)
    with e ->
      let bt = Printexc.get_backtrace () in
      Error
        (Printexc.to_string e ^ if bt = "" then "" else "\n" ^ String.trim bt)
  in
  (try
     let oc = Unix.out_channel_of_descr fd in
     Marshal.to_channel oc outcome [];
     flush oc
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_forked ~workers f xs =
  let n = List.length xs in
  let buckets = partition workers xs in
  flush stdout;
  flush stderr;
  let spawned =
    Array.map
      (fun items ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
            Unix.close r;
            worker_main w f items
        | pid ->
            Unix.close w;
            (pid, r, items))
      buckets
  in
  (* Collect every worker before acting on any failure: a crashed job
     must surface as an exception, never as a hang or a zombie. *)
  let outcomes =
    Array.map
      (fun (pid, r, items) ->
        let outcome =
          try
            let ic = Unix.in_channel_of_descr r in
            let (o : (_ list, string) result) = Marshal.from_channel ic in
            close_in ic;
            o
          with e ->
            (try Unix.close r with Unix.Unix_error _ -> ());
            Error ("worker died before reporting: " ^ Printexc.to_string e)
        in
        let _, status = Unix.waitpid [] pid in
        match (outcome, status) with
        | Ok results, Unix.WEXITED 0 -> Ok (items, results)
        | Error msg, _ -> Error msg
        | Ok _, status ->
            let s =
              match status with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            Error ("worker terminated abnormally: " ^ s))
      spawned
  in
  let slots = Array.make n None in
  Array.iter
    (fun outcome ->
      match outcome with
      | Error msg -> raise (Job_failed msg)
      | Ok (items, results) ->
          (* A well-behaved worker answers one result per item; anything
             else means the transport lost data. *)
          if List.length items <> List.length results then
            raise (Job_failed "worker returned a truncated result list");
          List.iter2 (fun (i, _) y -> slots.(i) <- Some y) items results)
    outcomes;
  Array.to_list
    (Array.map
       (function Some y -> y | None -> raise (Job_failed "missing result"))
       slots)

let map ~jobs f xs =
  let n = List.length xs in
  if not (run_in_parallel ~jobs n) then List.map f xs
  else map_forked ~workers:(min jobs n) f xs

(* ------------------------------------------------------------------ *)
(* Chunked dynamic-dispatch variant, used by {!Exec} as the fork
   backend. Differences from {!map_forked}:

   - Work is handed out dynamically through a make-jobserver-style
     token pipe: the parent writes one byte per chunk id and closes
     the write end before forking, each worker loops single-byte reads
     until EOF. One-byte reads from a pipe are atomic among competing
     readers, so a token goes to exactly one worker and a slow chunk
     no longer staticly pins the rest of its round-robin bucket to the
     same worker.
   - Each chunk's results travel as their own compact marshalled frame
     [(chunk_id, rows)] instead of one whole-bucket message, so the
     parent can drain pipes while workers still compute and the
     Marshal tax is paid per result row, never per retained table. *)

(* Chunk ids must fit the one-byte token, so at most 256 chunks: a
   request for more is refused loudly (callers — {!Exec} — raise the
   chunk size, never the token width). *)
let max_chunks = 256

let check_chunk_budget ~where ~chunk n =
  let nchunks = (n + chunk - 1) / chunk in
  if nchunks > max_chunks then
    invalid_arg
      (Printf.sprintf
         "%s: %d jobs in chunks of %d make %d chunks, over the %d-chunk \
          one-byte token budget; raise ~chunk to at least %d"
         where n chunk nchunks max_chunks
         ((n + max_chunks - 1) / max_chunks));
  nchunks

type 'b chunk_outcome = ('b list, int * string) result

let chunk_worker ~token_r ~result_w ~chunk ~n f (input : _ array) =
  let compute cid =
    let start = cid * chunk in
    let stop = min n (start + chunk) in
    let rec go i acc =
      if i >= stop then Ok (List.rev acc)
      else
        match f input.(i) with
        | y -> go (i + 1) (y :: acc)
        | exception e ->
            let bt = Printexc.get_backtrace () in
            Error
              ( i,
                Printexc.to_string e
                ^ if bt = "" then "" else "\n" ^ String.trim bt )
    in
    go start []
  in
  (try
     let oc = Unix.out_channel_of_descr result_w in
     let buf = Bytes.create 1 in
     let rec loop () =
       match Unix.read token_r buf 0 1 with
       | 0 -> ()
       | _ ->
           let cid = Char.code (Bytes.get buf 0) in
           let frame : int * _ chunk_outcome = (cid, compute cid) in
           Marshal.to_channel oc frame [];
           loop ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
     in
     loop ();
     flush oc
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_chunked ~chunk ~workers f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let input = Array.of_list xs in
    let chunk = max 1 chunk in
    let nchunks = check_chunk_budget ~where:"Simkit.Pool.map_chunked" ~chunk n in
    let workers = max 1 (min workers nchunks) in
    flush stdout;
    flush stderr;
    let token_r, token_w = Unix.pipe ~cloexec:false () in
    let tokens = Bytes.init nchunks Char.chr in
    (* At most 256 bytes — far below the pipe buffer, so one write
       never blocks, and closing the write end before any fork gives
       every worker a clean EOF once the tokens run out. *)
    let wrote = Unix.write token_w tokens 0 nchunks in
    Unix.close token_w;
    if wrote <> nchunks then begin
      Unix.close token_r;
      raise (Job_failed "token pipe refused the chunk list")
    end;
    let spawned =
      Array.init workers (fun _ ->
          let r, w = Unix.pipe ~cloexec:false () in
          match Unix.fork () with
          | 0 ->
              Unix.close r;
              chunk_worker ~token_r ~result_w:w ~chunk ~n f input
          | pid ->
              Unix.close w;
              (pid, r))
    in
    Unix.close token_r;
    (* Drain every worker before acting on any failure, like
       {!map_forked}: a crashed job must surface as an exception, never
       as a hang or a zombie. *)
    let outcomes : _ chunk_outcome option array = Array.make nchunks None in
    let transport = ref [] in
    Array.iter
      (fun (pid, r) ->
        let ic = Unix.in_channel_of_descr r in
        (try
           let rec drain () =
             let cid, (o : _ chunk_outcome) = Marshal.from_channel ic in
             (if cid < 0 || cid >= nchunks then
                transport :=
                  Printf.sprintf "worker answered unknown chunk %d" cid
                  :: !transport
              else
                match outcomes.(cid) with
                | None -> outcomes.(cid) <- Some o
                | Some _ ->
                    transport :=
                      Printf.sprintf "worker answered chunk %d twice" cid
                      :: !transport);
             drain ()
           in
           drain ()
         with
        | End_of_file -> ()
        | e ->
            transport :=
              ("worker died before reporting: " ^ Printexc.to_string e)
              :: !transport);
        (try close_in ic with Sys_error _ -> ());
        let _, status = Unix.waitpid [] pid in
        match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED c ->
            transport :=
              Printf.sprintf "worker terminated abnormally: exit %d" c
              :: !transport
        | Unix.WSIGNALED s ->
            transport :=
              Printf.sprintf "worker terminated abnormally: signal %d" s
              :: !transport
        | Unix.WSTOPPED s ->
            transport :=
              Printf.sprintf "worker terminated abnormally: stopped %d" s
              :: !transport)
      spawned;
    let slots = Array.make n None in
    let failures = ref [] in
    let truncated = ref false in
    Array.iteri
      (fun cid o ->
        match o with
        | None -> ()
        | Some (Error (i, msg)) -> failures := (i, msg) :: !failures
        | Some (Ok rows) ->
            let start = cid * chunk in
            let stop = min n (start + chunk) in
            if List.length rows <> stop - start then truncated := true
            else List.iteri (fun j y -> slots.(start + j) <- Some y) rows)
      outcomes;
    (* Job failures win over transport noise, and the minimum job index
       wins among them: token claiming is monotonic, so the first
       failure a sequential run would have hit was always attempted —
       this is the same deterministic choice the domain backend makes. *)
    match List.sort (fun (i, _) (j, _) -> Int.compare i j) !failures with
    | (_, msg) :: _ -> raise (Job_failed msg)
    | [] -> (
        match List.rev !transport with
        | msg :: _ -> raise (Job_failed msg)
        | [] ->
            if !truncated then
              raise (Job_failed "worker returned a truncated result list");
            Array.to_list
              (Array.map
                 (function
                   | Some y -> y | None -> raise (Job_failed "missing result"))
                 slots))
  end

(* ------------------------------------------------------------------ *)
(* Persistent fork pool, used by {!Exec} as the warm fork backend.

   The per-call [map_chunked] above pays a fork+exit per worker per
   batch. The persistent variant forks the workers once and parks them
   on a [select]: each worker owns a private command pipe (parent to
   child, length-framed [Marshal]ed job descriptors, closures allowed —
   fork guarantees the identical code segment the [Closures] flag
   requires) and a private result pipe (child to parent, length-framed
   marshalled chunk frames), while all workers share the same
   jobserver-style one-byte token pipe as [map_chunked] for dynamic
   chunk claiming.

   Batch protocol: the parent writes the batch descriptor to EVERY
   worker's command pipe (participants get the job, the rest an
   explicit stand-down, so a stale job can never grab a token), then
   writes one token per chunk, then drains exactly [nchunks] frames
   off the result pipes. Descriptors are fully written before any
   token exists and each pipe delivers in order, so whenever a token
   is readable the worker's descriptor is already queued — and the
   workers drain their command pipe before touching the token pipe,
   so a token is always computed under the batch it belongs to.
   Batches are collected to completion before the next is submitted,
   so the token pipe is empty between batches.

   Failure envelope: a job exception travels as an [Error] frame and
   the pool stays warm (minimum-index [Job_failed] semantics as
   everywhere else); anything wrong with the transport — a worker
   died, a pipe broke, a frame did not parse, a job closure was not
   marshal-safe — tears the whole pool down and falls back to one
   per-call [map_chunked], which recomputes from scratch, so the
   caller never sees the difference. *)
(* ------------------------------------------------------------------ *)

exception Fork_transport of string

let frame_header = 8

let write_exact fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd buf off (n - off) with
      | 0 -> raise End_of_file
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0;
  Bytes.unsafe_to_string buf

let write_frame fd s =
  let hdr = Bytes.create frame_header in
  Bytes.set_int64_be hdr 0 (Int64.of_int (String.length s));
  write_exact fd (Bytes.unsafe_to_string hdr);
  write_exact fd s

let read_frame fd =
  let hdr = read_exact fd frame_header in
  let len = Int64.to_int (Bytes.get_int64_be (Bytes.of_string hdr) 0) in
  if len < 0 || len > 1 lsl 30 then
    raise (Fork_transport (Printf.sprintf "bad frame length %d" len));
  read_exact fd len

(* ---- the parked worker (child side) ------------------------------ *)

let persistent_worker ~cmd_r ~token_r ~result_w =
  let job : (int -> string) option ref = ref None in
  (* [false] on command-pipe EOF: the parent shut the pool down. *)
  let read_cmd () =
    match read_frame cmd_r with
    | exception End_of_file -> false
    | s ->
        let participate, (j : int -> string) = Marshal.from_string s 0 in
        job := (if participate then Some j else None);
        true
  in
  let buf = Bytes.create 1 in
  let run () =
    (* Descriptors first — always. This both applies any batches this
       worker slept through and guarantees a token is never claimed
       under a stale job. *)
    let rec drain_cmd () =
      match Unix.select [ cmd_r ] [] [] 0.0 with
      | [ _ ], _, _ -> read_cmd () && drain_cmd ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain_cmd ()
    in
    let rec loop () =
      if drain_cmd () then begin
        let watch =
          match !job with None -> [ cmd_r ] | Some _ -> [ cmd_r; token_r ]
        in
        match Unix.select watch [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | ready, _, _ ->
            if List.mem cmd_r ready then begin
              if read_cmd () then loop ()
            end
            else begin
              match Unix.read token_r buf 0 1 with
              | 0 -> () (* parent gone: no more batches *)
              | _ ->
                  let cid = Char.code (Bytes.get buf 0) in
                  let out =
                    match !job with Some j -> j cid | None -> assert false
                  in
                  write_frame result_w out;
                  loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            end
      end
    in
    loop ()
  in
  let code = match run () with () -> 0 | exception _ -> 2 in
  Unix._exit code

(* ---- pool state (parent side) ------------------------------------ *)

type fork_worker = { pid : int; cmd_w : Unix.file_descr; result_r : Unix.file_descr }

let fork_pool : fork_worker list ref = ref []
let fork_tokens : (Unix.file_descr * Unix.file_descr) option ref = ref None
let fork_owner = ref (-1)
let fork_peak = ref 0
let fork_batches = ref 0
let fork_teardown_registered = ref false

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_persistent () =
  if !fork_owner = Unix.getpid () then begin
    (* EOF every command pipe first so the workers exit in parallel,
       then reap. A worker mid-write sees its result pipe close as
       EPIPE and exits too. *)
    List.iter (fun w -> close_quietly w.cmd_w) !fork_pool;
    List.iter (fun w -> close_quietly w.result_r) !fork_pool;
    Option.iter
      (fun (r, w) ->
        close_quietly r;
        close_quietly w)
      !fork_tokens;
    List.iter
      (fun w -> try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
      !fork_pool
  end;
  fork_pool := [];
  fork_tokens := None;
  fork_owner := -1

let persistent_workers () = List.length !fork_pool
let persistent_peak () = !fork_peak
let persistent_batches () = !fork_batches

let with_sigpipe_ignored thunk =
  if Sys.win32 then thunk ()
  else begin
    let old = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe old) thunk
  end

let ensure_fork_pool wanted =
  if !fork_owner <> Unix.getpid () then begin
    (* Fresh process (first use, or state inherited through a fork):
       inherited descriptors belong to the original parent — drop the
       bookkeeping without touching them. *)
    fork_pool := [];
    fork_tokens := None;
    fork_owner := Unix.getpid ()
  end;
  let token_r, token_w =
    match !fork_tokens with
    | Some pair -> pair
    | None ->
        let pair = Unix.pipe ~cloexec:false () in
        fork_tokens := Some pair;
        pair
  in
  if not !fork_teardown_registered then begin
    fork_teardown_registered := true;
    Stdlib.at_exit shutdown_persistent
  end;
  while List.length !fork_pool < wanted do
    flush stdout;
    flush stderr;
    let existing = !fork_pool in
    let cmd_r, cmd_w = Unix.pipe ~cloexec:false () in
    let result_r, result_w = Unix.pipe ~cloexec:false () in
    match Unix.fork () with
    | 0 ->
        Unix.close cmd_w;
        Unix.close result_r;
        Unix.close token_w;
        (* Parent-side ends of the siblings: holding them open would
           defeat their EOF-based shutdown. *)
        List.iter
          (fun w ->
            close_quietly w.cmd_w;
            close_quietly w.result_r)
          existing;
        persistent_worker ~cmd_r ~token_r ~result_w
    | pid ->
        Unix.close cmd_r;
        Unix.close result_w;
        fork_pool := existing @ [ { pid; cmd_w; result_r } ];
        fork_peak := max !fork_peak (List.length !fork_pool)
  done;
  token_w

(* ---- batch submission -------------------------------------------- *)

let map_persistent ~chunk ~workers f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let input = Array.of_list xs in
    let chunk = max 1 chunk in
    let nchunks =
      check_chunk_budget ~where:"Simkit.Pool.map_persistent" ~chunk n
    in
    let workers = max 1 (min workers nchunks) in
    let compute cid =
      let start = cid * chunk in
      let stop = min n (start + chunk) in
      let rec go i acc =
        if i >= stop then Ok (List.rev acc)
        else
          match f input.(i) with
          | y -> go (i + 1) (y :: acc)
          | exception e ->
              let bt = Printexc.get_backtrace () in
              Error
                ( i,
                  Printexc.to_string e
                  ^ if bt = "" then "" else "\n" ^ String.trim bt )
      in
      go start []
    in
    let job cid =
      let frame : int * _ chunk_outcome = (cid, compute cid) in
      Marshal.to_string frame []
    in
    (* The job ships to long-lived workers by closure marshalling, so
       its captures ([f]'s environment, the input array) must be
       marshal-safe. When they are not — abstract blocks, channels —
       fall back to the per-call pool, which inherits everything
       through fork. Stand-down descriptors carry a dummy job (the
       worker nulls its job slot without looking at it). *)
    let standdown_desc =
      Marshal.to_string (false, fun (_ : int) -> "") [ Marshal.Closures ]
    in
    match Marshal.to_string (true, job) [ Marshal.Closures ] with
    | exception _ -> map_chunked ~chunk ~workers f xs
    | active_desc -> (
        let outcomes : _ chunk_outcome option array = Array.make nchunks None in
        let submitted =
          try
            with_sigpipe_ignored @@ fun () ->
            let token_w = ensure_fork_pool workers in
            incr fork_batches;
            let members =
              List.mapi (fun i w -> (i < workers, w)) !fork_pool
            in
            List.iter
              (fun (participate, w) ->
                write_frame w.cmd_w
                  (if participate then active_desc else standdown_desc))
              members;
            let tokens = Bytes.init nchunks Char.chr in
            let wrote =
              Unix.write token_w tokens 0 nchunks
              (* at most 256 bytes: one write, never blocks *)
            in
            if wrote <> nchunks then
              raise (Fork_transport "token pipe refused the chunk list");
            let fds =
              List.filter_map
                (fun (participate, w) ->
                  if participate then Some w.result_r else None)
                members
            in
            let remaining = ref nchunks in
            while !remaining > 0 do
              match Unix.select fds [] [] (-1.0) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | ready, _, _ ->
                  List.iter
                    (fun fd ->
                      if !remaining > 0 then begin
                        let s = read_frame fd in
                        let cid, (o : _ chunk_outcome) =
                          Marshal.from_string s 0
                        in
                        if cid < 0 || cid >= nchunks then
                          raise
                            (Fork_transport
                               (Printf.sprintf "unknown chunk %d answered" cid));
                        (match outcomes.(cid) with
                        | Some _ ->
                            raise
                              (Fork_transport
                                 (Printf.sprintf "chunk %d answered twice" cid))
                        | None -> outcomes.(cid) <- Some o);
                        decr remaining
                      end)
                    ready
            done;
            true
          with
          | Fork_transport _ | End_of_file
          | Unix.Unix_error _
          | Failure _ | Sys_error _
          ->
            (* Transport trouble: the pool is in an unknown state.
               Tear it down (a fresh one respawns on next use) and
               recompute the whole batch per-call — job side effects
               never escape a worker, so the retry is invisible. *)
            shutdown_persistent ();
            false
        in
        if not submitted then map_chunked ~chunk ~workers f xs
        else begin
          let slots = Array.make n None in
          let failures = ref [] in
          let truncated = ref false in
          Array.iteri
            (fun cid o ->
              match o with
              | None -> truncated := true
              | Some (Error (i, msg)) -> failures := (i, msg) :: !failures
              | Some (Ok rows) ->
                  let start = cid * chunk in
                  let stop = min n (start + chunk) in
                  if List.length rows <> stop - start then truncated := true
                  else List.iteri (fun j y -> slots.(start + j) <- Some y) rows)
            outcomes;
          (* Same precedence as [map_chunked]: the minimum-index job
             failure wins (token claiming is monotonic, so that job was
             always attempted); a malformed result set is transport
             trouble and goes down the teardown-and-retry path. *)
          match List.sort (fun (i, _) (j, _) -> Int.compare i j) !failures with
          | (_, msg) :: _ -> raise (Job_failed msg)
          | [] ->
              if
                !truncated
                || Array.exists Option.is_none slots
              then begin
                shutdown_persistent ();
                map_chunked ~chunk ~workers f xs
              end
              else
                Array.to_list
                  (Array.map
                     (function Some y -> y | None -> assert false)
                     slots)
        end)
  end
