lib/bftcup/protocol.mli: Digraph Format Graphkit Pid Scp Simkit
