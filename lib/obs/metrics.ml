type counter = { mutable c : int }
type gauge = { mutable g : int; mutable g_max : int }

type histogram = {
  bounds : int array;  (* strictly increasing upper bounds *)
  buckets : int array;  (* length = Array.length bounds + 1 (+Inf) *)
  mutable sum : int;
  mutable count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type key = { name : string; labels : (string * string) list }

type t = { tbl : (key, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let register t name labels make =
  let key = { name; labels = canonical_labels labels } in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl key m;
      m

let counter t ?(labels = []) name =
  match register t name labels (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %s is already a %s" name
           (kind_name m))

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.c <- c.c + by

let counter_value c = c.c

let gauge t ?(labels = []) name =
  match register t name labels (fun () -> Gauge { g = 0; g_max = 0 }) with
  | Gauge g -> g
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name m))

let set_gauge g v =
  g.g <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g
let gauge_max g = g.g_max

let default_buckets = [ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 ]

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  let make () =
    let bounds = Array.of_list (List.sort_uniq Int.compare buckets) in
    Histogram
      {
        bounds;
        buckets = Array.make (Array.length bounds + 1) 0;
        sum = 0;
        count = 0;
      }
  in
  match register t name labels make with
  | Histogram h -> h
  | m ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s is already a %s" name
           (kind_name m))

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum + v;
  h.count <- h.count + 1

let histogram_count h = h.count
let histogram_sum h = h.sum

let sorted_bindings t =
  let cmp (a, _) (b, _) =
    match String.compare a.name b.name with
    | 0 -> compare a.labels b.labels
    | c -> c
  in
  List.sort cmp (Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.tbl [])

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let metric_json (key, m) =
  let base =
    [ ("name", Json.String key.name); ("labels", labels_json key.labels) ]
  in
  let rest =
    match m with
    | Counter c -> [ ("kind", Json.String "counter"); ("value", Json.Int c.c) ]
    | Gauge g ->
        [
          ("kind", Json.String "gauge");
          ("value", Json.Int g.g);
          ("max", Json.Int g.g_max);
        ]
    | Histogram h ->
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i n ->
                 let le =
                   if i < Array.length h.bounds then Json.Int h.bounds.(i)
                   else Json.String "+Inf"
                 in
                 Json.Obj [ ("le", le); ("n", Json.Int n) ])
               h.buckets)
        in
        [
          ("kind", Json.String "histogram");
          ("count", Json.Int h.count);
          ("sum", Json.Int h.sum);
          ("buckets", Json.List buckets);
        ]
  in
  Json.Obj (base @ rest)

let to_json t =
  Json.Obj [ ("metrics", Json.List (List.map metric_json (sorted_bindings t))) ]

let pp_labels ppf labels =
  match labels with
  | [] -> ()
  | _ ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp ppf t =
  List.iter
    (fun (key, m) ->
      match m with
      | Counter c ->
          Format.fprintf ppf "%s%a %d@." key.name pp_labels key.labels c.c
      | Gauge g ->
          Format.fprintf ppf "%s%a %d (max %d)@." key.name pp_labels
            key.labels g.g g.g_max
      | Histogram h ->
          Format.fprintf ppf "%s%a count=%d sum=%d@." key.name pp_labels
            key.labels h.count h.sum)
    (sorted_bindings t)
