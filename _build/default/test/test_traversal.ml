open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let chain = Digraph.of_edges [ (1, 2); (2, 3); (3, 4) ]
let cycle = Digraph.of_edges [ (1, 2); (2, 3); (3, 1) ]

let test_reachable () =
  Alcotest.check pid_set "chain from 2" (set [ 2; 3; 4 ])
    (Traversal.reachable chain 2);
  Alcotest.check pid_set "cycle from anywhere" (set [ 1; 2; 3 ])
    (Traversal.reachable cycle 3);
  Alcotest.check pid_set "absent vertex" Pid.Set.empty
    (Traversal.reachable chain 42)

let test_layers () =
  match Traversal.bfs_layers chain 1 with
  | [ l0; l1; l2; l3 ] ->
      Alcotest.check pid_set "layer 0" (set [ 1 ]) l0;
      Alcotest.check pid_set "layer 1" (set [ 2 ]) l1;
      Alcotest.check pid_set "layer 2" (set [ 3 ]) l2;
      Alcotest.check pid_set "layer 3" (set [ 4 ]) l3
  | layers -> Alcotest.failf "expected 4 layers, got %d" (List.length layers)

let test_distance () =
  Alcotest.(check (option int)) "1 to 4" (Some 3) (Traversal.distance chain 1 4);
  Alcotest.(check (option int)) "self distance" (Some 0)
    (Traversal.distance chain 2 2);
  Alcotest.(check (option int)) "unreachable" None (Traversal.distance chain 4 1)

let test_shortest_path () =
  (match Traversal.shortest_path chain 1 3 with
  | Some [ 1; 2; 3 ] -> ()
  | Some p -> Alcotest.failf "bad path %a" Fmt.(Dump.list int) p
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool)
    "no path backwards" true
    (Traversal.shortest_path chain 3 1 = None)

let test_connected () =
  Alcotest.(check bool) "chain undirected-connected" true
    (Traversal.is_connected_undirected chain);
  let disconnected = Digraph.of_edges [ (1, 2); (3, 4) ] in
  Alcotest.(check bool) "two islands" false
    (Traversal.is_connected_undirected disconnected);
  Alcotest.(check bool) "empty graph" true
    (Traversal.is_connected_undirected Digraph.empty)

let test_eccentricity () =
  Alcotest.(check (option int)) "chain head" (Some 3)
    (Traversal.eccentricity chain 1);
  Alcotest.(check (option int)) "chain tail" (Some 0)
    (Traversal.eccentricity chain 4)

let arb_graph =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* edges =
        list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (Digraph.of_edges edges))

let prop_reachable_contains_src =
  QCheck.Test.make ~count:200 ~name:"reachable contains source" arb_graph
    (fun g ->
      Pid.Set.for_all
        (fun i -> Pid.Set.mem i (Traversal.reachable g i))
        (Digraph.vertices g))

let prop_path_length_matches_distance =
  QCheck.Test.make ~count:200 ~name:"shortest_path length = distance"
    arb_graph (fun g ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              match
                (Traversal.distance g i j, Traversal.shortest_path g i j)
              with
              | Some d, Some p -> List.length p = d + 1
              | None, None -> true
              | _ -> false)
            vs)
        vs)

let prop_path_follows_edges =
  QCheck.Test.make ~count:200 ~name:"shortest_path follows edges" arb_graph
    (fun g ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              match Traversal.shortest_path g i j with
              | None -> true
              | Some p ->
                  let rec ok = function
                    | a :: (b :: _ as rest) ->
                        Digraph.mem_edge a b g && ok rest
                    | [ _ ] | [] -> true
                  in
                  ok p)
            vs)
        vs)

let suites =
  [
    ( "traversal",
      [
        Alcotest.test_case "reachable" `Quick test_reachable;
        Alcotest.test_case "bfs layers" `Quick test_layers;
        Alcotest.test_case "distance" `Quick test_distance;
        Alcotest.test_case "shortest_path" `Quick test_shortest_path;
        Alcotest.test_case "undirected connectivity" `Quick test_connected;
        Alcotest.test_case "eccentricity" `Quick test_eccentricity;
        QCheck_alcotest.to_alcotest prop_reachable_contains_src;
        QCheck_alcotest.to_alcotest prop_path_length_matches_distance;
        QCheck_alcotest.to_alcotest prop_path_follows_edges;
      ] );
  ]
