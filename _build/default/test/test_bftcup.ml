open Graphkit
open Bftcup

let v = Scp.Value.of_ints
let own_value i = v [ i ]

let check name (o : Protocol.outcome) =
  Alcotest.(check bool) (name ^ ": all decided") true o.all_decided;
  Alcotest.(check bool) (name ^ ": agreement") true o.agreement;
  Alcotest.(check bool) (name ^ ": validity") true o.validity

let test_fig2_fault_free () =
  let o =
    Protocol.run ~graph:Builtin.fig2 ~f:1 ~initial_value_of:own_value
      ~faulty:Pid.Set.empty ()
  in
  check "fig2 fault-free" o;
  Alcotest.(check int) "seven deciders" 7 (Pid.Map.cardinal o.decisions)

let test_fig2_silent_sink_member () =
  let o =
    Protocol.run ~graph:Builtin.fig2 ~f:1 ~initial_value_of:own_value
      ~faulty:(Pid.Set.singleton 2) ()
  in
  check "fig2 silent sink member" o;
  Alcotest.(check int) "six deciders" 6 (Pid.Map.cardinal o.decisions)

let test_fig2_silent_non_sink () =
  let o =
    Protocol.run ~graph:Builtin.fig2 ~f:1 ~initial_value_of:own_value
      ~faulty:(Pid.Set.singleton 7) ()
  in
  check "fig2 silent non-sink" o

let test_fig2_silent_first_leader () =
  (* Member 1 leads view 0 of the sink consensus; its silence forces a
     view change before dissemination. *)
  let o =
    Protocol.run ~graph:Builtin.fig2 ~f:1 ~initial_value_of:own_value
      ~faulty:(Pid.Set.singleton 1) ()
  in
  check "fig2 silent leader" o

let test_decided_value_from_sink () =
  (* BFT-CUP decides a sink leader's value: non-sink proposals never
     win (they are not part of the sink consensus). *)
  let o =
    Protocol.run ~graph:Builtin.fig2 ~f:1 ~initial_value_of:own_value
      ~faulty:Pid.Set.empty ()
  in
  match Pid.Map.choose_opt o.decisions with
  | Some (_, value) ->
      let sink_values = List.map (fun i -> v [ i ]) [ 1; 2; 3; 4 ] in
      Alcotest.(check bool) "decided value proposed by a sink member" true
        (List.exists (Scp.Value.equal value) sink_values)
  | None -> Alcotest.fail "no decision"

let prop_random_graphs =
  QCheck.Test.make ~count:8 ~name:"BFT-CUP on random byzantine-safe graphs"
    QCheck.(int_bound 300)
    (fun seed ->
      let f = 1 in
      let g, _sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:3 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let o =
        Protocol.run ~seed ~graph:g ~f ~initial_value_of:own_value ~faulty ()
      in
      o.all_decided && o.agreement && o.validity)

let suites =
  [
    ( "bftcup",
      [
        Alcotest.test_case "fig2 fault-free" `Quick test_fig2_fault_free;
        Alcotest.test_case "fig2 silent sink member" `Quick
          test_fig2_silent_sink_member;
        Alcotest.test_case "fig2 silent non-sink" `Quick
          test_fig2_silent_non_sink;
        Alcotest.test_case "fig2 silent first leader" `Quick
          test_fig2_silent_first_leader;
        Alcotest.test_case "decided value from the sink" `Quick
          test_decided_value_from_sink;
        QCheck_alcotest.to_alcotest prop_random_graphs;
      ] );
  ]
