test/test_sink_oracle.ml: Alcotest Builtin Cup Digraph Generators Graphkit Pid Printf QCheck QCheck_alcotest Sink_oracle
