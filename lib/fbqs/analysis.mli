(** Health analysis of a federated Byzantine quorum system — the
    questions operators of a real Stellar-like network ask (in the
    spirit of the fbas-analyzer / stellarbeat tooling), computed exactly
    on paper-scale systems.

    All enumerative functions inherit the [<= 20] participant guard of
    {!Quorum.enum_quorums}. *)

open Graphkit

val blocking_cascade : Quorum.system -> down:Pid.Set.t -> Pid.Set.t
(** The cascade of unavailability: starting from the [down] set, a node
    halts when a halted set blocks it (every one of its slices contains
    a halted node); halting nodes can halt further nodes. Returns the
    full set of halted nodes (including [down]). This is the
    "v-blocking closure" governing SCP liveness. *)

val min_blocking_sets : Quorum.system -> Pid.t -> Pid.Set.t list
(** Inclusion-minimal sets that block the given node (intersect all its
    slices). Empty when the node declared no slices. *)

val liveness_level : Quorum.system -> int
(** The size of the smallest set of nodes whose failure halts (cascades
    to) every participant: how many targeted failures the system's
    liveness survives is [liveness_level - 1]. Returns the number of
    participants + 1 when no such set exists within the participants
    (cannot happen for non-empty systems, since taking everything
    halts everything). *)

val safety_level : Quorum.system -> int
(** The size of the smallest set of nodes whose deletion breaks quorum
    intersection (two surviving quorums become disjoint): the system's
    safety survives [safety_level - 1] targeted Byzantine failures.
    Returns participants + 1 when intersection cannot be broken (e.g.
    systems whose every pair of quorums shares some indelible node —
    rare; or trivial single-quorum systems). If quorum intersection
    already fails with nobody deleted, this is [0]. Backed by
    {!Enum.minimal_splitting_sets} over the full participant set. *)

val safety_level_baseline : Quorum.system -> int
(** The pre-[Enum] subset-sweep path ([<= 20] participants), kept for
    the equivalence property tests. *)

val splitting_sets : Quorum.system -> Pid.Set.t list
(** The inclusion-minimal sets whose deletion breaks quorum
    intersection ("splitting sets"), in canonical order (ascending
    cardinality, then {!Graphkit.Pid.Set.compare}). Backed by
    {!Enum.minimal_splitting_sets} over the full participant set, so
    the per-candidate intersection check scales; the candidate sweep
    itself remains exponential in the participant count (guarded to 62
    pids). *)

val splitting_sets_baseline : Quorum.system -> Pid.Set.t list
(** The pre-[Enum] subset-sweep path ([<= 20] participants), kept for
    the equivalence property tests. *)

val top_tier : Quorum.system -> Pid.Set.t
(** The union of all inclusion-minimal quorums: the nodes that actually
    matter for consensus (everything outside is a pure follower).
    Backed by {!Enum}'s branch-and-bound enumeration — scales to
    live-network topologies. *)

val top_tier_baseline : Quorum.system -> Pid.Set.t
(** The same union over {!Quorum.minimal_quorums} (Gosper enumeration,
    [<= 20] participants), kept for the equivalence property tests. *)
