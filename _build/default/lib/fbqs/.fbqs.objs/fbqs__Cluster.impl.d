lib/fbqs/cluster.ml: Array Graphkit Intertwine List Pid Quorum
