open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let pbft n t =
  let members = Pid.Set.of_range 1 n in
  Quorum.system_of_list
    (List.map
       (fun i -> (i, Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let test_blocking_cascade_threshold () =
  let sys = pbft 4 3 in
  (* one node down: nobody else halts (3 of 4 still available) *)
  Alcotest.check pid_set "one down, no cascade" (set [ 1 ])
    (Analysis.blocking_cascade sys ~down:(set [ 1 ]));
  (* two down: each survivor's every 3-slice hits a down node -> all halt *)
  Alcotest.check pid_set "two down halts everyone" (Pid.Set.of_range 1 4)
    (Analysis.blocking_cascade sys ~down:(set [ 1; 2 ]))

let test_blocking_cascade_chain () =
  (* 1 trusts only 2, 2 trusts only 3: 3 down cascades through 2 to 1 *)
  let sys =
    Quorum.system_of_list
      [
        (1, Slice.explicit [ set [ 2 ] ]);
        (2, Slice.explicit [ set [ 3 ] ]);
        (3, Slice.explicit [ set [ 3 ] ]);
      ]
  in
  Alcotest.check pid_set "chain cascade" (set [ 1; 2; 3 ])
    (Analysis.blocking_cascade sys ~down:(set [ 3 ]))

let test_min_blocking_sets () =
  let sys = pbft 4 3 in
  let blocking = Analysis.min_blocking_sets sys 1 in
  (* blocking a 3-of-4 node = any 2 of the 4 members: C(4,2) = 6 *)
  Alcotest.(check int) "six minimal blocking sets" 6 (List.length blocking);
  List.iter
    (fun b -> Alcotest.(check int) "each of size 2" 2 (Pid.Set.cardinal b))
    blocking;
  Alcotest.(check (list (list int))) "sliceless node unblockable" []
    (List.map Pid.Set.elements
       (Analysis.min_blocking_sets
          (Quorum.system_of_list [ (1, Slice.explicit []) ])
          1))

let test_levels_pbft () =
  let sys = pbft 4 3 in
  (* liveness: killing any 2 halts everything; 1 is survivable *)
  Alcotest.(check int) "liveness level" 2 (Analysis.liveness_level sys);
  (* safety: deleting 2 leaves 2-of... threshold 1 over 2 survivors ->
     disjoint singleton quorums *)
  Alcotest.(check int) "safety level" 2 (Analysis.safety_level sys)

let test_splitting_sets_pbft () =
  let sys = pbft 4 3 in
  let splits = Analysis.splitting_sets sys in
  Alcotest.(check bool) "exist" true (List.length splits > 0);
  List.iter
    (fun b -> Alcotest.(check int) "minimal splits of size 2" 2 (Pid.Set.cardinal b))
    splits

let test_top_tier () =
  let sys = pbft 4 3 in
  Alcotest.check pid_set "everyone matters in a flat system"
    (Pid.Set.of_range 1 4) (Analysis.top_tier sys);
  (* follower node 5 trusting the quartet is not top tier *)
  let with_follower =
    Pid.Map.add 5
      (Slice.threshold ~members:(Pid.Set.of_range 1 4) ~threshold:3)
      sys
  in
  Alcotest.check pid_set "follower excluded" (Pid.Set.of_range 1 4)
    (Analysis.top_tier with_follower)

let test_fig1_analysis () =
  let sys =
    Quorum.system_of_list
      (List.map
         (fun (i, slices) -> (i, Slice.explicit slices))
         Builtin.fig1_slices)
  in
  (* the core {5,6,7} is the engine of the system *)
  Alcotest.check pid_set "fig1 top tier" (set [ 5; 6; 7 ])
    (Analysis.top_tier sys);
  (* killing 6 blocks 4 ({5,6},{6,8} both hit) and 5 and 7... *)
  let cascade = Analysis.blocking_cascade sys ~down:(set [ 6 ]) in
  Alcotest.(check bool) "6 down halts 4" true (Pid.Set.mem 4 cascade)

let test_algorithm2_levels () =
  (* Algorithm 2 slices on fig2, f = 1: the paper's guarantees say both
     safety and liveness survive any single failure. *)
  let sys = Cup.Slice_builder.system_via_oracle ~f:1 Builtin.fig2 in
  Alcotest.(check bool) "liveness survives 1 fault" true
    (Analysis.liveness_level sys >= 2);
  Alcotest.(check bool) "safety survives 1 fault" true
    (Analysis.safety_level sys >= 2)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "blocking cascade (threshold)" `Quick
          test_blocking_cascade_threshold;
        Alcotest.test_case "blocking cascade (chain)" `Quick
          test_blocking_cascade_chain;
        Alcotest.test_case "min blocking sets" `Quick test_min_blocking_sets;
        Alcotest.test_case "liveness/safety levels" `Quick test_levels_pbft;
        Alcotest.test_case "splitting sets" `Quick test_splitting_sets_pbft;
        Alcotest.test_case "top tier" `Quick test_top_tier;
        Alcotest.test_case "fig1 analysis" `Quick test_fig1_analysis;
        Alcotest.test_case "Algorithm 2 slices levels" `Quick
          test_algorithm2_levels;
      ] );
  ]
