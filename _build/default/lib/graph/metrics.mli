(** Structural metrics of knowledge-connectivity graphs, for the CLI's
    analyse command and the experiment reports. *)

type t = {
  vertices : int;
  edges : int;
  min_out_degree : int;
  max_out_degree : int;
  avg_out_degree : float;
  min_in_degree : int;
  max_in_degree : int;
  density : float;  (** edges / (n * (n-1)); 0 for n <= 1 *)
  diameter : int option;
      (** longest finite directed distance over ordered reachable
          pairs; [None] for graphs with fewer than 2 vertices *)
  scc_count : int;
  sink_size : int option;  (** size of the unique sink component, if any *)
}

val compute : Digraph.t -> t

val pp : Format.formatter -> t -> unit
