lib/scp/ledger.mli: Fbqs Format Graphkit Pid Runner Value
