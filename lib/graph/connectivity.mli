(** Node-disjoint path counting and the connectivity predicates used by
    the k-OSR participant-detector class.

    All path counts are computed exactly, via max-flow on a node-split
    network (Menger's theorem): two directed paths from [i] to [j] are
    counted as disjoint when they share no vertex other than [i] and
    [j].

    Networks are built straight from the compiled {!Csr} rows (for the
    restricted variant, via a bool mask rather than an induced
    subgraph); graphs naming negative pids fall back to the seed
    construction, also exposed as {!node_disjoint_paths_baseline}.
    Max-flow values are unique, so all paths agree exactly. *)

val node_disjoint_paths : Digraph.t -> Pid.t -> Pid.t -> int
(** Maximum number of internally node-disjoint directed paths from the
    first vertex to the second. Returns 0 when either endpoint is absent
    or the endpoints are equal. A direct edge counts as one path. *)

val is_k_strongly_connected : Digraph.t -> int -> bool
(** Condition 3 of Definition 6: every ordered pair of distinct vertices
    is linked by at least [k] node-disjoint paths. Graphs with at most
    one vertex qualify trivially. *)

val vertex_connectivity : Digraph.t -> int
(** The largest [k] such that the graph is k-strongly connected
    (minimum over ordered pairs of the disjoint-path count). Returns
    [max_int] for graphs with fewer than two vertices. *)

val f_reachable : Digraph.t -> correct:Pid.Set.t -> int -> Pid.t -> Pid.t -> bool
(** Definition 9: [f_reachable g ~correct f i j] holds when there are at
    least [f + 1] node-disjoint paths from [i] to [j] whose vertices all
    lie in [correct] (the endpoints included). *)

val disjoint_paths_within : Digraph.t -> allowed:Pid.Set.t -> Pid.t -> Pid.t -> int
(** Disjoint-path count restricted to the subgraph induced by
    [allowed] (the endpoints are added to [allowed] implicitly). *)

val node_disjoint_paths_baseline : Digraph.t -> Pid.t -> Pid.t -> int
(** The seed construction (Hashtbl-interned node-split network), kept
    as the negative-pid fallback and the qcheck baseline for the CSR
    path. *)
