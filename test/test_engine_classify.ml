open Simkit

type msg = Ping | Pong

let test_class_accounting () =
  let delay = Delay.synchronous ~delta:1 in
  let classify = function Ping -> "ping" | Pong -> "pong" in
  let engine = Engine.create_cfg ~classify { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let pinger : msg Engine.behavior =
    {
      Engine.idle_behavior with
      on_start =
        (fun ctx ->
          for _ = 1 to 3 do
            Engine.send ctx 2 Ping
          done);
    }
  in
  let ponger : msg Engine.behavior =
    {
      Engine.idle_behavior with
      on_message =
        (fun ctx ~src -> function
          | Ping -> Engine.send ctx src Pong
          | Pong -> ());
    }
  in
  Engine.add_node engine 1 pinger;
  Engine.add_node engine 2 ponger;
  let stats = Engine.run engine in
  Alcotest.(check (list (pair string int)))
    "per-class counts"
    [ ("ping", 3); ("pong", 3) ]
    stats.sent_by_class

let test_no_classifier () =
  let delay = Delay.synchronous ~delta:1 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  Engine.add_node engine 1
    {
      Engine.idle_behavior with
      on_start = (fun ctx -> Engine.send ctx 1 Ping);
    };
  let stats = Engine.run engine in
  Alcotest.(check (list (pair string int))) "empty without classifier" []
    stats.sent_by_class

let suites =
  [
    ( "engine_classify",
      [
        Alcotest.test_case "per-class accounting" `Quick test_class_accounting;
        Alcotest.test_case "no classifier" `Quick test_no_classifier;
      ] );
  ]
