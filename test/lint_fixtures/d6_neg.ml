(* Fixture: domain introspection (no spawn, no locks) is fine anywhere. *)
let cores () = Domain.recommended_domain_count ()
let jobs n = min n (cores ())
