(* Interprocedural call graph over the loaded typed units.

   Nodes are toplevel value bindings, named by their canonical
   component path joined with '.' ("Cup.Knowledge.check_sink").
   Edges go from a binding to every identifier its body mentions:
   same-unit toplevel bindings resolve through the Ident stamp, and
   cross-unit references through the canonicalized Path. Targets that
   are not nodes (stdlib, other libraries outside the cmt set) stay as
   plain names — the taint seeds live there.

   The graph is deliberately conservative: a mention is an edge
   whether the value is called, partially applied or stored, so taint
   (P1) and reachability (R2) never miss a flow through a higher-order
   wrapper; the cost is that a function that merely logs another's
   name as a string literal is never connected (identifiers only). *)

type node = {
  name : string;  (* canonical dotted name *)
  source : string;  (* build-relative source of the defining unit *)
  line : int;  (* definition site *)
  mutable edges : string list;  (* canonical names, deduplicated, sorted *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  by_unit : (string, node list) Hashtbl.t;  (* modname -> its nodes *)
}

let find t name = Hashtbl.find_opt t.nodes name
let unit_nodes t modname =
  match Hashtbl.find_opt t.by_unit modname with Some l -> l | None -> []

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let binding_idents vb =
  List.map
    (fun (id, (loc : string Location.loc), _) -> (id, loc.loc))
    (Typedtree.pat_bound_idents_full vb.Typedtree.vb_pat)

let references expr =
  let acc = ref [] in
  let e_iter (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> acc := p :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = e_iter } in
  it.expr it expr;
  List.rev !acc

let build (loaded : Loader.t) =
  let nodes = Hashtbl.create 256 in
  let by_unit = Hashtbl.create 64 in
  (* Pass 1: declare every toplevel binding of every unit, and record
     the Ident -> canonical-name map used to resolve same-unit
     references (toplevel values of the current unit appear as bare
     Pidents in the Typedtree). *)
  let locals_of_unit = Hashtbl.create 64 in
  List.iter
    (fun (u : Loader.unit_info) ->
      let locals = Hashtbl.create 32 in
      let declare vb =
        List.iter
          (fun (id, loc) ->
            let name =
              String.concat "." (u.mod_comps @ [ Ident.name id ])
            in
            let line = loc.Location.loc_start.Lexing.pos_lnum in
            if not (Hashtbl.mem nodes name) then begin
              let node = { name; source = u.source; line; edges = [] } in
              Hashtbl.add nodes name node;
              Hashtbl.replace by_unit u.modname
                (node :: unit_nodes { nodes; by_unit } u.modname)
            end;
            Hashtbl.replace locals (Ident.unique_name id) name)
          (binding_idents vb)
      in
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Typedtree.Tstr_value (_, vbs) -> List.iter declare vbs
          | _ -> ())
        u.structure.str_items;
      Hashtbl.add locals_of_unit u.modname locals)
    loaded.units;
  (* Pass 2: edges. *)
  List.iter
    (fun (u : Loader.unit_info) ->
      let locals =
        match Hashtbl.find_opt locals_of_unit u.modname with
        | Some l -> l
        | None -> Hashtbl.create 1
      in
      let resolve p =
        match p with
        | Path.Pident id -> Hashtbl.find_opt locals (Ident.unique_name id)
        | _ -> (
            match Loader.path_comps p with
            | [] -> None
            | comps -> Some (String.concat "." comps))
      in
      let connect vb =
        let targets =
          List.sort_uniq String.compare
            (List.filter_map resolve (references vb.Typedtree.vb_expr))
        in
        List.iter
          (fun (id, _) ->
            match
              Hashtbl.find_opt nodes
                (String.concat "." (u.mod_comps @ [ Ident.name id ]))
            with
            | Some node ->
                node.edges <-
                  List.sort_uniq String.compare (node.edges @ targets)
            | None -> ())
          (binding_idents vb)
      in
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Typedtree.Tstr_value (_, vbs) -> List.iter connect vbs
          | _ -> ())
        u.structure.str_items)
    loaded.units;
  { nodes; by_unit }

(* ------------------------------------------------------------------ *)
(* Taint (backward) and reachability (forward)                        *)
(* ------------------------------------------------------------------ *)

(* [taint t ~seed] marks every node from which a name satisfying
   [seed] is reachable along call edges, and returns for each tainted
   node its witness chain (node name first, seed name last). BFS from
   the node side in sorted order keeps chains shortest-first and
   deterministic. *)
let taint t ~seed =
  let chains : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let sorted_nodes =
    List.sort
      (fun a b -> String.compare a.name b.name)
      (Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes [])
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun node ->
        if not (Hashtbl.mem chains node.name) then
          let hit =
            List.find_map
              (fun target ->
                if Hashtbl.mem t.nodes target then
                  match Hashtbl.find_opt chains target with
                  | Some chain -> Some (node.name :: chain)
                  | None -> None
                else if seed (String.split_on_char '.' target) then
                  Some [ node.name; target ]
                else None)
              node.edges
          in
          match hit with
          | Some chain ->
              Hashtbl.add chains node.name chain;
              changed := true
          | None -> ())
      sorted_nodes
  done;
  chains

(* [reachable t starts] walks call edges forward from [starts]
   (canonical names; non-node names are kept as dead ends) and returns
   name -> chain from a start (start first). *)
let reachable t starts =
  let chains : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not (Hashtbl.mem chains s) then begin
        Hashtbl.add chains s [ s ];
        Queue.add s queue
      end)
    (List.sort_uniq String.compare starts);
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    match Hashtbl.find_opt t.nodes name with
    | None -> ()
    | Some node ->
        let chain = Hashtbl.find chains name in
        List.iter
          (fun target ->
            if not (Hashtbl.mem chains target) then begin
              Hashtbl.add chains target (chain @ [ target ]);
              Queue.add target queue
            end)
          node.edges
  done;
  chains
