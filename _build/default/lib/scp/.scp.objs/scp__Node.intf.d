lib/scp/node.mli: Ballot Fbqs Format Graphkit Msg Pid Simkit Statement Value
