(** Tabular experiment reports, printed aligned for terminals and
    dumpable as Markdown for EXPERIMENTS.md. *)

type t = {
  id : string;  (** experiment id, e.g. "E3" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** expected-shape commentary printed under the table *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

val pp : Format.formatter -> t -> unit
(** Column-aligned plain-text rendering. *)

val to_markdown : t -> string

val print : t -> unit
(** [pp] to stdout followed by a blank line. *)

val to_json : t -> Obs.Json.t
(** [{"id", "title", "header", "rows", "notes"}] — every cell a string,
    exactly as rendered. *)
