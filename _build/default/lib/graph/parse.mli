(** Parsing knowledge-connectivity graphs from a small adjacency-list
    text format, so the CLI can analyse user-provided topologies:

    {v
    # comments and blank lines are ignored
    1: 2 5
    2: 4
    3: 5 7
    8:          # a vertex with no outgoing knowledge
    v} *)

val of_string : string -> (Digraph.t, string) result
(** Parses the adjacency format; returns a human-readable error message
    naming the offending line otherwise. *)

val of_file : string -> (Digraph.t, string) result

val to_string : Digraph.t -> string
(** Renders a graph back into the same format ([of_string] of the
    result is the identity). *)
