test/test_theorems.ml: Alcotest Builtin Cup Digraph Generators Graphkit List Pid Printf Stellar_cup Theorems
