type event = {
  time : int;
  seq : int;
  scope : string;
  name : string;
  fields : (string * Json.t) list;
}

type sink = {
  mutable next_seq : int;
  mutable subscribers : (event -> unit) list;  (* reversed *)
}

let create () = { next_seq = 0; subscribers = [] }

let subscribe sink f = sink.subscribers <- f :: sink.subscribers

let emit sink ~time ~scope ~name fields =
  let e = { time; seq = sink.next_seq; scope; name; fields } in
  sink.next_seq <- sink.next_seq + 1;
  List.iter (fun f -> f e) (List.rev sink.subscribers)

let event_count sink = sink.next_seq

let event_to_json e =
  Json.Obj
    ([
       ("t", Json.Int e.time);
       ("seq", Json.Int e.seq);
       ("scope", Json.String e.scope);
       ("ev", Json.String e.name);
     ]
    @ e.fields)

let event_to_line e = Json.to_string (event_to_json e)

let to_buffer buf =
  let sink = create () in
  subscribe sink (fun e ->
      Buffer.add_string buf (event_to_line e);
      Buffer.add_char buf '\n');
  sink

let to_channel oc =
  let sink = create () in
  subscribe sink (fun e ->
      output_string oc (event_to_line e);
      output_char oc '\n');
  sink

let recording () =
  let sink = create () in
  let events = ref [] in
  subscribe sink (fun e -> events := e :: !events);
  (sink, fun () -> List.rev !events)
