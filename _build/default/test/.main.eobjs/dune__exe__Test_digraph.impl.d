test/test_digraph.ml: Alcotest Digraph Graphkit Pid QCheck QCheck_alcotest
