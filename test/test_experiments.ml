(* Smoke tests over the experiment harness: every table must build, have
   consistent row widths, and report the expected verdicts ("yes"
   everywhere for the theorem experiments). These catch regressions in
   any protocol layer, since the experiments exercise all of them. *)

open Stellar_cup

let row_widths_consistent (t : Report.t) =
  let w = List.length t.header in
  List.for_all (fun r -> List.length r = w) t.rows

(* [List.find_index] is OCaml >= 5.1; CI also builds on 4.14. *)
let find_index p l =
  let rec go i = function
    | [] -> None
    | x :: _ when p x -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 l

let check_table ?(expect_all_yes_in = []) (t : Report.t) =
  Alcotest.(check bool) (t.id ^ ": has rows") true (t.rows <> []);
  Alcotest.(check bool)
    (t.id ^ ": consistent widths")
    true (row_widths_consistent t);
  List.iter
    (fun col ->
      let idx =
        match find_index (String.equal col) t.header with
        | Some i -> i
        | None -> Alcotest.failf "%s: no column %S" t.id col
      in
      List.iter
        (fun row ->
          let cell = List.nth row idx in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s = yes in %s" t.id col
               (String.concat "," row))
            true
            (cell = "yes" || cell = "ok"))
        t.rows)
    expect_all_yes_in

let test_e1 () = check_table (Experiments.e1_fig1_example ())

let test_e2 () =
  let t = Experiments.e2_is_quorum () in
  check_table t;
  List.iter
    (fun row ->
      let result = List.nth row 2 in
      Alcotest.(check bool) "no FAIL cells" false (result = "FAIL"))
    t.rows

let test_e3 () =
  let t = Experiments.e3_theorem2_violation ~samples:1 () in
  check_table t;
  (* family rows must find the witness *)
  List.iter
    (fun row ->
      if List.hd row = "fig2-family" then
        Alcotest.(check string) "witness on family" "yes" (List.nth row 2))
    t.rows

let test_e4 () =
  let t = Experiments.e4_algorithm2_intertwined ~samples:1 () in
  check_table t;
  List.iter
    (fun row ->
      Alcotest.(check string) "always intertwined" "1/1" (List.nth row 2))
    t.rows

let test_e4b () =
  let t = Experiments.e4b_threshold_ablation () in
  check_table t;
  (* exactly one paper-marked row per (s, f) block, and it must be safe
     on both columns *)
  let marked =
    List.filter (fun row -> List.nth row 4 = "<- paper") t.rows
  in
  Alcotest.(check int) "two paper rows" 2 (List.length marked);
  List.iter
    (fun row ->
      Alcotest.(check string) "paper choice intersects" "yes"
        (List.nth row 2);
      Alcotest.(check string) "paper choice available" "yes"
        (List.nth row 3))
    marked

let test_e5 () =
  check_table
    ~expect_all_yes_in:[ "thm4 availability"; "thm5 cluster" ]
    (Experiments.e5_availability ~samples:1 ())

let test_e9 () =
  check_table ~expect_all_yes_in:[ "random graph k-OSR" ]
    (Experiments.e9_graph_machinery ())

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "E1 shape" `Quick test_e1;
        Alcotest.test_case "E2 shape" `Quick test_e2;
        Alcotest.test_case "E3 shape" `Quick test_e3;
        Alcotest.test_case "E4 shape" `Quick test_e4;
        Alcotest.test_case "E4b ablation shape" `Quick test_e4b;
        Alcotest.test_case "E5 shape" `Quick test_e5;
        Alcotest.test_case "E9 shape" `Quick test_e9;
      ] );
  ]
