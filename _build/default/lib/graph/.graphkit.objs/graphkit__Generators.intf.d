lib/graph/generators.mli: Digraph Pid
