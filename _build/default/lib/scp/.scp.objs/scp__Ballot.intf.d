lib/scp/ballot.mli: Format Value
