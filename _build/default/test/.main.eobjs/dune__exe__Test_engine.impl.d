test/test_engine.ml: Alcotest Delay Engine List Simkit
