(** The end-to-end BFT-CUP baseline (Alchieri et al.), staged:

    1. every process runs the sink discovery of {!Cup.Sink_protocol}
       (knowledge acquisition);
    2. sink members run {!Pbft} among the discovered membership;
    3. non-sink members request the decision from the sink members in
       their discovered view and adopt a value reported by [f + 1]
       distinct sink members.

    The paper contrasts this protocol with Stellar: BFT-CUP solves
    consensus with [PD_i] and [f] alone, whereas SCP additionally needs
    the sink detector (Corollaries 1 and 2). *)

open Graphkit

type outcome = {
  decisions : Scp.Value.t Pid.Map.t;  (** one entry per decided correct node *)
  all_decided : bool;
  agreement : bool;
  validity : bool;
  discovery_stats : Simkit.Engine.stats;
  consensus_stats : Simkit.Engine.stats;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  ?view_timeout:int ->
  graph:Digraph.t ->
  f:int ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  faulty:Pid.Set.t ->
  unit ->
  outcome
(** Runs the full pipeline on a knowledge graph. Faulty processes are
    silent in both stages (the strongest failure for liveness; richer
    Byzantine behaviours are exercised per-stage in the test suites). *)
