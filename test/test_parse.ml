open Graphkit

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_roundtrip_fig1 () =
  match Parse.of_string (Parse.to_string Builtin.fig1) with
  | Ok g ->
      Alcotest.(check bool) "roundtrip identity" true
        (Digraph.equal g Builtin.fig1)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_comments_and_blanks () =
  let text = "# a knowledge graph\n\n1: 2 5 # inline comment\n2: 4\n\n8:\n" in
  match Parse.of_string text with
  | Ok g ->
      Alcotest.check pid_set "succs of 1" (Pid.Set.of_list [ 2; 5 ])
        (Digraph.succs g 1);
      Alcotest.(check bool) "isolated 8 present" true (Digraph.mem_vertex 8 g);
      Alcotest.check pid_set "8 has no succs" Pid.Set.empty (Digraph.succs g 8)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_errors_name_the_line () =
  (match Parse.of_string "1: 2\nnonsense\n" with
  | Error e ->
      Alcotest.(check bool) "line number in error" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Parse.of_string "1: 2 x\n" with
  | Error e ->
      Alcotest.(check bool) "bad successor flagged" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected bad successor error"

(* The single-pass scanner must keep the seed's exact error strings and
   its [int_of_string] token semantics (hex, signs, underscores). *)
let test_malformed_inputs () =
  let err text = match Parse.of_string text with
    | Error e -> e
    | Ok _ -> Alcotest.failf "expected an error for %S" text
  in
  Alcotest.(check string) "missing colon"
    "line 1: expected 'vertex: succ...'" (err "42\n");
  Alcotest.(check string) "bad vertex id"
    "line 1: bad vertex id \"x1\"" (err "x1: 2\n");
  Alcotest.(check string) "empty vertex id"
    "line 1: bad vertex id \"\"" (err ": 2\n");
  Alcotest.(check string) "vertex with inner space"
    "line 1: bad vertex id \"1 2\"" (err "1 2: 3\n");
  Alcotest.(check string) "bad successor id"
    "line 1: bad successor id" (err "1: 2 y\n");
  Alcotest.(check string) "second colon poisons successor"
    "line 1: bad successor id" (err "1: 2:3\n");
  Alcotest.(check string) "line numbers count blanks and comments"
    "line 4: bad successor id" (err "# header\n\n1: 2\n2: z\n");
  (* Accepted edge cases, unchanged from the seed parser. *)
  let ok text = match Parse.of_string text with
    | Ok g -> g
    | Error e -> Alcotest.failf "expected %S to parse: %s" text e
  in
  let g = ok "1: 0x10 +2 -3 1_0\n" in
  Alcotest.check pid_set "int_of_string successor forms"
    (Pid.Set.of_list [ 16; 2; -3; 10 ])
    (Digraph.succs g 1);
  let g = ok "  7  :\t8   9 # tail\n" in
  Alcotest.check pid_set "whitespace-heavy line"
    (Pid.Set.of_list [ 8; 9 ])
    (Digraph.succs g 7);
  Alcotest.(check bool) "huge id falls back to int_of_string" true
    (match Parse.of_string "1: 99999999999999999999999999\n" with
    | Error _ -> true
    | Ok _ -> false)

let test_of_file_missing () =
  match Parse.of_file "/nonexistent/graph.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file"

let prop_roundtrip_random =
  QCheck.Test.make ~count:100 ~name:"parse roundtrip on random graphs"
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let g = Digraph.of_edges edges in
      match Parse.of_string (Parse.to_string g) with
      | Ok g' -> Digraph.equal g g'
      | Error _ -> false)

let suites =
  [
    ( "parse",
      [
        Alcotest.test_case "fig1 roundtrip" `Quick test_roundtrip_fig1;
        Alcotest.test_case "comments and blanks" `Quick
          test_comments_and_blanks;
        Alcotest.test_case "errors name the line" `Quick
          test_errors_name_the_line;
        Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
        Alcotest.test_case "missing file" `Quick test_of_file_missing;
        QCheck_alcotest.to_alcotest prop_roundtrip_random;
      ] );
  ]
