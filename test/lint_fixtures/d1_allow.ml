(* Fixture: the per-site suppression comment waives the finding. *)
let quiet tbl =
  (* lint: allow D1 — fixture: the escape is deliberate *)
  Hashtbl.iter (fun k v -> print_string (k ^ v)) tbl
