lib/fbqs/intertwine.mli: Graphkit Pid Quorum
