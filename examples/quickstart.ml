(* Quickstart: the paper's Fig. 1 example, end to end.

   We build the knowledge-connectivity graph of Fig. 1, analyse its
   structure (sink component, quorums, consensus clusters), then run a
   live SCP consensus over the Section III-D slice assignment with
   process 8 Byzantine-silent.

   Run with: dune exec examples/quickstart.exe *)

open Graphkit

let section title = Format.printf "@.--- %s ---@." title

let () =
  Format.printf "Stellar consensus with minimal knowledge: quickstart@.";

  section "1. The knowledge-connectivity graph (Fig. 1)";
  let g = Builtin.fig1 in
  Format.printf "%a" Digraph.pp g;
  let sink = Properties.sink_of_exn g in
  Format.printf "sink component: %a@." Pid.Set.pp sink;

  section "2. The Section III-D slices and their quorums";
  let system =
    Fbqs.Quorum.system_of_list
      (List.map
         (fun (i, slices) -> (i, Fbqs.Slice.explicit slices))
         Builtin.fig1_slices)
  in
  List.iter
    (fun i ->
      match Fbqs.Quorum.minimal_quorums_of system i with
      | q :: _ -> Format.printf "minimal quorum of %d: %a@." i Pid.Set.pp q
      | [] -> Format.printf "process %d has no quorum@." i)
    [ 1; 3; 5 ];

  section "3. Consensus clusters";
  let w = Pid.Set.of_range 1 7 in
  let mode = Fbqs.Intertwine.Correct_witness w in
  Format.printf "{5,6,7} is a consensus cluster: %b@."
    (Fbqs.Cluster.is_consensus_cluster system ~correct:w ~mode
       (Pid.Set.of_list [ 5; 6; 7 ]));
  List.iter
    (fun c -> Format.printf "maximal consensus cluster: %a@." Pid.Set.pp c)
    (Fbqs.Cluster.maximal_clusters system ~correct:w ~mode ());

  section "4. Live SCP run (process 8 is Byzantine and stays silent)";
  let outcome =
    Scp.Runner.run_cfg ~cfg:Scp.Runner.default_cfg ~system
      ~peers_of:(fun i -> Digraph.succs g i)
      ~initial_value_of:(fun i -> Scp.Value.of_ints [ 100 + i ])
      ~fault_of:(fun i -> if i = 8 then Some Scp.Runner.Silent else None)
      ()
  in
  Format.printf "%a@." Scp.Runner.pp_outcome outcome;
  if outcome.all_decided && outcome.agreement then
    Format.printf
      "all 7 correct processes decided the same value — the maximal \
       consensus cluster did its job.@."
  else Format.printf "unexpected outcome!@."
