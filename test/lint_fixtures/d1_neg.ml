(* Fixture: ordering steps — fold into a Set/Map, or sort the result. *)
let to_map tbl = Hashtbl.fold Pid.Map.add tbl Pid.Map.empty

let to_set tbl =
  Hashtbl.fold (fun k _ acc -> Pid.Set.add k acc) tbl Pid.Set.empty

let sorted tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
