(** The analysis service daemon: a deterministic request loop over
    newline-delimited JSON.

    Requests are JSON objects [{"id": .., "verb": .., ...params}]; each
    produces zero or more ["trace"] envelope lines followed by exactly
    one ["response"] envelope line (a {!Core.Report} envelope whose
    meta carries the echoed [id], the [verb] and an [ok] flag). Verbs:
    [ping], [version], [analyze] (the {!Serve.Api.analyze} surface over
    a slice-system file), [run] (one consensus run), [stats] (cache,
    pool and request counters) and [shutdown].

    Per connection, the response stream is a pure function of the
    request stream — byte-identical requests yield byte-identical
    responses, served from a response cache on repeats — with the
    single intended exception of [stats], whose counters reflect
    accumulated state (that is what it is for). The stdio transport
    is strictly sequential (the CI golden replay); the Unix-socket
    transport serves several clients concurrently, each on a detached
    executor task, all sharing the caches and the persistent worker
    pool. See DESIGN.md §14 for the protocol and §18 for the
    concurrency model. *)

type t
(** One daemon instance: its file and response caches plus the
    request counter. *)

val create : ?cache_capacity:int -> ?jobs:int -> unit -> t
(** [cache_capacity] (default: [STELLAR_CUP_CACHE_CAPACITY] if set,
    else 64) sizes the response cache and resizes the process-wide
    compiled-handle caches ({!Fbqs.Quorum.set_cache_capacity}, and
    {!Graphkit.Csr.set_cache_capacity} clamped to its default 16).
    [jobs] (default 1) is the default Enum parallelism for [analyze]
    requests; a request's own ["jobs"] field overrides it, and
    payloads are byte-identical at every jobs count either way.
    @raise Invalid_argument below 1. *)

val handle_line : t -> string -> string list
(** Handles one request line, returning the output lines (each a
    serialized envelope, no trailing newline). Blank lines yield no
    output; malformed JSON or a bad request yields one error
    response. Never raises on bad input. *)

val stopping : t -> bool
(** Set once a [shutdown] request has been handled. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Reads requests until EOF or [shutdown], writing and flushing the
    response lines per request. *)

val serve_stdio : t -> unit
(** {!serve_channels} over stdin/stdout — the CI transport. *)

val default_max_clients : int
(** 4 — the default concurrent-connection cap of {!serve_unix}. *)

val serve_unix : ?max_clients:int -> t -> path:string -> unit
(** Listens on a Unix domain socket at [path] (an existing file there
    is replaced), serving up to [max_clients] (default 4) connections
    concurrently — each on a detached {!Simkit.Exec} task — until a
    client sends [shutdown]. Per-connection request order is
    preserved; connections beyond the cap wait for a free slot. On
    runtimes without concurrent tasks ({!Simkit.Exec.concurrent_tasks}
    false) clients are served one at a time in accept order. After
    [shutdown], the listener stops accepting, already-connected
    clients are drained (they stop at their next request or EOF), and
    the socket file is removed. *)
