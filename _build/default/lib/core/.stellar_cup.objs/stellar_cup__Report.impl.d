lib/core/report.ml: Array Buffer Format List Printf String
