(* The fast path compiles the graph to CSR int arrays (memoized in
   Csr's handle cache) and runs the allocation-free array Tarjan there;
   the seed tree-set implementation below is kept verbatim as the
   fallback for negative-pid graphs and as the qcheck/bench baseline.
   Both emit components in the same order — Csr's determinism
   contract. *)

(* ---- seed implementation (baseline + negative-pid fallback) ---------- *)

(* Iterative Tarjan: an explicit stack mirrors the recursion so large
   graphs cannot overflow the OCaml stack. *)

type state = {
  mutable index : int;
  indices : (Pid.t, int) Hashtbl.t;
  lowlinks : (Pid.t, int) Hashtbl.t;
  on_stack : (Pid.t, unit) Hashtbl.t;
  stack : Pid.t Stack.t;
  mutable sccs : Pid.Set.t list;
}

let components_baseline g =
  let st =
    {
      index = 0;
      indices = Hashtbl.create 64;
      lowlinks = Hashtbl.create 64;
      on_stack = Hashtbl.create 64;
      stack = Stack.create ();
      sccs = [];
    }
  in
  let visit root =
    (* Each frame is (vertex, remaining successors). *)
    let frames = Stack.create () in
    let push v =
      Hashtbl.replace st.indices v st.index;
      Hashtbl.replace st.lowlinks v st.index;
      st.index <- st.index + 1;
      Stack.push v st.stack;
      Hashtbl.replace st.on_stack v ();
      Stack.push (v, ref (Pid.Set.elements (Digraph.succs g v))) frames
    in
    push root;
    while not (Stack.is_empty frames) do
      let v, rest = Stack.top frames in
      match !rest with
      | w :: tl ->
          rest := tl;
          if not (Hashtbl.mem st.indices w) then push w
          else if Hashtbl.mem st.on_stack w then
            Hashtbl.replace st.lowlinks v
              (min (Hashtbl.find st.lowlinks v) (Hashtbl.find st.indices w))
      | [] ->
          (* The popped frame is [v]'s own — its fields live on in
             [v]/[rest]; only the stack slot is being retired. *)
          let (_ : Pid.t * Pid.t list ref) = Stack.pop frames in
          if Hashtbl.find st.lowlinks v = Hashtbl.find st.indices v then begin
            let rec collect acc =
              let w = Stack.pop st.stack in
              Hashtbl.remove st.on_stack w;
              let acc = Pid.Set.add w acc in
              if Pid.equal w v then acc else collect acc
            in
            st.sccs <- collect Pid.Set.empty :: st.sccs
          end;
          if not (Stack.is_empty frames) then begin
            let parent, _ = Stack.top frames in
            Hashtbl.replace st.lowlinks parent
              (min (Hashtbl.find st.lowlinks parent) (Hashtbl.find st.lowlinks v))
          end
    done
  in
  Pid.Set.iter
    (fun v -> if not (Hashtbl.mem st.indices v) then visit v)
    (Digraph.vertices g);
  List.rev st.sccs

(* ---- public API: CSR with seed fallback ------------------------------ *)

let components g =
  match Csr.get g with
  | Some h -> Csr.scc_components h
  | None -> components_baseline g

let component_of g i =
  match Csr.get g with
  | Some h -> (
      match Csr.scc_component_of h i with
      | Some k -> (Csr.scc_component_sets h).(k)
      | None -> raise Not_found)
  | None -> (
      match List.find_opt (Pid.Set.mem i) (components_baseline g) with
      | Some c -> c
      | None -> raise Not_found)

let component_index g =
  match Csr.get g with
  | Some h ->
      let comp_of = Csr.scc_comp_of_dense h in
      let m = ref Pid.Map.empty in
      for v = 0 to Csr.n_vertices h - 1 do
        m := Pid.Map.add (Csr.pid_of h v) comp_of.(v) !m
      done;
      !m
  | None ->
      let _, m =
        List.fold_left
          (fun (k, m) c ->
            (k + 1, Pid.Set.fold (fun v m -> Pid.Map.add v k m) c m))
          (0, Pid.Map.empty) (components_baseline g)
      in
      m

let is_strongly_connected g =
  match Csr.get g with
  | Some h -> Csr.scc_count h <= 1
  | None -> (
      match components_baseline g with [] -> true | [ _ ] -> true | _ -> false)
