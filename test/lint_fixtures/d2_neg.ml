(* Fixture: seeded determinism is fine anywhere. *)
let rng seed = Random.State.make [| seed |]
let pick st = Random.State.int st 100
