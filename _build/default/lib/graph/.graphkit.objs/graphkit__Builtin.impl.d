lib/graph/builtin.ml: Digraph Pid
