(* Capture fixtures for R1: literal closures in Exec/Pool job
   positions, one per capture class the rule distinguishes. *)

let table : (int, int) Hashtbl.t = Hashtbl.create 16

let cache : (int, int) Core.Cache.t =
  Core.Cache.create ~name:"r1-fixture" ~capacity:8 ()

(* R1-positive: the job closure captures the toplevel [table]. *)
let uses_table xs =
  Simkit.Exec.map ~jobs:2
    (fun x ->
      Hashtbl.replace table x x;
      x)
    xs

(* R1-negative: Core.Cache captures are exempt — the executor arms the
   cache protector before its first spawn. *)
let uses_cache xs =
  Simkit.Exec.map ~jobs:2
    (fun x -> Core.Cache.find_or_add cache x (fun () -> x * 2))
    xs

(* R1-negative: the Hashtbl is local to the closure, not captured. *)
let local_table xs =
  Simkit.Exec.map ~jobs:2
    (fun x ->
      let h = Hashtbl.create 4 in
      Hashtbl.replace h x x;
      Hashtbl.length h)
    xs

(* R1-positive via Pool: a captured ref. *)
let pool_ref xs =
  let seen = ref 0 in
  Simkit.Pool.map ~jobs:2
    (fun x ->
      incr seen;
      x + !seen)
    xs

(* R2 entry: the job is a named function, so R1 has no literal closure
   to inspect; the call graph leads to [R2_state.counter]. *)
let via_module xs = Simkit.Exec.map ~jobs:2 R2_state.bump xs
