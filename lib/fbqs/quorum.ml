open Graphkit

type system = Slice.t Pid.Map.t

let system_of_list l =
  List.fold_left (fun m (i, s) -> Pid.Map.add i s m) Pid.Map.empty l

let slices_of sys i =
  Option.value ~default:(Slice.Explicit []) (Pid.Map.find_opt i sys)

let participants = Pid.Map.keys

(* ---- compiled systems over the dense bitset kernel ------------------

   Algorithm 1 evaluates one predicate per member of the candidate set,
   and on the Algorithm 2 threshold systems every such predicate is the
   same [|Q ∩ members| >= threshold] count. A system is compiled once
   into pid-indexed arrays of dense bitsets: the per-member test becomes
   an array load plus (for threshold slices) one popcount shared across
   every member with a structurally equal member set ("class").

   Compilation is explicit ({!Compiled.compile}); the historical
   implicit entry points below keep working through a bounded
   most-recently-compiled cache keyed by physical equality. *)

module D = Pid.Dense_set

type entry =
  | Absent  (** no declared slices: never satisfies Algorithm 1 *)
  | Explicit_d of D.t array
  | Threshold_d of { sat : bool; threshold : int; cls : int }
      (** [sat]: the slice set is non-empty ([threshold <= |members|]);
          [cls] indexes the shared member-set class. *)

type compiled = {
  csys : system;  (** the compiled system, also the implicit-cache key *)
  bound : int;  (** pids outside [0, bound) are [Absent] *)
  entries : entry array;
  class_sets : D.t array;  (** distinct threshold member sets *)
  fallback : bool;
      (** a negative pid appears somewhere: evaluate on [Pid.Set]
          directly (dense bitsets only cover non-negative ids) *)
  mutable queries : int;  (** membership queries answered *)
  mutable popcounts : int;  (** D.inter_cardinal calls performed *)
}

let slice_has_negative = function
  | Slice.Explicit slices ->
      List.exists
        (fun s ->
          match Pid.Set.min_elt_opt s with Some m -> m < 0 | None -> false)
        slices
  | Slice.Threshold { members; _ } -> (
      match Pid.Set.min_elt_opt members with Some m -> m < 0 | None -> false)

let compile_raw sys =
  let negative =
    (match Pid.Map.min_binding_opt sys with
    | Some (k, _) -> k < 0
    | None -> false)
    || Pid.Map.exists (fun _ s -> slice_has_negative s) sys
  in
  if negative then
    {
      csys = sys;
      bound = 0;
      entries = [||];
      class_sets = [||];
      fallback = true;
      queries = 0;
      popcounts = 0;
    }
  else begin
    let bound =
      match Pid.Map.max_binding_opt sys with Some (k, _) -> k + 1 | None -> 0
    in
    let entries = Array.make bound Absent in
    let classes : (D.t, int) Hashtbl.t = Hashtbl.create 7 in
    let class_sets = ref [] in
    let n_classes = ref 0 in
    let class_of d =
      match Hashtbl.find_opt classes d with
      | Some c -> c
      | None ->
          let c = !n_classes in
          incr n_classes;
          Hashtbl.add classes d c;
          class_sets := d :: !class_sets;
          c
    in
    Pid.Map.iter
      (fun i slice ->
        entries.(i) <-
          (match slice with
          | Slice.Explicit [] -> Absent
          | Slice.Explicit slices ->
              Explicit_d (Array.of_list (List.map D.of_set slices))
          | Slice.Threshold { members; threshold } ->
              let sat = threshold <= Pid.Set.cardinal members in
              Threshold_d { sat; threshold; cls = class_of (D.of_set members) }))
      sys;
    {
      csys = sys;
      bound;
      entries;
      class_sets = Array.of_list (List.rev !class_sets);
      fallback = false;
      queries = 0;
      popcounts = 0;
    }
  end

(* The per-member test of Algorithm 1. [counts] memoizes one
   intersection cardinality per member-set class for the duration of a
   single candidate-set evaluation. *)
let member_ok c counts qd i =
  i >= 0
  && i < c.bound
  &&
  match c.entries.(i) with
  | Absent -> false
  | Explicit_d slices ->
      let n = Array.length slices in
      let rec go k = k < n && (D.subset slices.(k) qd || go (k + 1)) in
      go 0
  | Threshold_d { sat; threshold; cls } ->
      sat
      && threshold
         <=
         (let cnt = counts.(cls) in
          if cnt >= 0 then cnt
          else begin
            c.popcounts <- c.popcounts + 1;
            let cnt = D.inter_cardinal c.class_sets.(cls) qd in
            counts.(cls) <- cnt;
            cnt
          end)

let has_negative_member set =
  match Pid.Set.min_elt_opt set with Some m -> m < 0 | None -> false

(* Reference path kept for systems or candidates naming negative pids
   (which the dense kernel cannot represent): Algorithm 1 verbatim. *)
let tree_member_ok sys q i = Slice.has_slice_within (slices_of sys i) q

module Compiled = struct
  type t = compiled

  let compile = compile_raw
  let system c = c.csys

  let is_quorum c q =
    c.queries <- c.queries + 1;
    (not (Pid.Set.is_empty q))
    &&
    if c.fallback || has_negative_member q then
      Pid.Set.for_all (tree_member_ok c.csys q) q
    else begin
      let qd = D.of_set q in
      let counts = Array.make (Array.length c.class_sets) (-1) in
      D.for_all (member_ok c counts qd) qd
    end

  let is_quorum_of c i q = Pid.Set.mem i q && is_quorum c q

  let require_dense c who =
    if c.fallback then
      invalid_arg
        (Printf.sprintf
           "Quorum.Compiled.%s: system has negative pids (no dense form)" who)

  let is_quorum_d c qd =
    require_dense c "is_quorum_d";
    c.queries <- c.queries + 1;
    (not (D.is_empty qd))
    &&
    let counts = Array.make (Array.length c.class_sets) (-1) in
    D.for_all (member_ok c counts qd) qd

  let greatest_quorum_within_d c set =
    require_dense c "greatest_quorum_within_d";
    c.queries <- c.queries + 1;
    let rec go qd =
      let counts = Array.make (Array.length c.class_sets) (-1) in
      let keep = D.filter (member_ok c counts qd) qd in
      if D.equal keep qd then qd else go keep
    in
    go set

  let contains_quorum_d c set =
    not (D.is_empty (greatest_quorum_within_d c set))

  let greatest_quorum_within c set =
    (* Discard members with no slice inside the current candidate until
       a fixpoint. Since the union of two quorums is a quorum, the
       fixpoint is the union of all quorums within [set]. *)
    c.queries <- c.queries + 1;
    if c.fallback || has_negative_member set then
      let rec go cur =
        let keep = Pid.Set.filter (tree_member_ok c.csys cur) cur in
        if Pid.Set.equal keep cur then cur else go keep
      in
      go set
    else begin
      let rec go qd =
        let counts = Array.make (Array.length c.class_sets) (-1) in
        let keep = D.filter (member_ok c counts qd) qd in
        if D.equal keep qd then qd else go keep
      in
      D.to_set (go (D.of_set set))
    end

  let contains_quorum c set =
    not (Pid.Set.is_empty (greatest_quorum_within c set))

  (* Declared after the queries so the immutable stats fields do not
     shadow the compiled record's mutable counters of the same name. *)
  type stats = { queries : int; popcounts : int; fallback : bool }

  let stats (c : t) =
    { queries = c.queries; popcounts = c.popcounts; fallback = c.fallback }
end

let compile = Compiled.compile

(* ---- shared compiled-handle cache ------------------------------------

   Bounded most-recently-used cache over {!Core.Cache}, keyed by
   physical equality of the system map. Sized for a simulation's worth
   of per-node evolving slice views; a miss costs one O(system)
   compilation, about the price of a single tree-set query. SCP
   federated voting, whose system grows as envelopes arrive, is the
   intended client; so is the analysis daemon, whose file cache keeps
   hot systems alive so repeated analyses reuse one handle. Code
   holding a stable system may call {!Compiled.compile} directly to
   bypass the cache. *)

let cache : (system, compiled) Core.Cache.t =
  Core.Cache.create ~name:"fbqs_quorum_compiled" ~capacity:64 ()

let cache_stats () = Core.Cache.stats cache
let set_cache_capacity n = Core.Cache.set_capacity cache n
let attach_cache_metrics registry = Core.Cache.attach_metrics cache registry
let compiled_of sys = Core.Cache.find_or_add cache sys (fun () -> compile_raw sys)

let is_quorum sys q = Compiled.is_quorum (compiled_of sys) q
let is_quorum_of sys i q = Pid.Set.mem i q && is_quorum sys q

let greatest_quorum_within sys set =
  Compiled.greatest_quorum_within (compiled_of sys) set

let contains_quorum sys set =
  not (Pid.Set.is_empty (greatest_quorum_within sys set))

(* Mazières' delete operation: remove the nodes of [b] from the system
   and from every remaining slice. Lives here (rather than in {!Dset},
   which re-exports it) so that the {!Enum} analyzer can delete without
   depending on the DSet layer it accelerates. *)
let delete sys b =
  Pid.Map.filter_map
    (fun i slices ->
      if Pid.Set.mem i b then None
      else
        Some
          (match slices with
          | Slice.Explicit l ->
              Slice.Explicit (List.map (fun s -> Pid.Set.diff s b) l)
          | Slice.Threshold { members; threshold } ->
              (* Deleting [b] from "all t-subsets of members" yields the
                 set {s \ b}, whose weakest elements are the
                 (t - |members ∩ b|)-subsets of the survivors; both
                 has_slice_within and all_slices_intersect depend only
                 on those, so the result is exactly a threshold slice
                 over the survivors with the reduced threshold. *)
              let hit = Pid.Set.cardinal (Pid.Set.inter members b) in
              Slice.Threshold
                {
                  members = Pid.Set.diff members b;
                  threshold = max 0 (threshold - hit);
                }))
    sys

let subsets_fold f universe acc =
  let elts = Array.of_list (Pid.Set.elements universe) in
  let n = Array.length elts in
  if n > 20 then
    invalid_arg "Quorum.enum_quorums: universe larger than 20 processes";
  let acc = ref acc in
  for mask = 1 to (1 lsl n) - 1 do
    let s = ref Pid.Set.empty in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
    done;
    acc := f !s !acc
  done;
  !acc

let enum_quorums ?universe sys =
  let universe = Option.value ~default:(participants sys) universe in
  let c = compiled_of sys in
  subsets_fold
    (fun s acc -> if Compiled.is_quorum c s then s :: acc else acc)
    universe []

let keep_minimal quorums =
  List.filter
    (fun q ->
      not
        (List.exists
           (fun q' -> (not (Pid.Set.equal q q')) && Pid.Set.subset q' q)
           quorums))
    quorums

let minimal_quorums ?universe sys = keep_minimal (enum_quorums ?universe sys)

let minimal_quorums_of ?universe sys i =
  let quorums_of_i =
    List.filter (Pid.Set.mem i) (enum_quorums ?universe sys)
  in
  keep_minimal quorums_of_i

let is_v_blocking sys i b =
  match slices_of sys i with
  | Slice.Explicit [] -> false
  | s when Slice.slice_count s = 0 -> false
  | s -> Slice.all_slices_intersect s b
