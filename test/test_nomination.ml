open Graphkit
open Scp

let v = Value.of_ints

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let run_nominating ?(seed = 0) ~nomination ~system ~peers_of
    ~initial_value_of ~fault_of () =
  let d = Runner.default_cfg in
  Runner.run_cfg
    ~cfg:{ d with run = { d.run with seed }; nomination }
    ~system ~peers_of ~initial_value_of ~fault_of ()

let run ?(n = 4) ?(t = 3) ?(seed = 0) ~nomination ~fault_of () =
  run_nominating ~seed ~nomination
    ~system:(threshold_system n t)
    ~peers_of:(fun _ -> Pid.Set.of_range 1 n)
    ~initial_value_of:(fun i -> v [ i ])
    ~fault_of ()

let no_faults _ = None

let test_priority_deterministic () =
  Alcotest.(check int) "stable" (Node.priority 3) (Node.priority 3);
  Alcotest.(check bool) "spreads" true (Node.priority 1 <> Node.priority 2)

let test_leader_priority_decides () =
  let o = run ~nomination:(Node.Leader_priority 30) ~fault_of:no_faults () in
  Alcotest.(check bool) "all decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "validity" true o.validity

let test_leader_value_wins () =
  (* With a single live leader the decided value is exactly the
     leader's proposal — nomination converges on one value instead of
     the union. *)
  let o = run ~nomination:(Node.Leader_priority 30) ~fault_of:no_faults () in
  let members = List.init 4 (fun i -> i + 1) in
  let top =
    List.fold_left
      (fun best i ->
        if Node.priority i > Node.priority best then i else best)
      (List.hd members) members
  in
  match Pid.Map.choose_opt o.decisions with
  | Some (_, d) ->
      Alcotest.(check bool) "leader's own value decided" true
        (Value.equal d.value (v [ top ]))
  | None -> Alcotest.fail "no decision"

let test_silent_leader_round_bump () =
  (* Silence the top-priority node: round 2 admits the next leader and
     consensus still completes. *)
  let members = List.init 4 (fun i -> i + 1) in
  let top =
    List.fold_left
      (fun best i ->
        if Node.priority i > Node.priority best then i else best)
      (List.hd members) members
  in
  let fault_of i = if i = top then Some Runner.Silent else None in
  let o = run ~nomination:(Node.Leader_priority 30) ~fault_of () in
  Alcotest.(check bool) "all decided despite silent leader" true
    o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement

let test_fewer_messages_than_echo_all () =
  let leader = run ~n:7 ~t:5 ~nomination:(Node.Leader_priority 30) ~fault_of:no_faults () in
  let echo = run ~n:7 ~t:5 ~nomination:Node.Echo_all ~fault_of:no_faults () in
  Alcotest.(check bool) "both decide" true
    (leader.all_decided && echo.all_decided);
  Alcotest.(check bool)
    (Printf.sprintf "leader nomination cheaper (%d < %d)"
       leader.stats.messages_sent echo.stats.messages_sent)
    true
    (leader.stats.messages_sent < echo.stats.messages_sent)

let test_algorithm2_slices_with_leaders () =
  (* The Corollary-2 slice structure with leader nomination. *)
  let f = 1 in
  let system = Cup.Slice_builder.system_via_oracle ~f Builtin.fig2 in
  let peers_of i = Fbqs.Slice.domain (Fbqs.Quorum.slices_of system i) in
  let o =
    run_nominating ~nomination:(Node.Leader_priority 30) ~system ~peers_of
      ~initial_value_of:(fun i -> v [ i ])
      ~fault_of:(fun i -> if i = 4 then Some Runner.Silent else None)
      ()
  in
  Alcotest.(check bool) "all decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement

let prop_leader_nomination_random_seeds =
  QCheck.Test.make ~count:15 ~name:"leader nomination across seeds/faults"
    QCheck.(pair (int_bound 500) (int_range 1 4))
    (fun (seed, faulty) ->
      let fault_of i = if i = faulty then Some Runner.Silent else None in
      let o = run ~seed ~nomination:(Node.Leader_priority 30) ~fault_of () in
      o.all_decided && o.agreement && o.validity)

let suites =
  [
    ( "nomination",
      [
        Alcotest.test_case "priority deterministic" `Quick
          test_priority_deterministic;
        Alcotest.test_case "leader priority decides" `Quick
          test_leader_priority_decides;
        Alcotest.test_case "leader's value wins" `Quick test_leader_value_wins;
        Alcotest.test_case "silent leader bumps round" `Quick
          test_silent_leader_round_bump;
        Alcotest.test_case "cheaper than echo-all" `Quick
          test_fewer_messages_than_echo_all;
        Alcotest.test_case "with Algorithm 2 slices" `Quick
          test_algorithm2_slices_with_leaders;
        QCheck_alcotest.to_alcotest prop_leader_nomination_random_seeds;
      ] );
  ]
