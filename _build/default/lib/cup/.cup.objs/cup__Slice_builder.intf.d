lib/cup/slice_builder.mli: Digraph Fbqs Graphkit Pid Sink_oracle
