type t = {
  seed : int;
  gst : int;
  delta : int;
  max_time : int;
  delay : Delay.t option;
  metrics : Obs.Metrics.t option;
  trace : Obs.Trace.sink option;
}

(* lint: allow R2 — immutable constant; the type's only mutable capability (metrics/trace sinks) is None here *)
let default =
  {
    seed = 0;
    gst = 50;
    delta = 5;
    max_time = 200_000;
    delay = None;
    metrics = None;
    trace = None;
  }

let with_seed seed cfg = { cfg with seed }

let delay_model cfg =
  match cfg.delay with
  | Some d -> d
  | None ->
      Delay.partial_synchrony ~gst:cfg.gst ~delta:cfg.delta ~seed:cfg.seed
