open Graphkit

type verdict = {
  all_decided : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
  discovery_msgs : int;
  consensus_msgs : int;
  total_time : int;
}

let pp_verdict ppf v =
  Format.fprintf ppf
    "decided=%b agreement=%b validity=%b deciders=%d msgs=%d+%d time=%d"
    v.all_decided v.agreement v.validity v.deciders v.discovery_msgs
    v.consensus_msgs v.total_time

let of_scp_outcome ?(discovery_msgs = 0) ?(discovery_time = 0)
    (o : Scp.Runner.outcome) =
  {
    all_decided = o.all_decided;
    agreement = o.agreement;
    validity = o.validity;
    deciders = Pid.Map.cardinal o.decisions;
    discovery_msgs;
    consensus_msgs = o.stats.messages_sent;
    total_time = discovery_time + o.stats.end_time;
  }

let scp_cfg cfg =
  { Scp.Runner.default_cfg with run = cfg }

let scp_with_local_slices ?(cfg = Simkit.Run_config.default) ?rule ~graph ~f
    ~faulty ~initial_value_of () =
  let rule = Option.value ~default:Cup.Local_slices.all_but_one rule in
  let pd = Cup.Participant_detector.of_graph ~f graph in
  let system = Cup.Local_slices.system ~rule pd in
  let peers_of i = Cup.Participant_detector.query pd i in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Scp.Runner.Silent else None
  in
  of_scp_outcome
    (Scp.Runner.run_cfg ~cfg:(scp_cfg cfg) ~system ~peers_of
       ~initial_value_of ~fault_of ())

let scp_with_sink_detector ?(cfg = Simkit.Run_config.default)
    ?nonsink_threshold ~graph ~f ~faulty ~initial_value_of () =
  (* Stage 1: the knowledge-increasing protocol (Algorithm 3). *)
  let fault_of i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  let discovery = Cup.Sink_protocol.run_cfg ~cfg ~graph ~f ~fault_of () in
  (* Stage 2: Algorithm 2 slices from each process's own answer. *)
  let slices_of_answer (a : Cup.Sink_oracle.answer) =
    match (a.in_sink, nonsink_threshold) with
    | false, Some threshold -> Fbqs.Slice.threshold ~members:a.view ~threshold
    | _ -> Cup.Slice_builder.build_slices ~f a
  in
  let system =
    Pid.Map.fold
      (fun i a sys -> Pid.Map.add i (slices_of_answer a) sys)
      discovery.answers Pid.Map.empty
  in
  let peers_of i =
    match Pid.Map.find_opt i discovery.answers with
    | Some (a : Cup.Sink_oracle.answer) -> a.view
    | None -> Digraph.succs graph i
  in
  let scp_fault_of i =
    if Pid.Set.mem i faulty then Some Scp.Runner.Silent
    else if not (Pid.Map.mem i discovery.answers) then Some Scp.Runner.Silent
    else None
  in
  let verdict =
    (* Stage 2 gets a distinct stream of delivery delays. *)
    let scp_run = Simkit.Run_config.with_seed (cfg.seed + 1) cfg in
    of_scp_outcome ~discovery_msgs:discovery.stats.messages_sent
      ~discovery_time:discovery.stats.end_time
      (Scp.Runner.run_cfg ~cfg:(scp_cfg scp_run) ~system ~peers_of
         ~initial_value_of ~fault_of:scp_fault_of ())
  in
  (* "All decided" must cover every correct process of the graph, not
     just those that survived discovery. *)
  let correct = Pid.Set.diff (Digraph.vertices graph) faulty in
  let discovery_complete =
    Pid.Set.for_all (fun i -> Pid.Map.mem i discovery.answers) correct
  in
  { verdict with all_decided = verdict.all_decided && discovery_complete }

type stack = Scp_local | Scp_sink_detector | Bftcup

let bftcup ?(cfg = Simkit.Run_config.default) ~graph ~f ~faulty
    ~initial_value_of () =
  let o =
    Bftcup.Protocol.run ~seed:cfg.Simkit.Run_config.seed ~gst:cfg.gst
      ~delta:cfg.delta ~max_time:cfg.max_time ~graph ~f ~initial_value_of
      ~faulty ()
  in
  {
    all_decided = o.all_decided;
    agreement = o.agreement;
    validity = o.validity;
    deciders = Pid.Map.cardinal o.decisions;
    discovery_msgs = o.discovery_stats.messages_sent;
    consensus_msgs = o.consensus_stats.messages_sent;
    total_time = o.discovery_stats.end_time + o.consensus_stats.end_time;
  }

let run_stack stack ~cfg ~graph ~f ~faulty ~initial_value_of =
  match stack with
  | Scp_local ->
      scp_with_local_slices ~cfg ~graph ~f ~faulty ~initial_value_of ()
  | Scp_sink_detector ->
      scp_with_sink_detector ~cfg ~graph ~f ~faulty ~initial_value_of ()
  | Bftcup -> bftcup ~cfg ~graph ~f ~faulty ~initial_value_of ()

let sweep ?(jobs = 1) ?(cfg = Simkit.Run_config.default) ~stack ~graph ~f
    ~faulty ~initial_value_of seeds =
  (* Graph analyses inside a sweep (sink detection, quorum checks) run
     against the same physical [graph] value every seed, so they hit the
     per-process {!Graphkit.Csr} memo: the graph is compiled and
     condensed once, not once per run. Domain workers share the parent's
     heap and hit the memo directly (Exec arms the cache's mutex before
     spawning); fork workers inherit a memo the parent has already
     warmed for free. *)
  (* Observability sinks are per-run mutable state; a sweep's fork
     workers each live in their own process (sinks attached to the
     parent's config would silently collect nothing), and domain
     workers would interleave into them nondeterministically. Strip
     them up front — the sweep is a measurement harness, the single-run
     entry points remain the observability path. *)
  let base =
    { cfg with Simkit.Run_config.metrics = None; trace = None }
  in
  let verdicts =
    Simkit.Exec.map ~jobs
      (fun seed ->
        run_stack stack
          (* lint: allow R1 — base is sink-stripped above: metrics/trace are None, all other fields immutable *)
          ~cfg:(Simkit.Run_config.with_seed seed base)
          ~graph ~f ~faulty ~initial_value_of)
      seeds
  in
  List.combine seeds verdicts
