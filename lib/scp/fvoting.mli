(** The federated voting core (Mazières 2015; Section III-D semantics).

    For each statement a node tracks who voted and who accepted it, and
    applies the two FBQS transition rules:

    - {b accept}: some quorum containing this node voted-or-accepted the
      statement, {e or} a v-blocking set accepted it (the v-blocking arm
      lets a node accept a statement it did not vote for);
    - {b confirm}: some quorum containing this node accepted it (the
      node "ratifies" the acceptance).

    Quorum membership is evaluated against a slice system: a set [S]
    holds a quorum containing the node iff the node belongs to the
    greatest quorum within [S ∪ {self}]. *)

open Graphkit

type tally = {
  voters : Pid.Set.t;  (** nodes seen voting-or-accepting *)
  acceptors : Pid.Set.t;  (** nodes seen accepting *)
  mutable i_voted : bool;
  mutable i_accepted : bool;
  mutable i_confirmed : bool;
}

type t

val create :
  ?metrics:Obs.Metrics.t ->
  self:Pid.t ->
  system:(unit -> Fbqs.Quorum.system) ->
  unit ->
  t
(** [system] is consulted at every evaluation, so the slice knowledge
    may grow while voting is under way (nodes learn declarations from
    envelopes). [metrics] counts the federated-voting quorum and
    v-blocking evaluations ([scp_quorum_checks],
    [scp_vblocking_checks]). *)

val self : t -> Pid.t

val tally : t -> Statement.t -> tally
(** The current tally for a statement (all-empty if never seen). *)

val record_vote : t -> Statement.t -> Pid.t -> unit
(** Registers that a node voted for the statement (also counts implied
    statements). Recording is idempotent. *)

val record_accept : t -> Statement.t -> Pid.t -> unit
(** Registers an acceptance (an acceptance also counts as
    vote-or-accept, and propagates to implied statements). *)

val set_voted : t -> Statement.t -> unit
(** Marks the local vote (the caller must also broadcast it and call
    {!record_vote} for itself). *)

val quorum_votes : t -> Statement.t -> bool
(** Whether a quorum containing this node voted-or-accepted it. *)

val blocking_accepts : t -> Statement.t -> bool
(** Whether a v-blocking set for this node accepted it. *)

val can_accept : t -> Statement.t -> bool

val can_confirm : t -> Statement.t -> bool

val mark_accepted : t -> Statement.t -> unit

val mark_confirmed : t -> Statement.t -> unit

val statements : t -> Statement.t list
(** All statements with a non-trivial tally, in statement order. *)
