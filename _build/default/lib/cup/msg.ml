open Graphkit

type t =
  | Know_request
  | Know of Pid.Set.t
  | Get_sink of { origin : Pid.t; path : Pid.t list }
  | Sink_reply of Pid.Set.t

let pp ppf = function
  | Know_request -> Format.pp_print_string ppf "know_request"
  | Know s -> Format.fprintf ppf "know %a" Pid.Set.pp s
  | Get_sink { origin; path } ->
      Format.fprintf ppf "get_sink origin=%d path=[%a]" origin
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Pid.pp)
        path
  | Sink_reply s -> Format.fprintf ppf "sink_reply %a" Pid.Set.pp s

let size = function
  | Know_request -> 1
  | Know s -> 1 + Pid.Set.cardinal s
  | Get_sink { path; _ } -> 2 + List.length path
  | Sink_reply s -> 1 + Pid.Set.cardinal s
