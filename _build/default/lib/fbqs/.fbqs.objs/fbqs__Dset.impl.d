lib/fbqs/dset.ml: Array Graphkit List Pid Quorum Slice
