(** Local slice definitions from [PD_i] and [f] alone — the Section IV
    strawman that Theorem 2 proves insufficient.

    Any local rule must satisfy Lemma 1 (slices are subsets of [PD_i])
    and Lemma 2 (at least one slice avoids every candidate faulty set of
    size [f], which for subset-closed threshold rules means threshold at
    most [|PD_i| - f]). Both rules below do. *)

open Graphkit

val all_but_one : Participant_detector.t -> Pid.t -> Fbqs.Slice.t
(** The rule used in Theorem 2's proof: all subsets of [PD_i] of size
    [|PD_i| - 1]. Satisfies Lemma 2 whenever [f >= 1]. *)

val drop_f : Participant_detector.t -> Pid.t -> Fbqs.Slice.t
(** The tightest Lemma-2-compliant threshold rule: all subsets of
    [PD_i] of size [max 1 (|PD_i| - f)]. *)

val system :
  rule:(Participant_detector.t -> Pid.t -> Fbqs.Slice.t) ->
  Participant_detector.t ->
  Fbqs.Quorum.system
(** Applies a local rule to every participant of the knowledge graph. *)
