(* The paper's central negative and positive results, live.

   Act I  (Theorem 2 / Fig. 2): every process builds its slices locally
           from PD_i and f. Two disjoint quorums appear, and a legal
           partially-synchronous schedule drives SCP into deciding two
           different values.
   Act II (Corollary 2): the same graph, but slices are built with the
           sink detector (Algorithm 3) and Algorithm 2. Consensus holds
           even with a silent Byzantine sink member.

   Run with: dune exec examples/counterexample.exe *)

open Graphkit

let section title = Format.printf "@.--- %s ---@." title

let () =
  let g = Builtin.fig2 in
  let f = 1 in
  Format.printf "Theorem 2, live: local slices cannot solve consensus@.";

  section "The 3-OSR knowledge graph (Fig. 2)";
  Format.printf "%a" Digraph.pp g;
  Format.printf "3-OSR: %b, sink = %a@." (Properties.is_k_osr g 3)
    Pid.Set.pp (Properties.sink_of_exn g);

  section "Act I: slices from PD_i and f only (all-but-one rule)";
  let pd = Cup.Participant_detector.of_graph ~f g in
  let local = Cup.Local_slices.system ~rule:Cup.Local_slices.all_but_one pd in
  (match Stellar_cup.Theorems.theorem2_witness ~f g with
  | Some w ->
      Format.printf "quorum-intersection violation: %a@."
        Stellar_cup.Theorems.pp_violation w
  | None -> Format.printf "no violation found (unexpected)@.");

  section "Act I, continued: a real agreement violation";
  (* The network adversary keeps sink <-> non-sink traffic slow until
     its (legal) partial-synchrony deadline; both quorums decide on
     their own. *)
  let sink_side i = i <= 4 in
  let delay =
    Simkit.Delay.targeted ~gst:50_000 ~delta:5 ~seed:1 ~slow:(fun a b ->
        sink_side a <> sink_side b)
  in
  let outcome =
    (let d = Scp.Runner.default_cfg in
     Scp.Runner.run_cfg
       ~cfg:
         {
           d with
           run = { d.run with delay = Some delay; max_time = 120_000 };
         })
      ~system:local
      ~peers_of:(fun i -> Cup.Participant_detector.query pd i)
      ~initial_value_of:(fun i ->
        Scp.Value.of_ints [ (if sink_side i then 100 else 200) ])
      ~fault_of:(fun _ -> None)
      ()
  in
  Format.printf "%a@." Scp.Runner.pp_outcome outcome;
  Format.printf "agreement violated: %b  (Corollary 1)@."
    (not outcome.agreement);

  section "Act II: slices via the sink detector (Algorithms 2 + 3)";
  let verdict =
    Stellar_cup.Pipeline.scp_with_sink_detector
      ~cfg:(Simkit.Run_config.with_seed 2 Simkit.Run_config.default)
      ~graph:g ~f
      ~faulty:(Pid.Set.singleton 4)
      ~initial_value_of:(fun i -> Scp.Value.of_ints [ 100 + i ])
      ()
  in
  Format.printf "with a silent Byzantine sink member (4): %a@."
    Stellar_cup.Pipeline.pp_verdict verdict;
  Format.printf
    "consensus restored: %b  (Corollary 2 — the sink detector provides \
     exactly the missing knowledge)@."
    (verdict.all_decided && verdict.agreement && verdict.validity)
