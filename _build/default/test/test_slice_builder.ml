open Graphkit
open Cup

let set = Pid.Set.of_list

let test_sink_threshold_formula () =
  (* ceil((|V| + f + 1) / 2) *)
  Alcotest.(check int) "V=4 f=1" 3 (Slice_builder.sink_threshold ~sink_size:4 ~f:1);
  Alcotest.(check int) "V=5 f=1" 4 (Slice_builder.sink_threshold ~sink_size:5 ~f:1);
  Alcotest.(check int) "V=7 f=2" 5 (Slice_builder.sink_threshold ~sink_size:7 ~f:2);
  Alcotest.(check int) "V=3 f=0" 2 (Slice_builder.sink_threshold ~sink_size:3 ~f:0)

let test_build_slices_shapes () =
  let v = set [ 1; 2; 3; 4 ] in
  let sink_slices =
    Slice_builder.build_slices ~f:1 { Sink_oracle.in_sink = true; view = v }
  in
  (match sink_slices with
  | Fbqs.Slice.Threshold { members; threshold } ->
      Alcotest.(check bool) "members = V" true (Pid.Set.equal members v);
      Alcotest.(check int) "sink threshold" 3 threshold
  | Fbqs.Slice.Explicit _ -> Alcotest.fail "expected threshold slices");
  let nonsink_slices =
    Slice_builder.build_slices ~f:1 { Sink_oracle.in_sink = false; view = v }
  in
  match nonsink_slices with
  | Fbqs.Slice.Threshold { threshold; _ } ->
      Alcotest.(check int) "non-sink threshold f+1" 2 threshold
  | Fbqs.Slice.Explicit _ -> Alcotest.fail "expected threshold slices"

let test_fig2_system_now_intertwined () =
  (* The paper's fix: on the same Fig. 2 graph where local slices fail,
     Algorithm 2 slices make every pair of processes intertwined. *)
  let f = 1 in
  let sys = Slice_builder.system_via_oracle ~f Builtin.fig2 in
  let all = Digraph.vertices Builtin.fig2 in
  Alcotest.(check bool) "intertwined with threshold f" true
    (Fbqs.Intertwine.set_intertwined sys (Threshold f) all)

let test_fig2_availability () =
  (* Theorem 4 on fig2: whatever single process is faulty, every correct
     process keeps an all-correct quorum. *)
  let f = 1 in
  let sys = Slice_builder.system_via_oracle ~f Builtin.fig2 in
  Pid.Set.iter
    (fun faulty_one ->
      let correct =
        Pid.Set.remove faulty_one (Digraph.vertices Builtin.fig2)
      in
      Pid.Set.iter
        (fun i ->
          let gq = Fbqs.Quorum.greatest_quorum_within sys correct in
          Alcotest.(check bool)
            (Printf.sprintf "faulty=%d: %d has all-correct quorum" faulty_one i)
            true
            (Pid.Set.mem i gq))
        correct)
    (Digraph.vertices Builtin.fig2)

let test_quorum_size_lower_bound () =
  (* Section V: every quorum has size >= ceil((|V_sink|+f+1)/2). *)
  let f = 1 in
  let sys = Slice_builder.system_via_oracle ~f Builtin.fig2 in
  let bound = Slice_builder.sink_threshold ~sink_size:4 ~f in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Format.asprintf "quorum %a size >= %d" Pid.Set.pp q bound)
        true
        (Pid.Set.cardinal q >= bound))
    (Fbqs.Quorum.enum_quorums sys)

let prop_theorems_on_random_graphs =
  QCheck.Test.make ~count:25
    ~name:"Theorems 3+4 via oracle slices on random graphs"
    QCheck.(pair (int_bound 500) (int_range 1 2))
    (fun (seed, f) ->
      let sink_size = (3 * f) + 2 in
      let g, _sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size ~non_sink:3 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let correct = Pid.Set.diff (Digraph.vertices g) faulty in
      let sys = Slice_builder.system_via_oracle ~f g in
      (* Theorem 3: all correct pairs intertwined (threshold mode). We
         check availability (Theorem 4) exactly; intertwinement is
         checked on the greatest correct quorum structure to stay
         polynomial: every pair of *minimal* quorums needs |V| <= 20 to
         enumerate, which holds here. *)
      let all = Digraph.vertices g in
      Fbqs.Intertwine.set_intertwined sys (Threshold f) all
      && Pid.Set.subset correct
           (Fbqs.Quorum.greatest_quorum_within sys correct))

let suites =
  [
    ( "slice_builder",
      [
        Alcotest.test_case "sink threshold formula" `Quick
          test_sink_threshold_formula;
        Alcotest.test_case "build_slices shapes" `Quick
          test_build_slices_shapes;
        Alcotest.test_case "fig2 becomes intertwined" `Quick
          test_fig2_system_now_intertwined;
        Alcotest.test_case "fig2 availability under any fault" `Quick
          test_fig2_availability;
        Alcotest.test_case "quorum size lower bound" `Quick
          test_quorum_size_lower_bound;
        QCheck_alcotest.to_alcotest prop_theorems_on_random_graphs;
      ] );
  ]
