(** A mutable binary min-heap used as the simulator's event queue.

    Entries are ordered by [(time, seq)]: the sequence number is a
    monotonically increasing tie-breaker assigned at insertion, so
    executions are fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Inserts an event at the given timestamp. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the earliest event as [(time, event)]. *)

val peek_time : 'a t -> int option

val high_water : 'a t -> int
(** The largest number of simultaneously pending events ever observed —
    the queue-depth high-water mark reported by the engine's
    statistics and metrics. *)
