examples/quickstart.ml: Builtin Digraph Fbqs Format Graphkit List Pid Properties Scp
