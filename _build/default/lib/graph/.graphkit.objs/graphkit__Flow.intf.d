lib/graph/flow.mli:
