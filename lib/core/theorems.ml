open Graphkit

type violation_witness = {
  process_a : Pid.t;
  quorum_a : Pid.Set.t;
  process_b : Pid.t;
  quorum_b : Pid.Set.t;
}

let pp_violation ppf w =
  Format.fprintf ppf "Q_%d = %a and Q_%d = %a intersect in %d process(es)"
    w.process_a Pid.Set.pp w.quorum_a w.process_b Pid.Set.pp w.quorum_b
    (Pid.Set.cardinal (Pid.Set.inter w.quorum_a w.quorum_b))

let theorem2_witness ?rule ~f g =
  let rule = Option.value ~default:Cup.Local_slices.all_but_one rule in
  let pd = Cup.Participant_detector.of_graph ~f g in
  let sys = Cup.Local_slices.system ~rule pd in
  match
    Fbqs.Intertwine.violating_pair sys (Threshold f) (Digraph.vertices g)
  with
  | Some (a, qa, b, qb) ->
      Some { process_a = a; quorum_a = qa; process_b = b; quorum_b = qb }
  | None -> None

let theorem3_holds ~f sys set =
  Fbqs.Intertwine.set_intertwined sys (Threshold f) set

let theorem3_closed_form ~sink_size ~f =
  let t = Cup.Slice_builder.sink_threshold ~sink_size ~f in
  (* Two size-t subsets of a sink_size universe overlap in at least
     2t - sink_size members. *)
  (2 * t) - sink_size > f

let theorem4_holds ~f:_ ~correct sys =
  let c = Fbqs.Quorum.Compiled.compile sys in
  Pid.Set.subset correct (Fbqs.Quorum.Compiled.greatest_quorum_within c correct)

let theorem5_holds ~f ~correct sys =
  theorem4_holds ~f ~correct sys && theorem3_holds ~f sys correct

let inequality1_tight ~sink_size ~f ~faulty_in_sink =
  sink_size
  >= faulty_in_sink + Cup.Slice_builder.sink_threshold ~sink_size ~f
