lib/sim/engine.mli: Delay Format Graphkit Pid
