open Graphkit

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_roundtrip_fig1 () =
  match Parse.of_string (Parse.to_string Builtin.fig1) with
  | Ok g ->
      Alcotest.(check bool) "roundtrip identity" true
        (Digraph.equal g Builtin.fig1)
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

let test_comments_and_blanks () =
  let text = "# a knowledge graph\n\n1: 2 5 # inline comment\n2: 4\n\n8:\n" in
  match Parse.of_string text with
  | Ok g ->
      Alcotest.check pid_set "succs of 1" (Pid.Set.of_list [ 2; 5 ])
        (Digraph.succs g 1);
      Alcotest.(check bool) "isolated 8 present" true (Digraph.mem_vertex 8 g);
      Alcotest.check pid_set "8 has no succs" Pid.Set.empty (Digraph.succs g 8)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_errors_name_the_line () =
  (match Parse.of_string "1: 2\nnonsense\n" with
  | Error e ->
      Alcotest.(check bool) "line number in error" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Parse.of_string "1: 2 x\n" with
  | Error e ->
      Alcotest.(check bool) "bad successor flagged" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected bad successor error"

let test_of_file_missing () =
  match Parse.of_file "/nonexistent/graph.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file"

let prop_roundtrip_random =
  QCheck.Test.make ~count:100 ~name:"parse roundtrip on random graphs"
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let g = Digraph.of_edges edges in
      match Parse.of_string (Parse.to_string g) with
      | Ok g' -> Digraph.equal g g'
      | Error _ -> false)

let suites =
  [
    ( "parse",
      [
        Alcotest.test_case "fig1 roundtrip" `Quick test_roundtrip_fig1;
        Alcotest.test_case "comments and blanks" `Quick
          test_comments_and_blanks;
        Alcotest.test_case "errors name the line" `Quick
          test_errors_name_the_line;
        Alcotest.test_case "missing file" `Quick test_of_file_missing;
        QCheck_alcotest.to_alcotest prop_roundtrip_random;
      ] );
  ]
