open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let small = Digraph.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ]

let test_basics () =
  Alcotest.(check int) "vertices" 4 (Digraph.n_vertices small);
  Alcotest.(check int) "edges" 4 (Digraph.n_edges small);
  Alcotest.(check bool) "mem_edge" true (Digraph.mem_edge 3 4 small);
  Alcotest.(check bool) "no reverse edge" false (Digraph.mem_edge 4 3 small);
  Alcotest.check pid_set "succs of 3" (set [ 1; 4 ]) (Digraph.succs small 3);
  Alcotest.check pid_set "preds of 1" (set [ 3 ]) (Digraph.preds small 1);
  Alcotest.check pid_set "succs of absent vertex" Pid.Set.empty
    (Digraph.succs small 99)

let test_remove_vertex () =
  let g = Digraph.remove_vertex 3 small in
  Alcotest.(check int) "vertices after removal" 3 (Digraph.n_vertices g);
  Alcotest.(check int) "edges after removal" 1 (Digraph.n_edges g);
  Alcotest.check pid_set "2 lost its successor" Pid.Set.empty
    (Digraph.succs g 2)

let test_subgraph () =
  let g = Digraph.subgraph (set [ 1; 2; 3 ]) small in
  Alcotest.(check int) "induced edges" 3 (Digraph.n_edges g);
  Alcotest.(check bool) "vertex 4 gone" false (Digraph.mem_vertex 4 g)

let test_isolated_vertex () =
  let g = Digraph.add_vertex 9 Digraph.empty in
  Alcotest.(check int) "one vertex" 1 (Digraph.n_vertices g);
  Alcotest.(check int) "no edges" 0 (Digraph.n_edges g)

let test_undirected () =
  let u = Digraph.undirected small in
  Alcotest.(check bool) "reverse edge present" true (Digraph.mem_edge 4 3 u);
  Alcotest.(check int) "edge count doubles (no 2-cycles here)" 8
    (Digraph.n_edges u)

let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* edges =
      list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    return (Digraph.of_edges edges))

let arb_graph = QCheck.make random_graph_gen

let prop_transpose_involutive =
  QCheck.Test.make ~count:200 ~name:"transpose involutive" arb_graph (fun g ->
      Digraph.equal (Digraph.transpose (Digraph.transpose g)) g)

let prop_transpose_preserves_edges =
  QCheck.Test.make ~count:200 ~name:"transpose preserves edge count" arb_graph
    (fun g -> Digraph.n_edges (Digraph.transpose g) = Digraph.n_edges g)

let prop_preds_succs_agree =
  QCheck.Test.make ~count:200 ~name:"preds and succs agree" arb_graph (fun g ->
      Pid.Set.for_all
        (fun i ->
          Pid.Set.for_all (fun j -> Pid.Set.mem i (Digraph.preds g j))
            (Digraph.succs g i))
        (Digraph.vertices g))

let suites =
  [
    ( "digraph",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "remove_vertex" `Quick test_remove_vertex;
        Alcotest.test_case "subgraph" `Quick test_subgraph;
        Alcotest.test_case "isolated vertex" `Quick test_isolated_vertex;
        Alcotest.test_case "undirected" `Quick test_undirected;
        QCheck_alcotest.to_alcotest prop_transpose_involutive;
        QCheck_alcotest.to_alcotest prop_transpose_preserves_edges;
        QCheck_alcotest.to_alcotest prop_preds_succs_agree;
      ] );
  ]
