test/test_scp_unit.ml: Alcotest Ballot Fbqs Fvoting Graphkit List Scp Statement Value
