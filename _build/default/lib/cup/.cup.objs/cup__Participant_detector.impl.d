lib/cup/participant_detector.ml: Digraph Format Graphkit Pid
