(* Fixture: typed comparators and scalar projections. *)
let ok_eq a b = Pid.Set.equal a b
let ok_cmp a b = Pid.Set.compare a b
let ok_scalar n s = n = Pid.Set.cardinal s
let ok_count s = Slice.slice_count s = 0
