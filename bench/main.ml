(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe            -- experiments + microbenches
     dune exec bench/main.exe -- exp     -- experiment tables only
     dune exec bench/main.exe -- micro   -- bechamel microbenches only
                                            (writes BENCH_quorum.json and
                                            BENCH_analysis.json)
     dune exec bench/main.exe -- markdown -- tables as markdown on stdout
     dune exec bench/main.exe -- sweep   -- sequential-vs-parallel sweep
                                            timings (writes
                                            BENCH_sweep.json)
     dune exec bench/main.exe -- regen-experiments
                                         -- rewrite the generated-tables
                                            section of EXPERIMENTS.md
     dune exec bench/main.exe -- check-experiments
                                         -- exit 1 if EXPERIMENTS.md is
                                            out of date (CI guard)
     dune exec bench/main.exe -- check-regress [--tolerance R]
                                         -- re-measure the microbenches
                                            and the sweep sequential
                                            legs; exit 1 if any
                                            committed BENCH_quorum.json,
                                            BENCH_analysis.json or
                                            BENCH_sweep.json subject
                                            slowed down by more than R
                                            (default 0.5, i.e. +50%)

   Every mode accepts a trailing [--jobs N] (default 1; sweep defaults
   to 4): experiment samples are then farmed out to Simkit.Exec — a
   pool of N domains on OCaml 5, N forked worker processes otherwise.
   When --jobs is absent, STELLAR_CUP_JOBS supplies the default (the
   same precedence as every CLI --jobs flag). The tables are
   byte-identical for every N and on either backend.

   One experiment table per paper artifact (figures, algorithms,
   theorems — see DESIGN.md §5), plus Bechamel microbenches for the hot
   kernels every experiment leans on. Microbench results are also
   persisted machine-readably to BENCH_quorum.json so the quorum-kernel
   perf trajectory is tracked across PRs; BENCH_sweep.json tracks the
   wall-clock win of the parallel sweep executor. *)

open Graphkit
open Bechamel
open Toolkit

(* ---- microbench subjects --------------------------------------------- *)

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

(* The seed's tree-set quorum kernel, kept verbatim as the baseline the
   dense bitset path is measured against: per-member [Pid.Set] counting
   with a physical-equality memo over shared member records. *)
let tree_member_ok_cached q =
  let memo = ref [] in
  let inter_count members =
    match List.find_opt (fun (m, _) -> m == members) !memo with
    | Some (_, c) -> c
    | None ->
        let c = Pid.Set.cardinal (Pid.Set.inter members q) in
        memo := (members, c) :: !memo;
        c
  in
  fun sys i ->
    match Fbqs.Quorum.slices_of sys i with
    | Fbqs.Slice.Threshold { members; threshold } ->
        threshold <= Pid.Set.cardinal members
        && inter_count members >= threshold
    | s -> Fbqs.Slice.has_slice_within s q

let tree_is_quorum sys q =
  (not (Pid.Set.is_empty q))
  &&
  let ok = tree_member_ok_cached q sys in
  Pid.Set.for_all (fun i -> ok i) q

let subject_is_quorum_symbolic = "is_quorum/symbolic n=1000"
let subject_is_quorum_tree = "is_quorum/tree-set-baseline n=1000"
let subject_inter_cardinal_dense = "inter-cardinal/dense-bitset n=1000"
let subject_inter_cardinal_tree = "inter-cardinal/tree-set n=1000"

let bench_is_quorum_symbolic =
  let n = 1000 in
  let c = Fbqs.Quorum.Compiled.compile (threshold_system n ((2 * n / 3) + 1)) in
  let q = Pid.Set.of_range 1 ((3 * n / 4) + 1) in
  Test.make ~name:subject_is_quorum_symbolic (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.Compiled.is_quorum c q)))

let bench_is_quorum_tree_baseline =
  let n = 1000 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let q = Pid.Set.of_range 1 ((3 * n / 4) + 1) in
  Test.make ~name:subject_is_quorum_tree (Staged.stage (fun () ->
      ignore (tree_is_quorum sys q)))

let bench_inter_cardinal_dense =
  let n = 1000 in
  let members = Pid.Dense_set.of_range 1 n in
  let q = Pid.Dense_set.of_range 1 ((3 * n / 4) + 1) in
  Test.make ~name:subject_inter_cardinal_dense (Staged.stage (fun () ->
      ignore (Pid.Dense_set.inter_cardinal members q)))

let bench_inter_cardinal_tree =
  let n = 1000 in
  let members = Pid.Set.of_range 1 n in
  let q = Pid.Set.of_range 1 ((3 * n / 4) + 1) in
  Test.make ~name:subject_inter_cardinal_tree (Staged.stage (fun () ->
      ignore (Pid.Set.cardinal (Pid.Set.inter members q))))

let bench_is_quorum_explicit =
  let n = 12 in
  let members = Pid.Set.of_range 1 n in
  let sym = Fbqs.Slice.threshold ~members ~threshold:8 in
  let explicit = Fbqs.Slice.explicit (Fbqs.Slice.enumerate sym) in
  let sys =
    Fbqs.Quorum.system_of_list
      (List.map (fun i -> (i, explicit)) (Pid.Set.elements members))
  in
  let c = Fbqs.Quorum.Compiled.compile sys in
  let q = Pid.Set.of_range 1 9 in
  Test.make ~name:"is_quorum/explicit n=12 (495 slices)"
    (Staged.stage (fun () -> ignore (Fbqs.Quorum.Compiled.is_quorum c q)))

let bench_greatest_quorum =
  let n = 200 in
  let c = Fbqs.Quorum.Compiled.compile (threshold_system n ((2 * n / 3) + 1)) in
  let universe = Pid.Set.of_range 1 n in
  Test.make ~name:"greatest_quorum_within n=200" (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.Compiled.greatest_quorum_within c universe)))

let subject_scc_csr = "scc/csr circulant n=2000"
let subject_scc_tree = "scc/tarjan circulant n=2000"
let subject_reach_csr = "reach/csr circulant n=2000"
let subject_reach_tree = "reach/tree circulant n=2000"
let subject_kosr_csr = "k-osr-check/csr n=14 k=2"
let subject_kosr_tree = "k-osr-check n=14 k=2"

(* The seed tree-set Tarjan: the baseline the compiled CSR kernel is
   measured against on the same graph. *)
let bench_scc =
  let g = Generators.circulant ~n:2000 ~k:3 in
  Test.make ~name:subject_scc_tree (Staged.stage (fun () ->
      ignore (Scc.components_baseline g)))

(* Fresh [Csr.of_graph] each run (deliberately bypassing the handle
   memo), so the subject prices the full compile + array Tarjan and the
   speedup over the tree baseline is algorithmic, not cache warmth. *)
let bench_scc_csr =
  let g = Generators.circulant ~n:2000 ~k:3 in
  Test.make ~name:subject_scc_csr (Staged.stage (fun () ->
      match Csr.of_graph g with
      | Some h -> ignore (Csr.scc_components h)
      | None -> assert false))

(* Reachability through the public API, memoized handle included: this
   is what a sink-oracle query pays after the first analysis of a
   graph. *)
let bench_reach_csr =
  let g = Generators.circulant ~n:2000 ~k:3 in
  Test.make ~name:subject_reach_csr (Staged.stage (fun () ->
      ignore (Traversal.reachable g 0)))

let bench_reach_tree =
  let g = Generators.circulant ~n:2000 ~k:3 in
  Test.make ~name:subject_reach_tree (Staged.stage (fun () ->
      ignore (Traversal.reachable_baseline g 0)))

let bench_disjoint_paths =
  let g = Generators.random_k_osr ~seed:5 ~sink_size:20 ~non_sink:20 ~k:3 () in
  Test.make ~name:"menger/disjoint-paths n=40" (Staged.stage (fun () ->
      ignore (Connectivity.node_disjoint_paths g 39 0)))

(* The full Definition 6 check through the seed algorithms (the
   pre-CSR cost of this subject), and the CSR-backed public entry
   point. [is_k_osr] builds a fresh sink subgraph per run, so the
   handle memo only amortises the base graph, not the per-run work. *)
let bench_kosr_check =
  let g = Generators.random_k_osr ~seed:6 ~sink_size:8 ~non_sink:6 ~k:2 () in
  Test.make ~name:subject_kosr_tree (Staged.stage (fun () ->
      ignore (Properties.is_k_osr_baseline g 2)))

let bench_kosr_csr =
  let g = Generators.random_k_osr ~seed:6 ~sink_size:8 ~non_sink:6 ~k:2 () in
  Test.make ~name:subject_kosr_csr (Staged.stage (fun () ->
      ignore (Properties.is_k_osr g 2)))

let subject_event_queue = "event-queue push+pop x1000"
let subject_event_heap = "event-heap/flat push+pop x1000"

let bench_event_queue =
  Test.make ~name:subject_event_queue (Staged.stage (fun () ->
      let q = Simkit.Event_queue.create () in
      for i = 0 to 999 do
        Simkit.Event_queue.push q ~time:(i * 7919 mod 1000) i
      done;
      let rec drain () =
        match Simkit.Event_queue.pop q with
        | Some _ -> drain ()
        | None -> ()
      in
      drain ()))

(* The engine's flat structure-of-arrays heap on the same workload as
   the generic queue above: the gap between the two subjects is the
   per-event allocation (entry record + payload block) the flat
   representation eliminates. *)
let bench_event_heap =
  Test.make ~name:subject_event_heap (Staged.stage (fun () ->
      let q = Simkit.Event_heap.create () in
      for i = 0 to 999 do
        Simkit.Event_heap.push_deliver q
          ~time:(i * 7919 mod 1000)
          ~src:1 ~dst:2 i
      done;
      let rec drain () = if Simkit.Event_heap.pop q then drain () in
      drain ()))

let bench_v_blocking =
  let n = 1000 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let b = Pid.Set.of_range 1 ((n / 3) + 1) in
  Test.make ~name:"v-blocking/symbolic n=1000" (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.is_v_blocking sys 1 b)))

let bench_sink_oracle =
  let g = Generators.random_k_osr ~seed:7 ~sink_size:30 ~non_sink:30 ~k:3 () in
  Test.make ~name:"sink-oracle/condensation n=60" (Staged.stage (fun () ->
      ignore (Cup.Sink_oracle.get_sink g 0)))

let bench_scp_small_instance =
  Test.make ~name:"scp/4-node-consensus (end-to-end)"
    (Staged.stage (fun () ->
         let sys = threshold_system 4 3 in
         ignore
           (Scp.Runner.run_cfg
              ~cfg:
                (let d = Scp.Runner.default_cfg in
                 { d with run = { d.run with seed = 1 } })
              ~system:sys
              ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
              ~initial_value_of:(fun i -> Scp.Value.of_ints [ i ])
              ~fault_of:(fun _ -> None)
              ())))

let bench_blocking_cascade =
  let n = 200 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let down = Pid.Set.of_range 1 (n / 3) in
  Test.make ~name:"analysis/blocking-cascade n=200" (Staged.stage (fun () ->
      ignore (Fbqs.Analysis.blocking_cascade sys ~down)))

let subject_dset_check = "dset/is_dset n=10"
let subject_dset_enum_baseline = "dset/is_dset-enum-baseline n=10"

(* The seed's dset intersection check, kept as the baseline the pruned
   minimal-quorum path is measured against: enumerate every quorum of
   the deleted system (2^n subset tests) and check all pairs. *)
let enum_baseline_is_dset sys b =
  Fbqs.Dset.quorum_availability_despite sys b
  &&
  let quorums = Fbqs.Quorum.enum_quorums (Fbqs.Dset.delete sys b) in
  List.for_all
    (fun q1 ->
      List.for_all
        (fun q2 -> not (Pid.Set.is_empty (Pid.Set.inter q1 q2)))
        quorums)
    quorums

let bench_dset_check =
  let sys = threshold_system 10 7 in
  let b = Pid.Set.of_range 1 2 in
  Test.make ~name:subject_dset_check (Staged.stage (fun () ->
      ignore (Fbqs.Dset.is_dset sys b)))

let bench_dset_enum_baseline =
  let sys = threshold_system 10 7 in
  let b = Pid.Set.of_range 1 2 in
  Test.make ~name:subject_dset_enum_baseline (Staged.stage (fun () ->
      ignore (enum_baseline_is_dset sys b)))

let subject_minq_bb = "analysis/min-quorums-bb n=10"
let subject_minq_gosper = "analysis/min-quorums-gosper-baseline n=10"

(* The branch-and-bound enumerator against the Gosper sweep it
   replaced, on the same 7-of-10 system (120 minimal quorums). *)
let bench_minq_bb =
  let sys = threshold_system 10 7 in
  Test.make ~name:subject_minq_bb (Staged.stage (fun () ->
      ignore (Fbqs.Enum.minimal_quorums (Fbqs.Enum.prepare sys))))

let bench_minq_gosper =
  let sys = threshold_system 10 7 in
  Test.make ~name:subject_minq_gosper (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.minimal_quorums sys)))

(* A shrunk stellarbeat-like topology (same three-tier shape as the
   committed test/fixtures/live_network.fbas, scaled so one analysis
   fits a bechamel quota): what `fbas analyze` costs per phase at
   beyond-Gosper size. *)
let small_stellarbeat () =
  Fbqs.Topology.stellarbeat_like ~orgs:5 ~validators_per_org:2 ~mid:12
    ~leaves:24 ~seed:2 ()

let subject_minq_stellarbeat = "analysis/min-quorums-bb stellarbeat n=46"
let subject_inter_stellarbeat = "analysis/intersection-bb stellarbeat n=46"
let subject_blocking_stellarbeat = "analysis/blocking-sets-bb stellarbeat n=46"

let bench_analysis_minq_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_minq_stellarbeat
    (Staged.stage (fun () ->
         ignore (Fbqs.Enum.minimal_quorums (Fbqs.Enum.prepare sys))))

let bench_analysis_intersection_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_inter_stellarbeat
    (Staged.stage (fun () -> ignore (Fbqs.Enum.quorum_intersection sys)))

let bench_analysis_blocking_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_blocking_stellarbeat
    (Staged.stage (fun () ->
         ignore (Fbqs.Enum.minimal_blocking_sets (Fbqs.Enum.prepare sys))))

let subject_minq_parallel_stellarbeat =
  "analysis/min-quorums-parallel stellarbeat n=46"

let subject_splitting_stellarbeat =
  "analysis/splitting-sequential stellarbeat n=46"

let subject_splitting_parallel_stellarbeat =
  "analysis/splitting-parallel stellarbeat n=46"

(* The frontier-sharded searches against their own sequential rows on
   the same topology. On the CI 4-core runners the parallel rows run on
   a warm worker pool; on a 1-core machine they collapse to the inline
   path, so the pair also tracks the sharding overhead floor. *)
let bench_analysis_minq_parallel_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_minq_parallel_stellarbeat
    (Staged.stage (fun () ->
         ignore (Fbqs.Enum.minimal_quorums ~jobs:4 (Fbqs.Enum.prepare sys))))

let bench_analysis_splitting_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_splitting_stellarbeat
    (Staged.stage (fun () ->
         ignore
           (Fbqs.Enum.minimal_splitting_sets ~max_size:2
              (Fbqs.Enum.prepare sys))))

let bench_analysis_splitting_parallel_stellarbeat =
  let sys = small_stellarbeat () in
  Test.make ~name:subject_splitting_parallel_stellarbeat
    (Staged.stage (fun () ->
         ignore
           (Fbqs.Enum.minimal_splitting_sets ~max_size:2 ~jobs:4
              (Fbqs.Enum.prepare sys))))

let subject_exec_warm = "exec/map-warm-pool x32"
let subject_exec_cold = "exec/map-cold-spawn x32"

(* The persistent pool against the seed's spawn-per-call behaviour:
   the cold subject tears the pool down before every map, so each
   iteration pays worker startup exactly as every map did before the
   pool was made persistent. The workload is pure arithmetic — the gap
   between the rows is dispatch and spawn cost, nothing else. *)
let exec_spin x =
  let acc = ref x in
  for _ = 1 to 20_000 do
    acc := ((!acc * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !acc

let exec_inputs = List.init 32 Fun.id

let bench_exec_warm =
  Test.make ~name:subject_exec_warm
    (Staged.stage (fun () ->
         ignore (Simkit.Exec.map ~jobs:4 exec_spin exec_inputs)))

let bench_exec_cold =
  Test.make ~name:subject_exec_cold
    (Staged.stage (fun () ->
         Simkit.Exec.Pool.shutdown ();
         ignore (Simkit.Exec.map ~jobs:4 exec_spin exec_inputs)))

let subject_engine_send_notrace = "engine/send-notrace x1000"
let subject_engine_send_alloc = "engine/send-alloc-baseline x1000"

(* One engine run flooding 1000 messages from node 1 to node 2 with no
   trace sink attached. [legacy_alloc] replays the seed engine's
   per-event cost model on top of the tuned engine: a trace field list
   built (and the empty msg-field list appended) before discovering the
   sink was [None], a [Hashtbl.find_opt] to dispatch on the destination
   pid, and a fresh ctx record per delivery. The tuned engine skips all
   three, so the gap between the two subjects is the trace-off hot-path
   win. *)
let engine_flood ~legacy_alloc () =
  let eng =
    Simkit.Engine.create_cfg
      {
        Simkit.Run_config.default with
        delay = Some (Simkit.Delay.synchronous ~delta:1);
        max_time = 1_000_000;
      }
  in
  let legacy_nodes = Hashtbl.create 16 in
  Hashtbl.replace legacy_nodes 1 "sender";
  Hashtbl.replace legacy_nodes 2 "sink";
  let discard x = ignore (Sys.opaque_identity x) in
  let sender =
    {
      Simkit.Engine.idle_behavior with
      on_start =
        (fun ctx ->
          for i = 1 to 1000 do
            if legacy_alloc then
              discard
                ([
                   ("src", Obs.Json.Int 1);
                   ("dst", Obs.Json.Int 2);
                   ("at", Obs.Json.Int i);
                 ]
                @ []);
            Simkit.Engine.send ctx 2 i
          done);
    }
  in
  let sink =
    {
      Simkit.Engine.idle_behavior with
      on_message =
        (fun _ctx ~src payload ->
          if legacy_alloc then begin
            discard (Hashtbl.find_opt legacy_nodes 2);
            discard (ref payload);
            discard
              ([ ("src", Obs.Json.Int src); ("dst", Obs.Json.Int payload) ]
              @ [])
          end);
    }
  in
  Simkit.Engine.add_node eng 1 sender;
  Simkit.Engine.add_node eng 2 sink;
  ignore (Simkit.Engine.run eng)

let bench_engine_send_notrace =
  Test.make ~name:subject_engine_send_notrace
    (Staged.stage (fun () -> engine_flood ~legacy_alloc:false ()))

let bench_engine_send_alloc_baseline =
  Test.make ~name:subject_engine_send_alloc
    (Staged.stage (fun () -> engine_flood ~legacy_alloc:true ()))

let bench_parse_roundtrip =
  let g = Generators.random_k_osr ~seed:9 ~sink_size:40 ~non_sink:40 ~k:3 () in
  let text = Parse.to_string g in
  Test.make ~name:"parse/adjacency n=80" (Staged.stage (fun () ->
      ignore (Parse.of_string text)))

(* Built lazily inside [microbenches]: a 50k-vertex graph takes long
   enough to construct that the experiment-only modes must not pay for
   it at module initialisation. The subject doubles as the
   no-stack-overflow smoke test for the iterative array Tarjan. *)
let bench_scc_csr_large () =
  let g = Generators.circulant ~n:50_000 ~k:3 in
  Test.make ~name:"scc/csr circulant n=50000" (Staged.stage (fun () ->
      match Csr.of_graph g with
      | Some h -> ignore (Csr.scc_components h)
      | None -> assert false))

let microbenches () =
  Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
    [
      bench_is_quorum_symbolic;
      bench_is_quorum_tree_baseline;
      bench_inter_cardinal_dense;
      bench_inter_cardinal_tree;
      bench_is_quorum_explicit;
      bench_greatest_quorum;
      bench_scc;
      bench_scc_csr;
      bench_scc_csr_large ();
      bench_reach_csr;
      bench_reach_tree;
      bench_disjoint_paths;
      bench_kosr_check;
      bench_kosr_csr;
      bench_event_queue;
      bench_event_heap;
      bench_v_blocking;
      bench_sink_oracle;
      bench_scp_small_instance;
      bench_blocking_cascade;
      bench_dset_check;
      bench_dset_enum_baseline;
      bench_minq_bb;
      bench_minq_gosper;
      bench_analysis_minq_stellarbeat;
      bench_analysis_intersection_stellarbeat;
      bench_analysis_blocking_stellarbeat;
      bench_analysis_minq_parallel_stellarbeat;
      bench_analysis_splitting_stellarbeat;
      bench_analysis_splitting_parallel_stellarbeat;
      bench_exec_warm;
      bench_exec_cold;
      bench_engine_send_notrace;
      bench_engine_send_alloc_baseline;
      bench_parse_roundtrip;
    ]

(* ---- machine-readable bench results ---------------------------------- *)

let bench_json_file = "BENCH_quorum.json"
let analysis_json_file = "BENCH_analysis.json"

(* The analyzer subjects live in their own committed file so the
   analysis-engine perf trajectory is legible on its own;
   [check-regress] covers both files. The pre-existing
   analysis/blocking-cascade subject predates the split and stays in
   BENCH_quorum.json. *)
let analysis_subjects =
  [
    subject_minq_bb;
    subject_minq_gosper;
    subject_minq_stellarbeat;
    subject_inter_stellarbeat;
    subject_blocking_stellarbeat;
    subject_minq_parallel_stellarbeat;
    subject_splitting_stellarbeat;
    subject_splitting_parallel_stellarbeat;
  ]

let strip_group name =
  let prefix = "kernels " in
  if String.length name > String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
  then String.sub name (String.length prefix)
         (String.length name - String.length prefix)
  else name

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The commit the numbers were measured at, so a BENCH_quorum.json in
   isolation still says what it describes. Wall-clock-free: a git SHA
   is repository state, not time, and [check-experiments] does not
   involve this file. *)
let git_sha () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception Unix.Unix_error _ -> "unknown"
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      ignore (Unix.close_process_in ic);
      if String.length line = 40 then line else "unknown"

(* Message/transition counts of one instrumented 4-node SCP run at a
   fixed seed. Unlike the timing rows these are exact and
   deterministic, so diffs in BENCH_quorum.json catch protocol
   behaviour drift, not just performance drift. *)
let scp_run_counters () =
  let metrics = Obs.Metrics.create () in
  let cfg =
    {
      Scp.Runner.default_cfg with
      run = { Simkit.Run_config.default with seed = 1; metrics = Some metrics };
    }
  in
  let sys = threshold_system 4 3 in
  ignore
    (Scp.Runner.run_cfg ~cfg ~system:sys
       ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
       ~initial_value_of:(fun i -> Scp.Value.of_ints [ i ])
       ~fault_of:(fun _ -> None)
       ());
  Obs.Json.to_string (Obs.Metrics.to_json metrics)

(* [rows]: (subject, ns/run) sorted by subject. The comparisons pit the
   dense bitset kernel against the seed's tree-set path on the same
   workload; [speedup] > 1 means the dense kernel is faster. *)
let write_analysis_json rows =
  let find name = List.assoc_opt name rows in
  let comparisons =
    List.filter_map
      (fun (subject, baseline) ->
        match (find subject, find baseline) with
        | Some s, Some b when s > 0. && not (Float.is_nan b) ->
            Some (subject, baseline, b /. s)
        | _ -> None)
      [
        (subject_minq_bb, subject_minq_gosper);
        (subject_minq_parallel_stellarbeat, subject_minq_stellarbeat);
        (subject_splitting_parallel_stellarbeat, subject_splitting_stellarbeat);
      ]
  in
  let oc = open_out analysis_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"stellar-cup/bench-analysis/v1\",\n";
  out "  \"git_sha\": \"%s\",\n" (json_escape (git_sha ()));
  out "  \"unit\": \"ns_per_run\",\n";
  out "  \"subjects\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %.2f}%s\n"
        (json_escape name) ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"comparisons\": [\n";
  List.iteri
    (fun i (subject, baseline, speedup) ->
      out
        "    {\"subject\": \"%s\", \"baseline\": \"%s\", \"speedup\": %.2f}%s\n"
        (json_escape subject) (json_escape baseline) speedup
        (if i = List.length comparisons - 1 then "" else ","))
    comparisons;
  out "  ]\n";
  out "}\n";
  close_out oc;
  List.iter
    (fun (subject, baseline, speedup) ->
      Format.printf "speedup: %s is %.1fx the %s path@." subject speedup
        baseline)
    comparisons;
  Format.printf "results written to %s@." analysis_json_file

let write_bench_json all_rows =
  let analysis_rows, rows =
    List.partition (fun (name, _) -> List.mem name analysis_subjects) all_rows
  in
  let find name = List.assoc_opt name rows in
  let comparisons =
    List.filter_map
      (fun (subject, baseline) ->
        match (find subject, find baseline) with
        | Some s, Some b when s > 0. && not (Float.is_nan b) ->
            Some (subject, baseline, b /. s)
        | _ -> None)
      [
        (subject_is_quorum_symbolic, subject_is_quorum_tree);
        (subject_inter_cardinal_dense, subject_inter_cardinal_tree);
        (subject_dset_check, subject_dset_enum_baseline);
        (subject_engine_send_notrace, subject_engine_send_alloc);
        (subject_exec_warm, subject_exec_cold);
        (subject_event_heap, subject_event_queue);
        (subject_scc_csr, subject_scc_tree);
        (subject_reach_csr, subject_reach_tree);
        (subject_kosr_csr, subject_kosr_tree);
      ]
  in
  let oc = open_out bench_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"stellar-cup/bench-quorum/v1\",\n";
  out "  \"git_sha\": \"%s\",\n" (json_escape (git_sha ()));
  out "  \"unit\": \"ns_per_run\",\n";
  out "  \"subjects\": [\n";
  List.iteri
    (fun i (name, ns) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %.2f}%s\n"
        (json_escape name) ns
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"comparisons\": [\n";
  List.iteri
    (fun i (subject, baseline, speedup) ->
      out
        "    {\"subject\": \"%s\", \"baseline\": \"%s\", \"speedup\": %.2f}%s\n"
        (json_escape subject) (json_escape baseline) speedup
        (if i = List.length comparisons - 1 then "" else ","))
    comparisons;
  out "  ],\n";
  out "  \"counters\": {\"scp_4node_seed1\": %s}\n" (scp_run_counters ());
  out "}\n";
  close_out oc;
  List.iter
    (fun (subject, baseline, speedup) ->
      Format.printf "speedup: %s is %.1fx the %s path@." subject speedup
        baseline)
    comparisons;
  Format.printf "results written to %s@." bench_json_file;
  write_analysis_json analysis_rows

let measure_rows () =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] (microbenches ()) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  (* lint: allow D1 — rows are List.sorted below before rendering *)
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (strip_group name, ns) :: !rows)
    results;
  List.sort compare !rows

let human_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let run_microbenches () =
  let rows = measure_rows () in
  Format.printf "== Microbenches (Bechamel, monotonic clock) ==@.";
  Format.printf "%-45s  %s@." "kernel" "time/run";
  Format.printf "%s@." (String.make 65 '-');
  List.iter
    (fun (name, ns) -> Format.printf "%-45s  %s@." name (human_ns ns))
    rows;
  Format.printf "@.";
  write_bench_json rows

(* ---- experiment tables ----------------------------------------------- *)

let experiments_markdown ~jobs () =
  let tables = Stellar_cup.Experiments.all ~seed:1 ~jobs () in
  String.concat "" (List.map Stellar_cup.Report.to_markdown tables)

let run_experiments ~markdown ~jobs =
  if markdown then print_string (experiments_markdown ~jobs ())
  else
    List.iter Stellar_cup.Report.print
      (Stellar_cup.Experiments.all ~seed:1 ~jobs ())

(* EXPERIMENTS.md is prose down to this marker line, generated tables
   below it; regeneration only touches the generated part, and the
   output is deterministic (seeded experiments, no wall-clock values),
   so CI can demand the committed file be reproducible byte-for-byte. *)
let experiments_file = "EXPERIMENTS.md"

let experiments_marker = "# Generated tables"

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf
        "error: %s (run from the repository root, where %s lives)\n" msg
        experiments_file;
      exit 2
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let split_at_marker contents =
  let marker = experiments_marker ^ "\n" in
  let rec find i =
    if i + String.length marker > String.length contents then None
    else if
      String.sub contents i (String.length marker) = marker
      && (i = 0 || contents.[i - 1] = '\n')
    then Some (i + String.length marker)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some stop ->
      Some
        ( String.sub contents 0 stop,
          String.sub contents stop (String.length contents - stop) )

let regen_experiments ~jobs =
  match split_at_marker (read_file experiments_file) with
  | None ->
      Printf.eprintf "error: no '%s' marker in %s\n" experiments_marker
        experiments_file;
      exit 2
  | Some (head, _) ->
      let oc = open_out_bin experiments_file in
      output_string oc head;
      output_string oc "\n";
      output_string oc (experiments_markdown ~jobs ());
      close_out oc;
      Printf.printf "%s regenerated\n" experiments_file

let check_experiments ~jobs =
  match split_at_marker (read_file experiments_file) with
  | None ->
      Printf.eprintf "error: no '%s' marker in %s\n" experiments_marker
        experiments_file;
      exit 2
  | Some (_, committed) ->
      let expected = "\n" ^ experiments_markdown ~jobs () in
      if String.equal committed expected then
        Printf.printf "%s is up to date\n" experiments_file
      else begin
        Printf.eprintf
          "error: %s is stale — run `dune exec bench/main.exe -- \
           regen-experiments` and commit the result\n"
          experiments_file;
        exit 1
      end

(* ---- sweep workloads -------------------------------------------------- *)

let sweep_json_file = "BENCH_sweep.json"

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Larger-than-default sample counts so each experiment runs long enough
   to amortise per-dispatch executor overhead. Every entry is rerun
   sequentially and in parallel and the two rendered tables are
   byte-compared — a sweep run doubles as a determinism gate. *)
let sweep_experiments =
  [
    ( "e3",
      12,
      fun ~jobs ->
        Stellar_cup.Experiments.e3_theorem2_violation ~seed:1 ~samples:12
          ~jobs () );
    ( "e5",
      12,
      fun ~jobs ->
        Stellar_cup.Experiments.e5_availability ~seed:3 ~samples:12 ~jobs () );
    ( "e6",
      8,
      fun ~jobs ->
        Stellar_cup.Experiments.e6_sink_detector ~seed:4 ~samples:8 ~jobs () );
    ( "e8",
      8,
      fun ~jobs ->
        Stellar_cup.Experiments.e8_pipelines ~seed:6 ~samples:8 ~jobs () );
  ]

(* ---- bench regression gate ------------------------------------------- *)

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some (i + nl)
    else go (i + 1)
  in
  go 0

(* Parses named rows back out of our own writers' output (one object
   per line, both keys present): a hand-rolled scan keeps the harness
   free of a JSON dependency. [value_key] selects the numeric field —
   ["ns_per_run"] for the microbench files, ["sequential_s"] for the
   sweep file. *)
let parse_named_rows ~value_key contents =
  let value_needle = Printf.sprintf "\"%s\": " value_key in
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         match find_sub line "\"name\": \"" with
         | None -> None
         | Some ns -> (
             match String.index_from_opt line ns '"' with
             | None -> None
             | Some ne -> (
                 let name = String.sub line ns (ne - ns) in
                 match find_sub line value_needle with
                 | None -> None
                 | Some vs -> (
                     let ve = ref vs in
                     while
                       !ve < String.length line
                       &&
                       match line.[!ve] with
                       | '0' .. '9' | '.' | '-' | '+' | 'e' -> true
                       | _ -> false
                     do
                       incr ve
                     done;
                     match float_of_string_opt (String.sub line vs (!ve - vs)) with
                     | Some v -> Some (name, v)
                     | None -> None))))

(* Re-measures the microbenches (and the sweep experiments' sequential
   legs) and compares each subject against the committed
   BENCH_quorum.json / BENCH_analysis.json / BENCH_sweep.json, failing
   on any slowdown beyond the tolerance. The committed files are read
   before anything is measured and are never rewritten here, so the
   gate can run in CI ahead of the [micro] and [sweep] modes that
   regenerate them. *)
let check_regress ~tolerance =
  let rows_of ~value_key file =
    match open_in_bin file with
    | exception Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        let subjects = parse_named_rows ~value_key s in
        if subjects = [] then begin
          Printf.eprintf "error: no subjects found in %s\n" file;
          exit 2
        end;
        subjects
  in
  let subjects_of = rows_of ~value_key:"ns_per_run" in
  let committed =
    subjects_of bench_json_file @ subjects_of analysis_json_file
  in
  let sweep_committed = rows_of ~value_key:"sequential_s" sweep_json_file in
  let regressions = ref 0 in
  (* The sweep file tracks wall-clock seconds, not ns/run: re-run each
     committed experiment's sequential leg once and hold it to the same
     tolerance. The parallel columns are runner-shape-dependent (core
     count), so only the sequential baseline is gated here — the
     speedup floor lives in the CI sweep-gate job. Measured *before*
     the Bechamel phase: re-measuring dozens of microbench subjects
     leaves a bloated major heap that slows the sweep legs several
     times over. *)
  Format.printf "== check-regress: sweep sequential legs vs %s ==@."
    sweep_json_file;
  List.iter
    (fun (name, old_s) ->
      match
        List.find_opt (fun (n, _, _) -> String.equal n name) sweep_experiments
      with
      | None ->
          Format.printf "?       %-45s committed but not a known sweep \
                         experiment@."
            name
      | Some _ when old_s <= 0. ->
          Format.printf "?       %-45s not comparable@." name
      | Some (_, _, run) ->
          let _, s = timed (fun () -> run ~jobs:1) in
          let ratio = s /. old_s in
          let ok = ratio <= 1. +. tolerance in
          if not ok then incr regressions;
          Format.printf "%-7s %-45s %.2fs -> %.2fs (%.2fx)@."
            (if ok then "ok" else "REGRESS")
            name old_s s ratio)
    sweep_committed;
  Format.printf
    "== check-regress: tolerance +%.0f%% over committed %s + %s ==@."
    (tolerance *. 100.) bench_json_file analysis_json_file;
  let rows = measure_rows () in
  List.iter
    (fun (name, old_ns) ->
      match List.assoc_opt name rows with
      | None ->
          Format.printf "?       %-45s committed but not measured@." name
      | Some ns when Float.is_nan ns || Float.is_nan old_ns || old_ns <= 0. ->
          Format.printf "?       %-45s not comparable@." name
      | Some ns ->
          let ratio = ns /. old_ns in
          let ok = ratio <= 1. +. tolerance in
          if not ok then incr regressions;
          Format.printf "%-7s %-45s %s -> %s (%.2fx)@."
            (if ok then "ok" else "REGRESS")
            name (human_ns old_ns) (human_ns ns) ratio)
    committed;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name committed) then
        Format.printf "new     %-45s no committed number yet@." name)
    rows;
  if !regressions > 0 then begin
    Printf.eprintf
      "error: %d subject(s) slowed down beyond +%.0f%% — investigate, or \
       rerun `dune exec bench/main.exe -- micro` and commit the refreshed \
       %s\n"
      !regressions (tolerance *. 100.) bench_json_file;
    exit 1
  end
  else Format.printf "no regressions beyond +%.0f%%@." (tolerance *. 100.)

(* ---- sequential-vs-parallel sweep timings ---------------------------- *)

let run_sweep ~jobs =
  Format.printf "== Sweep executor: sequential vs --jobs %d ==@." jobs;
  let rows =
    List.map
      (fun (name, samples, run) ->
        let seq, seq_s = timed (fun () -> run ~jobs:1) in
        let par, par_s = timed (fun () -> run ~jobs) in
        if
          not
            (String.equal
               (Stellar_cup.Report.to_markdown seq)
               (Stellar_cup.Report.to_markdown par))
        then begin
          Printf.eprintf
            "error: %s with --jobs %d diverges from the sequential run\n" name
            jobs;
          exit 1
        end;
        Format.printf
          "%-4s samples=%-3d seq %6.2fs  jobs=%d %6.2fs  speedup %.2fx@." name
          samples seq_s jobs par_s (seq_s /. par_s);
        (name, samples, seq_s, par_s))
      sweep_experiments
  in
  let oc = open_out sweep_json_file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"stellar-cup/bench-sweep/v1\",\n";
  out "  \"git_sha\": \"%s\",\n" (json_escape (git_sha ()));
  out "  \"jobs\": %d,\n" jobs;
  (* [n = 2] stands for "any parallel-sized input": the backend choice
     only depends on whether jobs and n both exceed 1. *)
  out "  \"backend\": \"%s\",\n"
    (json_escape (Simkit.Exec.backend_name (Simkit.Exec.backend ~jobs 2)));
  out "  \"unit\": \"seconds_wall_clock\",\n";
  out "  \"experiments\": [\n";
  List.iteri
    (fun i (name, samples, seq_s, par_s) ->
      out
        "    {\"name\": \"%s\", \"samples\": %d, \"sequential_s\": %.3f, \
         \"parallel_s\": %.3f, \"speedup\": %.2f, \"identical\": true}%s\n"
        (json_escape name) samples seq_s par_s (seq_s /. par_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n";
  out "}\n";
  close_out oc;
  Format.printf "results written to %s@." sweep_json_file

(* ---- main ------------------------------------------------------------ *)

let () =
  let jobs = ref None in
  let tolerance = ref 0.5 in
  let positional = ref [] in
  let i = ref 1 in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
    | "--jobs" when !i + 1 < Array.length Sys.argv ->
        incr i;
        jobs :=
          Some
            (try int_of_string Sys.argv.(!i)
             with Failure _ ->
               Printf.eprintf "error: --jobs expects an integer\n";
               exit 2)
    | "--tolerance" when !i + 1 < Array.length Sys.argv ->
        incr i;
        tolerance :=
          (match float_of_string_opt Sys.argv.(!i) with
          | Some t when t >= 0. -> t
          | _ ->
              Printf.eprintf "error: --tolerance expects a float >= 0\n";
              exit 2)
    | a -> positional := a :: !positional);
    incr i
  done;
  let mode = match List.rev !positional with m :: _ -> m | [] -> "all" in
  (* Precedence mirrors the CLI: an explicit --jobs wins, then
     STELLAR_CUP_JOBS, then the mode's own default. *)
  let jobs_or default =
    let default =
      Option.value ~default (Simkit.Exec.jobs_from_env ())
    in
    max 1 (Option.value ~default !jobs)
  in
  match mode with
  | "exp" -> run_experiments ~markdown:false ~jobs:(jobs_or 1)
  | "markdown" -> run_experiments ~markdown:true ~jobs:(jobs_or 1)
  | "regen-experiments" -> regen_experiments ~jobs:(jobs_or 1)
  | "check-experiments" -> check_experiments ~jobs:(jobs_or 1)
  | "micro" -> run_microbenches ()
  | "check-regress" -> check_regress ~tolerance:!tolerance
  | "sweep" -> run_sweep ~jobs:(jobs_or 4)
  | _ ->
      run_experiments ~markdown:false ~jobs:(jobs_or 1);
      run_microbenches ()
