lib/graph/metrics.ml: Condensation Digraph Format List Option Pid Scc Traversal
