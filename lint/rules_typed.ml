(* Typedtree rule families (the --cmt phase).

   R1 — parallel capture safety, closure form: a literal closure in
   the job position of Simkit.Exec.map / Simkit.Pool.map /
   Simkit.Pool.map_chunked must not capture a variable of mutable
   type (ref, Hashtbl.t, Buffer.t, Bytes.t, arrays, queues/stacks,
   records with mutable fields — through type aliases) defined
   outside the closure. Core.Cache.t captures are exempt: the
   executor arms the cache's critical-section protector before its
   first spawn, so cache traffic is the sanctioned way to share
   state across job boundaries.

   R2 — parallel capture safety, module form: toplevel mutable state
   in any unit reachable (via the call graph) from a job function is
   flagged at the binding site, with the job site and witness chain
   in the message. Core.Cache.t values are exempt for the same
   reason.

   P1 — determinism taint: starting from the D2 entropy sources
   (Unix.gettimeofday / Unix.time / Sys.time, Random.self_init,
   Random.State.make_self_init) plus Hashtbl.hash, taint propagates
   backward through the call graph; any tainted value exported from a
   lib/**.mli is reported at its definition site with the full call
   chain. D2 bans the direct mention; P1 is what catches a source
   laundered through helpers an .mli happily exports.

   T1 — typed polymorphic comparison: any occurrence of (=) / (<>) /
   compare / Hashtbl.hash whose instantiated type takes a
   Set/Map/Slice value (resolved through aliases, so partial
   applications and [type key = Pid.Set.t] disguises are caught) is
   flagged. T1 supersedes the syntactic D3 head heuristic; an
   existing [allow D3] keeps waiving the site. *)

let exec_entry comps =
  match comps with
  | [ "Simkit"; "Exec"; "map" ]
  | [ "Simkit"; "Pool"; "map" ]
  | [ "Simkit"; "Pool"; "map_chunked" ] ->
      true
  | _ -> false

let entropy_seed comps =
  match comps with
  | [ "Unix"; "gettimeofday" ]
  | [ "Unix"; "time" ]
  | [ "Sys"; "time" ]
  | [ "Random"; "self_init" ]
  | [ "Random"; "make_self_init" ]
  | [ "Random"; "State"; "make_self_init" ]
  | [ "Hashtbl"; "hash" ] ->
      true
  | _ -> false

let cache_type comps = comps = [ "Core"; "Cache"; "t" ]

let builtin_mutable comps =
  match comps with
  | [ "ref" ]
  | [ "array" ]
  | [ "bytes" ]
  | [ "Bytes"; "t" ]
  | [ "Hashtbl"; "t" ]
  | [ "Buffer"; "t" ]
  | [ "Queue"; "t" ]
  | [ "Stack"; "t" ]
  | [ "Atomic"; "t" ] ->
      true
  | _ -> false

(* The raw (un-canonicalized) path must pin the operator to Stdlib: a
   module's own [compare] is a bare Pident and must not match. *)
let poly_compare p =
  match Loader.raw_comps p with
  | [ "Stdlib"; ("=" | "<>" | "compare") ] -> true
  | _ -> Loader.path_comps p = [ "Hashtbl"; "hash" ]

let container_module c =
  String.equal c "Set" || String.equal c "Map" || String.equal c "Slice"

(* The container type itself ([Pid.Set.t], [Slice.t]), not its element
   or key types: [Pid.Set.elt] is a plain pid and compares fine. *)
let sensitive_head comps =
  match List.rev comps with
  | "t" :: rest -> List.exists container_module rest
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Type declaration tables                                            *)
(* ------------------------------------------------------------------ *)

(* Everything the type rules need to see through a Tconstr: whether a
   named type is a record with mutable fields (directly or through
   its field types), and what a manifest alias expands to. Built from
   the loaded units' own Tstr_type items — no Env reconstruction, so
   types declared outside the cmt set (stdlib, C stubs) fall back to
   the builtin list above. *)
type decls = {
  records : (string, Types.label_declaration list) Hashtbl.t;
  has_mutable_field : (string, bool) Hashtbl.t;
  aliases : (string, Types.type_expr) Hashtbl.t;
}

let decl_tables (loaded : Loader.t) =
  let records = Hashtbl.create 64 in
  let has_mutable_field = Hashtbl.create 64 in
  let aliases = Hashtbl.create 64 in
  List.iter
    (fun (u : Loader.unit_info) ->
      List.iter
        (fun (item : Typedtree.structure_item) ->
          match item.str_desc with
          | Typedtree.Tstr_type (_, decls) ->
              List.iter
                (fun (d : Typedtree.type_declaration) ->
                  let name =
                    String.concat "."
                      (u.mod_comps @ [ Ident.name d.typ_id ])
                  in
                  (match d.typ_type.Types.type_kind with
                  | Types.Type_record (lds, _) ->
                      Hashtbl.replace records name lds;
                      if
                        List.exists
                          (fun (ld : Types.label_declaration) ->
                            ld.ld_mutable = Asttypes.Mutable)
                          lds
                      then Hashtbl.replace has_mutable_field name true
                  | _ -> ());
                  match d.typ_type.Types.type_manifest with
                  | Some ty -> Hashtbl.replace aliases name ty
                  | None -> ())
                decls
          | _ -> ())
        u.structure.str_items)
    loaded.units;
  { records; has_mutable_field; aliases }

(* Look a canonical component list up in a decl table, trying the
   unqualified spelling against the current unit first (within its
   own unit a type is a bare Pident). *)
let decl_find tbl ~mod_comps comps =
  let joined = String.concat "." comps in
  match Hashtbl.find_opt tbl joined with
  | Some v -> Some v
  | None -> (
      match comps with
      | [ _ ] ->
          Hashtbl.find_opt tbl (String.concat "." (mod_comps @ comps))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Type predicates                                                    *)
(* ------------------------------------------------------------------ *)

let max_depth = 8

(* Is [ty] (hereditarily) shared-mutable state? Follows aliases and
   recurses through tuples, type arguments and record fields, with a
   visited set against recursive declarations. Core.Cache.t is
   treated as immutable: its mutations run under the protector the
   executor arms. *)
let is_mutable_type decls ~mod_comps ty =
  let visiting = Hashtbl.create 8 in
  let rec go depth ty =
    if depth > max_depth then false
    else
      match Types.get_desc ty with
      | Types.Ttuple tys -> List.exists (go (depth + 1)) tys
      | Types.Tconstr (p, args, _) -> (
          let comps = Loader.path_comps p in
          let joined = String.concat "." comps in
          if cache_type comps then false
          else if builtin_mutable comps then true
          else if Hashtbl.mem visiting joined then false
          else begin
            Hashtbl.add visiting joined ();
            let here =
              (match decl_find decls.has_mutable_field ~mod_comps comps with
              | Some b -> b
              | None -> false)
              || (match decl_find decls.records ~mod_comps comps with
                 | Some lds ->
                     List.exists
                       (fun (ld : Types.label_declaration) ->
                         go (depth + 1) ld.Types.ld_type)
                       lds
                 | None -> false)
              ||
              match decl_find decls.aliases ~mod_comps comps with
              | Some manifest -> go (depth + 1) manifest
              | None -> false
            in
            Hashtbl.remove visiting joined;
            here || List.exists (go (depth + 1)) args
          end)
      | _ -> false
  in
  go 0 ty

(* Does [ty] mention a Set/Map/Slice container (through aliases,
   tuples and type arguments)? The T1 sensitivity test. *)
let is_sensitive_type decls ~mod_comps ty =
  let visiting = Hashtbl.create 8 in
  let rec go depth ty =
    if depth > max_depth then false
    else
      match Types.get_desc ty with
      | Types.Ttuple tys -> List.exists (go (depth + 1)) tys
      | Types.Tconstr (p, args, _) -> (
          let comps = Loader.path_comps p in
          let joined = String.concat "." comps in
          if sensitive_head comps then true
          else if Hashtbl.mem visiting joined then false
          else begin
            Hashtbl.add visiting joined ();
            let here =
              match decl_find decls.aliases ~mod_comps comps with
              | Some manifest -> go (depth + 1) manifest
              | None -> false
            in
            Hashtbl.remove visiting joined;
            here || List.exists (go (depth + 1)) args
          end)
      | _ -> false
  in
  go 0 ty

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

let loc_pos (loc : Location.t) =
  let p = loc.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ------------------------------------------------------------------ *)
(* R1: free mutable captures of job closures                          *)
(* ------------------------------------------------------------------ *)

(* Idents bound anywhere inside [expr] (function parameters, lets,
   match cases). Loop indices of Texp_for are not collected — they
   are ints, which never satisfy the mutability test, so missing
   their binding cannot create a false positive. *)
let bound_idents expr =
  let bound = Hashtbl.create 32 in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun it p ->
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (Typedtree.pat_bound_idents p);
    Tast_iterator.default_iterator.pat it p
  in
  let it = { Tast_iterator.default_iterator with pat } in
  it.expr it expr;
  bound

(* Free variables of [expr]: Pident references not bound inside it,
   with their value descriptions, first occurrence each. *)
let free_vars expr =
  let bound = bound_idents expr in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let e_iter (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, vd) ->
        let key = Ident.unique_name id in
        if (not (Hashtbl.mem bound key)) && not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          acc := (id, vd, e.exp_loc) :: !acc
        end
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = e_iter } in
  it.expr it expr;
  List.rev !acc

(* The job argument of an executor-entry application: the first
   positional (Nolabel) argument — [f] in [Exec.map ~jobs f xs]. *)
let job_argument args =
  List.find_map
    (fun (label, arg) ->
      match (label, arg) with
      | Asttypes.Nolabel, Some e -> Some e
      | _ -> None)
    args

(* Every executor-entry application site in [expr]:
   (site location, job argument expression). *)
let exec_sites structure =
  let acc = ref [] in
  let e_iter (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.exp_desc with
    | Typedtree.Texp_apply (head, args) -> (
        match head.exp_desc with
        | Typedtree.Texp_ident (p, _, _) when exec_entry (Loader.path_comps p)
          -> (
            match job_argument args with
            | Some job ->
                acc :=
                  (head.exp_loc, String.concat "." (Loader.path_comps p), job)
                  :: !acc
            | None -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr = e_iter } in
  it.structure it structure;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Rule driver                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(lib_prefix = "lib/") (loaded : Loader.t) =
  let decls = decl_tables loaded in
  let graph = Callgraph.build loaded in
  let findings = ref [] in
  let add ~loc ~rule ~message ~chain =
    let file, line, col = loc_pos loc in
    findings :=
      { (Lint_core.mk ~file ~line ~col ~rule ~message) with chain }
      :: !findings
  in

  (* ---- R1 + job-site collection (for R2) ---- *)
  let job_roots = ref [] in
  (* (site "file:line", canonical start names) *)
  List.iter
    (fun (u : Loader.unit_info) ->
      let mod_comps = u.mod_comps in
      let locals =
        (* Canonical names of this unit's toplevel bindings, for
           resolving bare-Pident job references and closure refs. *)
        Hashtbl.create 32
      in
      List.iter
        (fun n -> Hashtbl.replace locals n.Callgraph.name ())
        (Callgraph.unit_nodes graph u.modname);
      let resolve_ref p =
        match p with
        | Path.Pident id ->
            let name =
              String.concat "." (mod_comps @ [ Ident.name id ])
            in
            if Hashtbl.mem locals name then Some name else None
        | _ -> (
            match Loader.path_comps p with
            | [] -> None
            | comps -> Some (String.concat "." comps))
      in
      List.iter
        (fun (site_loc, entry, job) ->
          let file, line, _ = loc_pos site_loc in
          let site = Printf.sprintf "%s:%d" file line in
          (* Start names for R2: every identifier the job expression
             mentions (its body for a literal closure, the function
             itself for a named job). *)
          let starts =
            List.filter_map resolve_ref (Callgraph.references job)
          in
          job_roots := (site, starts) :: !job_roots;
          match job.Typedtree.exp_desc with
          | Typedtree.Texp_function _ ->
              List.iter
                (fun (id, (vd : Types.value_description), loc) ->
                  if is_mutable_type decls ~mod_comps vd.val_type then
                    add ~loc ~rule:"R1"
                      ~message:
                        (Printf.sprintf
                           "job closure passed to %s captures mutable state \
                            %s : %s defined outside the closure; jobs must \
                            not share unprotected state — route it through \
                            Core.Cache or add (* lint: allow R1 — reason *)"
                           entry (Ident.name id)
                           (type_to_string vd.val_type))
                      ~chain:[])
                (free_vars job)
          | _ -> ())
        (exec_sites u.structure))
    loaded.units;

  (* ---- R2: toplevel mutable state in units reachable from jobs ---- *)
  let flagged_bindings = Hashtbl.create 16 in
  List.iter
    (fun (site, starts) ->
      let reached = Callgraph.reachable graph starts in
      (* Units touched by this job; iteration is name-sorted so the
         witness chain recorded per unit is deterministic. *)
      let touched = Hashtbl.create 16 in
      List.iter
        (fun (name, chain) ->
          match Callgraph.find graph name with
          | Some node ->
              let unit_src = node.Callgraph.source in
              if not (Hashtbl.mem touched unit_src) then
                Hashtbl.add touched unit_src chain
          | None -> ())
        (List.sort compare
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reached []));
      List.iter
        (fun (u : Loader.unit_info) ->
          match Hashtbl.find_opt touched u.source with
          | None -> ()
          | Some chain ->
              List.iter
                (fun (item : Typedtree.structure_item) ->
                  match item.str_desc with
                  | Typedtree.Tstr_value (_, vbs) ->
                      List.iter
                        (fun (vb : Typedtree.value_binding) ->
                          List.iter
                            (fun (id, (idloc : string Location.loc), ty) ->
                              let key =
                                u.source ^ "." ^ Ident.name id
                              in
                              if
                                is_mutable_type decls ~mod_comps:u.mod_comps
                                  ty
                                && not (Hashtbl.mem flagged_bindings key)
                              then begin
                                Hashtbl.add flagged_bindings key ();
                                add ~loc:idloc.loc ~rule:"R2"
                                  ~message:
                                    (Printf.sprintf
                                       "toplevel mutable state %s : %s is \
                                        reachable from the parallel job at \
                                        %s; jobs must not share unprotected \
                                        state — route it through Core.Cache \
                                        or add (* lint: allow R2 — reason *)"
                                       (Ident.name id) (type_to_string ty)
                                       site)
                                  ~chain
                              end)
                            (Typedtree.pat_bound_idents_full vb.vb_pat))
                        vbs
                  | _ -> ())
                u.structure.str_items)
        loaded.units)
    (List.sort compare (List.rev !job_roots));

  (* ---- P1: determinism taint on lib-exported values ---- *)
  let chains = Callgraph.taint graph ~seed:entropy_seed in
  List.iter
    (fun (u : Loader.unit_info) ->
      if String.starts_with ~prefix:lib_prefix u.source then
        let exported = Loader.exported loaded u.modname in
        List.iter
          (fun (node : Callgraph.node) ->
            let base =
              match String.rindex_opt node.name '.' with
              | Some i ->
                  String.sub node.name (i + 1)
                    (String.length node.name - i - 1)
              | None -> node.name
            in
            if List.mem base exported then
              match Hashtbl.find_opt chains node.name with
              | Some chain ->
                  add
                    ~loc:
                      {
                        Location.loc_start =
                          {
                            Lexing.pos_fname = node.source;
                            pos_lnum = node.line;
                            pos_bol = 0;
                            pos_cnum = 0;
                          };
                        loc_end =
                          {
                            Lexing.pos_fname = node.source;
                            pos_lnum = node.line;
                            pos_bol = 0;
                            pos_cnum = 0;
                          };
                        loc_ghost = false;
                      }
                    ~rule:"P1"
                    ~message:
                      (Printf.sprintf
                         "%s is exported from an .mli but transitively \
                          reaches the nondeterminism source %s; thread \
                          seeds/time through Run_config instead"
                         node.name
                         (List.nth chain (List.length chain - 1)))
                    ~chain
              | None -> ())
          (List.sort
             (fun a b -> String.compare a.Callgraph.name b.Callgraph.name)
             (Callgraph.unit_nodes graph u.modname)))
    loaded.units;

  (* ---- T1: typed polymorphic comparison ---- *)
  List.iter
    (fun (u : Loader.unit_info) ->
      let mod_comps = u.mod_comps in
      let e_iter (it : Tast_iterator.iterator) (e : Typedtree.expression) =
        (match e.exp_desc with
        | Typedtree.Texp_ident (p, _, _) when poly_compare p -> (
            match Types.get_desc e.exp_type with
            | Types.Tarrow (_, arg, _, _)
              when is_sensitive_type decls ~mod_comps arg ->
                add ~loc:e.exp_loc ~rule:"T1"
                  ~message:
                    (Printf.sprintf
                       "polymorphic %s instantiated at %s (a Set/Map/Slice \
                        value); use the typed comparators"
                       (String.concat "."
                          (Loader.path_comps p))
                       (type_to_string arg))
                  ~chain:[]
            | _ -> ())
        | _ -> ());
        Tast_iterator.default_iterator.expr it e
      in
      let it = { Tast_iterator.default_iterator with expr = e_iter } in
      it.structure it u.structure)
    loaded.units;

  List.sort Lint_core.compare_finding !findings
