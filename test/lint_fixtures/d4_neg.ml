(* Fixture: plain IO, no Marshal/Obj. *)
let dump x = print_string (string_of_int x)
