(** Domain-pool backend for {!Exec} (no-domains stub, OCaml 4.14).

    Copied to [exec_domains.mli] by a dune rule when the compiler lacks
    domains; see [exec_domains_native.mli] for the OCaml 5 side. Both
    variants expose exactly this signature. *)

val available : bool
(** [false]: this runtime cannot spawn domains. *)

val locked : (unit -> 'a) -> 'a
(** The identity: no domains, nothing to serialize. *)

val map_chunked :
  chunk:int -> domains:int -> (int -> unit) -> int -> (int * string) list
(** @raise Invalid_argument always — {!Exec} never dispatches here
    when [available] is [false]. *)

val shutdown : unit -> unit
(** No-op: there is never a pool to tear down. *)

val pool_size : unit -> int
(** Always [0]. *)

val pool_peak : unit -> int
(** Always [0]. *)

val pool_batches : unit -> int
(** Always [0]. *)

type task
(** Inert: the thunk already ran inside {!detach}. *)

val detach : (unit -> unit) -> task
(** Runs [f] inline before returning — no concurrency on 4.14. *)

val join_task : task -> unit
(** No-op. *)
