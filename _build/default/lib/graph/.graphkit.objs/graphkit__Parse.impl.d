lib/graph/parse.ml: Buffer Digraph Fun List Option Pid Printf String
