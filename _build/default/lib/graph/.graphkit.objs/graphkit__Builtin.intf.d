lib/graph/builtin.mli: Digraph Pid
