lib/scp/ledger.ml: Format Graphkit List Node Option Pid Runner Value
