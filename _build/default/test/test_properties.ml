open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_fig1_structure () =
  (* Fig. 1: participants 5-8 form the sink component. *)
  Alcotest.check pid_set "fig1 sink" Builtin.fig1_sink
    (Properties.sink_of_exn Builtin.fig1);
  Alcotest.(check bool) "fig1 is 1-OSR" true (Properties.is_k_osr Builtin.fig1 1)

let test_fig2_structure () =
  Alcotest.check pid_set "fig2 sink" Builtin.fig2_sink
    (Properties.sink_of_exn Builtin.fig2);
  (* The paper: "This graph represents a 3-OSR PD". *)
  Alcotest.(check bool) "fig2 is 3-OSR" true
    (Properties.is_k_osr Builtin.fig2 3)

let test_fig2_byzantine_safe_any_single_fault () =
  (* "whether the faulty process is a sink member or not" — the graph
     provides enough knowledge to solve consensus with f = 1, i.e. it is
     Byzantine-safe for every possible singleton F. *)
  Pid.Set.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "byzantine-safe for F = {%d}" v)
        true
        (Properties.is_byzantine_safe Builtin.fig2 ~f:1
           ~faulty:(Pid.Set.singleton v));
      Alcotest.(check bool)
        (Printf.sprintf "solvable for F = {%d}" v)
        true
        (Properties.solvable Builtin.fig2 ~f:1 ~faulty:(Pid.Set.singleton v)))
    (Digraph.vertices Builtin.fig2)

let test_multi_sink_rejected () =
  let g = Digraph.of_edges [ (1, 2); (1, 3) ] in
  (match Properties.check_k_osr g 1 with
  | Error (Properties.Sink_count 2) -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %a" Properties.pp_osr_failure e
  | Ok _ -> Alcotest.fail "two sinks should fail");
  Alcotest.(check bool) "not 1-OSR" false (Properties.is_k_osr g 1)

let test_disconnected_rejected () =
  let g = Digraph.of_edges [ (1, 2); (3, 4) ] in
  match Properties.check_k_osr g 1 with
  | Error Properties.Not_connected -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Properties.pp_osr_failure e
  | Ok _ -> Alcotest.fail "disconnected graph should fail"

let test_weak_sink_rejected () =
  (* Sink is a 2-cycle (1-strongly connected); asking for k = 2 fails. *)
  let g = Digraph.of_edges [ (3, 1); (3, 2); (1, 2); (2, 1) ] in
  match Properties.check_k_osr g 2 with
  | Error (Properties.Sink_not_k_connected 1) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Properties.pp_osr_failure e
  | Ok _ -> Alcotest.fail "1-connected sink should fail k=2"

let test_non_sink_path_deficit () =
  (* Non-sink vertex 4 has a single path into a 2-connected sink. *)
  let sink =
    Digraph.of_edges [ (1, 2); (2, 3); (3, 1); (2, 1); (3, 2); (1, 3) ]
  in
  let g = Digraph.add_edge 4 1 sink in
  match Properties.check_k_osr g 2 with
  | Error (Properties.Non_sink_paths (4, _, 1)) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Properties.pp_osr_failure e
  | Ok _ -> Alcotest.fail "path-deficient non-sink vertex should fail"

let test_solvable_needs_correct_sink_majority () =
  (* fig2 with f = 1 but all of {1,2,3} faulty is far beyond the
     threshold; with f = 3 the sink retains only 1 correct member,
     violating the 2f+1 requirement. *)
  Alcotest.(check bool) "too many sink faults" false
    (Properties.solvable Builtin.fig2 ~f:3 ~faulty:(set [ 1; 2; 3 ]))

let suites =
  [
    ( "properties",
      [
        Alcotest.test_case "fig1 structure" `Quick test_fig1_structure;
        Alcotest.test_case "fig2 structure" `Quick test_fig2_structure;
        Alcotest.test_case "fig2 byzantine-safe for any single fault" `Quick
          test_fig2_byzantine_safe_any_single_fault;
        Alcotest.test_case "multiple sinks rejected" `Quick
          test_multi_sink_rejected;
        Alcotest.test_case "disconnected rejected" `Quick
          test_disconnected_rejected;
        Alcotest.test_case "weak sink rejected" `Quick test_weak_sink_rejected;
        Alcotest.test_case "non-sink path deficit" `Quick
          test_non_sink_path_deficit;
        Alcotest.test_case "2f+1 correct sink members required" `Quick
          test_solvable_needs_correct_sink_majority;
      ] );
  ]
