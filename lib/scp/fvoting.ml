open Graphkit

type tally = {
  voters : Pid.Set.t;
  acceptors : Pid.Set.t;
  mutable i_voted : bool;
  mutable i_accepted : bool;
  mutable i_confirmed : bool;
}

type t = {
  self : Pid.t;
  system : unit -> Fbqs.Quorum.system;
  mutable tallies : tally Statement.Map.t;
  c_quorum_checks : Obs.Metrics.counter option;
  c_vblocking_checks : Obs.Metrics.counter option;
}

let empty_tally () =
  {
    voters = Pid.Set.empty;
    acceptors = Pid.Set.empty;
    i_voted = false;
    i_accepted = false;
    i_confirmed = false;
  }

let create ?metrics ~self ~system () =
  {
    self;
    system;
    tallies = Statement.Map.empty;
    c_quorum_checks =
      Option.map (fun r -> Obs.Metrics.counter r "scp_quorum_checks") metrics;
    c_vblocking_checks =
      Option.map
        (fun r -> Obs.Metrics.counter r "scp_vblocking_checks")
        metrics;
  }
let self t = t.self

let tally t stmt =
  match Statement.Map.find_opt stmt t.tallies with
  | Some tl -> tl
  | None -> empty_tally ()

let update t stmt f =
  let tl = tally t stmt in
  t.tallies <- Statement.Map.add stmt (f tl) t.tallies

let rec record_vote t stmt src =
  update t stmt (fun tl -> { tl with voters = Pid.Set.add src tl.voters });
  List.iter (fun s -> record_vote t s src) (Statement.implied stmt)

let rec record_accept t stmt src =
  update t stmt (fun tl ->
      {
        tl with
        voters = Pid.Set.add src tl.voters;
        acceptors = Pid.Set.add src tl.acceptors;
      });
  List.iter (fun s -> record_accept t s src) (Statement.implied stmt)

let tally_exn t stmt =
  (match Statement.Map.find_opt stmt t.tallies with
  | Some _ -> ()
  | None -> t.tallies <- Statement.Map.add stmt (empty_tally ()) t.tallies);
  Statement.Map.find stmt t.tallies

let set_voted t stmt = (tally_exn t stmt).i_voted <- true

(* Rule (a) of accept and the confirm rule demand a quorum containing
   this node all of whose members assert the statement — the node's own
   assertion is part of the tally (recorded when it broadcasts), so no
   special-casing of [self] here. *)
let bump = function Some c -> Obs.Metrics.incr c | None -> ()

let member_of_quorum_within t s =
  bump t.c_quorum_checks;
  Pid.Set.mem t.self (Fbqs.Quorum.greatest_quorum_within (t.system ()) s)

let quorum_votes t stmt = member_of_quorum_within t (tally t stmt).voters

let blocking_accepts t stmt =
  bump t.c_vblocking_checks;
  Fbqs.Quorum.is_v_blocking (t.system ()) t.self (tally t stmt).acceptors

let can_accept t stmt =
  let tl = tally t stmt in
  (not tl.i_accepted) && (quorum_votes t stmt || blocking_accepts t stmt)

let can_confirm t stmt =
  let tl = tally t stmt in
  (not tl.i_confirmed) && member_of_quorum_within t tl.acceptors

let mark_accepted t stmt = (tally_exn t stmt).i_accepted <- true
let mark_confirmed t stmt = (tally_exn t stmt).i_confirmed <- true

let statements t = List.map fst (Statement.Map.bindings t.tallies)
