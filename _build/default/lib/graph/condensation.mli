(** Condensation of a digraph into its DAG of strongly connected
    components, and the sink-component queries the CUP model is built on.

    A component [C] is a {e sink component} when no vertex of [C] has an
    edge leaving [C] (Section III-E of the paper): no path leads from a
    member of [C] to any vertex outside [C]. The k-OSR property requires
    the condensation to have exactly one sink. *)

type t

val make : Digraph.t -> t

val components : t -> Pid.Set.t array
(** All SCCs. Indices are the component ids used below. *)

val component_of : t -> Pid.t -> int
(** @raise Not_found if the vertex is absent. *)

val dag_succs : t -> int -> int list
(** Successor components in the condensation DAG. *)

val sinks : t -> int list
(** Ids of the components with no outgoing DAG edge. *)

val sink_components : Digraph.t -> Pid.Set.t list
(** Vertex sets of all sink components of a graph. *)

val unique_sink : Digraph.t -> Pid.Set.t option
(** [Some v_sink] when the condensation has exactly one sink component,
    [None] otherwise. This is [V_sink] in the paper. *)

val is_sink_member : Digraph.t -> Pid.t -> bool
(** Whether the vertex belongs to some sink component. *)
