lib/cup/knowledge.mli: Graphkit Msg Pid
