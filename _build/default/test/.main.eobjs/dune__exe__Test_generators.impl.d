test/test_generators.ml: Alcotest Digraph Format Generators Graphkit List Pid Printf Properties QCheck QCheck_alcotest
