(** stellar-lint reporting spine, shared by both analysis phases.

    The syntactic phase ({!Rules_syntactic}: D1–D6/M1 over the
    Parsetree) and the typed phase ({!Rules_typed}: R1/R2/P1/T1 over
    the Typedtree loaded from .cmt files by {!Loader}) both produce
    {!finding} values; this module owns the finding shape, the
    per-site allow comments, the line-keyed baseline, and the JSON and
    SARIF renderings.

    Any finding on line [l] is waived by a
    [(* lint: allow RULE — reason *)] comment on line [l] or [l - 1];
    repo-wide grandfathering goes through [lint/baseline.txt]
    (matching on {!baseline_key}, which embeds the line number — a
    baselined finding gates again as soon as its site moves). *)

type finding = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : string list;
      (** interprocedural witness (caller first, source last); [[]]
          for single-site findings *)
}

type report = {
  active : finding list;  (** findings that gate the build *)
  suppressed : finding list;  (** waived by a per-site allow comment *)
}

val mk :
  file:string -> line:int -> col:int -> rule:string -> message:string ->
  finding
(** A chainless finding. *)

val to_string : finding -> string
(** ["file:line:col [RULE] message"] — the grep-friendly report line;
    chain-carrying findings append [" (chain: a -> b -> c)"]. *)

val baseline_key : finding -> string
(** ["file:line [RULE]"] — the granularity at which
    [lint/baseline.txt] entries grandfather findings. *)

val compare_finding : finding -> finding -> int
(** Order by file, then line, column and rule; the report order. *)

val allowed_rules_of_line : string -> string list
(** The rule names waived by a [lint: allow] comment on this source
    line; [[]] when the line carries no allow marker. *)

val allows_of_text : string -> (int, string list) Hashtbl.t
(** Line number (1-based) -> rules allowed on that line. *)

val is_allowed : (int, string list) Hashtbl.t -> finding -> bool
(** Honours {!rule_alias}: an [allow D3] also waives T1, its typed
    successor. *)

val rule_alias : string -> string option
(** [rule_alias "T1" = Some "D3"]: the syntactic rule whose allow
    comments also waive the given typed rule. *)

val apply_allows : root:string -> finding list -> report
(** Partition findings through the allow comments of their source
    files, read from disk under [root]; unreadable files carry no
    allows. Both lists come back sorted by {!compare_finding}. *)

val read_file : string -> string

val load_baseline : string -> string list
(** Non-comment, non-blank lines of a baseline file; [[]] if the file
    does not exist. *)

val render_baseline : finding list -> string
(** The full baseline file contents (header plus one sorted
    {!baseline_key} per finding) for [--baseline-update]. *)

val finding_json : string -> finding -> Obs.Json.t
(** [finding_json status f] — one report entry; [status] is
    ["gating"], ["baselined"] or ["suppressed"]. *)

val sarif_doc :
  gating:finding list ->
  baselined:finding list ->
  suppressed:finding list ->
  Obs.Json.t
(** A SARIF 2.1.0 document: gating findings as [error] results,
    baselined/suppressed ones as [note]s carrying a suppression
    record ([external]/[inSource]). *)
