let test_single_edge () =
  let net = Graphkit.Flow.create ~n:2 ~source:0 ~sink:1 in
  Graphkit.Flow.add_edge net 0 1 5;
  Alcotest.(check int) "flow" 5 (Graphkit.Flow.max_flow net)

let test_series () =
  let net = Graphkit.Flow.create ~n:3 ~source:0 ~sink:2 in
  Graphkit.Flow.add_edge net 0 1 5;
  Graphkit.Flow.add_edge net 1 2 3;
  Alcotest.(check int) "bottleneck" 3 (Graphkit.Flow.max_flow net)

let test_parallel_paths () =
  let net = Graphkit.Flow.create ~n:4 ~source:0 ~sink:3 in
  Graphkit.Flow.add_edge net 0 1 1;
  Graphkit.Flow.add_edge net 1 3 1;
  Graphkit.Flow.add_edge net 0 2 1;
  Graphkit.Flow.add_edge net 2 3 1;
  Alcotest.(check int) "two disjoint unit paths" 2 (Graphkit.Flow.max_flow net)

let test_needs_augmentation () =
  (* The classic example where a greedy path choice must be undone via
     the residual edge. *)
  let net = Graphkit.Flow.create ~n:4 ~source:0 ~sink:3 in
  Graphkit.Flow.add_edge net 0 1 1;
  Graphkit.Flow.add_edge net 0 2 1;
  Graphkit.Flow.add_edge net 1 2 1;
  Graphkit.Flow.add_edge net 1 3 1;
  Graphkit.Flow.add_edge net 2 3 1;
  Alcotest.(check int) "flow 2" 2 (Graphkit.Flow.max_flow net)

let test_disconnected () =
  let net = Graphkit.Flow.create ~n:4 ~source:0 ~sink:3 in
  Graphkit.Flow.add_edge net 0 1 7;
  Graphkit.Flow.add_edge net 2 3 7;
  Alcotest.(check int) "no path" 0 (Graphkit.Flow.max_flow net)

let test_min_cut_side () =
  let net = Graphkit.Flow.create ~n:3 ~source:0 ~sink:2 in
  Graphkit.Flow.add_edge net 0 1 10;
  Graphkit.Flow.add_edge net 1 2 1;
  ignore (Graphkit.Flow.max_flow net);
  let side = Graphkit.Flow.min_cut_side net in
  Alcotest.(check bool) "source side" true side.(0);
  Alcotest.(check bool) "node before bottleneck" true side.(1);
  Alcotest.(check bool) "sink side" false side.(2)

(* Property: max flow on a random unit-capacity DAG equals the number of
   edge-disjoint paths found by greedy path removal (a valid certificate
   lower bound) and is bounded by the out-degree of the source. *)
let prop_bounded_by_degrees =
  QCheck.Test.make ~count:200 ~name:"flow bounded by source/sink degree"
    QCheck.(pair (int_range 2 7) (list_of_size (QCheck.Gen.int_bound 15) (pair (int_bound 6) (int_bound 6))))
    (fun (n, edges) ->
      let edges =
        List.filter (fun (u, v) -> u < n && v < n && u <> v) edges
      in
      let net = Graphkit.Flow.create ~n ~source:0 ~sink:(n - 1) in
      List.iter (fun (u, v) -> Graphkit.Flow.add_edge net u v 1) edges;
      let out_deg =
        List.length (List.filter (fun (u, _) -> u = 0) edges)
      in
      let in_deg =
        List.length (List.filter (fun (_, v) -> v = n - 1) edges)
      in
      let flow = Graphkit.Flow.max_flow net in
      flow <= out_deg && flow <= in_deg && flow >= 0)

let suites =
  [
    ( "flow",
      [
        Alcotest.test_case "single edge" `Quick test_single_edge;
        Alcotest.test_case "series bottleneck" `Quick test_series;
        Alcotest.test_case "parallel paths" `Quick test_parallel_paths;
        Alcotest.test_case "needs residual augmentation" `Quick
          test_needs_augmentation;
        Alcotest.test_case "disconnected" `Quick test_disconnected;
        Alcotest.test_case "min cut side" `Quick test_min_cut_side;
        QCheck_alcotest.to_alcotest prop_bounded_by_degrees;
      ] );
  ]
