lib/graph/traversal.ml: Digraph Hashtbl List Pid Queue
