lib/graph/connectivity.ml: Digraph Flow Hashtbl List Pid
