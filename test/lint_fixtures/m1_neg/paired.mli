(* Fixture: the interface of paired.ml. *)
val paired : int
