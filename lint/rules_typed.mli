(** Phase 2: Typedtree rule families, run over the units loaded by
    {!Loader} from a [--cmt] directory.

    - R1 — a literal closure in the job position of
      [Simkit.Exec.map] / [Simkit.Pool.map] / [Simkit.Pool.map_chunked]
      captures a variable of mutable type (ref, [Hashtbl.t],
      [Buffer.t], [Bytes.t], arrays, queues/stacks, records with
      mutable fields — resolved through aliases) defined outside the
      closure. [Core.Cache.t] captures are exempt: the executor arms
      the cache's critical-section protector before its first spawn.
    - R2 — toplevel mutable state in a unit reachable through the
      call graph from a job function, flagged at the binding site
      with the job site and witness chain in the message (same
      [Core.Cache.t] exemption).
    - P1 — determinism taint: from the D2 entropy sources plus
      [Hashtbl.hash], propagated backward through the call graph; any
      tainted value exported from a [lib/**.mli] is reported at its
      definition site with the full call chain.
    - T1 — any occurrence of [(=)]/[(<>)]/[compare]/[Hashtbl.hash]
      whose instantiated type takes a Set/Map/Slice value (resolved
      through aliases, so partial application and [type k = Pid.Set.t]
      disguises are caught). Supersedes the syntactic D3. *)

val run : ?lib_prefix:string -> Loader.t -> Lint_core.finding list
(** Sorted by {!Lint_core.compare_finding}. [lib_prefix] (default
    ["lib/"]) scopes P1's "exported from a lib interface" test; the
    typed self-tests point it at the fixture corpus. Allow comments
    are {e not} applied here — drivers run
    {!Lint_core.apply_allows} over the result. *)
