open Graphkit

(* One line per process, ascending pid order on output:

     # comment
     0 threshold 4 of 0 1 2 3 5
     1 slices { 0 1 2 } { 1 2 4 }
     2 none

   Whitespace-separated tokens; blank lines and '#' lines are
   ignored. The format is the on-disk shape of [Quorum.system], so a
   parse/print round trip is the identity (property-tested in
   test/test_enum.ml). *)

let header = "# stellar-cup fbas v1"

let to_buffer buf sys =
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Pid.Map.iter
    (fun i slice ->
      Buffer.add_string buf (string_of_int i);
      (match slice with
      | Slice.Explicit [] -> Buffer.add_string buf " none"
      | Slice.Explicit slices ->
          Buffer.add_string buf " slices";
          List.iter
            (fun s ->
              Buffer.add_string buf " {";
              Pid.Set.iter
                (fun j ->
                  Buffer.add_char buf ' ';
                  Buffer.add_string buf (string_of_int j))
                s;
              Buffer.add_string buf " }")
            slices
      | Slice.Threshold { members; threshold } ->
          Buffer.add_string buf " threshold ";
          Buffer.add_string buf (string_of_int threshold);
          Buffer.add_string buf " of";
          Pid.Set.iter
            (fun j ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf (string_of_int j))
            members);
      Buffer.add_char buf '\n')
    sys

let to_string sys =
  let buf = Buffer.create 4096 in
  to_buffer buf sys;
  Buffer.contents buf

let to_file path sys =
  let oc = open_out_bin path in
  output_string oc (to_string sys);
  close_out oc

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_pid lineno tok =
  match int_of_string_opt tok with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "line %d: %S is not a process id" lineno tok)

(* [{ 1 2 } { 3 }] -> explicit slice list *)
let parse_slices lineno toks =
  let rec outer acc = function
    | [] -> Ok (List.rev acc)
    | "{" :: rest -> inner Pid.Set.empty acc rest
    | tok :: _ ->
        Error (Printf.sprintf "line %d: expected '{', found %S" lineno tok)
  and inner cur acc = function
    | "}" :: rest -> outer (cur :: acc) rest
    | [] -> Error (Printf.sprintf "line %d: unclosed '{'" lineno)
    | tok :: rest -> (
        match parse_pid lineno tok with
        | Ok i -> inner (Pid.Set.add i cur) acc rest
        | Error _ as e -> e)
  in
  outer [] toks

let parse_line lineno line =
  match tokens line with
  | [] -> Ok None
  | pid_tok :: rest -> (
      match parse_pid lineno pid_tok with
      | Error _ as e -> e
      | Ok pid -> (
          match rest with
          | [ "none" ] -> Ok (Some (pid, Slice.Explicit []))
          | "slices" :: toks -> (
              match parse_slices lineno toks with
              | Ok [] ->
                  Error
                    (Printf.sprintf "line %d: 'slices' needs at least one {...}"
                       lineno)
              | Ok slices -> Ok (Some (pid, Slice.Explicit slices))
              | Error e -> Error e)
          | "threshold" :: t :: "of" :: members -> (
              match int_of_string_opt t with
              | None ->
                  Error
                    (Printf.sprintf "line %d: threshold %S is not an integer"
                       lineno t)
              | Some threshold -> (
                  let rec collect acc = function
                    | [] -> Ok acc
                    | tok :: rest -> (
                        match parse_pid lineno tok with
                        | Ok i -> collect (Pid.Set.add i acc) rest
                        | Error _ as e -> e)
                  in
                  match collect Pid.Set.empty members with
                  | Ok members ->
                      Ok (Some (pid, Slice.Threshold { members; threshold }))
                  | Error e -> Error e))
          | _ ->
              Error
                (Printf.sprintf
                   "line %d: expected 'none', 'slices {...}...' or 'threshold \
                    T of ...'"
                   lineno)))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno sys = function
    | [] -> Ok sys
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) sys rest
        else
          match parse_line lineno line with
          | Ok None -> go (lineno + 1) sys rest
          | Ok (Some (pid, slice)) ->
              if Pid.Map.mem pid sys then
                Error (Printf.sprintf "line %d: duplicate process %d" lineno pid)
              else go (lineno + 1) (Pid.Map.add pid slice sys) rest
          | Error e -> Error e)
  in
  go 1 Pid.Map.empty lines

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
