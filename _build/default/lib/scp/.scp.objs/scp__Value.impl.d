lib/scp/value.ml: Format Int List Set
