open Graphkit

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let test_edges_rendered () =
  let g = Digraph.of_edges [ (1, 2); (2, 3) ] in
  let s = Dot.to_dot g in
  Alcotest.(check bool) "digraph header" true (contains s "digraph knowledge");
  Alcotest.(check bool) "edge 1->2" true (contains s "1 -> 2;");
  Alcotest.(check bool) "edge 2->3" true (contains s "2 -> 3;");
  Alcotest.(check bool) "closing brace" true (contains s "}")

let test_highlight_and_faulty () =
  let g = Digraph.of_edges [ (1, 2) ] in
  let s =
    Dot.to_dot
      ~highlight:(Pid.Set.singleton 1)
      ~faulty:(Pid.Set.singleton 2)
      ~name:"g2" g
  in
  Alcotest.(check bool) "custom name" true (contains s "digraph g2");
  Alcotest.(check bool) "sink doubled" true (contains s "peripheries=2");
  Alcotest.(check bool) "faulty filled" true (contains s "fillcolor=gray")

let test_to_file () =
  let path = Filename.temp_file "stellar_cup" ".dot" in
  Dot.to_file path (Digraph.of_edges [ (7, 8) ]);
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file contents" true (contains s "7 -> 8;")

let suites =
  [
    ( "dot",
      [
        Alcotest.test_case "edges rendered" `Quick test_edges_rendered;
        Alcotest.test_case "highlight and faulty attrs" `Quick
          test_highlight_and_faulty;
        Alcotest.test_case "to_file" `Quick test_to_file;
      ] );
  ]
