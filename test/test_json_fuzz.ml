(* Obs.Json.of_string edge cases and a property-based round trip.

   The parser is the analysis daemon's request decoder, so its corner
   behaviour is contract: escape handling, nesting depth, int
   boundaries, and the documented trailing-garbage error all get
   pinned here. The qcheck property drives random documents through
   [of_string (to_string j) = j]; float generation avoids integral
   values because the %.12g writer prints them without a fraction, so
   they legitimately re-parse as [Int] (that collapse is itself pinned
   as a unit case below). *)

module J = Obs.Json

let ok s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "expected %S to parse, got error: %s" s e

let err s =
  match J.of_string s with
  | Ok _ -> Alcotest.failf "expected %S to be rejected" s
  | Error _ -> ()

let test_escapes () =
  Alcotest.(check string)
    "escaped quote" {|say "hi"|}
    (match ok {|"say \"hi\""|} with J.String s -> s | _ -> "<not a string>");
  Alcotest.(check string)
    "escaped backslash" {|a\b|}
    (match ok {|"a\\b"|} with J.String s -> s | _ -> "<not a string>");
  Alcotest.(check string)
    "ascii \\u escape decodes" "A"
    (match ok "\"\\u0041\"" with J.String s -> s | _ -> "<not a string>");
  Alcotest.(check string)
    "non-ascii \\u escape survives as literal text" "\\u00e9"
    (match ok "\"\\u00e9\"" with J.String s -> s | _ -> "<not a string>");
  Alcotest.(check string)
    "control escapes" "a\tb\nc"
    (match ok {|"a\tb\nc"|} with J.String s -> s | _ -> "<not a string>");
  err {|"unterminated|};
  err {|"bad \q escape"|}

let test_deep_nesting () =
  let depth = 512 in
  let s =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let rec depth_of = function
    | J.List [ inner ] -> 1 + depth_of inner
    | J.Int 7 -> 0
    | _ -> Alcotest.fail "unexpected shape"
  in
  Alcotest.(check int) "512 levels of arrays" depth (depth_of (ok s))

let test_int_boundaries () =
  Alcotest.(check bool)
    "max_int round-trips" true
    (ok (string_of_int max_int) = J.Int max_int);
  Alcotest.(check bool)
    "min_int round-trips" true
    (ok (string_of_int min_int) = J.Int min_int);
  (* An integral float serializes without "." under %.12g, so it comes
     back as Int — the documented (and deliberate) asymmetry. *)
  Alcotest.(check bool)
    "integral float collapses to Int" true
    (ok (J.to_string (J.Float 3.0)) = J.Int 3)

let test_trailing_garbage () =
  err "{} x";
  err "1 2";
  err "[1,2] ,";
  (* ... but trailing whitespace is fine. *)
  Alcotest.(check bool) "trailing spaces ok" true (ok "42  \n " = J.Int 42)

(* Generator for documents the writer round-trips exactly: every float
   is nudged off integral values. *)
let gen_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) small_signed_int;
        map
          (fun f ->
            let f = Float.of_int (int_of_float f) +. 0.5 in
            J.Float f)
          (float_bound_inclusive 1000.0);
        map (fun s -> J.String s) (string_size ~gen:printable (int_bound 8));
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> J.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size ~gen:printable (int_bound 6)) (self (n / 2))))
            );
          ])

let prop_round_trip =
  QCheck.Test.make ~count:500 ~name:"of_string (to_string j) = j"
    (QCheck.make gen_json)
    (fun j -> J.of_string (J.to_string j) = Ok j)

let suites =
  [
    ( "json-fuzz",
      [
        Alcotest.test_case "string escapes" `Quick test_escapes;
        Alcotest.test_case "deeply nested arrays" `Quick test_deep_nesting;
        Alcotest.test_case "int boundaries" `Quick test_int_boundaries;
        Alcotest.test_case "trailing garbage rejected" `Quick
          test_trailing_garbage;
        QCheck_alcotest.to_alcotest prop_round_trip;
      ] );
  ]
