examples/stellar_network.ml: Fbqs Format Fun Graphkit List Pid Scp
