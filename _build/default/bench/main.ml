(* Benchmark and experiment harness.

   Usage:
     dune exec bench/main.exe            -- experiments + microbenches
     dune exec bench/main.exe -- exp     -- experiment tables only
     dune exec bench/main.exe -- micro   -- bechamel microbenches only
     dune exec bench/main.exe -- markdown -- tables as markdown (for
                                             EXPERIMENTS.md)

   One experiment table per paper artifact (figures, algorithms,
   theorems — see DESIGN.md §5), plus Bechamel microbenches for the hot
   kernels every experiment leans on. *)

open Graphkit
open Bechamel
open Toolkit

(* ---- microbench subjects --------------------------------------------- *)

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let bench_is_quorum_symbolic =
  let n = 1000 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let q = Pid.Set.of_range 1 ((3 * n / 4) + 1) in
  Test.make ~name:"is_quorum/symbolic n=1000" (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.is_quorum sys q)))

let bench_is_quorum_explicit =
  let n = 12 in
  let members = Pid.Set.of_range 1 n in
  let sym = Fbqs.Slice.threshold ~members ~threshold:8 in
  let explicit = Fbqs.Slice.explicit (Fbqs.Slice.enumerate sym) in
  let sys =
    Fbqs.Quorum.system_of_list
      (List.map (fun i -> (i, explicit)) (Pid.Set.elements members))
  in
  let q = Pid.Set.of_range 1 9 in
  Test.make ~name:"is_quorum/explicit n=12 (495 slices)"
    (Staged.stage (fun () -> ignore (Fbqs.Quorum.is_quorum sys q)))

let bench_greatest_quorum =
  let n = 200 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let universe = Pid.Set.of_range 1 n in
  Test.make ~name:"greatest_quorum_within n=200" (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.greatest_quorum_within sys universe)))

let bench_scc =
  let g = Generators.circulant ~n:2000 ~k:3 in
  Test.make ~name:"scc/tarjan circulant n=2000" (Staged.stage (fun () ->
      ignore (Scc.components g)))

let bench_disjoint_paths =
  let g = Generators.random_k_osr ~seed:5 ~sink_size:20 ~non_sink:20 ~k:3 () in
  Test.make ~name:"menger/disjoint-paths n=40" (Staged.stage (fun () ->
      ignore (Connectivity.node_disjoint_paths g 39 0)))

let bench_kosr_check =
  let g = Generators.random_k_osr ~seed:6 ~sink_size:8 ~non_sink:6 ~k:2 () in
  Test.make ~name:"k-osr-check n=14 k=2" (Staged.stage (fun () ->
      ignore (Properties.is_k_osr g 2)))

let bench_event_queue =
  Test.make ~name:"event-queue push+pop x1000" (Staged.stage (fun () ->
      let q = Simkit.Event_queue.create () in
      for i = 0 to 999 do
        Simkit.Event_queue.push q ~time:(i * 7919 mod 1000) i
      done;
      let rec drain () =
        match Simkit.Event_queue.pop q with
        | Some _ -> drain ()
        | None -> ()
      in
      drain ()))

let bench_v_blocking =
  let n = 1000 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let b = Pid.Set.of_range 1 ((n / 3) + 1) in
  Test.make ~name:"v-blocking/symbolic n=1000" (Staged.stage (fun () ->
      ignore (Fbqs.Quorum.is_v_blocking sys 1 b)))

let bench_sink_oracle =
  let g = Generators.random_k_osr ~seed:7 ~sink_size:30 ~non_sink:30 ~k:3 () in
  Test.make ~name:"sink-oracle/condensation n=60" (Staged.stage (fun () ->
      ignore (Cup.Sink_oracle.get_sink g 0)))

let bench_scp_small_instance =
  Test.make ~name:"scp/4-node-consensus (end-to-end)"
    (Staged.stage (fun () ->
         let sys = threshold_system 4 3 in
         ignore
           (Scp.Runner.run ~seed:1 ~system:sys
              ~peers_of:(fun _ -> Pid.Set.of_range 1 4)
              ~initial_value_of:(fun i -> Scp.Value.of_ints [ i ])
              ~fault_of:(fun _ -> None)
              ())))

let bench_blocking_cascade =
  let n = 200 in
  let sys = threshold_system n ((2 * n / 3) + 1) in
  let down = Pid.Set.of_range 1 (n / 3) in
  Test.make ~name:"analysis/blocking-cascade n=200" (Staged.stage (fun () ->
      ignore (Fbqs.Analysis.blocking_cascade sys ~down)))

let bench_dset_check =
  let sys = threshold_system 10 7 in
  let b = Pid.Set.of_range 1 2 in
  Test.make ~name:"dset/is_dset n=10" (Staged.stage (fun () ->
      ignore (Fbqs.Dset.is_dset sys b)))

let bench_parse_roundtrip =
  let g = Generators.random_k_osr ~seed:9 ~sink_size:40 ~non_sink:40 ~k:3 () in
  let text = Parse.to_string g in
  Test.make ~name:"parse/adjacency n=80" (Staged.stage (fun () ->
      ignore (Parse.of_string text)))

let microbenches =
  Test.make_grouped ~name:"kernels" ~fmt:"%s %s"
    [
      bench_is_quorum_symbolic;
      bench_is_quorum_explicit;
      bench_greatest_quorum;
      bench_scc;
      bench_disjoint_paths;
      bench_kosr_check;
      bench_event_queue;
      bench_v_blocking;
      bench_sink_oracle;
      bench_scp_small_instance;
      bench_blocking_cascade;
      bench_dset_check;
      bench_parse_roundtrip;
    ]

let run_microbenches () =
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] microbenches in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Format.printf "== Microbenches (Bechamel, monotonic clock) ==@.";
  Format.printf "%-45s  %s@." "kernel" "time/run";
  Format.printf "%s@." (String.make 65 '-');
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%-45s  %s@." name human)
    rows;
  Format.printf "@."

(* ---- main ------------------------------------------------------------ *)

let run_experiments ~markdown =
  let tables = Stellar_cup.Experiments.all ~seed:1 () in
  if markdown then
    List.iter
      (fun t -> print_string (Stellar_cup.Report.to_markdown t))
      tables
  else List.iter Stellar_cup.Report.print tables

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "exp" -> run_experiments ~markdown:false
  | "markdown" -> run_experiments ~markdown:true
  | "micro" -> run_microbenches ()
  | _ ->
      run_experiments ~markdown:false;
      run_microbenches ()
