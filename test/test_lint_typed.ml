(* Typed-phase lint self-tests over the compiled typed_fixtures
   corpus. Unlike the syntactic fixtures, these files really compile:
   the rules read the .cmt files dune produced for the
   typed_fixtures library out of the build tree, exactly as the
   driver does with --cmt. *)

let cmt_dir = Filename.concat "typed_fixtures" ".typed_fixtures.objs/byte"
let loaded = lazy (Loader.load_dir cmt_dir)

let findings =
  lazy (Rules_typed.run ~lib_prefix:"test/typed_fixtures/" (Lazy.force loaded))

let by_rule rule =
  List.filter (fun (f : Lint_core.finding) -> f.rule = rule) (Lazy.force findings)

let basename (f : Lint_core.finding) = Filename.basename f.file

let mentions needle (f : Lint_core.finding) =
  let msg = f.message in
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let basename_source (u : Loader.unit_info) = Filename.basename u.Loader.source

let test_loader () =
  let l = Lazy.force loaded in
  Alcotest.(check bool)
    "all five fixture units load" true
    (List.length l.Loader.units = 5);
  let p1_chain =
    List.find
      (fun (u : Loader.unit_info) -> basename_source u = "p1_chain.ml")
      l.Loader.units
  in
  Alcotest.(check (list string))
    "p1_chain exports come from its cmti" [ "pure"; "stamp" ]
    (List.sort String.compare (Loader.exported l p1_chain.Loader.modname))

let test_r1 () =
  let r1 = by_rule "R1" in
  Alcotest.(check bool)
    "every R1 hit is in r1_cases.ml" true
    (List.for_all (fun f -> basename f = "r1_cases.ml") r1);
  Alcotest.(check bool)
    "captured Hashtbl [table] is flagged" true
    (List.exists (mentions "table") r1);
  Alcotest.(check bool)
    "captured ref [seen] is flagged through Pool.map" true
    (List.exists (mentions "seen") r1);
  Alcotest.(check bool)
    "Core.Cache capture is exempt" false
    (List.exists (mentions "cache") r1);
  Alcotest.(check bool)
    "closure-local Hashtbl is not a capture" false
    (List.exists (mentions "h :") r1)

let test_r2 () =
  let r2 = by_rule "R2" in
  let counter =
    List.filter (fun f -> basename f = "r2_state.ml" && mentions "counter" f) r2
  in
  Alcotest.(check int) "job-reachable counter flagged once" 1
    (List.length counter);
  Alcotest.(check bool)
    "witness chain reaches R2_state" true
    (match counter with
    | [ f ] ->
        f.chain <> []
        && List.exists
             (fun hop ->
               String.length hop >= 8
               && String.sub hop (String.length hop - 4) 4 = "bump")
             f.chain
    | _ -> false);
  Alcotest.(check bool)
    "immutable toplevel [limit] is not flagged" false
    (List.exists (mentions "limit ") r2);
  Alcotest.(check bool)
    "Core.Cache toplevel state is exempt" false
    (List.exists (mentions "cache :") r2)

let test_p1 () =
  let p1 = by_rule "P1" in
  Alcotest.(check int) "exactly one exported tainted value" 1 (List.length p1);
  match p1 with
  | [ f ] ->
      Alcotest.(check string) "reported in p1_chain.ml" "p1_chain.ml"
        (basename f);
      Alcotest.(check bool) "names stamp" true (mentions "stamp" f);
      Alcotest.(check bool)
        "chain is >= 2 hops deep (stamp -> helper -> wall -> source)" true
        (List.length f.chain >= 4);
      Alcotest.(check bool)
        "chain ends at the entropy source" true
        (match List.rev f.chain with
        | last :: _ -> last = "Unix.gettimeofday"
        | [] -> false)
  | _ -> ()

let test_t1_catches_what_d3_misses () =
  let t1 = by_rule "T1" in
  let in_alias = List.filter (fun f -> basename f = "t1_alias.ml") t1 in
  Alcotest.(check int)
    "aliased (=), partial-application compare and Hashtbl.hash all fire" 3
    (List.length in_alias);
  Alcotest.(check bool)
    "dedicated Set.equal and int compare stay silent" true
    (List.length t1 = List.length in_alias);
  (* The same source through the syntactic phase: D3 judges argument
     heads only, so the alias hides every site from it. *)
  let syntactic =
    Rules_syntactic.lint_source ~rel:"lib/cup/t1_alias.ml"
      (Filename.concat "typed_fixtures" "t1_alias.ml")
  in
  let d3 =
    List.filter
      (fun (f : Lint_core.finding) -> f.rule = "D3")
      (syntactic.active @ syntactic.suppressed)
  in
  Alcotest.(check int) "D3 is provably blind to all of them" 0 (List.length d3)

let test_sarif () =
  let gating =
    [
      {
        (Lint_core.mk ~file:"lib/x.ml" ~line:3 ~col:1 ~rule:"P1" ~message:"m")
        with
        chain = [ "a"; "b" ];
      };
    ]
  and baselined =
    [ Lint_core.mk ~file:"lib/y.ml" ~line:7 ~col:0 ~rule:"D1" ~message:"n" ]
  in
  match Lint_core.sarif_doc ~gating ~baselined ~suppressed:[] with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool)
        "sarif version pinned" true
        (List.assoc_opt "version" fields = Some (Obs.Json.String "2.1.0"));
      let results =
        match List.assoc "runs" fields with
        | Obs.Json.List [ Obs.Json.Obj run ] -> (
            match List.assoc "results" run with
            | Obs.Json.List rs -> rs
            | _ -> [])
        | _ -> []
      in
      Alcotest.(check int) "one result per finding" 2 (List.length results);
      let levels =
        List.filter_map
          (function
            | Obs.Json.Obj r -> (
                match List.assoc_opt "level" r with
                | Some (Obs.Json.String l) -> Some l
                | _ -> None)
            | _ -> None)
          results
      in
      Alcotest.(check (list string))
        "gating is error, baselined is note" [ "error"; "note" ] levels
  | _ -> Alcotest.fail "sarif_doc did not produce an object"

let suites =
  [
    ( "lint-typed",
      [
        Alcotest.test_case "loader reads the fixture cmts" `Quick test_loader;
        Alcotest.test_case "R1 capture positives and exemptions" `Quick test_r1;
        Alcotest.test_case "R2 job-reachable toplevel state" `Quick test_r2;
        Alcotest.test_case "P1 taint chain on exported value" `Quick test_p1;
        Alcotest.test_case "T1 fires where D3 is blind" `Quick
          test_t1_catches_what_d3_misses;
        Alcotest.test_case "SARIF rendering" `Quick test_sarif;
      ] );
  ]
