let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno g = function
    | [] -> Ok g
    | line :: rest -> (
        let line = String.trim (strip_comment line) in
        if line = "" then go (lineno + 1) g rest
        else
          match String.index_opt line ':' with
          | None ->
              Error
                (Printf.sprintf "line %d: expected 'vertex: succ...'" lineno)
          | Some i -> (
              let vertex = String.trim (String.sub line 0 i) in
              let succs =
                String.sub line (i + 1) (String.length line - i - 1)
                |> String.split_on_char ' '
                |> List.filter_map (fun s ->
                       let s = String.trim s in
                       if s = "" then None else Some s)
              in
              match
                ( int_of_string_opt vertex,
                  List.map int_of_string_opt succs )
              with
              | None, _ ->
                  Error
                    (Printf.sprintf "line %d: bad vertex id %S" lineno vertex)
              | Some v, parsed ->
                  if List.exists Option.is_none parsed then
                    Error
                      (Printf.sprintf "line %d: bad successor id" lineno)
                  else
                    let g =
                      List.fold_left
                        (fun g s -> Digraph.add_edge v (Option.get s) g)
                        (Digraph.add_vertex v g) parsed
                    in
                    go (lineno + 1) g rest))
  in
  go 1 Digraph.empty lines

let of_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))

let to_string g =
  let buf = Buffer.create 128 in
  Pid.Set.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ':';
      Pid.Set.iter
        (fun s ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int s))
        (Digraph.succs g v);
      Buffer.add_char buf '\n')
    (Digraph.vertices g);
  Buffer.contents buf
