(* Event_heap is the engine's internal queue: its whole contract is
   "same (time, push-sequence) order as Event_queue, no allocation".
   These tests pin the ordering (FIFO tie-break included), the
   cursor-accessor lifetime across interleaved pushes, payload routing
   through row recycling, and the 31-bit time guard. *)

module H = Simkit.Event_heap

let drain h =
  let rec go acc = if H.pop h then go (H.time h :: acc) else List.rev acc in
  go []

let test_time_order () =
  let h = H.create () in
  List.iter (fun t -> H.push_start h ~time:t t) [ 5; 1; 9; 3; 7; 0; 2 ];
  Alcotest.(check (list int))
    "pops come out time-sorted" [ 0; 1; 2; 3; 5; 7; 9 ] (drain h);
  Alcotest.(check bool) "empty after drain" true (H.is_empty h)

let test_fifo_tie_break () =
  (* Equal times resolve by push order — the property golden traces
     depend on. Node ids record the push order. *)
  let h = H.create () in
  List.iter (fun i -> H.push_start h ~time:42 i) [ 3; 1; 4; 1; 5 ];
  let rec order acc = if H.pop h then order (H.node_a h :: acc) else acc in
  Alcotest.(check (list int))
    "same-time events pop in push order" [ 3; 1; 4; 1; 5 ]
    (List.rev (order []))

let test_kinds_and_fields () =
  let h = H.create () in
  H.push_deliver h ~time:2 ~src:7 ~dst:9 "payload";
  H.push_timer h ~time:1 ~owner:4 "tick";
  H.push_start h ~time:0 3;
  Alcotest.(check bool) "pop start" true (H.pop h);
  Alcotest.(check bool) "kind start" true (H.Kind.equal (H.kind h) H.Kind.start);
  Alcotest.(check int) "started pid" 3 (H.node_a h);
  Alcotest.(check bool) "pop timer" true (H.pop h);
  Alcotest.(check bool) "kind timer" true (H.Kind.equal (H.kind h) H.Kind.timer);
  Alcotest.(check int) "timer owner" 4 (H.node_a h);
  Alcotest.(check string) "timer tag" "tick" (H.tag h);
  Alcotest.(check bool) "pop deliver" true (H.pop h);
  Alcotest.(check bool)
    "kind deliver" true
    (H.Kind.equal (H.kind h) H.Kind.deliver);
  Alcotest.(check int) "src" 7 (H.node_a h);
  Alcotest.(check int) "dst" 9 (H.node_b h);
  Alcotest.(check string) "payload" "payload" (H.payload h);
  Alcotest.(check bool) "exhausted" false (H.pop h)

let test_cursor_survives_pushes () =
  (* The engine reads the popped event while handlers push more events:
     the cursor row must stay valid until the next pop. *)
  let h = H.create () in
  H.push_deliver h ~time:1 ~src:10 ~dst:20 "first";
  Alcotest.(check bool) "pop" true (H.pop h);
  (* Push a burst while the cursor is parked — enough to force a grow. *)
  for i = 0 to 63 do
    H.push_deliver h ~time:(2 + i) ~src:i ~dst:i ("later" ^ string_of_int i)
  done;
  Alcotest.(check string) "cursor payload intact" "first" (H.payload h);
  Alcotest.(check int) "cursor src intact" 10 (H.node_a h);
  Alcotest.(check bool) "next pop" true (H.pop h);
  Alcotest.(check string) "recycled rows carry their own payloads" "later0"
    (H.payload h)

let test_interleaved_recycling () =
  (* Steady-state push/pop cycles rows through the free list; order and
     payloads must be unaffected. *)
  let h = H.create () in
  let out = ref [] in
  for round = 0 to 99 do
    H.push_deliver h ~time:round ~src:round ~dst:0 round;
    if round mod 3 <> 0 then
      if H.pop h then out := H.payload h :: !out
  done;
  while H.pop h do
    out := H.payload h :: !out
  done;
  Alcotest.(check (list int))
    "payloads pop in time order across recycling"
    (List.init 100 Fun.id) (List.rev !out);
  Alcotest.(check int) "high water tracks the backlog" 34 (H.high_water h)

let test_time_range_guard () =
  let h = H.create () in
  H.push_start h ~time:((1 lsl 31) - 1) 0;
  Alcotest.(check bool) "max encodable time accepted" true (H.pop h);
  List.iter
    (fun bad ->
      let raised =
        try
          H.push_start h ~time:bad 0;
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "time %d rejected" bad)
        true raised)
    [ -1; 1 lsl 31 ]

let suites =
  [
    ( "event-heap",
      [
        Alcotest.test_case "time ordering" `Quick test_time_order;
        Alcotest.test_case "FIFO tie-break at equal times" `Quick
          test_fifo_tie_break;
        Alcotest.test_case "kinds and per-kind fields" `Quick
          test_kinds_and_fields;
        Alcotest.test_case "cursor survives interleaved pushes" `Quick
          test_cursor_survives_pushes;
        Alcotest.test_case "row recycling keeps order and payloads" `Quick
          test_interleaved_recycling;
        Alcotest.test_case "31-bit time guard" `Quick test_time_range_guard;
      ] );
  ]
