(* stellar-cup — command-line front end.

   Noun-verb command scheme; every leaf accepts --json:
     run                  one consensus run (--pipeline scp-sd | scp-local
                          | bftcup), with --trace FILE and --metrics
     sink run             the distributed sink detector (Algorithm 3)
     graph analyze        structural analysis (SCC, sink, k-OSR, safety)
     graph render         Graphviz rendering
     experiment list      available experiment ids
     experiment show ID   one experiment table (e1..e12, e4b) or 'all'
     fbas analyze FILE    FBQS health analysis (minimal quorums,
                          intersection, blocking/splitting sets)
     fbas gen             deterministic live-network-shaped topology

   Graphs are selected with --graph fig1 | fig2 | random | family plus
   the generator parameters. Traces are JSONL streams of structured
   events stamped with logical time only, so a fixed --seed yields a
   byte-identical file on every invocation. *)

open Graphkit
open Cmdliner

(* ---- graph selection -------------------------------------------------- *)

(* The spec record and builder live in {!Serve.Api} — the daemon's
   [run] verb selects graphs with the same parameters. *)
let build_graph = Serve.Api.build_graph

let graph_term =
  let kind =
    Arg.(
      value
      & opt string "fig2"
      & info [ "graph" ] ~docv:"KIND"
          ~doc:"Graph: fig1, fig2, family (generalized counter-example), \
                random (k-OSR with k = 2f+1), or file:PATH (adjacency \
                list: one 'vertex: succ succ ...' line per vertex).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let sink_size =
    Arg.(
      value & opt int 5
      & info [ "sink-size" ] ~docv:"N" ~doc:"Sink size for generators.")
  in
  let non_sink =
    Arg.(
      value & opt int 4
      & info [ "non-sink" ] ~docv:"N"
          ~doc:"Number of non-sink members for generators.")
  in
  let f =
    Arg.(
      value & opt int 1
      & info [ "f" ] ~docv:"N" ~doc:"Fault threshold f.")
  in
  let make kind seed sink_size non_sink f =
    { Serve.Api.kind; seed; sink_size; non_sink; f }
  in
  Term.(const make $ kind $ seed $ sink_size $ non_sink $ f)

let faulty_term =
  Arg.(
    value
    & opt (list int) []
    & info [ "faulty" ] ~docv:"IDS"
        ~doc:"Comma-separated ids of silent Byzantine processes.")

let json_term =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let jobs_env =
  Cmd.Env.info Simkit.Exec.jobs_env_var
    ~doc:
      "Default worker count for every --jobs flag (CLI, daemon, bench). An \
       explicit --jobs always wins."

let jobs_term =
  Arg.(
    value
    & opt int 1
    & info [ "jobs" ] ~docv:"N" ~env:jobs_env
        ~doc:"Workers for independent sub-runs (experiment samples, \
              --samples sweeps, FBAS search shards): domains on OCaml 5, \
              forked processes otherwise, parked in a persistent pool \
              between batches. Output is byte-identical to --jobs 1; \
              parallelism only buys wall-clock.")

(* ---- observability plumbing ------------------------------------------- *)

let timing_term =
  let d = Simkit.Run_config.default in
  let gst =
    Arg.(
      value & opt int d.gst
      & info [ "gst" ] ~docv:"T" ~doc:"Global stabilization time.")
  in
  let delta =
    Arg.(
      value & opt int d.delta
      & info [ "delta" ] ~docv:"T" ~doc:"Post-GST delivery bound.")
  in
  let max_time =
    Arg.(
      value & opt int d.max_time
      & info [ "max-time" ] ~docv:"T" ~doc:"Simulation step budget.")
  in
  Term.(const (fun gst delta max_time -> (gst, delta, max_time))
        $ gst $ delta $ max_time)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a JSONL structured-event trace to $(docv) ('-': \
              stdout). Deterministic for a fixed --seed.")

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect and print the run's metric counters.")

(* A Run_config carrying the CLI's seed/timing flags plus freshly
   created observability sinks. Returns the config and a [finish]
   closure that flushes the trace file and hands back the JSON pieces. *)
let configure_run (spec : Serve.Api.graph_spec) (gst, delta, max_time)
    trace_path want_metrics =
  let metrics = if want_metrics then Some (Obs.Metrics.create ()) else None in
  let trace_buf = Option.map (fun _ -> Buffer.create 4096) trace_path in
  let trace = Option.map Obs.Trace.to_buffer trace_buf in
  let cfg =
    {
      Simkit.Run_config.seed = spec.seed;
      gst;
      delta;
      max_time;
      delay = None;
      metrics;
      trace;
    }
  in
  let finish () =
    (match (trace_path, trace_buf) with
    | Some "-", Some buf -> print_string (Buffer.contents buf)
    | Some path, Some buf ->
        let oc = open_out path in
        output_string oc (Buffer.contents buf);
        close_out oc;
        Format.eprintf "trace: wrote %d events to %s@."
          (Option.fold ~none:0 ~some:Obs.Trace.event_count trace)
          path
    | _ -> ());
    let json_fields =
      Option.to_list
        (Option.map (fun m -> ("metrics", Obs.Metrics.to_json m)) metrics)
      @ Option.to_list
          (Option.map
             (fun p -> ("trace_file", Obs.Json.String p))
             trace_path)
    in
    (json_fields, metrics)
  in
  (cfg, finish)

let print_json j = print_endline (Obs.Json.to_string j)

let print_report ~kind payload =
  print_json (Core.Report.envelope ~kind payload)

(* ---- run --------------------------------------------------------------- *)

let run_consensus (spec : Serve.Api.graph_spec) faulty_ids pipeline timing
    trace_path want_metrics samples jobs json =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  if samples > 1 then begin
    (* A seed sweep: [samples] independent instances at seed, seed+1, …
       run through the worker pool. Per-run sinks don't compose with
       multi-process sweeps, so the observability flags are refused
       rather than silently dropped. *)
    if trace_path <> None || want_metrics then
      failwith "--trace/--metrics apply to single runs; drop --samples";
    let stack = Serve.Api.stack_of_pipeline pipeline in
    let cfg, _ = configure_run spec timing None false in
    let verdicts =
      Stellar_cup.Pipeline.sweep ~jobs ~cfg ~stack ~graph:g ~f:spec.f ~faulty
        ~initial_value_of:(fun i -> Scp.Value.of_ints [ i ])
        (List.init samples (fun k -> spec.seed + k))
    in
    if json then
      print_report ~kind:"sweep"
        (Serve.Api.sweep_payload ~pipeline ~samples ~jobs verdicts)
    else begin
      List.iter
        (fun (seed, v) ->
          Format.printf "%s seed=%d: %a@." pipeline seed
            Stellar_cup.Pipeline.pp_verdict v)
        verdicts;
      Format.printf "sweep: %d/%d runs reached consensus@."
        (List.length
           (List.filter
              (fun (_, (v : Stellar_cup.Pipeline.verdict)) ->
                v.all_decided && v.agreement && v.validity)
              verdicts))
        samples
    end
  end
  else begin
    let cfg, finish = configure_run spec timing trace_path want_metrics in
    let verdict =
      Serve.Api.run_consensus ~cfg ~pipeline ~graph:g ~f:spec.f ~faulty ()
    in
    let obs_fields, metrics = finish () in
    if json then
      print_report ~kind:"run"
        (Serve.Api.run_payload ~pipeline ~seed:spec.seed ~extra:obs_fields
           verdict)
    else begin
      Format.printf "%s: %a@." pipeline Stellar_cup.Pipeline.pp_verdict
        verdict;
      Option.iter (Format.printf "%a@." Obs.Metrics.pp) metrics
    end
  end

let pipeline_term =
  Arg.(
    value
    & opt string "scp-sd"
    & info [ "pipeline" ] ~docv:"P"
        ~doc:"Consensus stack: scp-local (Theorem 2 strawman), scp-sd \
              (Corollary 2) or bftcup (baseline).")

let samples_term =
  Arg.(
    value & opt int 1
    & info [ "samples" ] ~docv:"N"
        ~doc:"Run $(docv) independent instances at seeds seed, seed+1, … \
              (a sweep); combine with --jobs to run them in parallel.")

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run one consensus instance end to end (with optional \
             structured trace and metrics), or a multi-seed sweep with \
             --samples/--jobs")
    Term.(
      const run_consensus $ graph_term $ faulty_term $ pipeline_term
      $ timing_term $ trace_term $ metrics_term $ samples_term $ jobs_term
      $ json_term)

(* ---- sink run ---------------------------------------------------------- *)

let run_sink spec faulty_ids timing trace_path want_metrics json =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  let cfg, finish = configure_run spec timing trace_path want_metrics in
  let r = Cup.Sink_protocol.run_cfg ~cfg ~graph:g ~f:spec.f ~fault_of () in
  let obs_fields, metrics = finish () in
  if json then begin
    let answers =
      List.filter_map
        (fun i ->
          Option.map
            (fun (a : Cup.Sink_oracle.answer) ->
              Obs.Json.Obj
                [
                  ("node", Obs.Json.Int i);
                  ("in_sink", Obs.Json.Bool a.in_sink);
                  ( "view",
                    Obs.Json.List
                      (List.map
                         (fun j -> Obs.Json.Int j)
                         (Pid.Set.elements a.view)) );
                ])
            (Pid.Map.find_opt i r.answers))
        (Pid.Set.elements (Digraph.vertices g))
    in
    print_json
      (Obs.Json.Obj
         (("messages", Obs.Json.Int r.stats.messages_sent)
          :: ("ticks", Obs.Json.Int r.stats.end_time)
          :: ("answers", Obs.Json.List answers)
          :: obs_fields))
  end
  else begin
    Format.printf "messages: %d, simulated ticks: %d@." r.stats.messages_sent
      r.stats.end_time;
    Pid.Set.iter
      (fun i ->
        match Pid.Map.find_opt i r.answers with
        | Some (a : Cup.Sink_oracle.answer) ->
            Format.printf "%d: get_sink -> (%b, %a)@." i a.in_sink Pid.Set.pp
              a.view
        | None ->
            if Pid.Set.mem i faulty then Format.printf "%d: (faulty)@." i
            else Format.printf "%d: no answer@." i)
      (Digraph.vertices g);
    Option.iter (Format.printf "%a@." Obs.Metrics.pp) metrics
  end

let sink_run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run the distributed sink detector (Algorithm 3)")
    Term.(
      const run_sink $ graph_term $ faulty_term $ timing_term $ trace_term
      $ metrics_term $ json_term)

let sink_cmd =
  Cmd.group
    (Cmd.info "sink" ~doc:"Sink-detector operations")
    [ sink_run_cmd ]

(* ---- graph analyze ----------------------------------------------------- *)

let analyze spec faulty_ids json =
  let g = build_graph spec in
  let f = spec.f in
  let faulty = Pid.Set.of_list faulty_ids in
  let sccs = Scc.components g in
  let sink = Condensation.unique_sink g in
  let osr_ks = [ 1; f + 1; (2 * f) + 1 ] in
  if json then begin
    let pid_list s =
      Obs.Json.List (List.map (fun i -> Obs.Json.Int i) (Pid.Set.elements s))
    in
    let fields =
      [
        ("vertices", pid_list (Digraph.vertices g));
        ("sccs", Obs.Json.List (List.map pid_list sccs));
        ("sink", Option.fold ~none:Obs.Json.Null ~some:pid_list sink);
        ( "k_osr",
          Obs.Json.Obj
            (List.map
               (fun k ->
                 (string_of_int k, Obs.Json.Bool (Properties.is_k_osr g k)))
               osr_ks) );
      ]
      @
      if Pid.Set.is_empty faulty then []
      else
        [
          ("faulty", pid_list faulty);
          ( "byzantine_safe",
            Obs.Json.Bool (Properties.is_byzantine_safe g ~f ~faulty) );
          ("solvable", Obs.Json.Bool (Properties.solvable g ~f ~faulty));
        ]
    in
    print_json (Obs.Json.Obj fields)
  end
  else begin
    Format.printf "knowledge graph:@.%a@." Digraph.pp g;
    Format.printf "%a@." Metrics.pp (Metrics.compute g);
    List.iteri
      (fun i c -> Format.printf "scc %d: %a@." i Pid.Set.pp c)
      sccs;
    (match sink with
    | Some sink ->
        Format.printf "unique sink component: %a@." Pid.Set.pp sink;
        Format.printf "sink connectivity: %d@."
          (Connectivity.vertex_connectivity (Digraph.subgraph sink g))
    | None -> Format.printf "no unique sink component@.");
    List.iter
      (fun k ->
        match Properties.check_k_osr g k with
        | Ok _ -> Format.printf "%d-OSR: yes@." k
        | Error e ->
            Format.printf "%d-OSR: no (%a)@." k Properties.pp_osr_failure e)
      osr_ks;
    if not (Pid.Set.is_empty faulty) then begin
      Format.printf "F = %a@." Pid.Set.pp faulty;
      Format.printf "byzantine-safe for F: %b@."
        (Properties.is_byzantine_safe g ~f ~faulty);
      Format.printf "solvable (Theorem 1): %b@."
        (Properties.solvable g ~f ~faulty)
    end
  end

let graph_analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyse a knowledge-connectivity graph")
    Term.(const analyze $ graph_term $ faulty_term $ json_term)

(* ---- graph render ------------------------------------------------------ *)

let render spec faulty_ids output json =
  let g = build_graph spec in
  let faulty = Pid.Set.of_list faulty_ids in
  let highlight =
    Option.value ~default:Pid.Set.empty (Condensation.unique_sink g)
  in
  let dot = Dot.to_dot ~highlight ~faulty g in
  if json then
    print_json
      (Obs.Json.Obj
         [
           ("dot", Obs.Json.String dot);
           ( "output",
             if output = "-" then Obs.Json.Null else Obs.Json.String output );
         ])
  else ();
  match output with
  | "-" -> if not json then print_string dot
  | path ->
      Dot.to_file ~highlight ~faulty path g;
      if not json then Format.printf "wrote %s@." path

let graph_render_cmd =
  let output =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output path ('-': stdout).")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Emit a Graphviz rendering")
    Term.(const render $ graph_term $ faulty_term $ output $ json_term)

let graph_cmd =
  Cmd.group
    (Cmd.info "graph" ~doc:"Knowledge-graph operations")
    [ graph_analyze_cmd; graph_render_cmd ]

(* ---- experiment -------------------------------------------------------- *)

let experiments : (string * (jobs:int -> Stellar_cup.Report.t)) list =
  [
    ("e1", fun ~jobs:_ -> Stellar_cup.Experiments.e1_fig1_example ());
    ("e2", fun ~jobs:_ -> Stellar_cup.Experiments.e2_is_quorum ());
    ("e3", fun ~jobs -> Stellar_cup.Experiments.e3_theorem2_violation ~jobs ());
    ( "e4",
      fun ~jobs -> Stellar_cup.Experiments.e4_algorithm2_intertwined ~jobs ()
    );
    ("e4b", fun ~jobs:_ -> Stellar_cup.Experiments.e4b_threshold_ablation ());
    ("e5", fun ~jobs -> Stellar_cup.Experiments.e5_availability ~jobs ());
    ("e6", fun ~jobs -> Stellar_cup.Experiments.e6_sink_detector ~jobs ());
    ( "e7",
      fun ~jobs -> Stellar_cup.Experiments.e7_reachable_broadcast ~jobs () );
    ("e8", fun ~jobs -> Stellar_cup.Experiments.e8_pipelines ~jobs ());
    ("e9", fun ~jobs:_ -> Stellar_cup.Experiments.e9_graph_machinery ());
    ( "e10",
      fun ~jobs -> Stellar_cup.Experiments.e10_restricted_oracle ~jobs () );
    ("e11", fun ~jobs -> Stellar_cup.Experiments.e11_gst_sweep ~jobs ());
    ( "e12",
      fun ~jobs -> Stellar_cup.Experiments.e12_nomination_ablation ~jobs () );
  ]

let experiment_show which markdown jobs json =
  let tables =
    match which with
    | "all" -> List.map (fun (_, k) -> k ~jobs) experiments
    | id -> (
        match List.assoc_opt id experiments with
        | Some k -> [ k ~jobs ]
        | None -> failwith (Printf.sprintf "unknown experiment %S" id))
  in
  if json then
    print_json
      (Obs.Json.List (List.map Stellar_cup.Report.to_json tables))
  else if markdown then
    List.iter (fun t -> print_string (Stellar_cup.Report.to_markdown t)) tables
  else List.iter Stellar_cup.Report.print tables

let experiment_list json =
  if json then
    print_json
      (Obs.Json.List
         (List.map (fun (id, _) -> Obs.Json.String id) experiments))
  else List.iter (fun (id, _) -> print_endline id) experiments

let experiment_show_cmd =
  let which =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (e1..e12, e4b) or 'all'.")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit Markdown tables.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Regenerate a paper artifact")
    Term.(const experiment_show $ which $ markdown $ jobs_term $ json_term)

let experiment_list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List available experiment ids")
    Term.(const experiment_list $ json_term)

let experiment_cmd =
  Cmd.group
    (Cmd.info "experiment" ~doc:"Paper-artifact experiments")
    [ experiment_show_cmd; experiment_list_cmd ]

(* ---- fbas -------------------------------------------------------------- *)

let load_system path =
  match Fbqs.Fbas_io.of_file path with
  | Ok sys -> sys
  | Error e -> failwith (Printf.sprintf "cannot read %s: %s" path e)

let fbas_analyze file despite_ids blocking splitting max_size cap want_metrics
    jobs json =
  let sys = load_system file in
  let opts =
    {
      Serve.Api.despite = despite_ids;
      blocking;
      splitting;
      max_size;
      cap;
      metrics = want_metrics;
      jobs = max 1 jobs;
    }
  in
  let a = Serve.Api.analyze opts sys in
  if json then
    print_report ~kind:"fbas-analysis" (Serve.Api.analysis_payload opts a)
  else begin
    Format.printf "participants: %d@." (Pid.Set.cardinal a.participants);
    (match a.minimal_quorums with
    | [] -> Format.printf "minimal quorums: none@."
    | minq ->
        Format.printf "minimal quorums: %d (sizes %d..%d)@."
          (List.length minq)
          (List.fold_left min max_int (List.map Pid.Set.cardinal minq))
          (List.fold_left max 0 (List.map Pid.Set.cardinal minq)));
    Format.printf "top tier: %a@." Pid.Set.pp a.top_tier;
    (match a.intersection with
    | Fbqs.Enum.Intersects -> Format.printf "quorum intersection: yes@."
    | Fbqs.Enum.Disjoint (q1, q2) ->
        Format.printf "quorum intersection: NO — disjoint %a / %a@." Pid.Set.pp
          q1 Pid.Set.pp q2);
    (match a.blocking_sets with
    | None -> ()
    | Some { Fbqs.Enum.sets; complete } ->
        Format.printf "minimal blocking sets: %d%s@." (List.length sets)
          (if complete then "" else " (truncated)"));
    (match a.splitting_sets with
    | None -> ()
    | Some sets ->
        Format.printf "minimal splitting sets: %d%s@." (List.length sets)
          (match max_size with
          | Some k -> Printf.sprintf " (up to size %d)" k
          | None -> ""));
    List.iter
      (fun (b, ok) ->
        Format.printf "intersection despite %a: %b@." Pid.Set.pp b ok)
      a.despite_checks;
    Format.printf "search: explored=%d pruned=%d quorums_found=%d@."
      a.search.Fbqs.Enum.explored a.search.Fbqs.Enum.pruned
      a.search.Fbqs.Enum.found;
    Option.iter (Format.printf "%a@." Obs.Metrics.pp) a.registry
  end

let fbas_file_term =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Slice system in stellar-cup fbas v1 format.")

let fbas_analyze_cmd =
  let despite =
    Arg.(
      value
      & opt_all (list int) []
      & info [ "despite" ] ~docv:"IDS"
          ~doc:"Also check quorum intersection despite deleting the \
                comma-separated node set $(docv) (repeatable).")
  in
  let blocking =
    Arg.(
      value & flag
      & info [ "blocking" ]
          ~doc:"Also enumerate minimal blocking sets (minimal hitting sets \
                of the minimal quorums).")
  in
  let splitting =
    Arg.(
      value & flag
      & info [ "splitting" ]
          ~doc:"Also enumerate minimal splitting sets over the top tier \
                (exponential in the top-tier size; see --max-size).")
  in
  let max_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-size" ] ~docv:"N"
          ~doc:"Bound the splitting-set sweep at candidate size $(docv).")
  in
  let cap =
    Arg.(
      value & opt int 64
      & info [ "limit" ] ~docv:"N"
          ~doc:"List at most $(docv) sets per family in reports (counts \
                stay exact).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyse a federated Byzantine quorum system: minimal quorums, \
             quorum intersection, top tier, blocking and splitting sets, \
             by branch-and-bound enumeration")
    Term.(
      const fbas_analyze $ fbas_file_term $ despite $ blocking $ splitting
      $ max_size $ cap $ metrics_term $ jobs_term $ json_term)

let fbas_gen output orgs vpo mid leaves seed json =
  let sys =
    Fbqs.Topology.stellarbeat_like ~orgs ~validators_per_org:vpo ~mid ~leaves
      ~seed ()
  in
  let text = Fbqs.Fbas_io.to_string sys in
  (match output with
  | "-" -> print_string text
  | path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc);
  if json then
    print_json
      (Obs.Json.Obj
         [
           ( "participants",
             Obs.Json.Int (Pid.Set.cardinal (Fbqs.Quorum.participants sys)) );
           ( "output",
             if output = "-" then Obs.Json.Null else Obs.Json.String output );
         ])
  else if output <> "-" then
    Format.printf "wrote %d nodes to %s@."
      (Pid.Set.cardinal (Fbqs.Quorum.participants sys))
      output

let fbas_gen_cmd =
  let output =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output path ('-': stdout).")
  in
  let orgs =
    Arg.(
      value & opt int 7
      & info [ "orgs" ] ~docv:"N" ~doc:"Top-tier organisations.")
  in
  let vpo =
    Arg.(
      value & opt int 3
      & info [ "validators-per-org" ] ~docv:"N"
          ~doc:"Validators per organisation.")
  in
  let mid =
    Arg.(
      value & opt int 63
      & info [ "mid" ] ~docv:"N" ~doc:"Middle-tier nodes.")
  in
  let leaves =
    Arg.(
      value & opt int 126
      & info [ "leaves" ] ~docv:"N" ~doc:"Watcher (leaf) nodes.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Deterministic generator seed (same seed, same bytes, on \
                every OCaml version).")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a deterministic live-network-shaped slice system \
             (stellarbeat-like three-tier topology)")
    Term.(
      const fbas_gen $ output $ orgs $ vpo $ mid $ leaves $ seed $ json_term)

let fbas_cmd =
  Cmd.group
    (Cmd.info "fbas" ~doc:"Federated Byzantine quorum-system analysis")
    [ fbas_analyze_cmd; fbas_gen_cmd ]

(* ---- serve ------------------------------------------------------------- *)

let serve stdio socket cache_capacity jobs max_clients =
  let daemon = Serve.Daemon.create ?cache_capacity ~jobs:(max 1 jobs) () in
  match (stdio, socket) with
  | true, Some _ -> failwith "--stdio and --socket are mutually exclusive"
  | true, None | false, None -> Serve.Daemon.serve_stdio daemon
  | false, Some path ->
      Format.eprintf "stellar-cup serve: listening on %s@." path;
      Serve.Daemon.serve_unix ~max_clients daemon ~path

let serve_cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve requests from stdin to stdout (the default transport; \
                the form CI pipes a session file through).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket at $(docv), serving up to \
                --max-clients connections concurrently, until a client \
                sends the shutdown verb.")
  in
  let cache_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Capacity of the response cache and the shared \
                compiled-handle caches (default: \
                \\$STELLAR_CUP_CACHE_CAPACITY if set, else 64).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N" ~env:jobs_env
          ~doc:"Default Enum parallelism for analyze requests (a request's \
                own jobs field overrides it). Payloads are byte-identical \
                at every jobs count.")
  in
  let max_clients =
    Arg.(
      value
      & opt int Serve.Daemon.default_max_clients
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Socket connections served concurrently (--socket only; the \
                stdio transport stays strictly sequential).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis service daemon: newline-delimited JSON \
             requests (ping, version, analyze, run, stats, shutdown) in, \
             versioned report envelopes out, with shared compiled-handle \
             caches and one persistent worker pool across requests and \
             clients")
    Term.(const serve $ stdio $ socket $ cache_capacity $ jobs $ max_clients)

(* ---- command wiring ---------------------------------------------------- *)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "stellar-cup" ~version:"1.0.0"
      ~doc:
        "Stellar consensus with minimal knowledge (ICDCS 2023 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ run_cmd; sink_cmd; graph_cmd; experiment_cmd; fbas_cmd; serve_cmd ]))
