lib/graph/traversal.mli: Digraph Pid
