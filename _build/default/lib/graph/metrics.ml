type t = {
  vertices : int;
  edges : int;
  min_out_degree : int;
  max_out_degree : int;
  avg_out_degree : float;
  min_in_degree : int;
  max_in_degree : int;
  density : float;
  diameter : int option;
  scc_count : int;
  sink_size : int option;
}

let compute g =
  let vs = Pid.Set.elements (Digraph.vertices g) in
  let n = List.length vs in
  let m = Digraph.n_edges g in
  let fold_deg deg =
    List.fold_left
      (fun (mn, mx, total) v ->
        let d = Pid.Set.cardinal (deg v) in
        (min mn d, max mx d, total + d))
      (max_int, 0, 0) vs
  in
  let out_mn, out_mx, out_total = fold_deg (Digraph.succs g) in
  let in_mn, in_mx, _ = fold_deg (Digraph.preds g) in
  let diameter =
    if n < 2 then None
    else
      Some
        (List.fold_left
           (fun acc v ->
             match Traversal.eccentricity g v with
             | Some e -> max acc e
             | None -> acc)
           0 vs)
  in
  {
    vertices = n;
    edges = m;
    min_out_degree = (if n = 0 then 0 else out_mn);
    max_out_degree = out_mx;
    avg_out_degree = (if n = 0 then 0. else float_of_int out_total /. float_of_int n);
    min_in_degree = (if n = 0 then 0 else in_mn);
    max_in_degree = in_mx;
    density =
      (if n <= 1 then 0. else float_of_int m /. float_of_int (n * (n - 1)));
    diameter;
    scc_count = List.length (Scc.components g);
    sink_size = Option.map Pid.Set.cardinal (Condensation.unique_sink g);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>vertices: %d@,edges: %d@,out-degree: %d..%d (avg %.2f)@,\
     in-degree: %d..%d@,density: %.3f@,diameter: %s@,sccs: %d@,sink size: %s@]"
    t.vertices t.edges t.min_out_degree t.max_out_degree t.avg_out_degree
    t.min_in_degree t.max_in_degree t.density
    (match t.diameter with Some d -> string_of_int d | None -> "-")
    t.scc_count
    (match t.sink_size with Some s -> string_of_int s | None -> "no unique sink")
