(* The Fig. 1 / Fig. 2 reconstructions, validated against everything the
   paper's text and captions state about them. *)

open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_fig1_pd_table () =
  (* "PD_i shows the information provided by its participant detector":
     PD_1 = {2,5} per the caption's example, and §III-D fixes the union
     of each correct process's slices to be exactly Π_i. *)
  Alcotest.check pid_set "PD_1" (set [ 2; 5 ]) (Digraph.succs Builtin.fig1 1);
  List.iter
    (fun (i, slices) ->
      let union = List.fold_left Pid.Set.union Pid.Set.empty slices in
      Alcotest.check pid_set
        (Printf.sprintf "union of S_%d = PD_%d" i i)
        (Digraph.succs Builtin.fig1 i)
        union)
    Builtin.fig1_slices

let test_fig1_sink_is_5678 () =
  (* "Participants 5, 6, 7, and 8 form the sink component." *)
  Alcotest.check pid_set "sink" (set [ 5; 6; 7; 8 ])
    (Properties.sink_of_exn Builtin.fig1);
  (* the sink is one SCC *)
  Alcotest.(check bool) "sink strongly connected" true
    (Scc.is_strongly_connected
       (Digraph.subgraph Builtin.fig1_sink Builtin.fig1))

let test_fig1_w_and_f () =
  (* §III-D: "we assume that W = {1,...,7} and F = {8}". *)
  Alcotest.check pid_set "F" (set [ 8 ]) Builtin.fig1_faulty;
  Alcotest.(check bool) "8 declares no slices" true
    (not (List.mem_assoc 8 Builtin.fig1_slices))

let test_fig2_caption_claims () =
  (* "A knowledge connectivity graph satisfying 3-OSR PD definition.
     The dashed areas are two quorums, each formed by locally defined
     slices using PD and f." + proof text: V_sink = {1,2,3,4}, f = 1,
     2f+1 = 3 correct sink members whatever the faulty process is, and
     f+1 = 2 disjoint paths between the relevant pairs. *)
  let g = Builtin.fig2 in
  Alcotest.(check bool) "3-OSR" true (Properties.is_k_osr g 3);
  Alcotest.check pid_set "V_sink" (set [ 1; 2; 3; 4 ]) Builtin.fig2_sink;
  (* whoever is faulty, at least 3 correct sink members remain *)
  Pid.Set.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "2f+1 correct sink members with F={%d}" v)
        true
        (Pid.Set.cardinal (Pid.Set.remove v Builtin.fig2_sink) >= 3))
    (Digraph.vertices g);
  (* f+1 node-disjoint paths from any correct non-sink member to any
     correct sink member, and between correct sink members, for every
     choice of the single faulty process *)
  Pid.Set.iter
    (fun faulty ->
      let correct = Pid.Set.remove faulty (Digraph.vertices g) in
      Pid.Set.iter
        (fun i ->
          Pid.Set.iter
            (fun j ->
              if (not (Pid.equal i j)) && Pid.Set.mem j Builtin.fig2_sink
              then
                Alcotest.(check bool)
                  (Printf.sprintf "F={%d}: %d f-reaches %d" faulty i j)
                  true
                  (Connectivity.f_reachable g ~correct 1 i j))
            correct)
        correct)
    (Digraph.vertices g)

let test_fig2_family_matches_fig2 () =
  (* Builtin.fig2 is fig2_family ~sink_size:4 ~non_sink:3 up to the
     vertex renaming i -> i+1 (family counts from 0). *)
  let family = Generators.fig2_family ~sink_size:4 ~non_sink:3 in
  let renamed =
    Digraph.fold_edges
      (fun i j g -> Digraph.add_edge (i + 1) (j + 1) g)
      family Digraph.empty
  in
  (* Not necessarily edge-identical (the family wires non-sink k to
     sink member k mod 4; fig2 wires 5->1, 6->2, 7->3) — but it is
     here, by construction. *)
  Alcotest.(check bool) "same graph" true (Digraph.equal renamed Builtin.fig2)

let suites =
  [
    ( "builtin",
      [
        Alcotest.test_case "fig1 PD table and slice unions" `Quick
          test_fig1_pd_table;
        Alcotest.test_case "fig1 sink = {5,6,7,8}" `Quick
          test_fig1_sink_is_5678;
        Alcotest.test_case "fig1 W and F" `Quick test_fig1_w_and_f;
        Alcotest.test_case "fig2 caption claims" `Quick
          test_fig2_caption_claims;
        Alcotest.test_case "fig2 = family(4,3)" `Quick
          test_fig2_family_matches_fig2;
      ] );
  ]
