(** Ballots of the SCP ballot protocol: a counter paired with a value,
    totally ordered lexicographically. *)

type t = { counter : int; value : Value.t }

val make : int -> Value.t -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val compatible : t -> t -> bool
(** Two ballots are compatible when they carry the same value;
    preparing a ballot aborts every lower {e incompatible} ballot. *)

val less_and_incompatible : t -> t -> bool
(** [less_and_incompatible b b'] holds when [b < b'] and they are
    incompatible — the ballots that voting [prepare b'] aborts. *)

val pp : Format.formatter -> t -> unit
