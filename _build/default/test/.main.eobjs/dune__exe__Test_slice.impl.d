test/test_slice.ml: Alcotest Fbqs Format Graphkit List Pid QCheck QCheck_alcotest Slice
