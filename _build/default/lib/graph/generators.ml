let circulant ~n ~k =
  let g = ref Digraph.empty in
  for i = 0 to n - 1 do
    g := Digraph.add_vertex i !g;
    for d = 1 to k do
      g := Digraph.add_edge i ((i + d) mod n) !g
    done
  done;
  !g

let complete ~n =
  let g = ref Digraph.empty in
  for i = 0 to n - 1 do
    g := Digraph.add_vertex i !g;
    for j = 0 to n - 1 do
      if i <> j then g := Digraph.add_edge i j !g
    done
  done;
  !g

(* Draw [k] distinct elements of [pool] (an array) uniformly without
   replacement, by partial Fisher-Yates on a scratch copy. *)
let sample_distinct rng k pool =
  let a = Array.copy pool in
  let n = Array.length a in
  assert (k <= n);
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list (Array.sub a 0 k)

let random_k_osr ?(extra_edge_prob = 0.3) ~seed ~sink_size ~non_sink ~k () =
  if k < 1 then invalid_arg "random_k_osr: k must be positive";
  if sink_size <= k then invalid_arg "random_k_osr: sink_size must exceed k";
  let rng = Random.State.make [| seed; 0x6f5; sink_size; non_sink; k |] in
  let g = ref (circulant ~n:sink_size ~k) in
  (* Densify the sink with random chords; chords can only increase
     connectivity. *)
  for i = 0 to sink_size - 1 do
    for j = 0 to sink_size - 1 do
      if i <> j && Random.State.float rng 1.0 < extra_edge_prob /. 2.0 then
        g := Digraph.add_edge i j !g
    done
  done;
  let sink_pool = Array.init sink_size (fun i -> i) in
  for v = sink_size to sink_size + non_sink - 1 do
    List.iter
      (fun s -> g := Digraph.add_edge v s !g)
      (sample_distinct rng k sink_pool);
    (* Extra knowledge of earlier non-sink vertices. *)
    for w = sink_size to v - 1 do
      if Random.State.float rng 1.0 < extra_edge_prob then
        g := Digraph.add_edge v w !g
    done
  done;
  !g

let random_byzantine_safe ?(extra_edge_prob = 0.3) ~seed ~f ~sink_size
    ~non_sink () =
  let k = (2 * f) + 1 in
  if sink_size < (3 * f) + 2 then
    invalid_arg "random_byzantine_safe: sink_size must be at least 3f + 2";
  let g = random_k_osr ~extra_edge_prob ~seed ~sink_size ~non_sink ~k () in
  (g, Pid.Set.of_range 0 (sink_size - 1))

let random_faulty_set ~seed ~f ?within g =
  let pool =
    match within with
    | Some s -> s
    | None -> Digraph.vertices g
  in
  let rng = Random.State.make [| seed; 0xfa17 |] in
  let arr = Array.of_list (Pid.Set.elements pool) in
  let f = min f (Array.length arr) in
  Pid.Set.of_list (sample_distinct rng f arr)

let fig2_family ~sink_size ~non_sink =
  let g = ref (complete ~n:sink_size) in
  for i = 0 to non_sink - 1 do
    let v = sink_size + i in
    for j = 0 to non_sink - 1 do
      if i <> j then g := Digraph.add_edge v (sink_size + j) !g
    done;
    g := Digraph.add_edge v (i mod sink_size) !g
  done;
  !g

let layered_k_osr ~seed ~sink_size ~layers ~layer_width ~k () =
  if layer_width < k then invalid_arg "layered_k_osr: layer_width < k";
  if sink_size <= k then invalid_arg "layered_k_osr: sink_size <= k";
  let attempt seed =
    let rng = Random.State.make [| seed; 0x1a7e |] in
    let g = ref (circulant ~n:sink_size ~k) in
    (* Layer 0 is the sink itself; layer l >= 1 holds non-sink
       vertices that point at k distinct members of layer l-1. *)
    let layer_vertices l =
      if l = 0 then Array.init sink_size (fun i -> i)
      else
        Array.init layer_width (fun i ->
            sink_size + ((l - 1) * layer_width) + i)
    in
    for l = 1 to layers do
      let below = layer_vertices (l - 1) in
      Array.iter
        (fun v ->
          List.iter
            (fun w -> g := Digraph.add_edge v w !g)
            (sample_distinct rng k below))
        (layer_vertices l)
    done;
    !g
  in
  let rec search seed budget =
    let g = attempt seed in
    if budget = 0 || Properties.is_k_osr g k then g
    else search (seed + 1) (budget - 1)
  in
  search seed 64
