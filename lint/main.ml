(* stellar-lint driver: walk the tree, run the rules, apply the
   baseline, report (optionally as JSON) and gate with the exit code.

   Usage: dune exec lint/main.exe -- [--root DIR] [--json FILE]
            [--baseline FILE] [paths...]

   With no positional paths it scans lib/ bin/ bench/ test/ lint/
   under the root, skipping _build, hidden directories and the lint
   fixture corpus (whose files violate the rules on purpose). *)

let default_dirs = [ "lib"; "bin"; "bench"; "test"; "lint" ]
let skip_dir name = name = "_build" || name = "lint_fixtures" || name.[0] = '.'

let rec walk acc path rel =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else
          walk acc (Filename.concat path entry)
            (if rel = "" then entry else rel ^ "/" ^ entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then (rel, path) :: acc
  else acc

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
              let line = String.trim line in
              if line = "" || line.[0] = '#' then go acc else go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

let finding_json status f =
  Obs.Json.Obj
    [
      ("file", Obs.Json.String f.Lint_core.file);
      ("line", Obs.Json.Int f.Lint_core.line);
      ("col", Obs.Json.Int f.Lint_core.col);
      ("rule", Obs.Json.String f.Lint_core.rule);
      ("message", Obs.Json.String f.Lint_core.message);
      ("status", Obs.Json.String status);
    ]

let () =
  let root = ref "." in
  let json = ref None in
  let baseline = ref None in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default .)");
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write a JSON report (- for stdout)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE baseline file (default ROOT/lint/baseline.txt)" );
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "stellar-lint [options] [paths...]";
  let scan = match !paths with [] -> default_dirs | ps -> List.rev ps in
  let files =
    List.concat_map
      (fun dir ->
        let path = Filename.concat !root dir in
        if Sys.file_exists path then walk [] path dir else [])
      scan
    |> List.sort compare
  in
  let reports =
    List.map (fun (rel, path) -> Lint_core.lint_source ~rel path) files
  in
  let rels = List.map fst files in
  let m1 =
    Lint_core.rule_m1
      ~ml_files:(List.filter (fun f -> Filename.check_suffix f ".ml") rels)
      ~mli_files:(List.filter (fun f -> Filename.check_suffix f ".mli") rels)
  in
  let active =
    List.sort Lint_core.compare_finding
      (m1 @ List.concat_map (fun r -> r.Lint_core.active) reports)
  in
  let suppressed =
    List.sort Lint_core.compare_finding
      (List.concat_map (fun r -> r.Lint_core.suppressed) reports)
  in
  let baseline_path =
    match !baseline with
    | Some p -> p
    | None -> Filename.concat !root "lint/baseline.txt"
  in
  let baseline_entries = load_baseline baseline_path in
  let baselined, gating =
    List.partition
      (fun f -> List.mem (Lint_core.baseline_key f) baseline_entries)
      active
  in
  List.iter (fun f -> print_endline (Lint_core.to_string f)) gating;
  Printf.printf
    "stellar-lint: %d files, %d findings (%d suppressed, %d baselined), %d \
     gating\n"
    (List.length files)
    (List.length active + List.length suppressed)
    (List.length suppressed) (List.length baselined) (List.length gating);
  (match !json with
  | None -> ()
  | Some out ->
      let doc =
        Obs.Json.Obj
          [
            ("version", Obs.Json.Int 1);
            ("files_scanned", Obs.Json.Int (List.length files));
            ( "findings",
              Obs.Json.List
                (List.map (finding_json "gating") gating
                @ List.map (finding_json "baselined") baselined
                @ List.map (finding_json "suppressed") suppressed) );
            ( "summary",
              Obs.Json.Obj
                [
                  ("gating", Obs.Json.Int (List.length gating));
                  ("baselined", Obs.Json.Int (List.length baselined));
                  ("suppressed", Obs.Json.Int (List.length suppressed));
                ] );
          ]
      in
      let s = Obs.Json.to_string doc ^ "\n" in
      if out = "-" then print_string s
      else begin
        let oc = open_out out in
        output_string oc s;
        close_out oc
      end);
  if gating <> [] then exit 1
