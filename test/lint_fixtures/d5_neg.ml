(* Fixture: integer formats are fine in obs. *)
let render n = Printf.sprintf "%d/%s" n "units"
