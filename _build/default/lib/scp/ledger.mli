(** A replicated ledger: consecutive SCP consensus instances.

    The paper analyses a single consensus instance; real Stellar closes
    a ledger by running one instance per slot. This layer drives a
    sequence of slots, each with its own transaction batch, and checks
    cross-replica consistency of the resulting ledgers — the natural
    "are we actually building a blockchain" integration test for the
    whole stack. Slots are independent executions over the same slice
    system (the membership is static per the paper's model). *)

open Graphkit

type entry = { slot : int; value : Value.t; decided_at : int }

val pp_entry : Format.formatter -> entry -> unit

type result = {
  ledgers : entry list Pid.Map.t;
      (** per correct node, in slot order; a node's list may be shorter
          than [slots] if some instance timed out *)
  consistent : bool;
      (** for every slot, all nodes that closed it agree on its value *)
  complete : bool;  (** every correct node closed every slot *)
  total_messages : int;
  total_ticks : int;
}

val run :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time_per_slot:int ->
  ?ballot_timeout:int ->
  slots:int ->
  system:Fbqs.Quorum.system ->
  peers_of:(Pid.t -> Pid.Set.t) ->
  tx_pool:(int -> Pid.t -> Value.t) ->
  fault_of:(Pid.t -> Runner.fault option) ->
  unit ->
  result
(** [tx_pool slot node] is the transaction batch [node] proposes for
    [slot]. Each slot runs under a fresh partial-synchrony schedule
    derived from [seed] and the slot number. *)
