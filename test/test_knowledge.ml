open Graphkit
open Cup

(* Drive Knowledge state machines by hand over an in-memory "network"
   that synchronously forwards every sent message, so the fixpoint logic
   is tested independently of the simulator. *)

type net = {
  machines : (Pid.t, Knowledge.t) Hashtbl.t;
  queue : (Pid.t * Pid.t * Msg.t) Queue.t;  (* src, dst, message *)
}

let make_net graph ~f pids =
  let net = { machines = Hashtbl.create 8; queue = Queue.create () } in
  List.iter
    (fun i ->
      Hashtbl.replace net.machines i
        (Knowledge.create ~self:i ~pd:(Digraph.succs graph i) ~f))
    pids;
  net

let sender net src dst m = Queue.add (src, dst, m) net.queue

let drain net =
  while not (Queue.is_empty net.queue) do
    let src, dst, m = Queue.pop net.queue in
    match Hashtbl.find_opt net.machines dst with
    | None -> () (* silent / faulty destination *)
    | Some k -> (
        let send = sender net dst in
        match m with
        | Msg.Know_request -> Knowledge.on_know_request k ~send ~src
        | Msg.Know view -> Knowledge.on_know k ~send ~src view
        | Msg.Get_sink _ | Msg.Sink_reply _ -> ())
  done

let start_all net =
  (* Knowledge joins are commutative and [drain] runs to quiescence,
     so start order cannot affect the fixpoint. lint: allow D1 *)
  Hashtbl.iter
    (fun i k -> Knowledge.start k ~send:(sender net i))
    net.machines;
  drain net

let machine net i = Hashtbl.find net.machines i

let test_sink_members_converge_fig1 () =
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig1) in
  let net = make_net Builtin.fig1 ~f:1 pids in
  start_all net;
  (* Every sink member of fig1 discovers exactly V_sink and declares. *)
  Pid.Set.iter
    (fun i ->
      match Knowledge.sink_result (machine net i) with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "%d returns V_sink" i)
            true
            (Pid.Set.equal v Builtin.fig1_sink)
      | None -> Alcotest.failf "sink member %d did not terminate" i)
    Builtin.fig1_sink

let test_non_sink_members_never_declare () =
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig1) in
  let net = make_net Builtin.fig1 ~f:1 pids in
  start_all net;
  Pid.Set.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "non-sink %d undeclared" i)
        true
        (Option.is_none (Knowledge.sink_result (machine net i))))
    (Pid.Set.diff (Digraph.vertices Builtin.fig1) Builtin.fig1_sink)

let test_non_sink_vouching_is_conservative () =
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig1) in
  let net = make_net Builtin.fig1 ~f:1 pids in
  start_all net;
  (* With f = 1 the voucher rule admits an id only on 2 distinct
     first-or-second-hand claims. In fig1, process 4 is claimed only by
     process 2, so process 1's knowledge deliberately stalls at
     {1,2,5}: under-approximating is what keeps the termination test
     safe against fabricated ids. Process 1 learns the sink through
     GET_SINK replies instead (Algorithm 3). *)
  Alcotest.(check bool) "1's vouched knowledge" true
    (Pid.Set.equal
       (Knowledge.known (machine net 1))
       (Pid.Set.of_list [ 1; 2; 5 ]))

let test_silent_faulty_sink_member () =
  (* Fig. 2 sink {1,2,3,4} is a complete digraph (k = 3 >= f+1 = 2
     correct vouchers for everyone): with 4 silent, the correct sink
     members still converge to the full sink and terminate. *)
  let pids = [ 1; 2; 3; 5; 6; 7 ] (* 4 is silent: no machine *) in
  let net = make_net Builtin.fig2 ~f:1 pids in
  start_all net;
  List.iter
    (fun i ->
      match Knowledge.sink_result (machine net i) with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "%d converges to full sink despite silence" i)
            true
            (Pid.Set.equal v Builtin.fig2_sink)
      | None -> Alcotest.failf "sink member %d did not terminate" i)
    [ 1; 2; 3 ]

let test_fabricated_ids_filtered () =
  (* A liar claims a fantasy id 99; fewer than f+1 vouchers means no
     correct machine ever admits it. *)
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig2) in
  let net = make_net Builtin.fig2 ~f:1 pids in
  (* Seed the lie: 4 claims {99} along with a real view. *)
  start_all net;
  let lie = Pid.Set.add 99 Builtin.fig2_sink in
  (* Same argument as [start_all]: commutative joins drained to
     quiescence. lint: allow D1 *)
  Hashtbl.iter
    (fun i k ->
      if i <> 4 then
        Knowledge.on_know k ~send:(sender net i) ~src:4 lie)
    net.machines;
  drain net;
  Hashtbl.iter
    (fun i k ->
      Alcotest.(check bool)
        (Printf.sprintf "99 not known by %d" i)
        false
        (Pid.Set.mem 99 (Knowledge.known k)))
    net.machines

let prop_sink_detection_on_random_graphs =
  QCheck.Test.make ~count:25
    ~name:"SINK terminates exactly at sink members (fault-free)"
    QCheck.(pair (int_bound 500) (int_range 1 2))
    (fun (seed, f) ->
      let sink_size = (3 * f) + 2 in
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size ~non_sink:4 ()
      in
      let pids = Pid.Set.elements (Digraph.vertices g) in
      let net = make_net g ~f pids in
      start_all net;
      List.for_all
        (fun i ->
          match Knowledge.sink_result (machine net i) with
          | Some v -> Pid.Set.mem i sink && Pid.Set.equal v sink
          | None -> not (Pid.Set.mem i sink))
        pids)

let suites =
  [
    ( "knowledge",
      [
        Alcotest.test_case "fig1 sink members converge" `Quick
          test_sink_members_converge_fig1;
        Alcotest.test_case "non-sink members never declare" `Quick
          test_non_sink_members_never_declare;
        Alcotest.test_case "non-sink vouching is conservative" `Quick
          test_non_sink_vouching_is_conservative;
        Alcotest.test_case "silent faulty sink member tolerated" `Quick
          test_silent_faulty_sink_member;
        Alcotest.test_case "fabricated ids filtered" `Quick
          test_fabricated_ids_filtered;
        QCheck_alcotest.to_alcotest prop_sink_detection_on_random_graphs;
      ] );
  ]
