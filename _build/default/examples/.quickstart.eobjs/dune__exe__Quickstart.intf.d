examples/quickstart.mli:
