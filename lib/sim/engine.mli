(** The discrete-event simulation engine.

    Processes are event-driven state machines ({!type:behavior}): the
    engine delivers messages and timer expirations, the behaviour reacts
    by sending messages and arming timers through its {!type:ctx}
    handle. Channels are authenticated (the engine stamps the true
    sender), reliable (no loss or duplication) and point-to-point;
    delivery order follows the {!Delay} model, so reordering is the
    norm. All scheduling is deterministic given the delay model's
    seed.

    The engine is the bottom of the observability stack: given a
    metrics registry it counts sends, deliveries, drops and timer
    firings and tracks the event-queue depth; given a trace sink it
    emits one structured event per send, delivery, drop, timer and
    process start (scope ["engine"]), stamped with the logical clock. *)

open Graphkit

type 'm ctx
(** The handle a running process uses to interact with the world. *)

val self : 'm ctx -> Pid.t

val now : 'm ctx -> int

val send : 'm ctx -> Pid.t -> 'm -> unit
(** Sends a message; delivery is scheduled per the delay model. Sending
    to an unknown process id silently drops the message (it still counts
    as sent in the statistics, mirroring a real network where the
    destination address may be stale; the drop is counted at the
    scheduled delivery time). *)

val set_timer : 'm ctx -> delay:int -> string -> unit
(** Arms a one-shot timer; the tag is passed back to [on_timer].
    Timers cannot be cancelled — protocols ignore stale tags instead,
    as real implementations commonly do. *)

type 'm behavior = {
  on_start : 'm ctx -> unit;  (** invoked once at time 0 *)
  on_message : 'm ctx -> src:Pid.t -> 'm -> unit;
  on_timer : 'm ctx -> string -> unit;
}

val idle_behavior : 'm behavior
(** Reacts to nothing — a crashed-from-the-start (silent) process. *)

type stats = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
      (** sends whose destination was never registered *)
  timers_fired : int;
  end_time : int;  (** timestamp of the last processed event *)
  queue_high_water : int;
      (** maximum number of simultaneously pending events *)
  sent_by : int Pid.Map.t;
  sent_by_class : (string * int) list;
      (** per-class send counts when a [classify] function was given
          at creation; sorted by class name *)
}

type 'm t

val create :
  ?pp_msg:(Format.formatter -> 'm -> unit) ->
  ?classify:('m -> string) ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.sink ->
  ?max_time:int ->
  delay:Delay.t ->
  unit ->
  'm t
[@@deprecated "use create_cfg with a Run_config.t"]
(** [pp_msg] enables human-readable traces through [Logs] at debug
    level and, when a trace sink is attached, a rendered ["msg"] field
    on send/deliver events; [classify] enables per-message-class
    traffic accounting in {!type:stats}. [metrics] and [trace] attach
    the observability sinks; [max_time] sets the default time budget
    {!run} uses when not overridden (default [1_000_000]).
    @deprecated Use {!create_cfg}: the delay model, observability
    sinks and time budget all travel in one {!Run_config.t}. *)

val create_cfg :
  ?pp_msg:(Format.formatter -> 'm -> unit) ->
  ?classify:('m -> string) ->
  Run_config.t ->
  'm t
(** {!create} driven by a unified {!Run_config.t}: delay model,
    observability sinks and time budget all come from the config. *)

val add_node : 'm t -> Pid.t -> 'm behavior -> unit
(** Registers a process. Re-adding an id replaces its behaviour.
    Must be called before {!run}. *)

val run : ?max_time:int -> ?stop:(unit -> bool) -> 'm t -> stats
(** Starts every registered process and processes events in timestamp
    order until the queue drains, [stop ()] holds (checked after every
    event), or the clock passes [max_time] (default: the engine's
    configured budget). Returns the execution statistics. *)

val now_of : 'm t -> int

val stats_of : 'm t -> stats
