(* The analysis daemon: protocol shape, determinism and the shared
   response cache (DESIGN.md §14).

   These tests drive [Serve.Daemon.handle_line] in-process. The
   compiled-handle caches ([Fbqs.Quorum], [Graphkit.Csr]) are
   process-wide and shared with every other suite, so nothing here
   asserts their absolute counters — only the daemon-local caches and
   the response bytes, which are independent of cache warmth. *)

let fixture = "fixtures/live_network.fbas"

let req id verb extra =
  Printf.sprintf {|{"id": %d, "verb": %S%s}|} id verb
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ", %S: %s" k v) extra))

let analyze id = req id "analyze" [ ("file", Printf.sprintf "%S" fixture) ]

(* ping, version, then the same analysis twice under different ids —
   the second analyze must come out of the response cache. *)
let session = [ req 1 "ping" []; req 2 "version" []; analyze 3; analyze 4 ]

let run_session d lines = List.concat_map (Serve.Daemon.handle_line d) lines

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* Replace the digits after every ["id":] with [_], so responses can be
   compared modulo the echoed request id. *)
let strip_ids s =
  let key = {|"id":|} in
  let klen = String.length key in
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub s !i klen = key then begin
      Buffer.add_string b key;
      Buffer.add_char b '_';
      i := !i + klen;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_blank_line_ignored () =
  let d = Serve.Daemon.create () in
  Alcotest.(check (list string)) "no output" [] (Serve.Daemon.handle_line d "");
  Alcotest.(check (list string)) "whitespace" []
    (Serve.Daemon.handle_line d "   ")

let test_garbage_is_an_error_response () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d "not json at all" with
  | [ line ] ->
      Alcotest.(check bool) "not ok" true (contains ~affix:{|"ok":false|} line);
      Alcotest.(check bool) "an envelope" true
        (contains ~affix:Core.Report.schema line)
  | l -> Alcotest.failf "expected exactly one error line, got %d" (List.length l)

let test_unknown_verb_keeps_id () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d {|{"id": 9, "verb": "frobnicate"}|} with
  | [ line ] ->
      Alcotest.(check bool) "id echoed" true (contains ~affix:{|"id":9|} line);
      Alcotest.(check bool) "not ok" true (contains ~affix:{|"ok":false|} line)
  | l -> Alcotest.failf "expected exactly one error line, got %d" (List.length l)

let test_ping () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d (req 1 "ping" []) with
  | [ line ] ->
      List.iter
        (fun affix -> Alcotest.(check bool) affix true (contains ~affix line))
        [ {|"id":1|}; {|"verb":"ping"|}; {|"ok":true|}; {|"pong":true|} ]
  | l -> Alcotest.failf "expected exactly one line, got %d" (List.length l)

let test_shutdown_stops () =
  let d = Serve.Daemon.create () in
  Alcotest.(check bool) "running" false (Serve.Daemon.stopping d);
  ignore (Serve.Daemon.handle_line d (req 1 "shutdown" []));
  Alcotest.(check bool) "stopping" true (Serve.Daemon.stopping d)

let test_two_cold_daemons_agree () =
  (* The response stream is a pure function of the request stream: two
     fresh daemons serve byte-identical sessions. *)
  let a = run_session (Serve.Daemon.create ()) session in
  let b = run_session (Serve.Daemon.create ()) session in
  Alcotest.(check (list string)) "byte-identical sessions" a b

let test_warm_repeat_identical_and_cached () =
  (* Replaying the same session against a warm daemon yields the same
     bytes — repeats are served from the response cache, which the
     stats verb then confirms: the only verb whose answer depends on
     accumulated state is [stats] itself. *)
  let d = Serve.Daemon.create () in
  let cold = run_session d session in
  let warm = run_session d session in
  Alcotest.(check (list string)) "warm replay byte-identical" cold warm;
  match Serve.Daemon.handle_line d (req 99 "stats" []) with
  | [ line ] ->
      (* cold: analyze 3 misses, analyze 4 hits; warm: both hit *)
      Alcotest.(check bool) "response cache hit on repeats" true
        (contains ~affix:{|"serve_responses":{"hits":3,"misses":1|} line);
      (* the file is parsed once; response-cache hits never re-load it *)
      Alcotest.(check bool) "file parsed once" true
        (contains ~affix:{|"serve_files":{"hits":0,"misses":1|} line)
  | l -> Alcotest.failf "expected one stats line, got %d" (List.length l)

let test_repeat_analyze_reuses_payload () =
  (* Identical analyze requests under different ids: the payloads are
     byte-identical; only the echoed id differs. *)
  let d = Serve.Daemon.create () in
  match
    (Serve.Daemon.handle_line d (analyze 3), Serve.Daemon.handle_line d (analyze 4))
  with
  | [ r3 ], [ r4 ] ->
      Alcotest.(check bool) "ids differ" true (r3 <> r4);
      Alcotest.(check string) "same modulo id" (strip_ids r3) (strip_ids r4)
  | _ -> Alcotest.fail "expected one response line per analyze"

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "blank lines ignored" `Quick test_blank_line_ignored;
        Alcotest.test_case "garbage yields an error envelope" `Quick
          test_garbage_is_an_error_response;
        Alcotest.test_case "unknown verb keeps the id" `Quick
          test_unknown_verb_keeps_id;
        Alcotest.test_case "ping" `Quick test_ping;
        Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
        Alcotest.test_case "cold daemons byte-identical" `Quick
          test_two_cold_daemons_agree;
        Alcotest.test_case "warm replay identical, served from cache" `Quick
          test_warm_repeat_identical_and_cached;
        Alcotest.test_case "repeated analyze differs only in id" `Quick
          test_repeat_analyze_reuses_payload;
      ] );
  ]
