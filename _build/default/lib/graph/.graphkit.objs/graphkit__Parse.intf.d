lib/graph/parse.mli: Digraph
