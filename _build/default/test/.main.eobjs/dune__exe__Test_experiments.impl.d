test/test_experiments.ml: Alcotest Experiments List Printf Report Stellar_cup String
