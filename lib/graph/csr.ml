(* Compiled compressed-sparse-row graphs.

   A [Digraph.t] is a persistent map of persistent sets — ideal for
   construction, painful for whole-graph analysis: every Tarjan frame
   pays a [Pid.Set.elements], every neighbour probe a [Pid.Map.find].
   This module compiles a graph once into dense int arrays (the same
   move [Fbqs.Quorum.Compiled] makes for quorum checks) and memoizes
   the compiled handle per graph value, so the condensation-hungry
   consumers (sink oracle, k-OSR checks, pipeline sweeps) stop
   recomputing SCCs per query.

   Determinism contract: the dense index order is the ascending pid
   order and every adjacency row is sorted ascending, so the iterative
   Tarjan below visits vertices and successors in exactly the order the
   seed tree-set implementation does — component emission order,
   condensation ids, DAG successor lists and sink ids are all
   byte-identical to the seed algorithms. Graphs naming negative pids
   cannot be interned densely and fall back to the seed path, exactly
   like the quorum kernel. *)

type scc_data = { comp_of : int array; n_comps : int }

type t = {
  graph : Digraph.t;  (** the source graph, also the memo key *)
  n : int;
  pids : int array;  (** dense index -> pid, ascending *)
  inv : int array;  (** pid -> dense index, [-1] when absent *)
  succ_off : int array;  (** length [n + 1] *)
  succ_arr : int array;  (** rows sorted ascending *)
  pred_off : int array;
  pred_arr : int array;
  mutable scc : scc_data option;
  mutable comp_sets : Pid.Set.t array option;
  mutable comp_list : Pid.Set.t list option;
  mutable dag : (int list array * int list) option;
}

let graph t = t.graph
let n_vertices t = t.n
let pid_of t k = t.pids.(k)

let index_of t p =
  if p < 0 || p >= Array.length t.inv then None
  else
    let k = t.inv.(p) in
    if k < 0 then None else Some k

let succ_off t = t.succ_off
let succ_arr t = t.succ_arr
let pred_off t = t.pred_off
let pred_arr t = t.pred_arr

(* ---- compilation ----------------------------------------------------- *)

let of_graph g =
  (* One traversal of the adjacency map (pids, row sets, out-degrees),
     then pure array passes: succ rows fill consecutively, and the pred
     side is transposed from the finished succ arrays rather than read
     from the graph again. *)
  let n = Digraph.n_vertices g in
  let pids = Array.make n 0 in
  let rows = Array.make n Pid.Set.empty in
  let succ_off = Array.make (n + 1) 0 in
  let k = ref 0 in
  Digraph.iter_succs
    (fun v s ->
      pids.(!k) <- v;
      rows.(!k) <- s;
      succ_off.(!k + 1) <- Pid.Set.cardinal s;
      incr k)
    g;
  (* [iter_succs] is ascending, so a negative pid shows up first. *)
  if n > 0 && pids.(0) < 0 then None
  else begin
    let bound = if n = 0 then 0 else pids.(n - 1) + 1 in
    let inv = Array.make bound (-1) in
    Array.iteri (fun k p -> inv.(p) <- k) pids;
    for v = 1 to n do
      succ_off.(v) <- succ_off.(v) + succ_off.(v - 1)
    done;
    let m = succ_off.(n) in
    let succ_arr = Array.make m 0 in
    let pred_off = Array.make (n + 1) 0 in
    let si = ref 0 in
    (* [Pid.Set.iter] is ascending, so each succ row comes out
       sorted. *)
    Array.iter
      (fun s ->
        Pid.Set.iter
          (fun w ->
            let d = inv.(w) in
            succ_arr.(!si) <- d;
            incr si;
            pred_off.(d + 1) <- pred_off.(d + 1) + 1)
          s)
      rows;
    for v = 1 to n do
      pred_off.(v) <- pred_off.(v) + pred_off.(v - 1)
    done;
    let pred_arr = Array.make m 0 in
    let pred_cur = Array.make (n + 1) 0 in
    Array.blit pred_off 0 pred_cur 0 n;
    (* Pred rows receive their entries as [u] ascends, so they come out
       sorted too. *)
    for u = 0 to n - 1 do
      for i = succ_off.(u) to succ_off.(u + 1) - 1 do
        let d = succ_arr.(i) in
        pred_arr.(pred_cur.(d)) <- u;
        pred_cur.(d) <- pred_cur.(d) + 1
      done
    done;
    Some
      {
        graph = g;
        n;
        pids;
        inv;
        succ_off;
        succ_arr;
        pred_off;
        pred_arr;
        scc = None;
        comp_sets = None;
        comp_list = None;
        dag = None;
      }
  end

(* ---- per-graph memo -------------------------------------------------- *)

(* Bounded most-recently-used {!Core.Cache} keyed by physical equality
   of the graph value, the same shared cache layer as the quorum
   kernel's compiled-handle cache. Graphs are immutable, so a hit can
   never be stale; a hit is promoted to the front so a working set of
   up to the capacity (a sweep's base graph plus the sink subgraphs of
   its k-OSR checks) never thrashes. Negative-pid graphs have no dense
   form: the lookup still counts a miss, but nothing is inserted. *)

let cache : (Digraph.t, t) Core.Cache.t =
  Core.Cache.create ~name:"graphkit_csr" ~capacity:16 ()

let cache_stats () = Core.Cache.stats cache
let set_cache_capacity n = Core.Cache.set_capacity cache n
let attach_cache_metrics registry = Core.Cache.attach_metrics cache registry

let get g =
  match Core.Cache.find_opt cache g with
  | Some h -> Some h
  | None -> (
      match of_graph g with
      | None -> None
      | Some h ->
          Core.Cache.add cache g h;
          Some h)

(* ---- strongly connected components ----------------------------------- *)

(* Iterative Tarjan over the int arrays: explicit frame stacks replace
   both the recursion and the per-frame successor lists of the seed, so
   a 50k-vertex graph costs zero allocation beyond the state arrays.
   Roots are taken in ascending dense order and successors in row order
   (ascending), matching the seed's visit order exactly — component ids
   below are the seed's emission order. *)
let compute_scc t =
  let n = t.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let frame_v = Array.make n 0 in
  let frame_i = Array.make n 0 in
  let fp = ref 0 in
  let counter = ref 0 in
  let comp_of = Array.make n (-1) in
  let n_comps = ref 0 in
  let push v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    frame_v.(!fp) <- v;
    frame_i.(!fp) <- t.succ_off.(v);
    incr fp
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      push root;
      while !fp > 0 do
        let f = !fp - 1 in
        let v = frame_v.(f) in
        let i = frame_i.(f) in
        if i < t.succ_off.(v + 1) then begin
          frame_i.(f) <- i + 1;
          let w = t.succ_arr.(i) in
          if index.(w) < 0 then push w
          else if on_stack.(w) && index.(w) < lowlink.(v) then
            lowlink.(v) <- index.(w)
        end
        else begin
          decr fp;
          if lowlink.(v) = index.(v) then begin
            let c = !n_comps in
            incr n_comps;
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp_of.(w) <- c;
              if w = v then continue := false
            done
          end;
          if !fp > 0 then begin
            let p = frame_v.(!fp - 1) in
            if lowlink.(v) < lowlink.(p) then lowlink.(p) <- lowlink.(v)
          end
        end
      done
    end
  done;
  { comp_of; n_comps = !n_comps }

let scc_data t =
  match t.scc with
  | Some s -> s
  | None ->
      let s = compute_scc t in
      t.scc <- Some s;
      s

let scc_count t = (scc_data t).n_comps
let scc_comp_of_dense t = (scc_data t).comp_of

let scc_component_sets t =
  match t.comp_sets with
  | Some sets -> sets
  | None ->
      let s = scc_data t in
      (* Collect each component as an ascending pid list (descending
         scan + cons), then let [Pid.Set.of_list] do a linear build
         instead of n rebalancing inserts. *)
      let lists = Array.make s.n_comps [] in
      for v = t.n - 1 downto 0 do
        let c = s.comp_of.(v) in
        lists.(c) <- t.pids.(v) :: lists.(c)
      done;
      let sets = Array.map Pid.Set.of_list lists in
      t.comp_sets <- Some sets;
      sets

let scc_components t =
  match t.comp_list with
  | Some l -> l
  | None ->
      let l = Array.to_list (scc_component_sets t) in
      t.comp_list <- Some l;
      l

let scc_component_of t p =
  match index_of t p with
  | None -> None
  | Some v -> Some (scc_comp_of_dense t).(v)

(* ---- condensation DAG ------------------------------------------------ *)

(* Edges are scanned in ascending (tail, head) order — the order
   [Digraph.fold_edges] yields — and each DAG successor list records
   first encounters by consing, so the lists match the seed
   condensation element for element. *)
let compute_dag t =
  let s = scc_data t in
  let dag = Array.make s.n_comps [] in
  for u = 0 to t.n - 1 do
    let cu = s.comp_of.(u) in
    for i = t.succ_off.(u) to t.succ_off.(u + 1) - 1 do
      let cv = s.comp_of.(t.succ_arr.(i)) in
      if cu <> cv && not (List.mem cv dag.(cu)) then dag.(cu) <- cv :: dag.(cu)
    done
  done;
  let sinks = ref [] in
  for c = s.n_comps - 1 downto 0 do
    if dag.(c) = [] then sinks := c :: !sinks
  done;
  (dag, !sinks)

let dag_data t =
  match t.dag with
  | Some d -> d
  | None ->
      let d = compute_dag t in
      t.dag <- Some d;
      d

let dag_succs t = fst (dag_data t)
let dag_sinks t = snd (dag_data t)
