lib/fbqs/slice.mli: Format Graphkit Pid
