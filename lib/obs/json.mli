(** A minimal JSON document type with deterministic serialization.

    Every consumer of the observability layer (JSONL trace sinks,
    metrics dumps, the CLI's [--json] outputs, the bench harness)
    serializes through this one writer, so identical values always
    produce identical bytes — the property the golden-trace tests and
    the CI determinism gate rely on. Object fields are emitted in the
    order given; no whitespace is inserted. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no spaces, no trailing newline). Floats are
    printed with ["%.12g"]; NaN and infinities are rendered as [null]
    (JSON has no lexeme for them). *)

val to_buffer : Buffer.t -> t -> unit

val escape : string -> string
(** The body of a JSON string literal (quotes not included). *)
