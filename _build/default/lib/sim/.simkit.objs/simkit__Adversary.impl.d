lib/sim/adversary.ml: Engine Graphkit Pid
