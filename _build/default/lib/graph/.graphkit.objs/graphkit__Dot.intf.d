lib/graph/dot.mli: Digraph Pid
