lib/scp/msg.ml: Fbqs Format Graphkit Int List Pid Set Statement
