test/test_scc.ml: Alcotest Array Digraph Format Graphkit List Pid QCheck QCheck_alcotest Scc Traversal
