test/test_api_coverage.ml: Alcotest Bftcup Condensation Cup Digraph Fbqs Format Graphkit List Pid Printf Scp Simkit Traversal
