open Graphkit
open Simkit
open Bftcup

let v = Scp.Value.of_ints

let test_quorum_size () =
  (* ceil((n+f+1)/2) *)
  Alcotest.(check int) "n=4 f=1" 3 (Pbft.quorum_size ~n:4 ~f:1);
  Alcotest.(check int) "n=5 f=1" 4 (Pbft.quorum_size ~n:5 ~f:1);
  Alcotest.(check int) "n=7 f=2" 5 (Pbft.quorum_size ~n:7 ~f:2);
  Alcotest.(check int) "n=3 f=0" 2 (Pbft.quorum_size ~n:3 ~f:0)

let test_leader_rotation () =
  let members = Pid.Set.of_list [ 3; 7; 11 ] in
  Alcotest.(check int) "view 0" 3 (Pbft.leader_of members 0);
  Alcotest.(check int) "view 1" 7 (Pbft.leader_of members 1);
  Alcotest.(check int) "view 2" 11 (Pbft.leader_of members 2);
  Alcotest.(check int) "view 3 wraps" 3 (Pbft.leader_of members 3)

let run_pbft ?(seed = 0) ?(n = 4) ?(f = 1) ~silent () =
  let members = Pid.Set.of_range 1 n in
  let delay = Delay.partial_synchrony ~gst:30 ~delta:4 ~seed in
  let engine = Engine.create_cfg ~pp_msg:Pbft.pp_msg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let decisions = ref Pid.Map.empty in
  Pid.Set.iter
    (fun i ->
      if Pid.Set.mem i silent then Engine.add_node engine i Pbft.silent
      else
        Engine.add_node engine i
          (Pbft.behavior
             {
               Pbft.self = i;
               members;
               f;
               initial_value = v [ i * 10 ];
               view_timeout = 50;
               on_decide =
                 (fun pid d -> decisions := Pid.Map.add pid d.value !decisions);
             }))
    members;
  let correct = Pid.Set.diff members silent in
  let stop () = Pid.Set.for_all (fun i -> Pid.Map.mem i !decisions) correct in
  let stats = Engine.run ~max_time:100_000 ~stop engine in
  (!decisions, correct, stats)

let check_agreed name decisions correct =
  Alcotest.(check int)
    (name ^ ": all correct decided")
    (Pid.Set.cardinal correct)
    (Pid.Map.cardinal decisions);
  match Pid.Map.bindings decisions with
  | [] -> Alcotest.fail "nobody decided"
  | (_, v0) :: rest ->
      List.iter
        (fun (_, v') ->
          Alcotest.(check bool) (name ^ ": agreement") true
            (Scp.Value.equal v0 v'))
        rest

let test_fault_free () =
  let decisions, correct, _ = run_pbft ~silent:Pid.Set.empty () in
  check_agreed "fault-free" decisions correct;
  (* Leader 1 was live, so its proposal goes through in view 0. *)
  match Pid.Map.choose_opt decisions with
  | Some (_, value) ->
      Alcotest.(check bool) "leader's value decided" true
        (Scp.Value.equal value (v [ 10 ]))
  | None -> Alcotest.fail "no decision"

let test_silent_backup () =
  let decisions, correct, _ =
    run_pbft ~silent:(Pid.Set.singleton 4) ()
  in
  check_agreed "silent backup" decisions correct

let test_silent_leader_view_change () =
  (* Leader of view 0 is 1; with 1 silent the group must change views
     and decide under leader 2. *)
  let decisions, correct, _ =
    run_pbft ~silent:(Pid.Set.singleton 1) ()
  in
  check_agreed "silent leader" decisions correct;
  match Pid.Map.choose_opt decisions with
  | Some (_, value) ->
      Alcotest.(check bool) "a backup's value decided" true
        (not (Scp.Value.equal value (v [ 10 ])))
  | None -> Alcotest.fail "no decision"

let test_larger_group_two_faults () =
  let decisions, correct, _ =
    run_pbft ~n:7 ~f:2 ~silent:(Pid.Set.of_list [ 1; 2 ]) ()
  in
  check_agreed "7 replicas, 2 silent (both leaders)" decisions correct

let prop_pbft_agreement_random_faults =
  QCheck.Test.make ~count:15 ~name:"pbft agreement under random silent fault"
    QCheck.(pair (int_bound 500) (int_range 1 4))
    (fun (seed, who) ->
      let decisions, correct, _ =
        run_pbft ~seed ~silent:(Pid.Set.singleton who) ()
      in
      Pid.Map.cardinal decisions = Pid.Set.cardinal correct
      &&
      match Pid.Map.bindings decisions with
      | [] -> false
      | (_, v0) :: rest ->
          List.for_all (fun (_, v') -> Scp.Value.equal v0 v') rest)

let suites =
  [
    ( "pbft",
      [
        Alcotest.test_case "quorum size" `Quick test_quorum_size;
        Alcotest.test_case "leader rotation" `Quick test_leader_rotation;
        Alcotest.test_case "fault-free decides in view 0" `Quick
          test_fault_free;
        Alcotest.test_case "silent backup" `Quick test_silent_backup;
        Alcotest.test_case "silent leader forces view change" `Quick
          test_silent_leader_view_change;
        Alcotest.test_case "7 replicas, 2 silent" `Quick
          test_larger_group_two_faults;
        QCheck_alcotest.to_alcotest prop_pbft_agreement_random_faults;
      ] );
  ]
