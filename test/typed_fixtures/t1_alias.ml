(* T1 fixtures: polymorphic comparison on a sensitive type hidden
   behind an alias. The syntactic D3 judges argument heads only, so
   every site below is provably invisible to it — the companion test
   asserts D3 stays silent on this file while T1 fires. *)

type key = Graphkit.Pid.Set.t

(* T1-positive: structural equality on an aliased Pid.Set.t. *)
let same (a : key) (b : key) = a = b

(* T1-positive: partial application — [compare] never syntactically
   touches a Set-headed argument. *)
let order (xs : key list) = List.sort compare xs

(* T1-positive: polymorphic hash on the alias. *)
let hash_of (k : key) = Hashtbl.hash k

(* T1-negative: the dedicated comparator. *)
let ok (a : key) (b : key) = Graphkit.Pid.Set.equal a b

(* T1-negative: polymorphic compare on a non-sensitive type. *)
let ints (a : int) (b : int) = compare a b
