(* Knowledge-connectivity graph explorer.

   Generates a random k-OSR knowledge graph, walks through every
   structural notion the paper builds on — strongly connected
   components, the condensation and its sink, k-strong connectivity,
   f-reachability — and writes a Graphviz rendering.

   Run with: dune exec examples/knowledge_explorer.exe [seed] *)

open Graphkit

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42
  in
  let f = 1 in
  let k = (2 * f) + 1 in
  let g =
    Generators.random_k_osr ~seed ~sink_size:6 ~non_sink:5 ~k ()
  in
  Format.printf "Random %d-OSR knowledge graph (seed %d):@.%a@." k seed
    Digraph.pp g;

  Format.printf "@.--- Strongly connected components ---@.";
  List.iteri
    (fun i c -> Format.printf "component %d: %a@." i Pid.Set.pp c)
    (Scc.components g);

  Format.printf "@.--- Sink component (Definition 5 terrain) ---@.";
  let sink = Properties.sink_of_exn g in
  Format.printf "V_sink = %a@." Pid.Set.pp sink;
  Format.printf "sink is %d-strongly connected (exact: %d)@." k
    (Connectivity.vertex_connectivity (Digraph.subgraph sink g));

  Format.printf "@.--- k-OSR check (Definition 6) ---@.";
  (match Properties.check_k_osr g k with
  | Ok _ -> Format.printf "graph is %d-OSR@." k
  | Error e -> Format.printf "NOT %d-OSR: %a@." k Properties.pp_osr_failure e);

  Format.printf "@.--- Byzantine safety (Definition 7) ---@.";
  let faulty = Generators.random_faulty_set ~seed ~f g in
  Format.printf "random F = %a: byzantine-safe: %b, solvable (Thm 1): %b@."
    Pid.Set.pp faulty
    (Properties.is_byzantine_safe g ~f ~faulty)
    (Properties.solvable g ~f ~faulty);

  Format.printf "@.--- f-reachability (Definition 9) ---@.";
  let correct = Pid.Set.diff (Digraph.vertices g) faulty in
  let non_sink = Pid.Set.diff (Digraph.vertices g) sink in
  Pid.Set.iter
    (fun i ->
      if Pid.Set.mem i correct then
        let reachable_sink =
          Pid.Set.filter
            (fun j ->
              Pid.Set.mem j correct
              && Connectivity.f_reachable g ~correct f i j)
            sink
        in
        Format.printf
          "from %d: %d of %d correct sink members are %d-reachable@." i
          (Pid.Set.cardinal reachable_sink)
          (Pid.Set.cardinal (Pid.Set.inter sink correct))
          f)
    non_sink;

  Format.printf "@.--- Disjoint path profile ---@.";
  Pid.Set.iter
    (fun i ->
      let m =
        Pid.Set.fold
          (fun j acc ->
            if Pid.equal i j then acc
            else min acc (Connectivity.node_disjoint_paths g i j))
          sink max_int
      in
      Format.printf "min node-disjoint paths %d -> sink members: %d@." i m)
    non_sink;

  let path = "knowledge_graph.dot" in
  Dot.to_file ~highlight:sink ~faulty path g;
  Format.printf "@.Graphviz rendering written to %s@." path
