lib/sim/engine.ml: Delay Event_queue Format Graphkit Hashtbl List Logs Option Pid
