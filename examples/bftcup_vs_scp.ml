(* Head-to-head: BFT-CUP vs SCP + sink detector.

   Both stacks solve consensus from the same minimal initial knowledge
   (PD_i and f). BFT-CUP uses discovery as part of its design; Stellar
   cannot work without an extra knowledge-increasing phase (Corollary
   1) and becomes correct once the sink detector supplies it
   (Corollary 2). The table contrasts their costs on the same random
   Byzantine-safe graphs with a random silent fault.

   Run with: dune exec examples/bftcup_vs_scp.exe *)

open Graphkit

let () =
  let samples = 3 in
  let rows = ref [] in
  List.iter
    (fun (sink_size, non_sink, f) ->
      for k = 0 to samples - 1 do
        let seed = 100 + k in
        let g, _ =
          Generators.random_byzantine_safe ~seed ~f ~sink_size ~non_sink ()
        in
        let faulty = Generators.random_faulty_set ~seed ~f g in
        let initial_value_of i = Scp.Value.of_ints [ i ] in
        let cfg =
          Simkit.Run_config.with_seed seed Simkit.Run_config.default
        in
        let scp =
          Stellar_cup.Pipeline.scp_with_sink_detector ~cfg ~graph:g ~f ~faulty
            ~initial_value_of ()
        in
        let bft =
          Stellar_cup.Pipeline.bftcup ~cfg ~graph:g ~f ~faulty
            ~initial_value_of ()
        in
        let row name (v : Stellar_cup.Pipeline.verdict) =
          [
            Printf.sprintf "n=%d f=%d #%d" (sink_size + non_sink) f k;
            name;
            (if v.all_decided && v.agreement && v.validity then "ok"
             else "FAILED");
            string_of_int v.discovery_msgs;
            string_of_int v.consensus_msgs;
            string_of_int v.total_time;
          ]
        in
        rows := row "BFT-CUP" bft :: row "SCP+SD" scp :: !rows
      done)
    [ (5, 3, 1); (6, 5, 1); (8, 6, 2) ];
  let table =
    Stellar_cup.Report.make ~id:"compare"
      ~title:"BFT-CUP vs SCP with sink detector (same graphs, same faults)"
      ~header:
        [ "graph"; "stack"; "consensus"; "discovery msgs"; "consensus msgs";
          "ticks" ]
      ~notes:
        [
          "SCP's consensus phase floods statement-level envelopes, so its \
           message count is an order of magnitude above PBFT's — the \
           interesting column is 'consensus': both always succeed, and both \
           pay a discovery phase of the same shape.";
        ]
      (List.rev !rows)
  in
  Stellar_cup.Report.print table
