(* Typedtree loading for the --cmt phase.

   Dune already emits a .cmt (typed implementation) and .cmti (typed
   interface) per module under _build/<context>/**/.objs/byte/; this
   module walks such a directory, reads them with Cmt_format.read_cmt
   (compiler-libs, no new dependency) and hands the typed rules a flat
   list of compilation units plus the per-unit exported value names.

   Canonical names: dune's module mangling joins library and module
   with "__" ("Cup__Knowledge"); the typer mostly resolves references
   through the generated alias module instead ("Cup.Knowledge.foo").
   [split_comps]/[path_comps] normalize both spellings to one
   component list (["Cup"; "Knowledge"; "foo"]), with the "Stdlib"
   head dropped so "Stdlib.Hashtbl.t", "Stdlib__Hashtbl.t" and
   "Hashtbl.t" all compare equal. *)

type unit_info = {
  modname : string;  (* mangled compilation-unit name, "Cup__Knowledge" *)
  mod_comps : string list;  (* canonical module path, ["Cup"; "Knowledge"] *)
  source : string;  (* build-relative source path, "lib/cup/knowledge.ml" *)
  structure : Typedtree.structure;
}

type t = {
  units : unit_info list;
  exports : (string, string list) Hashtbl.t;  (* modname -> exported values *)
}

(* "Cup__Knowledge" -> ["Cup"; "Knowledge"]; plain names pass through. *)
let split_comps name =
  let n = String.length name in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub name start (n - start) :: acc)
    else if name.[i] = '_' && name.[i + 1] = '_' then
      let rec past j = if j < n && name.[j] = '_' then past (j + 1) else j in
      let next = past (i + 2) in
      go next next (String.sub name start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [] else go 0 0 []

let canonical comps =
  let comps =
    List.filter (fun c -> c <> "") (List.concat_map split_comps comps)
  in
  match comps with "Stdlib" :: (_ :: _ as rest) -> rest | comps -> comps

let rec raw_comps p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> raw_comps p @ [ s ]
  | _ -> []

let path_comps p = canonical (raw_comps p)

(* ------------------------------------------------------------------ *)
(* Directory scan                                                     *)
(* ------------------------------------------------------------------ *)

let rec walk_cmts acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk_cmts acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"
  then path :: acc
  else acc

let source_of_cmt (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_sourcefile with Some s -> s | None -> ""

let exported_names sg =
  List.filter_map
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Typedtree.Tsig_value vd -> Some vd.val_name.txt
      | _ -> None)
    sg.Typedtree.sig_items

(* [skip] filters on the unit's build-relative source path (fixture
   corpora, generated alias modules). Units are deduplicated by
   compilation-unit name, first (alphabetically first path) wins —
   a module compiled into both a library and an executable counts
   once. *)
let load_dir ?(skip = fun _ -> false) dir =
  let files = List.sort String.compare (walk_cmts [] dir) in
  let exports = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> None
        | cmt -> (
            let source = source_of_cmt cmt in
            if skip source || Filename.check_suffix source ".ml-gen" then None
            else
              match cmt.cmt_annots with
              | Cmt_format.Interface sg ->
                  if not (Hashtbl.mem exports cmt.cmt_modname) then
                    Hashtbl.add exports cmt.cmt_modname (exported_names sg);
                  None
              | Cmt_format.Implementation structure ->
                  if Hashtbl.mem seen cmt.cmt_modname then None
                  else begin
                    Hashtbl.add seen cmt.cmt_modname ();
                    Some
                      {
                        modname = cmt.cmt_modname;
                        mod_comps = split_comps cmt.cmt_modname;
                        source;
                        structure;
                      }
                  end
              | _ -> None))
      files
  in
  { units; exports }

let exported t modname =
  match Hashtbl.find_opt t.exports modname with Some l -> l | None -> []
