lib/sim/delay.ml: Array Graphkit Pid Random
