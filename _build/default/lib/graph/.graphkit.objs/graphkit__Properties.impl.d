lib/graph/properties.ml: Condensation Connectivity Digraph Format List Pid Result Traversal
