(* The first-class Quorum.Compiled API: explicit compile-once handles
   must agree everywhere with the deprecated implicit-cache wrappers,
   and the per-handle instrumentation must count. *)

open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let fig1_system =
  Quorum.system_of_list
    (List.map
       (fun (i, slices) -> (i, Slice.explicit slices))
       Graphkit.Builtin.fig1_slices)

let test_compiled_matches_wrappers_on_fig1 () =
  let c = Quorum.Compiled.compile fig1_system in
  let candidates =
    [
      set [ 5; 6; 7 ];
      set [ 1; 2; 4; 5; 6; 7 ];
      set [ 1; 2; 5; 6; 7 ];
      set [ 5; 6; 7; 8 ];
      Pid.Set.empty;
      Pid.Set.of_range 1 7;
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "is_quorum agrees on %s" (Pid.Set.to_string s))
        (Quorum.is_quorum fig1_system s)
        (Quorum.Compiled.is_quorum c s);
      Alcotest.check pid_set
        (Printf.sprintf "greatest_quorum_within agrees on %s"
           (Pid.Set.to_string s))
        (Quorum.greatest_quorum_within fig1_system s)
        (Quorum.Compiled.greatest_quorum_within c s))
    candidates;
  Alcotest.(check bool) "system round-trips" true
    (Quorum.Compiled.system c == fig1_system)

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Quorum.system_of_list
    (List.map
       (fun i -> (i, Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let test_compiled_stats_count () =
  let c = Quorum.Compiled.compile (threshold_system 7 5) in
  let s0 = Quorum.Compiled.stats c in
  Alcotest.(check int) "fresh handle: no queries" 0 s0.queries;
  ignore (Quorum.Compiled.is_quorum c (Pid.Set.of_range 1 5));
  ignore (Quorum.Compiled.greatest_quorum_within c (Pid.Set.of_range 1 7));
  let s1 = Quorum.Compiled.stats c in
  Alcotest.(check int) "two queries counted" 2 s1.queries;
  (* Threshold entries share one popcount per member-set class per
     evaluation. *)
  Alcotest.(check bool) "popcounts counted" true (s1.popcounts > 0);
  let c_explicit = Quorum.Compiled.compile fig1_system in
  ignore (Quorum.Compiled.is_quorum c_explicit (set [ 5; 6; 7 ]));
  let se = Quorum.Compiled.stats c_explicit in
  Alcotest.(check int) "explicit slices: subset tests, no popcounts" 0
    se.popcounts

let test_wrapper_cache_stats_move () =
  let before = Quorum.cache_stats () in
  ignore (Quorum.is_quorum fig1_system (set [ 5; 6; 7 ]));
  ignore (Quorum.is_quorum fig1_system (set [ 3; 5; 6; 7 ]));
  let after = Quorum.cache_stats () in
  Alcotest.(check bool) "wrapper calls touch the implicit cache" true
    (after.hits + after.misses > before.hits + before.misses)

(* Random slice systems: processes 1..n, each declaring one or two
   random explicit slices over the universe. *)
let gen_system =
  QCheck.Gen.(
    let* n = int_range 3 7 in
    let universe = List.init n (fun i -> i + 1) in
    let slice =
      let* members = List.fold_right
        (fun i acc ->
          let* keep = bool in
          let* rest = acc in
          return (if keep then i :: rest else rest))
        universe (return [])
      in
      return (Pid.Set.of_list members)
    in
    let* assoc =
      flatten_l
        (List.map
           (fun i ->
             let* s1 = slice in
             let* s2 = slice in
             return (i, Slice.explicit [ s1; s2 ]))
           universe)
    in
    let* probe = slice in
    return (Quorum.system_of_list assoc, probe))

let arb_system =
  QCheck.make
    ~print:(fun (sys, probe) ->
      Printf.sprintf "system over %s, probe %s"
        (Pid.Set.to_string (Quorum.participants sys))
        (Pid.Set.to_string probe))
    gen_system

let prop_wrappers_agree_with_compiled =
  QCheck.Test.make ~count:200
    ~name:"deprecated wrappers = Compiled API on random systems" arb_system
    (fun (sys, probe) ->
      let c = Quorum.Compiled.compile sys in
      Quorum.is_quorum sys probe = Quorum.Compiled.is_quorum c probe
      && Pid.Set.equal
           (Quorum.greatest_quorum_within sys probe)
           (Quorum.Compiled.greatest_quorum_within c probe)
      && Quorum.contains_quorum sys probe
         = Quorum.Compiled.contains_quorum c probe
      && Pid.Set.for_all
           (fun i ->
             Quorum.is_quorum_of sys i probe
             = Quorum.Compiled.is_quorum_of c i probe)
           (Quorum.participants sys))

let suites =
  [
    ( "quorum_compiled",
      [
        Alcotest.test_case "Compiled = wrappers on fig1" `Quick
          test_compiled_matches_wrappers_on_fig1;
        Alcotest.test_case "per-handle stats" `Quick test_compiled_stats_count;
        Alcotest.test_case "wrapper cache accounting" `Quick
          test_wrapper_cache_stats_move;
        QCheck_alcotest.to_alcotest prop_wrappers_agree_with_compiled;
      ] );
  ]
