lib/graph/condensation.ml: Array Digraph List Pid Scc Seq
