examples/bftcup_vs_scp.mli:
