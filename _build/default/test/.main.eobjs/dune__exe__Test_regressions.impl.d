test/test_regressions.ml: Alcotest Bftcup Cup Digraph Generators Graphkit Pid Printf Scp
