(** The unified machine-readable report envelope.

    Every JSON document the toolchain emits for machines — [run
    --json], [fbas analyze --json], and each analysis-daemon response
    line — is wrapped in one envelope shape:

    {v
    {"schema":"stellar-cup/report","version":1,"kind":KIND,
     ...meta fields..., "payload":PAYLOAD}
    v}

    [kind] names the payload shape ("run", "sweep", "fbas-analysis",
    "response", "trace", ...); meta fields are envelope-level routing
    data (the daemon's request [id], [verb] and [ok] flag); [payload]
    is the pre-envelope document, byte-for-byte — pre-envelope
    consumers read [.payload] and see the historical shape (see
    DESIGN.md §14 for the compatibility contract). Bumping [version]
    is reserved for changes that break [.payload] compatibility. *)

val schema : string
(** ["stellar-cup/report"]. *)

val version : int
(** [1]. *)

val envelope :
  kind:string -> ?meta:(string * Obs.Json.t) list -> Obs.Json.t -> Obs.Json.t
(** [envelope ~kind ~meta payload] — fields in the order [schema],
    [version], [kind], meta fields as given, [payload]. *)
