type edge = { dst : int; mutable cap : int; rev : int }

type t = {
  n : int;
  source : int;
  sink : int;
  adj : edge list ref array;
  mutable level : int array;
  mutable iter : edge list array;
}

let create ~n ~source ~sink =
  {
    n;
    source;
    sink;
    adj = Array.init n (fun _ -> ref []);
    level = [||];
    iter = [||];
  }

let add_edge net u v cap =
  let fwd_pos = List.length !(net.adj.(u)) in
  let bwd_pos = List.length !(net.adj.(v)) in
  net.adj.(u) := !(net.adj.(u)) @ [ { dst = v; cap; rev = bwd_pos } ];
  net.adj.(v) := !(net.adj.(v)) @ [ { dst = u; cap = 0; rev = fwd_pos } ]

let edge_at net u k = List.nth !(net.adj.(u)) k

let bfs net =
  let level = Array.make net.n (-1) in
  level.(net.source) <- 0;
  let q = Queue.create () in
  Queue.add net.source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        if e.cap > 0 && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(u) + 1;
          Queue.add e.dst q
        end)
      !(net.adj.(u))
  done;
  net.level <- level;
  level.(net.sink) >= 0

let rec dfs net u f =
  if u = net.sink then f
  else begin
    let result = ref 0 in
    let rec try_edges () =
      match net.iter.(u) with
      | [] -> ()
      | e :: rest ->
          if e.cap > 0 && net.level.(e.dst) = net.level.(u) + 1 then begin
            let d = dfs net e.dst (min f e.cap) in
            if d > 0 then begin
              e.cap <- e.cap - d;
              let back = edge_at net e.dst e.rev in
              back.cap <- back.cap + d;
              result := d
            end
            else begin
              net.iter.(u) <- rest;
              try_edges ()
            end
          end
          else begin
            net.iter.(u) <- rest;
            try_edges ()
          end
    in
    try_edges ();
    !result
  end

let max_flow net =
  let flow = ref 0 in
  while bfs net do
    net.iter <- Array.map (fun l -> !l) net.adj;
    let rec push () =
      let f = dfs net net.source max_int in
      if f > 0 then begin
        flow := !flow + f;
        push ()
      end
    in
    push ()
  done;
  !flow

let min_cut_side net =
  let side = Array.make net.n false in
  side.(net.source) <- true;
  let q = Queue.create () in
  Queue.add net.source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun e ->
        if e.cap > 0 && not side.(e.dst) then begin
          side.(e.dst) <- true;
          Queue.add e.dst q
        end)
      !(net.adj.(u))
  done;
  side
