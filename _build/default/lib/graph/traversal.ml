let bfs_layers g src =
  if not (Digraph.mem_vertex src g) then []
  else
    let rec go seen frontier layers =
      if Pid.Set.is_empty frontier then List.rev layers
      else
        let next =
          Pid.Set.fold
            (fun i acc -> Pid.Set.union acc (Digraph.succs g i))
            frontier Pid.Set.empty
        in
        let next = Pid.Set.diff next seen in
        go (Pid.Set.union seen next) next (if Pid.Set.is_empty next then layers else next :: layers)
    in
    let start = Pid.Set.singleton src in
    go start start [ start ]

let reachable g src =
  List.fold_left Pid.Set.union Pid.Set.empty (bfs_layers g src)

let reachable_from_set g srcs =
  Pid.Set.fold (fun i acc -> Pid.Set.union acc (reachable g i)) srcs Pid.Set.empty

let distance g src dst =
  let rec find d = function
    | [] -> None
    | layer :: rest ->
        if Pid.Set.mem dst layer then Some d else find (d + 1) rest
  in
  find 0 (bfs_layers g src)

let shortest_path g src dst =
  if not (Digraph.mem_vertex src g && Digraph.mem_vertex dst g) then None
  else
    (* Standard BFS keeping a parent pointer per discovered vertex. *)
    let parents = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace parents src src;
    let rec loop () =
      if Queue.is_empty q then None
      else
        let i = Queue.pop q in
        if Pid.equal i dst then
          let rec rebuild acc j =
            if Pid.equal j src then src :: acc
            else rebuild (j :: acc) (Hashtbl.find parents j)
          in
          Some (rebuild [] dst)
        else begin
          Pid.Set.iter
            (fun j ->
              if not (Hashtbl.mem parents j) then begin
                Hashtbl.replace parents j i;
                Queue.add j q
              end)
            (Digraph.succs g i);
          loop ()
        end
    in
    loop ()

let is_connected_undirected g =
  match Pid.Set.choose_opt (Digraph.vertices g) with
  | None -> true
  | Some v ->
      let u = Digraph.undirected g in
      Pid.Set.equal (reachable u v) (Digraph.vertices g)

let eccentricity g i =
  if not (Digraph.mem_vertex i g) then None
  else Some (List.length (bfs_layers g i) - 1)
