open Graphkit

let test_circulant_shape () =
  let g = Generators.circulant ~n:6 ~k:2 in
  Alcotest.(check int) "vertices" 6 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 12 (Digraph.n_edges g);
  Alcotest.(check bool) "wraparound edge" true (Digraph.mem_edge 5 1 g)

let test_complete_shape () =
  let g = Generators.complete ~n:4 in
  Alcotest.(check int) "edges" 12 (Digraph.n_edges g)

let test_random_k_osr_is_k_osr () =
  List.iter
    (fun (seed, sink_size, non_sink, k) ->
      let g = Generators.random_k_osr ~seed ~sink_size ~non_sink ~k () in
      match Properties.check_k_osr g k with
      | Ok sink ->
          Alcotest.check
            (Alcotest.testable Pid.Set.pp Pid.Set.equal)
            "sink is the first sink_size ids"
            (Pid.Set.of_range 0 (sink_size - 1))
            sink
      | Error e ->
          Alcotest.failf "seed=%d: not %d-OSR: %a" seed k
            Properties.pp_osr_failure e)
    [ (1, 4, 3, 1); (2, 5, 4, 2); (3, 7, 5, 3); (4, 9, 6, 3); (5, 6, 0, 2) ]

let test_random_byzantine_safe_solvable () =
  List.iter
    (fun seed ->
      let f = 1 in
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:6 ~non_sink:4 ()
      in
      (* Any faulty set of size f, inside or outside the sink. *)
      let faulty_in = Generators.random_faulty_set ~seed ~f ~within:sink g in
      let outside = Pid.Set.diff (Digraph.vertices g) sink in
      let faulty_out =
        Generators.random_faulty_set ~seed ~f ~within:outside g
      in
      List.iter
        (fun faulty ->
          Alcotest.(check bool)
            (Format.asprintf "seed=%d faulty=%a" seed Pid.Set.pp faulty)
            true
            (Properties.solvable g ~f ~faulty))
        [ faulty_in; faulty_out ])
    [ 10; 11; 12; 13 ]

let test_layered_k_osr () =
  List.iter
    (fun (seed, k) ->
      let g =
        Generators.layered_k_osr ~seed ~sink_size:(k + 3) ~layers:2
          ~layer_width:(k + 1) ~k ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "layered seed=%d k=%d" seed k)
        true
        (Properties.is_k_osr g k))
    [ (1, 1); (2, 2); (3, 3) ]

let test_determinism () =
  let g1 = Generators.random_k_osr ~seed:42 ~sink_size:5 ~non_sink:4 ~k:2 () in
  let g2 = Generators.random_k_osr ~seed:42 ~sink_size:5 ~non_sink:4 ~k:2 () in
  Alcotest.(check bool) "same seed, same graph" true (Digraph.equal g1 g2);
  let g3 = Generators.random_k_osr ~seed:43 ~sink_size:5 ~non_sink:4 ~k:2 () in
  Alcotest.(check bool) "different seed, different graph" false
    (Digraph.equal g1 g3)

let test_invalid_args () =
  Alcotest.check_raises "sink too small"
    (Invalid_argument "random_k_osr: sink_size must exceed k") (fun () ->
      ignore (Generators.random_k_osr ~seed:0 ~sink_size:2 ~non_sink:1 ~k:2 ()));
  Alcotest.check_raises "byz-safe sink too small"
    (Invalid_argument "random_byzantine_safe: sink_size must be at least 3f + 2")
    (fun () ->
      ignore
        (Generators.random_byzantine_safe ~seed:0 ~f:1 ~sink_size:4
           ~non_sink:1 ()))

let prop_random_k_osr_always_valid =
  QCheck.Test.make ~count:40 ~name:"random_k_osr is always k-OSR"
    QCheck.(triple (int_bound 1000) (int_range 1 3) (int_bound 5))
    (fun (seed, k, non_sink) ->
      let sink_size = k + 2 + (seed mod 3) in
      let g = Generators.random_k_osr ~seed ~sink_size ~non_sink ~k () in
      Properties.is_k_osr g k)

let prop_faulty_set_size =
  QCheck.Test.make ~count:50 ~name:"random_faulty_set has the right size"
    QCheck.(pair (int_bound 1000) (int_range 0 4))
    (fun (seed, f) ->
      let g = Generators.complete ~n:6 in
      Pid.Set.cardinal (Generators.random_faulty_set ~seed ~f g) = min f 6)

let suites =
  [
    ( "generators",
      [
        Alcotest.test_case "circulant shape" `Quick test_circulant_shape;
        Alcotest.test_case "complete shape" `Quick test_complete_shape;
        Alcotest.test_case "random_k_osr validated exactly" `Quick
          test_random_k_osr_is_k_osr;
        Alcotest.test_case "random_byzantine_safe solvable" `Quick
          test_random_byzantine_safe_solvable;
        Alcotest.test_case "layered_k_osr validated" `Quick test_layered_k_osr;
        Alcotest.test_case "determinism in the seed" `Quick test_determinism;
        Alcotest.test_case "invalid arguments rejected" `Quick
          test_invalid_args;
        QCheck_alcotest.to_alcotest prop_random_k_osr_always_valid;
        QCheck_alcotest.to_alcotest prop_faulty_set_size;
      ] );
  ]
