lib/core/pipeline.ml: Bftcup Cup Digraph Fbqs Format Graphkit Option Pid Scp
