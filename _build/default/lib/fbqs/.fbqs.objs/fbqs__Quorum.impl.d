lib/fbqs/quorum.ml: Array Graphkit List Option Pid Slice
