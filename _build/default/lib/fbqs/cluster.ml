open Graphkit

let quorum_available sys set =
  (not (Pid.Set.is_empty set))
  && Pid.Set.equal (Quorum.greatest_quorum_within sys set) set

let is_consensus_cluster ?universe sys ~correct ~mode set =
  (not (Pid.Set.is_empty set))
  && Pid.Set.subset set correct
  && quorum_available sys set
  && Intertwine.set_intertwined ?universe sys mode set

let maximal_clusters ?universe sys ~correct ~mode () =
  let elts = Array.of_list (Pid.Set.elements correct) in
  let n = Array.length elts in
  if n > 20 then
    invalid_arg "Cluster.maximal_clusters: more than 20 correct processes";
  let clusters = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let s = ref Pid.Set.empty in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
    done;
    if is_consensus_cluster ?universe sys ~correct ~mode !s then
      clusters := !s :: !clusters
  done;
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> (not (Pid.Set.equal c c')) && Pid.Set.subset c c')
           !clusters))
    !clusters

let grand_cluster ?universe sys ~correct ~mode () =
  is_consensus_cluster ?universe sys ~correct ~mode correct
