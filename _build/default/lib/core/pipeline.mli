(** End-to-end consensus stacks on a knowledge graph.

    The paper's comparison, as runnable pipelines:

    - {!scp_with_local_slices}: the Section IV strawman — SCP over
      slices each process derives from [PD_i] and [f] alone. Subject to
      Theorem 2's agreement violations.
    - {!scp_with_sink_detector}: Corollary 2's stack — run the sink
      detector (Algorithm 3), build slices with Algorithm 2, then run
      SCP. Solves consensus whenever the graph is Byzantine-safe with a
      2f+1-correct sink.
    - {!bftcup}: the baseline — sink discovery, PBFT among the sink,
      dissemination. Solves consensus from [PD_i] and [f] alone.

    All three report the same outcome shape so experiments can tabulate
    them side by side. *)

open Graphkit

type verdict = {
  all_decided : bool;
  agreement : bool;
  validity : bool;
  deciders : int;
  discovery_msgs : int;  (** 0 for stacks without a discovery stage *)
  consensus_msgs : int;
  total_time : int;  (** simulated ticks across stages *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val scp_with_local_slices :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  ?delay:Simkit.Delay.t ->
  ?rule:(Cup.Participant_detector.t -> Pid.t -> Fbqs.Slice.t) ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict

val scp_with_sink_detector :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  ?nonsink_threshold:int ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict
(** [nonsink_threshold] overrides the non-sink slice size of Algorithm 2
    (default [f + 1]) for the ablation study. *)

val bftcup :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  graph:Digraph.t ->
  f:int ->
  faulty:Pid.Set.t ->
  initial_value_of:(Pid.t -> Scp.Value.t) ->
  unit ->
  verdict
