test/test_analysis.ml: Alcotest Analysis Builtin Cup Fbqs Graphkit List Pid Quorum Slice
