open Graphkit

let blocking_cascade sys ~down =
  let rec go halted =
    let next =
      Pid.Set.filter
        (fun i ->
          (not (Pid.Set.mem i halted)) && Quorum.is_v_blocking sys i halted)
        (Quorum.participants sys)
    in
    if Pid.Set.is_empty next then halted
    else go (Pid.Set.union halted next)
  in
  go down

let subsets_by_size universe =
  let elts = Array.of_list (Pid.Set.elements universe) in
  let n = Array.length elts in
  if n > 20 then invalid_arg "Analysis: more than 20 participants";
  let all =
    List.init (1 lsl n) (fun mask ->
        let s = ref Pid.Set.empty in
        for b = 0 to n - 1 do
          if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
        done;
        !s)
  in
  List.sort
    (fun a b -> Int.compare (Pid.Set.cardinal a) (Pid.Set.cardinal b))
    all

let min_blocking_sets sys i =
  match Quorum.slices_of sys i with
  | Slice.Explicit [] -> []
  | slices ->
      let domain = Slice.domain slices in
      if Pid.Set.is_empty domain then []
      else
        let blocking =
          List.filter
            (fun b -> Slice.all_slices_intersect slices b)
            (subsets_by_size domain)
        in
        let blocking = List.filter (fun b -> not (Pid.Set.is_empty b)) blocking in
        List.filter
          (fun b ->
            not
              (List.exists
                 (fun b' ->
                   (not (Pid.Set.equal b b')) && Pid.Set.subset b' b)
                 blocking))
          blocking

let liveness_level sys =
  let participants = Quorum.participants sys in
  let all = subsets_by_size participants in
  let halts_everything down =
    Pid.Set.equal (blocking_cascade sys ~down) participants
  in
  match List.find_opt halts_everything all with
  | Some s -> Pid.Set.cardinal s
  | None -> Pid.Set.cardinal participants + 1

let breaks_intersection sys b =
  not (Dset.quorum_intersection_despite_baseline sys b)

let safety_level_baseline sys =
  let participants = Quorum.participants sys in
  match
    List.find_opt (breaks_intersection sys) (subsets_by_size participants)
  with
  | Some s -> Pid.Set.cardinal s
  | None -> Pid.Set.cardinal participants + 1

let splitting_sets_baseline sys =
  let candidates =
    List.filter (breaks_intersection sys)
      (subsets_by_size (Quorum.participants sys))
  in
  List.filter
    (fun b ->
      not
        (List.exists
           (fun b' -> (not (Pid.Set.equal b b')) && Pid.Set.subset b' b)
           candidates))
    candidates

(* The production paths delegate to [Enum]'s branch-and-bound engine.
   Splitting sets sweep the full participant set (not just the top
   tier) so the semantics match the baseline exactly; the sweep is
   still exponential in the participant count, but the per-candidate
   intersection check is the scalable one. *)
let safety_level sys =
  let participants = Quorum.participants sys in
  match
    Enum.minimal_splitting_sets ~universe:participants (Enum.prepare sys)
  with
  | [] -> Pid.Set.cardinal participants + 1
  | s :: _ -> Pid.Set.cardinal s

let splitting_sets sys =
  Enum.minimal_splitting_sets
    ~universe:(Quorum.participants sys)
    (Enum.prepare sys)

let top_tier sys = Enum.top_tier (Enum.prepare sys)

let top_tier_baseline sys =
  List.fold_left Pid.Set.union Pid.Set.empty (Quorum.minimal_quorums sys)
