open Parsetree

(* ------------------------------------------------------------------ *)
(* Path scoping                                                       *)
(* ------------------------------------------------------------------ *)

let in_bench rel = String.starts_with ~prefix:"bench/" rel
let in_obs rel = String.starts_with ~prefix:"lib/obs/" rel

(* The executor library (Simkit.Exec and its Simkit.Pool fork backend)
   is the one sanctioned Marshal user (worker IPC). *)
let marshal_home rel =
  String.equal rel "lib/sim/pool.ml" || String.equal rel "lib/sim/exec.ml"

(* Shared-memory parallelism primitives (domain spawning, locks) stay
   behind the Simkit.Exec seam: everything under lib/sim/ may use
   them, nothing else may. *)
let exec_home rel = String.starts_with ~prefix:"lib/sim/" rel

let parallelism_path comps =
  match comps with
  | "Mutex" :: _
  | "Stdlib" :: "Mutex" :: _
  | "Condition" :: _
  | "Stdlib" :: "Condition" :: _ ->
      true
  | ("Domain" :: _ | "Stdlib" :: "Domain" :: _) -> (
      (* Only [spawn] — introspection like
         [Domain.recommended_domain_count] is harmless anywhere. *)
      match List.rev comps with "spawn" :: _ -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                  *)
(* ------------------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with _ -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with [] -> None | comps -> Some comps)
  | _ -> None

let last_two comps =
  match List.rev comps with
  | last :: prev :: _ -> Some (prev, last)
  | [ last ] -> Some ("", last)
  | [] -> None

(* An "ordering step": a sort, or a conversion through an ordered
   [Set]/[Map] submodule (e.g. folding into [Pid.Map.add]). *)
let is_sort_fn = function
  | ( ("List" | "ListLabels" | "Array" | "ArrayLabels"),
      ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ) ->
      true
  | _ -> false

let is_ordering_path comps =
  List.exists (fun c -> String.equal c "Set" || String.equal c "Map") comps
  || match last_two comps with Some p -> is_sort_fn p | None -> false

let is_hashtbl_enum comps =
  match last_two comps with
  | Some ("Hashtbl", ("iter" | "fold")) -> true
  | _ -> false

let entropy_path comps =
  match last_two comps with
  | Some ("Random", ("self_init" | "make_self_init"))
  | Some ("State", "make_self_init")
  | Some ("Unix", ("gettimeofday" | "time"))
  | Some ("Sys", "time") ->
      true
  | _ -> false

let marshal_or_obj comps =
  match comps with
  | "Marshal" :: _ | "Stdlib" :: "Marshal" :: _ -> Some `Marshal
  | "Obj" :: _ | "Stdlib" :: "Obj" :: _ -> Some `Obj
  | _ -> None

let poly_compare_head comps =
  match comps with
  | [ ("=" | "<>" | "compare") ] | [ "Stdlib"; ("=" | "<>" | "compare") ] ->
      true
  | _ -> (
      match last_two comps with
      | Some ("Hashtbl", "hash") -> true
      | _ -> false)

(* D3 looks only at each argument's head: a value built by a container
   constructor (or annotated with a container type) is sensitive, while
   scalar accessors are not — [n = Pid.Set.cardinal s] is a plain int
   comparison even though a set appears in the subtree. The typed rule
   T1 (see Rules_typed) supersedes this heuristic when a --cmt phase
   runs: it sees resolved argument types, so it also catches values
   that reach the comparison through aliases or partial application. *)
let container_module c =
  String.equal c "Set" || String.equal c "Map" || String.equal c "Slice"

let container_ctor = function
  | "empty" | "singleton" | "add" | "remove" | "union" | "inter" | "diff"
  | "of_list" | "of_set" | "of_range" | "of_ints" | "filter" | "map" | "mapi"
  | "keys" | "update" | "threshold" | "explicit" ->
      true
  | _ -> false

let sensitive_value_path comps =
  List.exists container_module comps
  && match List.rev comps with last :: _ -> container_ctor last | [] -> false

let sensitive_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> List.exists container_module (flatten txt)
  | _ -> false

let rec sensitive_arg a =
  match a.pexp_desc with
  | Pexp_constraint (e, ty) -> sensitive_type ty || sensitive_arg e
  | Pexp_apply (h, _) -> (
      match ident_path h with
      | Some comps -> sensitive_value_path comps
      | None -> false)
  | Pexp_ident { txt; _ } -> sensitive_value_path (flatten txt)
  | _ -> false

let is_format_family comps =
  List.exists (fun c -> String.equal c "Printf" || String.equal c "Format") comps

(* Does a printf-style literal contain a float conversion (%f %e %g %h
   and friends)? Width/precision/flags are skipped; [%%] never
   matches. *)
let has_float_conversion s =
  let n = String.length s in
  let rec conv j =
    if j >= n then false
    else
      match s.[j] with
      | 'f' | 'F' | 'e' | 'E' | 'g' | 'G' | 'h' | 'H' -> true
      | '0' .. '9' | '.' | '-' | '+' | ' ' | '#' | '*' -> conv (j + 1)
      | _ -> false
  in
  let rec go i =
    if i >= n - 1 then false
    else if s.[i] = '%' then conv (i + 1) || go (i + 1)
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Expression-level rules                                             *)
(* ------------------------------------------------------------------ *)

let loc_pos loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Every ident path (and type-constructor path, for [(e : Pid.Set.t)]
   constraints) mentioned anywhere inside [e]. *)
let subtree_paths e =
  let acc = ref [] in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten txt with [] -> () | comps -> acc := comps :: !acc)
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
        match flatten txt with [] -> () | comps -> acc := comps :: !acc)
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in
  let it = { Ast_iterator.default_iterator with expr; typ } in
  it.expr it e;
  !acc

let run_expr_rules ~rel structure =
  let findings = ref [] in
  let add loc rule message =
    let line, col = loc_pos loc in
    findings := Lint_core.mk ~file:rel ~line ~col ~rule ~message :: !findings
  in
  (* Depth of enclosing applications whose head is an ordering step:
     inside [List.sort cmp (Hashtbl.fold ...)] the fold is fine. *)
  let ordered_depth = ref 0 in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident _ -> (
        match ident_path e with
        | None -> ()
        | Some comps ->
            if entropy_path comps && not (in_bench rel) then
              add e.pexp_loc "D2"
                (Printf.sprintf
                   "%s: wall-clock/ambient entropy is banned outside bench/ \
                    (thread the seed through Run_config instead)"
                   (String.concat "." comps));
            (match marshal_or_obj comps with
            | Some `Marshal when not (marshal_home rel) ->
                add e.pexp_loc "D4"
                  "Marshal is confined to the executor library (Simkit.Exec / \
                   Simkit.Pool)"
            | Some `Obj ->
                add e.pexp_loc "D4" "Obj.* breaks abstraction and is banned"
            | Some `Marshal | None -> ());
            if parallelism_path comps && not (exec_home rel) then
              add e.pexp_loc "D6"
                (Printf.sprintf
                   "%s: shared-memory parallelism (Domain.spawn, Mutex, \
                    Condition) is confined to lib/sim; go through Simkit.Exec"
                   (String.concat "." comps)))
    | Pexp_apply (f, args) ->
        (match ident_path f with
        | Some comps when is_hashtbl_enum comps ->
            if
              !ordered_depth = 0
              && not (List.exists is_ordering_path (subtree_paths e))
            then
              add f.pexp_loc "D1"
                "Hashtbl enumeration order escapes; sort or convert via \
                 Set/Map in the same expression, or add (* lint: allow D1 — \
                 reason *)"
        | _ -> ());
        (match ident_path f with
        | Some comps when poly_compare_head comps ->
            if List.exists (fun (_, a) -> sensitive_arg a) args then
              add f.pexp_loc "D3"
                "polymorphic compare/(=)/hash on Pid.Set/Pid.Map/Slice \
                 values; use the typed comparators"
        | _ -> ());
        if in_obs rel then (
          match ident_path f with
          | Some comps when is_format_family comps ->
              List.iter
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_constant (Pconst_string (s, _, _))
                    when has_float_conversion s ->
                      add a.pexp_loc "D5"
                        "float format in a lib/obs render path; floats must \
                         go through the Obs.Json encoder"
                  | _ -> ())
                args
          | _ -> ())
    | _ -> ());
    let entered =
      match e.pexp_desc with
      | Pexp_apply (f, _) -> (
          match ident_path f with
          | Some comps -> is_ordering_path comps
          | None -> false)
      | _ -> false
    in
    if entered then incr ordered_depth;
    Ast_iterator.default_iterator.expr it e;
    if entered then decr ordered_depth
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let lint_source ~rel path =
  let parsed =
    try
      if Filename.check_suffix path ".mli" then begin
        ignore (Pparse.parse_interface ~tool_name:"stellar-lint" path);
        Ok None
      end
      else Ok (Some (Pparse.parse_implementation ~tool_name:"stellar-lint" path))
    with exn -> Error (Printexc.to_string exn)
  in
  match parsed with
  | Error msg ->
      {
        Lint_core.active =
          [ Lint_core.mk ~file:rel ~line:1 ~col:0 ~rule:"PARSE" ~message:msg ];
        suppressed = [];
      }
  | Ok None -> { Lint_core.active = []; suppressed = [] }
  | Ok (Some structure) ->
      let found = run_expr_rules ~rel structure in
      let allows = Lint_core.allows_of_text (Lint_core.read_file path) in
      let suppressed, active =
        List.partition (Lint_core.is_allowed allows) found
      in
      {
        Lint_core.active = List.sort Lint_core.compare_finding active;
        suppressed = List.sort Lint_core.compare_finding suppressed;
      }

let rule_m1 ~ml_files ~mli_files =
  ml_files
  |> List.filter (fun f ->
         String.starts_with ~prefix:"lib/" f
         && Filename.check_suffix f ".ml"
         && not (List.mem (f ^ "i") mli_files))
  |> List.map (fun f ->
         Lint_core.mk ~file:f ~line:1 ~col:0 ~rule:"M1"
           ~message:"lib/ module has no .mli; every lib interface is explicit")
  |> List.sort Lint_core.compare_finding
