open Graphkit

type answer = { in_sink : bool; view : Pid.Set.t }

(* [Condensation.unique_sink] runs on the compiled CSR handle memoized
   per graph value, so repeated oracle queries against the same graph —
   the common shape in sweeps and the per-process [get_sink] calls of a
   run — condense it once, not once per query. *)
let sink_of g =
  match Condensation.unique_sink g with
  | Some s -> s
  | None -> invalid_arg "Sink_oracle: graph has no unique sink component"

let get_sink g i =
  let sink = sink_of g in
  { in_sink = Pid.Set.mem i sink; view = sink }

let shared g =
  let sink = sink_of g in
  fun i -> { in_sink = Pid.Set.mem i sink; view = sink }

let get_sink_restricted ~seed ~f ~correct g i =
  let sink = sink_of g in
  if Pid.Set.mem i sink then { in_sink = true; view = sink }
  else begin
    let rng = Random.State.make [| seed; i; 0x51c |] in
    let pick k pool =
      let arr = Array.of_list (Pid.Set.elements pool) in
      let n = Array.length arr in
      let k = min k n in
      for idx = 0 to k - 1 do
        let j = idx + Random.State.int rng (n - idx) in
        let tmp = arr.(idx) in
        arr.(idx) <- arr.(j);
        arr.(j) <- tmp
      done;
      Pid.Set.of_list (Array.to_list (Array.sub arr 0 k))
    in
    let correct_sink = Pid.Set.inter sink correct in
    let faulty_sink = Pid.Set.diff sink correct in
    let view =
      Pid.Set.union (pick (f + 1) correct_sink) (pick f faulty_sink)
    in
    { in_sink = false; view }
  end
