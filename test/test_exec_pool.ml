(* The persistent worker pool behind Simkit.Exec (DESIGN.md §18):
   lifecycle (lazy spawn, reuse across batches, idempotent shutdown,
   respawn), the chunk-token budget guard, the warm fork pool's
   closure-Marshal transport with its silent per-call fallback, and
   the STELLAR_CUP_JOBS environment default.

   Worker counts are capped by the machine (one core spawns no domain
   workers at all), so nothing here asserts absolute pool sizes — only
   relations the facade guarantees everywhere: batches grow with every
   parallel map (inline ones included), size never exceeds peak, and
   shutdown leaves the pool empty but usable. *)

module Exec = Simkit.Exec
module Pool = Simkit.Pool

let int_list = Alcotest.(list int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---- facade lifecycle ------------------------------------------------- *)

let test_batches_grow_and_results_stable () =
  let xs = List.init 64 Fun.id in
  let f x = (x * 7) - 3 in
  let expected = List.map f xs in
  let b0 = Exec.Pool.batches () in
  Alcotest.check int_list "first map" expected (Exec.map ~jobs:4 f xs);
  let b1 = Exec.Pool.batches () in
  Alcotest.(check bool) "a batch was counted" true (b1 > b0);
  Alcotest.check int_list "warm map" expected (Exec.map ~jobs:4 f xs);
  Alcotest.(check bool) "another batch" true (Exec.Pool.batches () > b1);
  Alcotest.(check bool) "size never exceeds peak" true
    (Exec.Pool.size () <= Exec.Pool.peak ())

let test_shutdown_idempotent_and_respawn () =
  let xs = List.init 32 Fun.id in
  let f x = x * x in
  let expected = List.map f xs in
  Alcotest.check int_list "warm the pool" expected (Exec.map ~jobs:4 f xs);
  Exec.Pool.shutdown ();
  Exec.Pool.shutdown ();
  Alcotest.(check int) "no workers after shutdown" 0 (Exec.Pool.size ());
  let b = Exec.Pool.batches () in
  Alcotest.check int_list "map after shutdown respawns" expected
    (Exec.map ~jobs:4 f xs);
  Alcotest.(check bool) "respawned batch counted" true
    (Exec.Pool.batches () > b)

let test_min_index_failure_on_warm_pool () =
  let xs = List.init 16 Fun.id in
  (* warm first, then fail mid-batch: the minimum-index failure wins
     and the pool answers the next map as if nothing happened *)
  ignore (Exec.map ~jobs:4 (fun x -> x + 1) xs);
  (try
     ignore
       (Exec.map ~chunk:1 ~jobs:4
          (fun x ->
            if x = 3 || x = 11 then failwith (Printf.sprintf "boom %d" x);
            x)
          xs);
     Alcotest.fail "expected Job_failed"
   with Exec.Job_failed msg ->
     Alcotest.(check bool) "minimum index reported" true
       (contains ~affix:"boom 3" msg));
  Alcotest.check int_list "pool still serves after a failure"
    (List.map (fun x -> x - 1) xs)
    (Exec.map ~jobs:4 (fun x -> x - 1) xs)

(* ---- chunk-token budget ------------------------------------------------ *)

let test_chunk_budget_guard () =
  if Exec.fork_available then begin
    let xs n = List.init n Fun.id in
    (* exactly at the budget: fine *)
    Alcotest.check int_list "256 chunks fit"
      (List.map succ (xs Pool.max_chunks))
      (Pool.map_chunked ~chunk:1 ~workers:2 succ (xs Pool.max_chunks));
    (* one over: a clear refusal, not a silent re-chunk *)
    (try
       ignore
         (Pool.map_chunked ~chunk:1 ~workers:2 succ (xs (Pool.max_chunks + 1)));
       Alcotest.fail "expected Invalid_argument"
     with Invalid_argument msg ->
       Alcotest.(check bool) "names the caller" true
         (contains ~affix:"Simkit.Pool.map_chunked" msg);
       Alcotest.(check bool) "suggests a chunk size" true
         (contains ~affix:"raise ~chunk" msg));
    (* Exec.map pre-clamps instead of surfacing the refusal *)
    Alcotest.check int_list "Exec.map re-chunks transparently"
      (List.map succ (xs 300))
      (Exec.map ~backend:Exec.Fork ~chunk:1 ~jobs:2 succ (xs 300))
  end

(* ---- the warm fork pool ------------------------------------------------ *)

let test_persistent_fork_lifecycle () =
  if Exec.fork_available then begin
    Pool.shutdown_persistent ();
    let xs = List.init 20 Fun.id in
    let expected = List.map succ xs in
    Alcotest.check int_list "cold batch" expected
      (Pool.map_persistent ~chunk:2 ~workers:2 succ xs);
    let w = Pool.persistent_workers () in
    Alcotest.(check bool) "workers parked between batches" true (w >= 2);
    let b = Pool.persistent_batches () in
    Alcotest.check int_list "warm batch, same workers" expected
      (Pool.map_persistent ~chunk:2 ~workers:2 succ xs);
    Alcotest.(check int) "no respawn on reuse" w (Pool.persistent_workers ());
    Alcotest.(check bool) "batch counted" true (Pool.persistent_batches () > b);
    (* a failing job leaves the pool warm *)
    (try
       ignore
         (Pool.map_persistent ~chunk:1 ~workers:2
            (fun x -> if x = 5 then failwith "kaput" else x)
            xs);
       Alcotest.fail "expected Job_failed"
     with Pool.Job_failed msg ->
       Alcotest.(check bool) "job error transported" true
         (contains ~affix:"kaput" msg));
    Alcotest.(check int) "still the same workers after a job failure" w
      (Pool.persistent_workers ());
    Pool.shutdown_persistent ();
    Alcotest.(check int) "drained" 0 (Pool.persistent_workers ())
  end

let test_unmarshalable_capture_falls_back () =
  if Exec.fork_available then begin
    (* A channel capture cannot cross the command pipe by Marshal; the
       call must silently revert to the per-call fork (which inherits
       the closure) and still return List.map's bytes. *)
    let ic = stdin in
    let f x =
      ignore (ic == ic);
      x * 3
    in
    let xs = List.init 12 Fun.id in
    Alcotest.check int_list "fallback result identical" (List.map f xs)
      (Pool.map_persistent ~chunk:1 ~workers:2 f xs)
  end

let prop_persistent_matches_list_map =
  QCheck.Test.make ~count:30
    ~name:"Pool.map_persistent = List.map (any chunk, any workers)"
    QCheck.(triple (small_list small_int) (int_range 1 5) (int_range 1 4))
    (fun (xs, chunk, workers) ->
      if not Exec.fork_available then true
      else
        let f x = (x * 31) land 255 in
        Pool.map_persistent ~chunk ~workers f xs = List.map f xs)

(* ---- the environment default ------------------------------------------- *)

let test_jobs_from_env () =
  let var = Exec.jobs_env_var in
  let old = Sys.getenv_opt var in
  let set v = Unix.putenv var v in
  Fun.protect
    ~finally:(fun () -> set (Option.value ~default:"" old))
    (fun () ->
      Alcotest.(check string) "the documented name" "STELLAR_CUP_JOBS" var;
      set "4";
      Alcotest.(check (option int)) "positive int" (Some 4)
        (Exec.jobs_from_env ());
      set " 8 ";
      Alcotest.(check (option int)) "trimmed" (Some 8) (Exec.jobs_from_env ());
      set "";
      Alcotest.(check (option int)) "empty is unset" None
        (Exec.jobs_from_env ());
      set "0";
      Alcotest.(check (option int)) "zero is malformed" None
        (Exec.jobs_from_env ());
      set "-3";
      Alcotest.(check (option int)) "negative is malformed" None
        (Exec.jobs_from_env ());
      set "many";
      Alcotest.(check (option int)) "garbage is malformed" None
        (Exec.jobs_from_env ()))

let suites =
  [
    ( "exec-pool",
      [
        Alcotest.test_case "batches grow, results stable" `Quick
          test_batches_grow_and_results_stable;
        Alcotest.test_case "shutdown idempotent, respawn works" `Quick
          test_shutdown_idempotent_and_respawn;
        Alcotest.test_case "min-index failure on a warm pool" `Quick
          test_min_index_failure_on_warm_pool;
        Alcotest.test_case "chunk-token budget guard" `Quick
          test_chunk_budget_guard;
        Alcotest.test_case "persistent fork pool lifecycle" `Quick
          test_persistent_fork_lifecycle;
        Alcotest.test_case "unmarshalable capture falls back" `Quick
          test_unmarshalable_capture_falls_back;
        QCheck_alcotest.to_alcotest prop_persistent_matches_list_map;
        Alcotest.test_case "STELLAR_CUP_JOBS parsing" `Quick test_jobs_from_env;
      ] );
  ]
