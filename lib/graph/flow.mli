(** Maximum flow (Dinic's algorithm) on small integer-capacity networks.

    Used to count node-disjoint paths (Menger's theorem) for the
    k-strong-connectivity and f-reachability checks of the k-OSR
    participant-detector definition.

    Arcs are stored in flat int arrays (reverse arc of [a] is
    [a lxor 1]) and compiled into a CSR adjacency when [max_flow] runs;
    the per-vertex arc order is insertion order, matching the seed
    implementation kept as {!Baseline}, so both compute the same flow
    and the same residual cut. *)

type t
(** A mutable flow network under construction. *)

val create : n:int -> source:int -> sink:int -> t
(** [create ~n ~source ~sink] prepares a network with nodes
    [0 .. n-1]. *)

val add_edge : t -> int -> int -> int -> unit
(** [add_edge net u v cap] adds a directed edge of capacity [cap].
    Parallel edges are allowed. *)

val max_flow : t -> int
(** Runs Dinic's algorithm and returns the value of a maximum
    source-to-sink flow. May be called once per network. *)

val min_cut_side : t -> bool array
(** After [max_flow], the set of nodes reachable from the source in the
    residual network ([true] entries); its outgoing saturated edges form
    a minimum cut. *)

(** The seed list-based implementation, kept verbatim as an equivalence
    baseline for tests and benchmarks. Same API, same results. *)
module Baseline : sig
  type t

  val create : n:int -> source:int -> sink:int -> t
  val add_edge : t -> int -> int -> int -> unit
  val max_flow : t -> int
  val min_cut_side : t -> bool array
end
