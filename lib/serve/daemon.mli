(** The analysis service daemon: a single-threaded, deterministic
    request loop over newline-delimited JSON.

    Requests are JSON objects [{"id": .., "verb": .., ...params}]; each
    produces zero or more ["trace"] envelope lines followed by exactly
    one ["response"] envelope line (a {!Core.Report} envelope whose
    meta carries the echoed [id], the [verb] and an [ok] flag). Verbs:
    [ping], [version], [analyze] (the {!Serve.Api.analyze} surface over
    a slice-system file), [run] (one consensus run), [stats] (cache
    and request counters) and [shutdown].

    The response stream is a pure function of the request stream —
    byte-identical requests yield byte-identical responses, served
    from a response cache on repeats — with the single intended
    exception of [stats], whose counters reflect accumulated state
    (that is what it is for). See DESIGN.md §14 for the protocol. *)

type t
(** One daemon instance: its file and response caches plus the
    request counter. *)

val create : ?cache_capacity:int -> unit -> t
(** [cache_capacity] (default: [STELLAR_CUP_CACHE_CAPACITY] if set,
    else 64) sizes the response cache and resizes the process-wide
    compiled-handle caches ({!Fbqs.Quorum.set_cache_capacity}, and
    {!Graphkit.Csr.set_cache_capacity} clamped to its default 16).
    @raise Invalid_argument below 1. *)

val handle_line : t -> string -> string list
(** Handles one request line, returning the output lines (each a
    serialized envelope, no trailing newline). Blank lines yield no
    output; malformed JSON or a bad request yields one error
    response. Never raises on bad input. *)

val stopping : t -> bool
(** Set once a [shutdown] request has been handled. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Reads requests until EOF or [shutdown], writing and flushing the
    response lines per request. *)

val serve_stdio : t -> unit
(** {!serve_channels} over stdin/stdout — the CI transport. *)

val serve_unix : t -> path:string -> unit
(** Listens on a Unix domain socket at [path] (an existing file there
    is replaced), serving one client at a time until a client sends
    [shutdown]. The socket file is removed on exit. *)
