(* Fixture: a lib/ module with its interface file. *)
let paired = 1
