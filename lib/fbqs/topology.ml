open Graphkit

(* A deterministic linear congruential generator over OCaml's 63-bit
   native int (xorshift* multiplier, Knuth increment). [Random] is
   avoided on purpose: its stream differs between OCaml 4.x and 5.x,
   and the committed fixture must be reproducible bit-for-bit on both —
   the provenance test regenerates it and compares bytes. *)
type rng = { mutable state : int }

let rng seed = { state = (seed * 2862933555777941757) + 3037000493 }

let next r bound =
  r.state <- ((r.state * 2685821657736338717) + 1442695040888963407) land max_int;
  (r.state lsr 17) mod bound

(* [k] distinct values from [0..m-1], ascending. *)
let sample r k m =
  if k >= m then List.init m (fun i -> i)
  else begin
    let rec go acc n =
      if n = 0 then acc
      else
        let v = next r m in
        if List.mem v acc then go acc n else go (v :: acc) (n - 1)
    in
    List.sort Int.compare (go [] k)
  end

let stellarbeat_like ?(orgs = 7) ?(validators_per_org = 3) ?(mid = 63)
    ?(leaves = 126) ?(seed = 1) () =
  if orgs < 3 || validators_per_org < 2 then
    invalid_arg "Topology.stellarbeat_like: need >= 3 orgs of >= 2 validators";
  let r = rng seed in
  let vpo = validators_per_org in
  let top = orgs * vpo in
  let org_members o = List.init vpo (fun k -> (o * vpo) + k) in
  (* Two validators of org [o]; [keep] (when in the org) is always one
     of them — a validator's own org pick always includes itself. *)
  let pick_pair o keep =
    let members = Array.of_list (org_members o) in
    let m = Array.length members in
    match List.mem keep (org_members o) with
    | true ->
        let rec other () =
          let v = members.(next r m) in
          if v = keep then other () else v
        in
        [ keep; other () ]
    | false -> List.map (fun i -> members.(i)) (sample r 2 m)
  in
  let org_slice ~n_orgs ~own v =
    let others =
      match own with
      | Some o ->
          let rec fill acc n =
            if n = 0 then acc
            else
              let cand = next r orgs in
              if cand = o || List.mem cand acc then fill acc n
              else fill (cand :: acc) (n - 1)
          in
          o :: fill [] (n_orgs - 1)
      | None -> sample r n_orgs orgs
    in
    List.concat_map
      (fun o -> pick_pair o (match own with Some o' when o' = o -> v | _ -> -1))
      (List.sort Int.compare others)
    |> Pid.Set.of_list
  in
  let top_node v =
    let o = v / vpo in
    let n_slices = 24 in
    let slices =
      List.init n_slices (fun _ ->
          org_slice ~n_orgs:(min orgs ((2 * orgs / 3) + 1)) ~own:(Some o) v)
    in
    (v, Slice.Explicit slices)
  in
  let mid_node m_idx =
    let v = top + m_idx in
    let slices =
      List.init 16 (fun _ ->
          let base = org_slice ~n_orgs:(min orgs ((orgs / 2) + 1)) ~own:None v in
          let peers =
            if mid <= 1 then []
            else
              List.filter_map
                (fun p -> if top + p = v then None else Some (top + p))
                (sample r 3 mid)
          in
          List.fold_left (fun s p -> Pid.Set.add p s) base
            (match peers with a :: b :: _ -> [ a; b ] | l -> l))
    in
    (v, Slice.Explicit slices)
  in
  let leaf_node l_idx =
    let v = top + mid + l_idx in
    let slices =
      List.init 12 (fun _ ->
          let base = org_slice ~n_orgs:(min orgs 3) ~own:None v in
          let mids =
            if mid = 0 then []
            else List.map (fun p -> top + p) (sample r 2 mid)
          in
          List.fold_left (fun s p -> Pid.Set.add p s) base mids)
    in
    (v, Slice.Explicit slices)
  in
  Quorum.system_of_list
    (List.init top top_node
    @ List.init mid mid_node
    @ List.init leaves leaf_node)
