test/test_slice_builder.ml: Alcotest Builtin Cup Digraph Fbqs Format Generators Graphkit List Pid Printf QCheck QCheck_alcotest Sink_oracle Slice_builder
