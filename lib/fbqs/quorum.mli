(** Quorums of a Federated Byzantine Quorum System (Definition 1 and
    Algorithm 1 of the paper).

    The membership tests run on a dense bitset compilation of the
    system ({!Pid.Dense_set}): threshold slice sets reduce to one
    popcount per distinct member set and candidate. Compilation is a
    first-class step — {!Compiled.compile} once, query many times —
    and each compiled system counts its own queries and popcounts for
    the observability layer. The historical implicit entry points
    ({!is_quorum} on a raw [system]) remain as thin wrappers over a
    bounded per-system-value cache; they suit callers whose system
    evolves mid-run (SCP federated voting learns slices from
    envelopes), while stable-system callers should compile explicitly.
    See DESIGN.md §8 and §9. *)

open Graphkit

type system = Slice.t Pid.Map.t
(** A slice assignment: one slice set per process. Processes absent
    from the map have declared nothing (e.g. Byzantine processes that
    stay silent); they can never satisfy the per-member slice condition
    and hence belong to no quorum. *)

val system_of_list : (Pid.t * Slice.t) list -> system

val slices_of : system -> Pid.t -> Slice.t
(** The slice set declared by a process; [Explicit []] when absent. *)

val participants : system -> Pid.Set.t
(** Processes with a declared slice set. *)

(** The explicit compilation API: compile a system once into the dense
    bitset form, then run membership queries against the compiled
    value. *)
module Compiled : sig
  type t
  (** A compiled system. Mutable only in its query/popcount counters;
      the compiled structure itself is immutable. *)

  val compile : system -> t

  val system : t -> system
  (** The system this value was compiled from. *)

  val is_quorum : t -> Pid.Set.t -> bool
  (** Algorithm 1: [Q] is a quorum iff it is non-empty and every
      [i ∈ Q] has a slice contained in [Q]. (The empty set satisfies
      the definition vacuously but is excluded, matching standard FBQS
      usage.) *)

  val is_quorum_of : t -> Pid.t -> Pid.Set.t -> bool
  (** A quorum {e of} process [i]: a quorum containing [i]. *)

  val greatest_quorum_within : t -> Pid.Set.t -> Pid.Set.t
  (** The unique largest quorum contained in the given set (possibly
      the empty set, which signals that the set contains no quorum).
      Computed by iteratively discarding members that have no slice
      inside the remaining set; correctness follows from quorums being
      closed under union. *)

  val contains_quorum : t -> Pid.Set.t -> bool
  (** Whether some (non-empty) quorum lies within the set. *)

  (** {3 Dense-bitset variants}

      The same queries, over {!Pid.Dense_set} candidates — no
      [Pid.Set] conversion on either side. These are the inner-loop
      entry points of the {!Enum} branch-and-bound analyzer, which
      evaluates thousands of candidate sets per enumeration.

      @raise Invalid_argument on a system compiled in fallback mode
      (negative pids have no dense representation; callers are
      expected to take a [Pid.Set] path there, as {!Enum} does). *)

  val is_quorum_d : t -> Pid.Dense_set.t -> bool

  val greatest_quorum_within_d : t -> Pid.Dense_set.t -> Pid.Dense_set.t

  val contains_quorum_d : t -> Pid.Dense_set.t -> bool

  type stats = {
    queries : int;  (** membership evaluations answered so far *)
    popcounts : int;  (** dense intersection-cardinality calls *)
    fallback : bool;  (** negative pids forced the [Pid.Set] path *)
  }

  val stats : t -> stats
  (** Cumulative per-compiled-system counters — the kernel-level signal
      surfaced in metrics dumps and BENCH_quorum.json. *)
end

val compile : system -> Compiled.t
(** Alias for {!Compiled.compile}. *)

(** {2 The shared compiled-handle cache}

    A process-wide {!Core.Cache} instance keyed by physical equality
    of the system value: {!compiled_of} answers from it, compiling on
    miss, and the wrappers below route every implicit query through
    it. Capacity defaults to 64 entries and is daemon-overridable
    ({!set_cache_capacity}); hit/miss/evict counters can be surfaced
    in any metrics registry ({!attach_cache_metrics}).

    @deprecated New code holding a stable system should use
    {!Compiled.compile} + the [Compiled] queries; these wrappers remain
    for callers whose system value evolves during a run. *)

val compiled_of : system -> Compiled.t
(** The cache lookup itself: the compiled handle for [sys], reused
    while the same system value stays hot. The {!Enum} analyzer and
    the analysis daemon compile through this, so repeated analyses of
    one system share a handle. *)

val is_quorum : system -> Pid.Set.t -> bool
(** [Compiled.is_quorum] through the implicit cache. *)

val is_quorum_of : system -> Pid.t -> Pid.Set.t -> bool
(** [Compiled.is_quorum_of] through the implicit cache. *)

val greatest_quorum_within : system -> Pid.Set.t -> Pid.Set.t
(** [Compiled.greatest_quorum_within] through the implicit cache. *)

val contains_quorum : system -> Pid.Set.t -> bool
(** [Compiled.contains_quorum] through the implicit cache. *)

val cache_stats : unit -> Core.Cache.stats
(** Cumulative shared-cache accounting for this process — scraped into
    the metrics registry by the runners, and reported by the daemon's
    [stats] verb. The same record shape as {!Graphkit.Csr.cache_stats}
    and every other {!Core.Cache} instance. *)

val set_cache_capacity : int -> unit
(** Resizes the shared cache (default 64 entries).
    @raise Invalid_argument below 1. *)

val attach_cache_metrics : Obs.Metrics.t -> unit
(** Registers the cache's [cache_hits]/[cache_misses]/[cache_evictions]
    counters and [cache_entries] gauge (labelled
    [cache="fbqs_quorum_compiled"]) in the registry. *)

val delete : system -> Pid.Set.t -> system
(** Mazières' delete operation: removes the nodes of [b] from the
    system and from every slice of the remaining nodes (threshold
    slices keep their symbolic form, with the threshold reduced by the
    number of deleted members). {!Dset.delete} re-exports this; it
    lives here so the {!Enum} analyzer can use it without depending on
    the DSet layer built on top of it. *)

(** {2 Enumeration and blocking sets} *)

val enum_quorums : ?universe:Pid.Set.t -> system -> Pid.Set.t list
(** All quorums included in [universe] (default: all participants).
    Exponential in [|universe|]; guarded to [|universe| <= 20].
    @raise Invalid_argument beyond the guard. *)

val minimal_quorums : ?universe:Pid.Set.t -> system -> Pid.Set.t list
(** The inclusion-minimal quorums within [universe]. *)

val minimal_quorums_of : ?universe:Pid.Set.t -> system -> Pid.t -> Pid.Set.t list
(** The inclusion-minimal elements of [Q_i] (quorums of process [i])
    within [universe]. Every quorum of [i] contains one of these, so
    universally quantified intersection properties need only be checked
    on this list. *)

val is_v_blocking : system -> Pid.t -> Pid.Set.t -> bool
(** [is_v_blocking sys i b]: the set [b] intersects every slice of [i].
    Used by SCP federated voting; false when [i] declared no slices
    (with no slices nothing can be accepted through blocking). *)
