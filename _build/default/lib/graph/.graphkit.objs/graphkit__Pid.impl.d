lib/graph/pid.ml: Format Int Map Set
