(** Graph traversals and reachability queries.

    Queries run as int-array BFS on the compiled {!Csr} kernel; graphs
    naming negative pids fall back to the seed set-union
    implementations, also exposed as [*_baseline] for equivalence tests
    and benchmarks. Both paths return identical (canonical) values. *)

val reachable : Digraph.t -> Pid.t -> Pid.Set.t
(** [reachable g i] is the set of vertices reachable from [i] following
    directed edges, including [i] itself. This is exactly the knowledge a
    process can accumulate by transitively querying the processes it
    knows (the fixpoint computed by the SINK discovery protocol). *)

val reachable_from_set : Digraph.t -> Pid.Set.t -> Pid.Set.t
(** Union of [reachable] over a set of sources. *)

val bfs_layers : Digraph.t -> Pid.t -> Pid.Set.t list
(** [bfs_layers g i] lists the BFS layers from [i]: layer 0 is [{i}],
    layer [d] contains the vertices at directed distance [d]. *)

val distance : Digraph.t -> Pid.t -> Pid.t -> int option
(** Directed hop distance, [None] if unreachable. *)

val shortest_path : Digraph.t -> Pid.t -> Pid.t -> Pid.t list option
(** One shortest directed path [i; ...; j], [None] if unreachable. *)

val is_connected_undirected : Digraph.t -> bool
(** Whether the symmetric closure of the graph is connected (condition 1
    of the k-OSR definition). Vacuously true for the empty graph. *)

val eccentricity : Digraph.t -> Pid.t -> int option
(** Longest directed distance from the vertex to any vertex reachable
    from it; [None] when the vertex is absent from the graph. *)

(** {1 Seed baselines}

    The pre-CSR implementations, kept for negative-pid graphs and as
    qcheck/bench baselines. *)

val reachable_baseline : Digraph.t -> Pid.t -> Pid.Set.t
val bfs_layers_baseline : Digraph.t -> Pid.t -> Pid.Set.t list
val is_connected_undirected_baseline : Digraph.t -> bool
