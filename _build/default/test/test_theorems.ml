open Graphkit
open Stellar_cup

let test_theorem2_fig2 () =
  match Theorems.theorem2_witness ~f:1 Builtin.fig2 with
  | Some w ->
      Alcotest.(check bool) "witness quorums thin-intersecting" true
        (Pid.Set.cardinal (Pid.Set.inter w.quorum_a w.quorum_b) <= 1);
      Alcotest.(check bool) "quorums nonempty" true
        ((not (Pid.Set.is_empty w.quorum_a))
        && not (Pid.Set.is_empty w.quorum_b))
  | None -> Alcotest.fail "fig2 must admit a Theorem 2 witness"

let test_theorem2_family_always () =
  List.iter
    (fun (s, m, f) ->
      Alcotest.(check bool)
        (Printf.sprintf "family s=%d m=%d f=%d" s m f)
        true
        (Theorems.theorem2_witness ~f
           (Generators.fig2_family ~sink_size:s ~non_sink:m)
        <> None))
    [ (4, 3, 1); (5, 4, 1); (6, 5, 1) ]

let test_theorem2_none_on_good_slices () =
  (* The witness search is honest: on the fig2 graph but with the
     drop_f rule AND a complete graph, no violation can exist. *)
  let g = Generators.complete ~n:5 in
  (* Complete graph: PD_i = everyone else; all-but-one slices are large
     and all quorums overlap heavily. *)
  Alcotest.(check bool) "complete graph has no witness" true
    (Theorems.theorem2_witness ~f:1 g = None)

let test_theorem3_closed_form_bounds () =
  Alcotest.(check bool) "s=4 f=1" true
    (Theorems.theorem3_closed_form ~sink_size:4 ~f:1);
  Alcotest.(check bool) "s=40 f=5" true
    (Theorems.theorem3_closed_form ~sink_size:40 ~f:5)

let test_theorem4_and_5_on_fig2 () =
  let f = 1 in
  let sys = Cup.Slice_builder.system_via_oracle ~f Builtin.fig2 in
  Pid.Set.iter
    (fun faulty_one ->
      let correct =
        Pid.Set.remove faulty_one (Digraph.vertices Builtin.fig2)
      in
      Alcotest.(check bool)
        (Printf.sprintf "thm4 faulty=%d" faulty_one)
        true
        (Theorems.theorem4_holds ~f ~correct sys);
      Alcotest.(check bool)
        (Printf.sprintf "thm5 faulty=%d" faulty_one)
        true
        (Theorems.theorem5_holds ~f ~correct sys))
    (Digraph.vertices Builtin.fig2)

let test_theorem5_fails_for_local_slices () =
  let f = 1 in
  let pd = Cup.Participant_detector.of_graph ~f Builtin.fig2 in
  let sys = Cup.Local_slices.system ~rule:Cup.Local_slices.all_but_one pd in
  let correct = Digraph.vertices Builtin.fig2 in
  Alcotest.(check bool) "local slices: no grand cluster" false
    (Theorems.theorem5_holds ~f ~correct sys)

let test_inequality1 () =
  (* |V_sink| >= |F_sink| + ceil((|V_sink|+f+1)/2) *)
  Alcotest.(check bool) "s=5 f=1 fs=1" true
    (Theorems.inequality1_tight ~sink_size:5 ~f:1 ~faulty_in_sink:1);
  Alcotest.(check bool) "s=4 f=1 fs=1" false
    (* 4 >= 1 + 3 holds: ceil((4+2)/2)=3, 1+3=4 <= 4 -> true! *)
    (not (Theorems.inequality1_tight ~sink_size:4 ~f:1 ~faulty_in_sink:1));
  Alcotest.(check bool) "s=3 f=1 fs=1 fails (sink too small)" false
    (Theorems.inequality1_tight ~sink_size:3 ~f:1 ~faulty_in_sink:1);
  (* the paper's guarantee: s >= 2f+1+fs implies the inequality *)
  let all_ok = ref true in
  for f = 0 to 4 do
    for fs = 0 to f do
      for s = (2 * f) + 1 + fs to (2 * f) + 12 do
        if not (Theorems.inequality1_tight ~sink_size:s ~f ~faulty_in_sink:fs)
        then all_ok := false
      done
    done
  done;
  Alcotest.(check bool) "2f+1 correct sink members suffice, always" true
    !all_ok

let suites =
  [
    ( "theorems",
      [
        Alcotest.test_case "theorem 2 witness on fig2" `Quick
          test_theorem2_fig2;
        Alcotest.test_case "theorem 2 on the family" `Quick
          test_theorem2_family_always;
        Alcotest.test_case "no false witnesses" `Quick
          test_theorem2_none_on_good_slices;
        Alcotest.test_case "theorem 3 closed form" `Quick
          test_theorem3_closed_form_bounds;
        Alcotest.test_case "theorems 4-5 on fig2" `Quick
          test_theorem4_and_5_on_fig2;
        Alcotest.test_case "theorem 5 fails for local slices" `Quick
          test_theorem5_fails_for_local_slices;
        Alcotest.test_case "inequality 1" `Quick test_inequality1;
      ] );
  ]
