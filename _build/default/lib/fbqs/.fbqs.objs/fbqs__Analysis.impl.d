lib/fbqs/analysis.ml: Array Dset Graphkit Int List Pid Quorum Slice
