test/test_metrics.ml: Alcotest Builtin Digraph Generators Graphkit Metrics
