(** Phase 1: AST-level determinism and protocol-purity rules.

    Sources are parsed with [Pparse] (compiler-libs) and walked with
    [Ast_iterator]. There is no typing pass here, so every rule is a
    syntactic heuristic, scoped by the file's repo-relative path:

    - D1 — [Hashtbl.iter]/[Hashtbl.fold] whose result can escape in
      enumeration order. Allowed when an ordering step appears in the
      same expression: a [List.sort]-family call enclosing or inside
      the enumeration, or a conversion through a [Set]/[Map] submodule
      (e.g. folding into [Pid.Map.add]).
    - D2 — wall-clock and ambient entropy ([Random.self_init],
      [Unix.gettimeofday], [Unix.time], [Sys.time]) outside [bench/].
    - D3 — polymorphic [compare]/[(=)]/[(<>)]/[Hashtbl.hash] applied
      to [Pid.Set]/[Pid.Map]/[Slice] values, judged from each
      argument's head only. Superseded by the typed rule T1
      ({!Rules_typed}) whenever a [--cmt] phase runs; kept as the
      fallback for syntactic-only runs.
    - D4 — [Marshal] outside the executor library ([lib/sim/pool.ml]
      and [lib/sim/exec.ml]), and [Obj.*] anywhere.
    - D5 — float [Printf]/[Format] conversions inside [lib/obs] render
      paths; JSON floats must go through the [Obs.Json] encoder.
    - D6 — shared-memory parallelism primitives ([Domain.spawn],
      [Mutex.*], [Condition.*]) outside [lib/sim/]; parallel work goes
      through [Simkit.Exec].
    - M1 — every [lib/] module must have an [.mli]. *)

val lint_source : rel:string -> string -> Lint_core.report
(** [lint_source ~rel path] parses [path] (an [.ml] or [.mli],
    dispatched on extension) and runs rules D1–D6 scoped as if the
    file lived at [rel]. Unparseable sources yield a single [PARSE]
    finding. Both lists come back sorted. *)

val rule_m1 :
  ml_files:string list -> mli_files:string list -> Lint_core.finding list
(** M1 over repo-relative path lists: every [lib/**.ml] without its
    sibling [.mli]. *)
