exception Job_failed of string

let has_fork = not Sys.win32

let run_in_parallel ~jobs n = has_fork && jobs > 1 && n > 1

(* Round-robin partition: worker [w] of [nw] owns the items at indices
   [i] with [i mod nw = w]. A pure function of the input list and the
   worker count, so the parent can scatter results back into input
   order without shipping indices over the pipe. *)
let partition nw xs =
  let buckets = Array.make nw [] in
  List.iteri (fun i x -> buckets.(i mod nw) <- (i, x) :: buckets.(i mod nw)) xs;
  Array.map List.rev buckets

(* One worker: compute the assigned jobs sequentially, stopping at the
   first failure (exactly the prefix a sequential [List.map] would have
   computed before raising), and marshal the outcome up the pipe. The
   child exits with [Unix._exit] so the duplicated stdio buffers and
   [at_exit] handlers of the parent never run twice. *)
let worker_main fd f items =
  let outcome : (_ list, string) result =
    try Ok (List.map (fun (_, x) -> f x) items)
    with e ->
      let bt = Printexc.get_backtrace () in
      Error
        (Printexc.to_string e ^ if bt = "" then "" else "\n" ^ String.trim bt)
  in
  (try
     let oc = Unix.out_channel_of_descr fd in
     Marshal.to_channel oc outcome [];
     flush oc
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_forked ~workers f xs =
  let n = List.length xs in
  let buckets = partition workers xs in
  flush stdout;
  flush stderr;
  let spawned =
    Array.map
      (fun items ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
            Unix.close r;
            worker_main w f items
        | pid ->
            Unix.close w;
            (pid, r, items))
      buckets
  in
  (* Collect every worker before acting on any failure: a crashed job
     must surface as an exception, never as a hang or a zombie. *)
  let outcomes =
    Array.map
      (fun (pid, r, items) ->
        let outcome =
          try
            let ic = Unix.in_channel_of_descr r in
            let (o : (_ list, string) result) = Marshal.from_channel ic in
            close_in ic;
            o
          with e ->
            (try Unix.close r with Unix.Unix_error _ -> ());
            Error ("worker died before reporting: " ^ Printexc.to_string e)
        in
        let _, status = Unix.waitpid [] pid in
        match (outcome, status) with
        | Ok results, Unix.WEXITED 0 -> Ok (items, results)
        | Error msg, _ -> Error msg
        | Ok _, status ->
            let s =
              match status with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            Error ("worker terminated abnormally: " ^ s))
      spawned
  in
  let slots = Array.make n None in
  Array.iter
    (fun outcome ->
      match outcome with
      | Error msg -> raise (Job_failed msg)
      | Ok (items, results) ->
          (* A well-behaved worker answers one result per item; anything
             else means the transport lost data. *)
          if List.length items <> List.length results then
            raise (Job_failed "worker returned a truncated result list");
          List.iter2 (fun (i, _) y -> slots.(i) <- Some y) items results)
    outcomes;
  Array.to_list
    (Array.map
       (function Some y -> y | None -> raise (Job_failed "missing result"))
       slots)

let map ~jobs f xs =
  let n = List.length xs in
  if not (run_in_parallel ~jobs n) then List.map f xs
  else map_forked ~workers:(min jobs n) f xs
