open Graphkit

let yn b = if b then "yes" else "no"
let frac num den = Printf.sprintf "%d/%d" num den
let set_str = Pid.Set.to_string

let own_value i = Scp.Value.of_ints [ i ]

(* ------------------------------------------------- parallel sampling *)

(* Every sampled experiment below is a list of parameter rows, each
   aggregating [samples] independent runs, and each run a pure function
   of (param, k). [sampled ~jobs params ~samples job] evaluates the
   whole param × sample grid through {!Simkit.Exec.map} — one flat job
   list, so workers stay busy across row boundaries — and hands each
   param its sample results back in order. The reduce is sequential and
   ordered, so the rendered tables are byte-identical for every [jobs]
   value and on every executor backend. *)
let sampled ~jobs params ~samples job =
  let grid =
    List.concat_map (fun p -> List.init samples (fun k -> (p, k))) params
  in
  let results = Simkit.Exec.map ~jobs (fun (p, k) -> job p k) grid in
  let rec take n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: tl ->
          let mine, rest = take (n - 1) tl in
          (x :: mine, rest)
      | [] -> assert false
  in
  let rec group ps rs =
    match ps with
    | [] -> []
    | p :: tl ->
        let mine, rest = take samples rs in
        (p, mine) :: group tl rest
  in
  group params results

let count_true l = List.length (List.filter Fun.id l)

(* ---------------------------------------------------------------- E1 *)

let e1_fig1_example () =
  let sys =
    Fbqs.Quorum.system_of_list
      (List.map
         (fun (i, slices) -> (i, Fbqs.Slice.explicit slices))
         Builtin.fig1_slices)
  in
  let w = Pid.Set.of_range 1 7 in
  let rows =
    List.map
      (fun i ->
        let pd = Pid.Set.remove i (Digraph.succs Builtin.fig1 i) in
        let slices = Fbqs.Quorum.slices_of sys i in
        let minimal =
          match Fbqs.Quorum.minimal_quorums_of sys i with
          | q :: _ -> set_str q
          | [] -> "(none)"
        in
        [
          string_of_int i;
          set_str pd;
          Format.asprintf "%a" Fbqs.Slice.pp slices;
          minimal;
          yn (Pid.Set.mem i Builtin.fig1_sink);
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let clusters =
    Fbqs.Cluster.maximal_clusters sys ~correct:w
      ~mode:(Fbqs.Intertwine.Correct_witness w) ()
  in
  let c1 =
    Fbqs.Cluster.is_consensus_cluster sys ~correct:w
      ~mode:(Fbqs.Intertwine.Correct_witness w)
      (Pid.Set.of_list [ 5; 6; 7 ])
  in
  Report.make ~id:"E1" ~title:"Fig. 1 running example (Section III-D)"
    ~header:[ "process"; "PD_i"; "slices S_i"; "minimal quorum of i"; "sink?" ]
    ~notes:
      [
        Printf.sprintf "{5,6,7} is a consensus cluster: %s (paper: yes)"
          (yn c1);
        Printf.sprintf "maximal consensus clusters: %s (paper: exactly {1..7})"
          (String.concat ", " (List.map set_str clusters));
      ]
    rows

(* ---------------------------------------------------------------- E2 *)

let e2_is_quorum ?(seed = 7) () =
  let rng = Random.State.make [| seed; 0xe2 |] in
  let small_row n =
    let members = Pid.Set.of_range 1 n in
    let probes = 500 in
    let agree = ref 0 in
    for _ = 1 to probes do
      let threshold = 1 + Random.State.int rng n in
      let sym = Fbqs.Slice.threshold ~members ~threshold in
      let exp = Fbqs.Slice.explicit (Fbqs.Slice.enumerate sym) in
      let q =
        Pid.Set.filter (fun _ -> Random.State.bool rng) members
      in
      if
        Fbqs.Slice.has_slice_within sym q
        = Fbqs.Slice.has_slice_within exp q
        && Fbqs.Slice.all_slices_intersect sym q
           = Fbqs.Slice.all_slices_intersect exp q
      then incr agree
    done;
    [ string_of_int n; "sym vs explicit"; frac !agree probes ]
  in
  let big_row n =
    (* explicit enumeration is infeasible (C(n, 2n/3) slices); the
       symbolic form answers instantly and satisfies the obvious
       sentinel identities. *)
    let members = Pid.Set.of_range 1 n in
    let t = (2 * n / 3) + 1 in
    let sys =
      Fbqs.Quorum.system_of_list
        (List.map
           (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
           (Pid.Set.elements members))
    in
    let compiled = Fbqs.Quorum.Compiled.compile sys in
    let full_is_quorum = Fbqs.Quorum.Compiled.is_quorum compiled members in
    let small_is_not =
      not (Fbqs.Quorum.Compiled.is_quorum compiled (Pid.Set.of_range 1 (t - 1)))
    in
    [
      string_of_int n;
      "symbolic sentinels";
      (if full_is_quorum && small_is_not then "ok" else "FAIL");
    ]
  in
  Report.make ~id:"E2" ~title:"Algorithm 1: is_quorum over slice representations"
    ~header:[ "n"; "check"; "result" ]
    ~notes:
      [
        "the symbolic threshold form must agree with explicit enumeration \
         everywhere it is feasible, and scale beyond it";
      ]
    (List.map small_row [ 6; 8; 10; 12 ] @ List.map big_row [ 100; 1000; 5000 ])

(* ---------------------------------------------------------------- E3 *)

let live_violation ~seed ~graph ~sink_size ~f =
  (* Split the network along sink/non-sink and let each side decide
     before cross traffic lands (legal before GST). *)
  let sink_side i = i < sink_size in
  let delay =
    Simkit.Delay.targeted ~gst:50_000 ~delta:5 ~seed ~slow:(fun a b ->
        sink_side a <> sink_side b)
  in
  let initial_value_of i =
    Scp.Value.of_ints [ (if sink_side i then 100 else 200) ]
  in
  let cfg =
    {
      Simkit.Run_config.default with
      seed;
      max_time = 120_000;
      delay = Some delay;
    }
  in
  let v =
    Pipeline.scp_with_local_slices ~cfg ~graph ~f ~faulty:Pid.Set.empty
      ~initial_value_of ()
  in
  v.all_decided && not v.agreement

let e3_theorem2_violation ?(seed = 1) ?(samples = 5) ?(jobs = 1) () =
  let fig2_witness = Theorems.theorem2_witness ~f:1 Builtin.fig2 in
  (* Builtin.fig2 numbers its sink 1..4, the family numbers it 0..s-1;
     the live demos run on the family form to share the split logic. *)
  let family_rows =
    List.map
      (fun ((s, m, f), lives) ->
        let g = Generators.fig2_family ~sink_size:s ~non_sink:m in
        let witness = Theorems.theorem2_witness ~f g <> None in
        [
          "fig2-family";
          Printf.sprintf "s=%d m=%d f=%d" s m f;
          yn witness;
          frac (count_true lives) samples;
        ])
      (sampled ~jobs ~samples
         [ (4, 3, 1); (5, 4, 1); (6, 5, 1); (7, 5, 2) ]
         (fun (s, m, f) k ->
           let g = Generators.fig2_family ~sink_size:s ~non_sink:m in
           live_violation ~seed:(seed + k) ~graph:g ~sink_size:s ~f))
  in
  let random_rows =
    List.map
      (fun ((s, m, f), witnesses) ->
        [
          "random k-OSR";
          Printf.sprintf "s=%d m=%d f=%d" s m f;
          Printf.sprintf "%d of %d graphs" (count_true witnesses) samples;
          "-";
        ])
      (sampled ~jobs ~samples
         [ (4, 3, 1); (6, 5, 1) ]
         (fun (s, m, f) k ->
           let g =
             Generators.random_k_osr ~seed:(seed + k) ~sink_size:s ~non_sink:m
               ~k:((2 * f) + 1) ()
           in
           Theorems.theorem2_witness ~f g <> None))
  in
  Report.make ~id:"E3"
    ~title:"Theorem 2: local slices break quorum intersection"
    ~header:[ "family"; "parameters"; "witness found"; "live SCP disagreement" ]
    ~notes:
      [
        (match fig2_witness with
        | Some w -> Format.asprintf "Fig. 2 witness: %a" Theorems.pp_violation w
        | None -> "Fig. 2 witness NOT found (unexpected!)");
        "the paper claims existence (Fig. 2); the adversarial family always \
         violates, benign random graphs may not";
      ]
    (family_rows @ random_rows)

(* ---------------------------------------------------------------- E4 *)

let e4_algorithm2_intertwined ?(seed = 2) ?(samples = 5) ?(jobs = 1) () =
  let check_graph g f =
    let sys = Cup.Slice_builder.system_via_oracle ~f g in
    Theorems.theorem3_holds ~f sys (Digraph.vertices g)
  in
  let family_row name make params =
    List.map
      (fun ((s, m, f), oks) ->
        [
          name;
          Printf.sprintf "s=%d m=%d f=%d" s m f;
          frac (count_true oks) samples;
        ])
      (sampled ~jobs ~samples params (fun (s, m, f) k ->
           check_graph (make ~s ~m ~f ~seed:(seed + k)) f))
  in
  let fig2_fixed ~s:_ ~m:_ ~f:_ ~seed:_ = Builtin.fig2 in
  let family ~s ~m ~f:_ ~seed:_ = Generators.fig2_family ~sink_size:s ~non_sink:m in
  let random ~s ~m ~f ~seed =
    Generators.random_k_osr ~seed ~sink_size:s ~non_sink:m ~k:((2 * f) + 1) ()
  in
  Report.make ~id:"E4"
    ~title:"Theorem 3: Algorithm 2 slices make all correct pairs intertwined"
    ~header:[ "family"; "parameters"; "intertwined" ]
    ~notes:
      [
        "must be 100% everywhere — Theorem 3 is unconditional given a \
         2f+1-correct sink";
        Printf.sprintf "closed form 2*ceil((s+f+1)/2) - s > f holds for all \
                        4<=s<=40, 0<=f<=5: %s"
          (yn
             (List.for_all
                (fun s ->
                  List.for_all
                    (fun f -> Theorems.theorem3_closed_form ~sink_size:s ~f)
                    [ 0; 1; 2; 3; 4; 5 ])
                (List.init 37 (fun i -> i + 4))));
      ]
    (family_row "fig2 (paper)" fig2_fixed [ (4, 3, 1) ]
    @ family_row "fig2-family" family [ (5, 4, 1); (6, 5, 2) ]
    @ family_row "random k-OSR" random [ (5, 3, 1); (6, 4, 1); (8, 4, 2) ])

let e4b_threshold_ablation () =
  let rows =
    List.concat_map
      (fun (s, f) ->
        let paper = Cup.Slice_builder.sink_threshold ~sink_size:s ~f in
        List.map
          (fun t ->
            let intersect = (2 * t) - s > f in
            let availability = s - f >= t in
            [
              Printf.sprintf "s=%d f=%d" s f;
              string_of_int t;
              yn intersect;
              yn availability;
              (if t = paper then "<- paper" else "");
            ])
          (List.init (s - f) (fun i -> i + f + 1)))
      [ (7, 1); (9, 2) ]
  in
  Report.make ~id:"E4b"
    ~title:"Ablation: sink slice threshold around ceil((s+f+1)/2)"
    ~header:[ "sink"; "threshold"; "intersection>f"; "all-correct slice"; "" ]
    ~notes:
      [
        "the paper's threshold is the smallest giving intersection > f while \
         keeping an all-correct slice (availability)";
      ]
    rows

(* ---------------------------------------------------------------- E5 *)

let e5_availability ?(seed = 3) ?(samples = 5) ?(jobs = 1) () =
  let placements g ~sink ~f =
    let vertices = Digraph.vertices g in
    let non_sink = Pid.Set.diff vertices sink in
    [
      ("sink-heavy", Generators.random_faulty_set ~seed ~f ~within:sink g);
      ( "spread",
        Generators.random_faulty_set ~seed ~f
          ~within:(if Pid.Set.is_empty non_sink then vertices else non_sink)
          g );
    ]
  in
  let rows =
    List.concat_map
      (fun (_, per_sample) -> List.concat per_sample)
      (sampled ~jobs ~samples
         [ (5, 3, 1); (8, 4, 2) ]
         (fun (s, m, f) k ->
           let g, sink =
             Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:s
               ~non_sink:m ()
           in
           let sys = Cup.Slice_builder.system_via_oracle ~f g in
           List.map
             (fun (name, faulty) ->
               let correct = Pid.Set.diff (Digraph.vertices g) faulty in
               [
                 Printf.sprintf "s=%d m=%d f=%d #%d" s m f k;
                 name;
                 yn (Theorems.theorem4_holds ~f ~correct sys);
                 yn (Theorems.theorem5_holds ~f ~correct sys);
               ])
             (placements g ~sink ~f)))
  in
  Report.make ~id:"E5"
    ~title:"Theorems 4-5: availability and the grand consensus cluster"
    ~header:[ "graph"; "fault placement"; "thm4 availability"; "thm5 cluster" ]
    ~notes:[ "must be yes everywhere: these are theorems" ]
    rows

(* ---------------------------------------------------------------- E6 *)

let e6_sink_detector ?(seed = 4) ?(samples = 3) ?(jobs = 1) () =
  let sample ((s, m, f), with_fault) k =
    let g, sink =
      Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:s
        ~non_sink:m ()
    in
    let faulty =
      if with_fault then Generators.random_faulty_set ~seed:(seed + k) ~f g
      else Pid.Set.empty
    in
    let fault_of i =
      if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
    in
    let r =
      Cup.Sink_protocol.run_cfg
        ~cfg:{ Cup.Sink_protocol.default_run_config with seed = seed + k }
        ~graph:g ~f ~fault_of ()
    in
    let correct = Pid.Set.diff (Digraph.vertices g) faulty in
    let accurate =
      Pid.Set.for_all
        (fun i ->
          match Pid.Map.find_opt i r.answers with
          | None -> false
          | Some a ->
              a.in_sink = Pid.Set.mem i sink && Pid.Set.subset a.view sink)
        correct
    in
    (r.stats.messages_sent, r.stats.end_time, accurate)
  in
  let row (((s, m, f), with_fault), results) =
    let runs = List.length results in
    let msgs = List.fold_left (fun acc (m, _, _) -> acc + m) 0 results in
    let time = List.fold_left (fun acc (_, t, _) -> acc + t) 0 results in
    let ok = count_true (List.map (fun (_, _, a) -> a) results) in
    [
      Printf.sprintf "s=%d m=%d f=%d" s m f;
      (if with_fault then "f silent" else "fault-free");
      frac ok runs;
      string_of_int (msgs / runs);
      string_of_int (time / runs);
    ]
  in
  let params = [ (5, 2, 1); (5, 4, 1); (6, 6, 1); (8, 8, 2) ] in
  Report.make ~id:"E6"
    ~title:"Algorithm 3: distributed sink detector accuracy and cost"
    ~header:[ "graph"; "faults"; "accurate"; "avg msgs"; "avg ticks" ]
    ~notes:
      [
        "accuracy must be 100%; cost grows with n (knowledge exchange is \
         quadratic in the sink, flooding adds the non-sink diameter)";
      ]
    (List.map row
       (sampled ~jobs ~samples
          (List.map (fun p -> (p, false)) params
          @ List.map (fun p -> (p, true)) params)
          sample))

(* ---------------------------------------------------------------- E7 *)

(* A synchronous in-memory drive of the reachable broadcast alone. *)
let rb_drive ~f g =
  let machines = Hashtbl.create 16 in
  let queue = Queue.create () in
  let sent = ref 0 in
  let delivered = ref [] in
  Pid.Set.iter
    (fun i ->
      Hashtbl.replace machines i
        (Cup.Rbcast.create ~self:i ~neighbors:(Digraph.succs g i) ~f ()))
    (Digraph.vertices g);
  let send src dst m =
    incr sent;
    Queue.add (src, dst, m) queue
  in
  let drain () =
    while not (Queue.is_empty queue) do
      let src, dst, m = Queue.pop queue in
      match (Hashtbl.find_opt machines dst, m) with
      | Some rb, Cup.Msg.Get_sink { origin; path } -> (
          match
            Cup.Rbcast.on_get_sink rb ~send:(send dst) ~src ~origin ~path
          with
          | Some o -> delivered := (dst, o) :: !delivered
          | None -> ())
      | _ -> ()
    done
  in
  Pid.Set.iter
    (fun i ->
      Cup.Rbcast.broadcast (Hashtbl.find machines i) ~send:(send i);
      drain ())
    (Digraph.vertices g);
  (!sent, !delivered)

let e7_reachable_broadcast ?(seed = 5) ?(samples = 3) ?(jobs = 1) () =
  let sample (s, m, f) k =
    let g, sink =
      Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:s
        ~non_sink:m ()
    in
    let sent, delivered = rb_drive ~f g in
    let expected = ref 0 and got = ref 0 in
    Pid.Set.iter
      (fun origin ->
        Pid.Set.iter
          (fun dst ->
            if not (Pid.equal dst origin) then begin
              incr expected;
              if List.mem (dst, origin) delivered then incr got
            end)
          sink)
      (Digraph.vertices g);
    (sent, !expected, !got)
  in
  let rows =
    List.map
      (fun ((s, m, f), results) ->
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
        [
          Printf.sprintf "s=%d m=%d f=%d" s m f;
          frac
            (sum (fun (_, _, g) -> g))
            (sum (fun (_, e, _) -> e));
          string_of_int (sum (fun (s, _, _) -> s) / samples);
        ])
      (sampled ~jobs ~samples [ (5, 2, 1); (5, 4, 1); (6, 6, 1); (8, 6, 2) ]
         sample)
  in
  Report.make ~id:"E7"
    ~title:"Reachable-reliable broadcast: sink delivery and traffic"
    ~header:[ "graph"; "sink deliveries"; "avg msgs / full sweep" ]
    ~notes:
      [
        "every sink member must deliver every origin's GET_SINK (they are \
         f-reachable from everywhere, Definition 9)";
      ]
    rows

(* ---------------------------------------------------------------- E8 *)

let e8_pipelines ?(seed = 6) ?(samples = 3) ?(jobs = 1) () =
  let sample (s, m, f) k =
    let g, _sink =
      Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:s
        ~non_sink:m ()
    in
    let faulty = Generators.random_faulty_set ~seed:(seed + k) ~f g in
    let run name pipeline =
      let (v : Pipeline.verdict) = pipeline () in
      [
        Printf.sprintf "n=%d f=%d #%d" (s + m) f k;
        name;
        yn (v.all_decided && v.agreement && v.validity);
        string_of_int v.discovery_msgs;
        string_of_int v.consensus_msgs;
        string_of_int v.total_time;
      ]
    in
    let cfg =
      Simkit.Run_config.with_seed (seed + k) Simkit.Run_config.default
    in
    [
      run "SCP + sink detector" (fun () ->
          Pipeline.scp_with_sink_detector ~cfg ~graph:g ~f ~faulty
            ~initial_value_of:own_value ());
      run "BFT-CUP" (fun () ->
          Pipeline.bftcup ~cfg ~graph:g ~f ~faulty ~initial_value_of:own_value
            ());
    ]
  in
  let rows =
    List.concat_map
      (fun (_, per_sample) -> List.concat per_sample)
      (sampled ~jobs ~samples [ (5, 3, 1); (5, 4, 1); (6, 6, 1) ] sample)
  in
  Report.make ~id:"E8"
    ~title:"End-to-end: SCP+SD (Corollary 2) vs the BFT-CUP baseline"
    ~header:
      [ "graph"; "pipeline"; "consensus"; "disc msgs"; "cons msgs"; "ticks" ]
    ~notes:
      [
        "both solve consensus; both pay a knowledge-increasing phase — the \
         paper's point is that Stellar additionally NEEDS it (Corollary 1) \
         while BFT-CUP has it built in";
      ]
    rows

(* ---------------------------------------------------------------- E9 *)

let e9_graph_machinery ?(seed = 8) () =
  let rows =
    List.map
      (fun (n, k) ->
        let c = Generators.circulant ~n ~k in
        let conn = Connectivity.vertex_connectivity c in
        let g =
          Generators.random_k_osr ~seed ~sink_size:n ~non_sink:4 ~k ()
        in
        let osr = Properties.is_k_osr g k in
        let sink = Properties.sink_of_exn g in
        let min_paths =
          Pid.Set.fold
            (fun i acc ->
              Pid.Set.fold
                (fun j acc ->
                  min acc (Connectivity.node_disjoint_paths g i j))
                sink acc)
            (Pid.Set.diff (Digraph.vertices g) sink)
            max_int
        in
        [
          Printf.sprintf "n=%d k=%d" n k;
          string_of_int conn;
          yn osr;
          (if min_paths = max_int then "-" else string_of_int min_paths);
        ])
      [ (5, 1); (6, 2); (8, 3); (10, 3); (12, 4) ]
  in
  Report.make ~id:"E9"
    ~title:"Definitions 6/7/9 machinery: generators vs exact checkers"
    ~header:
      [
        "params";
        "circulant connectivity (= k)";
        "random graph k-OSR";
        "min disjoint paths to sink (>= k)";
      ]
    ~notes:[ "the generators must be sound w.r.t. the exact max-flow checkers" ]
    rows

(* --------------------------------------------------------------- E10 *)

let e10_restricted_oracle ?(seed = 9) ?(samples = 3) ?(jobs = 1) () =
  (* Definition 8 permits a minimal answer to non-sink members: just
     f+1 correct sink ids (possibly plus f faulty ones). Theorems 3-5
     must survive this weakest-legal oracle. *)
  let rows =
    List.concat_map
      (fun (_, per_sample) -> per_sample)
      (sampled ~jobs ~samples
         [ (5, 3, 1); (8, 4, 2) ]
         (fun (s, m, f) k ->
           let g, _sink =
             Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:s
               ~non_sink:m ()
           in
           let faulty = Generators.random_faulty_set ~seed:(seed + k) ~f g in
           let correct = Pid.Set.diff (Digraph.vertices g) faulty in
           let oracle =
             Cup.Sink_oracle.get_sink_restricted ~seed:(seed + k) ~f ~correct g
           in
           let sys = Cup.Slice_builder.system_via_oracle ~oracle ~f g in
           [
             Printf.sprintf "s=%d m=%d f=%d #%d" s m f k;
             yn (Theorems.theorem3_holds ~f sys (Digraph.vertices g));
             yn (Theorems.theorem4_holds ~f ~correct sys);
             yn (Theorems.theorem5_holds ~f ~correct sys);
           ]))
  in
  Report.make ~id:"E10"
    ~title:"Ablation: the weakest Definition-8 oracle (f+1-member views)"
    ~header:[ "graph"; "thm3 intertwined"; "thm4 availability"; "thm5 cluster" ]
    ~notes:
      [
        "non-sink members see only f+1 correct (plus up to f faulty) sink \
         ids; the theorems must still hold — their proofs only use that \
         each non-sink slice hits one correct sink member";
      ]
    rows

(* --------------------------------------------------------------- E11 *)

let e11_gst_sweep ?(seed = 10) ?(samples = 2) ?(jobs = 1) () =
  (* Decision latency of the full Corollary-2 stack as the asynchronous
     period grows: time-to-decide should track GST (protocols cannot
     terminate reliably before stabilization), while message counts
     stay in the same band. *)
  let rows =
    List.concat_map
      (fun (_, per_sample) -> per_sample)
      (sampled ~jobs ~samples [ 0; 50; 200; 500 ] (fun gst k ->
           let f = 1 in
           let g, _ =
             Generators.random_byzantine_safe ~seed:(seed + k) ~f ~sink_size:5
               ~non_sink:3 ()
           in
           let faulty = Generators.random_faulty_set ~seed:(seed + k) ~f g in
           let cfg =
             { Simkit.Run_config.default with seed = seed + k; gst; delta = 5 }
           in
           let v =
             Pipeline.scp_with_sink_detector ~cfg ~graph:g ~f ~faulty
               ~initial_value_of:own_value ()
           in
           [
             string_of_int gst;
             Printf.sprintf "#%d" k;
             yn (v.all_decided && v.agreement);
             string_of_int (v.discovery_msgs + v.consensus_msgs);
             string_of_int v.total_time;
           ]))
  in
  Report.make ~id:"E11"
    ~title:"GST sweep: Corollary 2 stack latency under longer asynchrony"
    ~header:[ "GST"; "run"; "consensus"; "total msgs"; "ticks to decide" ]
    ~notes:
      [
        "consensus always holds (safety is GST-independent); decision time \
         grows with GST because termination needs the synchronous period";
      ]
    rows

(* --------------------------------------------------------------- E12 *)

let e12_nomination_ablation ?(seed = 12) ?(samples = 2) ?(jobs = 1) () =
  (* Stellar's leader-priority nomination vs the naive echo-everything
     strategy: same safety, far fewer messages. *)
  let rows =
    List.concat_map
      (fun (_, per_sample) -> List.concat per_sample)
      (sampled ~jobs ~samples [ 4; 7; 10 ] (fun n k ->
            let members = Pid.Set.of_range 1 n in
            let system =
              Fbqs.Quorum.system_of_list
                (List.map
                   (fun i ->
                     ( i,
                       Fbqs.Slice.threshold ~members
                         ~threshold:((2 * n / 3) + 1) ))
                   (Pid.Set.elements members))
            in
            let run nomination =
              let d = Scp.Runner.default_cfg in
              Scp.Runner.run_cfg
                ~cfg:
                  {
                    d with
                    run = { d.run with seed = seed + k };
                    nomination;
                  }
                ~system
                ~peers_of:(fun _ -> members)
                ~initial_value_of:own_value
                ~fault_of:(fun _ -> None)
                ()
            in
            let row name (o : Scp.Runner.outcome) =
              [
                Printf.sprintf "n=%d #%d" n k;
                name;
                yn (o.all_decided && o.agreement);
                string_of_int o.stats.messages_sent;
                string_of_int o.stats.end_time;
              ]
            in
            [
              row "echo-all" (run Scp.Node.Echo_all);
              row "leader-priority" (run (Scp.Node.Leader_priority 30));
            ]))
  in
  Report.make ~id:"E12"
    ~title:"Ablation: nomination strategy (echo-all vs leader priority)"
    ~header:[ "system"; "strategy"; "consensus"; "msgs"; "ticks" ]
    ~notes:
      [
        "leader-priority nomination (as in stellar-core) trades a small \
         latency overhead for a large message reduction; both are safe";
      ]
    rows

let all ?(seed = 1) ?(jobs = 1) () =
  [
    e1_fig1_example ();
    e2_is_quorum ~seed ();
    e3_theorem2_violation ~seed ~samples:3 ~jobs ();
    e4_algorithm2_intertwined ~seed ~samples:3 ~jobs ();
    e4b_threshold_ablation ();
    e5_availability ~seed ~samples:3 ~jobs ();
    e6_sink_detector ~seed ~samples:2 ~jobs ();
    e7_reachable_broadcast ~seed ~samples:2 ~jobs ();
    e8_pipelines ~seed ~samples:2 ~jobs ();
    e9_graph_machinery ~seed ();
    e10_restricted_oracle ~seed ~samples:2 ~jobs ();
    e11_gst_sweep ~seed ~samples:2 ~jobs ();
    e12_nomination_ablation ~seed ~samples:2 ~jobs ();
  ]
