open Graphkit

type t = {
  self : Pid.t;
  pd : Pid.Set.t;
  f : int;
  mutable known : Pid.Set.t;
  mutable subscribed : Pid.Set.t;  (* processes we sent Know_request to *)
  mutable subscribers : Pid.Set.t;  (* processes to notify on change *)
  mutable last_know : Pid.Set.t Pid.Map.t;  (* src -> its latest view *)
  mutable claims : Pid.Set.t Pid.Map.t;  (* claimant -> ids it vouched *)
  mutable sink : Pid.Set.t option;
}

let create ~self ~pd ~f =
  let pd = Pid.Set.remove self pd in
  {
    self;
    pd;
    f;
    known = Pid.Set.add self pd;
    subscribed = Pid.Set.empty;
    subscribers = Pid.Set.empty;
    last_know = Pid.Map.empty;
    claims = Pid.Map.empty;
    sink = None;
  }

let known t = t.known
let sink_result t = t.sink

let refresh_sink t =
  match t.sink with
  | Some _ -> ()
  | None ->
      let agreeing =
        Pid.Set.fold
          (fun j acc ->
            if Pid.equal j t.self then acc + 1
            else
              match Pid.Map.find_opt j t.last_know with
              | Some view when Pid.Set.equal view t.known -> acc + 1
              | Some _ | None -> acc)
          t.known 0
      in
      (* The size guard keeps the rule meaningful: a genuine sink has at
         least 2f+1 correct members, so a converged sink member always
         passes it, while a non-sink process with a tiny vouched set
         (e.g. |known| = f+1) cannot self-certify on its echo alone. *)
      if
        Pid.Set.cardinal t.known >= (2 * t.f) + 1
        && agreeing >= Pid.Set.cardinal t.known - t.f
      then t.sink <- Some t.known

let check_sink t =
  refresh_sink t;
  t.sink

(* Recompute [known] from first-hand knowledge plus ids vouched by
   f + 1 distinct known claimants; returns whether it grew. *)
let refresh_known t =
  let votes = Hashtbl.create 16 in
  Pid.Map.iter
    (fun claimant ids ->
      if Pid.Set.mem claimant t.known then
        Pid.Set.iter
          (fun x ->
            if not (Pid.Set.mem x t.known) then
              Hashtbl.replace votes x
                (1 + Option.value ~default:0 (Hashtbl.find_opt votes x)))
          ids)
    t.claims;
  let fresh =
    (* Order-insensitive D1 escape: the vote tally folds straight into
       [Pid.Set.add], so bucket order cannot leak into [known]. *)
    Hashtbl.fold
      (fun x c acc -> if c >= t.f + 1 then Pid.Set.add x acc else acc)
      votes Pid.Set.empty
  in
  if Pid.Set.is_empty fresh then false
  else begin
    t.known <- Pid.Set.union t.known fresh;
    true
  end

let subscribe_new t ~send =
  let unsub = Pid.Set.diff (Pid.Set.remove t.self t.known) t.subscribed in
  Pid.Set.iter
    (fun j ->
      t.subscribed <- Pid.Set.add j t.subscribed;
      send j Msg.Know_request)
    unsub

let notify_subscribers t ~send =
  Pid.Set.iter (fun j -> send j (Msg.Know t.known)) t.subscribers

let start t ~send = subscribe_new t ~send

let on_know_request t ~send ~src =
  if not (Pid.Set.mem src t.subscribers) then begin
    t.subscribers <- Pid.Set.add src t.subscribers;
    send src (Msg.Know t.known)
  end

let rec stabilise t ~send =
  (* New claims may unlock new ids, which add claimants, and so on. *)
  if refresh_known t then begin
    subscribe_new t ~send;
    notify_subscribers t ~send;
    stabilise t ~send
  end

let on_know t ~send ~src view =
  if Pid.Set.mem src t.known then begin
    (* Channels are not FIFO: a stale Know can arrive after a newer
       one. Correct processes' knowledge only grows, so keep the
       superset (for incomparable reports — only a Byzantine sender
       produces those — keep the larger). *)
    let monotone m =
      Pid.Map.update src
        (function
          | Some old
            when Pid.Set.cardinal old > Pid.Set.cardinal view
                 || Pid.Set.subset view old ->
              Some old
          | Some _ | None -> Some view)
        m
    in
    t.last_know <- monotone t.last_know;
    t.claims <- monotone t.claims;
    stabilise t ~send;
    refresh_sink t
  end
