lib/scp/node.ml: Ballot Engine Fbqs Format Fvoting Graphkit Int List Msg Pid Printf Simkit Statement Value
