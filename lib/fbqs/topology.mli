(** Deterministic generators for live-network-shaped slice systems.

    The committed analyzer fixture under [test/fixtures/] is produced
    by {!stellarbeat_like}; generation uses an embedded linear
    congruential generator rather than [Random] so the same seed
    yields the same system on every OCaml version — the provenance
    test regenerates the fixture and compares it byte-for-byte against
    the committed file. *)

val stellarbeat_like :
  ?orgs:int ->
  ?validators_per_org:int ->
  ?mid:int ->
  ?leaves:int ->
  ?seed:int ->
  unit ->
  Quorum.system
(** A three-tier topology shaped like a stellarbeat snapshot of the
    live Stellar network.

    - A top tier of [orgs] organisations with [validators_per_org]
      validators each (pids [0 .. orgs*vpo-1]). Each top validator
      declares 24 explicit slices, each picking roughly two-thirds of
      the orgs (always including its own, always including itself) and
      two validators from each picked org.
    - [mid] middle-tier nodes, each with 16 slices over about half the
      orgs plus two mid-tier peers.
    - [leaves] watcher nodes, each with 12 slices over three orgs plus
      two mid-tier nodes.

    Every slice of every non-top node names top-tier validators, so
    minimal quorums — and with them the whole branch-and-bound search
    of {!Enum} — contract to the top tier, while intersection and
    blocking analyses still range over all [orgs*vpo + mid + leaves]
    nodes. Defaults give n = 210 with 3024 explicit slices.

    @raise Invalid_argument on degenerate shapes (fewer than 3 orgs or
    2 validators per org). *)
