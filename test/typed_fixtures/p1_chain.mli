val stamp : unit -> float
(** Tainted: reaches [Unix.gettimeofday] through [helper] and
    [P1_clock.wall]; the P1 fixture expects the full chain. *)

val pure : int -> int
(** Untainted control. *)
