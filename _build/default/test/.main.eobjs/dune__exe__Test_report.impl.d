test/test_report.ml: Alcotest Format List Report Stellar_cup String
