(** Branch-and-bound enumeration analyzer for FBQS at live-network
    scale.

    The Gosper/brute-force paths in {!Quorum}, {!Dset} and {!Analysis}
    enumerate subsets and are capped at 20 participants; real Stellar
    topologies have hundreds of validators. Deciding quorum
    intersection is NP-hard (Lachowski, {i Complexity of the quorum
    intersection property}), so this module takes the pruned-search
    route of Gaul et al. ({i Mathematical Analysis and Algorithms for
    FBAS}):

    - contract the search space to the greatest quorum, then to the
      strongly connected components of the trust graph that contain a
      quorum (every minimal quorum lies inside exactly one such SCC —
      on live topologies this is the small top tier);
    - branch on pid-in/pid-out decisions, bounding each branch with
      one [greatest_quorum_within] call: a branch can still yield a
      quorum iff its committed members survive in the greatest quorum
      of its remaining pool (exact, because quorums are closed under
      union).

    Everything downstream — intersection checking, blocking sets,
    splitting sets, top tier — is built on that streaming enumeration.
    All outputs are in a canonical deterministic order (ascending
    cardinality, then {!Pid.Set.compare}), so reports are byte-stable.

    Every entry point takes [?jobs] (default 1): with [jobs > 1] the
    search tree is cut at a fixed frontier depth and the independent
    subtrees run through {!Simkit.Exec.map} on the persistent worker
    pool. The canonical ordering makes the merged output independent
    of the partition and per-subtree tick deltas are summed back into
    the analyzer, so results, [stats] and driven metrics are
    byte-identical at every [jobs] count, on both executor backends.
    See DESIGN.md §18.

    Systems naming negative pids fall back to the brute-force
    reference paths (guarded to 20 participants), mirroring the
    {!Quorum.Compiled} and {!Graphkit.Csr} fallback contracts.
    Equivalence with the brute-force paths at small [n] is
    property-tested in [test/test_enum.ml]. See DESIGN.md §13. *)

open Graphkit

type t
(** A prepared analyzer: a compiled system plus search statistics.
    Minimal quorums are computed once on first demand and cached. *)

type stats = {
  explored : int;  (** search-tree nodes visited *)
  pruned : int;  (** branches cut by the viability bound *)
  found : int;  (** minimal quorums emitted *)
}

val prepare : ?metrics:Obs.Metrics.t -> Quorum.system -> t
(** Compiles the system. When [metrics] is given, the search also
    drives the [fbqs_enum_explored] / [fbqs_enum_pruned] /
    [fbqs_enum_quorums_found] counters, so analysis runs are traceable
    like every other subsystem. *)

val system : t -> Quorum.system

val stats : t -> stats
(** Cumulative counters for this analyzer value. *)

val minimal_quorums : ?jobs:int -> t -> Pid.Set.t list
(** All inclusion-minimal quorums, in canonical order. Cached (so
    [jobs] only matters on the first call per analyzer). *)

val top_tier : ?jobs:int -> t -> Pid.Set.t
(** Union of all minimal quorums: the nodes that matter for
    consensus. *)

type intersection =
  | Intersects  (** every two quorums share a node (vacuous if none) *)
  | Disjoint of Pid.Set.t * Pid.Set.t  (** a witness pair *)

val check_intersection : ?jobs:int -> t -> intersection
(** Decides quorum intersection. Two distinct quorum-bearing SCCs
    short-circuit to [Disjoint] without any search; otherwise the
    minimal quorums are enumerated (parallel with [jobs > 1], and
    cached for later calls) and each is tested for a quorum surviving
    in its complement — any disjoint pair can be shrunk so that one
    side is minimal, so the scan is exact. The witness is the first
    such quorum in canonical order, independent of [jobs]. *)

val quorum_intersection :
  ?metrics:Obs.Metrics.t -> ?jobs:int -> Quorum.system -> intersection
(** One-shot [check_intersection] on a freshly prepared system. *)

val quorum_intersection_despite :
  ?metrics:Obs.Metrics.t -> ?jobs:int -> Quorum.system -> Pid.Set.t -> bool
(** Intersection of [Quorum.delete sys b] — the scalable engine behind
    {!Dset.quorum_intersection_despite}. *)

type blocking = {
  sets : Pid.Set.t list;
  complete : bool;  (** [false] iff the [limit] cut enumeration short *)
}

val minimal_blocking_sets : ?limit:int -> ?jobs:int -> t -> blocking
(** Inclusion-minimal sets whose failure leaves no functioning quorum.
    Availability is judged on the original system, so these are
    exactly the minimal hitting sets of the minimal-quorum family,
    enumerated by branch-and-bound (each set reached once). [limit]
    caps the number of sets returned (default: unlimited); a finite
    [limit] forces the sequential path, because which sets survive a
    truncation depends on discovery order. *)

val minimal_splitting_sets :
  ?metrics:Obs.Metrics.t ->
  ?universe:Pid.Set.t ->
  ?max_size:int ->
  ?jobs:int ->
  t ->
  Pid.Set.t list
(** Inclusion-minimal sets whose deletion breaks quorum intersection.
    Deletion is not monotone (deleting everything yields a vacuously
    intersecting system), so candidates are swept in increasing
    cardinality over [universe] (default: the top tier) with supersets
    of found splitting sets skipped — exact for minimality within the
    universe. Exponential in [|universe|]: [max_size] (default
    [|universe|]) bounds the sweep for live-scale systems. Returns
    [[∅]] when intersection already fails with nothing deleted.
    With [jobs > 1] each cardinality layer's candidates are checked
    in parallel (they are independent: a candidate can only be a
    superset of a strictly smaller splitting set), and when [metrics]
    is given the per-candidate tick deltas are replayed into it in
    candidate order — identical counters at every [jobs] count.
    @raise Invalid_argument when the universe exceeds 62 pids. *)
