(** The statements federated voting runs over.

    SCP is federated voting applied to three statement families:
    nomination ("value v should be among the composite"), prepare
    ("ballot b is prepared — all lower incompatible ballots are
    aborted") and commit ("ballot b's value is decided"). *)

type t =
  | Nominate of Value.t
  | Prepare of Ballot.t
  | Commit of Ballot.t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val implied : t -> t list
(** Statements logically implied by a statement: [Commit b] implies
    [Prepare b] (committing requires the ballot to be prepared), so a
    vote or acceptance of the former also counts for the latter. *)

module Map : Map.S with type key = t
