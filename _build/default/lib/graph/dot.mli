(** Graphviz (DOT) export of knowledge-connectivity graphs, for
    inspecting generated topologies and reproducing the paper's
    figures. *)

val to_dot :
  ?highlight:Pid.Set.t ->
  ?faulty:Pid.Set.t ->
  ?name:string ->
  Digraph.t ->
  string
(** Renders the graph in DOT syntax. Vertices in [highlight] (e.g. the
    sink component) are drawn as doubled circles; vertices in [faulty]
    are filled. *)

val to_file :
  ?highlight:Pid.Set.t ->
  ?faulty:Pid.Set.t ->
  ?name:string ->
  string ->
  Digraph.t ->
  unit
(** Writes {!to_dot} output to the given path. *)
