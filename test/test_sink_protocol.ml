open Graphkit
open Cup

let no_faults _ = None

(* The flat [Sink_protocol.run] wrapper's historical defaults, through
   the Run_config-based entry point. *)
let run ?(seed = 0) ~graph ~f ~fault_of () =
  Sink_protocol.run_cfg
    ~cfg:{ Sink_protocol.default_run_config with seed }
    ~graph ~f ~fault_of ()

let check_answers ?(faulty = Pid.Set.empty) ?(f = 1) ~graph ~sink
    (result : Sink_protocol.run_result) =
  let correct = Pid.Set.diff (Digraph.vertices graph) faulty in
  Pid.Set.iter
    (fun i ->
      match Pid.Map.find_opt i result.answers with
      | None -> Alcotest.failf "correct process %d got no answer" i
      | Some (a : Sink_oracle.answer) ->
          Alcotest.(check bool)
            (Printf.sprintf "in_sink flag of %d" i)
            (Pid.Set.mem i sink) a.in_sink;
          if Pid.Set.mem i sink then
            Alcotest.(check bool)
              (Printf.sprintf "sink member %d sees V_sink" i)
              true
              (Pid.Set.equal a.view sink)
          else begin
            Alcotest.(check bool)
              (Printf.sprintf "view of %d within V_sink" i)
              true
              (Pid.Set.subset a.view sink);
            Alcotest.(check bool)
              (Printf.sprintf "view of %d has f+1 correct sink members" i)
              true
              (Pid.Set.cardinal (Pid.Set.inter a.view correct) >= f + 1)
          end)
    correct

let test_fig1_fault_free () =
  (* Fig. 1 is 1-OSR: process 2 reaches the sink through a single
     disjoint path, so the distributed protocol requires f = 0 there
     (the paper uses fig1 for the slice examples, not for
     Byzantine-safety). *)
  let result =
    run ~graph:Builtin.fig1 ~f:0 ~fault_of:no_faults ()
  in
  check_answers ~f:0 ~graph:Builtin.fig1 ~sink:Builtin.fig1_sink result

let test_fig2_fault_free () =
  let result =
    run ~graph:Builtin.fig2 ~f:1 ~fault_of:no_faults ()
  in
  check_answers ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result

let test_fig2_with_silent_sink_member () =
  let faulty = Pid.Set.singleton 4 in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Sink_protocol.Silent else None
  in
  let result = run ~graph:Builtin.fig2 ~f:1 ~fault_of () in
  check_answers ~faulty ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result

let test_fig2_with_silent_non_sink () =
  let faulty = Pid.Set.singleton 6 in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Sink_protocol.Silent else None
  in
  let result = run ~graph:Builtin.fig2 ~f:1 ~fault_of () in
  check_answers ~faulty ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result

let test_sink_liar_defeated () =
  (* A faulty non-sink member eagerly answers GET_SINK with a fake sink;
     Algorithm 3's "repeated more than f times" rule must reject it. *)
  let fake = Pid.Set.of_list [ 5; 6; 7 ] in
  let faulty = Pid.Set.singleton 6 in
  let fault_of i =
    if Pid.Set.mem i faulty then Some (Sink_protocol.Sink_liar fake) else None
  in
  let result = run ~graph:Builtin.fig2 ~f:1 ~fault_of () in
  check_answers ~faulty ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result

let test_sink_liar_inside_sink_defeated () =
  let fake = Pid.Set.of_list [ 4; 5; 6 ] in
  let faulty = Pid.Set.singleton 4 in
  let fault_of i =
    if Pid.Set.mem i faulty then Some (Sink_protocol.Sink_liar fake) else None
  in
  let result = run ~graph:Builtin.fig2 ~f:1 ~fault_of () in
  check_answers ~faulty ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result

let test_know_liar_fabrications_filtered () =
  let fakes = Pid.Set.of_list [ 90; 91 ] in
  let faulty = Pid.Set.singleton 2 in
  let fault_of i =
    if Pid.Set.mem i faulty then Some (Sink_protocol.Know_liar fakes) else None
  in
  let result = run ~graph:Builtin.fig2 ~f:1 ~fault_of () in
  check_answers ~faulty ~graph:Builtin.fig2 ~sink:Builtin.fig2_sink result;
  (* No fabricated id ever surfaces in any answer. *)
  Pid.Map.iter
    (fun i (a : Sink_oracle.answer) ->
      Alcotest.(check bool)
        (Printf.sprintf "no fabricated ids for %d" i)
        true
        (Pid.Set.is_empty (Pid.Set.inter a.view fakes)))
    result.answers

let test_matches_pure_oracle () =
  let result =
    run ~graph:Builtin.fig1 ~f:0 ~fault_of:no_faults ()
  in
  Pid.Map.iter
    (fun i (a : Sink_oracle.answer) ->
      let expected = Sink_oracle.get_sink Builtin.fig1 i in
      Alcotest.(check bool)
        (Printf.sprintf "protocol matches oracle for %d" i)
        true
        (a.in_sink = expected.in_sink && Pid.Set.subset a.view expected.view))
    result.answers

let test_deterministic () =
  let run () =
    run ~seed:9 ~graph:Builtin.fig2 ~f:1 ~fault_of:no_faults ()
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same message count" r1.stats.messages_sent
    r2.stats.messages_sent;
  Alcotest.(check int) "same end time" r1.stats.end_time r2.stats.end_time

let prop_random_graphs_fault_free =
  QCheck.Test.make ~count:10
    ~name:"sink protocol correct on random byzantine-safe graphs"
    QCheck.(pair (int_bound 200) (int_range 1 1))
    (fun (seed, f) ->
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:((3 * f) + 2)
          ~non_sink:3 ()
      in
      let result = run ~seed ~graph:g ~f ~fault_of:no_faults () in
      Pid.Set.for_all
        (fun i ->
          match Pid.Map.find_opt i result.answers with
          | None -> false
          | Some a ->
              if Pid.Set.mem i sink then
                a.in_sink && Pid.Set.equal a.view sink
              else (not a.in_sink) && Pid.Set.subset a.view sink)
        (Digraph.vertices g))

let prop_random_graphs_with_silent_fault =
  QCheck.Test.make ~count:8
    ~name:"sink protocol tolerates a silent faulty process"
    QCheck.(int_bound 200)
    (fun seed ->
      let f = 1 in
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:3 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let fault_of i =
        if Pid.Set.mem i faulty then Some Sink_protocol.Silent else None
      in
      let result = run ~seed ~graph:g ~f ~fault_of () in
      Pid.Set.for_all
        (fun i ->
          Pid.Set.mem i faulty
          ||
          match Pid.Map.find_opt i result.answers with
          | None -> false
          | Some a ->
              if Pid.Set.mem i sink then
                a.in_sink && Pid.Set.subset a.view sink
                && Pid.Set.subset (Pid.Set.diff sink faulty) a.view
              else (not a.in_sink) && Pid.Set.subset a.view sink)
        (Digraph.vertices g))

(* Regression: [resolve_replies] used to walk a [Hashtbl], so whenever
   several candidate views cleared the [> f] threshold in the same
   check the adopted sink depended on bucket order. Ties must break to
   the [Pid.Set.compare]-minimum, whatever order the replies are
   enumerated or inserted in. *)
let test_reply_tie_breaks_deterministically () =
  let a = Pid.Set.of_list [ 1; 2; 3 ] in
  let b = Pid.Set.of_list [ 1; 2; 4 ] in
  let winner = if Pid.Set.compare a b <= 0 then a else b in
  let map_of l =
    List.fold_left (fun m (src, v) -> Pid.Map.add src v m) Pid.Map.empty l
  in
  (* f = 1: both candidates are echoed by two distinct responders. *)
  let orders =
    [
      [ (10, a); (11, a); (12, b); (13, b) ];
      [ (12, b); (13, b); (10, a); (11, a) ];
      [ (12, b); (10, a); (13, b); (11, a) ];
    ]
  in
  List.iter
    (fun l ->
      match Sink_protocol.resolve_replies ~f:1 (map_of l) with
      | None -> Alcotest.fail "a candidate over threshold must win"
      | Some v ->
          Alcotest.(check bool)
            "tie resolves to the Pid.Set.compare minimum" true
            (Pid.Set.equal v winner))
    orders;
  (* Three-way tie at f = 0: every singleton clears the threshold. *)
  let singles = List.map Pid.Set.singleton [ 7; 3; 5 ] in
  let least =
    List.fold_left
      (fun acc v -> if Pid.Set.compare v acc < 0 then v else acc)
      (List.hd singles) (List.tl singles)
  in
  let replies =
    map_of (List.mapi (fun i v -> (20 + i, v)) singles)
  in
  (match Sink_protocol.resolve_replies ~f:0 replies with
  | None -> Alcotest.fail "three candidates over threshold"
  | Some v ->
      Alcotest.(check bool) "three-way tie is deterministic" true
        (Pid.Set.equal v least));
  (* Repeated runs on the same map agree byte-for-byte. *)
  List.iter
    (fun _ ->
      Alcotest.(check bool)
        "repeated evaluation returns the same sink" true
        (match Sink_protocol.resolve_replies ~f:0 replies with
        | Some v -> Pid.Set.equal v least
        | None -> false))
    [ 1; 2; 3 ]

let test_replies_below_threshold () =
  let a = Pid.Set.of_list [ 1; 2; 3 ] in
  let replies = Pid.Map.add 10 a Pid.Map.empty in
  Alcotest.(check bool)
    "one echo is not enough at f = 1" true
    (Option.is_none (Sink_protocol.resolve_replies ~f:1 replies))

let suites =
  [
    ( "sink_protocol",
      [
        Alcotest.test_case "fig1 fault-free" `Quick test_fig1_fault_free;
        Alcotest.test_case "fig2 fault-free" `Quick test_fig2_fault_free;
        Alcotest.test_case "fig2 silent sink member" `Quick
          test_fig2_with_silent_sink_member;
        Alcotest.test_case "fig2 silent non-sink member" `Quick
          test_fig2_with_silent_non_sink;
        Alcotest.test_case "sink liar (non-sink) defeated" `Quick
          test_sink_liar_defeated;
        Alcotest.test_case "sink liar (sink member) defeated" `Quick
          test_sink_liar_inside_sink_defeated;
        Alcotest.test_case "know liar filtered" `Quick
          test_know_liar_fabrications_filtered;
        Alcotest.test_case "protocol matches pure oracle" `Quick
          test_matches_pure_oracle;
        Alcotest.test_case "deterministic runs" `Quick test_deterministic;
        Alcotest.test_case "reply ties break deterministically" `Quick
          test_reply_tie_breaks_deterministically;
        Alcotest.test_case "replies below threshold" `Quick
          test_replies_below_threshold;
        QCheck_alcotest.to_alcotest prop_random_graphs_fault_free;
        QCheck_alcotest.to_alcotest prop_random_graphs_with_silent_fault;
      ] );
  ]
