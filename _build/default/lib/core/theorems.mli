(** Machine-checked validators for the paper's theorems.

    Each function decides the theorem's statement on a concrete
    instance; the benches sweep them over graph families to regenerate
    the paper's results (EXPERIMENTS.md). *)

open Graphkit

type violation_witness = {
  process_a : Pid.t;
  quorum_a : Pid.Set.t;
  process_b : Pid.t;
  quorum_b : Pid.Set.t;
}

val pp_violation : Format.formatter -> violation_witness -> unit

val theorem2_witness :
  ?rule:(Cup.Participant_detector.t -> Pid.t -> Fbqs.Slice.t) ->
  f:int ->
  Digraph.t ->
  violation_witness option
(** Theorem 2: searches for a quorum-intersection violation
    ([|Q_a ∩ Q_b| <= f]) when slices are defined locally from [PD] and
    [f] (default rule: Theorem 2's all-but-one subsets). [None] means
    this particular graph/rule admits no violation — the theorem only
    claims existence of a failing graph (Fig. 2), not failure
    everywhere. *)

val theorem3_holds : f:int -> Fbqs.Quorum.system -> Pid.Set.t -> bool
(** Theorem 3 on an instance: every pair of processes of the given set
    is intertwined under the threshold-[f] criterion (checked on
    enumerated minimal quorums; the set must stay within the
    enumeration guard). *)

val theorem3_closed_form : sink_size:int -> f:int -> bool
(** The arithmetic core of Lemma 3: two subsets of a [sink_size]-member
    sink, each of size [ceil ((sink_size + f + 1)/2)], must overlap in
    more than [f] members. Holds for every [sink_size >= f + 1]. *)

val theorem4_holds :
  f:int -> correct:Pid.Set.t -> Fbqs.Quorum.system -> bool
(** Theorem 4 on an instance: every correct process belongs to a quorum
    made only of correct processes (via the greatest correct quorum). *)

val theorem5_holds :
  f:int -> correct:Pid.Set.t -> Fbqs.Quorum.system -> bool
(** Theorem 5 on an instance: the correct processes form a consensus
    cluster — quorum availability plus threshold intertwinement. *)

val inequality1_tight : sink_size:int -> f:int -> faulty_in_sink:int -> bool
(** Inequality 1 of Theorem 4's proof:
    [sink_size >= faulty_in_sink + ceil((sink_size + f + 1)/2)] — the
    availability margin for sink members. *)
