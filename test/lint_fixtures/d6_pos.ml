(* Fixture: raw shared-memory parallelism outside lib/sim. *)
let worker f = Domain.spawn f
let guard m = Mutex.lock m
let wake c = Condition.signal c
let park c m = Condition.wait c m
let flood c = Condition.broadcast c
