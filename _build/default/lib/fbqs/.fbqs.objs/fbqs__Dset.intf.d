lib/fbqs/dset.mli: Graphkit Pid Quorum
