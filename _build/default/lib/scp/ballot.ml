type t = { counter : int; value : Value.t }

let make counter value = { counter; value }

let compare a b =
  match Int.compare a.counter b.counter with
  | 0 -> Value.compare a.value b.value
  | c -> c

let equal a b = compare a b = 0
let compatible a b = Value.equal a.value b.value
let less_and_incompatible b b' = compare b b' < 0 && not (compatible b b')

let pp ppf b = Format.fprintf ppf "<%d, %a>" b.counter Value.pp b.value
