(* Fixture: both enumerations escape without an ordering step. *)
let leak_iter tbl = Hashtbl.iter (fun k v -> print_string (k ^ v)) tbl
let leak_fold tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
