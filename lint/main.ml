(* stellar-lint driver: a two-phase analyzer.

   Phase 1 (always): parse the sources with compiler-libs and run the
   syntactic rules D1–D6/M1 (Rules_syntactic).

   Phase 2 (--cmt DIR): load the Typedtree from the .cmt files dune
   already produced under DIR (CI points it at _build/default) and
   run the typed rule families R1/R2 (parallel capture safety), P1
   (interprocedural determinism taint) and T1 (typed polymorphic
   comparison; supersedes D3, whose syntactic findings are dropped in
   this mode).

   Usage: dune exec lint/main.exe -- [--root DIR] [--cmt DIR]
            [--json FILE] [--sarif FILE] [--baseline FILE]
            [--baseline-update] [paths...]

   With no positional paths it scans lib/ bin/ bench/ test/ lint/
   under the root, skipping _build, hidden directories and the lint
   fixture corpora (whose files violate the rules on purpose). *)

let default_dirs = [ "lib"; "bin"; "bench"; "test"; "lint" ]

let skip_dir name =
  name = "_build" || name = "lint_fixtures" || name = "typed_fixtures"
  || name.[0] = '.'

let rec walk acc path rel =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else
          walk acc (Filename.concat path entry)
            (if rel = "" then entry else rel ^ "/" ^ entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then (rel, path) :: acc
  else acc

let contains_component ~comp path =
  List.exists (String.equal comp) (String.split_on_char '/' path)

(* Typed units whose source belongs to a fixture corpus (compiled on
   purpose, violating the rules on purpose) never gate the repo run;
   the typed self-tests load those cmts directly instead. *)
let skip_typed_source source =
  source = ""
  || contains_component ~comp:"lint_fixtures" source
  || contains_component ~comp:"typed_fixtures" source

let write_out out s =
  if out = "-" then print_string s
  else begin
    let oc = open_out out in
    output_string oc s;
    close_out oc
  end

let () =
  let root = ref "." in
  let json = ref None in
  let sarif = ref None in
  let baseline = ref None in
  let baseline_update = ref false in
  let cmt = ref None in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default .)");
      ( "--cmt",
        Arg.String (fun s -> cmt := Some s),
        "DIR run the typed phase (R1/R2/P1/T1) over the .cmt files below DIR \
         (e.g. _build/default)" );
      ( "--json",
        Arg.String (fun s -> json := Some s),
        "FILE write a JSON report (- for stdout)" );
      ( "--sarif",
        Arg.String (fun s -> sarif := Some s),
        "FILE write a SARIF 2.1.0 report (- for stdout)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE baseline file (default ROOT/lint/baseline.txt)" );
      ( "--baseline-update",
        Arg.Set baseline_update,
        " rewrite the baseline file from this run's findings and exit 0" );
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "stellar-lint [options] [paths...]";
  let scan = match !paths with [] -> default_dirs | ps -> List.rev ps in
  let files =
    List.concat_map
      (fun dir ->
        let path = Filename.concat !root dir in
        if Sys.file_exists path then walk [] path dir else [])
      scan
    |> List.sort compare
  in
  let reports =
    List.map (fun (rel, path) -> Rules_syntactic.lint_source ~rel path) files
  in
  let rels = List.map fst files in
  let m1 =
    Rules_syntactic.rule_m1
      ~ml_files:(List.filter (fun f -> Filename.check_suffix f ".ml") rels)
      ~mli_files:(List.filter (fun f -> Filename.check_suffix f ".mli") rels)
  in
  let syntactic_active =
    m1 @ List.concat_map (fun r -> r.Lint_core.active) reports
  in
  let syntactic_suppressed =
    List.concat_map (fun r -> r.Lint_core.suppressed) reports
  in
  (* Typed phase: when it runs, T1 supersedes the D3 head heuristic —
     the syntactic D3 findings (a strict subset of what T1 derives
     from resolved types) are dropped rather than double-reported. *)
  let typed_report, cmt_units =
    match !cmt with
    | None -> ({ Lint_core.active = []; suppressed = [] }, 0)
    | Some dir ->
        let loaded = Loader.load_dir ~skip:skip_typed_source dir in
        let findings = Rules_typed.run loaded in
        (Lint_core.apply_allows ~root:!root findings, List.length loaded.units)
  in
  let drop_d3 findings =
    if !cmt = None then findings
    else List.filter (fun f -> f.Lint_core.rule <> "D3") findings
  in
  let active =
    List.sort Lint_core.compare_finding
      (drop_d3 syntactic_active @ typed_report.Lint_core.active)
  in
  let suppressed =
    List.sort Lint_core.compare_finding
      (drop_d3 syntactic_suppressed @ typed_report.Lint_core.suppressed)
  in
  let baseline_path =
    match !baseline with
    | Some p -> p
    | None -> Filename.concat !root "lint/baseline.txt"
  in
  if !baseline_update then begin
    write_out baseline_path (Lint_core.render_baseline active);
    Printf.printf "stellar-lint: baseline %s rewritten with %d entries\n"
      baseline_path (List.length active)
  end;
  let baseline_entries = Lint_core.load_baseline baseline_path in
  let baselined, gating =
    List.partition
      (fun f -> List.mem (Lint_core.baseline_key f) baseline_entries)
      active
  in
  List.iter (fun f -> print_endline (Lint_core.to_string f)) gating;
  Printf.printf
    "stellar-lint: %d files%s, %d findings (%d suppressed, %d baselined), %d \
     gating\n"
    (List.length files)
    (match !cmt with
    | None -> ""
    | Some _ -> Printf.sprintf " + %d typed units" cmt_units)
    (List.length active + List.length suppressed)
    (List.length suppressed) (List.length baselined) (List.length gating);
  (match !json with
  | None -> ()
  | Some out ->
      let doc =
        Obs.Json.Obj
          [
            ("version", Obs.Json.Int 2);
            ("files_scanned", Obs.Json.Int (List.length files));
            ("typed_units", Obs.Json.Int cmt_units);
            ( "findings",
              Obs.Json.List
                (List.map (Lint_core.finding_json "gating") gating
                @ List.map (Lint_core.finding_json "baselined") baselined
                @ List.map (Lint_core.finding_json "suppressed") suppressed) );
            ( "summary",
              Obs.Json.Obj
                [
                  ("gating", Obs.Json.Int (List.length gating));
                  ("baselined", Obs.Json.Int (List.length baselined));
                  ("suppressed", Obs.Json.Int (List.length suppressed));
                ] );
          ]
      in
      write_out out (Obs.Json.to_string doc ^ "\n"));
  (match !sarif with
  | None -> ()
  | Some out ->
      let doc = Lint_core.sarif_doc ~gating ~baselined ~suppressed in
      write_out out (Obs.Json.to_string doc ^ "\n"));
  if gating <> [] && not !baseline_update then exit 1
