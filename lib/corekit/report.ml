let schema = "stellar-cup/report"
let version = 1

let envelope ~kind ?(meta = []) payload =
  Obs.Json.Obj
    (("schema", Obs.Json.String schema)
    :: ("version", Obs.Json.Int version)
    :: ("kind", Obs.Json.String kind)
    :: (meta @ [ ("payload", payload) ]))
