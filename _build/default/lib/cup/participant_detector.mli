(** The participant detector oracle (Section III-E).

    [PD_i] returns the subset of processes that process [i] can
    initially contact; the union of all participant detectors is the
    knowledge-connectivity graph (Definition 5). *)

open Graphkit

type t
(** An instantiated PD oracle, backed by a knowledge graph and the
    fault threshold [f] that accompanies it in the CUP model. *)

val of_graph : f:int -> Digraph.t -> t

val query : t -> Pid.t -> Pid.Set.t
(** [query pd i] is [PD_i]; the empty set for unknown processes. Never
    contains [i] itself. *)

val f : t -> int

val graph : t -> Digraph.t

val participants : t -> Pid.Set.t

val pp : Format.formatter -> t -> unit
