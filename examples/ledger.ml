(* A replicated ledger over the whole paper stack.

   The knowledge graph is a random Byzantine-safe instance; the sink
   detector (Algorithm 3) runs once to establish slices (Algorithm 2,
   membership is static per the paper's model), then five consecutive
   SCP instances close five ledgers — each node proposing its own
   transaction batch per slot — with a silent Byzantine process present
   throughout.

   Run with: dune exec examples/ledger.exe *)

open Graphkit

let () =
  let seed = 11 and f = 1 in
  let g, _sink =
    Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:3 ()
  in
  let faulty = Generators.random_faulty_set ~seed ~f g in
  Format.printf "graph: %d processes, faulty: %a@." (Digraph.n_vertices g)
    Pid.Set.pp faulty;

  (* One-time knowledge acquisition. *)
  let fault_of_disc i =
    if Pid.Set.mem i faulty then Some Cup.Sink_protocol.Silent else None
  in
  let discovery =
    Cup.Sink_protocol.run_cfg
      ~cfg:{ Cup.Sink_protocol.default_run_config with seed }
      ~graph:g ~f ~fault_of:fault_of_disc ()
  in
  Format.printf "sink detector: %d messages, %d ticks@."
    discovery.stats.messages_sent discovery.stats.end_time;
  let system =
    Pid.Map.fold
      (fun i a sys -> Pid.Map.add i (Cup.Slice_builder.build_slices ~f a) sys)
      discovery.answers Pid.Map.empty
  in
  let peers_of i =
    match Pid.Map.find_opt i discovery.answers with
    | Some (a : Cup.Sink_oracle.answer) -> a.view
    | None -> Digraph.succs g i
  in

  (* Five ledgers: node n proposes transactions {slot*100 + n}. *)
  let tx_pool slot node = Scp.Value.of_ints [ (slot * 100) + node ] in
  let fault_of i =
    if Pid.Set.mem i faulty then Some Scp.Runner.Silent else None
  in
  let result =
    Scp.Ledger.run ~seed ~slots:5 ~system ~peers_of ~tx_pool ~fault_of ()
  in

  Format.printf "@.ledgers closed: consistent=%b complete=%b (%d msgs, %d ticks)@."
    result.consistent result.complete result.total_messages
    result.total_ticks;
  (match Pid.Map.min_binding_opt result.ledgers with
  | Some (pid, entries) ->
      Format.printf "@.ledger of process %d:@." pid;
      List.iter
        (fun e -> Format.printf "  %a@." Scp.Ledger.pp_entry e)
        entries
  | None -> Format.printf "no ledgers?!@.");
  if result.consistent && result.complete then
    Format.printf
      "@.every correct process holds the same 5-block chain — the stack is \
       usable as a (single-committee) blockchain.@."
