open Graphkit

type kind =
  | Synchronous
  | Partial
  | Targeted of (Pid.t -> Pid.t -> bool)

type t = { kind : kind; gst : int; delta : int; rng : Random.State.t }

let synchronous ~delta =
  {
    kind = Synchronous;
    gst = 0;
    delta = max 1 delta;
    rng = Random.State.make [| 0 |];
  }

let partial_synchrony ~gst ~delta ~seed =
  {
    kind = Partial;
    gst;
    delta = max 1 delta;
    rng = Random.State.make [| seed; 0xde1a |];
  }

let targeted ~gst ~delta ~seed ~slow =
  {
    kind = Targeted slow;
    gst;
    delta = max 1 delta;
    rng = Random.State.make [| seed; 0x7a26 |];
  }

let random_partition ~gst ~delta ~seed ~n =
  let rng = Random.State.make [| seed; 0xba9 |] in
  let side = Array.init (max 1 n) (fun _ -> Random.State.bool rng) in
  let side_of i = if i >= 0 && i < Array.length side then side.(i) else false in
  {
    kind = Targeted (fun a b -> side_of a <> side_of b);
    gst;
    delta = max 1 delta;
    rng = Random.State.make [| seed; 0xba10 |];
  }

let uniform t = 1 + Random.State.int t.rng t.delta

let pre_gst_random t ~now =
  (* Any delay up to the DLS deadline gst + delta. *)
  let horizon = t.gst + t.delta - now in
  if horizon <= 1 then 1 else 1 + Random.State.int t.rng horizon

let delay_of t ~now ~src ~dst =
  match t.kind with
  | Synchronous -> uniform t
  | Partial -> if now >= t.gst then uniform t else pre_gst_random t ~now
  | Targeted slow ->
      if now >= t.gst then uniform t
      else if slow src dst then max 1 (t.gst + t.delta - now)
      else uniform t

let gst t = t.gst
