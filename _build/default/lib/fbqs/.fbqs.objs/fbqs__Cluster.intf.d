lib/fbqs/cluster.mli: Graphkit Intertwine Pid Quorum
