(* P1 fixture: [stamp] is exported by the .mli and reaches
   Unix.gettimeofday only transitively, two hops deep —
   stamp -> helper -> P1_clock.wall -> Unix.gettimeofday. *)

let helper () = P1_clock.wall () +. 1.0

let stamp () = helper () *. 2.0

let pure x = x + 1
