lib/cup/msg.ml: Format Graphkit List Pid
