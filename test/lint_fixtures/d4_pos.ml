(* Fixture: serialization and unsafe casts outside Simkit.Pool. *)
let dump x = Marshal.to_string x []
let cast x = Obj.magic x
