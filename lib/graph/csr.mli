(** Compiled compressed-sparse-row (CSR) graphs: the array kernel the
    heavy graph analyses run on.

    A {!Digraph.t} is compiled once into dense int arrays — a
    deterministic pid ↔ dense-index interning (ascending pid order) plus
    [succ]/[pred] adjacency rows behind offset arrays — and the handle
    memoizes the SCC partition and the condensation, so the consumers
    that condense the same graph once per query (the sink oracle of
    Definition 8, the k-OSR checks, pipeline sweeps) pay for the
    analysis once per graph instead. Results are guaranteed identical to
    the seed tree-set algorithms, including SCC emission order and
    condensation successor-list order; graphs naming negative pids are
    not representable and make {!of_graph}/{!get} return [None], in
    which case callers fall back to the seed path (exactly the quorum
    kernel's fallback rule). *)

type t
(** A compiled graph handle. Immutable as seen through this interface;
    internally it caches analysis results on first use. *)

val of_graph : Digraph.t -> t option
(** Compiles the graph: O(V log V + E). [None] when some vertex is a
    negative pid. *)

val get : Digraph.t -> t option
(** Memoized {!of_graph}: a bounded most-recently-used {!Core.Cache}
    keyed by {e physical} equality of the graph value (graphs are
    immutable, so hits can never be stale). This is the entry point the
    rewired analyses use. Negative-pid graphs count as misses but are
    never inserted. *)

val cache_stats : unit -> Core.Cache.stats
(** Cumulative shared-cache accounting for this process — the same
    record shape as {!Fbqs.Quorum.cache_stats} and every other
    {!Core.Cache} instance; reported by the daemon's [stats] verb. *)

val set_cache_capacity : int -> unit
(** Resizes the shared cache (default 16 entries).
    @raise Invalid_argument below 1. *)

val attach_cache_metrics : Obs.Metrics.t -> unit
(** Registers the cache's [cache_hits]/[cache_misses]/[cache_evictions]
    counters and [cache_entries] gauge (labelled [cache="graphkit_csr"])
    in the registry. *)

val graph : t -> Digraph.t

val n_vertices : t -> int

val pid_of : t -> int -> Pid.t
(** Dense index -> pid. Indices are assigned in ascending pid order. *)

val index_of : t -> Pid.t -> int option
(** Pid -> dense index; [None] when the pid is not a vertex. *)

val succ_off : t -> int array
(** Offsets into {!succ_arr}: the successors of dense vertex [v] are
    [succ_arr.(succ_off.(v)) .. succ_arr.(succ_off.(v+1) - 1)], sorted
    ascending. Length [n + 1]. Callers must not mutate. *)

val succ_arr : t -> int array

val pred_off : t -> int array

val pred_arr : t -> int array

(** {1 Strongly connected components}

    Computed on first use with an iterative array Tarjan and cached in
    the handle. Component ids are the seed's emission order: a component
    is emitted only after every component reachable from it. *)

val scc_count : t -> int

val scc_comp_of_dense : t -> int array
(** Dense vertex -> component id. Callers must not mutate. *)

val scc_component_of : t -> Pid.t -> int option

val scc_component_sets : t -> Pid.Set.t array
(** Component id -> vertex set. Shared, cached array — callers must not
    mutate. *)

val scc_components : t -> Pid.Set.t list
(** The components in emission order, exactly {!Scc.components}. *)

(** {1 Condensation DAG}

    Computed on first use and cached. *)

val dag_succs : t -> int list array
(** Component id -> successor component ids, element-for-element equal
    to the seed condensation's lists. Callers must not mutate. *)

val dag_sinks : t -> int list
(** Ids of components with no outgoing DAG edge, ascending. *)
