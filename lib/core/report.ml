type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows =
  { id; title; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let w = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> w.(i) <- max w.(i) (String.length cell))
        row)
    all;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let pp ppf t =
  let w = widths t in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad w.(i) cell) row)
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%s@." (line t.header);
  Format.fprintf ppf "%s@."
    (String.concat "  "
       (Array.to_list (Array.map (fun n -> String.make n '-') w)));
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "   note: %s@." n) t.notes

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "### %s: %s\n\n" t.id t.title);
  let row_md cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string buf (row_md t.header);
  Buffer.add_string buf
    (row_md (List.map (fun _ -> "---") t.header));
  List.iter (fun r -> Buffer.add_string buf (row_md r)) t.rows;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "\n*%s*\n" n))
    t.notes;
  Buffer.contents buf

let print t = Format.printf "%a@." pp t

let to_json t =
  let strings l = Obs.Json.List (List.map (fun s -> Obs.Json.String s) l) in
  Obs.Json.Obj
    [
      ("id", Obs.Json.String t.id);
      ("title", Obs.Json.String t.title);
      ("header", strings t.header);
      ("rows", Obs.Json.List (List.map strings t.rows));
      ("notes", strings t.notes);
    ]
