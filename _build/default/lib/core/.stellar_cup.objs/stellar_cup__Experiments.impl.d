lib/core/experiments.ml: Builtin Connectivity Cup Digraph Fbqs Format Generators Graphkit Hashtbl List Pid Pipeline Printf Properties Queue Random Report Scp Simkit String Theorems
