lib/scp/statement.ml: Ballot Format Int Map Value
