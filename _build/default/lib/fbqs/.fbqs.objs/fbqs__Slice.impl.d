lib/fbqs/slice.ml: Format Graphkit List Pid
