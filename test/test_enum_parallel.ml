(* Frontier-sharded Enum searches (DESIGN.md §18) must be invisible in
   everything but wall-clock: every entry point, the search stats, the
   per-analysis metrics registry and the full Api payload are compared
   byte-for-byte between jobs=1 and jobs>1. The random systems replay
   the LCG generator of test_enum so cases are identical on 4.x and
   5.x; the stellarbeat-shaped case is deep enough (top tier above the
   frontier depth) that the jobs>1 run genuinely creates shards. *)

open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal
let pid_sets = Alcotest.(list pid_set)

let sets_equal a b =
  List.length a = List.length b && List.for_all2 Pid.Set.equal a b

let intersection_equal a b =
  match (a, b) with
  | Enum.Intersects, Enum.Intersects -> true
  | Enum.Disjoint (a1, a2), Enum.Disjoint (b1, b2) ->
      Pid.Set.equal a1 b1 && Pid.Set.equal a2 b2
  | _ -> false

let stats_equal (a : Enum.stats) (b : Enum.stats) =
  a.explored = b.explored && a.pruned = b.pruned && a.found = b.found

(* Same deterministic generator as test_enum. *)
let random_system seed n =
  let state = ref (((seed * 2862933555777941757) + 3037000493) land max_int) in
  let next bound =
    state :=
      ((!state * 2685821657736338717) + 1442695040888963407) land max_int;
    (!state lsr 17) mod bound
  in
  Quorum.system_of_list
    (List.init n (fun i ->
         let i = i + 1 in
         let n_slices = 1 + next 3 in
         let slice () =
           let s =
             List.filter (fun _ -> next 2 = 0)
               (List.init n (fun j -> j + 1))
           in
           Pid.Set.of_list (if s = [] then [ i ] else s)
         in
         (i, Slice.explicit (List.init n_slices (fun _ -> slice ())))))

let sys_arb =
  QCheck.(
    map
      (fun (seed, n) -> (seed, n, random_system seed n))
      (pair (int_range 0 100000) (int_range 1 8)))
  |> QCheck.set_print (fun (seed, n, _) -> Printf.sprintf "seed=%d n=%d" seed n)

(* ---- qcheck parity, every entry point ---------------------------------- *)

let prop_minimal_quorums_parity =
  QCheck.Test.make ~count:150 ~name:"minimal_quorums: jobs=4 = jobs=1" sys_arb
    (fun (_, _, sys) ->
      let t1 = Enum.prepare sys and t4 = Enum.prepare sys in
      let q1 = Enum.minimal_quorums ~jobs:1 t1 in
      let q4 = Enum.minimal_quorums ~jobs:4 t4 in
      sets_equal q1 q4
      && stats_equal (Enum.stats t1) (Enum.stats t4)
      && Pid.Set.equal (Enum.top_tier t1) (Enum.top_tier t4))

let prop_intersection_parity =
  QCheck.Test.make ~count:150 ~name:"check_intersection: jobs=4 = jobs=1"
    sys_arb
    (fun (_, _, sys) ->
      intersection_equal
        (Enum.check_intersection ~jobs:1 (Enum.prepare sys))
        (Enum.check_intersection ~jobs:4 (Enum.prepare sys)))

let prop_blocking_parity =
  QCheck.Test.make ~count:150 ~name:"minimal_blocking_sets: jobs=4 = jobs=1"
    sys_arb
    (fun (_, _, sys) ->
      let b1 = Enum.minimal_blocking_sets ~jobs:1 (Enum.prepare sys) in
      let b4 = Enum.minimal_blocking_sets ~jobs:4 (Enum.prepare sys) in
      sets_equal b1.Enum.sets b4.Enum.sets
      && b1.Enum.complete = b4.Enum.complete)

let prop_blocking_limit_parity =
  (* A finite limit pins the truncation to discovery order, so jobs
     must be ignored there — byte-equal including the [complete] flag. *)
  QCheck.Test.make ~count:100 ~name:"blocking ~limit: jobs=4 = jobs=1"
    QCheck.(pair sys_arb (int_range 0 4))
    (fun ((_, _, sys), limit) ->
      let b1 = Enum.minimal_blocking_sets ~limit ~jobs:1 (Enum.prepare sys) in
      let b4 = Enum.minimal_blocking_sets ~limit ~jobs:4 (Enum.prepare sys) in
      sets_equal b1.Enum.sets b4.Enum.sets
      && b1.Enum.complete = b4.Enum.complete)

let prop_splitting_parity =
  QCheck.Test.make ~count:80 ~name:"minimal_splitting_sets: jobs=4 = jobs=1"
    sys_arb
    (fun (_, _, sys) ->
      sets_equal
        (Enum.minimal_splitting_sets ~jobs:1 (Enum.prepare sys))
        (Enum.minimal_splitting_sets ~jobs:4 (Enum.prepare sys)))

(* ---- metrics replay ----------------------------------------------------- *)

let registry_string f =
  let metrics = Obs.Metrics.create () in
  f metrics;
  Obs.Json.to_string (Obs.Metrics.to_json metrics)

let prop_metrics_parity =
  (* The registry is only ever ticked by the caller (prefix walk plus
     ordered delta replay), so counters — not just results — must
     match at every jobs count. *)
  QCheck.Test.make ~count:80 ~name:"metrics registry: jobs=4 = jobs=1" sys_arb
    (fun (_, _, sys) ->
      let run jobs =
        registry_string (fun metrics ->
            let t = Enum.prepare ~metrics sys in
            ignore (Enum.minimal_quorums ~jobs t);
            ignore (Enum.check_intersection ~jobs t);
            ignore (Enum.minimal_splitting_sets ~metrics ~jobs t))
      in
      String.equal (run 1) (run 4))

(* ---- a genuinely sharded search ----------------------------------------- *)

let deep_system =
  (* Top tier 3 orgs x 3 validators = 9 > the frontier depth, so the
     jobs=4 search really cuts shards and merges them. *)
  Topology.stellarbeat_like ~orgs:3 ~validators_per_org:3 ~mid:4 ~leaves:5
    ~seed:11 ()

let test_deep_parity () =
  let t1 = Enum.prepare deep_system and t4 = Enum.prepare deep_system in
  let q1 = Enum.minimal_quorums ~jobs:1 t1 in
  let b0 = Simkit.Exec.Pool.batches () in
  let q4 = Enum.minimal_quorums ~jobs:4 t4 in
  Alcotest.(check bool) "sharded path engaged the pool" true
    (Simkit.Exec.Pool.batches () > b0);
  Alcotest.check pid_sets "quorums identical" q1 q4;
  Alcotest.(check int) "explored identical" (Enum.stats t1).Enum.explored
    (Enum.stats t4).Enum.explored;
  Alcotest.(check int) "pruned identical" (Enum.stats t1).Enum.pruned
    (Enum.stats t4).Enum.pruned;
  Alcotest.(check bool) "blocking identical" true
    (let b1 = Enum.minimal_blocking_sets ~jobs:1 t1 in
     let b4 = Enum.minimal_blocking_sets ~jobs:4 t4 in
     sets_equal b1.Enum.sets b4.Enum.sets
     && b1.Enum.complete = b4.Enum.complete)

(* ---- the full service payload ------------------------------------------- *)

let test_api_payload_parity () =
  let payload jobs sys =
    let opts =
      {
        Serve.Api.default_analysis_options with
        despite = [ []; [ 1 ]; [ 2; 3 ] ];
        blocking = true;
        splitting = true;
        max_size = Some 3;
        metrics = true;
        jobs;
      }
    in
    Obs.Json.to_string
      (Serve.Api.analysis_payload opts (Serve.Api.analyze opts sys))
  in
  List.iter
    (fun (name, sys) ->
      Alcotest.(check string)
        (name ^ ": payload byte-identical at jobs=1/4")
        (payload 1 sys) (payload 4 sys);
      Alcotest.(check string)
        (name ^ ": payload byte-identical at jobs=1/7")
        (payload 1 sys) (payload 7 sys))
    [
      ("deep", deep_system);
      ("random-6", random_system 42 6);
      ( "disjoint",
        Quorum.system_of_list
          [
            (1, Slice.explicit [ set [ 1; 2 ] ]);
            (2, Slice.explicit [ set [ 1; 2 ] ]);
            (3, Slice.explicit [ set [ 3; 4 ] ]);
            (4, Slice.explicit [ set [ 3; 4 ] ]);
          ] );
    ]

let suites =
  [
    ( "enum-parallel",
      [
        QCheck_alcotest.to_alcotest prop_minimal_quorums_parity;
        QCheck_alcotest.to_alcotest prop_intersection_parity;
        QCheck_alcotest.to_alcotest prop_blocking_parity;
        QCheck_alcotest.to_alcotest prop_blocking_limit_parity;
        QCheck_alcotest.to_alcotest prop_splitting_parity;
        QCheck_alcotest.to_alcotest prop_metrics_parity;
        Alcotest.test_case "deep topology parity + sharding engaged" `Quick
          test_deep_parity;
        Alcotest.test_case "service payload parity" `Quick
          test_api_payload_parity;
      ] );
  ]
