(* Equivalence suites for the compiled CSR kernel: every rewired
   algorithm must return exactly what its seed baseline returns —
   ordering included, since EXPERIMENTS.md reproducibility rides on
   it — and negative-pid graphs must take the seed fallback. *)

open Graphkit

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal
let comps_eq = List.equal Pid.Set.equal

let comps_pp ppf cs =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Pid.Set.pp)
    cs

let comps = Alcotest.testable comps_pp comps_eq

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Digraph.pp g)
    QCheck.Gen.(
      let* n = int_range 1 9 in
      let* edges =
        list_size (int_bound 25) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (Digraph.of_edges edges))

(* Edge lists rather than graphs, so the same topology can be built
   twice: once on pids [0..] (CSR path) and once shifted negative (seed
   fallback path). *)
let arb_edges =
  QCheck.make
    ~print:(fun es ->
      String.concat ", "
        (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) es))
    QCheck.Gen.(
      let* n = int_range 1 8 in
      list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1))))

(* ---- compiled representation ----------------------------------------- *)

let test_compile_structure () =
  let g = Digraph.of_edges [ (5, 1); (1, 3); (3, 5); (3, 1); (7, 3) ] in
  match Csr.of_graph g with
  | None -> Alcotest.fail "of_graph returned None on a non-negative graph"
  | Some h ->
      Alcotest.(check int) "n_vertices" 4 (Csr.n_vertices h);
      Alcotest.(check (list int))
        "pids ascending"
        [ 1; 3; 5; 7 ]
        (List.init 4 (Csr.pid_of h));
      List.iteri
        (fun k p ->
          Alcotest.(check (option int))
            (Printf.sprintf "index_of %d" p)
            (Some k) (Csr.index_of h p))
        [ 1; 3; 5; 7 ];
      Alcotest.(check (option int)) "index_of absent" None (Csr.index_of h 2);
      Alcotest.(check (option int)) "index_of negative" None (Csr.index_of h (-1));
      let row off arr v =
        List.init (off.(v + 1) - off.(v)) (fun i ->
            Csr.pid_of h arr.(off.(v) + i))
      in
      for v = 0 to 3 do
        let p = Csr.pid_of h v in
        Alcotest.(check (list int))
          (Printf.sprintf "succ row of %d" p)
          (Pid.Set.elements (Digraph.succs g p))
          (row (Csr.succ_off h) (Csr.succ_arr h) v);
        Alcotest.(check (list int))
          (Printf.sprintf "pred row of %d" p)
          (Pid.Set.elements (Digraph.preds g p))
          (row (Csr.pred_off h) (Csr.pred_arr h) v)
      done

let test_memo_is_physical () =
  let g = Digraph.of_edges [ (1, 2); (2, 1) ] in
  match (Csr.get g, Csr.get g) with
  | Some a, Some b ->
      Alcotest.(check bool) "same handle on repeat get" true (a == b)
  | _ -> Alcotest.fail "get returned None on a non-negative graph"

let test_empty_and_singleton () =
  (match Csr.of_graph Digraph.empty with
  | None -> Alcotest.fail "empty graph should compile"
  | Some h ->
      Alcotest.(check int) "empty has 0 vertices" 0 (Csr.n_vertices h);
      Alcotest.(check int) "empty has 0 components" 0 (Csr.scc_count h);
      Alcotest.(check (list int)) "empty has no sinks" [] (Csr.dag_sinks h));
  let g = Digraph.add_vertex 3 Digraph.empty in
  match Csr.of_graph g with
  | None -> Alcotest.fail "singleton graph should compile"
  | Some h ->
      Alcotest.(check int) "singleton component count" 1 (Csr.scc_count h);
      Alcotest.check comps "singleton component"
        [ Pid.Set.singleton 3 ]
        (Csr.scc_components h);
      Alcotest.(check (list int)) "singleton is the sink" [ 0 ]
        (Csr.dag_sinks h)

let test_negative_pid_fallback () =
  let g = Digraph.of_edges [ (-1, 2); (2, -1); (2, 3) ] in
  Alcotest.(check bool) "of_graph is None" true (Option.is_none (Csr.of_graph g));
  Alcotest.(check bool) "get is None" true (Option.is_none (Csr.get g));
  Alcotest.check comps "components via fallback"
    (Scc.components_baseline g) (Scc.components g);
  Alcotest.check comps "sink components via fallback"
    (Condensation.sink_components_baseline g)
    (Condensation.sink_components g);
  Alcotest.check pid_set "reachable via fallback"
    (Traversal.reachable_baseline g (-1))
    (Traversal.reachable g (-1));
  Alcotest.(check int)
    "menger via fallback"
    (Connectivity.node_disjoint_paths_baseline g (-1) 3)
    (Connectivity.node_disjoint_paths g (-1) 3)

let test_fig2_exact () =
  let g = Generators.fig2_family ~sink_size:4 ~non_sink:3 in
  Alcotest.check comps "fig2 components, order included"
    (Scc.components_baseline g) (Scc.components g);
  Alcotest.check comps "fig2 sink components"
    (Condensation.sink_components_baseline g)
    (Condensation.sink_components g);
  Alcotest.(check bool) "fig2 is 3-OSR both ways" true
    (Properties.is_k_osr g 3 = Properties.is_k_osr_baseline g 3)

let test_big_circulant_smoke () =
  let g = Generators.circulant ~n:50_000 ~k:3 in
  match Csr.of_graph g with
  | None -> Alcotest.fail "circulant should compile"
  | Some h ->
      Alcotest.(check int) "one component, no stack overflow" 1
        (Csr.scc_count h);
      Alcotest.(check (list int)) "one sink" [ 0 ] (Csr.dag_sinks h)

(* ---- qcheck equivalence ----------------------------------------------- *)

let prop_scc_exact =
  QCheck.Test.make ~count:300 ~name:"csr SCC = seed SCC, order included"
    arb_graph (fun g ->
      comps_eq (Scc.components g) (Scc.components_baseline g))

let prop_condensation_exact =
  QCheck.Test.make ~count:300 ~name:"csr condensation = seed condensation"
    arb_graph (fun g ->
      let d = Condensation.make g and s = Condensation.make_baseline g in
      let dc = Condensation.components d and sc = Condensation.components s in
      Array.length dc = Array.length sc
      && Array.for_all2 Pid.Set.equal dc sc
      && List.for_all
           (fun v ->
             Condensation.component_of d v = Condensation.component_of s v)
           (Pid.Set.elements (Digraph.vertices g))
      && List.init (Array.length dc) Fun.id
         |> List.for_all (fun k ->
                List.equal Int.equal
                  (Condensation.dag_succs d k)
                  (Condensation.dag_succs s k))
      && List.equal Int.equal (Condensation.sinks d) (Condensation.sinks s))

let prop_sink_components_exact =
  QCheck.Test.make ~count:300 ~name:"csr sink components = seed" arb_graph
    (fun g ->
      comps_eq
        (Condensation.sink_components g)
        (Condensation.sink_components_baseline g))

let prop_reachability_equal =
  QCheck.Test.make ~count:200 ~name:"csr reachability = seed traversal"
    arb_graph (fun g ->
      List.for_all
        (fun v ->
          Pid.Set.equal (Traversal.reachable g v)
            (Traversal.reachable_baseline g v)
          && comps_eq (Traversal.bfs_layers g v)
               (Traversal.bfs_layers_baseline g v))
        (Pid.Set.elements (Digraph.vertices g))
      && Bool.equal
           (Traversal.is_connected_undirected g)
           (Traversal.is_connected_undirected_baseline g))

let prop_menger_equal =
  QCheck.Test.make ~count:100 ~name:"csr menger = seed menger" arb_graph
    (fun g ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              Connectivity.node_disjoint_paths g i j
              = Connectivity.node_disjoint_paths_baseline g i j)
            vs)
        vs)

let prop_masked_menger_equal =
  QCheck.Test.make ~count:100
    ~name:"masked disjoint_paths_within = subgraph baseline" arb_graph
    (fun g ->
      let vs = Pid.Set.elements (Digraph.vertices g) in
      let allowed =
        Pid.Set.of_list (List.filteri (fun i _ -> i mod 2 = 0) vs)
      in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              let keep = Pid.Set.add i (Pid.Set.add j allowed) in
              Connectivity.disjoint_paths_within g ~allowed i j
              = Connectivity.node_disjoint_paths_baseline
                  (Digraph.subgraph keep g) i j)
            vs)
        vs)

let prop_kosr_equal =
  QCheck.Test.make ~count:100 ~name:"csr is_k_osr = seed is_k_osr" arb_graph
    (fun g ->
      List.for_all
        (fun k ->
          Bool.equal (Properties.is_k_osr g k) (Properties.is_k_osr_baseline g k))
        [ 1; 2; 3 ])

(* The same topology on [0..] (CSR path) and shifted to negative pids
   (seed fallback path) must analyse identically modulo the shift. *)
let prop_negative_shift_equal =
  QCheck.Test.make ~count:200 ~name:"negative-pid fallback matches CSR path"
    arb_edges (fun es ->
      let shift = -5 in
      let g0 = Digraph.of_edges es in
      let gn =
        Digraph.of_edges (List.map (fun (i, j) -> (i + shift, j + shift)) es)
      in
      let shifted s = Pid.Set.map (fun v -> v + shift) s in
      comps_eq
        (List.map shifted (Scc.components g0))
        (Scc.components gn)
      && comps_eq
           (List.map shifted (Condensation.sink_components g0))
           (Condensation.sink_components gn))

let arb_network =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d; %s" n
        (String.concat ", "
           (List.map (fun (u, v, c) -> Printf.sprintf "%d->%d/%d" u v c) es)))
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* es =
        list_size (int_bound 20)
          (triple (int_bound (n - 1)) (int_bound (n - 1)) (int_bound 5))
      in
      return (n, es))

let prop_flow_equal =
  QCheck.Test.make ~count:300 ~name:"array dinic = seed dinic (flow and cut)"
    arb_network (fun (n, es) ->
      let mk add create =
        let net = create ~n ~source:0 ~sink:(n - 1) in
        List.iter (fun (u, v, c) -> add net u v c) es;
        net
      in
      let a = mk Flow.add_edge Flow.create in
      let b = mk Flow.Baseline.add_edge Flow.Baseline.create in
      Flow.max_flow a = Flow.Baseline.max_flow b
      && Array.to_list (Flow.min_cut_side a)
         = Array.to_list (Flow.Baseline.min_cut_side b))

let suites =
  [
    ( "csr",
      [
        Alcotest.test_case "compiled structure" `Quick test_compile_structure;
        Alcotest.test_case "handle memo is physical" `Quick
          test_memo_is_physical;
        Alcotest.test_case "empty and singleton" `Quick
          test_empty_and_singleton;
        Alcotest.test_case "negative-pid fallback" `Quick
          test_negative_pid_fallback;
        Alcotest.test_case "fig2 exact equivalence" `Quick test_fig2_exact;
        Alcotest.test_case "50k circulant smoke (no overflow)" `Slow
          test_big_circulant_smoke;
        QCheck_alcotest.to_alcotest prop_scc_exact;
        QCheck_alcotest.to_alcotest prop_condensation_exact;
        QCheck_alcotest.to_alcotest prop_sink_components_exact;
        QCheck_alcotest.to_alcotest prop_reachability_equal;
        QCheck_alcotest.to_alcotest prop_menger_equal;
        QCheck_alcotest.to_alcotest prop_masked_menger_equal;
        QCheck_alcotest.to_alcotest prop_kosr_equal;
        QCheck_alcotest.to_alcotest prop_negative_shift_equal;
        QCheck_alcotest.to_alcotest prop_flow_equal;
      ] );
  ]
