(** Domain-pool backend for {!Exec} (no-domains stub, OCaml 4.14).

    Copied to [exec_domains.mli] by a dune rule when the compiler lacks
    domains; see [exec_domains_native.mli] for the OCaml 5 side. Both
    variants expose exactly this signature. *)

val available : bool
(** [false]: this runtime cannot spawn domains. *)

val locked : (unit -> 'a) -> 'a
(** The identity: no domains, nothing to serialize. *)

val map_chunked :
  chunk:int -> domains:int -> (int -> unit) -> int -> (int * string) list
(** @raise Invalid_argument always — {!Exec} never dispatches here
    when [available] is [false]. *)
