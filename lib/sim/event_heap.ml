(* Flat engine event heap: structure-of-arrays, zero allocation per
   event. The seed {!Event_queue} allocates a variant payload plus an
   entry record per push; at sweep scale that is two heap blocks per
   simulated message, all garbage by the next pop. Here an event is a
   row across parallel arrays — packed ordering key, kind code, two
   node ids, timer tag, message payload — and the binary heap orders
   small int row ids, so a sift step moves one int, never a row.

   Ordering matches {!Event_queue} exactly: (time, push sequence),
   packed into one int key [(time lsl 31) lor seq] so heap comparisons
   are single int compares. Times must fit 31 bits — simulation clocks
   are bounded by [max_time] (~10^6 in every config) — and a run would
   need 2^31 pushes to exhaust the sequence space.

   Row slots are recycled through an intrusive free list threaded
   through the key array (a freed row's key field holds the next free
   row id), so steady-state push/pop touches no allocator at all. Pop
   is cursor-style: it parks the minimum event's row id and the
   accessors read that row until the next pop recycles it. *)

module Kind = struct
  type t = int

  let start = 0
  let timer = 1
  let deliver = 2
  let equal (a : t) (b : t) = Int.equal a b
end

type 'm t = {
  mutable heap : int array; (* row ids, min-heap by [keys.(row)] *)
  mutable keys : int array; (* per-row key; free-list next when freed *)
  mutable kinds : int array;
  mutable na : int array; (* started pid / timer owner / deliver src *)
  mutable nb : int array; (* deliver dst *)
  mutable tags : string array; (* timer tag; "" elsewhere *)
  mutable payloads : 'm array;
      (* physically [[||]] until the first deliver is pushed: ['m] has
         no witness value before that, and a heap of starts and timers
         never needs the array at all. *)
  mutable size : int;
  mutable free_head : int; (* -1: none *)
  mutable alloc_top : int; (* rows below this have been handed out *)
  mutable cursor : int; (* row of the last popped event; -1 initially *)
  mutable seq : int;
  mutable hw : int;
}

let seq_bits = 31
let max_encodable_time = (1 lsl seq_bits) - 1

let create () =
  {
    heap = [||];
    keys = [||];
    kinds = [||];
    na = [||];
    nb = [||];
    tags = [||];
    payloads = [||];
    size = 0;
    free_head = -1;
    alloc_top = 0;
    cursor = -1;
    seq = 0;
    hw = 0;
  }

let length t = t.size
let is_empty t = t.size = 0
let high_water t = t.hw

(* Live rows never exceed [size + 1] (the heap plus the cursor), so
   growing every array in lockstep when either the heap or the row
   store runs out keeps one invariant: all arrays share a capacity
   strictly greater than [max size alloc_top]. *)
let ensure_capacity t =
  let cap = Array.length t.heap in
  if t.size + 1 >= cap || t.alloc_top + 1 >= cap then begin
    let ncap = max 16 (2 * cap) in
    let grow a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.heap <- grow t.heap 0;
    t.keys <- grow t.keys 0;
    t.kinds <- grow t.kinds 0;
    t.na <- grow t.na 0;
    t.nb <- grow t.nb 0;
    t.tags <- grow t.tags "";
    if Array.length t.payloads > 0 then
      t.payloads <- grow t.payloads t.payloads.(0)
  end

let alloc_row t =
  if t.free_head >= 0 then begin
    let r = t.free_head in
    t.free_head <- t.keys.(r);
    r
  end
  else begin
    let r = t.alloc_top in
    t.alloc_top <- r + 1;
    r
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.keys.(t.heap.(i)) < t.keys.(t.heap.(parent)) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let smallest =
      if r < t.size && t.keys.(t.heap.(r)) < t.keys.(t.heap.(l)) then r else l
    in
    if t.keys.(t.heap.(smallest)) < t.keys.(t.heap.(i)) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(smallest);
      t.heap.(smallest) <- tmp;
      sift_down t smallest
    end
  end

let push_row t ~time kind a b tag =
  if time < 0 || time > max_encodable_time then
    invalid_arg "Simkit.Event_heap: time out of the 31-bit key range";
  ensure_capacity t;
  let r = alloc_row t in
  t.keys.(r) <- (time lsl seq_bits) lor t.seq;
  t.seq <- t.seq + 1;
  t.kinds.(r) <- kind;
  t.na.(r) <- a;
  t.nb.(r) <- b;
  t.tags.(r) <- tag;
  t.heap.(t.size) <- r;
  t.size <- t.size + 1;
  if t.size > t.hw then t.hw <- t.size;
  sift_up t (t.size - 1);
  r

(* Start and timer rows carry no payload, so the row index has no
   further use at these call sites — deliver is the one push that
   needs it back (to attach the payload). *)
let push_start t ~time pid =
  let (_ : int) = push_row t ~time Kind.start pid (-1) "" in
  ()

let push_timer t ~time ~owner tag =
  let (_ : int) = push_row t ~time Kind.timer owner (-1) tag in
  ()

let push_deliver t ~time ~src ~dst payload =
  let r = push_row t ~time Kind.deliver src dst "" in
  if Array.length t.payloads = 0 then
    (* First payload ever: materialize the array, using it as its own
       fill value (every slot of ['m] needs a witness; slots of other
       kinds are never read). *)
    t.payloads <- Array.make (Array.length t.keys) payload
  else t.payloads.(r) <- payload

let pop t =
  if t.size = 0 then false
  else begin
    (* Recycle the previous cursor row: its key field becomes the
       free-list link. The new cursor row stays out of the free list
       until the pop after this one, so the accessors survive
       interleaved pushes. *)
    if t.cursor >= 0 then begin
      t.keys.(t.cursor) <- t.free_head;
      t.free_head <- t.cursor
    end;
    let r = t.heap.(0) in
    let last = t.size - 1 in
    t.heap.(0) <- t.heap.(last);
    t.size <- last;
    sift_down t 0;
    t.cursor <- r;
    true
  end

let time t = t.keys.(t.cursor) asr seq_bits
let kind t = t.kinds.(t.cursor)
let node_a t = t.na.(t.cursor)
let node_b t = t.nb.(t.cursor)
let tag t = t.tags.(t.cursor)
let payload t = t.payloads.(t.cursor)
