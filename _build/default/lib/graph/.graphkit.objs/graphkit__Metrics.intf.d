lib/graph/metrics.mli: Digraph Format
