(** Reachable-reliable broadcast (Section VI), Dolev-style.

    Messages are flooded along knowledge edges carrying the relay path.
    Honest relayers append themselves before forwarding and receivers
    reject copies whose last path element is not the physical sender, so
    every received path provably contains its fabricator if it was
    tampered with. A receiver delivers once it holds [f + 1] pairwise
    internally-node-disjoint paths from the origin (or a direct copy
    from the origin itself): at most [f] disjoint paths can contain a
    faulty process, so at least one path is all-correct and the message
    is authentic.

    This satisfies RB_Validity / RB_Integrity / RB_Agreement on
    knowledge graphs where the destinations are f-reachable from the
    origin (Definition 9) — in k-OSR graphs, all sink members are
    f-reachable from every process. *)

open Graphkit

type t

val create :
  self:Pid.t ->
  neighbors:Pid.Set.t ->
  f:int ->
  ?max_copies_per_origin:int ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [max_copies_per_origin] caps how many distinct copies of the same
    origin's flood a relayer forwards (default [4 * (f + 1)]); the cap
    bounds Dolev flooding's worst-case exponential traffic while leaving
    enough path diversity for delivery in practice. [metrics] counts
    flood fan-out ([rbcast_broadcasts], [rbcast_relays],
    [rbcast_deliveries]). *)

val broadcast : t -> send:(Pid.t -> Msg.t -> unit) -> unit
(** Starts a GET_SINK flood with this process as origin. *)

val on_get_sink :
  t ->
  send:(Pid.t -> Msg.t -> unit) ->
  src:Pid.t ->
  origin:Pid.t ->
  path:Pid.t list ->
  Pid.t option
(** Processes a flood copy: validates the path, relays it, and returns
    [Some origin] exactly once per origin — upon first satisfying the
    delivery rule (the reachable_deliver event). *)

val delivered : t -> Pid.Set.t
(** Origins delivered so far. *)
