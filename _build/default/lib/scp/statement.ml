type t =
  | Nominate of Value.t
  | Prepare of Ballot.t
  | Commit of Ballot.t

let tag = function Nominate _ -> 0 | Prepare _ -> 1 | Commit _ -> 2

let compare a b =
  match (a, b) with
  | Nominate v, Nominate w -> Value.compare v w
  | Prepare x, Prepare y | Commit x, Commit y -> Ballot.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let pp ppf = function
  | Nominate v -> Format.fprintf ppf "nominate %a" Value.pp v
  | Prepare b -> Format.fprintf ppf "prepare %a" Ballot.pp b
  | Commit b -> Format.fprintf ppf "commit %a" Ballot.pp b

let implied = function
  | Commit b -> [ Prepare b ]
  | Nominate _ | Prepare _ -> []

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
