(** A deterministic parallel executor for independent simulation jobs.

    Experiment sweeps are embarrassingly parallel: each sample is a
    pure function of its own seed, graph and config, and touches no
    shared mutable state (every worker builds its own engine, metrics
    registry and trace buffer). {!map} farms such jobs out to forked
    worker processes and returns the results in input order, so the
    output is byte-identical to the sequential run — parallelism is a
    pure wall-clock optimisation, never a semantic knob.

    Portability: on Unix the pool uses [Unix.fork] plus [Marshal] over
    pipes (works identically on OCaml 4.14 and 5.x — no dependency on
    domains). Where [fork] is unavailable (Windows), or when
    [jobs <= 1], {!map} degrades to a plain sequential [List.map].

    Jobs are distributed round-robin across workers before any of them
    starts, so the partition — like everything else here — is a pure
    function of the input list and [jobs]. *)

exception Job_failed of string
(** A job raised in a worker (the payload is the exception text plus
    the worker's backtrace), or a worker died before reporting results.
    Re-raised in the parent by {!map}; remaining workers are reaped
    first, so a crash never hangs the pool. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] on every element of [xs] using up to
    [jobs] worker processes and returns the results in input order.

    - [jobs <= 1] (or a singleton/empty [xs], or no [fork]) runs
      sequentially in-process: [List.map f xs] exactly.
    - Results are transported with [Marshal], so ['b] must be
      marshal-safe plain data (no closures, no custom blocks). The
      inputs and [f] itself are never marshalled — workers inherit them
      through [fork] — so jobs may freely close over graphs, configs
      and functions.
    - If any job raises, {!map} raises {!Job_failed} after collecting
      every worker.

    @raise Job_failed as described above. *)

val run_in_parallel : jobs:int -> int -> bool
(** [run_in_parallel ~jobs n] — whether [map ~jobs] on an [n]-element
    list would actually fork ([jobs > 1], [n > 1] and fork available).
    Exposed so callers (CLI, bench) can report the execution mode. *)

val has_fork : bool
(** Whether [Unix.fork] exists on this platform (everywhere but
    Windows). {!Exec} consults this to pick its fallback backend. *)

val max_chunks : int
(** Chunk ids must fit the one-byte jobserver token: at most 256
    chunks per batch. {!map_chunked} and {!map_persistent} refuse
    larger batches; {!Exec.map} raises its chunk size to stay under
    the budget. *)

val map_chunked : chunk:int -> workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunked ~chunk ~workers f xs] — the per-call fork backend of
    {!Exec}: like {!map} but with dynamic load balancing (workers
    claim chunks of [chunk] consecutive jobs from a jobserver-style
    token pipe) and compact per-chunk result frames instead of one
    whole-bucket message. Always forks — callers gate on {!has_fork}
    and [jobs]; use {!map} for the self-dispatching entry point.

    Same determinism contract as {!map}: results in input order,
    byte-identical to [List.map], and on failure the exception of the
    minimum-index failing job is re-raised as {!Job_failed} after all
    workers are reaped.

    @raise Job_failed as described above.
    @raise Invalid_argument when [xs] at chunk size [chunk] needs more
    than {!max_chunks} chunks — raise [chunk] instead. *)

val map_persistent :
  chunk:int -> workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** The warm variant of {!map_chunked}: workers are forked once per
    process, parked on a [select] between batches, and fed job
    descriptors over private command pipes (closure [Marshal] — fork
    guarantees the identical binary it requires) plus chunk ids over
    the same shared one-byte token pipe as {!map_chunked}. Byte-for-
    byte the same results, ordering and minimum-index [Job_failed]
    semantics; a job failure leaves the pool warm. Jobs whose captures
    are not marshal-safe, and any transport fault, transparently fall
    back to a fresh per-call {!map_chunked} (after tearing the pool
    down in the fault case) — the caller never sees the difference.

    @raise Job_failed as for {!map_chunked}.
    @raise Invalid_argument as for {!map_chunked}. *)

val shutdown_persistent : unit -> unit
(** EOFs, reaps and forgets the persistent workers. Idempotent; a
    later {!map_persistent} respawns a fresh pool. Also registered
    [at_exit] on first spawn. *)

val persistent_workers : unit -> int
(** Currently parked persistent fork workers. *)

val persistent_peak : unit -> int
(** High-water mark of {!persistent_workers} this process. *)

val persistent_batches : unit -> int
(** Batches submitted to the persistent fork pool. *)
