open Simkit

let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5 "c";
  Event_queue.push q ~time:1 "a";
  Event_queue.push q ~time:3 "b";
  Alcotest.(check (option int)) "peek" (Some 1) (Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair int string))))
    "sorted"
    [ Some (1, "a"); Some (3, "b"); Some (5, "c") ]
    order;
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~time:7 s) [ "x"; "y"; "z" ];
  let pops =
    List.filter_map (fun _ -> Event_queue.pop q) [ (); (); () ]
  in
  Alcotest.(check (list (pair int string)))
    "insertion order preserved at equal times"
    [ (7, "x"); (7, "y"); (7, "z") ]
    pops

let test_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2 1;
  (match Event_queue.pop q with
  | Some (2, 1) -> ()
  | _ -> Alcotest.fail "first pop");
  Event_queue.push q ~time:1 2;
  Event_queue.push q ~time:3 3;
  Alcotest.(check int) "length" 2 (Event_queue.length q);
  match (Event_queue.pop q, Event_queue.pop q, Event_queue.pop q) with
  | Some (1, 2), Some (3, 3), None -> ()
  | _ -> Alcotest.fail "interleaved pops"

let prop_pops_sorted =
  QCheck.Test.make ~count:300 ~name:"pops come out time-sorted"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let out = drain [] in
      out = List.sort compare times)

let prop_stable_for_equal_times =
  QCheck.Test.make ~count:200 ~name:"equal times keep insertion order"
    QCheck.(int_range 1 50)
    (fun n ->
      let q = Event_queue.create () in
      for i = 0 to n - 1 do
        Event_queue.push q ~time:0 i
      done;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.init n Fun.id)

let suites =
  [
    ( "event_queue",
      [
        Alcotest.test_case "ordering" `Quick test_ordering;
        Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
        Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
        QCheck_alcotest.to_alcotest prop_pops_sorted;
        QCheck_alcotest.to_alcotest prop_stable_for_equal_times;
      ] );
  ]
