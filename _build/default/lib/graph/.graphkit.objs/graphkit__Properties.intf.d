lib/graph/properties.mli: Digraph Format Pid
