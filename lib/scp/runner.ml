open Graphkit
open Simkit

type fault =
  | Silent
  | Accept_forger of Statement.t list
  | Nomination_equivocator of {
      split : Pid.t -> bool;
      value_a : Value.t;
      value_b : Value.t;
    }
  | Slice_equivocator of {
      split : Pid.t -> bool;
      slices_a : Fbqs.Slice.t;
      slices_b : Fbqs.Slice.t;
      value : Value.t;
    }

type outcome = {
  decisions : Node.decision Pid.Map.t;
  all_decided : bool;
  agreement : bool;
  validity : bool;
  stats : Engine.stats;
}

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>all_decided=%b agreement=%b validity=%b msgs=%d time=%d@,%a@]"
    o.all_decided o.agreement o.validity o.stats.messages_sent
    o.stats.end_time
    (Pid.Map.pp Node.pp_decision)
    o.decisions

type cfg = {
  run : Run_config.t;
  ballot_timeout : int;
  nomination : Node.nomination_strategy;
}

(* lint: allow R2 — immutable constant; the type's only mutable capability (metrics/trace sinks) is None here *)
let default_cfg =
  { run = Run_config.default; ballot_timeout = 40; nomination = Node.Echo_all }

let run_cfg ?(cfg = default_cfg) ~system ~peers_of ~initial_value_of ~fault_of
    () =
  let rc = cfg.run in
  let metrics = rc.Run_config.metrics and trace = rc.Run_config.trace in
  let engine = Engine.create_cfg ~pp_msg:Msg.pp rc in
  (* Scrape the process-global quorum-cache counters as deltas so the
     run's metrics reflect only this run. *)
  let cache0 = Fbqs.Quorum.cache_stats () in
  let trace_event ~time name fields =
    match trace with
    | None -> ()
    | Some sink -> Obs.Trace.emit sink ~time ~scope:"runner" ~name fields
  in
  trace_event ~time:0 "run_start"
    [
      ("seed", Obs.Json.Int rc.seed);
      ("max_time", Obs.Json.Int rc.max_time);
      ( "participants",
        Obs.Json.Int (Pid.Set.cardinal (Fbqs.Quorum.participants system)) );
    ];
  let decisions = ref Pid.Map.empty in
  let participants = Fbqs.Quorum.participants system in
  let correct = ref Pid.Set.empty in
  (* The stop condition runs after every event, so track the number of
     correct processes still undecided instead of re-scanning the
     decision map (O(1) per event instead of O(n log n)). *)
  let undecided = ref 0 in
  let on_decide pid d =
    if (not (Pid.Map.mem pid !decisions)) && Pid.Set.mem pid !correct then
      decr undecided;
    decisions := Pid.Map.add pid d !decisions
  in
  Pid.Set.iter
    (fun i ->
      match fault_of i with
      | Some Silent -> Engine.add_node engine i Node.silent
      | Some (Accept_forger stmts) ->
          Engine.add_node engine i
            (Node.accept_forger ~self:i
               ~slices:(Fbqs.Quorum.slices_of system i)
               ~peers:(peers_of i) stmts)
      | Some (Nomination_equivocator { split; value_a; value_b }) ->
          Engine.add_node engine i
            (Node.nomination_equivocator ~self:i
               ~slices:(Fbqs.Quorum.slices_of system i)
               ~split ~value_a ~value_b ~peers:(peers_of i))
      | Some (Slice_equivocator { split; slices_a; slices_b; value }) ->
          Engine.add_node engine i
            (Node.slice_equivocator ~self:i ~slices_a ~slices_b ~split ~value
               ~peers:(peers_of i))
      | None ->
          correct := Pid.Set.add i !correct;
          incr undecided;
          Engine.add_node engine i
            (Node.behavior ?metrics ?trace
               {
                 Node.self = i;
                 my_slices = Fbqs.Quorum.slices_of system i;
                 initial_peers = peers_of i;
                 initial_value = initial_value_of i;
                 ballot_timeout = cfg.ballot_timeout;
                 nomination = cfg.nomination;
                 on_decide;
               }))
    participants;
  let all_decided () = !undecided = 0 in
  let stats = Engine.run ~stop:all_decided engine in
  let decisions = !decisions in
  let decided_values =
    Pid.Map.fold (fun _ (d : Node.decision) acc -> d.value :: acc) decisions []
  in
  let agreement =
    match decided_values with
    | [] -> true
    | v :: rest -> List.for_all (Value.equal v) rest
  in
  let fault_injected i =
    match fault_of i with
    | Some (Nomination_equivocator { value_a; value_b; _ }) ->
        Value.union value_a value_b
    | Some (Accept_forger stmts) ->
        Value.combine
          (List.map
             (function
               | Statement.Prepare b | Statement.Commit b -> b.Ballot.value
               | Statement.Nominate v -> v)
             stmts)
    | Some (Slice_equivocator { value; _ }) -> value
    | Some Silent | None -> Value.empty
  in
  let proposed =
    (* Validity admits values proposed by any process, including the
       injections of Byzantine ones. *)
    Pid.Set.fold
      (fun i acc ->
        Value.union (Value.union acc (initial_value_of i)) (fault_injected i))
      participants Value.empty
  in
  let validity =
    (* Transaction-set semantics: every decided transaction must have
       been proposed by someone. *)
    List.for_all
      (fun v ->
        List.for_all
          (fun tx -> List.mem tx (Value.to_list proposed))
          (Value.to_list v))
      decided_values
  in
  (match metrics with
  | None -> ()
  | Some reg ->
      let cache1 = Fbqs.Quorum.cache_stats () in
      Obs.Metrics.incr
        ~by:(cache1.Core.Cache.hits - cache0.Core.Cache.hits)
        (Obs.Metrics.counter reg "fbqs_cache_hits");
      Obs.Metrics.incr
        ~by:(cache1.Core.Cache.misses - cache0.Core.Cache.misses)
        (Obs.Metrics.counter reg "fbqs_cache_misses"));
  trace_event ~time:stats.Engine.end_time "run_end"
    [
      ("end_time", Obs.Json.Int stats.Engine.end_time);
      ("all_decided", Obs.Json.Bool (all_decided ()));
      ("agreement", Obs.Json.Bool agreement);
      ("validity", Obs.Json.Bool validity);
    ];
  {
    decisions;
    all_decided = all_decided ();
    agreement;
    validity;
    stats;
  }

let run ?(seed = 0) ?(gst = 50) ?(delta = 5) ?(max_time = 200_000)
    ?(ballot_timeout = 40) ?(nomination = Node.Echo_all) ?delay ?metrics
    ?trace ~system ~peers_of ~initial_value_of ~fault_of () =
  let cfg =
    {
      run =
        {
          Run_config.seed;
          gst;
          delta;
          max_time;
          delay;
          metrics;
          trace;
        };
      ballot_timeout;
      nomination;
    }
  in
  run_cfg ~cfg ~system ~peers_of ~initial_value_of ~fault_of ()
