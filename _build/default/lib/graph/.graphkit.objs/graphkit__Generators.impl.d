lib/graph/generators.ml: Array Digraph List Pid Properties Random
