test/test_traversal.ml: Alcotest Digraph Dump Fmt Graphkit List Pid QCheck QCheck_alcotest Traversal
