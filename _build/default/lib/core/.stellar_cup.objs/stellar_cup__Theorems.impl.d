lib/core/theorems.ml: Cup Digraph Fbqs Format Graphkit Option Pid
