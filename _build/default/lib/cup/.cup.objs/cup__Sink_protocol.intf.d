lib/cup/sink_protocol.mli: Digraph Graphkit Msg Pid Simkit Sink_oracle
