(* Fixture: float formats in an obs render path. *)
let render f = Printf.sprintf "%.3f" f
let show f = Format.asprintf "%g" f
