(* Golden-trace determinism: for a fixed seed, two independent runs
   must produce byte-identical JSONL traces and byte-identical metric
   dumps. This is the property the CI determinism gate re-checks on the
   built binary. *)

open Graphkit

let own_value i = Scp.Value.of_ints [ i ]

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

(* One fully instrumented SCP run; returns (trace JSONL, metrics JSON). *)
let traced_scp_run ~seed () =
  let metrics = Obs.Metrics.create () in
  let buf = Buffer.create 4096 in
  let sink = Obs.Trace.to_buffer buf in
  let members = Pid.Set.of_range 1 4 in
  let cfg =
    {
      Scp.Runner.default_cfg with
      run =
        {
          Simkit.Run_config.default with
          seed;
          metrics = Some metrics;
          trace = Some sink;
        };
    }
  in
  let o =
    Scp.Runner.run_cfg ~cfg
      ~system:(threshold_system 4 3)
      ~peers_of:(fun _ -> members)
      ~initial_value_of:own_value
      ~fault_of:(fun _ -> None)
      ()
  in
  Alcotest.(check bool) "instrumented run decides" true o.all_decided;
  (Buffer.contents buf, Obs.Json.to_string (Obs.Metrics.to_json metrics))

let test_same_seed_same_trace () =
  let trace_a, metrics_a = traced_scp_run ~seed:42 () in
  let trace_b, metrics_b = traced_scp_run ~seed:42 () in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length trace_a > 100);
  Alcotest.(check string) "byte-identical traces" trace_a trace_b;
  Alcotest.(check string) "byte-identical metrics" metrics_a metrics_b

let test_different_seed_different_trace () =
  let trace_a, _ = traced_scp_run ~seed:1 () in
  let trace_b, _ = traced_scp_run ~seed:2 () in
  Alcotest.(check bool)
    "different delay streams diverge" true (trace_a <> trace_b)

let test_trace_shape () =
  (* Every line is a JSON object with the stamp fields; seq is dense
     from 0; run_start opens and run_end closes the stream. *)
  let trace, _ = traced_scp_run ~seed:7 () in
  let lines = String.split_on_char '\n' (String.trim trace) in
  List.iteri
    (fun i line ->
      let prefix = Printf.sprintf {|{"t":|} in
      Alcotest.(check bool)
        (Printf.sprintf "line %d is a stamped object" i)
        true
        (String.length line > String.length prefix
        && String.sub line 0 String.(length prefix) = prefix);
      let seq_marker = Printf.sprintf {|"seq":%d,|} i in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "line %d has seq %d" i i)
        true (contains line seq_marker))
    lines;
  let first = List.hd lines and last = List.nth lines (List.length lines - 1) in
  let has_ev line ev =
    let needle = Printf.sprintf {|"ev":"%s"|} ev in
    let nh = String.length line and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub line i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "opens with run_start" true (has_ev first "run_start");
  Alcotest.(check bool) "closes with run_end" true (has_ev last "run_end")

let test_sink_detector_trace_deterministic () =
  let traced ~seed =
    let buf = Buffer.create 4096 in
    let sink = Obs.Trace.to_buffer buf in
    let cfg = { Simkit.Run_config.default with seed; trace = Some sink } in
    let r =
      Cup.Sink_protocol.run_cfg ~cfg ~graph:Builtin.fig2 ~f:1
        ~fault_of:(fun _ -> None)
        ()
    in
    Alcotest.(check bool) "everyone answered" true
      (Pid.Map.cardinal r.answers
      = Pid.Set.cardinal (Digraph.vertices Builtin.fig2));
    Buffer.contents buf
  in
  Alcotest.(check string) "sink detector trace deterministic"
    (traced ~seed:5) (traced ~seed:5)

let suites =
  [
    ( "trace_golden",
      [
        Alcotest.test_case "same seed, same bytes" `Quick
          test_same_seed_same_trace;
        Alcotest.test_case "different seed diverges" `Quick
          test_different_seed_different_trace;
        Alcotest.test_case "JSONL shape + dense seq" `Quick test_trace_shape;
        Alcotest.test_case "sink detector deterministic" `Quick
          test_sink_detector_trace_deterministic;
      ] );
  ]
