lib/bftcup/pbft.ml: Engine Format Graphkit Int List Map Option Pid Printf Scp Simkit
