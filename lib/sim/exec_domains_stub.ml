(* No-domains backend stub — the OCaml 4.14 side of the dune version
   switch (see exec_domains_native.ml for the real one). {!Exec} checks
   [available] before dispatching here, so [map_chunked] is
   unreachable; it raises rather than silently degrading so a dispatch
   bug cannot masquerade as a slow sequential run. *)

let available = false

(* Nothing races without domains: the "lock" is the identity. *)
let locked f = f ()

let map_chunked ~chunk:_ ~domains:_ _do_job _n =
  invalid_arg "Simkit.Exec: domain backend unavailable on this runtime"
