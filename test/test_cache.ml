(* Core.Cache: the shared LRU layer behind the compiled-handle memos
   and the daemon's file/response caches (DESIGN.md §14). The qcheck
   properties check the cache against a reference model: an association
   list kept in most-recently-used-first order. *)

let mk ?(capacity = 4) () =
  Core.Cache.create ~equal:Int.equal ~name:"test" ~capacity ()

(* Reference model: run [keys] through a memo that computes [k * 7],
   returning the expected MRU-first contents plus expected counters. *)
let model ~capacity keys =
  let entries = ref [] and hits = ref 0 and evictions = ref 0 in
  List.iter
    (fun k ->
      match List.assoc_opt k !entries with
      | Some v ->
          incr hits;
          entries := (k, v) :: List.remove_assoc k !entries
      | None ->
          entries := (k, k * 7) :: !entries;
          if List.length !entries > capacity then begin
            incr evictions;
            entries := List.filteri (fun i _ -> i < capacity) !entries
          end)
    keys;
  (!entries, !hits, !evictions)

let run_keys ~capacity keys =
  let c = mk ~capacity () in
  List.iter (fun k -> ignore (Core.Cache.find_or_add c k (fun () -> k * 7))) keys;
  c

let test_create_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Core.Cache.create test: capacity < 1") (fun () ->
      ignore (mk ~capacity:0 ()))

let test_memoizes () =
  let c = mk () in
  let computed = ref 0 in
  let get () =
    Core.Cache.find_or_add c 1 (fun () ->
        incr computed;
        42)
  in
  Alcotest.(check int) "first" 42 (get ());
  Alcotest.(check int) "second" 42 (get ());
  Alcotest.(check int) "computed once" 1 !computed

let test_eviction_order () =
  let c = mk ~capacity:2 () in
  let touch k = ignore (Core.Cache.find_or_add c k (fun () -> k * 7)) in
  touch 1;
  touch 2;
  touch 3;
  (* 1 is least recently used and falls out *)
  Alcotest.(check bool) "1 evicted" true (Core.Cache.find_opt c 1 = None);
  touch 2;
  (* promoting 2 makes 3 the victim of the next insertion *)
  touch 4;
  Alcotest.(check bool) "3 evicted" true (Core.Cache.find_opt c 3 = None);
  Alcotest.(check bool) "2 survives" true (Core.Cache.find_opt c 2 <> None)

let test_shrink_evicts () =
  let c = run_keys ~capacity:4 [ 1; 2; 3; 4 ] in
  Core.Cache.set_capacity c 2;
  let s = Core.Cache.stats c in
  Alcotest.(check int) "length clamped" 2 s.Core.Cache.length;
  Alcotest.(check int) "evictions counted" 2 s.Core.Cache.evictions;
  Alcotest.(check (list int)) "MRU half kept" [ 4; 3 ]
    (List.map fst (Core.Cache.to_list c))

let test_stats_json_shape () =
  let c = run_keys ~capacity:2 [ 1; 1; 2; 3 ] in
  Alcotest.(check string) "stats dump"
    {|{"hits":1,"misses":3,"evictions":1,"length":2,"capacity":2}|}
    (Obs.Json.to_string (Core.Cache.stats_to_json (Core.Cache.stats c)))

let test_attach_metrics () =
  let c = mk ~capacity:2 () in
  ignore (Core.Cache.find_or_add c 1 (fun () -> 7));
  let registry = Obs.Metrics.create () in
  Core.Cache.attach_metrics c registry;
  Core.Cache.attach_metrics c registry;
  (* second attach is a no-op *)
  ignore (Core.Cache.find_or_add c 1 (fun () -> 7));
  ignore (Core.Cache.find_or_add c 2 (fun () -> 14));
  (* registration is idempotent, so looking the metrics up again
     returns the ones the cache keeps in step *)
  let labels = [ ("cache", "test") ] in
  let counter n =
    Obs.Metrics.counter_value (Obs.Metrics.counter registry ~labels n)
  in
  Alcotest.(check int) "hits counter" 1 (counter "cache_hits");
  Alcotest.(check int) "misses counter" 2 (counter "cache_misses");
  Alcotest.(check int) "entries gauge" 2
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge registry ~labels "cache_entries"))

let prop_matches_model =
  QCheck.Test.make ~count:200 ~name:"cache contents match the LRU model"
    QCheck.(pair (int_range 1 5) (small_list (int_bound 7)))
    (fun (capacity, keys) ->
      let c = run_keys ~capacity keys in
      let expected, _, _ = model ~capacity keys in
      List.map fst (Core.Cache.to_list c) = List.map fst expected
      && List.for_all
           (fun (k, v) -> Core.Cache.find_opt c k = Some v)
           expected)

let prop_lookup_accounting =
  QCheck.Test.make ~count:200
    ~name:"hits + misses = lookups, hits and evictions match the model"
    QCheck.(pair (int_range 1 5) (small_list (int_bound 7)))
    (fun (capacity, keys) ->
      let c = run_keys ~capacity keys in
      let _, hits, evictions = model ~capacity keys in
      let s = Core.Cache.stats c in
      s.Core.Cache.hits + s.Core.Cache.misses = List.length keys
      && s.Core.Cache.hits = hits
      && s.Core.Cache.evictions = evictions)

let prop_capacity_bound =
  QCheck.Test.make ~count:200
    ~name:"occupancy never exceeds capacity and matches to_list"
    QCheck.(pair (int_range 1 5) (small_list (int_bound 7)))
    (fun (capacity, keys) ->
      let c = run_keys ~capacity keys in
      let s = Core.Cache.stats c in
      s.Core.Cache.length <= capacity
      && s.Core.Cache.length = List.length (Core.Cache.to_list c)
      && s.Core.Cache.capacity = capacity)

let suites =
  [
    ( "cache",
      [
        Alcotest.test_case "create rejects capacity < 1" `Quick
          test_create_rejects_bad_capacity;
        Alcotest.test_case "find_or_add memoizes" `Quick test_memoizes;
        Alcotest.test_case "LRU eviction order" `Quick test_eviction_order;
        Alcotest.test_case "shrinking capacity evicts" `Quick
          test_shrink_evicts;
        Alcotest.test_case "stats JSON shape" `Quick test_stats_json_shape;
        Alcotest.test_case "metrics stay in step" `Quick test_attach_metrics;
        QCheck_alcotest.to_alcotest prop_matches_model;
        QCheck_alcotest.to_alcotest prop_lookup_accounting;
        QCheck_alcotest.to_alcotest prop_capacity_bound;
      ] );
  ]
