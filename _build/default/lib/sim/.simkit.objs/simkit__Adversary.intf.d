lib/sim/adversary.mli: Engine Graphkit Pid
