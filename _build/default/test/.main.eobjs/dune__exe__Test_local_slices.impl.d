test/test_local_slices.ml: Alcotest Builtin Cup Digraph Fbqs Format Generators Graphkit List Local_slices Participant_detector Pid Printf QCheck QCheck_alcotest
