type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
        (* lint: allow D5 — the one canonical float encoder *)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------

   A small recursive-descent reader for the same document type, used by
   the analysis daemon to decode newline-delimited request objects. It
   accepts standard JSON with two deliberate simplifications matching
   this codebase's needs: numbers without '.', 'e' or 'E' must fit in
   an OCaml int (requests carry ids, seeds and sizes, never bignums),
   and \u escapes outside ASCII are kept as a literal escape sequence
   rather than decoded to UTF-8 (keys and verbs are ASCII; payload
   strings round-trip unchanged through escape/unescape). *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error "expected '%c' at offset %d, found '%c'" c !pos c'
    | None -> parse_error "expected '%c' at offset %d, found end" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error "invalid token at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then parse_error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             if !pos + 4 > n then parse_error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> parse_error "invalid \\u escape \\u%s" hex
             in
             pos := !pos + 4;
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
         | e -> parse_error "invalid escape '\\%c'" e);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> parse_error "invalid number %S at offset %d" tok start
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> parse_error "invalid number %S at offset %d" tok start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> parse_error "expected ',' or '}' at offset %d" !pos
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_error "expected ',' or ']' at offset %d" !pos
          in
          List (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error "unexpected character '%c' at offset %d" c !pos
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos < n then Error (Printf.sprintf "trailing data at offset %d" !pos)
      else Ok v
  | exception Parse_error msg -> Error msg
