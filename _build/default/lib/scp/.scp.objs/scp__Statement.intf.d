lib/scp/statement.mli: Ballot Format Map Value
