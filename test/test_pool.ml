(* The parallel executor's whole contract is "byte-identical to the
   sequential run, just faster": ordering, crash propagation and the
   jobs=1 degenerate case are the things that can silently break it. *)

let int_list = Alcotest.(list int)

let test_empty_and_singleton () =
  Alcotest.check int_list "empty list" []
    (Simkit.Pool.map ~jobs:4 (fun x -> x + 1) []);
  Alcotest.check int_list "singleton" [ 43 ]
    (Simkit.Pool.map ~jobs:4 (fun x -> x + 1) [ 42 ])

let test_jobs_degenerate () =
  let xs = List.init 10 Fun.id in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.check int_list
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Simkit.Pool.map ~jobs f xs))
    [ -1; 0; 1; 2; 3; 10; 64 ]

let test_order_preserved_more_jobs_than_items () =
  let xs = [ "c"; "a"; "b" ] in
  Alcotest.(check (list string))
    "order follows input, not workers" [ "c!"; "a!"; "b!" ]
    (Simkit.Pool.map ~jobs:16 (fun s -> s ^ "!") xs)

let test_closure_capture () =
  (* Jobs inherit closures through fork — no marshalling of [f] — so
     capturing a non-marshal-safe value (here a function) must work. *)
  let shift = ref 7 in
  let adder x = x + !shift in
  Alcotest.check int_list "captured state visible in workers" [ 8; 9; 10 ]
    (Simkit.Pool.map ~jobs:2 adder [ 1; 2; 3 ])

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_crash_propagates () =
  (* A raising job must surface as Job_failed in the parent — and must
     not hang the pool or leave siblings unreaped. *)
  let raised =
    try
      ignore
        (Simkit.Pool.map ~jobs:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 9 Fun.id));
      false
    with Simkit.Pool.Job_failed msg ->
      Alcotest.(check bool)
        "failure text carries the exception" true
        (contains_substring ~sub:"boom" msg);
      true
  in
  Alcotest.(check bool) "Job_failed raised" true raised

let prop_pool_equals_list_map =
  QCheck.Test.make ~count:100 ~name:"Pool.map = List.map (any jobs)"
    QCheck.(pair (small_list int) (int_range 1 8))
    (fun (xs, jobs) ->
      Simkit.Pool.map ~jobs (fun x -> (x * 31) + 1) xs
      = List.map (fun x -> (x * 31) + 1) xs)

(* The experiments are the real workload: their tables must come out
   byte-identical whatever the jobs count. Small sample counts keep
   this a unit test, not a benchmark. *)
let experiment_determinism name build () =
  Alcotest.(check string)
    (name ^ " table identical at jobs=4")
    (Stellar_cup.Report.to_markdown (build ~jobs:1))
    (Stellar_cup.Report.to_markdown (build ~jobs:4))

let det_case name build =
  Alcotest.test_case
    (name ^ ": jobs=4 byte-identical")
    `Slow
    (experiment_determinism name build)

let suites =
  [
    ( "pool",
      [
        Alcotest.test_case "empty and singleton inputs" `Quick
          test_empty_and_singleton;
        Alcotest.test_case "degenerate and oversubscribed jobs" `Quick
          test_jobs_degenerate;
        Alcotest.test_case "order preserved with jobs > items" `Quick
          test_order_preserved_more_jobs_than_items;
        Alcotest.test_case "closures inherited through fork" `Quick
          test_closure_capture;
        Alcotest.test_case "worker crash raises Job_failed" `Quick
          test_crash_propagates;
        QCheck_alcotest.to_alcotest prop_pool_equals_list_map;
      ] );
    ( "pool-experiments",
      [
        det_case "e3" (fun ~jobs ->
            Stellar_cup.Experiments.e3_theorem2_violation ~seed:1 ~samples:2
              ~jobs ());
        det_case "e4" (fun ~jobs ->
            Stellar_cup.Experiments.e4_algorithm2_intertwined ~seed:2
              ~samples:2 ~jobs ());
        det_case "e5" (fun ~jobs ->
            Stellar_cup.Experiments.e5_availability ~seed:3 ~samples:2 ~jobs
              ());
        det_case "e6" (fun ~jobs ->
            Stellar_cup.Experiments.e6_sink_detector ~seed:4 ~samples:2 ~jobs
              ());
        det_case "e7" (fun ~jobs ->
            Stellar_cup.Experiments.e7_reachable_broadcast ~seed:5 ~samples:2
              ~jobs ());
        det_case "e8" (fun ~jobs ->
            Stellar_cup.Experiments.e8_pipelines ~seed:6 ~samples:2 ~jobs ());
      ] );
  ]
