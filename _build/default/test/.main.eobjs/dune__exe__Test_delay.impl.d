test/test_delay.ml: Alcotest Delay Printf Simkit
