(** The knowledge-connectivity properties of the CUP model:
    k-One-Sink-Reducibility (Definition 6), the safe Byzantine failure
    pattern (Definition 7) and the Theorem 1 solvability precondition. *)

type osr_failure =
  | Not_connected  (** the undirected closure is disconnected *)
  | Sink_count of int  (** condensation has [n <> 1] sink components *)
  | Sink_not_k_connected of int
      (** the sink component's internal connectivity (reported) is < k *)
  | Non_sink_paths of Pid.t * Pid.t * int
      (** some non-sink vertex reaches some sink vertex through fewer
          than k node-disjoint paths (count reported) *)

val pp_osr_failure : Format.formatter -> osr_failure -> unit

val check_k_osr : Digraph.t -> int -> (Pid.Set.t, osr_failure) result
(** [check_k_osr g k] verifies all four conditions of Definition 6 and
    returns the sink component's vertex set on success. *)

val is_k_osr : Digraph.t -> int -> bool

val is_k_osr_baseline : Digraph.t -> int -> bool
(** [is_k_osr] forced through the seed algorithms (tree-set traversal,
    baseline condensation, Hashtbl-interned Menger): the qcheck/bench
    baseline for the CSR-backed check. *)

val is_byzantine_safe : Digraph.t -> f:int -> faulty:Pid.Set.t -> bool
(** Definition 7: removing the faulty set (of size at most [f]) leaves a
    graph in (f+1)-OSR. *)

val solvable : Digraph.t -> f:int -> faulty:Pid.Set.t -> bool
(** Theorem 1 precondition: the graph is Byzantine-safe for the faulty
    set {e and} its sink component contains at least [2f + 1] correct
    processes. *)

val sink_of_exn : Digraph.t -> Pid.Set.t
(** The unique sink component.
    @raise Invalid_argument when the condensation does not have exactly
    one sink. *)
