open Graphkit
open Simkit

type fault = Silent | Sink_liar of Pid.Set.t | Know_liar of Pid.Set.t

type node_state = {
  self : Pid.t;
  f : int;
  knowledge : Knowledge.t;
  rb : Rbcast.t;
  trace : Obs.Trace.sink option;
  c_know : Obs.Metrics.counter option;
  c_replies : Obs.Metrics.counter option;
  c_resolved : Obs.Metrics.counter option;
  mutable asked : Pid.Set.t;
  mutable answered : Pid.Set.t;
  mutable replies : Pid.Set.t Pid.Map.t;  (* responder -> claimed sink *)
  mutable sink : Pid.Set.t option;
  mutable reported : bool;
}

let make_state ~self ~pd ~f ?max_copies_per_origin ?metrics ?trace () =
  let c name = Option.map (fun r -> Obs.Metrics.counter r name) metrics in
  {
    self;
    f;
    knowledge = Knowledge.create ~self ~pd ~f;
    rb =
      Rbcast.create ~self ~neighbors:pd ~f ?max_copies_per_origin ?metrics ();
    trace;
    c_know = c "cup_know_received";
    c_replies = c "cup_sink_replies";
    c_resolved = c "cup_sinks_resolved";
    asked = Pid.Set.empty;
    answered = Pid.Set.empty;
    replies = Pid.Map.empty;
    sink = None;
    reported = false;
  }

let bump = function Some c -> Obs.Metrics.incr c | None -> ()

let obs_event st ctx name fields =
  match st.trace with
  | None -> ()
  | Some sink ->
      Obs.Trace.emit sink ~time:(Engine.now ctx) ~scope:"cup" ~name
        (("node", Obs.Json.Int st.self) :: fields)

let sender ctx j m = Engine.send ctx j m

(* Once the sink is known, answer every pending GET_SINK request
   (Algorithm 3's send_sink loop). *)
let flush_asked st ctx =
  match st.sink with
  | None -> ()
  | Some v ->
      let pending = Pid.Set.diff st.asked st.answered in
      Pid.Set.iter
        (fun j ->
          st.answered <- Pid.Set.add j st.answered;
          sender ctx j (Msg.Sink_reply v))
        pending

let report st ctx ~on_result =
  match st.sink with
  | Some v when not st.reported ->
      st.reported <- true;
      bump st.c_resolved;
      obs_event st ctx "sink_resolved"
        [
          ("in_sink", Obs.Json.Bool (Pid.Set.mem st.self v));
          ("view_size", Obs.Json.Int (Pid.Set.cardinal v));
        ];
      on_result st.self
        { Sink_oracle.in_sink = Pid.Set.mem st.self v; view = v };
      flush_asked st ctx
  | Some _ | None -> ()

(* The wait_sink rule: adopt a value echoed by more than f distinct
   responders. When several candidate views clear the threshold in the
   same check, the smallest by [Pid.Set.compare] wins — a total order
   on candidates, so the outcome never depends on enumeration order
   (the seed picked whichever [Hashtbl] bucket came up first). *)
let resolve_replies ~f replies =
  let bump counts v =
    let rec go = function
      | [] -> [ (v, 1) ]
      | (w, n) :: rest ->
          if Pid.Set.equal w v then (w, n + 1) :: rest else (w, n) :: go rest
    in
    go counts
  in
  let counts = Pid.Map.fold (fun _ v acc -> bump acc v) replies [] in
  List.fold_left
    (fun best (v, n) ->
      if n <= f then best
      else
        match best with
        | Some w when Pid.Set.compare w v <= 0 -> best
        | Some _ | None -> Some v)
    None counts

let check_replies st =
  match st.sink with
  | Some _ -> ()
  | None -> (
      match resolve_replies ~f:st.f st.replies with
      | Some v -> st.sink <- Some v
      | None -> ())

let check_sink_primitive st =
  match st.sink with
  | Some _ -> ()
  | None -> (
      match Knowledge.sink_result st.knowledge with
      | Some v -> st.sink <- Some v
      | None -> ())

let honest ~self ~pd ~f ?max_copies_per_origin ?metrics ?trace ~on_result () :
    Msg.t Engine.behavior =
  let st = make_state ~self ~pd ~f ?max_copies_per_origin ?metrics ?trace () in
  let on_start ctx =
    Knowledge.start st.knowledge ~send:(sender ctx);
    Rbcast.broadcast st.rb ~send:(sender ctx)
  in
  let on_message ctx ~src (m : Msg.t) =
    (match m with
    | Know_request ->
        Knowledge.on_know_request st.knowledge ~send:(sender ctx) ~src
    | Know view ->
        bump st.c_know;
        Knowledge.on_know st.knowledge ~send:(sender ctx) ~src view;
        check_sink_primitive st
    | Get_sink { origin; path } -> (
        match
          Rbcast.on_get_sink st.rb ~send:(sender ctx) ~src ~origin ~path
        with
        | Some origin ->
            obs_event st ctx "rb_deliver" [ ("origin", Obs.Json.Int origin) ];
            st.asked <- Pid.Set.add origin st.asked
        | None -> ())
    | Sink_reply v ->
        bump st.c_replies;
        st.replies <- Pid.Map.add src v st.replies;
        check_replies st);
    report st ctx ~on_result;
    (* Requests can keep arriving after the first report; answer them
       too (Algorithm 3's send_sink loop never stops). *)
    flush_asked st ctx
  in
  { on_start; on_message; on_timer = (fun _ _ -> ()) }

let faulty ~self ~pd ~f ?max_copies_per_origin fault : Msg.t Engine.behavior =
  match fault with
  | Silent -> Engine.idle_behavior
  | Sink_liar fake ->
      let st = make_state ~self ~pd ~f ?max_copies_per_origin () in
      let lie_to ctx origin =
        if not (Pid.Set.mem origin st.answered) then begin
          st.answered <- Pid.Set.add origin st.answered;
          sender ctx origin (Msg.Sink_reply fake)
        end
      in
      let on_start ctx =
        Knowledge.start st.knowledge ~send:(sender ctx);
        Rbcast.broadcast st.rb ~send:(sender ctx)
      in
      let on_message ctx ~src (m : Msg.t) =
        match m with
        | Know_request ->
            Knowledge.on_know_request st.knowledge ~send:(sender ctx) ~src
        | Know view ->
            Knowledge.on_know st.knowledge ~send:(sender ctx) ~src view
        | Get_sink { origin; path } ->
            (* Relay honestly to stay plausible, but lie eagerly to any
               origin whose request we merely glimpse. *)
            ignore
              (Rbcast.on_get_sink st.rb ~send:(sender ctx) ~src ~origin ~path);
            if not (Pid.equal origin self) then lie_to ctx origin
        | Sink_reply _ -> ()
      in
      { on_start; on_message; on_timer = (fun _ _ -> ()) }
  | Know_liar fakes ->
      (* Honest state machine whose outgoing Know messages are inflated
         with fabricated ids; the lie is uniform across receivers. *)
      let st = make_state ~self ~pd ~f ?max_copies_per_origin () in
      let lying_sender ctx j (m : Msg.t) =
        let m =
          match m with
          | Know view -> Msg.Know (Pid.Set.union view fakes)
          | other -> other
        in
        Engine.send ctx j m
      in
      let on_start ctx =
        Knowledge.start st.knowledge ~send:(lying_sender ctx);
        Rbcast.broadcast st.rb ~send:(sender ctx)
      in
      let on_message ctx ~src (m : Msg.t) =
        match m with
        | Know_request ->
            Knowledge.on_know_request st.knowledge ~send:(lying_sender ctx) ~src
        | Know view ->
            Knowledge.on_know st.knowledge ~send:(lying_sender ctx) ~src view
        | Get_sink { origin; path } -> (
            match
              Rbcast.on_get_sink st.rb ~send:(sender ctx) ~src ~origin ~path
            with
            | Some origin -> st.asked <- Pid.Set.add origin st.asked
            | None -> ())
        | Sink_reply _ -> ()
      in
      { on_start; on_message; on_timer = (fun _ _ -> ()) }

type run_result = {
  answers : Sink_oracle.answer Pid.Map.t;
  stats : Engine.stats;
}

let run_cfg ?(cfg = Run_config.default) ?max_copies_per_origin ~graph ~f
    ~fault_of () =
  let metrics = cfg.Run_config.metrics and trace = cfg.Run_config.trace in
  let engine = Engine.create_cfg ~pp_msg:Msg.pp cfg in
  let answers = ref Pid.Map.empty in
  let correct = ref Pid.Set.empty in
  let on_result pid answer =
    answers := Pid.Map.add pid answer !answers
  in
  Pid.Set.iter
    (fun i ->
      let pd = Digraph.succs graph i in
      match fault_of i with
      | Some fault ->
          Engine.add_node engine i
            (faulty ~self:i ~pd ~f ?max_copies_per_origin fault)
      | None ->
          correct := Pid.Set.add i !correct;
          Engine.add_node engine i
            (honest ~self:i ~pd ~f ?max_copies_per_origin ?metrics ?trace
               ~on_result ()))
    (Digraph.vertices graph);
  let all_done () =
    Pid.Set.for_all (fun i -> Pid.Map.mem i !answers) !correct
  in
  let stats = Engine.run ~stop:all_done engine in
  { answers = !answers; stats }

(* lint: allow R2 — immutable constant; the type's only mutable capability (metrics/trace sinks) is None here *)
let default_run_config =
  { Run_config.default with delta = 10; max_time = 100_000 }

let run ?(seed = 0) ?(gst = 50) ?(delta = 10) ?(max_time = 100_000)
    ?max_copies_per_origin ?metrics ?trace ~graph ~f ~fault_of () =
  let cfg =
    {
      Run_config.seed;
      gst;
      delta;
      max_time;
      delay = None;
      metrics;
      trace;
    }
  in
  run_cfg ~cfg ?max_copies_per_origin ~graph ~f ~fault_of ()
