examples/bftcup_vs_scp.ml: Generators Graphkit List Printf Scp Stellar_cup
