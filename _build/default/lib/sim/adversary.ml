open Graphkit

let silent = Engine.idle_behavior

let crash_after t (b : 'm Engine.behavior) : 'm Engine.behavior =
  {
    on_start = (fun ctx -> if Engine.now ctx < t then b.on_start ctx);
    on_message =
      (fun ctx ~src m -> if Engine.now ctx < t then b.on_message ctx ~src m);
    on_timer = (fun ctx tag -> if Engine.now ctx < t then b.on_timer ctx tag);
  }

let drop_messages_from blocked (b : 'm Engine.behavior) : 'm Engine.behavior =
  {
    b with
    on_message =
      (fun ctx ~src m ->
        if not (Pid.Set.mem src blocked) then b.on_message ctx ~src m);
  }
