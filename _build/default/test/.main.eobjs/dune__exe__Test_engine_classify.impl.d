test/test_engine_classify.ml: Alcotest Delay Engine Simkit
