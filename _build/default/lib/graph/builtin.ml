let fig1 =
  Digraph.of_adjacency
    [
      (1, [ 2; 5 ]);
      (2, [ 4 ]);
      (3, [ 5; 7 ]);
      (4, [ 5; 6; 8 ]);
      (5, [ 6; 7 ]);
      (6, [ 5; 7; 8 ]);
      (7, [ 5; 6; 8 ]);
      (8, [ 5; 7 ]);
    ]

let fig1_sink = Pid.Set.of_list [ 5; 6; 7; 8 ]
let fig1_faulty = Pid.Set.singleton 8

let fig1_slices =
  let s = Pid.Set.of_list in
  [
    (1, [ s [ 2; 5 ] ]);
    (2, [ s [ 4 ] ]);
    (3, [ s [ 5; 7 ] ]);
    (4, [ s [ 5; 6 ]; s [ 6; 8 ] ]);
    (5, [ s [ 6; 7 ] ]);
    (6, [ s [ 5; 7 ]; s [ 7; 8 ] ]);
    (7, [ s [ 5; 6 ]; s [ 6; 8 ] ]);
  ]

let fig2 =
  Digraph.of_adjacency
    [
      (1, [ 2; 3; 4 ]);
      (2, [ 1; 3; 4 ]);
      (3, [ 1; 2; 4 ]);
      (4, [ 1; 2; 3 ]);
      (5, [ 6; 7; 1 ]);
      (6, [ 5; 7; 2 ]);
      (7, [ 5; 6; 3 ]);
    ]

let fig2_sink = Pid.Set.of_list [ 1; 2; 3; 4 ]
let fig2_quorum_sinkside = Pid.Set.of_list [ 1; 2; 3; 4 ]
let fig2_quorum_nonsink = Pid.Set.of_list [ 5; 6; 7 ]
