(** Condensation of a digraph into its DAG of strongly connected
    components, and the sink-component queries the CUP model is built on.

    A component [C] is a {e sink component} when no vertex of [C] has an
    edge leaving [C] (Section III-E of the paper): no path leads from a
    member of [C] to any vertex outside [C]. The k-OSR property requires
    the condensation to have exactly one sink.

    Queries run on the compiled {!Csr} kernel when the graph has no
    negative pid: [make] is then a memoized handle lookup, so the
    consumers that condense per query (the sink oracle, k-OSR checks,
    pipeline sweeps) compute the SCC partition and DAG once per graph.
    Negative-pid graphs fall back to the seed tree-set construction,
    also exposed as {!make_baseline} for equivalence tests. Both paths
    produce identical component ids, DAG lists and sink ids. *)

type t

val make : Digraph.t -> t

val make_baseline : Digraph.t -> t
(** The seed construction (tree-set Tarjan + map-indexed DAG), kept as
    the negative-pid fallback and the qcheck baseline for the CSR
    path. *)

val components : t -> Pid.Set.t array
(** All SCCs. Indices are the component ids used below. *)

val component_of : t -> Pid.t -> int
(** @raise Not_found if the vertex is absent. *)

val dag_succs : t -> int -> int list
(** Successor components in the condensation DAG. *)

val sinks : t -> int list
(** Ids of the components with no outgoing DAG edge. *)

val sink_components : Digraph.t -> Pid.Set.t list
(** Vertex sets of all sink components of a graph. *)

val sink_components_baseline : Digraph.t -> Pid.Set.t list
(** [sink_components] forced through {!make_baseline}. *)

val unique_sink : Digraph.t -> Pid.Set.t option
(** [Some v_sink] when the condensation has exactly one sink component,
    [None] otherwise. This is [V_sink] in the paper. *)

val is_sink_member : Digraph.t -> Pid.t -> bool
(** Whether the vertex belongs to some sink component. *)
