open Graphkit
open Cup

let test_lemma1_slices_within_pd () =
  (* Lemma 1: every locally defined slice is a subset of PD_i. *)
  let pd = Participant_detector.of_graph ~f:1 Builtin.fig2 in
  Pid.Set.iter
    (fun i ->
      List.iter
        (fun rule ->
          let slice_set = rule pd i in
          List.iter
            (fun s ->
              Alcotest.(check bool)
                (Format.asprintf "slice %a of %d within PD" Pid.Set.pp s i)
                true
                (Pid.Set.subset s (Participant_detector.query pd i)))
            (Fbqs.Slice.enumerate slice_set))
        [ Local_slices.all_but_one; Local_slices.drop_f ])
    (Participant_detector.participants pd)

let test_lemma2_slice_avoiding_any_faulty_candidate () =
  (* Lemma 2: for every candidate faulty set B of size <= f, some slice
     avoids B entirely. *)
  let f = 1 in
  let pd = Participant_detector.of_graph ~f Builtin.fig2 in
  Pid.Set.iter
    (fun i ->
      let slices = Local_slices.all_but_one pd i in
      Pid.Set.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "process %d avoids {%d}" i b)
            true
            (Fbqs.Slice.has_slice_avoiding slices (Pid.Set.singleton b)))
        (Participant_detector.query pd i))
    (Participant_detector.participants pd)

let test_theorem2_counterexample () =
  (* Theorem 2's proof on Fig. 2: with the all-but-one rule, both
     {5,6,7} and {1,2,3,4} are quorums, and they are disjoint. *)
  let pd = Participant_detector.of_graph ~f:1 Builtin.fig2 in
  let sys = Local_slices.system ~rule:Local_slices.all_but_one pd in
  Alcotest.(check bool) "non-sink quorum" true
    (Fbqs.Quorum.is_quorum sys Builtin.fig2_quorum_nonsink);
  Alcotest.(check bool) "sink quorum" true
    (Fbqs.Quorum.is_quorum sys Builtin.fig2_quorum_sinkside);
  Alcotest.(check bool) "disjoint" true
    (Pid.Set.is_empty
       (Pid.Set.inter Builtin.fig2_quorum_nonsink
          Builtin.fig2_quorum_sinkside))

let test_theorem2_violation_found_automatically () =
  let pd = Participant_detector.of_graph ~f:1 Builtin.fig2 in
  let sys = Local_slices.system ~rule:Local_slices.all_but_one pd in
  let all = Digraph.vertices Builtin.fig2 in
  match Fbqs.Intertwine.violating_pair sys (Threshold 1) all with
  | Some (_, qi, _, qj) ->
      Alcotest.(check bool) "witness intersection <= f" true
        (Pid.Set.cardinal (Pid.Set.inter qi qj) <= 1)
  | None -> Alcotest.fail "expected an intersection violation on fig2"

let prop_lemma2_on_random_graphs =
  QCheck.Test.make ~count:30
    ~name:"drop_f satisfies Lemma 2 on random k-OSR graphs"
    QCheck.(pair (int_bound 500) (int_range 1 2))
    (fun (seed, f) ->
      let g =
        Generators.random_k_osr ~seed ~sink_size:((2 * f) + 2) ~non_sink:3
          ~k:((2 * f) + 1) ()
      in
      let pd = Participant_detector.of_graph ~f g in
      Pid.Set.for_all
        (fun i ->
          let slices = Local_slices.drop_f pd i in
          let pd_i = Participant_detector.query pd i in
          (* check all candidate faulty subsets of size exactly f drawn
             from PD_i *)
          let candidates =
            if f = 1 then List.map Pid.Set.singleton (Pid.Set.elements pd_i)
            else
              List.concat_map
                (fun a ->
                  List.filter_map
                    (fun b ->
                      if a < b then Some (Pid.Set.of_list [ a; b ]) else None)
                    (Pid.Set.elements pd_i))
                (Pid.Set.elements pd_i)
          in
          List.for_all
            (fun b -> Fbqs.Slice.has_slice_avoiding slices b)
            candidates)
        (Participant_detector.participants pd))

let suites =
  [
    ( "local_slices",
      [
        Alcotest.test_case "Lemma 1: slices within PD" `Quick
          test_lemma1_slices_within_pd;
        Alcotest.test_case "Lemma 2: slice avoiding faulty candidates" `Quick
          test_lemma2_slice_avoiding_any_faulty_candidate;
        Alcotest.test_case "Theorem 2: fig2 counterexample" `Quick
          test_theorem2_counterexample;
        Alcotest.test_case "Theorem 2: violation auto-detected" `Quick
          test_theorem2_violation_found_automatically;
        QCheck_alcotest.to_alcotest prop_lemma2_on_random_graphs;
      ] );
  ]
