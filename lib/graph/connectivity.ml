(* Node splitting: vertex v becomes v_in -> v_out with capacity 1
   (unbounded for the two endpoints), and each graph edge (u, v) becomes
   u_out -> v_in with capacity 1. Edge capacity 1 is exact here: two
   internally disjoint paths can never share an edge, because sharing an
   edge implies sharing one of its endpoints as an internal vertex.

   The fast path builds the network straight from the compiled CSR rows
   (dense index k maps to nodes 2k / 2k+1) — for the masked variant
   used by f-reachability it applies a bool mask instead of
   materialising an induced subgraph. Max-flow values are unique, so
   every path agrees with the seed construction, kept below as the
   negative-pid fallback and test baseline. *)

let big = 1_000_000

let node_disjoint_paths_baseline g src dst =
  if Pid.equal src dst then 0
  else if not (Digraph.mem_vertex src g && Digraph.mem_vertex dst g) then 0
  else begin
    let verts = Pid.Set.elements (Digraph.vertices g) in
    let id = Hashtbl.create (List.length verts) in
    List.iteri (fun k v -> Hashtbl.replace id v k) verts;
    let n = List.length verts in
    let v_in v = 2 * Hashtbl.find id v in
    let v_out v = (2 * Hashtbl.find id v) + 1 in
    let net = Flow.create ~n:(2 * n) ~source:(v_in src) ~sink:(v_out dst) in
    List.iter
      (fun v ->
        let cap = if Pid.equal v src || Pid.equal v dst then big else 1 in
        Flow.add_edge net (v_in v) (v_out v) cap)
      verts;
    Digraph.fold_edges
      (fun u v () -> Flow.add_edge net (v_out u) (v_in v) 1)
      g ();
    Flow.max_flow net
  end

(* Menger on the compiled handle, restricted to dense vertices with
   [mask.(v)] set (the endpoints [s] and [t] must be masked). *)
let menger_masked h mask s t =
  let n = Csr.n_vertices h in
  let off = Csr.succ_off h and arr = Csr.succ_arr h in
  let net = Flow.create ~n:(2 * n) ~source:(2 * s) ~sink:((2 * t) + 1) in
  for v = 0 to n - 1 do
    if mask.(v) then
      let cap = if v = s || v = t then big else 1 in
      Flow.add_edge net (2 * v) ((2 * v) + 1) cap
  done;
  for u = 0 to n - 1 do
    if mask.(u) then
      for i = off.(u) to off.(u + 1) - 1 do
        let v = arr.(i) in
        if mask.(v) then Flow.add_edge net ((2 * u) + 1) (2 * v) 1
      done
  done;
  Flow.max_flow net

let node_disjoint_paths g src dst =
  match Csr.get g with
  | None -> node_disjoint_paths_baseline g src dst
  | Some h -> (
      if Pid.equal src dst then 0
      else
        match (Csr.index_of h src, Csr.index_of h dst) with
        | Some s, Some t ->
            menger_masked h (Array.make (Csr.n_vertices h) true) s t
        | _ -> 0)

let is_k_strongly_connected g k =
  let verts = Pid.Set.elements (Digraph.vertices g) in
  match verts with
  | [] | [ _ ] -> true
  | _ ->
      List.for_all
        (fun i ->
          List.for_all
            (fun j -> Pid.equal i j || node_disjoint_paths g i j >= k)
            verts)
        verts

let vertex_connectivity g =
  let verts = Pid.Set.elements (Digraph.vertices g) in
  match verts with
  | [] | [ _ ] -> max_int
  | _ ->
      List.fold_left
        (fun acc i ->
          List.fold_left
            (fun acc j ->
              if Pid.equal i j then acc
              else min acc (node_disjoint_paths g i j))
            acc verts)
        max_int verts

let disjoint_paths_within g ~allowed src dst =
  match Csr.get g with
  | None ->
      let keep = Pid.Set.add src (Pid.Set.add dst allowed) in
      node_disjoint_paths_baseline (Digraph.subgraph keep g) src dst
  | Some h -> (
      if Pid.equal src dst then 0
      else
        match (Csr.index_of h src, Csr.index_of h dst) with
        | Some s, Some t ->
            let mask = Array.make (Csr.n_vertices h) false in
            Pid.Set.iter
              (fun v ->
                match Csr.index_of h v with
                | Some k -> mask.(k) <- true
                | None -> ())
              allowed;
            mask.(s) <- true;
            mask.(t) <- true;
            menger_masked h mask s t
        | _ -> 0)

let f_reachable g ~correct f src dst =
  Pid.Set.mem src correct && Pid.Set.mem dst correct
  && disjoint_paths_within g ~allowed:correct src dst >= f + 1
