test/test_sink_protocol.ml: Alcotest Builtin Cup Digraph Generators Graphkit Pid Printf QCheck QCheck_alcotest Sink_oracle Sink_protocol
