(* The analysis daemon: protocol shape, determinism and the shared
   response cache (DESIGN.md §14).

   These tests drive [Serve.Daemon.handle_line] in-process. The
   compiled-handle caches ([Fbqs.Quorum], [Graphkit.Csr]) are
   process-wide and shared with every other suite, so nothing here
   asserts their absolute counters — only the daemon-local caches and
   the response bytes, which are independent of cache warmth. *)

let fixture = "fixtures/live_network.fbas"

let req id verb extra =
  Printf.sprintf {|{"id": %d, "verb": %S%s}|} id verb
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ", %S: %s" k v) extra))

let analyze id = req id "analyze" [ ("file", Printf.sprintf "%S" fixture) ]

(* ping, version, then the same analysis twice under different ids —
   the second analyze must come out of the response cache. *)
let session = [ req 1 "ping" []; req 2 "version" []; analyze 3; analyze 4 ]

let run_session d lines = List.concat_map (Serve.Daemon.handle_line d) lines

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* Replace the digits after every ["id":] with [_], so responses can be
   compared modulo the echoed request id. *)
let strip_ids s =
  let key = {|"id":|} in
  let klen = String.length key in
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub s !i klen = key then begin
      Buffer.add_string b key;
      Buffer.add_char b '_';
      i := !i + klen;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_blank_line_ignored () =
  let d = Serve.Daemon.create () in
  Alcotest.(check (list string)) "no output" [] (Serve.Daemon.handle_line d "");
  Alcotest.(check (list string)) "whitespace" []
    (Serve.Daemon.handle_line d "   ")

let test_garbage_is_an_error_response () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d "not json at all" with
  | [ line ] ->
      Alcotest.(check bool) "not ok" true (contains ~affix:{|"ok":false|} line);
      Alcotest.(check bool) "an envelope" true
        (contains ~affix:Core.Report.schema line)
  | l -> Alcotest.failf "expected exactly one error line, got %d" (List.length l)

let test_unknown_verb_keeps_id () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d {|{"id": 9, "verb": "frobnicate"}|} with
  | [ line ] ->
      Alcotest.(check bool) "id echoed" true (contains ~affix:{|"id":9|} line);
      Alcotest.(check bool) "not ok" true (contains ~affix:{|"ok":false|} line)
  | l -> Alcotest.failf "expected exactly one error line, got %d" (List.length l)

let test_ping () =
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d (req 1 "ping" []) with
  | [ line ] ->
      List.iter
        (fun affix -> Alcotest.(check bool) affix true (contains ~affix line))
        [ {|"id":1|}; {|"verb":"ping"|}; {|"ok":true|}; {|"pong":true|} ]
  | l -> Alcotest.failf "expected exactly one line, got %d" (List.length l)

let test_shutdown_stops () =
  let d = Serve.Daemon.create () in
  Alcotest.(check bool) "running" false (Serve.Daemon.stopping d);
  ignore (Serve.Daemon.handle_line d (req 1 "shutdown" []));
  Alcotest.(check bool) "stopping" true (Serve.Daemon.stopping d)

let test_two_cold_daemons_agree () =
  (* The response stream is a pure function of the request stream: two
     fresh daemons serve byte-identical sessions. *)
  let a = run_session (Serve.Daemon.create ()) session in
  let b = run_session (Serve.Daemon.create ()) session in
  Alcotest.(check (list string)) "byte-identical sessions" a b

let test_warm_repeat_identical_and_cached () =
  (* Replaying the same session against a warm daemon yields the same
     bytes — repeats are served from the response cache, which the
     stats verb then confirms: the only verb whose answer depends on
     accumulated state is [stats] itself. *)
  let d = Serve.Daemon.create () in
  let cold = run_session d session in
  let warm = run_session d session in
  Alcotest.(check (list string)) "warm replay byte-identical" cold warm;
  match Serve.Daemon.handle_line d (req 99 "stats" []) with
  | [ line ] ->
      (* cold: analyze 3 misses, analyze 4 hits; warm: both hit *)
      Alcotest.(check bool) "response cache hit on repeats" true
        (contains ~affix:{|"serve_responses":{"hits":3,"misses":1|} line);
      (* the file is parsed once; response-cache hits never re-load it *)
      Alcotest.(check bool) "file parsed once" true
        (contains ~affix:{|"serve_files":{"hits":0,"misses":1|} line)
  | l -> Alcotest.failf "expected one stats line, got %d" (List.length l)

let test_stats_reports_pool () =
  (* The stats verb carries a pool object; a fresh stdio-style daemon
     has touched neither workers nor socket clients, so every counter
     is zero — which is exactly what the CI golden replay pins. *)
  Simkit.Exec.Pool.shutdown ();
  let d = Serve.Daemon.create () in
  match Serve.Daemon.handle_line d (req 1 "stats" []) with
  | [ line ] ->
      Alcotest.(check bool) "pool object present" true
        (contains ~affix:{|"pool":{"workers":0,|} line);
      Alcotest.(check bool) "socket counters present" true
        (contains ~affix:{|"active_clients":0,"clients_served":0|} line)
  | l -> Alcotest.failf "expected one stats line, got %d" (List.length l)

(* ---- the concurrent socket transport ----------------------------------- *)

let socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "stellar-cup-test-%d.sock" (Unix.getpid ()))

let connect path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let wait_for_socket path =
  let rec go n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "daemon socket never appeared"
    else begin
      Unix.sleepf 0.02;
      go (n - 1)
    end
  in
  go 250

let test_socket_concurrent_clients () =
  (* Two clients held open at once against one daemon: requests
     interleave across connections, yet each connection sees its own
     responses in its own request order, analyze payloads agree modulo
     the echoed id (the response cache is shared), and the stats verb
     observes both connections live. On runtimes without concurrent
     tasks [serve_unix] degrades to one client at a time, so the
     interleaved half only runs where tasks are real. *)
  if Simkit.Exec.concurrent_tasks then begin
    let path = socket_path () in
    let d = Serve.Daemon.create () in
    let server =
      Simkit.Exec.spawn_task (fun () ->
          Serve.Daemon.serve_unix ~max_clients:2 d ~path)
    in
    wait_for_socket path;
    let s1, ic1, oc1 = connect path in
    let s2, ic2, oc2 = connect path in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close s1 with Unix.Unix_error _ -> ());
        (try Unix.close s2 with Unix.Unix_error _ -> ());
        Simkit.Exec.join_task server)
      (fun () ->
        (* interleaved pings: each connection gets its own id back *)
        send oc1 (req 1 "ping" []);
        send oc2 (req 21 "ping" []);
        let r1 = input_line ic1 and r2 = input_line ic2 in
        Alcotest.(check bool) "c1 got its id" true
          (contains ~affix:{|"id":1|} r1);
        Alcotest.(check bool) "c2 got its id" true
          (contains ~affix:{|"id":21|} r2);
        (* the same analysis from both clients: byte-identical modulo id,
           the second served warm from the shared response cache *)
        send oc1 (analyze 2);
        let a1 = input_line ic1 in
        send oc2 (analyze 22);
        let a2 = input_line ic2 in
        Alcotest.(check string) "shared cache, same payload" (strip_ids a1)
          (strip_ids a2);
        (* per-connection ordering: two requests down one pipe come back
           in request order while the other connection stays open *)
        send oc1 (req 3 "ping" []);
        send oc1 (req 4 "version" []);
        Alcotest.(check bool) "first in, first out" true
          (contains ~affix:{|"id":3|} (input_line ic1));
        Alcotest.(check bool) "second follows" true
          (contains ~affix:{|"id":4|} (input_line ic1));
        (* both handlers are live right now: each has answered on its
           own connection, so stats must count two active clients *)
        send oc2 (req 23 "stats" []);
        Alcotest.(check bool) "two clients live" true
          (contains ~affix:{|"active_clients":2|} (input_line ic2));
        (* shutdown from one client stops the whole daemon *)
        send oc2 (req 24 "shutdown" []);
        Alcotest.(check bool) "shutdown acknowledged" true
          (contains ~affix:{|"ok":true|} (input_line ic2)));
    Alcotest.(check bool) "daemon stopped" true (Serve.Daemon.stopping d);
    Alcotest.(check bool) "socket removed" false (Sys.file_exists path)
  end

let test_socket_session_matches_stdio () =
  (* One socket client replaying the canonical session gets exactly the
     bytes handle_line produces — the transport adds nothing. *)
  if Simkit.Exec.concurrent_tasks then begin
    let path = socket_path () in
    let d = Serve.Daemon.create () in
    let server =
      Simkit.Exec.spawn_task (fun () -> Serve.Daemon.serve_unix d ~path)
    in
    wait_for_socket path;
    let sock, ic, oc = connect path in
    let expected = run_session (Serve.Daemon.create ()) session in
    let got =
      List.concat_map
        (fun line ->
          send oc line;
          [ input_line ic ])
        session
    in
    send oc (req 99 "shutdown" []);
    ignore (input_line ic);
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Simkit.Exec.join_task server;
    Alcotest.(check (list string)) "socket = stdio bytes" expected got
  end

let test_repeat_analyze_reuses_payload () =
  (* Identical analyze requests under different ids: the payloads are
     byte-identical; only the echoed id differs. *)
  let d = Serve.Daemon.create () in
  match
    (Serve.Daemon.handle_line d (analyze 3), Serve.Daemon.handle_line d (analyze 4))
  with
  | [ r3 ], [ r4 ] ->
      Alcotest.(check bool) "ids differ" true (r3 <> r4);
      Alcotest.(check string) "same modulo id" (strip_ids r3) (strip_ids r4)
  | _ -> Alcotest.fail "expected one response line per analyze"

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "blank lines ignored" `Quick test_blank_line_ignored;
        Alcotest.test_case "garbage yields an error envelope" `Quick
          test_garbage_is_an_error_response;
        Alcotest.test_case "unknown verb keeps the id" `Quick
          test_unknown_verb_keeps_id;
        Alcotest.test_case "ping" `Quick test_ping;
        Alcotest.test_case "shutdown stops the loop" `Quick test_shutdown_stops;
        Alcotest.test_case "cold daemons byte-identical" `Quick
          test_two_cold_daemons_agree;
        Alcotest.test_case "warm replay identical, served from cache" `Quick
          test_warm_repeat_identical_and_cached;
        Alcotest.test_case "repeated analyze differs only in id" `Quick
          test_repeat_analyze_reuses_payload;
      ] );
  ]
