test/test_builtin.ml: Alcotest Builtin Connectivity Digraph Generators Graphkit List Pid Printf Properties Scc
