test/main.mli:
