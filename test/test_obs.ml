(* The observability layer itself: JSON determinism, the metrics
   registry, the trace sink, and the engine instrumentation agreeing
   with the engine's own stats. *)

open Graphkit

(* ---- json ------------------------------------------------------------- *)

let test_json_rendering () =
  let j =
    Obs.Json.Obj
      [
        ("b", Obs.Json.Bool true);
        ("a", Obs.Json.Int (-3));
        ("s", Obs.Json.String "x\"y\n");
        ("l", Obs.Json.List [ Obs.Json.Null; Obs.Json.Float 1.5 ]);
      ]
  in
  Alcotest.(check string)
    "insertion order, compact, escaped"
    {|{"b":true,"a":-3,"s":"x\"y\n","l":[null,1.5]}|}
    (Obs.Json.to_string j)

let test_json_non_finite () =
  Alcotest.(check string)
    "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string)
    "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

(* ---- metrics ---------------------------------------------------------- *)

let test_counter_and_registry_idempotence () =
  let r = Obs.Metrics.create () in
  let c1 = Obs.Metrics.counter r "hits" in
  let c2 = Obs.Metrics.counter r "hits" in
  Obs.Metrics.incr c1;
  Obs.Metrics.incr ~by:4 c2;
  Alcotest.(check int) "shared underlying counter" 5
    (Obs.Metrics.counter_value c1);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Obs.Metrics.incr ~by:(-1) c1)

let test_labels_canonical () =
  let r = Obs.Metrics.create () in
  let a = Obs.Metrics.counter r ~labels:[ ("x", "1"); ("y", "2") ] "m" in
  let b = Obs.Metrics.counter r ~labels:[ ("y", "2"); ("x", "1") ] "m" in
  Obs.Metrics.incr a;
  Alcotest.(check int) "label order is canonicalized" 1
    (Obs.Metrics.counter_value b)

let test_gauge_and_histogram () =
  let r = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge r "depth" in
  Obs.Metrics.set_gauge g 7;
  Obs.Metrics.set_gauge g 3;
  Alcotest.(check int) "gauge holds last value" 3 (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "gauge tracks max" 7 (Obs.Metrics.gauge_max g);
  let h = Obs.Metrics.histogram r ~buckets:[ 1; 10 ] "lat" in
  List.iter (Obs.Metrics.observe h) [ 0; 5; 100 ];
  Alcotest.(check int) "histogram count" 3 (Obs.Metrics.histogram_count h);
  Alcotest.(check int) "histogram sum" 105 (Obs.Metrics.histogram_sum h)

let test_metrics_json_sorted () =
  (* Registration order must not leak into the dump. *)
  let dump order =
    let r = Obs.Metrics.create () in
    List.iter (fun n -> Obs.Metrics.incr (Obs.Metrics.counter r n)) order;
    Obs.Json.to_string (Obs.Metrics.to_json r)
  in
  Alcotest.(check string)
    "sorted by name" (dump [ "a"; "b"; "c" ]) (dump [ "c"; "a"; "b" ])

(* ---- trace ------------------------------------------------------------ *)

let test_trace_seq_and_fanout () =
  let sink, events = Obs.Trace.recording () in
  let seen = ref 0 in
  Obs.Trace.subscribe sink (fun _ -> incr seen);
  Obs.Trace.emit sink ~time:3 ~scope:"s" ~name:"a" [];
  Obs.Trace.emit sink ~time:5 ~scope:"s" ~name:"b"
    [ ("k", Obs.Json.Int 1) ];
  Alcotest.(check int) "both subscribers ran" 2 !seen;
  Alcotest.(check int) "event_count" 2 (Obs.Trace.event_count sink);
  match events () with
  | [ e0; e1 ] ->
      Alcotest.(check int) "seq 0" 0 e0.Obs.Trace.seq;
      Alcotest.(check int) "seq 1" 1 e1.Obs.Trace.seq;
      Alcotest.(check string)
        "jsonl line" {|{"t":5,"seq":1,"scope":"s","ev":"b","k":1}|}
        (Obs.Trace.event_to_line e1)
  | _ -> Alcotest.fail "expected two recorded events"

(* ---- engine instrumentation ------------------------------------------- *)

(* A two-node ping-pong bounded by max_time; the registry's counters
   must agree exactly with Engine.stats. *)
let echo : int Simkit.Engine.behavior =
  {
    Simkit.Engine.on_start = (fun ctx -> Simkit.Engine.send ctx 2 0);
    on_message =
      (fun ctx ~src n -> if n < 10 then Simkit.Engine.send ctx src (n + 1));
    on_timer = (fun _ _ -> ());
  }

let reply : int Simkit.Engine.behavior =
  {
    Simkit.Engine.idle_behavior with
    on_message =
      (fun ctx ~src n -> if n < 10 then Simkit.Engine.send ctx src (n + 1));
  }

let test_engine_counters_match_stats () =
  let metrics = Obs.Metrics.create () in
  let sink, events = Obs.Trace.recording () in
  let delay = Simkit.Delay.partial_synchrony ~gst:0 ~delta:4 ~seed:11 in
  let engine = Simkit.Engine.create_cfg { Simkit.Run_config.default with metrics = Some metrics; trace = Some sink; delay = Some delay; max_time = 1_000_000 } in
  Simkit.Engine.add_node engine 1 echo;
  Simkit.Engine.add_node engine 2 reply;
  let stats = Simkit.Engine.run engine in
  let count name =
    Obs.Metrics.counter_value (Obs.Metrics.counter metrics name)
  in
  Alcotest.(check int) "sent counter = stats" stats.messages_sent
    (count "engine_messages_sent");
  Alcotest.(check int) "delivered counter = stats" stats.messages_delivered
    (count "engine_messages_delivered");
  Alcotest.(check int) "nothing dropped" 0 (count "engine_messages_dropped");
  let sends =
    List.length
      (List.filter
         (fun (e : Obs.Trace.event) -> e.name = "send" && e.scope = "engine")
         (events ()))
  in
  Alcotest.(check int) "one send event per message" stats.messages_sent sends

let test_engine_drop_accounting () =
  let metrics = Obs.Metrics.create () in
  let delay = Simkit.Delay.synchronous ~delta:1 in
  let engine = Simkit.Engine.create_cfg { Simkit.Run_config.default with metrics = Some metrics; delay = Some delay; max_time = 1_000_000 } in
  (* Node 1 fires at an unregistered destination. *)
  Simkit.Engine.add_node engine 1
    {
      Simkit.Engine.idle_behavior with
      on_start = (fun ctx -> Simkit.Engine.send ctx 99 0);
    };
  let stats = Simkit.Engine.run engine in
  Alcotest.(check int) "stats counts the drop" 1 stats.messages_dropped;
  Alcotest.(check int) "counter counts the drop" 1
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter metrics "engine_messages_dropped"));
  Alcotest.(check int) "nothing delivered" 0 stats.messages_delivered

let test_queue_high_water () =
  let q = Simkit.Event_queue.create () in
  List.iter (fun t -> Simkit.Event_queue.push q ~time:t t) [ 3; 1; 2 ];
  ignore (Simkit.Event_queue.pop q);
  Simkit.Event_queue.push q ~time:9 9;
  Alcotest.(check int) "high water tracks the peak" 3
    (Simkit.Event_queue.high_water q)

(* ---- scp run metrics -------------------------------------------------- *)

let own_value i = Scp.Value.of_ints [ i ]

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let test_scp_run_populates_metrics () =
  let metrics = Obs.Metrics.create () in
  let members = Pid.Set.of_range 1 4 in
  let cfg =
    {
      Scp.Runner.default_cfg with
      run = { Simkit.Run_config.default with metrics = Some metrics };
    }
  in
  let o =
    Scp.Runner.run_cfg ~cfg
      ~system:(threshold_system 4 3)
      ~peers_of:(fun _ -> members)
      ~initial_value_of:own_value
      ~fault_of:(fun _ -> None)
      ()
  in
  Alcotest.(check bool) "run decides" true (o.all_decided && o.agreement);
  let count name =
    Obs.Metrics.counter_value (Obs.Metrics.counter metrics name)
  in
  Alcotest.(check int) "engine counter matches stats" o.stats.messages_sent
    (count "engine_messages_sent");
  Alcotest.(check int) "one decision per node" 4 (count "scp_decisions");
  Alcotest.(check bool) "votes counted" true (count "scp_votes" > 0);
  Alcotest.(check bool) "confirms counted" true (count "scp_confirms" > 0);
  Alcotest.(check bool)
    "quorum checks counted" true
    (count "scp_quorum_checks" > 0)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json rendering" `Quick test_json_rendering;
        Alcotest.test_case "json non-finite floats" `Quick
          test_json_non_finite;
        Alcotest.test_case "counter + idempotent registry" `Quick
          test_counter_and_registry_idempotence;
        Alcotest.test_case "labels canonicalized" `Quick test_labels_canonical;
        Alcotest.test_case "gauge and histogram" `Quick
          test_gauge_and_histogram;
        Alcotest.test_case "metrics dump sorted" `Quick
          test_metrics_json_sorted;
        Alcotest.test_case "trace seq + fanout" `Quick
          test_trace_seq_and_fanout;
        Alcotest.test_case "engine counters = stats" `Quick
          test_engine_counters_match_stats;
        Alcotest.test_case "engine drop accounting" `Quick
          test_engine_drop_accounting;
        Alcotest.test_case "queue high water" `Quick test_queue_high_water;
        Alcotest.test_case "scp run populates metrics" `Quick
          test_scp_run_populates_metrics;
      ] );
  ]
