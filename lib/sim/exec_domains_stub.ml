(* No-domains backend stub — the OCaml 4.14 side of the dune version
   switch (see exec_domains_native.ml for the real one). {!Exec} checks
   [available] before dispatching here, so [map_chunked] is
   unreachable; it raises rather than silently degrading so a dispatch
   bug cannot masquerade as a slow sequential run. The persistent-pool
   surface is inert: there is never a pool, so the stats are zero and
   [shutdown] is a no-op. *)

let available = false

(* Nothing races without domains: the "lock" is the identity. *)
let locked f = f ()

let map_chunked ~chunk:_ ~domains:_ _do_job _n =
  invalid_arg "Simkit.Exec: domain backend unavailable on this runtime"

let shutdown () = ()
let pool_size () = 0
let pool_peak () = 0
let pool_batches () = 0

(* Without domains a "detached" task runs inline before [detach]
   returns — the daemon's concurrent accept loop degrades to the old
   one-client-at-a-time behaviour on 4.14. *)
type task = unit

let detach f = f ()
let join_task () = ()
