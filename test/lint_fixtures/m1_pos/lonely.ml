(* Fixture: a lib/ module with no interface file. *)
let lonely = 1
