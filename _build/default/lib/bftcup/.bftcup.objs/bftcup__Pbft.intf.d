lib/bftcup/pbft.mli: Format Graphkit Pid Scp Simkit
