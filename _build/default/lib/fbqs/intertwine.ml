open Graphkit

type mode = Correct_witness of Pid.Set.t | Threshold of int

let threshold_pair_ok ~f q q' = Pid.Set.cardinal (Pid.Set.inter q q') > f

let mode_ok mode q q' =
  match mode with
  | Correct_witness w ->
      not (Pid.Set.is_empty (Pid.Set.inter w (Pid.Set.inter q q')))
  | Threshold f -> threshold_pair_ok ~f q q'

let pair_intertwined ?universe sys mode i j =
  let qi = Quorum.minimal_quorums_of ?universe sys i in
  let qj = Quorum.minimal_quorums_of ?universe sys j in
  List.for_all (fun q -> List.for_all (fun q' -> mode_ok mode q q') qj) qi

let violating_pair ?universe sys mode set =
  let elts = Pid.Set.elements set in
  let quorums =
    List.map (fun i -> (i, Quorum.minimal_quorums_of ?universe sys i)) elts
  in
  let rec scan = function
    | [] -> None
    | (i, qis) :: rest ->
        let bad_against (j, qjs) =
          List.find_map
            (fun q ->
              List.find_map
                (fun q' ->
                  if mode_ok mode q q' then None else Some (i, q, j, q'))
                qjs)
            qis
        in
        (* Include the reflexive pair: two distinct quorums of the same
           process must also intersect. *)
        (match List.find_map bad_against ((i, qis) :: rest) with
        | Some w -> Some w
        | None -> scan rest)
  in
  scan quorums

let set_intertwined ?universe sys mode set =
  Option.is_none (violating_pair ?universe sys mode set)
