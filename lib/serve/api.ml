(* The analysis/run surface shared by the CLI and the daemon.

   Both front ends answer the same questions — "analyze this FBQS",
   "run this consensus stack" — and both must emit byte-identical JSON
   for identical inputs, so the result assembly lives here exactly
   once. The CLI wraps each payload in a {!Core.Report} envelope of
   its own kind; the daemon wraps the same payload in a response
   envelope carrying the request id. *)

open Graphkit

(* ---- graph selection -------------------------------------------------- *)

type graph_spec = {
  kind : string;
  seed : int;
  sink_size : int;
  non_sink : int;
  f : int;
}

let default_graph_spec =
  { kind = "fig2"; seed = 1; sink_size = 5; non_sink = 4; f = 1 }

let build_graph spec =
  match spec.kind with
  | "fig1" -> Builtin.fig1
  | "fig2" -> Builtin.fig2
  | "family" ->
      Generators.fig2_family ~sink_size:spec.sink_size ~non_sink:spec.non_sink
  | "random" ->
      Generators.random_k_osr ~seed:spec.seed ~sink_size:spec.sink_size
        ~non_sink:spec.non_sink
        ~k:((2 * spec.f) + 1)
        ()
  | other when String.length other > 5 && String.sub other 0 5 = "file:" -> (
      let path = String.sub other 5 (String.length other - 5) in
      match Parse.of_file path with
      | Ok g -> g
      | Error e -> failwith (Printf.sprintf "cannot read %s: %s" path e))
  | other -> failwith (Printf.sprintf "unknown graph kind %S" other)

(* ---- consensus runs --------------------------------------------------- *)

let verdict_json (v : Stellar_cup.Pipeline.verdict) =
  Obs.Json.Obj
    [
      ("all_decided", Obs.Json.Bool v.all_decided);
      ("agreement", Obs.Json.Bool v.agreement);
      ("validity", Obs.Json.Bool v.validity);
      ("deciders", Obs.Json.Int v.deciders);
      ("discovery_msgs", Obs.Json.Int v.discovery_msgs);
      ("consensus_msgs", Obs.Json.Int v.consensus_msgs);
      ("total_time", Obs.Json.Int v.total_time);
    ]

let stack_of_pipeline = function
  | "scp-local" -> Stellar_cup.Pipeline.Scp_local
  | "scp-sd" -> Stellar_cup.Pipeline.Scp_sink_detector
  | "bftcup" -> Stellar_cup.Pipeline.Bftcup
  | other -> failwith (Printf.sprintf "unknown pipeline %S" other)

let run_consensus ~cfg ~pipeline ~graph ~f ~faulty () =
  let initial_value_of i = Scp.Value.of_ints [ i ] in
  match stack_of_pipeline pipeline with
  | Stellar_cup.Pipeline.Scp_local ->
      Stellar_cup.Pipeline.scp_with_local_slices ~cfg ~graph ~f ~faulty
        ~initial_value_of ()
  | Stellar_cup.Pipeline.Scp_sink_detector ->
      Stellar_cup.Pipeline.scp_with_sink_detector ~cfg ~graph ~f ~faulty
        ~initial_value_of ()
  | Stellar_cup.Pipeline.Bftcup ->
      Stellar_cup.Pipeline.bftcup ~cfg ~graph ~f ~faulty ~initial_value_of ()

let run_payload ~pipeline ~seed ~extra verdict =
  Obs.Json.Obj
    (("pipeline", Obs.Json.String pipeline)
    :: ("seed", Obs.Json.Int seed)
    :: ("verdict", verdict_json verdict)
    :: extra)

let sweep_payload ~pipeline ~samples ~jobs verdicts =
  let all_ok =
    List.for_all
      (fun (_, (v : Stellar_cup.Pipeline.verdict)) ->
        v.all_decided && v.agreement && v.validity)
      verdicts
  in
  Obs.Json.Obj
    [
      ("pipeline", Obs.Json.String pipeline);
      ("samples", Obs.Json.Int samples);
      ("jobs", Obs.Json.Int jobs);
      ("all_consensus", Obs.Json.Bool all_ok);
      ( "runs",
        Obs.Json.List
          (List.map
             (fun (seed, v) ->
               Obs.Json.Obj
                 [
                   ("seed", Obs.Json.Int seed); ("verdict", verdict_json v);
                 ])
             verdicts) );
    ]

(* ---- FBQS analysis ---------------------------------------------------- *)

type analysis_options = {
  despite : int list list;
  blocking : bool;
  splitting : bool;
  max_size : int option;
  cap : int;
  metrics : bool;
  jobs : int;
}

let default_analysis_options =
  {
    despite = [];
    blocking = false;
    splitting = false;
    max_size = None;
    cap = 64;
    metrics = false;
    jobs = 1;
  }

type analysis = {
  participants : Pid.Set.t;
  minimal_quorums : Pid.Set.t list;
  top_tier : Pid.Set.t;
  intersection : Fbqs.Enum.intersection;
  blocking_sets : Fbqs.Enum.blocking option;
  splitting_sets : Pid.Set.t list option;
  despite_checks : (Pid.Set.t * bool) list;
  search : Fbqs.Enum.stats;
  registry : Obs.Metrics.t option;
}

let analyze opts sys =
  (* [opts.jobs] moves wall-clock only: every Enum entry point is
     byte-identical at every jobs count, and the payload never
     mentions jobs, so reports stay comparable across executors. *)
  let jobs = opts.jobs in
  let metrics = if opts.metrics then Some (Obs.Metrics.create ()) else None in
  let t = Fbqs.Enum.prepare ?metrics sys in
  let participants = Fbqs.Quorum.participants sys in
  let minimal_quorums = Fbqs.Enum.minimal_quorums ~jobs t in
  let intersection = Fbqs.Enum.check_intersection ~jobs t in
  let top_tier = Fbqs.Enum.top_tier ~jobs t in
  let blocking_sets =
    if opts.blocking then Some (Fbqs.Enum.minimal_blocking_sets ~jobs t)
    else None
  in
  let splitting_sets =
    if opts.splitting then
      Some
        (Fbqs.Enum.minimal_splitting_sets ?metrics ?max_size:opts.max_size
           ~jobs t)
    else None
  in
  let despite_checks =
    List.map
      (fun ids ->
        let b = Pid.Set.of_list ids in
        (b, Fbqs.Enum.quorum_intersection_despite ?metrics ~jobs sys b))
      opts.despite
  in
  {
    participants;
    minimal_quorums;
    top_tier;
    intersection;
    blocking_sets;
    splitting_sets;
    despite_checks;
    search = Fbqs.Enum.stats t;
    registry = metrics;
  }

let pid_set_json s =
  Obs.Json.List (List.map (fun i -> Obs.Json.Int i) (Pid.Set.elements s))

let set_family_json ?(cap = max_int) sets =
  let count = List.length sets in
  let sizes = List.map Pid.Set.cardinal sets in
  let listed = List.filteri (fun i _ -> i < cap) sets in
  [
    ("count", Obs.Json.Int count);
    ( "size_min",
      match sizes with
      | [] -> Obs.Json.Null
      | s -> Obs.Json.Int (List.fold_left min max_int s) );
    ( "size_max",
      match sizes with
      | [] -> Obs.Json.Null
      | s -> Obs.Json.Int (List.fold_left max 0 s) );
    ("listed", Obs.Json.Int (List.length listed));
    ("sets", Obs.Json.List (List.map pid_set_json listed));
  ]

let analysis_payload opts a =
  let cap = opts.cap in
  let fields =
    [
      ("participants", Obs.Json.Int (Pid.Set.cardinal a.participants));
      ( "minimal_quorums",
        Obs.Json.Obj (set_family_json ~cap a.minimal_quorums) );
      ("top_tier", pid_set_json a.top_tier);
      ( "intersection",
        match a.intersection with
        | Fbqs.Enum.Intersects ->
            Obs.Json.Obj [ ("intersects", Obs.Json.Bool true) ]
        | Fbqs.Enum.Disjoint (q1, q2) ->
            Obs.Json.Obj
              [
                ("intersects", Obs.Json.Bool false);
                ("witness", Obs.Json.List [ pid_set_json q1; pid_set_json q2 ]);
              ] );
    ]
    @ (match a.blocking_sets with
      | None -> []
      | Some { Fbqs.Enum.sets; complete } ->
          [
            ( "blocking",
              Obs.Json.Obj
                (set_family_json ~cap sets
                @ [ ("complete", Obs.Json.Bool complete) ]) );
          ])
    @ (match a.splitting_sets with
      | None -> []
      | Some sets ->
          [ ("splitting", Obs.Json.Obj (set_family_json ~cap sets)) ])
    @ (match a.despite_checks with
      | [] -> []
      | l ->
          [
            ( "despite",
              Obs.Json.List
                (List.map
                   (fun (b, ok) ->
                     Obs.Json.Obj
                       [
                         ("deleted", pid_set_json b);
                         ("intersects", Obs.Json.Bool ok);
                       ])
                   l) );
          ])
    @ [
        ( "stats",
          Obs.Json.Obj
            [
              ("explored", Obs.Json.Int a.search.Fbqs.Enum.explored);
              ("pruned", Obs.Json.Int a.search.Fbqs.Enum.pruned);
              ("found", Obs.Json.Int a.search.Fbqs.Enum.found);
            ] );
      ]
    @ Option.to_list
        (Option.map
           (fun m -> ("metrics", Obs.Metrics.to_json m))
           a.registry)
  in
  Obs.Json.Obj fields
