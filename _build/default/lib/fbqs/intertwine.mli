(** Intertwined sets of processes (Definition 2 and the threshold-based
    variant of Section III-F). *)

open Graphkit

type mode =
  | Correct_witness of Pid.Set.t
      (** Definition 2: every pair of quorums intersects in at least one
          member of the given correct set [W]. *)
  | Threshold of int
      (** Section III-F: every pair of quorums intersects in more than
          [f] processes. *)

val pair_intertwined :
  ?universe:Pid.Set.t -> Quorum.system -> mode -> Pid.t -> Pid.t -> bool
(** [pair_intertwined sys mode i j]: every quorum of [i] and every
    quorum of [j] (within [universe]) intersect as demanded by [mode].
    Checked on inclusion-minimal quorums, which is sufficient because
    intersections only grow under supersets. Vacuously true when either
    process has no quorum. *)

val set_intertwined :
  ?universe:Pid.Set.t -> Quorum.system -> mode -> Pid.Set.t -> bool
(** Definition 2 over a whole set: all (unordered, including reflexive)
    pairs are intertwined. *)

val violating_pair :
  ?universe:Pid.Set.t ->
  Quorum.system ->
  mode ->
  Pid.Set.t ->
  (Pid.t * Pid.Set.t * Pid.t * Pid.Set.t) option
(** A witness [(i, Q_i, j, Q_j)] of an intersection violation inside the
    given set, if any — the shape of the Theorem 2 counter-example. *)

val threshold_pair_ok : f:int -> Pid.Set.t -> Pid.Set.t -> bool
(** The raw Section III-F test: [|q ∩ q'| > f]. *)
