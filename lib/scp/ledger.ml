open Graphkit

type entry = { slot : int; value : Value.t; decided_at : int }

let pp_entry ppf e =
  Format.fprintf ppf "slot %d: %a (t=%d)" e.slot Value.pp e.value e.decided_at

type result = {
  ledgers : entry list Pid.Map.t;
  consistent : bool;
  complete : bool;
  total_messages : int;
  total_ticks : int;
}

let run ?(seed = 0) ?gst ?delta ?(max_time_per_slot = 200_000)
    ?ballot_timeout ~slots ~system ~peers_of ~tx_pool ~fault_of () =
  let ledgers = ref Pid.Map.empty in
  let append pid entry =
    ledgers :=
      Pid.Map.update pid
        (fun l -> Some (entry :: Option.value ~default:[] l))
        !ledgers
  in
  let total_messages = ref 0 and total_ticks = ref 0 in
  let consistent = ref true in
  let complete = ref true in
  for slot = 0 to slots - 1 do
    let d = Runner.default_cfg in
    let cfg =
      {
        Runner.run =
          {
            d.run with
            seed = seed + (1000 * slot);
            gst = Option.value ~default:d.run.gst gst;
            delta = Option.value ~default:d.run.delta delta;
            max_time = max_time_per_slot;
          };
        ballot_timeout =
          Option.value ~default:d.ballot_timeout ballot_timeout;
        nomination = d.nomination;
      }
    in
    let outcome =
      Runner.run_cfg ~cfg ~system ~peers_of
        ~initial_value_of:(tx_pool slot) ~fault_of ()
    in
    total_messages := !total_messages + outcome.stats.messages_sent;
    total_ticks := !total_ticks + outcome.stats.end_time;
    if not outcome.agreement then consistent := false;
    if not outcome.all_decided then complete := false;
    Pid.Map.iter
      (fun pid (d : Node.decision) ->
        append pid { slot; value = d.value; decided_at = d.time })
      outcome.decisions
  done;
  {
    ledgers = Pid.Map.map List.rev !ledgers;
    consistent = !consistent;
    complete = !complete;
    total_messages = !total_messages;
    total_ticks = !total_ticks;
  }
