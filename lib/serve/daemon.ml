(* The analysis service daemon.

   A request loop reading newline-delimited JSON requests and writing
   newline-delimited {!Core.Report} envelopes — over stdin/stdout for
   CI pipelines (strictly sequential, so golden replays stay
   byte-stable), or over a Unix domain socket where up to
   [max_clients] connections are served concurrently off the shared
   {!Simkit.Exec} pool. Determinism is the contract: per connection,
   the response stream is a pure function of the request stream,
   except for the [stats] verb, which intentionally reports the
   accumulated cache and pool counters (warm versus cold runs differ
   exactly there). Shared daemon state (request/client counters, the
   caches) moves under {!Simkit.Exec.protect}, the one sanctioned
   mutual-exclusion seam outside lib/sim.

   Three caches cooperate:
   - the shared compiled-handle caches ({!Fbqs.Quorum.compiled_of},
     {!Graphkit.Csr.get}) that the engines use internally;
   - a file cache (path -> parsed system) that keeps hot systems
     physically alive, so a repeated [analyze] of the same file
     reuses one compiled handle instead of re-parsing and
     re-compiling;
   - a response cache (canonical request, minus id -> payload and
     trace) that answers byte-identical repeats without re-running
     the engine.

   Byzantine fault tolerance of the service itself is out of scope:
   the daemon trusts its local client, exactly like the CLI trusts
   its arguments. *)

module J = Obs.Json

type cached = {
  c_verb : string;
  c_ok : bool;
  c_payload : J.t;
  c_trace : J.t list;
}

type t = {
  files : (string, Fbqs.Quorum.system) Core.Cache.t;
  responses : (string, cached) Core.Cache.t;
  jobs : int;  (* default Enum parallelism for [analyze] *)
  mutable requests : int;
  mutable stopping : bool;
  mutable active_clients : int;  (* socket connections being served *)
  mutable clients_served : int;  (* socket connections completed *)
}

let default_capacity = 64

let capacity_from_env () =
  match Sys.getenv_opt "STELLAR_CUP_CACHE_CAPACITY" with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let create ?cache_capacity ?(jobs = 1) () =
  let capacity =
    match cache_capacity with
    | Some n -> n
    | None -> Option.value ~default:default_capacity (capacity_from_env ())
  in
  Fbqs.Quorum.set_cache_capacity capacity;
  Graphkit.Csr.set_cache_capacity (min capacity 16);
  {
    files =
      Core.Cache.create ~equal:String.equal ~name:"serve_files" ~capacity:8
        ();
    responses =
      Core.Cache.create ~equal:String.equal ~name:"serve_responses" ~capacity
        ();
    jobs = max 1 jobs;
    requests = 0;
    stopping = false;
    active_clients = 0;
    clients_served = 0;
  }

(* ---- request decoding ------------------------------------------------- *)

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

let field fields name = List.assoc_opt name fields

let int_field fields name ~default =
  match field fields name with
  | None -> default
  | Some (J.Int n) -> n
  | Some _ -> bad "field %S must be an integer" name

let opt_int_field fields name =
  match field fields name with
  | None | Some J.Null -> None
  | Some (J.Int n) -> Some n
  | Some _ -> bad "field %S must be an integer" name

let bool_field fields name ~default =
  match field fields name with
  | None -> default
  | Some (J.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name

let string_field fields name ~default =
  match field fields name with
  | None -> default
  | Some (J.String s) -> s
  | Some _ -> bad "field %S must be a string" name

let req_string_field fields name =
  match field fields name with
  | Some (J.String s) -> s
  | Some _ -> bad "field %S must be a string" name
  | None -> bad "missing required field %S" name

let int_list = function
  | J.List l ->
      List.map
        (function J.Int n -> n | _ -> bad "expected a list of integers")
        l
  | _ -> bad "expected a list of integers"

let int_list_field fields name ~default =
  match field fields name with None -> default | Some j -> int_list j

let int_list_list_field fields name ~default =
  match field fields name with
  | None -> default
  | Some (J.List l) -> List.map int_list l
  | Some _ -> bad "field %S must be a list of integer lists" name

(* ---- verbs ------------------------------------------------------------ *)

let ping_payload = J.Obj [ ("pong", J.Bool true) ]

let version_payload =
  J.Obj
    [
      ("name", J.String "stellar-cup");
      ("version", J.String "1.0.0");
      ("schema", J.String Core.Report.schema);
      ("report_version", J.Int Core.Report.version);
      ( "verbs",
        J.List
          (List.map
             (fun v -> J.String v)
             [ "ping"; "version"; "analyze"; "run"; "stats"; "shutdown" ]) );
    ]

let stats_payload t =
  let cache s = Core.Cache.stats_to_json s in
  J.Obj
    [
      ("requests", J.Int t.requests);
      ( "pool",
        J.Obj
          [
            ("workers", J.Int (Simkit.Exec.Pool.size ()));
            ("peak_workers", J.Int (Simkit.Exec.Pool.peak ()));
            ("batches", J.Int (Simkit.Exec.Pool.batches ()));
            ("active_clients", J.Int t.active_clients);
            ("clients_served", J.Int t.clients_served);
          ] );
      ( "caches",
        J.Obj
          [
            ("fbqs_quorum_compiled", cache (Fbqs.Quorum.cache_stats ()));
            ("graphkit_csr", cache (Graphkit.Csr.cache_stats ()));
            ( Core.Cache.name t.files,
              cache (Core.Cache.stats t.files) );
            ( Core.Cache.name t.responses,
              cache (Core.Cache.stats t.responses) );
          ] );
    ]

let load_system t path =
  Core.Cache.find_or_add t.files path (fun () ->
      match Fbqs.Fbas_io.of_file path with
      | Ok sys -> sys
      | Error e -> bad "cannot read %s: %s" path e)

let analyze_verb t fields =
  let path = req_string_field fields "file" in
  let opts =
    {
      Api.despite = int_list_list_field fields "despite" ~default:[];
      blocking = bool_field fields "blocking" ~default:false;
      splitting = bool_field fields "splitting" ~default:false;
      max_size = opt_int_field fields "max_size";
      cap = int_field fields "cap" ~default:64;
      metrics = bool_field fields "metrics" ~default:false;
      (* Per-request override of the daemon's default parallelism.
         Payloads are jobs-invariant, so requests differing only here
         cache under different keys yet answer identically. *)
      jobs = max 1 (int_field fields "jobs" ~default:t.jobs);
    }
  in
  let sys = load_system t path in
  let payload = Api.analysis_payload opts (Api.analyze opts sys) in
  (payload, [])

let run_verb fields =
  let spec =
    {
      Api.kind = string_field fields "graph" ~default:"fig2";
      seed = int_field fields "seed" ~default:1;
      sink_size = int_field fields "sink_size" ~default:5;
      non_sink = int_field fields "non_sink" ~default:4;
      f = int_field fields "f" ~default:1;
    }
  in
  let pipeline = string_field fields "pipeline" ~default:"scp-sd" in
  let faulty = Graphkit.Pid.Set.of_list (int_list_field fields "faulty" ~default:[]) in
  let want_metrics = bool_field fields "metrics" ~default:false in
  let want_trace = bool_field fields "trace" ~default:false in
  let d = Simkit.Run_config.default in
  let metrics = if want_metrics then Some (Obs.Metrics.create ()) else None in
  let trace, recorded =
    if want_trace then
      let sink, events = Obs.Trace.recording () in
      (Some sink, Some events)
    else (None, None)
  in
  let cfg =
    {
      Simkit.Run_config.seed = spec.Api.seed;
      gst = int_field fields "gst" ~default:d.gst;
      delta = int_field fields "delta" ~default:d.delta;
      max_time = int_field fields "max_time" ~default:d.max_time;
      delay = None;
      metrics;
      trace;
    }
  in
  let graph = Api.build_graph spec in
  let verdict =
    Api.run_consensus ~cfg ~pipeline ~graph ~f:spec.Api.f ~faulty ()
  in
  let extra =
    Option.to_list
      (Option.map (fun m -> ("metrics", Obs.Metrics.to_json m)) metrics)
  in
  let payload =
    Api.run_payload ~pipeline ~seed:spec.Api.seed ~extra verdict
  in
  let trace_events =
    match recorded with
    | None -> []
    | Some events -> List.map Obs.Trace.event_to_json (events ())
  in
  (payload, trace_events)

(* ---- envelopes -------------------------------------------------------- *)

let response_envelope ~id ~verb ~ok payload =
  Core.Report.envelope ~kind:"response"
    ~meta:[ ("id", id); ("verb", verb); ("ok", J.Bool ok) ]
    payload

let trace_envelope ~id event =
  Core.Report.envelope ~kind:"trace" ~meta:[ ("id", id) ] event

let error_lines ~id ~verb msg =
  [
    J.to_string
      (response_envelope ~id ~verb ~ok:false
         (J.Obj [ ("error", J.String msg) ]));
  ]

let ok_lines ~id ~verb ~trace payload =
  List.map (fun e -> J.to_string (trace_envelope ~id e)) trace
  @ [ J.to_string (response_envelope ~id ~verb:(J.String verb) ~ok:true payload) ]

(* The response-cache key: the request object with its [id] field
   removed, re-serialized. Field order is preserved, so two requests
   are "the same" when they are the same bytes modulo id — exactly the
   replay the determinism gate performs. *)
let cache_key fields =
  J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "id") fields))

let dispatch t fields =
  let id = Option.value ~default:J.Null (field fields "id") in
  Simkit.Exec.protect (fun () -> t.requests <- t.requests + 1);
  match field fields "verb" with
  | Some (J.String verb) -> (
      (* Only engine work is cached; failures are not (a missing file
         is an input condition, not a property of the request), so a
         fixed request replays byte-identically while the environment
         holds still — exactly the determinism the serve gate checks. *)
      let cacheable compute =
        let key = cache_key fields in
        let c =
          match Core.Cache.find_opt t.responses key with
          | Some c -> c
          | None ->
              let payload, trace = compute () in
              let c =
                { c_verb = verb; c_ok = true; c_payload = payload;
                  c_trace = trace }
              in
              Core.Cache.add t.responses key c;
              c
        in
        ok_lines ~id ~verb ~trace:c.c_trace c.c_payload
      in
      try
        match verb with
        | "ping" -> ok_lines ~id ~verb ~trace:[] ping_payload
        | "version" -> ok_lines ~id ~verb ~trace:[] version_payload
        | "stats" -> ok_lines ~id ~verb ~trace:[] (stats_payload t)
        | "shutdown" ->
            Simkit.Exec.protect (fun () -> t.stopping <- true);
            ok_lines ~id ~verb ~trace:[] (J.Obj [ ("stopping", J.Bool true) ])
        | "analyze" -> cacheable (fun () -> analyze_verb t fields)
        | "run" -> cacheable (fun () -> run_verb fields)
        | other ->
            error_lines ~id ~verb:(J.String other)
              (Printf.sprintf "unknown verb %S" other)
      with Bad_request msg | Failure msg | Sys_error msg ->
        error_lines ~id ~verb:(J.String verb) msg)
  | Some _ -> error_lines ~id ~verb:J.Null "field \"verb\" must be a string"
  | None -> error_lines ~id ~verb:J.Null "missing required field \"verb\""

let handle_line t line =
  if String.trim line = "" then []
  else
    match J.of_string line with
    | Error e ->
        Simkit.Exec.protect (fun () -> t.requests <- t.requests + 1);
        error_lines ~id:J.Null ~verb:J.Null ("parse error: " ^ e)
    | Ok (J.Obj fields) -> dispatch t fields
    | Ok _ ->
        Simkit.Exec.protect (fun () -> t.requests <- t.requests + 1);
        error_lines ~id:J.Null ~verb:J.Null "request must be a JSON object"

let stopping t = t.stopping

(* ---- transports ------------------------------------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (handle_line t line);
        flush oc;
        if not t.stopping then loop ()
  in
  loop ()

let serve_stdio t = serve_channels t stdin stdout

let default_max_clients = 4

let serve_unix ?(max_clients = default_max_clients) t ~path =
  let max_clients = max 1 max_clients in
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock max_clients;
  (* Each accepted connection is handed to a detached executor task
     (a domain of its own on OCaml 5; run inline on 4.14, which
     degrades to the historical one-client-at-a-time loop). Requests
     from one connection are answered in order on that connection;
     concurrent connections share the caches and the worker pool. *)
  let tasks = ref [] in
  let reap ~wait =
    tasks :=
      List.filter
        (fun (task, finished) ->
          if wait || !finished then begin
            Simkit.Exec.join_task task;
            false
          end
          else true)
        !tasks
  in
  let handle client () =
    Fun.protect
      ~finally:(fun () ->
        Simkit.Exec.protect (fun () ->
            t.active_clients <- t.active_clients - 1;
            t.clients_served <- t.clients_served + 1))
      (fun () ->
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        (try serve_channels t ic oc with Sys_error _ -> ());
        try Unix.close client with Unix.Unix_error _ -> ())
  in
  let rec accept_loop () =
    if not t.stopping then
      if not (Simkit.Exec.protect (fun () -> t.active_clients < max_clients))
      then begin
        reap ~wait:false;
        Unix.sleepf 0.02;
        accept_loop ()
      end
      else begin
        (* Wake periodically so a [shutdown] served on an existing
           connection stops the listener without a further connect. *)
        match Unix.select [ sock ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | [], _, _ ->
            reap ~wait:false;
            accept_loop ()
        | _ ->
            let client, _ = Unix.accept sock in
            Simkit.Exec.protect (fun () ->
                t.active_clients <- t.active_clients + 1);
            let finished = ref false in
            let task =
              Simkit.Exec.spawn_task (fun () ->
                  Fun.protect
                    ~finally:(fun () -> finished := true)
                    (handle client))
            in
            tasks := (task, finished) :: !tasks;
            accept_loop ()
      end
  in
  Fun.protect
    ~finally:(fun () ->
      reap ~wait:true;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    accept_loop
