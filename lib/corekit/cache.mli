(** A generic keyed LRU cache with uniform, observable statistics.

    This is the shared compiled-handle cache layer: the per-process
    memos in front of [Fbqs.Quorum.Compiled] and [Graphkit.Csr] are
    instances of it, as are the analysis daemon's file and response
    caches. One implementation means one stats record shape
    ({!type:stats}) everywhere, one capacity knob per instance
    ({!set_capacity}, daemon-overridable), and one way to surface
    hit/miss/evict counters in an {!Obs.Metrics} registry
    ({!attach_metrics}).

    Lookups are most-recently-used: a hit promotes the entry to the
    front, an insertion beyond capacity evicts the least recently used
    entry. The cache is single-domain mutable state, like every other
    registry in this codebase; all counters are plain integers, so
    stats dumps are byte-deterministic.

    Keys are compared with the [equal] given at creation (default:
    physical equality [( == )] — the right key for the handle caches,
    whose keys are immutable compiled-from values). *)

type ('k, 'v) t

type protector = { protect : 'a. (unit -> 'a) -> 'a }
(** A critical section runner wrapped around every cache mutation. *)

val set_protector : protector -> unit
(** Installs the critical-section runner for {e all} caches (the
    default runs the closure bare, costing nothing). [Simkit.Exec]
    arms this with a mutex before its first domain spawn; nothing
    else should call it — parallelism primitives stay behind the
    executor seam. [find_or_add] computes outside the critical
    section and re-probes before inserting, so a racing compute
    yields one resident value, not two. *)

type stats = {
  hits : int;  (** lookups answered from the cache *)
  misses : int;  (** lookups that found nothing; [hits + misses] = lookups *)
  evictions : int;  (** entries dropped by capacity pressure or resize *)
  length : int;  (** current occupancy, [<= capacity] *)
  capacity : int;
}

val create :
  ?equal:('k -> 'k -> bool) -> name:string -> capacity:int -> unit -> ('k, 'v) t
(** [name] labels the cache in metrics and stats dumps.
    @raise Invalid_argument if [capacity < 1]. *)

val name : ('k, 'v) t -> string

val capacity : ('k, 'v) t -> int

val set_capacity : ('k, 'v) t -> int -> unit
(** Shrinking below the current occupancy evicts least-recently-used
    entries (counted in [evictions]).
    @raise Invalid_argument if the new capacity is [< 1]. *)

val length : ('k, 'v) t -> int

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Counts one hit (and promotes) or one miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts at the front, evicting the least recently used entry when
    the cache is full. Does not count a lookup. The key is assumed
    absent (the memo pattern: {!find_opt} missed); adding a key that is
    already present creates a shadowed duplicate and wastes a slot. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** The memo operation: {!find_opt}, calling [compute] and {!add}-ing
    its result on a miss. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Entries in most-recently-used-first order. *)

val stats : ('k, 'v) t -> stats

val stats_to_json : stats -> Obs.Json.t
(** [{"hits", "misses", "evictions", "length", "capacity"}] — integer
    fields in that order. *)

val attach_metrics : ('k, 'v) t -> Obs.Metrics.t -> unit
(** Registers [cache_hits] / [cache_misses] / [cache_evictions]
    counters and a [cache_entries] gauge in the registry, all labelled
    [{"cache": name}], seeds them with the cache's current totals, and
    keeps them in step with every subsequent operation. Attaching the
    same registry twice is a no-op. *)
