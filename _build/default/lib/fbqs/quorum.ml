open Graphkit

type system = Slice.t Pid.Map.t

let system_of_list l =
  List.fold_left (fun m (i, s) -> Pid.Map.add i s m) Pid.Map.empty l

let slices_of sys i =
  Option.value ~default:(Slice.Explicit []) (Pid.Map.find_opt i sys)

let participants = Pid.Map.keys

(* The per-member test of Algorithm 1, with a per-evaluation cache.
   Threshold systems built by Algorithm 2 share one [members] set record
   across all processes, so the [|q ∩ members|] count — the whole cost
   of the symbolic test — is computed once per distinct (physically
   shared) member set instead of once per process. *)
let member_ok_cached q =
  let memo = ref [] in
  let inter_count members =
    match List.find_opt (fun (m, _) -> m == members) !memo with
    | Some (_, c) -> c
    | None ->
        let c = Pid.Set.cardinal (Pid.Set.inter members q) in
        memo := (members, c) :: !memo;
        c
  in
  fun sys i ->
    match slices_of sys i with
    | Slice.Threshold { members; threshold } ->
        threshold <= Pid.Set.cardinal members
        && inter_count members >= threshold
    | s -> Slice.has_slice_within s q

let is_quorum sys q =
  (not (Pid.Set.is_empty q))
  &&
  let ok = member_ok_cached q sys in
  Pid.Set.for_all (fun i -> ok i) q

let is_quorum_of sys i q = Pid.Set.mem i q && is_quorum sys q

let greatest_quorum_within sys set =
  (* Discard members with no slice inside the current candidate until a
     fixpoint. Since the union of two quorums is a quorum, the fixpoint
     is the union of all quorums within [set]. *)
  let rec go cur =
    let ok = member_ok_cached cur sys in
    let keep = Pid.Set.filter (fun i -> ok i) cur in
    if Pid.Set.equal keep cur then cur else go keep
  in
  go set

let contains_quorum sys set =
  not (Pid.Set.is_empty (greatest_quorum_within sys set))

let subsets_fold f universe acc =
  let elts = Array.of_list (Pid.Set.elements universe) in
  let n = Array.length elts in
  if n > 20 then
    invalid_arg "Quorum.enum_quorums: universe larger than 20 processes";
  let acc = ref acc in
  for mask = 1 to (1 lsl n) - 1 do
    let s = ref Pid.Set.empty in
    for b = 0 to n - 1 do
      if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
    done;
    acc := f !s !acc
  done;
  !acc

let enum_quorums ?universe sys =
  let universe = Option.value ~default:(participants sys) universe in
  subsets_fold
    (fun s acc -> if is_quorum sys s then s :: acc else acc)
    universe []

let keep_minimal quorums =
  List.filter
    (fun q ->
      not
        (List.exists
           (fun q' -> (not (Pid.Set.equal q q')) && Pid.Set.subset q' q)
           quorums))
    quorums

let minimal_quorums ?universe sys = keep_minimal (enum_quorums ?universe sys)

let minimal_quorums_of ?universe sys i =
  let quorums_of_i =
    List.filter (Pid.Set.mem i) (enum_quorums ?universe sys)
  in
  keep_minimal quorums_of_i

let is_v_blocking sys i b =
  match slices_of sys i with
  | Slice.Explicit [] -> false
  | s when Slice.slice_count s = 0 -> false
  | s -> Slice.all_slices_intersect s b
