open Graphkit

let delete = Quorum.delete

(* Mazières' definition: V \ B must be a quorum of the ORIGINAL system
   (or B covers everything) — availability is judged before deletion,
   intersection after. *)
let quorum_availability_despite sys b =
  let survivors = Pid.Set.diff (Quorum.participants sys) b in
  Pid.Set.is_empty survivors || Quorum.is_quorum sys survivors

(* Gosper's hack: the next bitmask with the same popcount, in
   increasing numeric order. *)
let next_same_popcount c =
  let lo = c land -c in
  let ripple = c + lo in
  ripple lor (((c lxor ripple) lsr 2) / lo)

(* Intersection despite [b] fails iff the deleted system has two
   disjoint quorums, and any such pair can be shrunk to two disjoint
   {e minimal} quorums. So instead of enumerating all [2^n] subsets and
   testing every pair (the seed path — the [dset/is_dset n=10] outlier
   in BENCH_quorum.json), enumerate candidate sets by increasing
   cardinality with two prunings:

   - supersets of an already-found quorum are skipped by a constant-time
     mask test (they cannot be minimal);
   - once the smallest quorum size [kmin] is known, no minimal quorum
     larger than [n - kmin] can have a disjoint partner, so enumeration
     stops at that cardinality — for well-connected systems this exits
     almost immediately after the first quorum is found.

   Each minimal quorum [q] is checked on the spot: a disjoint partner
   exists iff the complement of [q] still contains a quorum. Kept as
   the reference implementation; the production path below delegates
   to [Enum]'s branch-and-bound, which drops the 20-participant guard
   (equivalence is property-tested in test/test_enum.ml). *)
let quorum_intersection_despite_baseline sys b =
  let deleted = delete sys b in
  let parts = Quorum.participants deleted in
  let elts = Array.of_list (Pid.Set.elements parts) in
  let n = Array.length elts in
  if n > 20 then invalid_arg "Dset: more than 20 participants";
  if n = 0 then true
  else begin
    let compiled = Quorum.compile deleted in
    let set_of_mask mask =
      let s = ref Pid.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then s := Pid.Set.add elts.(i) !s
      done;
      !s
    in
    let minimal_masks = ref [] in
    let smallest_quorum = ref max_int in
    let violated = ref false in
    let k = ref 1 in
    while
      (not !violated)
      && !k <= n
      && (!smallest_quorum = max_int || !k <= n - !smallest_quorum)
    do
      let mask = ref ((1 lsl !k) - 1) in
      let limit = 1 lsl n in
      while (not !violated) && !mask < limit do
        let m = !mask in
        if
          (not (List.exists (fun q -> m land q = q) !minimal_masks))
          &&
          let s = set_of_mask m in
          Quorum.Compiled.is_quorum compiled s
        then begin
          minimal_masks := m :: !minimal_masks;
          if !smallest_quorum = max_int then smallest_quorum := !k;
          if
            Quorum.Compiled.contains_quorum compiled
              (Pid.Set.diff parts (set_of_mask m))
          then violated := true
        end;
        mask := next_same_popcount m
      done;
      incr k
    done;
    not !violated
  end

let quorum_intersection_despite sys b = Enum.quorum_intersection_despite sys b

(* [b] may name nodes outside the slice map (e.g. Byzantine processes
   that declared nothing): they belong to no quorum, so deleting them
   only prunes them out of others' slices. *)
let is_dset sys b =
  quorum_availability_despite sys b && quorum_intersection_despite sys b

let subsets_of set =
  let elts = Array.of_list (Pid.Set.elements set) in
  let n = Array.length elts in
  if n > 20 then invalid_arg "Dset: more than 20 participants";
  List.init (1 lsl n) (fun mask ->
      let s = ref Pid.Set.empty in
      for b = 0 to n - 1 do
        if mask land (1 lsl b) <> 0 then s := Pid.Set.add elts.(b) !s
      done;
      !s)

let all_dsets ?(extra = Pid.Set.empty) sys =
  List.filter (is_dset sys)
    (subsets_of (Pid.Set.union (Quorum.participants sys) extra))

let minimal_dsets sys =
  let dsets = all_dsets sys in
  List.filter
    (fun d ->
      not
        (List.exists
           (fun d' -> (not (Pid.Set.equal d d')) && Pid.Set.subset d' d)
           dsets))
    dsets

let intact sys ~faulty =
  let dsets = all_dsets ~extra:faulty sys in
  Pid.Set.filter
    (fun v ->
      List.exists
        (fun d -> Pid.Set.subset faulty d && not (Pid.Set.mem v d))
        dsets)
    (Quorum.participants sys)

let befouled sys ~faulty =
  Pid.Set.diff (Quorum.participants sys) (intact sys ~faulty)
