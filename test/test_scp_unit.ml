open Scp

let v = Value.of_ints

let test_value_ops () =
  Alcotest.(check bool) "combine unions" true
    (Value.equal (v [ 1; 2; 3 ]) (Value.combine [ v [ 1 ]; v [ 2; 3 ] ]));
  Alcotest.(check bool) "combine empty" true
    (Value.equal Value.empty (Value.combine []));
  Alcotest.(check bool) "order by cardinality first" true
    (Value.compare (v [ 9 ]) (v [ 1; 2 ]) < 0);
  Alcotest.(check bool) "lexicographic tie-break" true
    (Value.compare (v [ 1; 3 ]) (v [ 1; 4 ]) <> 0)

let test_ballot_order () =
  let b1 = Ballot.make 1 (v [ 1 ]) in
  let b2 = Ballot.make 2 (v [ 1 ]) in
  let b1' = Ballot.make 1 (v [ 2 ]) in
  Alcotest.(check bool) "counter dominates" true (Ballot.compare b1 b2 < 0);
  Alcotest.(check bool) "compatible same value" true (Ballot.compatible b1 b2);
  Alcotest.(check bool) "incompatible different value" false
    (Ballot.compatible b1 b1');
  Alcotest.(check bool) "abort relation" true
    (Ballot.less_and_incompatible b1 (Ballot.make 2 (v [ 2 ])));
  Alcotest.(check bool) "no abort when compatible" false
    (Ballot.less_and_incompatible b1 b2)

let test_statement_implication () =
  let b = Ballot.make 3 (v [ 7 ]) in
  match Statement.implied (Statement.Commit b) with
  | [ Statement.Prepare b' ] ->
      Alcotest.(check bool) "commit implies prepare of same ballot" true
        (Ballot.equal b b')
  | _ -> Alcotest.fail "commit must imply exactly its prepare"

(* Federated voting over a 3-of-4 threshold system. *)
let threshold_system n t =
  let members = Graphkit.Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Graphkit.Pid.Set.elements members))

let test_fv_accept_via_quorum () =
  let sys = threshold_system 4 3 in
  let fv = Fvoting.create ~self:1 ~system:(fun () -> sys) () in
  let stmt = Statement.Nominate (v [ 5 ]) in
  Alcotest.(check bool) "nothing yet" false (Fvoting.can_accept fv stmt);
  Fvoting.record_vote fv stmt 1;
  Fvoting.record_vote fv stmt 2;
  Alcotest.(check bool) "2 of 4 votes insufficient" false
    (Fvoting.can_accept fv stmt);
  Fvoting.record_vote fv stmt 3;
  Alcotest.(check bool) "3 of 4 votes suffice" true
    (Fvoting.can_accept fv stmt)

let test_fv_accept_requires_own_membership () =
  let sys = threshold_system 4 3 in
  let fv = Fvoting.create ~self:1 ~system:(fun () -> sys) () in
  let stmt = Statement.Nominate (v [ 5 ]) in
  (* A quorum that does not include node 1 does not let 1 accept via
     the quorum arm. *)
  Fvoting.record_vote fv stmt 2;
  Fvoting.record_vote fv stmt 3;
  Fvoting.record_vote fv stmt 4;
  Alcotest.(check bool) "quorum arm requires own vote" false
    (Fvoting.quorum_votes fv stmt)

let test_fv_accept_via_blocking () =
  let sys = threshold_system 4 3 in
  let fv = Fvoting.create ~self:1 ~system:(fun () -> sys) () in
  let stmt = Statement.Nominate (v [ 5 ]) in
  (* v-blocking for threshold 3-of-4: leave fewer than 3 slots, i.e.
     any 2 of the other members. *)
  Fvoting.record_accept fv stmt 2;
  Alcotest.(check bool) "one acceptor not blocking" false
    (Fvoting.blocking_accepts fv stmt);
  Fvoting.record_accept fv stmt 3;
  Alcotest.(check bool) "two acceptors blocking" true
    (Fvoting.blocking_accepts fv stmt);
  Alcotest.(check bool) "accept now possible without own vote" true
    (Fvoting.can_accept fv stmt)

let test_fv_confirm () =
  let sys = threshold_system 4 3 in
  let fv = Fvoting.create ~self:1 ~system:(fun () -> sys) () in
  let stmt = Statement.Nominate (v [ 5 ]) in
  Fvoting.record_accept fv stmt 1;
  Fvoting.record_accept fv stmt 2;
  Alcotest.(check bool) "2 acceptors no confirm" false
    (Fvoting.can_confirm fv stmt);
  Fvoting.record_accept fv stmt 3;
  Alcotest.(check bool) "3 acceptors confirm" true
    (Fvoting.can_confirm fv stmt)

let test_fv_commit_implies_prepare_tally () =
  let sys = threshold_system 4 3 in
  let fv = Fvoting.create ~self:1 ~system:(fun () -> sys) () in
  let b = Ballot.make 1 (v [ 5 ]) in
  Fvoting.record_vote fv (Statement.Commit b) 2;
  let tl = Fvoting.tally fv (Statement.Prepare b) in
  Alcotest.(check bool) "commit vote counted for prepare" true
    (Graphkit.Pid.Set.mem 2 tl.voters)

let suites =
  [
    ( "scp_unit",
      [
        Alcotest.test_case "value operations" `Quick test_value_ops;
        Alcotest.test_case "ballot order" `Quick test_ballot_order;
        Alcotest.test_case "statement implication" `Quick
          test_statement_implication;
        Alcotest.test_case "FV accept via quorum" `Quick
          test_fv_accept_via_quorum;
        Alcotest.test_case "FV quorum arm needs own vote" `Quick
          test_fv_accept_requires_own_membership;
        Alcotest.test_case "FV accept via v-blocking" `Quick
          test_fv_accept_via_blocking;
        Alcotest.test_case "FV confirm" `Quick test_fv_confirm;
        Alcotest.test_case "FV commit implies prepare" `Quick
          test_fv_commit_implies_prepare_tally;
      ] );
  ]
