exception Job_failed = Pool.Job_failed

type backend = Domains | Fork | Sequential

let domains_available = Exec_domains.available
let fork_available = Pool.has_fork

let backend_name = function
  | Domains -> "domains"
  | Fork -> "fork"
  | Sequential -> "sequential"

let backend ~jobs n =
  if jobs <= 1 || n <= 1 then Sequential
  else if domains_available then Domains
  else if fork_available then Fork
  else Sequential

let run_in_parallel ~jobs n =
  match backend ~jobs n with Sequential -> false | Domains | Fork -> true

(* Shared mutable state reachable from jobs (the Core.Cache handle
   memos and the lazy analysis fields inside compiled handles) is
   written with idempotent, input-determined values, so racing on it
   is output-deterministic; but the cache's entry-list/length pair
   should still move atomically. The executor arms Core.Cache's
   critical-section hook with the backend's lock the first time the
   domain backend engages. The actual Mutex lives in
   exec_domains_native.ml — stdlib on OCaml 5, a separate threads
   library on 4.14, so this module never names it and no protocol or
   analysis code ever touches locking directly. *)
let arm_cache_protector =
  lazy
    (Core.Cache.set_protector { Core.Cache.protect = Exec_domains.locked })

(* Chunks amortize dispatch overhead for many tiny jobs but cost load
   balance for few heavy ones; experiment sweeps are firmly in the
   second camp (tens of multi-millisecond simulations), so the default
   only rises above 1 once there are dozens of jobs per worker. *)
let default_chunk ~jobs n = max 1 (min 1024 (n / (jobs * 32)))

let map_domains ~chunk ~jobs f xs =
  Lazy.force arm_cache_protector;
  let input = Array.of_list xs in
  let n = Array.length input in
  let slots = Array.make n None in
  (* Each job writes its own slot: disjoint indices, no serialization,
     results stay on the shared heap. *)
  let do_job i = slots.(i) <- Some (f input.(i)) in
  let failures =
    Exec_domains.map_chunked ~chunk ~domains:(min jobs n) do_job n
  in
  match List.sort (fun (i, _) (j, _) -> Int.compare i j) failures with
  | (_, msg) :: _ -> raise (Job_failed msg)
  | [] ->
      Array.to_list
        (Array.map
           (function
             | Some y -> y | None -> raise (Job_failed "missing result"))
           slots)

let map ?backend:forced ?chunk ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else
    let chosen =
      match forced with Some b -> b | None -> backend ~jobs n
    in
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk ~jobs n
    in
    match chosen with
    | Sequential -> List.map f xs
    | Domains ->
        if not domains_available then
          invalid_arg "Simkit.Exec.map: domain backend unavailable";
        map_domains ~chunk ~jobs f xs
    | Fork ->
        if not fork_available then
          invalid_arg "Simkit.Exec.map: fork backend unavailable";
        Pool.map_chunked ~chunk ~workers:(min jobs n) f xs
