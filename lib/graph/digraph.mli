(** Directed graphs over process identities.

    The knowledge-connectivity graph of the CUP model (Definition 5 of the
    paper) is a directed graph whose vertices are processes and whose edge
    [(i, j)] means "process [i] initially knows process [j]". This module
    provides the purely functional graph representation shared by every
    analysis in the repository. *)

type t
(** A finite directed graph. Vertices may be isolated. *)

val empty : t

val add_vertex : Pid.t -> t -> t

val add_edge : Pid.t -> Pid.t -> t -> t
(** [add_edge i j g] adds the edge [i -> j], implicitly adding both
    endpoints as vertices. Self-loops are permitted but ignored by most
    analyses. *)

val remove_vertex : Pid.t -> t -> t
(** Removes the vertex and every edge incident to it. *)

val remove_vertices : Pid.Set.t -> t -> t

val of_edges : (Pid.t * Pid.t) list -> t

val of_adjacency : (Pid.t * Pid.t list) list -> t
(** [of_adjacency [(i, succs); ...]] builds the graph in which each [i]
    has exactly the listed successors. *)

val vertices : t -> Pid.Set.t

val n_vertices : t -> int

val n_edges : t -> int

val mem_vertex : Pid.t -> t -> bool

val mem_edge : Pid.t -> Pid.t -> t -> bool

val succs : t -> Pid.t -> Pid.Set.t
(** Out-neighbours; empty set if the vertex is absent. *)

val preds : t -> Pid.t -> Pid.Set.t
(** In-neighbours; empty set if the vertex is absent. *)

val edges : t -> (Pid.t * Pid.t) list

val fold_vertices : (Pid.t -> 'a -> 'a) -> t -> 'a -> 'a

val fold_edges : (Pid.t -> Pid.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter_succs : (Pid.t -> Pid.Set.t -> unit) -> t -> unit
(** Visits every vertex with its successor set, in ascending vertex
    order, without the per-vertex lookup cost of {!succs}. This is the
    traversal the {!Csr} compiler is built on. *)

val subgraph : Pid.Set.t -> t -> t
(** [subgraph vs g] is the subgraph induced by the vertices [vs]. *)

val transpose : t -> t
(** Reverses every edge. *)

val undirected : t -> t
(** Symmetric closure: the undirected graph [G] obtained from [G_di] in
    the paper, represented as a digraph with both edge directions. *)

val union : t -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
