open Graphkit
open Stellar_cup

let own_value i = Scp.Value.of_ints [ i ]

let ok name (v : Pipeline.verdict) =
  Alcotest.(check bool) (name ^ ": all decided") true v.all_decided;
  Alcotest.(check bool) (name ^ ": agreement") true v.agreement;
  Alcotest.(check bool) (name ^ ": validity") true v.validity

let test_scp_sd_on_fig2 () =
  let v =
    Pipeline.scp_with_sink_detector ~graph:Builtin.fig2 ~f:1
      ~faulty:(Pid.Set.singleton 3) ~initial_value_of:own_value ()
  in
  ok "scp+sd fig2" v;
  Alcotest.(check int) "six deciders" 6 v.deciders;
  Alcotest.(check bool) "paid a discovery phase" true (v.discovery_msgs > 0)

let test_bftcup_on_fig2 () =
  let v =
    Pipeline.bftcup ~graph:Builtin.fig2 ~f:1 ~faulty:(Pid.Set.singleton 3)
      ~initial_value_of:own_value ()
  in
  ok "bftcup fig2" v

let test_scp_local_violation_vs_benign () =
  let g = Generators.fig2_family ~sink_size:4 ~non_sink:3 in
  let sink_side i = i < 4 in
  let adversarial =
    Simkit.Delay.targeted ~gst:50_000 ~delta:5 ~seed:3 ~slow:(fun a b ->
        sink_side a <> sink_side b)
  in
  let value_of i = Scp.Value.of_ints [ (if sink_side i then 1 else 2) ] in
  let cfg =
    {
      Simkit.Run_config.default with
      max_time = 120_000;
      delay = Some adversarial;
    }
  in
  let v =
    Pipeline.scp_with_local_slices ~cfg ~graph:g ~f:1 ~faulty:Pid.Set.empty
      ~initial_value_of:value_of ()
  in
  Alcotest.(check bool) "local slices + adversary: decided" true v.all_decided;
  Alcotest.(check bool) "local slices + adversary: agreement broken" false
    v.agreement

let test_nonsink_threshold_ablation () =
  (* Larger non-sink slices (2f+1 instead of f+1) remain safe; they are
     simply more demanding. *)
  let v =
    Pipeline.scp_with_sink_detector ~graph:Builtin.fig2 ~f:1
      ~nonsink_threshold:3 ~faulty:Pid.Set.empty ~initial_value_of:own_value
      ()
  in
  ok "non-sink threshold 2f+1" v

let test_verdict_shape () =
  let v =
    Pipeline.scp_with_local_slices ~graph:Builtin.fig2 ~f:1
      ~faulty:Pid.Set.empty ~initial_value_of:own_value ()
  in
  Alcotest.(check int) "no discovery phase for local slices" 0
    v.discovery_msgs;
  Alcotest.(check bool) "consensus messages counted" true
    (v.consensus_msgs > 0)

let prop_pipelines_agree_across_seeds =
  QCheck.Test.make ~count:5
    ~name:"scp+sd and bftcup both solve random instances"
    QCheck.(int_bound 50)
    (fun seed ->
      let f = 1 in
      let g, _ =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:2 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let cfg = Simkit.Run_config.with_seed seed Simkit.Run_config.default in
      let a =
        Pipeline.scp_with_sink_detector ~cfg ~graph:g ~f ~faulty
          ~initial_value_of:own_value ()
      in
      let b =
        Pipeline.bftcup ~cfg ~graph:g ~f ~faulty ~initial_value_of:own_value ()
      in
      a.all_decided && a.agreement && b.all_decided && b.agreement)

let suites =
  [
    ( "pipeline",
      [
        Alcotest.test_case "scp+sd on fig2" `Quick test_scp_sd_on_fig2;
        Alcotest.test_case "bftcup on fig2" `Quick test_bftcup_on_fig2;
        Alcotest.test_case "scp-local: adversarial vs benign" `Quick
          test_scp_local_violation_vs_benign;
        Alcotest.test_case "non-sink threshold ablation" `Quick
          test_nonsink_threshold_ablation;
        Alcotest.test_case "verdict bookkeeping" `Quick test_verdict_shape;
        QCheck_alcotest.to_alcotest prop_pipelines_agree_across_seeds;
      ] );
  ]
