lib/scp/runner.mli: Fbqs Format Graphkit Node Pid Simkit Statement Value
