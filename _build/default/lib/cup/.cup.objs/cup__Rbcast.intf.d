lib/cup/rbcast.mli: Graphkit Msg Pid
