(** A metrics registry: named counters, gauges and histograms, each
    optionally carrying a label set.

    Registration is idempotent — asking twice for the same
    (name, labels) pair returns the same underlying metric — so
    instrumented subsystems can look their metrics up at event time
    without threading handles around. All values are integers (event
    counts, queue depths, logical durations): the registry never holds
    wall-clock readings, keeping every dump byte-deterministic for a
    fixed simulation seed.

    A registry is single-domain mutable state, like the simulator it
    observes; share one registry per run. *)

type t
(** The registry. *)

val create : unit -> t

type counter
(** Monotonically increasing integer. *)

type gauge
(** Last-written integer value, plus the maximum ever written. *)

type histogram
(** Bucketed integer distribution (cumulative bucket counts, sum,
    count), Prometheus-style. *)

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Registers (or finds) a counter.
    @raise Invalid_argument if the name+labels pair is already
    registered as a different metric kind. *)

val incr : ?by:int -> counter -> unit
(** Adds [by] (default 1); negative increments are rejected.
    @raise Invalid_argument on [by < 0]. *)

val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

val gauge_max : gauge -> int
(** The high-water mark across all {!set_gauge} calls (0 if never
    set). *)

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:int list -> string ->
  histogram
(** [buckets] are the upper bounds of the cumulative buckets (an
    implicit [+Inf] bucket is always appended). Default bounds:
    [1; 2; 5; 10; 20; 50; 100; 200; 500; 1000]. *)

val observe : histogram -> int -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> int

val to_json : t -> Json.t
(** All metrics, sorted by (name, labels) — deterministic regardless of
    registration order. Shape:
    [{"metrics": [{"name": .., "labels": {..}, "kind": ..,  ..}, ..]}] *)

val pp : Format.formatter -> t -> unit
(** Human-readable table, one metric per line, same ordering as
    {!to_json}. *)
