type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable high_water : int;
}

let create () = { data = [||]; size = 0; next_seq = 0; high_water = 0 }
let is_empty q = q.size = 0
let length q = q.size

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.data.(i) q.data.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && lt q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.size && lt q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.data then begin
    let cap = max 16 (2 * Array.length q.data) in
    let data = Array.make cap entry in
    Array.blit q.data 0 data 0 q.size;
    q.data <- data
  end;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  if q.size > q.high_water then q.high_water <- q.size;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.data.(0).time
let high_water q = q.high_water
