open Parsetree

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

type report = { active : finding list; suppressed : finding list }

let to_string f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let baseline_key f = Printf.sprintf "%s [%s]" f.file f.rule

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Path scoping                                                       *)
(* ------------------------------------------------------------------ *)

let in_bench rel = String.starts_with ~prefix:"bench/" rel
let in_obs rel = String.starts_with ~prefix:"lib/obs/" rel

(* The executor library (Simkit.Exec and its Simkit.Pool fork backend)
   is the one sanctioned Marshal user (worker IPC). *)
let marshal_home rel =
  String.equal rel "lib/sim/pool.ml" || String.equal rel "lib/sim/exec.ml"

(* Shared-memory parallelism primitives (domain spawning, locks) stay
   behind the Simkit.Exec seam: everything under lib/sim/ may use
   them, nothing else may. *)
let exec_home rel = String.starts_with ~prefix:"lib/sim/" rel

let parallelism_path comps =
  match comps with
  | "Mutex" :: _
  | "Stdlib" :: "Mutex" :: _
  | "Condition" :: _
  | "Stdlib" :: "Condition" :: _ ->
      true
  | ("Domain" :: _ | "Stdlib" :: "Domain" :: _) -> (
      (* Only [spawn] — introspection like
         [Domain.recommended_domain_count] is harmless anywhere. *)
      match List.rev comps with "spawn" :: _ -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let is_rule_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let allowed_rules_of_line line =
  match find_substring line "lint: allow" with
  | None -> []
  | Some i ->
      let n = String.length line in
      let rec tokens i acc =
        let rec skip i =
          if i < n && (line.[i] = ' ' || line.[i] = ',') then skip (i + 1)
          else i
        in
        let i = skip i in
        let rec stop j =
          if j < n && is_rule_char line.[j] then stop (j + 1) else j
        in
        let j = stop i in
        if j > i then tokens j (String.sub line i (j - i) :: acc)
        else List.rev acc
      in
      tokens (i + String.length "lint: allow") []

(* line number (1-based) -> rules allowed on that line *)
let allows_of_text text =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match allowed_rules_of_line line with
      | [] -> ()
      | rules -> Hashtbl.replace tbl (i + 1) rules)
    (String.split_on_char '\n' text);
  tbl

let is_allowed allows f =
  let at line =
    match Hashtbl.find_opt allows line with
    | Some rules -> List.mem f.rule rules
    | None -> false
  in
  at f.line || at (f.line - 1)

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                  *)
(* ------------------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with _ -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with [] -> None | comps -> Some comps)
  | _ -> None

let last_two comps =
  match List.rev comps with
  | last :: prev :: _ -> Some (prev, last)
  | [ last ] -> Some ("", last)
  | [] -> None

(* An "ordering step": a sort, or a conversion through an ordered
   [Set]/[Map] submodule (e.g. folding into [Pid.Map.add]). *)
let is_sort_fn = function
  | ( ("List" | "ListLabels" | "Array" | "ArrayLabels"),
      ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ) ->
      true
  | _ -> false

let is_ordering_path comps =
  List.exists (fun c -> String.equal c "Set" || String.equal c "Map") comps
  || match last_two comps with Some p -> is_sort_fn p | None -> false

let is_hashtbl_enum comps =
  match last_two comps with
  | Some ("Hashtbl", ("iter" | "fold")) -> true
  | _ -> false

let entropy_path comps =
  match last_two comps with
  | Some ("Random", ("self_init" | "make_self_init"))
  | Some ("State", "make_self_init")
  | Some ("Unix", ("gettimeofday" | "time"))
  | Some ("Sys", "time") ->
      true
  | _ -> false

let marshal_or_obj comps =
  match comps with
  | "Marshal" :: _ | "Stdlib" :: "Marshal" :: _ -> Some `Marshal
  | "Obj" :: _ | "Stdlib" :: "Obj" :: _ -> Some `Obj
  | _ -> None

let poly_compare_head comps =
  match comps with
  | [ ("=" | "<>" | "compare") ] | [ "Stdlib"; ("=" | "<>" | "compare") ] ->
      true
  | _ -> (
      match last_two comps with
      | Some ("Hashtbl", "hash") -> true
      | _ -> false)

(* D3 looks only at each argument's head: a value built by a container
   constructor (or annotated with a container type) is sensitive, while
   scalar accessors are not — [n = Pid.Set.cardinal s] is a plain int
   comparison even though a set appears in the subtree. *)
let container_module c =
  String.equal c "Set" || String.equal c "Map" || String.equal c "Slice"

let container_ctor = function
  | "empty" | "singleton" | "add" | "remove" | "union" | "inter" | "diff"
  | "of_list" | "of_set" | "of_range" | "of_ints" | "filter" | "map" | "mapi"
  | "keys" | "update" | "threshold" | "explicit" ->
      true
  | _ -> false

let sensitive_value_path comps =
  List.exists container_module comps
  && match List.rev comps with last :: _ -> container_ctor last | [] -> false

let sensitive_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> List.exists container_module (flatten txt)
  | _ -> false

let rec sensitive_arg a =
  match a.pexp_desc with
  | Pexp_constraint (e, ty) -> sensitive_type ty || sensitive_arg e
  | Pexp_apply (h, _) -> (
      match ident_path h with
      | Some comps -> sensitive_value_path comps
      | None -> false)
  | Pexp_ident { txt; _ } -> sensitive_value_path (flatten txt)
  | _ -> false

let is_format_family comps =
  List.exists (fun c -> String.equal c "Printf" || String.equal c "Format") comps

(* Does a printf-style literal contain a float conversion (%f %e %g %h
   and friends)? Width/precision/flags are skipped; [%%] never
   matches. *)
let has_float_conversion s =
  let n = String.length s in
  let rec conv j =
    if j >= n then false
    else
      match s.[j] with
      | 'f' | 'F' | 'e' | 'E' | 'g' | 'G' | 'h' | 'H' -> true
      | '0' .. '9' | '.' | '-' | '+' | ' ' | '#' | '*' -> conv (j + 1)
      | _ -> false
  in
  let rec go i =
    if i >= n - 1 then false
    else if s.[i] = '%' then conv (i + 1) || go (i + 1)
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Expression-level rules                                             *)
(* ------------------------------------------------------------------ *)

let loc_pos loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Every ident path (and type-constructor path, for [(e : Pid.Set.t)]
   constraints) mentioned anywhere inside [e]. *)
let subtree_paths e =
  let acc = ref [] in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match flatten txt with [] -> () | comps -> acc := comps :: !acc)
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let typ it ty =
    (match ty.ptyp_desc with
    | Ptyp_constr ({ txt; _ }, _) -> (
        match flatten txt with [] -> () | comps -> acc := comps :: !acc)
    | _ -> ());
    Ast_iterator.default_iterator.typ it ty
  in
  let it = { Ast_iterator.default_iterator with expr; typ } in
  it.expr it e;
  !acc

let run_expr_rules ~rel structure =
  let findings = ref [] in
  let add loc rule message =
    let line, col = loc_pos loc in
    findings := { file = rel; line; col; rule; message } :: !findings
  in
  (* Depth of enclosing applications whose head is an ordering step:
     inside [List.sort cmp (Hashtbl.fold ...)] the fold is fine. *)
  let ordered_depth = ref 0 in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident _ -> (
        match ident_path e with
        | None -> ()
        | Some comps ->
            if entropy_path comps && not (in_bench rel) then
              add e.pexp_loc "D2"
                (Printf.sprintf
                   "%s: wall-clock/ambient entropy is banned outside bench/ \
                    (thread the seed through Run_config instead)"
                   (String.concat "." comps));
            (match marshal_or_obj comps with
            | Some `Marshal when not (marshal_home rel) ->
                add e.pexp_loc "D4"
                  "Marshal is confined to the executor library (Simkit.Exec / \
                   Simkit.Pool)"
            | Some `Obj ->
                add e.pexp_loc "D4" "Obj.* breaks abstraction and is banned"
            | Some `Marshal | None -> ());
            if parallelism_path comps && not (exec_home rel) then
              add e.pexp_loc "D6"
                (Printf.sprintf
                   "%s: shared-memory parallelism (Domain.spawn, Mutex, \
                    Condition) is confined to lib/sim; go through Simkit.Exec"
                   (String.concat "." comps)))
    | Pexp_apply (f, args) ->
        (match ident_path f with
        | Some comps when is_hashtbl_enum comps ->
            if
              !ordered_depth = 0
              && not (List.exists is_ordering_path (subtree_paths e))
            then
              add f.pexp_loc "D1"
                "Hashtbl enumeration order escapes; sort or convert via \
                 Set/Map in the same expression, or add (* lint: allow D1 — \
                 reason *)"
        | _ -> ());
        (match ident_path f with
        | Some comps when poly_compare_head comps ->
            if List.exists (fun (_, a) -> sensitive_arg a) args then
              add f.pexp_loc "D3"
                "polymorphic compare/(=)/hash on Pid.Set/Pid.Map/Slice \
                 values; use the typed comparators"
        | _ -> ());
        if in_obs rel then (
          match ident_path f with
          | Some comps when is_format_family comps ->
              List.iter
                (fun (_, a) ->
                  match a.pexp_desc with
                  | Pexp_constant (Pconst_string (s, _, _))
                    when has_float_conversion s ->
                      add a.pexp_loc "D5"
                        "float format in a lib/obs render path; floats must \
                         go through the Obs.Json encoder"
                  | _ -> ())
                args
          | _ -> ())
    | _ -> ());
    let entered =
      match e.pexp_desc with
      | Pexp_apply (f, _) -> (
          match ident_path f with
          | Some comps -> is_ordering_path comps
          | None -> false)
      | _ -> false
    in
    if entered then incr ordered_depth;
    Ast_iterator.default_iterator.expr it e;
    if entered then decr ordered_depth
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_source ~rel path =
  let parsed =
    try
      if Filename.check_suffix path ".mli" then begin
        ignore (Pparse.parse_interface ~tool_name:"stellar-lint" path);
        Ok None
      end
      else Ok (Some (Pparse.parse_implementation ~tool_name:"stellar-lint" path))
    with exn -> Error (Printexc.to_string exn)
  in
  match parsed with
  | Error msg ->
      {
        active =
          [ { file = rel; line = 1; col = 0; rule = "PARSE"; message = msg } ];
        suppressed = [];
      }
  | Ok None -> { active = []; suppressed = [] }
  | Ok (Some structure) ->
      let found = run_expr_rules ~rel structure in
      let allows = allows_of_text (read_file path) in
      let suppressed, active = List.partition (is_allowed allows) found in
      {
        active = List.sort compare_finding active;
        suppressed = List.sort compare_finding suppressed;
      }

let rule_m1 ~ml_files ~mli_files =
  ml_files
  |> List.filter (fun f ->
         String.starts_with ~prefix:"lib/" f
         && Filename.check_suffix f ".ml"
         && not (List.mem (f ^ "i") mli_files))
  |> List.map (fun f ->
         {
           file = f;
           line = 1;
           col = 0;
           rule = "M1";
           message = "lib/ module has no .mli; every lib interface is explicit";
         })
  |> List.sort compare_finding
