(** The sink detector as a pure oracle (Definition 8).

    [get_sink] must return [(true, V_sink)] to sink members and
    [(false, V)] with [V ⊆ V_sink] containing at least [f + 1] correct
    sink members to non-sink members. This module computes those answers
    directly from the global knowledge graph; the distributed
    implementation (Algorithm 3) lives in {!Sink_protocol} and is
    checked against this oracle in the test suite.

    Sink detection runs on the compiled CSR graph kernel
    ({!Graphkit.Csr}): the SCC partition and condensation are computed
    once per graph value and memoized, so per-process oracle queries
    against the same graph are cache hits. *)

open Graphkit

type answer = { in_sink : bool; view : Pid.Set.t }

val get_sink : Digraph.t -> Pid.t -> answer
(** The canonical oracle: returns the full [V_sink] to every process.
    @raise Invalid_argument when the graph has no unique sink
    component (the k-OSR precondition fails). *)

val shared : Digraph.t -> Pid.t -> answer
(** [shared g] is observationally {!get_sink}[ g], but condenses the
    graph once at partial application and hands every caller the same
    physical [view] set — so downstream consumers (Algorithm 2, the
    quorum compiler) can share per-view work across all processes.
    @raise Invalid_argument like {!get_sink}, at partial application. *)

val get_sink_restricted :
  seed:int -> f:int -> correct:Pid.Set.t -> Digraph.t -> Pid.t -> answer
(** A worst-case-legal oracle used for ablations: sink members still get
    the full [V_sink], but a non-sink member receives only a minimal
    view of [f + 1] correct sink members plus up to [f] faulty ones —
    the weakest answer Definition 8 permits. Deterministic in [seed] and
    the queried process. *)
