open Graphkit

type kind = Vote | Accept

type t = {
  origin : Pid.t;
  kind : kind;
  stmt : Statement.t;
  slices : Fbqs.Slice.t;
}

let vote origin ~slices stmt = { origin; kind = Vote; stmt; slices }
let accept origin ~slices stmt = { origin; kind = Accept; stmt; slices }

let kind_tag = function Vote -> 0 | Accept -> 1

(* A canonical total order on slice declarations (Set.compare is
   representation-independent, unlike polymorphic compare). *)
let compare_slices a b =
  match (a, b) with
  | ( Fbqs.Slice.Threshold { members = m1; threshold = t1 },
      Fbqs.Slice.Threshold { members = m2; threshold = t2 } ) -> (
      match Int.compare t1 t2 with 0 -> Pid.Set.compare m1 m2 | c -> c)
  | Fbqs.Slice.Explicit l1, Fbqs.Slice.Explicit l2 ->
      List.compare Pid.Set.compare l1 l2
  | Fbqs.Slice.Threshold _, Fbqs.Slice.Explicit _ -> -1
  | Fbqs.Slice.Explicit _, Fbqs.Slice.Threshold _ -> 1

let compare a b =
  match Pid.compare a.origin b.origin with
  | 0 -> (
      match Int.compare (kind_tag a.kind) (kind_tag b.kind) with
      | 0 -> (
          match Statement.compare a.stmt b.stmt with
          | 0 -> compare_slices a.slices b.slices
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf m =
  Format.fprintf ppf "%s(%d, %a)"
    (match m.kind with Vote -> "vote" | Accept -> "accept")
    m.origin Statement.pp m.stmt

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
