open Stellar_cup

(* naive substring search, sufficient for assertions *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let sample =
  Report.make ~id:"T" ~title:"demo"
    ~header:[ "col"; "longer column" ]
    ~notes:[ "a note" ]
    [ [ "a"; "b" ]; [ "wide cell"; "c" ] ]

let test_plain_rendering () =
  let s = Format.asprintf "%a" Report.pp sample in
  Alcotest.(check bool) "title present" true (contains s "== T: demo ==");
  Alcotest.(check bool) "header present" true (contains s "longer column");
  Alcotest.(check bool) "note present" true (contains s "note: a note");
  Alcotest.(check bool) "cells present" true (contains s "wide cell")

let test_alignment () =
  let s = Format.asprintf "%a" Report.pp sample in
  (* the header line pads "col" to the width of "wide cell": the
     two-space gap must start at a consistent offset *)
  let lines = String.split_on_char '\n' s in
  let header_line =
    List.find (fun l -> contains l "longer column") lines
  in
  Alcotest.(check bool) "header first column padded" true
    (contains header_line "col        longer column")

let test_markdown () =
  let md = Report.to_markdown sample in
  Alcotest.(check bool) "md header" true (contains md "### T: demo");
  Alcotest.(check bool) "md separator" true (contains md "| --- | --- |");
  Alcotest.(check bool) "md row" true (contains md "| wide cell | c |");
  Alcotest.(check bool) "md note" true (contains md "*a note*")

let test_empty_rows () =
  let t = Report.make ~id:"X" ~title:"empty" ~header:[ "a" ] [] in
  let s = Format.asprintf "%a" Report.pp t in
  Alcotest.(check bool) "renders without rows" true (contains s "== X: empty ==")

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "plain rendering" `Quick test_plain_rendering;
        Alcotest.test_case "alignment" `Quick test_alignment;
        Alcotest.test_case "markdown" `Quick test_markdown;
        Alcotest.test_case "empty table" `Quick test_empty_rows;
      ] );
  ]
