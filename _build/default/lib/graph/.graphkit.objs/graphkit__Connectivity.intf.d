lib/graph/connectivity.mli: Digraph Pid
