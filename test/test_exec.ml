(* Simkit.Exec carries the same contract as Simkit.Pool — "byte-identical
   to the sequential run, just faster" — across two backends (domain
   pool on OCaml 5, fork pool otherwise). These tests exercise the
   dispatch edges, crash propagation through whichever backend is
   live, the minimum-index error determinism, chunking invariance, and
   the forced-backend escape hatch; the experiment byte-identity cases
   extend test_pool's jobs=4 coverage to jobs=2 and jobs=8. *)

let int_list = Alcotest.(list int)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let test_empty_and_singleton () =
  Alcotest.check int_list "empty list" []
    (Simkit.Exec.map ~jobs:4 (fun x -> x + 1) []);
  Alcotest.check int_list "singleton" [ 43 ]
    (Simkit.Exec.map ~jobs:4 (fun x -> x + 1) [ 42 ])

let test_jobs_degenerate () =
  let xs = List.init 10 Fun.id in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.check int_list
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Simkit.Exec.map ~jobs f xs))
    [ -1; 0; 1; 2; 3; 10; 64 ]

let test_order_preserved_more_jobs_than_items () =
  let xs = [ "c"; "a"; "b" ] in
  Alcotest.(check (list string))
    "order follows input, not workers" [ "c!"; "a!"; "b!" ]
    (Simkit.Exec.map ~jobs:16 (fun s -> s ^ "!") xs)

let test_closure_capture () =
  (* Domain workers share the heap; fork workers inherit it. Either
     way, capturing a non-marshal-safe value must work. *)
  let shift = ref 7 in
  let adder x = x + !shift in
  Alcotest.check int_list "captured state visible in workers" [ 8; 9; 10 ]
    (Simkit.Exec.map ~jobs:2 adder [ 1; 2; 3 ])

let test_backend_dispatch () =
  let name n = Simkit.Exec.backend_name n in
  Alcotest.(check string)
    "jobs=1 is sequential" "sequential"
    (name (Simkit.Exec.backend ~jobs:1 100));
  Alcotest.(check string)
    "singleton input is sequential" "sequential"
    (name (Simkit.Exec.backend ~jobs:8 1));
  let expected =
    if Simkit.Exec.domains_available then "domains"
    else if Simkit.Exec.fork_available then "fork"
    else "sequential"
  in
  Alcotest.(check string)
    "parallel-sized input picks the best available backend" expected
    (name (Simkit.Exec.backend ~jobs:4 100));
  Alcotest.(check bool)
    "run_in_parallel agrees with backend"
    (expected <> "sequential")
    (Simkit.Exec.run_in_parallel ~jobs:4 100)

let test_crash_propagates () =
  let raised =
    try
      ignore
        (Simkit.Exec.map ~jobs:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (List.init 9 Fun.id));
      false
    with Simkit.Exec.Job_failed msg ->
      Alcotest.(check bool)
        "failure text carries the exception" true
        (contains_substring ~sub:"boom" msg);
      true
  in
  Alcotest.(check bool) "Job_failed raised" true raised

let test_pool_exception_compatible () =
  (* Exec.Job_failed is Pool.Job_failed rebound: handlers written
     against either name keep working. *)
  let caught =
    try
      ignore
        (Simkit.Exec.map ~jobs:2
           (fun x -> if x > 0 then failwith "pop" else x)
           [ 0; 1; 2; 3 ]);
      false
    with Simkit.Pool.Job_failed _ -> true
  in
  Alcotest.(check bool) "catchable as Pool.Job_failed" true caught

let test_min_index_failure () =
  (* Two failing jobs: whatever the worker interleaving, the exception
     that surfaces is the minimum-index one — on both backends. *)
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore
            (Simkit.Exec.map ~chunk:1 ~jobs
               (fun x ->
                 if x = 3 || x = 11 then failwith (Printf.sprintf "job<%d>" x)
                 else x)
               (List.init 16 Fun.id));
          false
        with Simkit.Exec.Job_failed msg ->
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d surfaces the minimum-index failure" jobs)
            true
            (contains_substring ~sub:"job<3>" msg
            && not (contains_substring ~sub:"job<11>" msg));
          true
      in
      Alcotest.(check bool) "Job_failed raised" true raised)
    [ 2; 4 ]

(* The forced-backend escape hatch: each backend honours the full
   contract when forced, and forcing a missing one is a loud error —
   so the 4.14 leg tests fork, the 5.x leg tests both. *)
let forced_backend_contract backend name () =
  let available =
    match backend with
    | Simkit.Exec.Domains -> Simkit.Exec.domains_available
    | Simkit.Exec.Fork -> Simkit.Exec.fork_available
    | Simkit.Exec.Sequential -> true
  in
  if not available then
    let raised =
      try
        ignore (Simkit.Exec.map ~backend ~jobs:4 Fun.id (List.init 8 Fun.id));
        false
      with Invalid_argument _ -> true
    in
    Alcotest.(check bool)
      (name ^ " unavailable: forcing it is Invalid_argument")
      true raised
  else begin
    let xs = List.init 20 Fun.id in
    let f x = (x * 31) + 1 in
    Alcotest.check int_list
      (name ^ " matches List.map")
      (List.map f xs)
      (Simkit.Exec.map ~backend ~jobs:4 f xs);
    let raised =
      try
        ignore
          (Simkit.Exec.map ~backend ~jobs:4
             (fun x -> if x = 7 then failwith "forced-boom" else x)
             xs);
        false
      with Simkit.Exec.Job_failed msg ->
        contains_substring ~sub:"forced-boom" msg
    in
    Alcotest.(check bool) (name ^ " propagates crashes") true raised
  end

let prop_exec_equals_list_map =
  QCheck.Test.make ~count:100
    ~name:"Exec.map = List.map (any jobs, any chunk)"
    QCheck.(triple (small_list int) (int_range 1 8) (int_range 1 10))
    (fun (xs, jobs, chunk) ->
      Simkit.Exec.map ~chunk ~jobs (fun x -> (x * 17) - 5) xs
      = List.map (fun x -> (x * 17) - 5) xs)

(* Experiment tables must come out byte-identical at every jobs count;
   test_pool pins jobs=4, these extend the sweep to 2 and 8. *)
let experiment_determinism name build () =
  let baseline = Stellar_cup.Report.to_markdown (build ~jobs:1) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s table identical at jobs=%d" name jobs)
        baseline
        (Stellar_cup.Report.to_markdown (build ~jobs)))
    [ 2; 8 ]

let det_case name build =
  Alcotest.test_case
    (name ^ ": jobs in {2,8} byte-identical")
    `Slow
    (experiment_determinism name build)

let suites =
  [
    ( "exec",
      [
        Alcotest.test_case "empty and singleton inputs" `Quick
          test_empty_and_singleton;
        Alcotest.test_case "degenerate and oversubscribed jobs" `Quick
          test_jobs_degenerate;
        Alcotest.test_case "order preserved with jobs > items" `Quick
          test_order_preserved_more_jobs_than_items;
        Alcotest.test_case "closures shared with workers" `Quick
          test_closure_capture;
        Alcotest.test_case "backend dispatch" `Quick test_backend_dispatch;
        Alcotest.test_case "worker crash raises Job_failed" `Quick
          test_crash_propagates;
        Alcotest.test_case "exception compatible with Pool" `Quick
          test_pool_exception_compatible;
        Alcotest.test_case "minimum-index failure wins" `Quick
          test_min_index_failure;
        Alcotest.test_case "forced domain backend" `Quick
          (forced_backend_contract Simkit.Exec.Domains "domains");
        Alcotest.test_case "forced fork backend" `Quick
          (forced_backend_contract Simkit.Exec.Fork "fork");
        QCheck_alcotest.to_alcotest prop_exec_equals_list_map;
      ] );
    ( "exec-experiments",
      [
        det_case "e3" (fun ~jobs ->
            Stellar_cup.Experiments.e3_theorem2_violation ~seed:1 ~samples:2
              ~jobs ());
        det_case "e5" (fun ~jobs ->
            Stellar_cup.Experiments.e5_availability ~seed:3 ~samples:2 ~jobs
              ());
        det_case "e6" (fun ~jobs ->
            Stellar_cup.Experiments.e6_sink_detector ~seed:4 ~samples:2 ~jobs
              ());
        det_case "e8" (fun ~jobs ->
            Stellar_cup.Experiments.e8_pipelines ~seed:6 ~samples:2 ~jobs ());
      ] );
  ]
