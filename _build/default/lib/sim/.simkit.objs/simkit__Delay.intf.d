lib/sim/delay.mli: Graphkit Pid
