examples/counterexample.mli:
