lib/cup/sink_oracle.mli: Digraph Graphkit Pid
