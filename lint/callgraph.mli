(** Interprocedural call graph over loaded typed units.

    Nodes are toplevel value bindings named by canonical dotted path
    (["Cup.Knowledge.check_sink"]); edges go to every identifier a
    binding's body mentions (call, partial application or storage —
    the graph is deliberately conservative). Targets outside the cmt
    set (stdlib, external libraries) are kept as plain names; the P1
    taint seeds live there. *)

type node = {
  name : string;  (** canonical dotted name *)
  source : string;  (** build-relative source of the defining unit *)
  line : int;  (** definition site *)
  mutable edges : string list;  (** sorted, deduplicated *)
}

type t

val build : Loader.t -> t

val find : t -> string -> node option

val unit_nodes : t -> string -> node list
(** The nodes declared by a compilation unit (by mangled modname). *)

val references : Typedtree.expression -> Path.t list
(** Every identifier mentioned inside an expression, in traversal
    order. *)

val taint : t -> seed:(string list -> bool) -> (string, string list) Hashtbl.t
(** Backward reachability: every node from which a name whose
    canonical components satisfy [seed] is reachable, mapped to a
    witness chain (node first, seed name last). Deterministic:
    propagation visits nodes in sorted order, shortest chains win. *)

val reachable : t -> string list -> (string, string list) Hashtbl.t
(** Forward reachability from a set of canonical start names, mapped
    to the chain from a start (start first). *)
