test/test_pid.ml: Alcotest Dump Fmt Graphkit Pid QCheck QCheck_alcotest
