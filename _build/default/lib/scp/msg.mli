(** SCP wire messages.

    A node's assertions (votes and acceptances) travel as envelopes
    flooded through the overlay with per-envelope deduplication, the way
    stellar-core floods SCP envelopes. Envelopes name their origin and —
    as Section III-D of the paper prescribes ("each process i attaches
    S_i to all of the messages it sends") — carry the origin's declared
    slice set, which is how receivers learn the quorum structure. The
    simulation treats the origin field as unforgeable, standing in for
    the ed25519 signatures of the real system (see DESIGN.md); the
    slices field however is {e not} protected against equivocation, and
    Byzantine nodes may declare different slices to different peers. *)

open Graphkit

type kind = Vote | Accept

type t = {
  origin : Pid.t;
  kind : kind;
  stmt : Statement.t;
  slices : Fbqs.Slice.t;  (** the origin's declared slice set *)
}

val vote : Pid.t -> slices:Fbqs.Slice.t -> Statement.t -> t

val accept : Pid.t -> slices:Fbqs.Slice.t -> Statement.t -> t

val compare : t -> t -> int
(** Total order used for flood deduplication. Two envelopes differing
    only in the attached slices are distinct (an equivocating
    declaration is a distinct, relayable message). *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
