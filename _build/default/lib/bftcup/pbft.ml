open Graphkit
open Simkit

type lock = { locked_view : int; locked_value : Scp.Value.t }

type msg =
  | Pre_prepare of {
      view : int;
      value : Scp.Value.t;
      just : (Pid.t * lock option) list;
    }
  | Prepare of { view : int; value : Scp.Value.t }
  | Commit of { view : int; value : Scp.Value.t }
  | View_change of { new_view : int; lock : lock option }
  | Decision_req
  | Decision of Scp.Value.t

let pp_msg ppf = function
  | Pre_prepare { view; value; _ } ->
      Format.fprintf ppf "pre-prepare v=%d %a" view Scp.Value.pp value
  | Prepare { view; value } ->
      Format.fprintf ppf "prepare v=%d %a" view Scp.Value.pp value
  | Commit { view; value } ->
      Format.fprintf ppf "commit v=%d %a" view Scp.Value.pp value
  | View_change { new_view; _ } ->
      Format.fprintf ppf "view-change v=%d" new_view
  | Decision_req -> Format.pp_print_string ppf "decision-req"
  | Decision v -> Format.fprintf ppf "decision %a" Scp.Value.pp v

type decision = { value : Scp.Value.t; view : int; time : int }

type config = {
  self : Pid.t;
  members : Pid.Set.t;
  f : int;
  initial_value : Scp.Value.t;
  view_timeout : int;
  on_decide : Pid.t -> decision -> unit;
}

let quorum_size ~n ~f = (n + f + 2) / 2

let leader_of members view =
  let l = Pid.Set.elements members in
  List.nth l (view mod List.length l)

module VKey = Map.Make (struct
  type t = int * Scp.Value.t

  let compare (v1, x1) (v2, x2) =
    match Int.compare v1 v2 with 0 -> Scp.Value.compare x1 x2 | c -> c
end)

module IMap = Map.Make (Int)

type state = {
  cfg : config;
  q : int;
  mutable view : int;
  mutable pre_prepared : Scp.Value.t option;  (* proposal seen, this view *)
  mutable sent_prepare : int;  (* highest view we sent Prepare in, -1 if none *)
  mutable sent_commit : int;
  mutable prepares : Pid.Set.t VKey.t;
  mutable commits : Pid.Set.t VKey.t;
  mutable view_changes : (Pid.t * lock option) list IMap.t;
  mutable proposed_in : int IMap.t;  (* views we already proposed in (leader) *)
  mutable lock : lock option;
  mutable decided : decision option;
  mutable askers : Pid.Set.t;
  mutable answered : Pid.Set.t;
  mutable member_decisions : Scp.Value.t Pid.Map.t;
      (* Decision values reported by fellow members: f+1 matching
         reports let a straggler adopt the decision even when the
         deciders have stopped advancing views. *)
  mutable told_members : Pid.Set.t;
}

let make_state cfg =
  {
    cfg;
    q = quorum_size ~n:(Pid.Set.cardinal cfg.members) ~f:cfg.f;
    view = 0;
    pre_prepared = None;
    sent_prepare = -1;
    sent_commit = -1;
    prepares = VKey.empty;
    commits = VKey.empty;
    view_changes = IMap.empty;
    proposed_in = IMap.empty;
    lock = None;
    decided = None;
    askers = Pid.Set.empty;
    answered = Pid.Set.empty;
    member_decisions = Pid.Map.empty;
    told_members = Pid.Set.empty;
  }

let others st = Pid.Set.remove st.cfg.self st.cfg.members

let bcast st ctx m = Pid.Set.iter (fun j -> Engine.send ctx j m) (others st)

let arm_timer st ctx =
  Engine.set_timer ctx
    ~delay:(st.cfg.view_timeout * (st.view + 1))
    (Printf.sprintf "view:%d" st.view)

let flush_askers st ctx =
  match st.decided with
  | None -> ()
  | Some d ->
      let pending = Pid.Set.diff st.askers st.answered in
      Pid.Set.iter
        (fun j ->
          st.answered <- Pid.Set.add j st.answered;
          Engine.send ctx j (Decision d.value))
        pending

let decide st ctx value =
  if st.decided = None then begin
    let d = { value; view = st.view; time = Engine.now ctx } in
    st.decided <- Some d;
    st.cfg.on_decide st.cfg.self d;
    flush_askers st ctx
  end

let tally map key src =
  let cur = Option.value ~default:Pid.Set.empty (VKey.find_opt key map) in
  VKey.add key (Pid.Set.add src cur) map

(* A decided replica stays in the protocol (stragglers may need it to
   form quorums in later views) but only ever supports its decided
   value. *)
let supports st value =
  match st.decided with
  | Some d -> Scp.Value.equal value d.value
  | None -> true

let send_prepare st ctx view value =
  if st.sent_prepare < view && supports st value then begin
    st.sent_prepare <- view;
    st.prepares <- tally st.prepares (view, value) st.cfg.self;
    bcast st ctx (Prepare { view; value })
  end

let send_commit st ctx view value =
  if st.sent_commit < view && supports st value then begin
    st.sent_commit <- view;
    (match st.lock with
    | Some l when l.locked_view >= view -> ()
    | Some _ | None ->
        st.lock <- Some { locked_view = view; locked_value = value });
    st.commits <- tally st.commits (view, value) st.cfg.self;
    bcast st ctx (Commit { view; value })
  end

let check_prepared st ctx =
  VKey.iter
    (fun (view, value) senders ->
      if view = st.view && Pid.Set.cardinal senders >= st.q then
        send_commit st ctx view value)
    st.prepares

(* The highest lock quoted in a view-change certificate. *)
let best_lock just =
  List.fold_left
    (fun acc (_, l) ->
      match (acc, l) with
      | None, l -> l
      | Some a, Some b when b.locked_view > a.locked_view -> Some b
      | Some a, _ -> Some a)
    None just

(* The value a new leader must propose: the highest quoted lock, or its
   own initial value when nothing is locked. *)
let safe_value st just =
  match best_lock just with
  | Some l -> l.locked_value
  | None -> st.cfg.initial_value

let maybe_propose st ctx view =
  if
    Pid.equal (leader_of st.cfg.members view) st.cfg.self
    && view = st.view
    && not (IMap.mem view st.proposed_in)
  then begin
    let just =
      Option.value ~default:[] (IMap.find_opt view st.view_changes)
    in
    if view = 0 || List.length just >= st.q then begin
      st.proposed_in <- IMap.add view view st.proposed_in;
      let value =
        match st.decided with
        | Some d -> d.value
        | None ->
            if view = 0 then st.cfg.initial_value else safe_value st just
      in
      st.pre_prepared <- Some value;
      bcast st ctx (Pre_prepare { view; value; just });
      send_prepare st ctx view value;
      check_prepared st ctx
    end
  end

let enter_view st ctx nv =
  if nv > st.view then begin
    st.view <- nv;
    st.pre_prepared <- None;
    let vc = View_change { new_view = nv; lock = st.lock } in
    (* record our own view change locally too *)
    let cur = Option.value ~default:[] (IMap.find_opt nv st.view_changes) in
    if not (List.mem_assoc st.cfg.self cur) then
      st.view_changes <- IMap.add nv ((st.cfg.self, st.lock) :: cur) st.view_changes;
    bcast st ctx vc;
    arm_timer st ctx;
    maybe_propose st ctx nv
  end

let valid_proposal st ~src ~view ~value ~just =
  Pid.equal src (leader_of st.cfg.members view)
  && view = st.view
  && st.pre_prepared = None
  && supports st value
  &&
  if view = 0 then true
  else
    let distinct = List.sort_uniq Pid.compare (List.map fst just) in
    List.length distinct >= st.q
    && List.for_all (fun p -> Pid.Set.mem p st.cfg.members) distinct
    &&
    (* With a lock quoted, the proposal must re-propose it; otherwise
       the leader is free to propose (its own initial value, which the
       replica cannot know). *)
    match best_lock just with
    | Some l -> Scp.Value.equal value l.locked_value
    | None -> true

let behavior cfg : msg Engine.behavior =
  let st = make_state cfg in
  let on_start ctx =
    arm_timer st ctx;
    maybe_propose st ctx 0
  in
  (* A decided replica stops advancing views; it instead tells every
     member it hears from about the decision, once. *)
  let tell_decided ctx src =
    match st.decided with
    | Some d
      when Pid.Set.mem src st.cfg.members
           && not (Pid.Set.mem src st.told_members) ->
        st.told_members <- Pid.Set.add src st.told_members;
        Engine.send ctx src (Decision d.value)
    | Some _ | None -> ()
  in
  let on_message ctx ~src m =
    tell_decided ctx src;
    match m with
    | Pre_prepare { view; value; just } ->
        if valid_proposal st ~src ~view ~value ~just then begin
          st.pre_prepared <- Some value;
          send_prepare st ctx view value;
          check_prepared st ctx
        end
    | Prepare { view; value } ->
        if Pid.Set.mem src st.cfg.members then begin
          st.prepares <- tally st.prepares (view, value) src;
          if view = st.view then check_prepared st ctx
        end
    | Commit { view; value } ->
        if Pid.Set.mem src st.cfg.members then begin
          st.commits <- tally st.commits (view, value) src;
          let senders =
            Option.value ~default:Pid.Set.empty
              (VKey.find_opt (view, value) st.commits)
          in
          if Pid.Set.cardinal senders >= st.q then decide st ctx value
        end
    | View_change { new_view; lock } ->
        if Pid.Set.mem src st.cfg.members then begin
          let cur =
            Option.value ~default:[] (IMap.find_opt new_view st.view_changes)
          in
          if not (List.mem_assoc src cur) then begin
            let cur = (src, lock) :: cur in
            st.view_changes <- IMap.add new_view cur st.view_changes;
            (* join a view change supported by f+1 members *)
            if new_view > st.view && List.length cur >= st.cfg.f + 1 then
              enter_view st ctx new_view
            else maybe_propose st ctx new_view
          end
        end
    | Decision_req ->
        st.askers <- Pid.Set.add src st.askers;
        flush_askers st ctx
    | Decision v ->
        (* Adopt a decision vouched by f+1 distinct members: at least
           one is correct and really committed it. *)
        if Pid.Set.mem src st.cfg.members && st.decided = None then begin
          st.member_decisions <- Pid.Map.add src v st.member_decisions;
          let count =
            Pid.Map.fold
              (fun _ v' n -> if Scp.Value.equal v v' then n + 1 else n)
              st.member_decisions 0
          in
          if count >= st.cfg.f + 1 then decide st ctx v
        end
  in
  let on_timer ctx tag =
    (* Stale tags (from earlier views) are ignored. Decided replicas
       keep rotating views too: stragglers may need them as quorum
       members (they will only ever support the decided value). *)
    if tag = Printf.sprintf "view:%d" st.view then
      enter_view st ctx (st.view + 1)
  in
  { on_start; on_message; on_timer }

let silent : msg Engine.behavior = Engine.idle_behavior
