lib/cup/sink_oracle.ml: Array Condensation Graphkit Pid Random
