lib/scp/msg.mli: Fbqs Format Graphkit Pid Set Statement
