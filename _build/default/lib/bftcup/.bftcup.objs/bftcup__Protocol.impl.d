lib/bftcup/protocol.ml: Cup Delay Digraph Engine Format Graphkit List Pbft Pid Scp Simkit
