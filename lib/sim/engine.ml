open Graphkit

let src = Logs.Src.create "simkit.engine" ~doc:"Discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type 'm event =
  | Deliver of { src : Pid.t; dst : Pid.t; payload : 'm }
  | Timer of { owner : Pid.t; tag : string }
  | Start of Pid.t

type stats = {
  messages_sent : int;
  messages_delivered : int;
  timers_fired : int;
  end_time : int;
  sent_by : int Pid.Map.t;
  sent_by_class : (string * int) list;
}

type 'm t = {
  delay : Delay.t;
  queue : 'm event Event_queue.t;
  nodes : (Pid.t, 'm behavior) Hashtbl.t;
  pp_msg : (Format.formatter -> 'm -> unit) option;
  classify : ('m -> string) option;
  class_counts : (string, int) Hashtbl.t;
  mutable clock : int;
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable timers_fired : int;
  sent_by_tbl : (Pid.t, int) Hashtbl.t;
}

and 'm ctx = { engine : 'm t; owner : Pid.t }

and 'm behavior = {
  on_start : 'm ctx -> unit;
  on_message : 'm ctx -> src:Pid.t -> 'm -> unit;
  on_timer : 'm ctx -> string -> unit;
}

let idle_behavior =
  {
    on_start = (fun _ -> ());
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

let self ctx = ctx.owner
let now ctx = ctx.engine.clock

let send ctx dst payload =
  let t = ctx.engine in
  t.messages_sent <- t.messages_sent + 1;
  (match t.classify with
  | Some f ->
      let c = f payload in
      Hashtbl.replace t.class_counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.class_counts c))
  | None -> ());
  Hashtbl.replace t.sent_by_tbl ctx.owner
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.sent_by_tbl ctx.owner));
  let d = Delay.delay_of t.delay ~now:t.clock ~src:ctx.owner ~dst in
  Event_queue.push t.queue ~time:(t.clock + d)
    (Deliver { src = ctx.owner; dst; payload })

let set_timer ctx ~delay tag =
  let t = ctx.engine in
  Event_queue.push t.queue
    ~time:(t.clock + max 1 delay)
    (Timer { owner = ctx.owner; tag })

let create ?pp_msg ?classify ~delay () =
  {
    delay;
    queue = Event_queue.create ();
    nodes = Hashtbl.create 32;
    pp_msg;
    classify;
    class_counts = Hashtbl.create 8;
    clock = 0;
    messages_sent = 0;
    messages_delivered = 0;
    timers_fired = 0;
    sent_by_tbl = Hashtbl.create 32;
  }

let add_node t pid behavior = Hashtbl.replace t.nodes pid behavior

let stats_of t =
  {
    messages_sent = t.messages_sent;
    messages_delivered = t.messages_delivered;
    timers_fired = t.timers_fired;
    end_time = t.clock;
    sent_by =
      (* materialized on demand: the per-send hot path only bumps a
         hash-table counter *)
      Hashtbl.fold Pid.Map.add t.sent_by_tbl Pid.Map.empty;
    sent_by_class =
      List.sort compare
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) t.class_counts []);
  }

let now_of t = t.clock

let dispatch t event =
  match event with
  | Start pid -> (
      match Hashtbl.find_opt t.nodes pid with
      | Some b -> b.on_start { engine = t; owner = pid }
      | None -> ())
  | Timer { owner; tag } -> (
      match Hashtbl.find_opt t.nodes owner with
      | Some b ->
          t.timers_fired <- t.timers_fired + 1;
          b.on_timer { engine = t; owner } tag
      | None -> ())
  | Deliver { src = from; dst; payload } -> (
      match Hashtbl.find_opt t.nodes dst with
      | Some b ->
          t.messages_delivered <- t.messages_delivered + 1;
          (match t.pp_msg with
          | Some pp ->
              Log.debug (fun m ->
                  m "t=%d %d -> %d : %a" t.clock from dst pp payload)
          | None -> ());
          b.on_message { engine = t; owner = dst } ~src:from payload
      | None -> ())

let run ?(max_time = 1_000_000) ?(stop = fun () -> false) t =
  Hashtbl.iter
    (fun pid _ -> Event_queue.push t.queue ~time:0 (Start pid))
    t.nodes;
  let rec loop () =
    if stop () then ()
    else
      match Event_queue.pop t.queue with
      | None -> ()
      | Some (time, _) when time > max_time -> ()
      | Some (time, event) ->
          t.clock <- time;
          dispatch t event;
          loop ()
  in
  loop ();
  stats_of t
