test/test_dset.ml: Alcotest Builtin Cup Digraph Dset Fbqs Graphkit List Pid Printf QCheck QCheck_alcotest Quorum Slice
