open Graphkit

let src = Logs.Src.create "simkit.engine" ~doc:"Discrete-event engine"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  timers_fired : int;
  end_time : int;
  queue_high_water : int;
  sent_by : int Pid.Map.t;
  sent_by_class : (string * int) list;
}

(* Counters pre-registered at engine creation so the per-event hot path
   pays one field write, not a registry lookup. *)
type meters = {
  m_sent : Obs.Metrics.counter;
  m_delivered : Obs.Metrics.counter;
  m_dropped : Obs.Metrics.counter;
  m_timers : Obs.Metrics.counter;
  m_queue_depth : Obs.Metrics.gauge;
}

type 'm t = {
  delay : Delay.t;
  (* The flat {!Event_heap}: same (time, seq) order as the general
     {!Event_queue} it replaced, but pushes and pops allocate nothing
     — the per-event cost is array stores, not heap blocks. *)
  queue : 'm Event_heap.t;
  nodes : (Pid.t, 'm behavior) Hashtbl.t;
  (* Dispatch goes through [slots]: a dense array indexed by pid holding
     the behaviour together with a preallocated ctx, so the per-event
     path is one bounds check and one array load — no hashing, no ctx
     allocation. Negative pids (used by some adversarial setups) fall
     back to a hash table. [nodes] stays the registration record that
     {!run} iterates for Start events. *)
  mutable slots : 'm slot option array;
  neg_slots : (Pid.t, 'm slot) Hashtbl.t;
  pp_msg : (Format.formatter -> 'm -> unit) option;
  classify : ('m -> string) option;
  class_counts : (string, int) Hashtbl.t;
  meters : meters option;
  trace : Obs.Trace.sink option;
  default_max_time : int;
  mutable clock : int;
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable timers_fired : int;
  sent_by_tbl : (Pid.t, int) Hashtbl.t;
}

and 'm slot = { b : 'm behavior; ctx : 'm ctx }
and 'm ctx = { engine : 'm t; owner : Pid.t }

and 'm behavior = {
  on_start : 'm ctx -> unit;
  on_message : 'm ctx -> src:Pid.t -> 'm -> unit;
  on_timer : 'm ctx -> string -> unit;
}

let idle_behavior =
  {
    on_start = (fun _ -> ());
    on_message = (fun _ ~src:_ _ -> ());
    on_timer = (fun _ _ -> ());
  }

let self ctx = ctx.owner
let now ctx = ctx.engine.clock

let emit t name fields =
  match t.trace with
  | None -> ()
  | Some sink -> Obs.Trace.emit sink ~time:t.clock ~scope:"engine" ~name fields

let msg_fields t payload =
  match (t.trace, t.pp_msg) with
  | Some _, Some pp ->
      [ ("msg", Obs.Json.String (Format.asprintf "%a" pp payload)) ]
  | _ -> []

(* The field lists (and the rendered ["msg"] payloads) exist only for
   the trace sink; with tracing off the hot path must not allocate
   them, so every emit site guards construction on [t.trace]. *)
let tracing t = match t.trace with None -> false | Some _ -> true

let send ctx dst payload =
  let t = ctx.engine in
  t.messages_sent <- t.messages_sent + 1;
  (match t.classify with
  | Some f ->
      let c = f payload in
      Hashtbl.replace t.class_counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.class_counts c))
  | None -> ());
  Hashtbl.replace t.sent_by_tbl ctx.owner
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.sent_by_tbl ctx.owner));
  let d = Delay.delay_of t.delay ~now:t.clock ~src:ctx.owner ~dst in
  (match t.meters with Some m -> Obs.Metrics.incr m.m_sent | None -> ());
  if tracing t then
    emit t "send"
      ([
         ("src", Obs.Json.Int ctx.owner);
         ("dst", Obs.Json.Int dst);
         ("at", Obs.Json.Int (t.clock + d));
       ]
      @ msg_fields t payload);
  Event_heap.push_deliver t.queue ~time:(t.clock + d) ~src:ctx.owner ~dst
    payload

let set_timer ctx ~delay tag =
  let t = ctx.engine in
  Event_heap.push_timer t.queue ~time:(t.clock + max 1 delay) ~owner:ctx.owner
    tag

let create ?pp_msg ?classify ?metrics ?trace ?(max_time = 1_000_000) ~delay ()
    =
  let meters =
    Option.map
      (fun reg ->
        {
          m_sent = Obs.Metrics.counter reg "engine_messages_sent";
          m_delivered = Obs.Metrics.counter reg "engine_messages_delivered";
          m_dropped = Obs.Metrics.counter reg "engine_messages_dropped";
          m_timers = Obs.Metrics.counter reg "engine_timers_fired";
          m_queue_depth = Obs.Metrics.gauge reg "engine_queue_depth";
        })
      metrics
  in
  {
    delay;
    queue = Event_heap.create ();
    nodes = Hashtbl.create 32;
    slots = [||];
    neg_slots = Hashtbl.create 4;
    pp_msg;
    classify;
    class_counts = Hashtbl.create 8;
    meters;
    trace;
    default_max_time = max_time;
    clock = 0;
    messages_sent = 0;
    messages_delivered = 0;
    messages_dropped = 0;
    timers_fired = 0;
    sent_by_tbl = Hashtbl.create 32;
  }

let create_cfg ?pp_msg ?classify (cfg : Run_config.t) =
  create ?pp_msg ?classify ?metrics:cfg.metrics ?trace:cfg.trace
    ~max_time:cfg.max_time
    ~delay:(Run_config.delay_model cfg)
    ()

let add_node t pid behavior =
  Hashtbl.replace t.nodes pid behavior;
  let slot = { b = behavior; ctx = { engine = t; owner = pid } } in
  if pid >= 0 then begin
    if pid >= Array.length t.slots then begin
      let len = max 16 (max (pid + 1) (2 * Array.length t.slots)) in
      let grown = Array.make len None in
      Array.blit t.slots 0 grown 0 (Array.length t.slots);
      t.slots <- grown
    end;
    t.slots.(pid) <- Some slot
  end
  else Hashtbl.replace t.neg_slots pid slot

let slot_of t pid =
  if pid >= 0 then
    if pid < Array.length t.slots then Array.unsafe_get t.slots pid else None
  else Hashtbl.find_opt t.neg_slots pid

let stats_of t =
  {
    messages_sent = t.messages_sent;
    messages_delivered = t.messages_delivered;
    messages_dropped = t.messages_dropped;
    timers_fired = t.timers_fired;
    end_time = t.clock;
    queue_high_water = Event_heap.high_water t.queue;
    sent_by =
      (* materialized on demand: the per-send hot path only bumps a
         hash-table counter. Folding into [Pid.Map.add] is the
         canonical D1 ordering step — the map is the same whatever
         order the buckets are enumerated in (see DESIGN.md §11). *)
      Hashtbl.fold Pid.Map.add t.sent_by_tbl Pid.Map.empty;
    sent_by_class =
      List.sort compare
        (Hashtbl.fold (fun c n acc -> (c, n) :: acc) t.class_counts []);
  }

let now_of t = t.clock

(* Dispatches the event sitting in the heap's pop cursor. Every cursor
   field is read into a local before any behaviour runs: a handler's
   first [send] overwrites the cursor slot. *)
let dispatch t =
  (match t.meters with
  | Some m -> Obs.Metrics.set_gauge m.m_queue_depth (Event_heap.length t.queue)
  | None -> ());
  let q = t.queue in
  let k = Event_heap.kind q in
  if Event_heap.Kind.equal k Event_heap.Kind.start then begin
    let pid = Event_heap.node_a q in
    match slot_of t pid with
    | Some s ->
        if tracing t then emit t "start" [ ("node", Obs.Json.Int pid) ];
        s.b.on_start s.ctx
    | None -> ()
  end
  else if Event_heap.Kind.equal k Event_heap.Kind.timer then begin
    let owner = Event_heap.node_a q in
    let tag = Event_heap.tag q in
    match slot_of t owner with
    | Some s ->
        t.timers_fired <- t.timers_fired + 1;
        (match t.meters with
        | Some m -> Obs.Metrics.incr m.m_timers
        | None -> ());
        if tracing t then
          emit t "timer"
            [ ("owner", Obs.Json.Int owner); ("tag", Obs.Json.String tag) ];
        s.b.on_timer s.ctx tag
    | None -> ()
  end
  else begin
    let from = Event_heap.node_a q in
    let dst = Event_heap.node_b q in
    let payload = Event_heap.payload q in
    match slot_of t dst with
    | Some s ->
        t.messages_delivered <- t.messages_delivered + 1;
        (match t.meters with
        | Some m -> Obs.Metrics.incr m.m_delivered
        | None -> ());
        if tracing t then
          emit t "deliver"
            ([ ("src", Obs.Json.Int from); ("dst", Obs.Json.Int dst) ]
            @ msg_fields t payload);
        (match t.pp_msg with
        | Some pp ->
            Log.debug (fun m ->
                m "t=%d %d -> %d : %a" t.clock from dst pp payload)
        | None -> ());
        s.b.on_message s.ctx ~src:from payload
    | None ->
        t.messages_dropped <- t.messages_dropped + 1;
        (match t.meters with
        | Some m -> Obs.Metrics.incr m.m_dropped
        | None -> ());
        if tracing t then
          emit t "drop"
            [ ("src", Obs.Json.Int from); ("dst", Obs.Json.Int dst) ]
  end

let run ?max_time ?(stop = fun () -> false) t =
  let max_time = Option.value ~default:t.default_max_time max_time in
  (* Start events go out in ascending pid order — a sorted snapshot of
     [nodes], not [Hashtbl.iter], so the time-0 schedule (and with it
     the per-run delay stream) never depends on hash-bucket layout. *)
  List.iter
    (fun pid -> Event_heap.push_start t.queue ~time:0 pid)
    (List.sort Pid.compare
       (Hashtbl.fold (fun pid _ acc -> pid :: acc) t.nodes []));
  let rec loop () =
    if stop () then ()
    else if not (Event_heap.pop t.queue) then ()
    else begin
      let time = Event_heap.time t.queue in
      if time > max_time then ()
      else begin
        t.clock <- time;
        dispatch t;
        loop ()
      end
    end
  in
  loop ();
  stats_of t
