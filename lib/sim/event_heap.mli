(** Flat, allocation-free event heap — the engine's internal queue.

    A structure-of-arrays binary min-heap specialised to the three
    engine event shapes (start, timer, deliver). Where {!Event_queue}
    allocates an entry record plus a payload block per push, a push
    here writes one row across preallocated parallel arrays (row slots
    are recycled through an intrusive free list) and the heap itself
    orders int row ids, so sifting moves single ints; the per-event
    hot path allocates nothing.

    Ordering is identical to {!Event_queue}: strictly by
    [(time, push sequence)], packed into a single int key, so swapping
    the engine onto this heap changes no schedule — traces and tables
    stay byte-identical. Times must fit 31 bits (every simulation
    budget in this codebase is ~10^6).

    {!Event_queue} remains the general-purpose priority queue (and the
    bench baseline this module is measured against); this one trades
    genericity for the engine's hot path. *)

module Kind : sig
  type t = private int
  (** Dense event-kind code (the [private int] idiom: pattern-free,
      array-indexable, no allocation). *)

  val start : t
  val timer : t
  val deliver : t
  val equal : t -> t -> bool
end

type 'm t

val create : unit -> 'm t
val length : 'm t -> int
val is_empty : 'm t -> bool

val high_water : 'm t -> int
(** Maximum number of simultaneously pending events so far. *)

val push_start : 'm t -> time:int -> int -> unit
(** [push_start t ~time pid] schedules a process start. *)

val push_timer : 'm t -> time:int -> owner:int -> string -> unit
(** [push_timer t ~time ~owner tag] schedules a timer expiry. *)

val push_deliver : 'm t -> time:int -> src:int -> dst:int -> 'm -> unit
(** [push_deliver t ~time ~src ~dst payload] schedules a delivery.

    @raise Invalid_argument
      (from any push) if [time] exceeds the 31-bit key range. *)

val pop : 'm t -> bool
(** Removes the minimum event and parks it in the cursor row; [false]
    iff the heap was empty. The accessors below read the cursor and
    are only meaningful after a [pop] that returned [true], until the
    next [pop] (interleaved pushes leave the cursor intact). *)

val time : 'm t -> int
val kind : 'm t -> Kind.t

val node_a : 'm t -> int
(** Started pid, timer owner, or delivery source, per {!kind}. *)

val node_b : 'm t -> int
(** Delivery destination ([-1] for other kinds). *)

val tag : 'm t -> string
(** Timer tag ([""] for other kinds). *)

val payload : 'm t -> 'm
(** Delivery payload; only valid when {!kind} is {!Kind.deliver}. *)
