open Graphkit
open Scp

let v = Value.of_ints

let threshold_system n t =
  let members = Pid.Set.of_range 1 n in
  Fbqs.Quorum.system_of_list
    (List.map
       (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:t))
       (Pid.Set.elements members))

let all_peers n _ = Pid.Set.of_range 1 n

let own_value i = v [ i ]

let no_faults _ = None

(* The flat [Runner.run] wrapper's historical defaults, through the
   Run_config-based entry point. *)
let run ?(seed = 0) ?delay ?max_time ~system ~peers_of ~initial_value_of
    ~fault_of () =
  let d = Runner.default_cfg in
  let max_time = Option.value ~default:d.run.max_time max_time in
  Runner.run_cfg
    ~cfg:{ d with run = { d.run with seed; delay; max_time } }
    ~system ~peers_of ~initial_value_of ~fault_of ()

let check_consensus ?(expect_decided = true) name (o : Runner.outcome) =
  Alcotest.(check bool) (name ^ ": all decided") expect_decided o.all_decided;
  Alcotest.(check bool) (name ^ ": agreement") true o.agreement;
  Alcotest.(check bool) (name ^ ": validity") true o.validity

let test_four_nodes_fault_free () =
  let o =
    run
      ~system:(threshold_system 4 3)
      ~peers_of:(all_peers 4) ~initial_value_of:own_value ~fault_of:no_faults
      ()
  in
  check_consensus "4 nodes" o

let test_four_nodes_one_silent () =
  let fault_of i = if i = 4 then Some Runner.Silent else None in
  let o =
    run
      ~system:(threshold_system 4 3)
      ~peers_of:(all_peers 4) ~initial_value_of:own_value ~fault_of ()
  in
  check_consensus "3 of 4 with silent" o;
  Alcotest.(check int) "three deciders" 3 (Pid.Map.cardinal o.decisions)

let test_seven_nodes_two_silent () =
  let fault_of i = if i <= 2 then Some Runner.Silent else None in
  let o =
    run
      ~system:(threshold_system 7 5)
      ~peers_of:(all_peers 7) ~initial_value_of:own_value ~fault_of ()
  in
  check_consensus "5 of 7 with two silent" o

let test_fig1_explicit_slices () =
  (* The Section III-D system: process 8 is Byzantine (silent). The
     maximal consensus cluster is W = {1..7}, so all seven correct
     processes must decide and agree. Process pairs like (1, 4) do not
     know each other initially — flooding and peer sync must bridge
     them. *)
  let system =
    Fbqs.Quorum.system_of_list
      (List.map
         (fun (i, slices) -> (i, Fbqs.Slice.explicit slices))
         Builtin.fig1_slices)
  in
  let peers_of i = Digraph.succs Builtin.fig1 i in
  let fault_of i = if i = 8 then Some Runner.Silent else None in
  let o =
    run ~system ~peers_of ~initial_value_of:own_value ~fault_of ()
  in
  check_consensus "fig1" o;
  Alcotest.(check int) "seven deciders" 7 (Pid.Map.cardinal o.decisions)

let test_fig2_algorithm2_slices () =
  (* Corollary 2 end-to-end: sink-detector slices on the Fig. 2 graph
     solve consensus, including with a silent sink member. *)
  let f = 1 in
  let system = Cup.Slice_builder.system_via_oracle ~f Builtin.fig2 in
  let peers_of i = Fbqs.Slice.domain (Fbqs.Quorum.slices_of system i) in
  List.iter
    (fun faulty ->
      let fault_of i = if i = faulty then Some Runner.Silent else None in
      let o =
        run ~system ~peers_of ~initial_value_of:own_value ~fault_of ()
      in
      check_consensus (Printf.sprintf "fig2 faulty=%d" faulty) o)
    [ 4; 6 ]

let test_disjoint_quorums_violate_agreement () =
  (* Experiment E3's heart: Theorem 2's local slices on Fig. 2 create
     the disjoint quorums {5,6,7} and {1,2,3,4}. A network adversary
     that stalls cross-group traffic until its (legal) partial-synchrony
     deadline lets both groups decide independently — a real agreement
     violation, with zero Byzantine processes. *)
  let pd = Cup.Participant_detector.of_graph ~f:1 Builtin.fig2 in
  let system = Cup.Local_slices.system ~rule:Cup.Local_slices.all_but_one pd in
  let peers_of i = Cup.Participant_detector.query pd i in
  let sink_side i = i <= 4 in
  let delay =
    Simkit.Delay.targeted ~gst:50_000 ~delta:5 ~seed:1 ~slow:(fun a b ->
        sink_side a <> sink_side b)
  in
  let initial_value_of i = if sink_side i then v [ 100 ] else v [ 200 ] in
  let o =
    run ~delay ~max_time:120_000 ~system ~peers_of ~initial_value_of
      ~fault_of:no_faults ()
  in
  Alcotest.(check bool) "everyone decided" true o.all_decided;
  Alcotest.(check bool) "agreement VIOLATED" false o.agreement

let test_same_slices_friendly_network_live () =
  (* With disjoint quorums nothing ever forces the two groups to agree,
     even on a synchronous network — each can externalize from its own
     quorum alone. What the engine does guarantee is liveness and
     validity; agreement is exactly what Theorem 2 says cannot be
     guaranteed, so we do not assert it here. *)
  let pd = Cup.Participant_detector.of_graph ~f:1 Builtin.fig2 in
  let system = Cup.Local_slices.system ~rule:Cup.Local_slices.all_but_one pd in
  let peers_of i = Cup.Participant_detector.query pd i in
  let delay = Simkit.Delay.synchronous ~delta:2 in
  let o =
    run ~delay ~system ~peers_of ~initial_value_of:own_value
      ~fault_of:no_faults ()
  in
  Alcotest.(check bool) "friendly network: all decided" true o.all_decided;
  Alcotest.(check bool) "friendly network: validity" true o.validity

let test_accept_forger_ignored () =
  let system = threshold_system 4 3 in
  let evil = Ballot.make 99 (v [ 666 ]) in
  let fault_of i =
    if i = 4 then
      Some (Runner.Accept_forger [ Statement.Commit evil ])
    else None
  in
  let o =
    run ~system ~peers_of:(all_peers 4) ~initial_value_of:own_value
      ~fault_of ()
  in
  check_consensus "forged accepts" o;
  Pid.Map.iter
    (fun _ (d : Node.decision) ->
      Alcotest.(check bool) "evil tx not decided" false
        (List.mem 666 (Value.to_list d.value)))
    o.decisions

let test_nomination_equivocator_safe () =
  let system = threshold_system 5 4 in
  let fault_of i =
    if i = 5 then
      Some
        (Runner.Nomination_equivocator
           {
             split = (fun j -> j mod 2 = 0);
             value_a = v [ 71 ];
             value_b = v [ 72 ];
           })
    else None
  in
  let o =
    run ~system ~peers_of:(all_peers 5) ~initial_value_of:own_value
      ~fault_of ()
  in
  check_consensus "nomination equivocation" o

let test_deterministic () =
  let run () =
    run ~seed:3
      ~system:(threshold_system 4 3)
      ~peers_of:(all_peers 4) ~initial_value_of:own_value ~fault_of:no_faults
      ()
  in
  let o1 = run () and o2 = run () in
  Alcotest.(check int) "same messages" o1.stats.messages_sent
    o2.stats.messages_sent;
  Alcotest.(check bool) "same decisions" true
    (Pid.Map.equal
       (fun (a : Node.decision) b -> Value.equal a.value b.value)
       o1.decisions o2.decisions)

let prop_random_byzantine_safe_graphs_consensus =
  QCheck.Test.make ~count:6
    ~name:"SCP + Algorithm 2 slices decide and agree on random graphs"
    QCheck.(int_bound 100)
    (fun seed ->
      let f = 1 in
      let g, _sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:5 ~non_sink:2 ()
      in
      let faulty = Generators.random_faulty_set ~seed ~f g in
      let system = Cup.Slice_builder.system_via_oracle ~f g in
      let peers_of i = Fbqs.Slice.domain (Fbqs.Quorum.slices_of system i) in
      let fault_of i =
        if Pid.Set.mem i faulty then Some Runner.Silent else None
      in
      let o =
        run ~seed ~system ~peers_of ~initial_value_of:own_value
          ~fault_of ()
      in
      o.all_decided && o.agreement && o.validity)

let suites =
  [
    ( "scp_run",
      [
        Alcotest.test_case "4 nodes fault-free" `Quick
          test_four_nodes_fault_free;
        Alcotest.test_case "4 nodes, 1 silent" `Quick
          test_four_nodes_one_silent;
        Alcotest.test_case "7 nodes, 2 silent" `Quick
          test_seven_nodes_two_silent;
        Alcotest.test_case "fig1 explicit slices" `Quick
          test_fig1_explicit_slices;
        Alcotest.test_case "fig2 + Algorithm 2 slices" `Quick
          test_fig2_algorithm2_slices;
        Alcotest.test_case "disjoint quorums violate agreement" `Quick
          test_disjoint_quorums_violate_agreement;
        Alcotest.test_case "local slices live on friendly network" `Quick
          test_same_slices_friendly_network_live;
        Alcotest.test_case "accept forger ignored" `Quick
          test_accept_forger_ignored;
        Alcotest.test_case "nomination equivocator safe" `Quick
          test_nomination_equivocator_safe;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        QCheck_alcotest.to_alcotest
          prop_random_byzantine_safe_graphs_consensus;
      ] );
  ]
