lib/graph/pid.mli: Format Map Set
