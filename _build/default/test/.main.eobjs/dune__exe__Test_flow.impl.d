test/test_flow.ml: Alcotest Array Graphkit List QCheck QCheck_alcotest
