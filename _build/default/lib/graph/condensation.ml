type t = {
  comps : Pid.Set.t array;
  index : int Pid.Map.t;
  dag : int list array;
}

let make g =
  let comps = Array.of_list (Scc.components g) in
  let index =
    Array.to_seqi comps
    |> Seq.fold_left
         (fun m (k, c) -> Pid.Set.fold (fun v m -> Pid.Map.add v k m) c m)
         Pid.Map.empty
  in
  let n = Array.length comps in
  let succ_sets = Array.make n [] in
  Digraph.fold_edges
    (fun i j () ->
      let ci = Pid.Map.find i index and cj = Pid.Map.find j index in
      if ci <> cj && not (List.mem cj succ_sets.(ci)) then
        succ_sets.(ci) <- cj :: succ_sets.(ci))
    g ();
  { comps; index; dag = succ_sets }

let components t = t.comps

let component_of t i =
  match Pid.Map.find_opt i t.index with
  | Some k -> k
  | None -> raise Not_found

let dag_succs t k = t.dag.(k)

let sinks t =
  let acc = ref [] in
  Array.iteri (fun k succs -> if succs = [] then acc := k :: !acc) t.dag;
  List.rev !acc

let sink_components g =
  let t = make g in
  List.map (fun k -> t.comps.(k)) (sinks t)

let unique_sink g =
  match sink_components g with [ c ] -> Some c | _ -> None

let is_sink_member g i =
  List.exists (Pid.Set.mem i) (sink_components g)
