(* A single-pass scanner over the raw text: line splitting, comment
   stripping, trimming and token parsing all work on index ranges into
   the input, so a parse allocates nothing per line beyond the graph
   itself (the seed split/trim/filter_map pipeline allocated several
   intermediate strings and lists per line). Semantics are unchanged:
   same accepted inputs — including signed, hex and underscored ids,
   via the [int_of_string_opt] fallback — and the same error messages,
   line numbers included. *)

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

(* [int_of_string_opt] on [text[s..e)], with an allocation-free fast
   path for the all-digit tokens that dominate real inputs (18 digits
   always fit in an OCaml int). *)
let parse_int text s e =
  let len = e - s in
  if len = 0 then None
  else begin
    let all_digits = ref (len <= 18) in
    let i = ref s in
    while !all_digits && !i < e do
      let c = String.unsafe_get text !i in
      if c < '0' || c > '9' then all_digits := false else incr i
    done;
    if !all_digits then begin
      let v = ref 0 in
      for j = s to e - 1 do
        v := (!v * 10) + (Char.code (String.unsafe_get text j) - Char.code '0')
      done;
      Some !v
    end
    else int_of_string_opt (String.sub text s len)
  end

let of_string text =
  let len = String.length text in
  let g = ref Digraph.empty in
  let err = ref None in
  let pos = ref 0 in
  let lineno = ref 1 in
  let running = ref true in
  while !running do
    let ls = !pos in
    let le =
      match String.index_from_opt text ls '\n' with Some i -> i | None -> len
    in
    (* Cut the line at the first '#', then trim both ends. *)
    let ce = ref ls in
    while !ce < le && text.[!ce] <> '#' do
      incr ce
    done;
    let a = ref ls and b = ref !ce in
    while !a < !b && is_space text.[!a] do
      incr a
    done;
    while !b > !a && is_space text.[!b - 1] do
      decr b
    done;
    if !a < !b then begin
      let colon = ref !a in
      while !colon < !b && text.[!colon] <> ':' do
        incr colon
      done;
      if !colon = !b then
        err := Some (Printf.sprintf "line %d: expected 'vertex: succ...'" !lineno)
      else begin
        let ve = ref !colon in
        while !ve > !a && is_space text.[!ve - 1] do
          decr ve
        done;
        match parse_int text !a !ve with
        | None ->
            err :=
              Some
                (Printf.sprintf "line %d: bad vertex id %S" !lineno
                   (String.sub text !a (!ve - !a)))
        | Some v ->
            (* Successor tokens: split on ' ', trim each of the
               remaining whitespace, skip empties. *)
            let succs = ref [] in
            let ok = ref true in
            let i = ref (!colon + 1) in
            while !ok && !i < !b do
              if text.[!i] = ' ' then incr i
              else begin
                let ts = ref !i in
                while !i < !b && text.[!i] <> ' ' do
                  incr i
                done;
                let te = ref !i in
                while !ts < !te && is_space text.[!ts] do
                  incr ts
                done;
                while !te > !ts && is_space text.[!te - 1] do
                  decr te
                done;
                if !ts < !te then
                  match parse_int text !ts !te with
                  | None -> ok := false
                  | Some s -> succs := s :: !succs
              end
            done;
            if not !ok then
              err := Some (Printf.sprintf "line %d: bad successor id" !lineno)
            else
              g :=
                List.fold_left
                  (fun g s -> Digraph.add_edge v s g)
                  (Digraph.add_vertex v !g)
                  (List.rev !succs)
      end
    end;
    if Option.is_some !err || le >= len then running := false
    else begin
      pos := le + 1;
      incr lineno
    end
  done;
  match !err with Some e -> Error e | None -> Ok !g

let of_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          of_string (really_input_string ic n))

let to_string g =
  let buf = Buffer.create 128 in
  Pid.Set.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ':';
      Pid.Set.iter
        (fun s ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int s))
        (Digraph.succs g v);
      Buffer.add_char buf '\n')
    (Digraph.vertices g);
  Buffer.contents buf
