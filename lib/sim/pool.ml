exception Job_failed of string

let has_fork = not Sys.win32

let run_in_parallel ~jobs n = has_fork && jobs > 1 && n > 1

(* Round-robin partition: worker [w] of [nw] owns the items at indices
   [i] with [i mod nw = w]. A pure function of the input list and the
   worker count, so the parent can scatter results back into input
   order without shipping indices over the pipe. *)
let partition nw xs =
  let buckets = Array.make nw [] in
  List.iteri (fun i x -> buckets.(i mod nw) <- (i, x) :: buckets.(i mod nw)) xs;
  Array.map List.rev buckets

(* One worker: compute the assigned jobs sequentially, stopping at the
   first failure (exactly the prefix a sequential [List.map] would have
   computed before raising), and marshal the outcome up the pipe. The
   child exits with [Unix._exit] so the duplicated stdio buffers and
   [at_exit] handlers of the parent never run twice. *)
let worker_main fd f items =
  let outcome : (_ list, string) result =
    try Ok (List.map (fun (_, x) -> f x) items)
    with e ->
      let bt = Printexc.get_backtrace () in
      Error
        (Printexc.to_string e ^ if bt = "" then "" else "\n" ^ String.trim bt)
  in
  (try
     let oc = Unix.out_channel_of_descr fd in
     Marshal.to_channel oc outcome [];
     flush oc
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_forked ~workers f xs =
  let n = List.length xs in
  let buckets = partition workers xs in
  flush stdout;
  flush stderr;
  let spawned =
    Array.map
      (fun items ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
            Unix.close r;
            worker_main w f items
        | pid ->
            Unix.close w;
            (pid, r, items))
      buckets
  in
  (* Collect every worker before acting on any failure: a crashed job
     must surface as an exception, never as a hang or a zombie. *)
  let outcomes =
    Array.map
      (fun (pid, r, items) ->
        let outcome =
          try
            let ic = Unix.in_channel_of_descr r in
            let (o : (_ list, string) result) = Marshal.from_channel ic in
            close_in ic;
            o
          with e ->
            (try Unix.close r with Unix.Unix_error _ -> ());
            Error ("worker died before reporting: " ^ Printexc.to_string e)
        in
        let _, status = Unix.waitpid [] pid in
        match (outcome, status) with
        | Ok results, Unix.WEXITED 0 -> Ok (items, results)
        | Error msg, _ -> Error msg
        | Ok _, status ->
            let s =
              match status with
              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            Error ("worker terminated abnormally: " ^ s))
      spawned
  in
  let slots = Array.make n None in
  Array.iter
    (fun outcome ->
      match outcome with
      | Error msg -> raise (Job_failed msg)
      | Ok (items, results) ->
          (* A well-behaved worker answers one result per item; anything
             else means the transport lost data. *)
          if List.length items <> List.length results then
            raise (Job_failed "worker returned a truncated result list");
          List.iter2 (fun (i, _) y -> slots.(i) <- Some y) items results)
    outcomes;
  Array.to_list
    (Array.map
       (function Some y -> y | None -> raise (Job_failed "missing result"))
       slots)

let map ~jobs f xs =
  let n = List.length xs in
  if not (run_in_parallel ~jobs n) then List.map f xs
  else map_forked ~workers:(min jobs n) f xs

(* ------------------------------------------------------------------ *)
(* Chunked dynamic-dispatch variant, used by {!Exec} as the fork
   backend. Differences from {!map_forked}:

   - Work is handed out dynamically through a make-jobserver-style
     token pipe: the parent writes one byte per chunk id and closes
     the write end before forking, each worker loops single-byte reads
     until EOF. One-byte reads from a pipe are atomic among competing
     readers, so a token goes to exactly one worker and a slow chunk
     no longer staticly pins the rest of its round-robin bucket to the
     same worker.
   - Each chunk's results travel as their own compact marshalled frame
     [(chunk_id, rows)] instead of one whole-bucket message, so the
     parent can drain pipes while workers still compute and the
     Marshal tax is paid per result row, never per retained table. *)

(* Chunk ids must fit the one-byte token, so at most 256 chunks: for
   longer inputs the chunk size is raised, never the token width. *)
let max_chunks = 256

type 'b chunk_outcome = ('b list, int * string) result

let chunk_worker ~token_r ~result_w ~chunk ~n f (input : _ array) =
  let compute cid =
    let start = cid * chunk in
    let stop = min n (start + chunk) in
    let rec go i acc =
      if i >= stop then Ok (List.rev acc)
      else
        match f input.(i) with
        | y -> go (i + 1) (y :: acc)
        | exception e ->
            let bt = Printexc.get_backtrace () in
            Error
              ( i,
                Printexc.to_string e
                ^ if bt = "" then "" else "\n" ^ String.trim bt )
    in
    go start []
  in
  (try
     let oc = Unix.out_channel_of_descr result_w in
     let buf = Bytes.create 1 in
     let rec loop () =
       match Unix.read token_r buf 0 1 with
       | 0 -> ()
       | _ ->
           let cid = Char.code (Bytes.get buf 0) in
           let frame : int * _ chunk_outcome = (cid, compute cid) in
           Marshal.to_channel oc frame [];
           loop ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
     in
     loop ();
     flush oc
   with _ -> Unix._exit 2);
  Unix._exit 0

let map_chunked ~chunk ~workers f xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let input = Array.of_list xs in
    let chunk = max (max 1 chunk) ((n + max_chunks - 1) / max_chunks) in
    let nchunks = (n + chunk - 1) / chunk in
    let workers = max 1 (min workers nchunks) in
    flush stdout;
    flush stderr;
    let token_r, token_w = Unix.pipe ~cloexec:false () in
    let tokens = Bytes.init nchunks Char.chr in
    (* At most 256 bytes — far below the pipe buffer, so one write
       never blocks, and closing the write end before any fork gives
       every worker a clean EOF once the tokens run out. *)
    let wrote = Unix.write token_w tokens 0 nchunks in
    Unix.close token_w;
    if wrote <> nchunks then begin
      Unix.close token_r;
      raise (Job_failed "token pipe refused the chunk list")
    end;
    let spawned =
      Array.init workers (fun _ ->
          let r, w = Unix.pipe ~cloexec:false () in
          match Unix.fork () with
          | 0 ->
              Unix.close r;
              chunk_worker ~token_r ~result_w:w ~chunk ~n f input
          | pid ->
              Unix.close w;
              (pid, r))
    in
    Unix.close token_r;
    (* Drain every worker before acting on any failure, like
       {!map_forked}: a crashed job must surface as an exception, never
       as a hang or a zombie. *)
    let outcomes : _ chunk_outcome option array = Array.make nchunks None in
    let transport = ref [] in
    Array.iter
      (fun (pid, r) ->
        let ic = Unix.in_channel_of_descr r in
        (try
           let rec drain () =
             let cid, (o : _ chunk_outcome) = Marshal.from_channel ic in
             (if cid < 0 || cid >= nchunks then
                transport :=
                  Printf.sprintf "worker answered unknown chunk %d" cid
                  :: !transport
              else
                match outcomes.(cid) with
                | None -> outcomes.(cid) <- Some o
                | Some _ ->
                    transport :=
                      Printf.sprintf "worker answered chunk %d twice" cid
                      :: !transport);
             drain ()
           in
           drain ()
         with
        | End_of_file -> ()
        | e ->
            transport :=
              ("worker died before reporting: " ^ Printexc.to_string e)
              :: !transport);
        (try close_in ic with Sys_error _ -> ());
        let _, status = Unix.waitpid [] pid in
        match status with
        | Unix.WEXITED 0 -> ()
        | Unix.WEXITED c ->
            transport :=
              Printf.sprintf "worker terminated abnormally: exit %d" c
              :: !transport
        | Unix.WSIGNALED s ->
            transport :=
              Printf.sprintf "worker terminated abnormally: signal %d" s
              :: !transport
        | Unix.WSTOPPED s ->
            transport :=
              Printf.sprintf "worker terminated abnormally: stopped %d" s
              :: !transport)
      spawned;
    let slots = Array.make n None in
    let failures = ref [] in
    let truncated = ref false in
    Array.iteri
      (fun cid o ->
        match o with
        | None -> ()
        | Some (Error (i, msg)) -> failures := (i, msg) :: !failures
        | Some (Ok rows) ->
            let start = cid * chunk in
            let stop = min n (start + chunk) in
            if List.length rows <> stop - start then truncated := true
            else List.iteri (fun j y -> slots.(start + j) <- Some y) rows)
      outcomes;
    (* Job failures win over transport noise, and the minimum job index
       wins among them: token claiming is monotonic, so the first
       failure a sequential run would have hit was always attempted —
       this is the same deterministic choice the domain backend makes. *)
    match List.sort (fun (i, _) (j, _) -> Int.compare i j) !failures with
    | (_, msg) :: _ -> raise (Job_failed msg)
    | [] -> (
        match List.rev !transport with
        | msg :: _ -> raise (Job_failed msg)
        | [] ->
            if !truncated then
              raise (Job_failed "worker returned a truncated result list");
            Array.to_list
              (Array.map
                 (function
                   | Some y -> y | None -> raise (Job_failed "missing result"))
                 slots))
  end
