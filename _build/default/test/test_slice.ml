open Graphkit
open Fbqs

let set = Pid.Set.of_list

let test_domain () =
  let s = Slice.explicit [ set [ 1; 2 ]; set [ 2; 3 ] ] in
  Alcotest.(check bool) "explicit domain" true
    (Pid.Set.equal (Slice.domain s) (set [ 1; 2; 3 ]));
  let t = Slice.threshold ~members:(set [ 4; 5 ]) ~threshold:1 in
  Alcotest.(check bool) "threshold domain" true
    (Pid.Set.equal (Slice.domain t) (set [ 4; 5 ]));
  let none = Slice.threshold ~members:(set [ 4; 5 ]) ~threshold:3 in
  Alcotest.(check bool) "unsatisfiable threshold has empty domain" true
    (Pid.Set.is_empty (Slice.domain none))

let test_slice_count () =
  Alcotest.(check int) "C(5,2)" 10
    (Slice.slice_count (Slice.threshold ~members:(Pid.Set.of_range 1 5) ~threshold:2));
  Alcotest.(check int) "C(4,4)" 1
    (Slice.slice_count (Slice.threshold ~members:(Pid.Set.of_range 1 4) ~threshold:4));
  Alcotest.(check int) "C(4,5) = 0" 0
    (Slice.slice_count (Slice.threshold ~members:(Pid.Set.of_range 1 4) ~threshold:5));
  Alcotest.(check int) "explicit" 2
    (Slice.slice_count (Slice.explicit [ set [ 1 ]; set [ 2 ] ]))

let test_enumerate () =
  let slices =
    Slice.enumerate (Slice.threshold ~members:(set [ 1; 2; 3 ]) ~threshold:2)
  in
  Alcotest.(check int) "three 2-subsets" 3 (List.length slices);
  List.iter
    (fun s -> Alcotest.(check int) "each of size 2" 2 (Pid.Set.cardinal s))
    slices

let test_has_slice_within () =
  let s = Slice.threshold ~members:(set [ 1; 2; 3; 4 ]) ~threshold:3 in
  Alcotest.(check bool) "enough members inside" true
    (Slice.has_slice_within s (set [ 1; 2; 3; 9 ]));
  Alcotest.(check bool) "not enough" false
    (Slice.has_slice_within s (set [ 1; 2; 9 ]));
  Alcotest.(check bool) "unsatisfiable threshold" false
    (Slice.has_slice_within
       (Slice.threshold ~members:(set [ 1 ]) ~threshold:2)
       (set [ 1; 2; 3 ]))

let test_blocking () =
  let s = Slice.threshold ~members:(set [ 1; 2; 3; 4 ]) ~threshold:3 in
  (* A set blocking every 3-of-4 slice must leave fewer than 3 free. *)
  Alcotest.(check bool) "two removed blocks" true
    (Slice.all_slices_intersect s (set [ 1; 2 ]));
  Alcotest.(check bool) "one removed does not block" false
    (Slice.all_slices_intersect s (set [ 1 ]));
  Alcotest.(check bool) "avoiding complement" true
    (Slice.has_slice_avoiding s (set [ 1 ]));
  Alcotest.(check bool) "cannot avoid 2" false
    (Slice.has_slice_avoiding s (set [ 1; 2 ]))

let test_empty_slice_set () =
  let s = Slice.explicit [] in
  Alcotest.(check bool) "nothing within" false
    (Slice.has_slice_within s (set [ 1; 2 ]));
  Alcotest.(check bool) "vacuous intersect" true
    (Slice.all_slices_intersect s (set [ 1 ]));
  Alcotest.(check bool) "nothing avoids" false
    (Slice.has_slice_avoiding s (set [ 1 ]))

(* Symbolic/explicit equivalence: the threshold form must agree with
   its own enumeration on every operation. *)
let arb_threshold_case =
  QCheck.make
    ~print:(fun ((members, threshold), probe) ->
      Format.asprintf "members=%a t=%d probe=%a" Pid.Set.pp
        (Pid.Set.of_list members) threshold Pid.Set.pp (Pid.Set.of_list probe))
    QCheck.Gen.(
      let* members = list_size (int_bound 6) (int_bound 9) in
      let* threshold = int_bound 7 in
      let* probe = list_size (int_bound 6) (int_bound 9) in
      return ((members, threshold), probe))

let equiv_prop name op =
  QCheck.Test.make ~count:500 ~name arb_threshold_case
    (fun ((members, threshold), probe) ->
      let members = Pid.Set.of_list members in
      let probe = Pid.Set.of_list probe in
      let symbolic = Slice.threshold ~members ~threshold in
      let explicit = Slice.explicit (Slice.enumerate symbolic) in
      op symbolic probe = op explicit probe)

let prop_within_equiv =
  equiv_prop "threshold ≡ explicit: has_slice_within" Slice.has_slice_within

let prop_intersect_equiv =
  equiv_prop "threshold ≡ explicit: all_slices_intersect"
    Slice.all_slices_intersect

let prop_avoiding_equiv =
  equiv_prop "threshold ≡ explicit: has_slice_avoiding"
    Slice.has_slice_avoiding

let prop_count_matches_enumeration =
  QCheck.Test.make ~count:300 ~name:"slice_count matches enumeration"
    QCheck.(pair (list_of_size (QCheck.Gen.int_bound 6) (int_bound 9)) (int_bound 7))
    (fun (members, threshold) ->
      let s = Slice.threshold ~members:(Pid.Set.of_list members) ~threshold in
      threshold < 0 || Slice.slice_count s = List.length (Slice.enumerate s))

let suites =
  [
    ( "slice",
      [
        Alcotest.test_case "domain" `Quick test_domain;
        Alcotest.test_case "slice_count" `Quick test_slice_count;
        Alcotest.test_case "enumerate" `Quick test_enumerate;
        Alcotest.test_case "has_slice_within" `Quick test_has_slice_within;
        Alcotest.test_case "blocking arithmetic" `Quick test_blocking;
        Alcotest.test_case "empty slice set" `Quick test_empty_slice_set;
        QCheck_alcotest.to_alcotest prop_within_equiv;
        QCheck_alcotest.to_alcotest prop_intersect_equiv;
        QCheck_alcotest.to_alcotest prop_avoiding_equiv;
        QCheck_alcotest.to_alcotest prop_count_matches_enumeration;
      ] );
  ]
