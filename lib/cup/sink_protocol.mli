(** Algorithm 3 — the distributed sink detector — as simulator
    behaviours, plus a turnkey runner.

    Every process starts a GET_SINK reachable broadcast and runs the
    SINK primitive concurrently (the paper's two [fork]s). Sink members
    terminate SINK directly and answer the GET_SINK requests they
    delivered; non-sink members adopt the first sink value reported by
    more than [f] distinct processes. *)

open Graphkit

type fault =
  | Silent
      (** crashes from the start: contributes nothing anywhere *)
  | Sink_liar of Pid.Set.t
      (** participates honestly in knowledge dissemination and flood
          relaying, but eagerly answers every GET_SINK origin it sees
          with the given fake sink value *)
  | Know_liar of Pid.Set.t
      (** honest except that its [Know] messages additionally claim the
          given fabricated ids (the same lie to everybody) *)

val honest :
  self:Pid.t ->
  pd:Pid.Set.t ->
  f:int ->
  ?max_copies_per_origin:int ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.sink ->
  on_result:(Pid.t -> Sink_oracle.answer -> unit) ->
  unit ->
  Msg.t Simkit.Engine.behavior
(** [metrics] counts discovery traffic ([cup_know_received],
    [cup_sink_replies], [cup_sinks_resolved], plus the [rbcast_*] flood
    counters); [trace] emits scope-["cup"] events ([rb_deliver],
    [sink_resolved]) stamped with the engine's logical time. *)

val faulty :
  self:Pid.t ->
  pd:Pid.Set.t ->
  f:int ->
  ?max_copies_per_origin:int ->
  fault ->
  Msg.t Simkit.Engine.behavior

val resolve_replies : f:int -> Pid.Set.t Pid.Map.t -> Pid.Set.t option
(** The pure wait_sink decision: given the latest claimed sink per
    responder, the candidate view echoed by more than [f] distinct
    responders, or [None]. Ties — several candidates over threshold —
    resolve to the smallest view by [Pid.Set.compare], so the result is
    a function of the reply map alone, never of enumeration order. *)

type run_result = {
  answers : Sink_oracle.answer Pid.Map.t;
      (** one entry per correct process that completed get_sink *)
  stats : Simkit.Engine.stats;
}

val run_cfg :
  ?cfg:Simkit.Run_config.t ->
  ?max_copies_per_origin:int ->
  graph:Digraph.t ->
  f:int ->
  fault_of:(Pid.t -> fault option) ->
  unit ->
  run_result
(** Simulates Algorithm 3 on the whole knowledge graph until every
    correct process has returned from [get_sink] or [cfg.max_time]
    elapses. [fault_of] designates the faulty processes and their
    behaviour. Observability sinks in [cfg] instrument the engine and
    every honest node. *)

val run :
  ?seed:int ->
  ?gst:int ->
  ?delta:int ->
  ?max_time:int ->
  ?max_copies_per_origin:int ->
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.sink ->
  graph:Digraph.t ->
  f:int ->
  fault_of:(Pid.t -> fault option) ->
  unit ->
  run_result
[@@deprecated
  "use run_cfg (default_run_config carries the historical defaults)"]
(** Flat-parameter wrapper over {!run_cfg} preserving the historical
    defaults ([gst] 50, [delta] 10, [max_time] 100_000).
    @deprecated Use {!run_cfg}; {!default_run_config} carries these
    historical timing defaults (which differ from
    {!Simkit.Run_config.default}). *)

val default_run_config : Simkit.Run_config.t
(** The deprecated {!run} wrapper's historical timing:
    {!Simkit.Run_config.default} with [delta = 10] and
    [max_time = 100_000]. The detector settles well before the generic
    200k budget, so its callers historically ran on this shorter,
    coarser clock; migrated callers keep it for byte-stable traces. *)
