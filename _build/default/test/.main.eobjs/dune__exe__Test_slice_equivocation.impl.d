test/test_slice_equivocation.ml: Alcotest Fbqs Graphkit List Pid QCheck QCheck_alcotest Runner Scp Value
