lib/scp/ballot.ml: Format Int Value
