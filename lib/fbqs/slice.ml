open Graphkit

type t =
  | Explicit of Pid.Set.t list
  | Threshold of { members : Pid.Set.t; threshold : int }

let explicit slices = Explicit slices
let threshold ~members ~threshold = Threshold { members; threshold }

let pp ppf = function
  | Explicit slices ->
      Format.fprintf ppf "@[<h>[%a]@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Pid.Set.pp)
        slices
  | Threshold { members; threshold } ->
      Format.fprintf ppf "any %d of %a" threshold Pid.Set.pp members

let equal a b =
  match (a, b) with
  | Explicit xs, Explicit ys ->
      List.length xs = List.length ys && List.for_all2 Pid.Set.equal xs ys
  | Threshold a, Threshold b ->
      a.threshold = b.threshold && Pid.Set.equal a.members b.members
  | Explicit _, Threshold _ | Threshold _, Explicit _ -> false

let domain = function
  | Explicit slices -> List.fold_left Pid.Set.union Pid.Set.empty slices
  | Threshold { members; threshold } ->
      if threshold > Pid.Set.cardinal members then Pid.Set.empty else members

(* C(n, k) saturating at max_int. *)
let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc' = acc * (n - k + i) / i in
        if acc' < acc then max_int else go acc' (i + 1)
    in
    go 1 1
  end

let slice_count = function
  | Explicit slices -> List.length slices
  | Threshold { members; threshold } ->
      binomial (Pid.Set.cardinal members) threshold

let enumerate = function
  | Explicit slices -> slices
  | Threshold { members; threshold } as t ->
      if slice_count t > 100_000 then
        invalid_arg "Slice.enumerate: symbolic slice set too large";
      if threshold <= 0 then [ Pid.Set.empty ]
      else
        let elts = Array.of_list (Pid.Set.elements members) in
        let n = Array.length elts in
        if threshold > n then []
        else begin
          (* All size-[threshold] subsets by iterating index vectors in
             lexicographic order — the same order the old recursive
             construction produced, without its quadratic appends. *)
          let idx = Array.init threshold (fun j -> j) in
          let acc = ref [] in
          let running = ref true in
          while !running do
            let s = ref Pid.Set.empty in
            for j = threshold - 1 downto 0 do
              s := Pid.Set.add elts.(idx.(j)) !s
            done;
            acc := !s :: !acc;
            let j = ref (threshold - 1) in
            while !j >= 0 && idx.(!j) = n - threshold + !j do
              decr j
            done;
            if !j < 0 then running := false
            else begin
              idx.(!j) <- idx.(!j) + 1;
              for k = !j + 1 to threshold - 1 do
                idx.(k) <- idx.(k - 1) + 1
              done
            end
          done;
          List.rev !acc
        end

let has_slice_within t q =
  match t with
  | Explicit slices -> List.exists (fun s -> Pid.Set.subset s q) slices
  | Threshold { members; threshold } ->
      threshold <= Pid.Set.cardinal members
      && Pid.Set.cardinal (Pid.Set.inter members q) >= threshold

let all_slices_intersect t b =
  match t with
  | Explicit slices ->
      List.for_all (fun s -> not (Pid.Set.is_empty (Pid.Set.inter s b))) slices
  | Threshold { members; threshold } ->
      if threshold > Pid.Set.cardinal members then true
        (* no slices: vacuous *)
      else if threshold <= 0 then false (* the empty slice avoids any b *)
      else Pid.Set.cardinal (Pid.Set.diff members b) < threshold

let has_slice_avoiding t b =
  (match t with
  | Explicit [] -> false
  | Explicit _ -> true
  | Threshold { members; threshold } ->
      threshold <= Pid.Set.cardinal members)
  && not (all_slices_intersect t b)

let map_members f = function
  | Explicit slices -> Explicit (List.map (Pid.Set.map f) slices)
  | Threshold { members; threshold } ->
      Threshold { members = Pid.Set.map f members; threshold }
