open Graphkit

let sink_threshold ~sink_size ~f = (sink_size + f + 2) / 2

let build_slices ~f (answer : Sink_oracle.answer) =
  let members = answer.view in
  let threshold =
    if answer.in_sink then
      sink_threshold ~sink_size:(Pid.Set.cardinal members) ~f
    else f + 1
  in
  Fbqs.Slice.threshold ~members ~threshold

let system_via_oracle ?oracle ~f g =
  let oracle =
    match oracle with Some o -> o | None -> Sink_oracle.get_sink g
  in
  Pid.Set.fold
    (fun i sys -> Pid.Map.add i (build_slices ~f (oracle i)) sys)
    (Digraph.vertices g) Pid.Map.empty
