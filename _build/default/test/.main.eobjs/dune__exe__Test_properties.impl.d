test/test_properties.ml: Alcotest Builtin Digraph Graphkit Pid Printf Properties
