(** A full SCP node: nomination plus the ballot protocol, built on
    federated voting over the {!Statement} families and driven by the
    simulator.

    Protocol sketch (Mazières 2015, simplified to statement-level
    federated voting as in the formal deconstructions of SCP):

    - {b Nomination}: every node votes to nominate its own initial
      value, and echoes votes for values it sees until it obtains a
      candidate (a {e confirmed} nominated value). Candidates are merged
      with {!Value.combine}.
    - {b Ballots}: with candidates in hand the node walks ballots
      [(n, x)]. It votes [Prepare (n, x)] (aborting lower incompatible
      ballots), accepts/confirms through federated voting, votes
      [Commit] once the ballot is confirmed prepared, and externalizes
      (decides) when [Commit] is confirmed. A timer bumps the counter
      with a freshly combined value when a ballot stalls; accepting a
      higher prepared ballot makes the node jump to it.

    Safety rests solely on quorum intersection of the slice system, so
    running this node over slices that are not intertwined (Theorem 2's
    local slices) exhibits real agreement violations — experiment E3. *)

open Graphkit

type decision = { value : Value.t; ballot : Ballot.t; time : int }

val pp_decision : Format.formatter -> decision -> unit

type nomination_strategy =
  | Echo_all
      (** every node nominates its own value and seconds every value it
          sees until it has a candidate — simple, message-heavy *)
  | Leader_priority of int
      (** stellar-style: nodes follow a deterministic priority order
          over their slice domain; only the current leaders' values are
          nominated/echoed, and a new leader is admitted every given
          timeout until a candidate emerges — drastically fewer
          nomination votes *)

type config = {
  self : Pid.t;
  my_slices : Fbqs.Slice.t;
      (** this node's declared slice set, attached to every envelope it
          sends; the slices of other nodes are learned from the
          envelopes they (or relayers) deliver *)
  initial_peers : Pid.Set.t;
      (** processes this node can contact initially (its slice domain /
          PD set); grows as unknown peers make contact *)
  initial_value : Value.t;
  ballot_timeout : int;  (** base timeout; ballot [n] waits [n] times it *)
  nomination : nomination_strategy;
  on_decide : Pid.t -> decision -> unit;  (** fired exactly once *)
}

val priority : Pid.t -> int
(** The deterministic nomination priority of a node (a hash; higher
    wins). Shared by all nodes, so nodes with equal domains compute
    equal leader sets. *)

val behavior :
  ?metrics:Obs.Metrics.t ->
  ?trace:Obs.Trace.sink ->
  config ->
  Msg.t Simkit.Engine.behavior
(** [metrics] registers and bumps the [scp_*] counters (votes, accepts,
    confirms, ballots entered, nomination rounds, decisions, plus the
    federated-voting quorum/v-blocking check counters); [trace] emits
    scope-["scp"] events ([vote], [accept], [confirm], [enter_ballot],
    [nomination_round], [decide]) stamped with the engine's logical
    time. *)

(** Byzantine SCP behaviours used by the experiments. *)

val silent : Msg.t Simkit.Engine.behavior

val accept_forger :
  self:Pid.t ->
  slices:Fbqs.Slice.t ->
  peers:Pid.Set.t ->
  Statement.t list ->
  Msg.t Simkit.Engine.behavior
(** Broadcasts unjustified [Accept] envelopes for the given statements
    at start-up and relays nothing else: correct nodes must ignore them
    unless a v-blocking set corroborates. *)

val nomination_equivocator :
  self:Pid.t ->
  slices:Fbqs.Slice.t ->
  split:(Pid.t -> bool) ->
  value_a:Value.t ->
  value_b:Value.t ->
  peers:Pid.Set.t ->
  Msg.t Simkit.Engine.behavior
(** Votes to nominate [value_a] towards peers satisfying [split] and
    [value_b] towards the rest, then stays quiet — a classic
    equivocation attempt on nomination. *)

val slice_equivocator :
  self:Pid.t ->
  slices_a:Fbqs.Slice.t ->
  slices_b:Fbqs.Slice.t ->
  split:(Pid.t -> bool) ->
  value:Value.t ->
  peers:Pid.Set.t ->
  Msg.t Simkit.Engine.behavior
(** Declares different slice sets to different peers while nominating
    [value]: receivers pin the first declaration they see, so the
    equivocation splits their views of this node's trust choices. *)
