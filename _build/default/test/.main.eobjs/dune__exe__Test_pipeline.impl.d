test/test_pipeline.ml: Alcotest Builtin Generators Graphkit Pid Pipeline QCheck QCheck_alcotest Scp Simkit Stellar_cup
