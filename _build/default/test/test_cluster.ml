open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let fig1_system =
  Quorum.system_of_list
    (List.map
       (fun (i, slices) -> (i, Slice.explicit slices))
       Graphkit.Builtin.fig1_slices)

let w = Pid.Set.of_range 1 7
let mode = Intertwine.Correct_witness w

let test_fig1_clusters () =
  (* Section III-D: "there are a few consensus clusters, such as
     C1 = {5,6,7} and C2 = {1,...,7}". *)
  Alcotest.(check bool) "C1 = {5,6,7}" true
    (Cluster.is_consensus_cluster fig1_system ~correct:w ~mode (set [ 5; 6; 7 ]));
  Alcotest.(check bool) "C2 = W" true
    (Cluster.is_consensus_cluster fig1_system ~correct:w ~mode w)

let test_fig1_maximal_unique () =
  (* "C2 is the only maximal consensus cluster". *)
  match Cluster.maximal_clusters fig1_system ~correct:w ~mode () with
  | [ c ] -> Alcotest.check pid_set "maximal is W" w c
  | cs -> Alcotest.failf "expected a unique maximal cluster, got %d" (List.length cs)

let test_fig1_grand_cluster () =
  Alcotest.(check bool) "grand cluster holds" true
    (Cluster.grand_cluster fig1_system ~correct:w ~mode ())

let test_not_a_cluster_without_availability () =
  (* {1,2} has no quorum inside it (2 needs 4). *)
  Alcotest.(check bool) "availability fails" false
    (Cluster.is_consensus_cluster fig1_system ~correct:w ~mode (set [ 1; 2 ]));
  Alcotest.(check bool) "quorum_available" false
    (Cluster.quorum_available fig1_system (set [ 1; 2 ]))

let test_split_system_two_maximal_clusters () =
  (* Two self-trusting cliques: each is a cluster, neither is maximal
     over the other, and together they are not intertwined. *)
  let sys =
    Quorum.system_of_list
      [
        (1, Slice.explicit [ set [ 1; 2 ] ]);
        (2, Slice.explicit [ set [ 1; 2 ] ]);
        (3, Slice.explicit [ set [ 3; 4 ] ]);
        (4, Slice.explicit [ set [ 3; 4 ] ]);
      ]
  in
  let correct = Pid.Set.of_range 1 4 in
  let mode = Intertwine.Correct_witness correct in
  let maximal = Cluster.maximal_clusters sys ~correct ~mode () in
  Alcotest.(check int) "two maximal clusters" 2 (List.length maximal);
  Alcotest.(check bool) "no grand cluster" false
    (Cluster.grand_cluster sys ~correct ~mode ())

let test_empty_and_subset_rules () =
  Alcotest.(check bool) "empty set is no cluster" false
    (Cluster.is_consensus_cluster fig1_system ~correct:w ~mode Pid.Set.empty);
  Alcotest.(check bool) "cluster must be within correct" false
    (Cluster.is_consensus_cluster fig1_system ~correct:(set [ 5; 6 ]) ~mode
       (set [ 5; 6; 7 ]))

let suites =
  [
    ( "cluster",
      [
        Alcotest.test_case "fig1 clusters from the paper" `Quick
          test_fig1_clusters;
        Alcotest.test_case "fig1 unique maximal cluster" `Quick
          test_fig1_maximal_unique;
        Alcotest.test_case "fig1 grand cluster" `Quick test_fig1_grand_cluster;
        Alcotest.test_case "availability required" `Quick
          test_not_a_cluster_without_availability;
        Alcotest.test_case "split system: two maximal clusters" `Quick
          test_split_system_two_maximal_clusters;
        Alcotest.test_case "edge rules" `Quick test_empty_and_subset_rules;
      ] );
  ]
