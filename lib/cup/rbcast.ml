open Graphkit

type origin_state = {
  mutable paths : Pid.t list list;  (* validated relay paths, origin first *)
  mutable forwarded : int;
  mutable delivered : bool;
}

type t = {
  self : Pid.t;
  neighbors : Pid.Set.t;
  f : int;
  max_copies : int;
  states : (Pid.t, origin_state) Hashtbl.t;
  c_broadcasts : Obs.Metrics.counter option;
  c_relays : Obs.Metrics.counter option;
  c_deliveries : Obs.Metrics.counter option;
}

let create ~self ~neighbors ~f ?max_copies_per_origin ?metrics () =
  let max_copies =
    Option.value ~default:(4 * (f + 1)) max_copies_per_origin
  in
  let c name = Option.map (fun r -> Obs.Metrics.counter r name) metrics in
  {
    self;
    neighbors = Pid.Set.remove self neighbors;
    f;
    max_copies;
    states = Hashtbl.create 8;
    c_broadcasts = c "rbcast_broadcasts";
    c_relays = c "rbcast_relays";
    c_deliveries = c "rbcast_deliveries";
  }

let bump = function Some c -> Obs.Metrics.incr c | None -> ()

let state_for t origin =
  match Hashtbl.find_opt t.states origin with
  | Some s -> s
  | None ->
      let s = { paths = []; forwarded = 0; delivered = false } in
      Hashtbl.replace t.states origin s;
      s

let broadcast t ~send =
  bump t.c_broadcasts;
  (* The origin trivially "delivers" its own broadcast. *)
  (state_for t t.self).delivered <- true;
  Pid.Set.iter
    (fun j -> send j (Msg.Get_sink { origin = t.self; path = [ t.self ] }))
    t.neighbors

let rec no_dup = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && no_dup rest

let valid_path t ~src ~origin path =
  match path with
  | [] -> false
  | first :: _ ->
      Pid.equal first origin
      && (match List.rev path with
         | last :: _ -> Pid.equal last src
         | [] -> false)
      && no_dup path
      && not (List.mem t.self path)

(* Internal vertices of a path from the receiver's standpoint: every
   relayer after the origin. *)
let internals = function [] -> [] | _origin :: rest -> rest

let disjoint p q =
  not (List.exists (fun x -> List.mem x (internals q)) (internals p))

(* Exact search for [needed] pairwise internally-disjoint paths. *)
let rec pick chosen candidates needed =
  needed = 0
  ||
  match candidates with
  | [] -> false
  | p :: rest ->
      (List.for_all (disjoint p) chosen
      && pick (p :: chosen) rest (needed - 1))
      || pick chosen rest needed

let delivery_rule t st ~src ~origin =
  Pid.equal src origin
  ||
  let by_length =
    List.sort
      (fun a b -> Int.compare (List.length a) (List.length b))
      st.paths
  in
  pick [] by_length (t.f + 1)

let on_get_sink t ~send ~src ~origin ~path =
  if not (valid_path t ~src ~origin path) then None
  else begin
    let st = state_for t origin in
    if not (List.mem path st.paths) then begin
      st.paths <- path :: st.paths;
      (* Relay with ourselves appended, respecting the traffic cap. *)
      if st.forwarded < t.max_copies then begin
        st.forwarded <- st.forwarded + 1;
        bump t.c_relays;
        let extended = path @ [ t.self ] in
        Pid.Set.iter
          (fun j ->
            if (not (List.mem j path)) && not (Pid.equal j origin) then
              send j (Msg.Get_sink { origin; path = extended }))
          t.neighbors
      end
    end;
    if (not st.delivered) && delivery_rule t st ~src ~origin then begin
      st.delivered <- true;
      bump t.c_deliveries;
      Some origin
    end
    else None
  end

let delivered t =
  (* Enumeration order is irrelevant: the fold lands in [Pid.Set.add],
     an order-insensitive D1 ordering step. *)
  Hashtbl.fold
    (fun origin st acc ->
      if st.delivered && not (Pid.equal origin t.self) then
        Pid.Set.add origin acc
      else acc)
    t.states Pid.Set.empty
