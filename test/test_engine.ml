open Simkit

type msg = Ping of int | Pong of int

let test_ping_pong () =
  let delay = Delay.synchronous ~delta:1 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let pongs = ref [] in
  let pinger : msg Engine.behavior =
    {
      on_start = (fun ctx -> Engine.send ctx 2 (Ping 0));
      on_message =
        (fun ctx ~src:_ -> function
          | Pong n when n < 3 -> Engine.send ctx 2 (Ping (n + 1))
          | Pong n -> pongs := n :: !pongs
          | Ping _ -> ());
      on_timer = (fun _ _ -> ());
    }
  in
  let ponger : msg Engine.behavior =
    {
      Engine.idle_behavior with
      on_message =
        (fun ctx ~src -> function
          | Ping n -> Engine.send ctx src (Pong n)
          | Pong _ -> ());
    }
  in
  Engine.add_node engine 1 pinger;
  Engine.add_node engine 2 ponger;
  let stats = Engine.run engine in
  Alcotest.(check (list int)) "last pong" [ 3 ] !pongs;
  Alcotest.(check int) "4 pings + 4 pongs" 8 stats.messages_sent;
  Alcotest.(check int) "all delivered" 8 stats.messages_delivered

let test_timer () =
  let delay = Delay.synchronous ~delta:1 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let fired = ref [] in
  let node : unit Engine.behavior =
    {
      Engine.idle_behavior with
      on_start =
        (fun ctx ->
          Engine.set_timer ctx ~delay:10 "a";
          Engine.set_timer ctx ~delay:5 "b");
      on_timer = (fun ctx tag -> fired := (Engine.now ctx, tag) :: !fired);
    }
  in
  Engine.add_node engine 1 { node with on_timer = node.on_timer };
  let stats = Engine.run engine in
  Alcotest.(check (list (pair int string)))
    "timers fire in order"
    [ (5, "b"); (10, "a") ]
    (List.rev !fired);
  Alcotest.(check int) "two timers" 2 stats.timers_fired

let test_send_to_unknown_is_dropped () =
  let delay = Delay.synchronous ~delta:1 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let node : unit Engine.behavior =
    {
      Engine.idle_behavior with
      on_start = (fun ctx -> Engine.send ctx 99 ());
    }
  in
  Engine.add_node engine 1 node;
  let stats = Engine.run engine in
  Alcotest.(check int) "sent" 1 stats.messages_sent;
  Alcotest.(check int) "not delivered" 0 stats.messages_delivered

let test_partial_synchrony_bound () =
  (* Every message sent before GST must arrive by GST + delta. *)
  let gst = 40 and delta = 5 in
  let delay = Delay.partial_synchrony ~gst ~delta ~seed:7 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let deliveries = ref [] in
  let sender : int Engine.behavior =
    {
      Engine.idle_behavior with
      on_start =
        (fun ctx ->
          for i = 1 to 20 do
            Engine.send ctx 2 i
          done);
    }
  in
  let receiver : int Engine.behavior =
    {
      Engine.idle_behavior with
      on_message = (fun ctx ~src:_ _ -> deliveries := Engine.now ctx :: !deliveries);
    }
  in
  Engine.add_node engine 1 sender;
  Engine.add_node engine 2 receiver;
  ignore (Engine.run engine);
  Alcotest.(check int) "all delivered" 20 (List.length !deliveries);
  List.iter
    (fun t ->
      if t > gst + delta then
        Alcotest.failf "message delivered at %d, after GST+delta=%d" t
          (gst + delta))
    !deliveries

let test_determinism () =
  let run_once () =
    let delay = Delay.partial_synchrony ~gst:20 ~delta:3 ~seed:11 in
    let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
    let log = ref [] in
    let chatter self peer : int Engine.behavior =
      {
        on_start = (fun ctx -> Engine.send ctx peer self);
        on_message =
          (fun ctx ~src m ->
            log := (Engine.now ctx, src, m) :: !log;
            if m < 10 then Engine.send ctx src (m + 1));
        on_timer = (fun _ _ -> ());
      }
    in
    let engine_add () =
      Engine.add_node engine 1 (chatter 1 2);
      Engine.add_node engine 2 (chatter 2 1)
    in
    engine_add ();
    ignore (Engine.run engine);
    !log
  in
  Alcotest.(check bool) "same seed twice, identical executions" true
    (run_once () = run_once ())

let test_stop_predicate () =
  let delay = Delay.synchronous ~delta:1 in
  let engine = Engine.create_cfg { Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  let count = ref 0 in
  let looper : unit Engine.behavior =
    {
      Engine.idle_behavior with
      on_start = (fun ctx -> Engine.set_timer ctx ~delay:1 "tick");
      on_timer =
        (fun ctx _ ->
          incr count;
          Engine.set_timer ctx ~delay:1 "tick");
    }
  in
  Engine.add_node engine 1 looper;
  ignore (Engine.run ~stop:(fun () -> !count >= 5) engine);
  Alcotest.(check int) "stopped at 5" 5 !count

let suites =
  [
    ( "engine",
      [
        Alcotest.test_case "ping-pong" `Quick test_ping_pong;
        Alcotest.test_case "timers" `Quick test_timer;
        Alcotest.test_case "unknown destination dropped" `Quick
          test_send_to_unknown_is_dropped;
        Alcotest.test_case "partial synchrony delivery bound" `Quick
          test_partial_synchrony_bound;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "stop predicate" `Quick test_stop_predicate;
      ] );
  ]
