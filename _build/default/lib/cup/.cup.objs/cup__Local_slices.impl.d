lib/cup/local_slices.ml: Fbqs Graphkit Participant_detector Pid
