type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  chain : string list;
}

type report = { active : finding list; suppressed : finding list }

let mk ~file ~line ~col ~rule ~message =
  { file; line; col; rule; message; chain = [] }

let chain_suffix f =
  match f.chain with
  | [] -> ""
  | c -> Printf.sprintf " (chain: %s)" (String.concat " -> " c)

let to_string f =
  Printf.sprintf "%s:%d:%d [%s] %s%s" f.file f.line f.col f.rule f.message
    (chain_suffix f)

let baseline_key f = Printf.sprintf "%s:%d [%s]" f.file f.line f.rule

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Suppression comments                                               *)
(* ------------------------------------------------------------------ *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let is_rule_char c = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let allowed_rules_of_line line =
  match find_substring line "lint: allow" with
  | None -> []
  | Some i ->
      let n = String.length line in
      let rec tokens i acc =
        let rec skip i =
          if i < n && (line.[i] = ' ' || line.[i] = ',') then skip (i + 1)
          else i
        in
        let i = skip i in
        let rec stop j =
          if j < n && is_rule_char line.[j] then stop (j + 1) else j
        in
        let j = stop i in
        if j > i then tokens j (String.sub line i (j - i) :: acc)
        else List.rev acc
      in
      tokens (i + String.length "lint: allow") []

(* line number (1-based) -> rules allowed on that line *)
let allows_of_text text =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match allowed_rules_of_line line with
      | [] -> ()
      | rules -> Hashtbl.replace tbl (i + 1) rules)
    (String.split_on_char '\n' text);
  tbl

(* T1 is the typed successor of the syntactic D3 heuristic: an
   existing [allow D3] site keeps waiving the same hazard when the
   typed pass re-derives it as T1. *)
let rule_alias = function "T1" -> Some "D3" | _ -> None

let is_allowed allows f =
  let at line =
    match Hashtbl.find_opt allows line with
    | Some rules ->
        List.mem f.rule rules
        || (match rule_alias f.rule with
           | Some alias -> List.mem alias rules
           | None -> false)
    | None -> false
  in
  at f.line || at (f.line - 1)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Partition findings through the allow comments of their source
   files, read from disk under [root]. Files that cannot be read
   (generated units, out-of-tree sources) carry no allows. *)
let apply_allows ~root findings =
  let allows_of_file = Hashtbl.create 16 in
  let allows file =
    match Hashtbl.find_opt allows_of_file file with
    | Some tbl -> tbl
    | None ->
        let tbl =
          match read_file (Filename.concat root file) with
          | text -> allows_of_text text
          | exception _ -> Hashtbl.create 1
        in
        Hashtbl.add allows_of_file file tbl;
        tbl
  in
  let suppressed, active =
    List.partition (fun f -> is_allowed (allows f.file) f) findings
  in
  {
    active = List.sort compare_finding active;
    suppressed = List.sort compare_finding suppressed;
  }

(* ------------------------------------------------------------------ *)
(* Baseline                                                           *)
(* ------------------------------------------------------------------ *)

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line ->
              let line = String.trim line in
              if line = "" || line.[0] = '#' then go acc else go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

let baseline_header =
  "# stellar-lint baseline — grandfathered findings, one\n\
   # \"file:line [RULE]\" entry per line (see DESIGN.md §11). Entries\n\
   # are line-keyed, so a baselined finding gates again as soon as its\n\
   # site moves; regenerate with `stellar-lint --baseline-update`. The\n\
   # gate lands strict: keep this file empty and prefer a per-site\n\
   # (* lint: allow RULE — reason *) comment, which is visible where\n\
   # the hazard lives.\n"

let render_baseline findings =
  let keys =
    List.sort_uniq String.compare (List.map baseline_key findings)
  in
  baseline_header ^ String.concat "" (List.map (fun k -> k ^ "\n") keys)

(* ------------------------------------------------------------------ *)
(* Machine-readable reports                                           *)
(* ------------------------------------------------------------------ *)

let finding_json status f =
  let base =
    [
      ("file", Obs.Json.String f.file);
      ("line", Obs.Json.Int f.line);
      ("col", Obs.Json.Int f.col);
      ("rule", Obs.Json.String f.rule);
      ("message", Obs.Json.String f.message);
      ("status", Obs.Json.String status);
    ]
  in
  Obs.Json.Obj
    (if f.chain = [] then base
     else
       base
       @ [
           ( "chain",
             Obs.Json.List (List.map (fun c -> Obs.Json.String c) f.chain) );
         ])

(* SARIF 2.1.0, the minimal subset GitHub code scanning ingests: one
   run, one rule entry per distinct rule id, one result per finding.
   Gating findings are errors; baselined and allow-suppressed ones are
   notes carrying a suppression record, so viewers can filter them the
   same way the exit code does. *)
let sarif_doc ~gating ~baselined ~suppressed =
  let rule_ids =
    List.sort_uniq String.compare
      (List.map (fun f -> f.rule) (gating @ baselined @ suppressed))
  in
  let result ~level ~suppression f =
    let fields =
      [
        ("ruleId", Obs.Json.String f.rule);
        ("level", Obs.Json.String level);
        ( "message",
          Obs.Json.Obj
            [ ("text", Obs.Json.String (f.message ^ chain_suffix f)) ] );
        ( "locations",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ( "physicalLocation",
                    Obs.Json.Obj
                      [
                        ( "artifactLocation",
                          Obs.Json.Obj [ ("uri", Obs.Json.String f.file) ] );
                        ( "region",
                          Obs.Json.Obj
                            [
                              ("startLine", Obs.Json.Int f.line);
                              ("startColumn", Obs.Json.Int (f.col + 1));
                            ] );
                      ] );
                ];
            ] );
      ]
    in
    let fields =
      match suppression with
      | None -> fields
      | Some kind ->
          fields
          @ [
              ( "suppressions",
                Obs.Json.List
                  [ Obs.Json.Obj [ ("kind", Obs.Json.String kind) ] ] );
            ]
    in
    Obs.Json.Obj fields
  in
  Obs.Json.Obj
    [
      ( "$schema",
        Obs.Json.String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Obs.Json.String "2.1.0");
      ( "runs",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ( "tool",
                  Obs.Json.Obj
                    [
                      ( "driver",
                        Obs.Json.Obj
                          [
                            ("name", Obs.Json.String "stellar-lint");
                            ("version", Obs.Json.String "2");
                            ( "rules",
                              Obs.Json.List
                                (List.map
                                   (fun id ->
                                     Obs.Json.Obj
                                       [ ("id", Obs.Json.String id) ])
                                   rule_ids) );
                          ] );
                    ] );
                ( "results",
                  Obs.Json.List
                    (List.map (result ~level:"error" ~suppression:None) gating
                    @ List.map
                        (result ~level:"note" ~suppression:(Some "external"))
                        baselined
                    @ List.map
                        (result ~level:"note" ~suppression:(Some "inSource"))
                        suppressed) );
              ];
          ] );
    ]
