open Graphkit

let set = Pid.Set.of_list

let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_of_range () =
  Alcotest.check pid_set "1..4" (set [ 1; 2; 3; 4 ]) (Pid.Set.of_range 1 4);
  Alcotest.check pid_set "singleton" (set [ 7 ]) (Pid.Set.of_range 7 7);
  Alcotest.check pid_set "empty when hi < lo" Pid.Set.empty
    (Pid.Set.of_range 5 4)

let test_choose_distinct () =
  (match Pid.Set.choose_distinct 2 (set [ 3; 1; 2 ]) with
  | Some [ 1; 2 ] -> ()
  | Some other ->
      Alcotest.failf "unexpected choice %a" Fmt.(Dump.list int) other
  | None -> Alcotest.fail "expected a choice");
  Alcotest.(check bool)
    "too few elements" true
    (Pid.Set.choose_distinct 4 (set [ 1; 2 ]) = None);
  Alcotest.(check bool)
    "zero elements always works" true
    (Pid.Set.choose_distinct 0 Pid.Set.empty = Some [])

let test_map_keys () =
  let m = Pid.Map.(add 1 "a" (add 9 "b" empty)) in
  Alcotest.check pid_set "keys" (set [ 1; 9 ]) (Pid.Map.keys m)

let prop_of_range_cardinal =
  QCheck.Test.make ~count:100 ~name:"of_range cardinality"
    QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (lo, len) ->
      Pid.Set.cardinal (Pid.Set.of_range lo (lo + len)) = len + 1)

let suites =
  [
    ( "pid",
      [
        Alcotest.test_case "of_range" `Quick test_of_range;
        Alcotest.test_case "choose_distinct" `Quick test_choose_distinct;
        Alcotest.test_case "map keys" `Quick test_map_keys;
        QCheck_alcotest.to_alcotest prop_of_range_cardinal;
      ] );
  ]
