open Graphkit

let sink_threshold ~sink_size ~f = (sink_size + f + 2) / 2

let build_slices ~f (answer : Sink_oracle.answer) =
  let members = answer.view in
  let threshold =
    if answer.in_sink then
      sink_threshold ~sink_size:(Pid.Set.cardinal members) ~f
    else f + 1
  in
  Fbqs.Slice.threshold ~members ~threshold

let system_via_oracle ?oracle ~f g =
  let oracle =
    match oracle with
    | Some o -> o
    | None ->
        (* Lazily, so a graph that is never queried is never condensed
           (and an ill-formed one only raises once a query happens). *)
        let o = lazy (Sink_oracle.shared g) in
        fun i -> (Lazy.force o) i
  in
  (* Algorithm 2 gives every process with the same oracle answer the
     same slice set, so share one [Slice.t] record per distinct
     (in_sink, view) answer: the quorum compiler then sees one
     threshold class for the whole sink instead of |V_sink| copies. *)
  let memo = ref [] in
  let slices_for (a : Sink_oracle.answer) =
    match
      List.find_opt
        (fun ((b : Sink_oracle.answer), _) ->
          b.in_sink = a.in_sink && b.view == a.view)
        !memo
    with
    | Some (_, s) -> s
    | None ->
        let s = build_slices ~f a in
        memo := (a, s) :: !memo;
        s
  in
  Pid.Set.fold
    (fun i sys -> Pid.Map.add i (slices_for (oracle i)) sys)
    (Digraph.vertices g) Pid.Map.empty
