lib/cup/slice_builder.ml: Digraph Fbqs Graphkit Pid Sink_oracle
