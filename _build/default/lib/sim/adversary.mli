(** Byzantine behaviour combinators.

    The adversary is static: the faulty set [F] is fixed before the
    execution (Section III-A). Faulty processes can behave arbitrarily;
    this module provides the generic building blocks, and each protocol
    adds its own protocol-aware malicious variants. *)

open Graphkit

val silent : 'm Engine.behavior
(** Never sends anything — the failure mode Lemma 2's proof relies on. *)

val crash_after : int -> 'm Engine.behavior -> 'm Engine.behavior
(** Behaves correctly until the given time, then ignores all events. *)

val drop_messages_from : Pid.Set.t -> 'm Engine.behavior -> 'm Engine.behavior
(** Pretends not to receive anything from the given processes. Note the
    engine stamps true sender ids, so impersonation is impossible
    (authenticated channels); richer equivocation is protocol-specific
    and lives next to each protocol. *)
