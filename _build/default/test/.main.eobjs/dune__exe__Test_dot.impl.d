test/test_dot.ml: Alcotest Digraph Dot Filename Graphkit Pid String Sys
