test/test_scp_run.ml: Alcotest Ballot Builtin Cup Digraph Fbqs Generators Graphkit List Node Pid Printf QCheck QCheck_alcotest Runner Scp Simkit Statement Value
