(* A Stellar-mainnet-like tiered network.

   Four "organizations" run three validators each. Every validator's
   quorum slices require two-of-three validators from its own
   organization and from two of the three other organizations — the
   classic tiered configuration of the public Stellar network. We
   analyse the resulting FBQS and run consensus with one whole
   organization Byzantine-silent.

   Run with: dune exec examples/stellar_network.exe *)

open Graphkit

let orgs = 4
let per_org = 3
let validators = orgs * per_org

(* validator ids: org k (0-based) owns [3k+1; 3k+2; 3k+3] *)
let org_of v = (v - 1) / per_org
let members_of_org k = List.init per_org (fun i -> (k * per_org) + i + 1)

(* All 2-of-3 subsets of one organization. *)
let pairs_of_org k =
  match members_of_org k with
  | [ a; b; c ] ->
      [ Pid.Set.of_list [ a; b ]; Pid.Set.of_list [ a; c ];
        Pid.Set.of_list [ b; c ] ]
  | _ -> assert false

(* Slices of validator v: two-of-three from its own org, plus
   two-of-three from each of two other organizations. *)
let slices_of v =
  let own = org_of v in
  let others = List.filter (fun k -> k <> own) (List.init orgs Fun.id) in
  let org_choices =
    (* all 2-subsets of the other three orgs *)
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) others)
      others
  in
  let slices =
    List.concat_map
      (fun (oa, ob) ->
        List.concat_map
          (fun pa ->
            List.concat_map
              (fun pb ->
                List.map
                  (fun po -> Pid.Set.union po (Pid.Set.union pa pb))
                  (pairs_of_org own))
              (pairs_of_org ob))
          (pairs_of_org oa))
      org_choices
  in
  Fbqs.Slice.explicit slices

let () =
  Format.printf "Tiered Stellar network: %d organizations x %d validators@."
    orgs per_org;
  let system =
    Fbqs.Quorum.system_of_list
      (List.init validators (fun i -> (i + 1, slices_of (i + 1))))
  in
  let all = Pid.Set.of_range 1 validators in

  Format.printf "@.--- Quorum structure ---@.";
  Format.printf "slices per validator: %d (each of size 6)@."
    (Fbqs.Slice.slice_count (slices_of 1));
  let minimal = Fbqs.Quorum.minimal_quorums system in
  let smallest =
    List.fold_left (fun acc q -> min acc (Pid.Set.cardinal q)) max_int minimal
  in
  Format.printf "minimal quorums: %d; smallest size: %d@."
    (List.length minimal) smallest;

  Format.printf "@.--- Fault tolerance analysis ---@.";
  (* One whole org down: the rest must still be a consensus cluster. *)
  List.iter
    (fun dead_org ->
      let faulty = Pid.Set.of_list (members_of_org dead_org) in
      let correct = Pid.Set.diff all faulty in
      let ok =
        Fbqs.Cluster.is_consensus_cluster system ~correct
          ~mode:(Fbqs.Intertwine.Correct_witness correct) correct
      in
      Format.printf "org %d down -> remaining 9 form a consensus cluster: %b@."
        dead_org ok)
    [ 0; 1; 2; 3 ];

  Format.printf "@.--- Live consensus with org 3 silent ---@.";
  let faulty = Pid.Set.of_list (members_of_org 3) in
  let outcome =
    Scp.Runner.run_cfg ~cfg:Scp.Runner.default_cfg ~system
      ~peers_of:(fun _ -> all)
      ~initial_value_of:(fun i -> Scp.Value.of_ints [ 1000 + i ])
      ~fault_of:(fun i ->
        if Pid.Set.mem i faulty then Some Scp.Runner.Silent else None)
      ()
  in
  Format.printf "%a@." Scp.Runner.pp_outcome outcome;
  Format.printf "ledger closed despite a full organization outage: %b@."
    (outcome.all_decided && outcome.agreement)
