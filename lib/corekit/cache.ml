(* Keyed LRU with uniform stats. The entry list is short (handle caches
   hold tens of entries, not thousands), so a plain list with promote-
   on-hit is both the simplest and the fastest structure: one traversal
   per lookup, no hashing of possibly-large keys (the handle caches key
   by physical equality of whole systems/graphs). *)

type observer = {
  o_hits : Obs.Metrics.counter;
  o_misses : Obs.Metrics.counter;
  o_evictions : Obs.Metrics.counter;
  o_entries : Obs.Metrics.gauge;
}

(* Cache operations run inside a pluggable critical section. The
   default is a no-op (single-domain processes pay nothing); the
   parallel executor installs a mutex-backed protector before spawning
   domains, so the entry-list/length pair always moves atomically.
   The mutex itself lives in Simkit.Exec — this module only runs the
   closure it is handed, keeping parallelism primitives behind the
   executor seam (stellar-lint rule D6). *)
type protector = { protect : 'a. (unit -> 'a) -> 'a }

(* lint: allow R2 — this ref IS the lock seam: Exec arms it before its first spawn and nothing writes it afterwards *)
let protector = ref { protect = (fun f -> f ()) }
let set_protector p = protector := p
let protected f = !protector.protect f

type ('k, 'v) t = {
  cname : string;
  equal : 'k -> 'k -> bool;
  mutable cap : int;
  mutable entries : ('k * 'v) list;  (* most recently used first *)
  mutable len : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable observers : (Obs.Metrics.t * observer) list;
}

let create ?(equal = ( == )) ~name ~capacity () =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Core.Cache.create %s: capacity < 1" name);
  {
    cname = name;
    equal;
    cap = capacity;
    entries = [];
    len = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    observers = [];
  }

let name t = t.cname
let capacity t = t.cap
let length t = t.len
let to_list t = t.entries

let each_observer t f = List.iter (fun (_, o) -> f o) t.observers

let note_hit t =
  t.hits <- t.hits + 1;
  each_observer t (fun o -> Obs.Metrics.incr o.o_hits)

let note_miss t =
  t.misses <- t.misses + 1;
  each_observer t (fun o -> Obs.Metrics.incr o.o_misses)

let note_len t =
  each_observer t (fun o -> Obs.Metrics.set_gauge o.o_entries t.len)

let note_evictions t n =
  if n > 0 then begin
    t.evictions <- t.evictions + n;
    each_observer t (fun o -> Obs.Metrics.incr ~by:n o.o_evictions)
  end

(* Keep the first [n] entries, reporting how many were dropped. *)
let rec take n dropped = function
  | [] -> ([], dropped)
  | rest when n = 0 -> ([], dropped + List.length rest)
  | x :: tl ->
      let kept, dropped = take (n - 1) dropped tl in
      (x :: kept, dropped)

let set_capacity t capacity =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Core.Cache.set_capacity %s: capacity < 1" t.cname);
  protected (fun () ->
      t.cap <- capacity;
      if t.len > capacity then begin
        let kept, dropped = take capacity 0 t.entries in
        t.entries <- kept;
        t.len <- capacity;
        note_evictions t dropped;
        note_len t
      end)

let find_opt_raw t k =
  let rec pull acc = function
    | [] -> None
    | ((k', _) as e) :: tl when t.equal k' k ->
        t.entries <- e :: List.rev_append acc tl;
        Some (snd e)
    | e :: tl -> pull (e :: acc) tl
  in
  match pull [] t.entries with
  | Some v ->
      note_hit t;
      Some v
  | None ->
      note_miss t;
      None

let find_opt t k = protected (fun () -> find_opt_raw t k)

let add_raw t k v =
  if t.len >= t.cap then begin
    let kept, dropped = take (t.cap - 1) 0 t.entries in
    t.entries <- kept;
    t.len <- t.cap - 1;
    note_evictions t dropped
  end;
  t.entries <- (k, v) :: t.entries;
  t.len <- t.len + 1;
  note_len t

let add t k v = protected (fun () -> add_raw t k v)

let find_or_add t k compute =
  match find_opt t k with
  | Some v -> v
  | None ->
      (* [compute] runs outside the critical section — compiling a
         quorum system or a CSR graph is exactly the expensive work
         the lock must not serialize. *)
      let v = compute () in
      protected (fun () ->
          (* Another worker may have inserted the key while we
             computed: prefer the resident value so callers memoizing
             by physical equality keep one stable handle. The probe
             counts no stats, so sequential counts are unchanged. *)
          let rec probe = function
            | [] ->
                add_raw t k v;
                v
            | (k', v') :: _ when t.equal k' k -> v'
            | _ :: tl -> probe tl
          in
          probe t.entries)

(* Declared after the mutators so the immutable stats fields do not
   shadow the cache record's mutable counters of the same name. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  length : int;
  capacity : int;
}

let stats (c : _ t) =
  {
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    length = c.len;
    capacity = c.cap;
  }

let stats_to_json s =
  Obs.Json.Obj
    [
      ("hits", Obs.Json.Int s.hits);
      ("misses", Obs.Json.Int s.misses);
      ("evictions", Obs.Json.Int s.evictions);
      ("length", Obs.Json.Int s.length);
      ("capacity", Obs.Json.Int s.capacity);
    ]

let attach_metrics t registry =
  if not (List.exists (fun (r, _) -> r == registry) t.observers) then begin
    let labels = [ ("cache", t.cname) ] in
    let o =
      {
        o_hits = Obs.Metrics.counter registry ~labels "cache_hits";
        o_misses = Obs.Metrics.counter registry ~labels "cache_misses";
        o_evictions = Obs.Metrics.counter registry ~labels "cache_evictions";
        o_entries = Obs.Metrics.gauge registry ~labels "cache_entries";
      }
    in
    (* Seed with the totals accumulated before attachment so the
       registry always shows lifetime counts. *)
    if t.hits > 0 then Obs.Metrics.incr ~by:t.hits o.o_hits;
    if t.misses > 0 then Obs.Metrics.incr ~by:t.misses o.o_misses;
    if t.evictions > 0 then Obs.Metrics.incr ~by:t.evictions o.o_evictions;
    Obs.Metrics.set_gauge o.o_entries t.len;
    t.observers <- (registry, o) :: t.observers
  end
