lib/cup/msg.mli: Format Graphkit Pid
