(** The paper's artifacts as runnable experiments (DESIGN.md §5).

    The paper is theoretical — its "evaluation" is Figures 1–3,
    Algorithms 1–3 and Theorems 2–6. Each function below regenerates one
    of those artifacts computationally and returns a table whose shape
    is compared against the paper's claim in EXPERIMENTS.md. All
    experiments are deterministic in [seed].

    Sampled experiments additionally take [?jobs] (default [1]): the
    per-sample runs are farmed out to a {!Simkit.Pool} of that many
    worker processes. Every sample is a pure function of its seed, so
    the rendered table is byte-identical for every [jobs] value —
    parallelism only buys wall-clock. *)

val e1_fig1_example : unit -> Report.t
(** Fig. 1 / Section III-D: the 8-participant running example — PD
    sets, slices, each process's minimal quorum, the consensus clusters
    [{5,6,7}] and [{1..7}], and the unique maximal cluster. *)

val e2_is_quorum : ?seed:int -> unit -> Report.t
(** Algorithm 1: symbolic-threshold [is_quorum] agrees with explicit
    enumeration (random probes per system size), and scales to sizes
    where enumeration is impossible. *)

val e3_theorem2_violation :
  ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Theorem 2 / Fig. 2: the counter-example's two disjoint quorums; a
    live SCP execution on them that violates agreement; and the
    violation rate across random k-OSR graphs with locally defined
    slices. *)

val e4_algorithm2_intertwined :
  ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Theorem 3: with Algorithm 2 slices every pair of correct processes
    is intertwined, on the paper's graphs and across random families. *)

val e4b_threshold_ablation : unit -> Report.t
(** Ablation: sweep the sink slice threshold around the paper's
    [ceil((s+f+1)/2)] — smaller breaks intersection, larger erodes the
    availability margin; the paper's choice is the minimum safe one. *)

val e5_availability : ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Theorems 4–5: every correct process keeps an all-correct quorum and
    the correct processes form one consensus cluster, under adversarial
    fault placement (sink-heavy and spread). *)

val e6_sink_detector : ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Algorithm 3 / Theorem 6: distributed sink-detector runs — accuracy
    against the pure oracle, message and latency cost as the graph
    grows, split by direct (SINK) vs indirect (GET_SINK) discovery. *)

val e7_reachable_broadcast :
  ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Section VI's primitive: RB validity and agreement at the sink
    across random Byzantine-safe graphs, with traffic counts. *)

val e8_pipelines : ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Corollary 1 vs Corollary 2 vs the BFT-CUP baseline, end to end:
    per-pipeline verdicts, message and latency costs across graph
    sizes. *)

val e9_graph_machinery : ?seed:int -> unit -> Report.t
(** Definitions 6, 7 and 9: generator soundness against the exact
    k-OSR checker, sink connectivity, and disjoint-path statistics. *)

val e10_restricted_oracle :
  ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Ablation: the weakest oracle Definition 8 permits (non-sink members
    learn only [f+1] correct sink ids, possibly diluted with [f] faulty
    ones) — Theorems 3–5 must still hold. *)

val e11_gst_sweep : ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Latency of the Corollary-2 stack as the asynchronous period (GST)
    grows: safety is unaffected, termination time tracks GST. *)

val e12_nomination_ablation :
  ?seed:int -> ?samples:int -> ?jobs:int -> unit -> Report.t
(** Ablation: SCP's nomination strategy — naive echo-everything vs
    stellar-core-style leader priorities; same verdicts, far fewer
    messages with leaders. *)

val all : ?seed:int -> ?jobs:int -> unit -> Report.t list
(** Every experiment, in order, with bench-friendly default sizes. *)
