test/test_quorum.ml: Alcotest Fbqs Format Graphkit List Pid Printf QCheck QCheck_alcotest Quorum Slice
