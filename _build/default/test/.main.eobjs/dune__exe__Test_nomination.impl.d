test/test_nomination.ml: Alcotest Builtin Cup Fbqs Graphkit List Node Pid Printf QCheck QCheck_alcotest Runner Scp Value
