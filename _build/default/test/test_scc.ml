open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let sort_comps cs = List.sort compare (List.map Pid.Set.elements cs)

let test_two_cycles () =
  let g = Digraph.of_edges [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 3) ] in
  Alcotest.(check (list (list int)))
    "components"
    [ [ 1; 2 ]; [ 3; 4 ] ]
    (sort_comps (Scc.components g))

let test_singletons () =
  let g = Digraph.of_edges [ (1, 2); (2, 3) ] in
  Alcotest.(check (list (list int)))
    "three singleton components"
    [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (sort_comps (Scc.components g))

let test_component_of () =
  let g = Digraph.of_edges [ (1, 2); (2, 1); (2, 3) ] in
  Alcotest.check pid_set "component of 1" (set [ 1; 2 ]) (Scc.component_of g 1);
  Alcotest.check pid_set "component of 3" (set [ 3 ]) (Scc.component_of g 3)

let test_strongly_connected () =
  Alcotest.(check bool) "cycle" true
    (Scc.is_strongly_connected (Digraph.of_edges [ (1, 2); (2, 3); (3, 1) ]));
  Alcotest.(check bool) "chain" false
    (Scc.is_strongly_connected (Digraph.of_edges [ (1, 2); (2, 3) ]));
  Alcotest.(check bool) "empty" true (Scc.is_strongly_connected Digraph.empty)

let test_big_cycle_no_stack_overflow () =
  let n = 50_000 in
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  let g = Digraph.of_edges edges in
  Alcotest.(check int) "single component" 1 (List.length (Scc.components g))

(* Reference implementation: i ~ j iff mutually reachable. *)
let naive_sccs g =
  let vs = Pid.Set.elements (Digraph.vertices g) in
  let reach = List.map (fun v -> (v, Traversal.reachable g v)) vs in
  let r v = List.assoc v reach in
  List.fold_left
    (fun comps v ->
      if List.exists (Pid.Set.mem v) comps then comps
      else
        Pid.Set.of_list
          (List.filter
             (fun w -> Pid.Set.mem w (r v) && Pid.Set.mem v (r w))
             vs)
        :: comps)
    [] vs

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Digraph.pp g)
    QCheck.Gen.(
      let* n = int_range 1 9 in
      let* edges =
        list_size (int_bound 25) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      return (Digraph.of_edges edges))

let prop_matches_naive =
  QCheck.Test.make ~count:300 ~name:"tarjan matches naive SCC" arb_graph
    (fun g -> sort_comps (Scc.components g) = sort_comps (naive_sccs g))

let prop_partition =
  QCheck.Test.make ~count:300 ~name:"components partition the vertices"
    arb_graph (fun g ->
      let all =
        List.fold_left Pid.Set.union Pid.Set.empty (Scc.components g)
      in
      let total =
        List.fold_left (fun n c -> n + Pid.Set.cardinal c) 0 (Scc.components g)
      in
      Pid.Set.equal all (Digraph.vertices g)
      && total = Pid.Set.cardinal (Digraph.vertices g))

let prop_reverse_topological_order =
  QCheck.Test.make ~count:300 ~name:"tarjan emits callees first" arb_graph
    (fun g ->
      (* If component A is listed before component B, there is no path
         from B to A unless B = A: Tarjan emits a component only after
         everything reachable from it. *)
      let comps = Array.of_list (Scc.components g) in
      let ok = ref true in
      Array.iteri
        (fun ia a ->
          Array.iteri
            (fun ib b ->
              if ia < ib then
                (* no edge from a later component to an earlier one is
                   allowed in the wrong direction: edges out of [b] may
                   reach [a]? no — [a] was emitted first, so nothing in
                   [a] reaches [b]. *)
                Pid.Set.iter
                  (fun v ->
                    if
                      Pid.Set.exists
                        (fun w -> Pid.Set.mem w b)
                        (Traversal.reachable g v)
                    then ok := false)
                  a)
            comps)
        comps;
      !ok)

let suites =
  [
    ( "scc",
      [
        Alcotest.test_case "two cycles" `Quick test_two_cycles;
        Alcotest.test_case "chain gives singletons" `Quick test_singletons;
        Alcotest.test_case "component_of" `Quick test_component_of;
        Alcotest.test_case "is_strongly_connected" `Quick
          test_strongly_connected;
        Alcotest.test_case "50k-cycle, iterative (no overflow)" `Slow
          test_big_cycle_no_stack_overflow;
        QCheck_alcotest.to_alcotest prop_matches_naive;
        QCheck_alcotest.to_alcotest prop_partition;
        QCheck_alcotest.to_alcotest prop_reverse_topological_order;
      ] );
  ]
