type osr_failure =
  | Not_connected
  | Sink_count of int
  | Sink_not_k_connected of int
  | Non_sink_paths of Pid.t * Pid.t * int

let pp_osr_failure ppf = function
  | Not_connected ->
      Format.fprintf ppf "undirected closure is not connected"
  | Sink_count n ->
      Format.fprintf ppf "condensation has %d sink components (want 1)" n
  | Sink_not_k_connected c ->
      Format.fprintf ppf "sink component is only %d-strongly connected" c
  | Non_sink_paths (i, j, c) ->
      Format.fprintf ppf
        "only %d node-disjoint paths from non-sink %d to sink member %d" c i j

let check_k_osr g k =
  if not (Traversal.is_connected_undirected g) then Error Not_connected
  else
    match Condensation.sink_components g with
    | [] -> Error (Sink_count 0)
    | _ :: _ :: _ as cs -> Error (Sink_count (List.length cs))
    | [ sink ] ->
        let sink_graph = Digraph.subgraph sink g in
        if not (Connectivity.is_k_strongly_connected sink_graph k) then
          Error
            (Sink_not_k_connected (Connectivity.vertex_connectivity sink_graph))
        else begin
          let non_sink = Pid.Set.diff (Digraph.vertices g) sink in
          let offending =
            Pid.Set.fold
              (fun i acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    Pid.Set.fold
                      (fun j acc ->
                        match acc with
                        | Some _ -> acc
                        | None ->
                            let c = Connectivity.node_disjoint_paths g i j in
                            if c < k then Some (i, j, c) else None)
                      sink None)
              non_sink None
          in
          match offending with
          | Some (i, j, c) -> Error (Non_sink_paths (i, j, c))
          | None -> Ok sink
        end

let is_k_osr g k = Result.is_ok (check_k_osr g k)

(* The same Definition 6 check forced through the seed algorithms (no
   CSR, no memo): the benchmark/qcheck counterpart of [is_k_osr]. *)
let is_k_osr_baseline g k =
  Traversal.is_connected_undirected_baseline g
  &&
  match Condensation.sink_components_baseline g with
  | [ sink ] ->
      let sink_graph = Digraph.subgraph sink g in
      let sink_verts = Pid.Set.elements sink in
      (match sink_verts with
      | [] | [ _ ] -> true
      | _ ->
          List.for_all
            (fun i ->
              List.for_all
                (fun j ->
                  Pid.equal i j
                  || Connectivity.node_disjoint_paths_baseline sink_graph i j
                     >= k)
                sink_verts)
            sink_verts)
      && Pid.Set.for_all
           (fun i ->
             Pid.Set.for_all
               (fun j -> Connectivity.node_disjoint_paths_baseline g i j >= k)
               sink)
           (Pid.Set.diff (Digraph.vertices g) sink)
  | _ -> false

let is_byzantine_safe g ~f ~faulty =
  Pid.Set.cardinal faulty <= f
  && is_k_osr (Digraph.remove_vertices faulty g) (f + 1)

let solvable g ~f ~faulty =
  is_byzantine_safe g ~f ~faulty
  &&
  match Condensation.unique_sink g with
  | None -> false
  | Some sink -> Pid.Set.cardinal (Pid.Set.diff sink faulty) >= (2 * f) + 1

let sink_of_exn g =
  match Condensation.unique_sink g with
  | Some s -> s
  | None -> invalid_arg "Properties.sink_of_exn: no unique sink component"
