test/test_connectivity.ml: Alcotest Connectivity Digraph Format Generators Graphkit List Pid Printf QCheck QCheck_alcotest
