(* Array-based Dinic. Arcs live in flat growable arrays — arc [a] is
   paired with its reverse [a lxor 1] — and [max_flow] counting-sorts
   them into a CSR adjacency before the first phase, so the hot loops
   (level BFS, blocking-flow DFS) touch nothing but int arrays. The
   sort is stable, so per-vertex arc order is insertion order: exactly
   the order the seed's append-based adjacency lists iterate in, which
   keeps the chosen flow (and hence [min_cut_side]) identical to the
   seed implementation, preserved below as {!Baseline}. *)

type t = {
  n : int;
  source : int;
  sink : int;
  mutable arc_tail : int array;
  mutable arc_dst : int array;
  mutable arc_cap : int array;
  mutable n_arcs : int;
  mutable off : int array;  (** CSR offsets, built by [compile] *)
  mutable arcs : int array;  (** arc ids grouped by tail, stable *)
  mutable level : int array;
  mutable iter : int array;  (** per-vertex cursor into [arcs] *)
}

let create ~n ~source ~sink =
  {
    n;
    source;
    sink;
    arc_tail = Array.make 16 0;
    arc_dst = Array.make 16 0;
    arc_cap = Array.make 16 0;
    n_arcs = 0;
    off = [||];
    arcs = [||];
    level = [||];
    iter = [||];
  }

let ensure net wanted =
  let cap = Array.length net.arc_tail in
  if wanted > cap then begin
    let ncap = max (2 * cap) wanted in
    let grow a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 net.n_arcs;
      b
    in
    net.arc_tail <- grow net.arc_tail;
    net.arc_dst <- grow net.arc_dst;
    net.arc_cap <- grow net.arc_cap
  end

let add_edge net u v cap =
  ensure net (net.n_arcs + 2);
  let a = net.n_arcs in
  net.arc_tail.(a) <- u;
  net.arc_dst.(a) <- v;
  net.arc_cap.(a) <- cap;
  net.arc_tail.(a + 1) <- v;
  net.arc_dst.(a + 1) <- u;
  net.arc_cap.(a + 1) <- 0;
  net.n_arcs <- a + 2

let compile net =
  let m = net.n_arcs in
  let off = Array.make (net.n + 1) 0 in
  for a = 0 to m - 1 do
    let u = net.arc_tail.(a) in
    off.(u + 1) <- off.(u + 1) + 1
  done;
  for v = 1 to net.n do
    off.(v) <- off.(v) + off.(v - 1)
  done;
  let arcs = Array.make m 0 in
  let cursor = Array.copy off in
  for a = 0 to m - 1 do
    let u = net.arc_tail.(a) in
    arcs.(cursor.(u)) <- a;
    cursor.(u) <- cursor.(u) + 1
  done;
  net.off <- off;
  net.arcs <- arcs

let bfs net =
  let level = Array.make net.n (-1) in
  let queue = Array.make net.n 0 in
  let head = ref 0 and tail = ref 0 in
  level.(net.source) <- 0;
  queue.(!tail) <- net.source;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for i = net.off.(u) to net.off.(u + 1) - 1 do
      let a = net.arcs.(i) in
      let v = net.arc_dst.(a) in
      if net.arc_cap.(a) > 0 && level.(v) < 0 then begin
        level.(v) <- level.(u) + 1;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  net.level <- level;
  level.(net.sink) >= 0

(* Blocking flow as an iterative DFS: [path] holds the arc ids of the
   current source-rooted path. After an augmentation we retreat only to
   the first saturated arc — the seed restarts from the source, but its
   preserved cursors rebuild the same prefix, so the augmentation
   sequence is identical. *)
let blocking_flow net =
  let total = ref 0 in
  let path = Array.make (net.n + 1) 0 in
  let plen = ref 0 in
  let finished = ref false in
  while not !finished do
    let u =
      if !plen = 0 then net.source else net.arc_dst.(path.(!plen - 1))
    in
    if u = net.sink then begin
      let f = ref max_int in
      for i = 0 to !plen - 1 do
        if net.arc_cap.(path.(i)) < !f then f := net.arc_cap.(path.(i))
      done;
      for i = 0 to !plen - 1 do
        let a = path.(i) in
        net.arc_cap.(a) <- net.arc_cap.(a) - !f;
        net.arc_cap.(a lxor 1) <- net.arc_cap.(a lxor 1) + !f
      done;
      total := !total + !f;
      let i = ref 0 in
      while !i < !plen && net.arc_cap.(path.(!i)) > 0 do
        incr i
      done;
      plen := !i
    end
    else begin
      let found = ref (-1) in
      while !found < 0 && net.iter.(u) < net.off.(u + 1) do
        let a = net.arcs.(net.iter.(u)) in
        if net.arc_cap.(a) > 0 && net.level.(net.arc_dst.(a)) = net.level.(u) + 1
        then found := a
        else net.iter.(u) <- net.iter.(u) + 1
      done;
      if !found >= 0 then begin
        path.(!plen) <- !found;
        incr plen
      end
      else begin
        net.level.(u) <- -1;
        if !plen = 0 then finished := true else decr plen
      end
    end
  done;
  !total

let max_flow net =
  compile net;
  let flow = ref 0 in
  while bfs net do
    net.iter <- Array.copy net.off;
    flow := !flow + blocking_flow net
  done;
  !flow

let min_cut_side net =
  if Array.length net.off = 0 then compile net;
  let side = Array.make net.n false in
  let queue = Array.make net.n 0 in
  let head = ref 0 and tail = ref 0 in
  side.(net.source) <- true;
  queue.(!tail) <- net.source;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for i = net.off.(u) to net.off.(u + 1) - 1 do
      let a = net.arcs.(i) in
      let v = net.arc_dst.(a) in
      if net.arc_cap.(a) > 0 && not side.(v) then begin
        side.(v) <- true;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  side

(* ---- seed implementation, kept verbatim as the test baseline --------- *)

module Baseline = struct
  type edge = { dst : int; mutable cap : int; rev : int }

  type t = {
    n : int;
    source : int;
    sink : int;
    adj : edge list ref array;
    mutable level : int array;
    mutable iter : edge list array;
  }

  let create ~n ~source ~sink =
    {
      n;
      source;
      sink;
      adj = Array.init n (fun _ -> ref []);
      level = [||];
      iter = [||];
    }

  let add_edge net u v cap =
    let fwd_pos = List.length !(net.adj.(u)) in
    let bwd_pos = List.length !(net.adj.(v)) in
    net.adj.(u) := !(net.adj.(u)) @ [ { dst = v; cap; rev = bwd_pos } ];
    net.adj.(v) := !(net.adj.(v)) @ [ { dst = u; cap = 0; rev = fwd_pos } ]

  let edge_at net u k = List.nth !(net.adj.(u)) k

  let bfs net =
    let level = Array.make net.n (-1) in
    level.(net.source) <- 0;
    let q = Queue.create () in
    Queue.add net.source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          if e.cap > 0 && level.(e.dst) < 0 then begin
            level.(e.dst) <- level.(u) + 1;
            Queue.add e.dst q
          end)
        !(net.adj.(u))
    done;
    net.level <- level;
    level.(net.sink) >= 0

  let rec dfs net u f =
    if u = net.sink then f
    else begin
      let result = ref 0 in
      let rec try_edges () =
        match net.iter.(u) with
        | [] -> ()
        | e :: rest ->
            if e.cap > 0 && net.level.(e.dst) = net.level.(u) + 1 then begin
              let d = dfs net e.dst (min f e.cap) in
              if d > 0 then begin
                e.cap <- e.cap - d;
                let back = edge_at net e.dst e.rev in
                back.cap <- back.cap + d;
                result := d
              end
              else begin
                net.iter.(u) <- rest;
                try_edges ()
              end
            end
            else begin
              net.iter.(u) <- rest;
              try_edges ()
            end
      in
      try_edges ();
      !result
    end

  let max_flow net =
    let flow = ref 0 in
    while bfs net do
      net.iter <- Array.map (fun l -> !l) net.adj;
      let rec push () =
        let f = dfs net net.source max_int in
        if f > 0 then begin
          flow := !flow + f;
          push ()
        end
      in
      push ()
    done;
    !flow

  let min_cut_side net =
    let side = Array.make net.n false in
    side.(net.source) <- true;
    let q = Queue.create () in
    Queue.add net.source q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun e ->
          if e.cap > 0 && not side.(e.dst) then begin
            side.(e.dst) <- true;
            Queue.add e.dst q
          end)
        !(net.adj.(u))
    done;
    side
end
