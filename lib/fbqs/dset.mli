(** Dispensable sets (DSets) and intact nodes, from the original FBAS
    theory (Mazières 2015) that the paper's Stellar model builds on.

    A set [B] of nodes is {e dispensable} when the system works
    perfectly despite every member of [B] failing: the system obtained
    by deleting [B] still enjoys quorum availability (the surviving
    nodes contain a quorum) and quorum intersection (any two surviving
    quorums meet). A node is {e intact} for a failure set [F] when some
    DSet contains all of [F] but not the node; intact nodes are the ones
    FBAS optimality results protect. The consensus-cluster notion used
    by the paper (Losa et al.) generalizes exactly this machinery, so
    having both allows cross-checking. *)

open Graphkit

val delete : Quorum.system -> Pid.Set.t -> Quorum.system
(** [delete sys b] removes the nodes of [b] from the system and from
    every slice of the remaining nodes (Mazières' "delete" operation).
    Alias of {!Quorum.delete}. *)

val quorum_intersection_despite : Quorum.system -> Pid.Set.t -> bool
(** Every two quorums of [delete sys b] intersect. Vacuously true when
    the deleted system has at most one quorum. Delegates to
    {!Enum.quorum_intersection_despite}, so it scales to live-network
    topologies (no participant-count guard on non-negative pids). *)

val quorum_intersection_despite_baseline :
  Quorum.system -> Pid.Set.t -> bool
(** The pre-[Enum] reference path: a Gosper sweep over survivors in
    increasing cardinality with superset pruning and a smallest-quorum
    early exit. Guarded to 20 survivors. Kept for the equivalence
    property tests and benchmark comparisons. *)

val quorum_availability_despite : Quorum.system -> Pid.Set.t -> bool
(** The survivors [participants sys \ b] form a quorum of the
    {e original} system, or [b] covers every participant (availability
    is judged before deletion, intersection after — Mazières'
    definition). *)

val is_dset : Quorum.system -> Pid.Set.t -> bool

val minimal_dsets : Quorum.system -> Pid.Set.t list
(** All inclusion-minimal DSets, by enumeration (guarded to systems of
    at most 20 participants). *)

val intact : Quorum.system -> faulty:Pid.Set.t -> Pid.Set.t
(** The nodes [v] for which some DSet contains all of [faulty] and not
    [v]. Empty when no DSet covers the faulty set. *)

val befouled : Quorum.system -> faulty:Pid.Set.t -> Pid.Set.t
(** The complement: participants that are not intact. *)
