lib/fbqs/quorum.mli: Graphkit Pid Slice
