test/test_intertwine.ml: Alcotest Fbqs Graphkit Intertwine List Pid Quorum Slice
