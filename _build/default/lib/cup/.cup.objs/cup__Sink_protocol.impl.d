lib/cup/sink_protocol.ml: Delay Digraph Engine Graphkit Hashtbl Knowledge Msg Option Pid Rbcast Simkit Sink_oracle
