(** Consensus clusters (Definitions 3 and 4, after Losa et al.). *)

open Graphkit

val quorum_available : Quorum.system -> Pid.Set.t -> bool
(** Quorum availability of a candidate set [I]: every member of [I] has
    a quorum of its own contained in [I]. Equivalent to the greatest
    quorum within [I] being [I] itself (quorums are closed under union),
    which is how it is computed. False for the empty set. *)

val is_consensus_cluster :
  ?universe:Pid.Set.t ->
  Quorum.system ->
  correct:Pid.Set.t ->
  mode:Intertwine.mode ->
  Pid.Set.t ->
  bool
(** Definition 3: the set is a non-empty subset of [correct], is
    intertwined under [mode], and is quorum-available. [universe]
    bounds the quorums considered for the intersection check (default:
    all participants of the system). *)

val maximal_clusters :
  ?universe:Pid.Set.t ->
  Quorum.system ->
  correct:Pid.Set.t ->
  mode:Intertwine.mode ->
  unit ->
  Pid.Set.t list
(** All inclusion-maximal consensus clusters, by exhaustive enumeration
    over subsets of [correct]. Intended for paper-scale examples;
    inherits the [|correct| <= 20] guard. *)

val grand_cluster :
  ?universe:Pid.Set.t ->
  Quorum.system ->
  correct:Pid.Set.t ->
  mode:Intertwine.mode ->
  unit ->
  bool
(** The paper's solvability condition: the set of {e all} correct
    processes forms a consensus cluster (hence the unique maximal one,
    [C = W]). Polynomial: one availability fixpoint plus the pairwise
    intertwinement check. *)
