(** Random knowledge-connectivity graph generators.

    Every generator is deterministic in its [seed], so experiments and
    failing property-test cases replay exactly. *)

val circulant : n:int -> k:int -> Digraph.t
(** The circulant digraph on vertices [0 .. n-1] where [i] has edges to
    [i+1, ..., i+k (mod n)]. For [1 <= k < n] it is exactly k-strongly
    connected, which makes it the canonical k-connected sink. *)

val complete : n:int -> Digraph.t
(** Complete digraph on [0 .. n-1]. *)

val random_k_osr :
  ?extra_edge_prob:float ->
  seed:int ->
  sink_size:int ->
  non_sink:int ->
  k:int ->
  unit ->
  Digraph.t
(** [random_k_osr ~seed ~sink_size ~non_sink ~k ()] draws a graph that
    is k-OSR by construction: the sink is a circulant k-connected
    component on vertices [0 .. sink_size-1] densified with random
    chords; each of the [non_sink] remaining vertices points at [k]
    distinct uniformly chosen sink members (guaranteeing the k
    node-disjoint path condition through a fan argument) plus random
    extra edges to earlier non-sink vertices with probability
    [extra_edge_prob] (default 0.3).

    @raise Invalid_argument if [sink_size <= k] or [k < 1]. *)

val random_byzantine_safe :
  ?extra_edge_prob:float ->
  seed:int ->
  f:int ->
  sink_size:int ->
  non_sink:int ->
  unit ->
  Digraph.t * Pid.Set.t
(** A graph suitable for Theorem 1 with fault threshold [f]: generated
    with [k = 2f + 1] so that removing any [f] vertices leaves an
    (f+1)-OSR graph, paired with its sink vertex set. Requires
    [sink_size >= 3f + 2]. *)

val random_faulty_set :
  seed:int -> f:int -> ?within:Pid.Set.t -> Digraph.t -> Pid.Set.t
(** Picks a uniformly random faulty set of exactly [min f n] vertices,
    optionally restricted to [within]. *)

val fig2_family : sink_size:int -> non_sink:int -> Digraph.t
(** The Theorem-2 counter-example topology, generalized: a complete
    digraph sink on [0 .. sink_size-1] plus a complete digraph clique of
    [non_sink] outer members, the [i]-th of which additionally knows
    sink member [i mod sink_size]. With the local all-but-one slice
    rule, the outer clique and the sink form two disjoint quorums, so
    quorum intersection fails — for any [sink_size >= 2] and
    [non_sink >= 2]. The graph is k-OSR for
    [k = min (sink_size - 1) non_sink]. [Builtin.fig2] is
    [fig2_family ~sink_size:4 ~non_sink:3] up to vertex renaming. *)

val layered_k_osr :
  seed:int ->
  sink_size:int ->
  layers:int ->
  layer_width:int ->
  k:int ->
  unit ->
  Digraph.t
(** A "deep" k-OSR graph: non-sink vertices are arranged in [layers]
    layers of [layer_width] vertices; each vertex points at [k] distinct
    vertices of the next layer towards the sink (the innermost layer
    points at sink members). Generated instances are validated with
    {!Properties.check_k_osr} and regenerated with a bumped seed until
    the check passes, so the result is always genuinely k-OSR. Requires
    [layer_width >= k] and [sink_size > k]. *)
