(** Process identities.

    Every participant of the system is named by a small non-negative
    integer. This module fixes that representation and provides the
    specialised sets and maps used across the whole code base, so that
    protocol code never manipulates bare [int] containers. *)

type t = int
(** A process identity. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit

  val of_range : int -> int -> t
  (** [of_range lo hi] is the set [{lo, lo+1, ..., hi}]; empty if
      [hi < lo]. *)

  val to_string : t -> string

  val choose_distinct : int -> t -> elt list option
  (** [choose_distinct k s] returns [k] distinct elements of [s] in
      increasing order, or [None] if [cardinal s < k]. *)
end

module Dense_set : sig
  (** Dense bitsets of process ids.

      Process ids are small non-negative integers, so a whole system
      fits in a few machine words: word [w], bit [b] encodes membership
      of pid [w * Sys.int_size + b]. Set algebra becomes word-wise
      [land]/[lor] plus popcount, which is what the Algorithm 1 quorum
      kernel ([|Q ∩ members| >= threshold]) bottoms out in. Values are
      immutable, like {!Set}. All operations raise [Invalid_argument]
      on negative ids. *)

  type t

  val empty : t

  val is_empty : t -> bool

  val mem : int -> t -> bool

  val add : int -> t -> t

  val singleton : int -> t

  val remove : int -> t -> t

  val union : t -> t -> t

  val inter : t -> t -> t

  val diff : t -> t -> t

  val cardinal : t -> int

  val inter_cardinal : t -> t -> int
  (** [inter_cardinal a b = cardinal (inter a b)] without materializing
      the intersection: one fused popcount pass. This is the whole cost
      of the symbolic quorum-membership test. *)

  val subset : t -> t -> bool

  val disjoint : t -> t -> bool

  val equal : t -> t -> bool

  val iter : (int -> unit) -> t -> unit
  (** Ascending id order, like [Set.iter]. *)

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  (** Ascending id order, like [Set.fold]. *)

  val for_all : (int -> bool) -> t -> bool

  val exists : (int -> bool) -> t -> bool

  val filter : (int -> bool) -> t -> t

  val elements : t -> int list
  (** Ascending. *)

  val to_list : t -> int list

  val of_list : int list -> t

  val of_range : int -> int -> t
  (** [of_range lo hi] is [{lo, ..., hi}]; empty if [hi < lo]. *)

  val of_set : Set.t -> t

  val to_set : t -> Set.t

  val min_elt_opt : t -> int option

  val max_elt_opt : t -> int option

  val choose_opt : t -> int option

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
end

module Map : sig
  include Map.S with type key = t

  val keys : 'a t -> Set.t

  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end
