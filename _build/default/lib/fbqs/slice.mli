(** Quorum slices (Stellar model, Section III-D).

    A slice of a process [i] is a set of processes that [i] trusts; the
    slice set [S_i] collects all of them. The paper's slice
    constructions ("all subsets of [V] with size [m]", Algorithm 2) are
    combinatorially large, so besides explicit slice lists this module
    offers a {e symbolic threshold} representation for which the
    quorum-membership and v-blocking tests reduce to counting. The two
    representations are proved interchangeable by the property tests in
    [test/test_fbqs.ml]. *)

open Graphkit

type t =
  | Explicit of Pid.Set.t list
      (** A literal list of slices. The empty list means "no slice",
          i.e. this process can never be part of a quorum. *)
  | Threshold of { members : Pid.Set.t; threshold : int }
      (** All subsets of [members] of size exactly [threshold]: the form
          produced by Algorithm 2. A threshold larger than
          [|members|] denotes an empty slice set. *)

val explicit : Pid.Set.t list -> t

val threshold : members:Pid.Set.t -> threshold:int -> t

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val domain : t -> Pid.Set.t
(** The union of all slices ([Pi_i] in the paper, the processes the
    owner can initially contact). *)

val slice_count : t -> int
(** Number of distinct slices ([C(|members|, threshold)] for the
    symbolic form). Saturates at [max_int]. *)

val enumerate : t -> Pid.Set.t list
(** All slices, explicitly. Intended for small systems (tests and the
    paper's figures); raises [Invalid_argument] when the symbolic form
    would expand to more than [100_000] slices. *)

val has_slice_within : t -> Pid.Set.t -> bool
(** [has_slice_within s q] holds iff some slice is contained in [q] —
    the per-member condition of Algorithm 1. O(slices) for the explicit
    form, O(|q|) counting for the symbolic form. *)

val all_slices_intersect : t -> Pid.Set.t -> bool
(** [all_slices_intersect s b] holds iff every slice meets [b] — the
    v-blocking condition used by SCP's federated voting. For the
    symbolic form this is [|members \ b| < threshold]. Vacuously true
    when the slice set is empty. *)

val has_slice_avoiding : t -> Pid.Set.t -> bool
(** [has_slice_avoiding s b] holds iff some slice avoids [b] entirely —
    the Lemma 2 requirement with [b] the faulty set. Equivalent to
    [not (all_slices_intersect s b)]. *)

val map_members : (Pid.t -> Pid.t) -> t -> t
(** Renames processes inside the slice set. *)
