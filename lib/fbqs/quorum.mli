(** Quorums of a Federated Byzantine Quorum System (Definition 1 and
    Algorithm 1 of the paper).

    The membership tests ({!is_quorum}, {!greatest_quorum_within}) run
    on a dense bitset compilation of the system ({!Pid.Dense_set}):
    threshold slice sets reduce to one popcount per distinct member set
    and candidate, and compilations are cached per system value, so
    repeated queries against the same system (SCP federated voting,
    analysis fixpoints) pay the compilation once. See DESIGN.md §8. *)

open Graphkit

type system = Slice.t Pid.Map.t
(** A slice assignment: one slice set per process. Processes absent
    from the map have declared nothing (e.g. Byzantine processes that
    stay silent); they can never satisfy the per-member slice condition
    and hence belong to no quorum. *)

val system_of_list : (Pid.t * Slice.t) list -> system

val slices_of : system -> Pid.t -> Slice.t
(** The slice set declared by a process; [Explicit []] when absent. *)

val participants : system -> Pid.Set.t
(** Processes with a declared slice set. *)

val is_quorum : system -> Pid.Set.t -> bool
(** Algorithm 1: [Q] is a quorum iff it is non-empty and every
    [i ∈ Q] has a slice contained in [Q]. (The empty set satisfies the
    definition vacuously but is excluded, matching standard FBQS
    usage.) *)

val is_quorum_of : system -> Pid.t -> Pid.Set.t -> bool
(** A quorum {e of} process [i]: a quorum containing [i]. *)

val greatest_quorum_within : system -> Pid.Set.t -> Pid.Set.t
(** The unique largest quorum contained in the given set (possibly the
    empty set, which signals that the set contains no quorum). Computed
    by iteratively discarding members that have no slice inside the
    remaining set; correctness follows from quorums being closed under
    union. *)

val contains_quorum : system -> Pid.Set.t -> bool
(** Whether some (non-empty) quorum lies within the set. *)

val enum_quorums : ?universe:Pid.Set.t -> system -> Pid.Set.t list
(** All quorums included in [universe] (default: all participants).
    Exponential in [|universe|]; guarded to [|universe| <= 20].
    @raise Invalid_argument beyond the guard. *)

val minimal_quorums : ?universe:Pid.Set.t -> system -> Pid.Set.t list
(** The inclusion-minimal quorums within [universe]. *)

val minimal_quorums_of : ?universe:Pid.Set.t -> system -> Pid.t -> Pid.Set.t list
(** The inclusion-minimal elements of [Q_i] (quorums of process [i])
    within [universe]. Every quorum of [i] contains one of these, so
    universally quantified intersection properties need only be checked
    on this list. *)

val is_v_blocking : system -> Pid.t -> Pid.Set.t -> bool
(** [is_v_blocking sys i b]: the set [b] intersects every slice of [i].
    Used by SCP federated voting; false when [i] declared no slices
    (with no slices nothing can be accepted through blocking). *)
