(* Coverage for the smaller public API surfaces that the protocol-level
   suites do not exercise directly. *)

open Graphkit

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

let test_slice_map_members () =
  let s = Fbqs.Slice.explicit [ set [ 1; 2 ]; set [ 3 ] ] in
  let shifted = Fbqs.Slice.map_members (fun i -> i + 10) s in
  Alcotest.(check bool) "explicit shifted" true
    (Fbqs.Slice.equal shifted
       (Fbqs.Slice.explicit [ set [ 11; 12 ]; set [ 13 ] ]));
  let t = Fbqs.Slice.threshold ~members:(set [ 1; 2; 3 ]) ~threshold:2 in
  match Fbqs.Slice.map_members (fun i -> i * 2) t with
  | Fbqs.Slice.Threshold { members; threshold } ->
      Alcotest.check pid_set "threshold members mapped" (set [ 2; 4; 6 ])
        members;
      Alcotest.(check int) "threshold preserved" 2 threshold
  | Fbqs.Slice.Explicit _ -> Alcotest.fail "representation changed"

let test_contains_quorum () =
  let members = Pid.Set.of_range 1 4 in
  let sys =
    Fbqs.Quorum.system_of_list
      (List.map
         (fun i -> (i, Fbqs.Slice.threshold ~members ~threshold:3))
         (Pid.Set.elements members))
  in
  Alcotest.(check bool) "3 of 4 contains a quorum" true
    (Fbqs.Quorum.contains_quorum sys (set [ 1; 2; 3 ]));
  Alcotest.(check bool) "2 of 4 does not" false
    (Fbqs.Quorum.contains_quorum sys (set [ 1; 2 ]))

let test_reachable_from_set () =
  let g = Digraph.of_edges [ (1, 2); (3, 4) ] in
  Alcotest.check pid_set "union of closures" (set [ 1; 2; 3; 4 ])
    (Traversal.reachable_from_set g (set [ 1; 3 ]));
  Alcotest.check pid_set "empty sources" Pid.Set.empty
    (Traversal.reachable_from_set g Pid.Set.empty)

let test_condensation_dag () =
  let g = Digraph.of_edges [ (1, 2); (2, 1); (1, 3) ] in
  let c = Condensation.make g in
  let comp12 = Condensation.component_of c 1 in
  let comp3 = Condensation.component_of c 3 in
  Alcotest.(check bool) "same component" true
    (comp12 = Condensation.component_of c 2);
  Alcotest.(check (list int)) "edge in the DAG" [ comp3 ]
    (Condensation.dag_succs c comp12);
  Alcotest.(check (list int)) "sink component" [ comp3 ] (Condensation.sinks c)

let test_engine_accessors () =
  let delay = Simkit.Delay.synchronous ~delta:1 in
  let engine = Simkit.Engine.create_cfg { Simkit.Run_config.default with delay = Some delay; max_time = 1_000_000 } in
  Alcotest.(check int) "fresh clock" 0 (Simkit.Engine.now_of engine);
  let stats = Simkit.Engine.stats_of engine in
  Alcotest.(check int) "nothing sent yet" 0 stats.messages_sent

let test_participant_detector_strips_self_loop () =
  let g = Digraph.of_edges [ (1, 1); (1, 2) ] in
  let pd = Cup.Participant_detector.of_graph ~f:0 g in
  Alcotest.check pid_set "self filtered out" (set [ 2 ])
    (Cup.Participant_detector.query pd 1);
  Alcotest.check pid_set "unknown process" Pid.Set.empty
    (Cup.Participant_detector.query pd 42)

let test_value_pp_and_to_list () =
  let v = Scp.Value.of_ints [ 3; 1; 2; 1 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 2; 3 ] (Scp.Value.to_list v);
  Alcotest.(check string) "rendering" "{1,2,3}"
    (Format.asprintf "%a" Scp.Value.pp v);
  Alcotest.(check bool) "is_empty" true (Scp.Value.is_empty Scp.Value.empty);
  Alcotest.(check bool) "singleton" true
    (Scp.Value.equal (Scp.Value.singleton 7) (Scp.Value.of_ints [ 7 ]))

let test_msg_size_accounting () =
  let m = Cup.Msg.Know (set [ 1; 2; 3 ]) in
  Alcotest.(check int) "know size" 4 (Cup.Msg.size m);
  Alcotest.(check int) "request size" 1 (Cup.Msg.size Cup.Msg.Know_request);
  Alcotest.(check int) "flood size" 5
    (Cup.Msg.size (Cup.Msg.Get_sink { origin = 1; path = [ 1; 2; 3 ] }))

let test_pbft_quorum_arithmetic_matches_slices () =
  (* The PBFT quorum size equals the Algorithm 2 sink slice size: the
     same ceil((n+f+1)/2) arithmetic in both protocols. *)
  for n = 3 to 15 do
    for f = 0 to (n - 1) / 3 do
      Alcotest.(check int)
        (Printf.sprintf "n=%d f=%d" n f)
        (Cup.Slice_builder.sink_threshold ~sink_size:n ~f)
        (Bftcup.Pbft.quorum_size ~n ~f)
    done
  done

let suites =
  [
    ( "api_coverage",
      [
        Alcotest.test_case "Slice.map_members" `Quick test_slice_map_members;
        Alcotest.test_case "Quorum.contains_quorum" `Quick
          test_contains_quorum;
        Alcotest.test_case "Traversal.reachable_from_set" `Quick
          test_reachable_from_set;
        Alcotest.test_case "Condensation DAG accessors" `Quick
          test_condensation_dag;
        Alcotest.test_case "Engine accessors" `Quick test_engine_accessors;
        Alcotest.test_case "PD self-loop and unknowns" `Quick
          test_participant_detector_strips_self_loop;
        Alcotest.test_case "Value pp/to_list" `Quick test_value_pp_and_to_list;
        Alcotest.test_case "Cup.Msg.size" `Quick test_msg_size_accounting;
        Alcotest.test_case "PBFT quorum = sink slice size" `Quick
          test_pbft_quorum_arithmetic_matches_slices;
      ] );
  ]
