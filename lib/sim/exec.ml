module Fork_pool = Pool

exception Job_failed = Pool.Job_failed

type backend = Domains | Fork | Sequential

let domains_available = Exec_domains.available
let fork_available = Pool.has_fork

let backend_name = function
  | Domains -> "domains"
  | Fork -> "fork"
  | Sequential -> "sequential"

let backend ~jobs n =
  if jobs <= 1 || n <= 1 then Sequential
  else if domains_available then Domains
  else if fork_available then Fork
  else Sequential

let run_in_parallel ~jobs n =
  match backend ~jobs n with Sequential -> false | Domains | Fork -> true

(* Shared mutable state reachable from jobs (the Core.Cache handle
   memos and the lazy analysis fields inside compiled handles) is
   written with idempotent, input-determined values, so racing on it
   is output-deterministic; but the cache's entry-list/length pair
   should still move atomically. The executor arms Core.Cache's
   critical-section hook with the backend's lock the first time the
   domain backend engages. The actual Mutex lives in
   exec_domains_native.ml — stdlib on OCaml 5, a separate threads
   library on 4.14, so this module never names it and no protocol or
   analysis code ever touches locking directly. *)
let arm_cache_protector =
  lazy
    (Core.Cache.set_protector { Core.Cache.protect = Exec_domains.locked })

(* Chunks amortize dispatch overhead for many tiny jobs but cost load
   balance for few heavy ones; experiment sweeps are firmly in the
   second camp (tens of multi-millisecond simulations), so the default
   only rises above 1 once there are dozens of jobs per worker. *)
let default_chunk ~jobs n = max 1 (min 1024 (n / (jobs * 32)))

let map_domains ~chunk ~jobs f xs =
  Lazy.force arm_cache_protector;
  let input = Array.of_list xs in
  let n = Array.length input in
  let slots = Array.make n None in
  (* Each job writes its own slot: disjoint indices, no serialization,
     results stay on the shared heap. *)
  let do_job i = slots.(i) <- Some (f input.(i)) in
  let failures =
    Exec_domains.map_chunked ~chunk ~domains:(min jobs n) do_job n
  in
  match List.sort (fun (i, _) (j, _) -> Int.compare i j) failures with
  | (_, msg) :: _ -> raise (Job_failed msg)
  | [] ->
      Array.to_list
        (Array.map
           (function
             | Some y -> y | None -> raise (Job_failed "missing result"))
           slots)

let map ?backend:forced ?chunk ~jobs f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else
    let chosen =
      match forced with Some b -> b | None -> backend ~jobs n
    in
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk ~jobs n
    in
    match chosen with
    | Sequential -> List.map f xs
    | Domains ->
        if not domains_available then
          invalid_arg "Simkit.Exec.map: domain backend unavailable";
        map_domains ~chunk ~jobs f xs
    | Fork ->
        if not fork_available then
          invalid_arg "Simkit.Exec.map: fork backend unavailable";
        (* [chunk] is a throughput hint here, so raise it as needed to
           fit the fork pool's one-byte chunk-token budget rather than
           surface {!Pool.map_chunked}'s [Invalid_argument]. *)
        let chunk = max chunk ((n + Pool.max_chunks - 1) / Pool.max_chunks) in
        Pool.map_persistent ~chunk ~workers:(min jobs n) f xs

(* ------------------------------------------------------------------ *)
(* The persistent pool surface                                        *)
(* ------------------------------------------------------------------ *)

let jobs_env_var = "STELLAR_CUP_JOBS"

let jobs_from_env () =
  match Sys.getenv_opt jobs_env_var with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let protect f =
  Lazy.force arm_cache_protector;
  Exec_domains.locked f

type task = Exec_domains.task

let spawn_task f =
  (* Detached tasks (daemon client handlers) race on the shared
     Core.Cache handles exactly like pool workers do: arm the
     protector before the first one starts. *)
  Lazy.force arm_cache_protector;
  Exec_domains.detach f

let join_task = Exec_domains.join_task
let concurrent_tasks = domains_available

(* Both backends keep their long-lived workers behind this one
   facade; either side is empty when the other is in play (domains on
   OCaml 5, forks on 4.14), so sums report whichever pool is live. *)
module Pool = struct
  let shutdown () =
    Exec_domains.shutdown ();
    Fork_pool.shutdown_persistent ()

  let size () = Exec_domains.pool_size () + Fork_pool.persistent_workers ()
  let peak () = Exec_domains.pool_peak () + Fork_pool.persistent_peak ()

  let batches () =
    Exec_domains.pool_batches () + Fork_pool.persistent_batches ()
end
