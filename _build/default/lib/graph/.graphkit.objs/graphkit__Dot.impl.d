lib/graph/dot.ml: Buffer Digraph Fun List Pid Printf String
