open Graphkit

type t = { graph : Digraph.t; f : int }

let of_graph ~f graph = { graph; f }
let query t i = Pid.Set.remove i (Digraph.succs t.graph i)
let f t = t.f
let graph t = t.graph
let participants t = Digraph.vertices t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>f = %d@,%a@]" t.f Digraph.pp t.graph
