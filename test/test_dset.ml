open Graphkit
open Fbqs

let set = Pid.Set.of_list
let pid_set = Alcotest.testable Pid.Set.pp Pid.Set.equal

(* Classic 4-node 3f+1 system: any single node is dispensable. *)
let pbft4 =
  let members = Pid.Set.of_range 1 4 in
  Quorum.system_of_list
    (List.map
       (fun i -> (i, Slice.threshold ~members ~threshold:3))
       (Pid.Set.elements members))

let test_delete_threshold () =
  let deleted = Dset.delete pbft4 (set [ 4 ]) in
  (match Quorum.slices_of deleted 1 with
  | Slice.Threshold { members; threshold } ->
      Alcotest.check pid_set "members shrink" (set [ 1; 2; 3 ]) members;
      Alcotest.(check int) "threshold reduced" 2 threshold
  | Slice.Explicit _ -> Alcotest.fail "expected threshold");
  Alcotest.(check bool) "deleted node gone" true
    (not (Pid.Set.mem 4 (Quorum.participants deleted)))

let test_delete_explicit () =
  let sys =
    Quorum.system_of_list
      [
        (1, Slice.explicit [ set [ 2; 3 ]; set [ 3; 4 ] ]);
        (2, Slice.explicit [ set [ 1 ] ]);
        (3, Slice.explicit [ set [ 1 ] ]);
        (4, Slice.explicit [ set [ 1 ] ]);
      ]
  in
  let deleted = Dset.delete sys (set [ 3 ]) in
  match Quorum.slices_of deleted 1 with
  | Slice.Explicit [ a; b ] ->
      Alcotest.check pid_set "first slice" (set [ 2 ]) a;
      Alcotest.check pid_set "second slice" (set [ 4 ]) b
  | _ -> Alcotest.fail "expected two explicit slices"

let test_pbft4_dsets () =
  Alcotest.(check bool) "empty set is a DSet" true
    (Dset.is_dset pbft4 Pid.Set.empty);
  Alcotest.(check bool) "single node is a DSet" true
    (Dset.is_dset pbft4 (set [ 2 ]));
  (* Deleting two nodes of a 3-of-4 system leaves threshold 1 over 2
     members: {1} and {2} are disjoint quorums -> intersection fails. *)
  Alcotest.(check bool) "two nodes are not dispensable" false
    (Dset.is_dset pbft4 (set [ 3; 4 ]));
  let minimal = Dset.minimal_dsets pbft4 in
  Alcotest.(check int) "unique minimal DSet" 1 (List.length minimal);
  Alcotest.check pid_set "it is the empty set" Pid.Set.empty
    (List.hd minimal)

let test_intact_pbft4 () =
  Alcotest.check pid_set "all intact with one fault" (set [ 1; 2; 4 ])
    (Dset.intact pbft4 ~faulty:(set [ 3 ]));
  Alcotest.check pid_set "befouled complement" (set [ 3 ])
    (Dset.befouled pbft4 ~faulty:(set [ 3 ]));
  Alcotest.(check bool) "nobody intact with two faults" true
    (Pid.Set.is_empty (Dset.intact pbft4 ~faulty:(set [ 3; 4 ])))

let fig1_system =
  Quorum.system_of_list
    (List.map
       (fun (i, slices) -> (i, Slice.explicit slices))
       Builtin.fig1_slices)

let test_fig1_dset_cross_check () =
  (* The Section III-D example: F = {8}. {8} should be dispensable (the
     paper's consensus-cluster analysis says all of {1..7} can solve
     consensus), and every correct process intact. *)
  Alcotest.(check bool) "{8} is a DSet" true
    (Dset.is_dset fig1_system (set [ 8 ]));
  let intact = Dset.intact fig1_system ~faulty:(set [ 8 ]) in
  Alcotest.(check bool) "all of {1..7} intact" true
    (Pid.Set.subset (Pid.Set.of_range 1 7) intact)

let test_algorithm2_slices_dset () =
  (* On fig2 with Algorithm 2 slices, any single process should be
     dispensable (f = 1). *)
  let sys = Cup.Slice_builder.system_via_oracle ~f:1 Builtin.fig2 in
  Pid.Set.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "{%d} dispensable" v)
        true
        (Dset.is_dset sys (Pid.Set.singleton v)))
    (Digraph.vertices Builtin.fig2)

let prop_dset_monotone_availability =
  (* If b is a DSet then availability holds for b; and the full
     participant set is always "available despite" itself (vacuous). *)
  QCheck.Test.make ~count:100 ~name:"vacuous DSet facts"
    QCheck.(int_range 1 5)
    (fun n ->
      let members = Pid.Set.of_range 1 n in
      let sys =
        Quorum.system_of_list
          (List.map
             (fun i ->
               (i, Slice.threshold ~members ~threshold:((n / 2) + 1)))
             (Pid.Set.elements members))
      in
      Dset.quorum_availability_despite sys members
      && Dset.is_dset sys Pid.Set.empty)

let prop_intersection_matches_enum =
  (* The pruned minimal-quorum path must agree with the brute-force
     definition: enumerate every quorum of the deleted system and check
     that all pairs intersect. *)
  QCheck.Test.make ~count:100 ~name:"pruned intersection = brute force"
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 63))
    (fun (n, t, bmask) ->
      let members = Pid.Set.of_range 1 n in
      let sys =
        Quorum.system_of_list
          (List.map
             (fun i -> (i, Slice.threshold ~members ~threshold:(min t n)))
             (Pid.Set.elements members))
      in
      let b =
        Pid.Set.filter (fun i -> bmask land (1 lsl (i - 1)) <> 0) members
      in
      let brute =
        let quorums = Quorum.enum_quorums (Dset.delete sys b) in
        List.for_all
          (fun q1 ->
            List.for_all
              (fun q2 -> not (Pid.Set.is_empty (Pid.Set.inter q1 q2)))
              quorums)
          quorums
      in
      Dset.quorum_intersection_despite sys b = brute)

let suites =
  [
    ( "dset",
      [
        Alcotest.test_case "delete on threshold slices" `Quick
          test_delete_threshold;
        Alcotest.test_case "delete on explicit slices" `Quick
          test_delete_explicit;
        Alcotest.test_case "pbft4 DSets" `Quick test_pbft4_dsets;
        Alcotest.test_case "pbft4 intact nodes" `Quick test_intact_pbft4;
        Alcotest.test_case "fig1 cross-check with clusters" `Quick
          test_fig1_dset_cross_check;
        Alcotest.test_case "Algorithm 2 slices: singletons dispensable"
          `Quick test_algorithm2_slices_dset;
        QCheck_alcotest.to_alcotest prop_dset_monotone_availability;
        QCheck_alcotest.to_alcotest prop_intersection_matches_enum;
      ] );
  ]
