lib/core/pipeline.mli: Cup Digraph Fbqs Format Graphkit Pid Scp Simkit
