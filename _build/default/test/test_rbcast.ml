open Graphkit
open Cup

let set = Pid.Set.of_list

(* Drive Rbcast instances by hand over a synchronous queue network. *)
type net = {
  machines : (Pid.t, Rbcast.t) Hashtbl.t;
  queue : (Pid.t * Pid.t * Msg.t) Queue.t;
  mutable delivered : (Pid.t * Pid.t) list;  (* (receiver, origin) *)
}

let make_net graph ~f pids =
  let net =
    { machines = Hashtbl.create 8; queue = Queue.create (); delivered = [] }
  in
  List.iter
    (fun i ->
      Hashtbl.replace net.machines i
        (Rbcast.create ~self:i ~neighbors:(Digraph.succs graph i) ~f ()))
    pids;
  net

let sender net src dst m = Queue.add (src, dst, m) net.queue

let drain net =
  while not (Queue.is_empty net.queue) do
    let src, dst, m = Queue.pop net.queue in
    match (Hashtbl.find_opt net.machines dst, m) with
    | Some rb, Msg.Get_sink { origin; path } -> (
        match
          Rbcast.on_get_sink rb ~send:(sender net dst) ~src ~origin ~path
        with
        | Some origin -> net.delivered <- (dst, origin) :: net.delivered
        | None -> ())
    | _ -> ()
  done

let broadcast net i =
  Rbcast.broadcast (Hashtbl.find net.machines i) ~send:(sender net i);
  drain net

let test_direct_neighbor_delivers () =
  let g = Digraph.of_edges [ (1, 2) ] in
  let net = make_net g ~f:2 [ 1; 2 ] in
  broadcast net 1;
  (* 2 hears 1 first-hand: authenticated channel, delivers regardless
     of f. *)
  Alcotest.(check bool) "delivered" true (List.mem (2, 1) net.delivered)

let test_f0_line_delivers () =
  let g = Digraph.of_edges [ (1, 2); (2, 3) ] in
  let net = make_net g ~f:0 [ 1; 2; 3 ] in
  broadcast net 1;
  Alcotest.(check bool) "one relayed path suffices at f=0" true
    (List.mem (3, 1) net.delivered)

let test_f1_single_path_insufficient () =
  let g = Digraph.of_edges [ (1, 2); (2, 3) ] in
  let net = make_net g ~f:1 [ 1; 2; 3 ] in
  broadcast net 1;
  Alcotest.(check bool) "one path is not enough at f=1" false
    (List.mem (3, 1) net.delivered)

let test_f1_two_disjoint_paths_deliver () =
  let g = Digraph.of_edges [ (1, 2); (1, 4); (2, 3); (4, 3) ] in
  let net = make_net g ~f:1 [ 1; 2; 3; 4 ] in
  broadcast net 1;
  Alcotest.(check bool) "two disjoint paths deliver" true
    (List.mem (3, 1) net.delivered)

let test_f1_shared_relay_insufficient () =
  (* Two paths through the same relay vertex 2 are not disjoint. *)
  let g = Digraph.of_edges [ (1, 2); (1, 4); (2, 3); (4, 2) ] in
  let net = make_net g ~f:1 [ 1; 2; 3; 4 ] in
  broadcast net 1;
  Alcotest.(check bool) "paths share vertex 2" false
    (List.mem (3, 1) net.delivered)

let test_forged_last_hop_rejected () =
  let g = Digraph.of_edges [ (1, 2) ] in
  let net = make_net g ~f:0 [ 1; 2 ] in
  let rb2 = Hashtbl.find net.machines 2 in
  (* 1 physically sends, but the path claims 9 was the last relayer. *)
  let r =
    Rbcast.on_get_sink rb2 ~send:(sender net 2) ~src:1 ~origin:9
      ~path:[ 9 ]
  in
  Alcotest.(check bool) "forged origin accepted only from origin" true
    (r = None)

let test_cyclic_path_rejected () =
  let g = Digraph.of_edges [ (1, 2) ] in
  let net = make_net g ~f:0 [ 1; 2 ] in
  let rb2 = Hashtbl.find net.machines 2 in
  let r =
    Rbcast.on_get_sink rb2 ~send:(sender net 2) ~src:1
      ~origin:3
      ~path:[ 3; 1; 3; 1 ]
  in
  Alcotest.(check bool) "duplicate vertices rejected" true (r = None)

let test_fig2_all_sink_members_deliver () =
  (* In a Byzantine-safe graph, GET_SINK from any process reaches every
     sink member with f+1 disjoint paths. *)
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig2) in
  let net = make_net Builtin.fig2 ~f:1 pids in
  broadcast net 5;
  Pid.Set.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "sink member %d delivered" s)
        true
        (List.mem (s, 5) net.delivered))
    Builtin.fig2_sink

let test_delivery_unique () =
  let pids = Pid.Set.elements (Digraph.vertices Builtin.fig2) in
  let net = make_net Builtin.fig2 ~f:1 pids in
  broadcast net 5;
  broadcast net 6;
  let count (r, o) =
    List.length (List.filter (fun x -> x = (r, o)) net.delivered)
  in
  List.iter
    (fun pair ->
      Alcotest.(check bool)
        "delivered at most once" true (count pair <= 1))
    [ (1, 5); (2, 5); (3, 5); (4, 5); (1, 6); (7, 5); (5, 6) ]

let prop_rb_agreement_on_random_graphs =
  QCheck.Test.make ~count:20
    ~name:"RB: all sink members deliver every origin's GET_SINK"
    QCheck.(pair (int_bound 300) (int_range 1 2))
    (fun (seed, f) ->
      let g, sink =
        Generators.random_byzantine_safe ~seed ~f ~sink_size:((3 * f) + 2)
          ~non_sink:3 ()
      in
      let pids = Pid.Set.elements (Digraph.vertices g) in
      let net = make_net g ~f pids in
      List.iter (fun i -> broadcast net i) pids;
      List.for_all
        (fun origin ->
          Pid.Set.for_all
            (fun s ->
              Pid.equal s origin || List.mem (s, origin) net.delivered)
            sink)
        pids)

let suites =
  [
    ( "rbcast",
      [
        Alcotest.test_case "direct neighbor delivers" `Quick
          test_direct_neighbor_delivers;
        Alcotest.test_case "f=0 line" `Quick test_f0_line_delivers;
        Alcotest.test_case "f=1 single path insufficient" `Quick
          test_f1_single_path_insufficient;
        Alcotest.test_case "f=1 two disjoint paths" `Quick
          test_f1_two_disjoint_paths_deliver;
        Alcotest.test_case "f=1 shared relay insufficient" `Quick
          test_f1_shared_relay_insufficient;
        Alcotest.test_case "forged last hop rejected" `Quick
          test_forged_last_hop_rejected;
        Alcotest.test_case "cyclic path rejected" `Quick
          test_cyclic_path_rejected;
        Alcotest.test_case "fig2: sink members deliver" `Quick
          test_fig2_all_sink_members_deliver;
        Alcotest.test_case "delivery is unique" `Quick test_delivery_unique;
        QCheck_alcotest.to_alcotest prop_rb_agreement_on_random_graphs;
      ] );
  ]
