open Graphkit
open Simkit

type decision = { value : Value.t; ballot : Ballot.t; time : int }

let pp_decision ppf d =
  Format.fprintf ppf "%a at ballot %a (t=%d)" Value.pp d.value Ballot.pp
    d.ballot d.time

type nomination_strategy = Echo_all | Leader_priority of int

type config = {
  self : Pid.t;
  my_slices : Fbqs.Slice.t;
  initial_peers : Pid.Set.t;
  initial_value : Value.t;
  ballot_timeout : int;
  nomination : nomination_strategy;
  on_decide : Pid.t -> decision -> unit;
}

(* splitmix-style avalanche; any fixed deterministic mix works, it only
   has to be shared and collision-unfriendly. *)
let priority v =
  let z = (v + 0x9e3779b9) land 0x3fffffff in
  let z = z * 0x85ebca6b land 0x3fffffffffff in
  let z = (z lxor (z lsr 13)) * 0xc2b2ae35 in
  (z lxor (z lsr 16)) land max_int

(* Per-node observability handles; counters are pre-registered at node
   creation (registration is idempotent, so all nodes of a run share
   the same registry entries). *)
type node_obs = {
  trace : Obs.Trace.sink option;
  c_votes : Obs.Metrics.counter option;
  c_accepts : Obs.Metrics.counter option;
  c_confirms : Obs.Metrics.counter option;
  c_ballots : Obs.Metrics.counter option;
  c_nom_rounds : Obs.Metrics.counter option;
  c_decides : Obs.Metrics.counter option;
  c_quorum_checks : Obs.Metrics.counter option;
      (* shared with Fvoting's counter of the same name: the node's
         merged-tally evaluations bypass Fvoting's entry points *)
  c_vblocking_checks : Obs.Metrics.counter option;
}

type state = {
  cfg : config;
  obs : node_obs;
  fv : Fvoting.t;
  known_slices : Fbqs.Quorum.system ref;
      (* slice declarations learned from envelopes, own included *)
  mutable peers : Pid.Set.t;
  mutable seen : Msg.Set.t;  (* envelope dedup for flooding *)
  mutable sent : Msg.t list;  (* own envelopes, newest first, for syncs *)
  mutable candidates : Value.t list;
  mutable current : Ballot.t option;
  mutable high_prepared : Ballot.t option;  (* highest confirmed prepared *)
  mutable decided : decision option;
  mutable nom_round : int;  (* leader-priority nomination round *)
}

let make_obs ?metrics ?trace () =
  let c name = Option.map (fun r -> Obs.Metrics.counter r name) metrics in
  {
    trace;
    c_votes = c "scp_votes";
    c_accepts = c "scp_accepts";
    c_confirms = c "scp_confirms";
    c_ballots = c "scp_ballots_entered";
    c_nom_rounds = c "scp_nomination_rounds";
    c_decides = c "scp_decisions";
    c_quorum_checks = c "scp_quorum_checks";
    c_vblocking_checks = c "scp_vblocking_checks";
  }

let bump = function Some c -> Obs.Metrics.incr c | None -> ()

let obs_event st ctx name fields =
  match st.obs.trace with
  | None -> ()
  | Some sink ->
      Obs.Trace.emit sink ~time:(Engine.now ctx) ~scope:"scp" ~name
        (("node", Obs.Json.Int st.cfg.self) :: fields)

let stmt_field stmt =
  [ ("stmt", Obs.Json.String (Format.asprintf "%a" Statement.pp stmt)) ]

let make_state ?metrics ?trace cfg =
  let known_slices = ref (Pid.Map.singleton cfg.self cfg.my_slices) in
  {
    cfg;
    obs = make_obs ?metrics ?trace ();
    fv =
      Fvoting.create ?metrics ~self:cfg.self
        ~system:(fun () -> !known_slices)
        ();
    known_slices;
    peers = Pid.Set.remove cfg.self cfg.initial_peers;
    seen = Msg.Set.empty;
    sent = [];
    candidates = [];
    current = None;
    high_prepared = None;
    decided = None;
    nom_round = 1;
  }

(* The leader set for the current round: the [nom_round]
   highest-priority members of the slice domain (self included), so
   leader sets grow round by round and eventually cover someone alive
   and someone shared with every peer. *)
let leaders st =
  let domain =
    Pid.Set.add st.cfg.self (Fbqs.Slice.domain st.cfg.my_slices)
  in
  let ranked =
    List.sort
      (fun a b -> Int.compare (priority b) (priority a))
      (Pid.Set.elements domain)
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  Pid.Set.of_list (take st.nom_round ranked)

let nomination_active st = st.candidates = []

(* ---- outgoing traffic ------------------------------------------------ *)

let broadcast st ctx (env : Msg.t) =
  st.seen <- Msg.Set.add env st.seen;
  Pid.Set.iter (fun j -> Engine.send ctx j env) st.peers

let emit_own st ctx env =
  st.sent <- env :: st.sent;
  broadcast st ctx env

let relay st ctx ~src (env : Msg.t) =
  Pid.Set.iter
    (fun j ->
      if not (Pid.equal j src || Pid.equal j env.origin) then
        Engine.send ctx j env)
    st.peers

(* A newly met peer gets our whole history so that late joiners (e.g.
   sink members contacted by unknown non-sink members) can serve as
   quorum witnesses for them. *)
let sync_to st ctx j = List.iter (fun env -> Engine.send ctx j env) st.sent

(* ---- local voting actions ------------------------------------------- *)

let vote st ctx stmt =
  let tl = Fvoting.tally st.fv stmt in
  if not tl.i_voted then begin
    Fvoting.set_voted st.fv stmt;
    Fvoting.record_vote st.fv stmt st.cfg.self;
    bump st.obs.c_votes;
    obs_event st ctx "vote" (stmt_field stmt);
    emit_own st ctx (Msg.vote st.cfg.self ~slices:st.cfg.my_slices stmt)
  end

let accept st ctx stmt =
  Fvoting.mark_accepted st.fv stmt;
  Fvoting.record_accept st.fv stmt st.cfg.self;
  bump st.obs.c_accepts;
  obs_event st ctx "accept" (stmt_field stmt);
  emit_own st ctx (Msg.accept st.cfg.self ~slices:st.cfg.my_slices stmt)

(* ---- prepared-statement tallies with counter subsumption ------------- *)

(* A vote for Prepare (n', x) with n' >= n supports Prepare (n, x): the
   higher prepare aborts strictly more ballots. Concrete SCP messages
   carry ballot ranges; here we merge tallies at evaluation time. *)
let merged_sets st stmt =
  match stmt with
  | Statement.Prepare b ->
      List.fold_left
        (fun (voters, acceptors) s ->
          match s with
          | Statement.Prepare b'
            when Ballot.compatible b b' && b'.Ballot.counter >= b.Ballot.counter
            ->
              let tl = Fvoting.tally st.fv s in
              ( Pid.Set.union voters tl.voters,
                Pid.Set.union acceptors tl.acceptors )
          | _ -> (voters, acceptors))
        (Pid.Set.empty, Pid.Set.empty)
        (Fvoting.statements st.fv)
  | _ ->
      let tl = Fvoting.tally st.fv stmt in
      (tl.voters, tl.acceptors)

let member_of_quorum st s =
  bump st.obs.c_quorum_checks;
  Pid.Set.mem st.cfg.self
    (Fbqs.Quorum.greatest_quorum_within !(st.known_slices) s)

(* Accepting a statement is forbidden when we already accepted a
   contradicting one: prepare(b) aborts lower incompatible ballots, so
   it contradicts their commits, and vice versa. *)
let contradicts_accepted st stmt =
  let accepted s = (Fvoting.tally st.fv s).i_accepted in
  match stmt with
  | Statement.Prepare b ->
      List.exists
        (fun s ->
          match s with
          | Statement.Commit b' ->
              accepted s && Ballot.less_and_incompatible b' b
          | _ -> false)
        (Fvoting.statements st.fv)
  | Statement.Commit b ->
      List.exists
        (fun s ->
          match s with
          | Statement.Prepare b' ->
              accepted s && Ballot.less_and_incompatible b b'
          | _ -> false)
        (Fvoting.statements st.fv)
  | Statement.Nominate _ -> false

let can_accept st stmt =
  let tl = Fvoting.tally st.fv stmt in
  (not tl.i_accepted)
  && (not (contradicts_accepted st stmt))
  &&
  let voters, acceptors = merged_sets st stmt in
  member_of_quorum st voters
  ||
  (bump st.obs.c_vblocking_checks;
   Fbqs.Quorum.is_v_blocking !(st.known_slices) st.cfg.self acceptors)

let can_confirm st stmt =
  let tl = Fvoting.tally st.fv stmt in
  (not tl.i_confirmed)
  &&
  let _, acceptors = merged_sets st stmt in
  member_of_quorum st acceptors

(* ---- ballot machinery ------------------------------------------------ *)

let arm_ballot_timer st ctx =
  match st.current with
  | Some b ->
      Engine.set_timer ctx
        ~delay:(st.cfg.ballot_timeout * b.Ballot.counter)
        (Printf.sprintf "ballot:%d" b.Ballot.counter)
  | None -> ()

let next_ballot_value st =
  match st.high_prepared with
  | Some h -> h.Ballot.value
  | None -> Value.combine st.candidates

let enter_ballot st ctx b =
  st.current <- Some b;
  bump st.obs.c_ballots;
  obs_event st ctx "enter_ballot"
    [ ("ballot", Obs.Json.String (Format.asprintf "%a" Ballot.pp b)) ];
  vote st ctx (Statement.Prepare b);
  arm_ballot_timer st ctx

(* May we vote to commit b? Not if we asserted any higher incompatible
   prepare (which voted to abort b). *)
let may_vote_commit st b =
  List.for_all
    (fun s ->
      match s with
      | Statement.Prepare b' ->
          let tl = Fvoting.tally st.fv s in
          (not (tl.i_voted || tl.i_accepted))
          || not (Ballot.less_and_incompatible b b')
      | _ -> true)
    (Fvoting.statements st.fv)

let on_confirmed st ctx stmt =
  match stmt with
  | Statement.Nominate v ->
      if not (List.exists (Value.equal v) st.candidates) then begin
        st.candidates <- v :: st.candidates;
        if st.current = None then
          enter_ballot st ctx (Ballot.make 1 (Value.combine st.candidates))
      end
  | Statement.Prepare b ->
      (match st.high_prepared with
      | Some h when Ballot.compare h b >= 0 -> ()
      | Some _ | None -> st.high_prepared <- Some b);
      if may_vote_commit st b then vote st ctx (Statement.Commit b)
  | Statement.Commit b ->
      if st.decided = None then begin
        let d =
          { value = b.Ballot.value; ballot = b; time = Engine.now ctx }
        in
        st.decided <- Some d;
        bump st.obs.c_decides;
        obs_event st ctx "decide"
          [
            ("value", Obs.Json.String (Format.asprintf "%a" Value.pp d.value));
            ( "ballot",
              Obs.Json.String (Format.asprintf "%a" Ballot.pp d.ballot) );
          ];
        st.cfg.on_decide st.cfg.self d
      end

(* Run accept/confirm transitions to a fixpoint: each acceptance can
   unlock further acceptances and confirmations. *)
let rec progress st ctx =
  let changed = ref false in
  List.iter
    (fun stmt ->
      if can_accept st stmt then begin
        accept st ctx stmt;
        changed := true
      end;
      if can_confirm st stmt then begin
        Fvoting.mark_confirmed st.fv stmt;
        bump st.obs.c_confirms;
        obs_event st ctx "confirm" (stmt_field stmt);
        on_confirmed st ctx stmt;
        changed := true
      end)
    (Fvoting.statements st.fv);
  if !changed then progress st ctx

(* Catching up: accepting a prepare above our ballot pulls us onto it
   (the v-blocking "jump" of concrete SCP). *)
let maybe_jump st ctx =
  List.iter
    (fun stmt ->
      match stmt with
      | Statement.Prepare b ->
          let accepted = (Fvoting.tally st.fv stmt).i_accepted in
          let above_current =
            match st.current with
            | None -> true
            | Some cur -> Ballot.compare b cur > 0
          in
          if accepted && above_current then enter_ballot st ctx b
      | Statement.Nominate _ | Statement.Commit _ -> ())
    (Fvoting.statements st.fv)

(* ---- the behaviour ---------------------------------------------------- *)

(* Nominate our own value if we are a current leader, and arm the
   round timer (leader-priority strategy only). *)
let start_nomination st ctx =
  match st.cfg.nomination with
  | Echo_all -> vote st ctx (Statement.Nominate st.cfg.initial_value)
  | Leader_priority timeout ->
      if Pid.Set.mem st.cfg.self (leaders st) then
        vote st ctx (Statement.Nominate st.cfg.initial_value);
      Engine.set_timer ctx ~delay:timeout
        (Printf.sprintf "nom:%d" st.nom_round)

(* A nomination round timed out without producing a candidate: admit
   the next leader and second any value the enlarged leader set already
   voted for. *)
let bump_nomination_round st ctx timeout =
  st.nom_round <- st.nom_round + 1;
  bump st.obs.c_nom_rounds;
  obs_event st ctx "nomination_round" [ ("round", Obs.Json.Int st.nom_round) ];
  let ls = leaders st in
  if Pid.Set.mem st.cfg.self ls then
    vote st ctx (Statement.Nominate st.cfg.initial_value);
  List.iter
    (fun stmt ->
      match stmt with
      | Statement.Nominate _ ->
          let tl = Fvoting.tally st.fv stmt in
          if not (Pid.Set.is_empty (Pid.Set.inter tl.voters ls)) then
            vote st ctx stmt
      | Statement.Prepare _ | Statement.Commit _ -> ())
    (Fvoting.statements st.fv);
  Engine.set_timer ctx
    ~delay:(timeout * st.nom_round)
    (Printf.sprintf "nom:%d" st.nom_round)

let behavior ?metrics ?trace cfg : Msg.t Engine.behavior =
  let st = make_state ?metrics ?trace cfg in
  let on_start ctx = start_nomination st ctx in
  let on_message ctx ~src (env : Msg.t) =
    if not (Pid.Set.mem src st.peers) && not (Pid.equal src cfg.self) then begin
      st.peers <- Pid.Set.add src st.peers;
      sync_to st ctx src
    end;
    if not (Msg.Set.mem env st.seen) then begin
      st.seen <- Msg.Set.add env st.seen;
      (* Learn the origin's declared slices; a later conflicting
         declaration (equivocation, only Byzantine nodes do it) is
         ignored — first writer wins, as with a pinned certificate. *)
      if not (Pid.Map.mem env.origin !(st.known_slices)) then
        st.known_slices :=
          Pid.Map.add env.origin env.slices !(st.known_slices);
      relay st ctx ~src env;
      (match env.kind with
      | Msg.Vote ->
          Fvoting.record_vote st.fv env.stmt env.origin;
          (* Nomination echo: until we have a candidate, second
             nominated values — all of them, or only the current
             leaders', depending on the strategy. *)
          (match env.stmt with
          | Statement.Nominate _ when nomination_active st -> (
              match st.cfg.nomination with
              | Echo_all -> vote st ctx env.stmt
              | Leader_priority _ ->
                  if Pid.Set.mem env.origin (leaders st) then
                    vote st ctx env.stmt)
          | _ -> ())
      | Msg.Accept -> Fvoting.record_accept st.fv env.stmt env.origin);
      progress st ctx;
      maybe_jump st ctx
    end
  in
  let on_timer ctx tag =
    match st.cfg.nomination with
    | Leader_priority timeout
      when tag = Printf.sprintf "nom:%d" st.nom_round
           && nomination_active st && st.decided = None ->
        bump_nomination_round st ctx timeout
    | _ -> (
        match (st.current, st.decided) with
        | Some cur, None
          when tag = Printf.sprintf "ballot:%d" cur.Ballot.counter ->
            let b =
              Ballot.make (cur.Ballot.counter + 1) (next_ballot_value st)
            in
            enter_ballot st ctx b;
            progress st ctx
        | _ -> ())
  in
  { on_start; on_message; on_timer }

(* ---- byzantine variants ---------------------------------------------- *)

let silent : Msg.t Engine.behavior = Engine.idle_behavior

let accept_forger ~self ~slices ~peers stmts : Msg.t Engine.behavior =
  {
    Engine.idle_behavior with
    on_start =
      (fun ctx ->
        List.iter
          (fun stmt ->
            Pid.Set.iter
              (fun j -> Engine.send ctx j (Msg.accept self ~slices stmt))
              (Pid.Set.remove self peers))
          stmts);
  }

let nomination_equivocator ~self ~slices ~split ~value_a ~value_b ~peers :
    Msg.t Engine.behavior =
  {
    Engine.idle_behavior with
    on_start =
      (fun ctx ->
        Pid.Set.iter
          (fun j ->
            let v = if split j then value_a else value_b in
            Engine.send ctx j (Msg.vote self ~slices (Statement.Nominate v)))
          (Pid.Set.remove self peers));
  }

(* Declares [slices_a] to peers satisfying [split] and [slices_b] to
   the rest while voting to nominate [value] — slice-level
   equivocation, possible because declarations are not signed
   statements about a single global object. Correct receivers pin the
   first declaration they see. *)
let slice_equivocator ~self ~slices_a ~slices_b ~split ~value ~peers :
    Msg.t Engine.behavior =
  {
    Engine.idle_behavior with
    on_start =
      (fun ctx ->
        Pid.Set.iter
          (fun j ->
            let slices = if split j then slices_a else slices_b in
            Engine.send ctx j
              (Msg.vote self ~slices (Statement.Nominate value)))
          (Pid.Set.remove self peers));
  }
