(* Domain-pool backend for {!Exec} — the OCaml 5 side of the dune
   version switch. A rule in [lib/sim/dune] copies this file to
   [exec_domains.ml] when the compiler has domains; on 4.14 the
   identically-signed [exec_domains_stub.ml] takes its place, so
   {!Exec} never mentions [Domain] directly and compiles unchanged on
   both generations.

   The protocol is deliberately untyped-but-narrow: the caller hands us
   a [do_job : int -> unit] closure (which reads its input and writes
   its result into caller-owned slot arrays — no serialization, no
   result transport) plus the job count, and we hand back the failures.
   Keeping ['a]/['b] out of this interface keeps the stub trivial.

   Since the persistent-pool rewrite the domains are spawned {e once
   per process} (lazily, on the first batch that wants them) and parked
   on a condition variable between batches instead of being spawned and
   joined per call: a batch submission publishes a [batch] record,
   broadcasts the parked workers awake, runs the caller as one of the
   workers, and waits for the joiners to drain the chunk counter. The
   spawn cost is paid once; a warm [map] is pure dispatch. *)

let available = true

(* The backend's global lock, used by {!Exec} to serialize Core.Cache
   bookkeeping across domains. Lives here (not in exec.ml) because
   [Mutex] is stdlib on OCaml 5 but a separate threads library on
   4.14 — the stub's [locked] is the identity, so exec.ml never names
   Mutex and compiles on both generations. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ------------------------------------------------------------------ *)
(* The persistent pool                                                *)
(* ------------------------------------------------------------------ *)

(* One submitted batch. Claiming off [next] is monotonic: a worker
   takes the chunk [next, next+chunk) and advances the counter under
   the pool mutex, so every index below any claimed index has been
   claimed — which is what lets {!Exec} report the minimum-index
   failure deterministically. [joined]/[active] bound participation:
   a parked worker may enter only while the batch still has unclaimed
   work ([next < n]) and a free seat ([joined < max_workers]), and the
   submitter returns once [active] drains to zero. *)
type batch = {
  do_job : int -> unit;
  n : int;
  chunk : int;
  max_workers : int;
  mutable joined : int;  (* workers (incl. the submitter) that entered *)
  mutable active : int;  (* workers currently running chunks *)
  mutable next : int;  (* next unclaimed job index *)
  mutable failures : (int * string) list;
}

(* Pool state, all guarded by [m]. [submit_lock] serializes whole
   batches (concurrent submitters — e.g. daemon clients — queue rather
   than interleave chunk counters), and orders spawn/shutdown against
   submissions. *)
let m = Mutex.create ()
let work_cv = Condition.create ()
let done_cv = Condition.create ()
let current : batch option ref = ref None
let parked : unit Domain.t list ref = ref []
let stopping = ref false
let peak = ref 0
let batches = ref 0
let submit_lock = Mutex.create ()
let teardown_registered = ref false

let take b =
  Mutex.lock m;
  let i = b.next in
  if i < b.n then b.next <- i + b.chunk;
  Mutex.unlock m;
  if i < b.n then Some (i, min b.n (i + b.chunk)) else None

let record b i msg =
  Mutex.lock m;
  b.failures <- (i, msg) :: b.failures;
  Mutex.unlock m

let run_batch b =
  let rec loop () =
    match take b with
    | None -> ()
    | Some (start, stop) ->
        (* Run the chunk in order, abandoning it at the first failure
           — exactly the prefix a sequential map would have computed
           before raising. *)
        let rec run i =
          if i < stop then
            match b.do_job i with
            | () -> run (i + 1)
            | exception e ->
                let bt = Printexc.get_backtrace () in
                record b i
                  (Printexc.to_string e
                  ^ if bt = "" then "" else "\n" ^ String.trim bt)
        in
        run start;
        loop ()
  in
  loop ()

(* A parked worker's whole life: sleep on [work_cv]; when a batch with
   a free seat and unclaimed work is published, join it, drain chunks,
   signal the submitter if last out, park again. The join guard is
   what makes rejoining impossible: a worker only leaves [run_batch]
   once [next >= n], at which point the guard rejects every worker for
   the rest of the batch's life. *)
let worker () =
  Mutex.lock m;
  let rec idle () =
    if !stopping then ()
    else
      match !current with
      | Some b when b.joined < b.max_workers && b.next < b.n ->
          b.joined <- b.joined + 1;
          b.active <- b.active + 1;
          Mutex.unlock m;
          run_batch b;
          Mutex.lock m;
          b.active <- b.active - 1;
          if b.active = 0 then Condition.broadcast done_cv;
          idle ()
      | _ ->
          Condition.wait work_cv m;
          idle ()
  in
  idle ();
  Mutex.unlock m

let read_stat r =
  Mutex.lock m;
  let v = !r in
  Mutex.unlock m;
  v

let pool_size () =
  Mutex.lock m;
  let k = List.length !parked in
  Mutex.unlock m;
  k

let pool_peak () = read_stat peak
let pool_batches () = read_stat batches

let shutdown_locked () =
  Mutex.lock m;
  let ws = !parked in
  parked := [];
  if ws <> [] then begin
    stopping := true;
    Condition.broadcast work_cv;
    Mutex.unlock m;
    List.iter Domain.join ws;
    Mutex.lock m;
    (* Reset so a later batch can respawn a fresh pool. *)
    stopping := false
  end;
  Mutex.unlock m

let shutdown () =
  Mutex.lock submit_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock submit_lock) shutdown_locked

(* Called under [submit_lock]. Spawn cap as before the persistent
   rewrite: domains are not cheap threads — every minor collection is
   a stop-the-world rendezvous of all of them, so running more than
   the hardware can schedule turns the GC barrier into a spin-storm
   (measured 3-5x slower than sequential on a 1-core container). *)
let ensure_workers wanted =
  let cap = max 0 (Domain.recommended_domain_count () - 1) in
  let wanted = min wanted cap in
  let have = pool_size () in
  if have < wanted then begin
    if not !teardown_registered then begin
      teardown_registered := true;
      (* [try_lock]: if the process dies while a submission holds the
         lock, skip the orderly teardown rather than deadlock — exit
         tears the domains down anyway. *)
      Stdlib.at_exit (fun () ->
          if Mutex.try_lock submit_lock then
            Fun.protect
              ~finally:(fun () -> Mutex.unlock submit_lock)
              shutdown_locked)
    end;
    let fresh = List.init (wanted - have) (fun _ -> Domain.spawn worker) in
    Mutex.lock m;
    parked := fresh @ !parked;
    peak := max !peak (List.length !parked);
    Mutex.unlock m
  end

let map_chunked ~chunk ~domains do_job n =
  let domains = min domains (max 1 (Domain.recommended_domain_count ())) in
  let b =
    {
      do_job;
      n;
      chunk;
      max_workers = domains;
      joined = 1;
      active = 1;
      next = 0;
      failures = [];
    }
  in
  if domains <= 1 then begin
    (* No helpers to wake (1-core clamp): run inline, skipping the
       condition-variable hand-off entirely so warm-pool dispatch
       costs what the old spawn-free path did. *)
    Mutex.lock m;
    incr batches;
    Mutex.unlock m;
    run_batch b;
    b.failures
  end
  else begin
    Mutex.lock submit_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock submit_lock) @@ fun () ->
    ensure_workers (domains - 1);
    Mutex.lock m;
    incr batches;
    current := Some b;
    Condition.broadcast work_cv;
    Mutex.unlock m;
    (* The submitter is a worker too: [domains] chunk streams cost
       [domains - 1] parked helpers. *)
    run_batch b;
    Mutex.lock m;
    b.active <- b.active - 1;
    while b.active > 0 do
      Condition.wait done_cv m
    done;
    current := None;
    Mutex.unlock m;
    b.failures
  end

(* ------------------------------------------------------------------ *)
(* Detached tasks (daemon client handlers)                            *)
(* ------------------------------------------------------------------ *)

(* Detached tasks are IO-bound (a daemon connection blocked in [read]
   most of its life), so they run on dedicated domains outside the
   [recommended_domain_count] cap rather than occupying pool seats. *)
type task = unit Domain.t

let detach f = Domain.spawn f
let join_task t = Domain.join t
