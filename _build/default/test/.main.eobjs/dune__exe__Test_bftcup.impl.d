test/test_bftcup.ml: Alcotest Bftcup Builtin Generators Graphkit List Pid Protocol QCheck QCheck_alcotest Scp
