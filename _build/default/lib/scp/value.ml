module S = Set.Make (Int)

type t = S.t

let of_ints = S.of_list
let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let union = S.union
let combine = List.fold_left S.union S.empty

let compare a b =
  match Int.compare (S.cardinal a) (S.cardinal b) with
  | 0 -> S.compare a b
  | c -> c

let equal = S.equal

let pp ppf v =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (S.elements v)

let to_list = S.elements
