(* Domain-pool backend for {!Exec} — the OCaml 5 side of the dune
   version switch. A rule in [lib/sim/dune] copies this file to
   [exec_domains.ml] when the compiler has domains; on 4.14 the
   identically-signed [exec_domains_stub.ml] takes its place, so
   {!Exec} never mentions [Domain] directly and compiles unchanged on
   both generations.

   The protocol is deliberately untyped-but-narrow: the caller hands us
   a [do_job : int -> unit] closure (which reads its input and writes
   its result into caller-owned slot arrays — no serialization, no
   result transport) plus the job count, and we hand back the failures.
   Keeping ['a]/['b] out of this interface keeps the stub trivial. *)

let available = true

(* The backend's global lock, used by {!Exec} to serialize Core.Cache
   bookkeeping across domains. Lives here (not in exec.ml) because
   [Mutex] is stdlib on OCaml 5 but a separate threads library on
   4.14 — the stub's [locked] is the identity, so exec.ml never names
   Mutex and compiles on both generations. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let map_chunked ~chunk ~domains do_job n =
  (* Domains are not cheap threads: every minor collection is a
     stop-the-world rendezvous of all of them, so running more domains
     than the hardware can schedule simultaneously turns the GC
     barrier into a spin-storm (measured 3-5x slower than sequential
     on a 1-core container). Cap at the runtime's recommendation —
     worker count never changes results, only wall-clock, so the cap
     is invisible to callers. *)
  let domains = min domains (max 1 (Domain.recommended_domain_count ())) in
  let m = Mutex.create () in
  (* Next unclaimed job index. Claiming is monotonic: a worker takes
     the chunk [next, next+chunk) and advances the counter under the
     mutex, so every index below any claimed index has been claimed —
     which is what lets {!Exec} report the minimum-index failure
     deterministically. *)
  let next = ref 0 in
  let failures : (int * string) list ref = ref [] in
  let take () =
    Mutex.lock m;
    let i = !next in
    if i < n then next := i + chunk;
    Mutex.unlock m;
    if i < n then Some (i, min n (i + chunk)) else None
  in
  let record i msg =
    Mutex.lock m;
    failures := (i, msg) :: !failures;
    Mutex.unlock m
  in
  let worker () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some (start, stop) ->
          (* Run the chunk in order, abandoning it at the first failure
             — exactly the prefix a sequential map would have computed
             before raising. *)
          let rec run i =
            if i < stop then
              match do_job i with
              | () -> run (i + 1)
              | exception e ->
                  let bt = Printexc.get_backtrace () in
                  record i
                    (Printexc.to_string e
                    ^ if bt = "" then "" else "\n" ^ String.trim bt)
          in
          run start;
          loop ()
    in
    loop ()
  in
  let spawned =
    Array.init (max 0 (domains - 1)) (fun _ -> Domain.spawn worker)
  in
  (* The calling domain is a worker too: [domains] jobs-in-flight costs
     [domains - 1] spawns. *)
  worker ();
  Array.iter Domain.join spawned;
  !failures
