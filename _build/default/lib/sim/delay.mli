(** Message delay models.

    The system model is partial synchrony (Dwork, Lynch, Stockmeyer): an
    unknown global stabilization time GST before which the adversary
    controls message delays, and an (unknown to the protocol) bound
    [delta] that holds after GST. The simulator makes GST and [delta]
    explicit so executions are reproducible; protocols never read
    them. *)

open Graphkit

type t

val synchronous : delta:int -> t
(** Every message takes between 1 and [delta] ticks, always. *)

val partial_synchrony : gst:int -> delta:int -> seed:int -> t
(** Before GST the adversary delays each message by a random amount, but
    never beyond [gst + delta] (the classic DLS guarantee that messages
    sent before GST arrive by GST + delta). From GST on, delays are
    uniform in [1, delta]. *)

val targeted :
  gst:int ->
  delta:int ->
  seed:int ->
  slow:(Pid.t -> Pid.t -> bool) ->
  t
(** Like {!partial_synchrony}, but links for which [slow src dst] holds
    are delayed to the maximum ([gst + delta - now]) before GST — the
    scheduling power used to drive partitioned quorums into deciding
    independently (Theorem 2's executions). *)

val random_partition : gst:int -> delta:int -> seed:int -> n:int -> t
(** A schedule-fuzzing adversary: draws a random bipartition of the ids
    [0 .. n-1] (by seed) and stalls all cross-partition traffic to the
    pre-GST deadline, like {!targeted}. Used to hunt for
    safety violations over many seeds: systems with intertwined quorums
    must survive every such schedule. *)

val delay_of : t -> now:int -> src:Pid.t -> dst:Pid.t -> int
(** The delivery delay (at least 1 tick) for a message sent at [now]. *)

val gst : t -> int
(** The model's GST (0 for {!synchronous}). *)
