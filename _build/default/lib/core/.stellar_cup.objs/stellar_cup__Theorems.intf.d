lib/core/theorems.mli: Cup Digraph Fbqs Format Graphkit Pid
