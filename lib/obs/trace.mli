(** Structured trace events with logical-time stamps.

    A trace is a stream of typed events, each stamped with the
    simulator's logical clock and a per-sink sequence number assigned
    at emission. Events never carry wall-clock readings, so for a fixed
    seed two runs emit byte-identical streams — traces double as golden
    files in tests and as CI artifacts.

    Sinks are pluggable: a sink fans each event out to its subscribers
    (a JSONL writer, an in-memory recorder, a live aggregator).
    Instrumented code holds a [sink option] and skips all field
    construction when tracing is off. *)

type event = {
  time : int;  (** logical simulation time at emission *)
  seq : int;  (** per-sink emission index, starting at 0 *)
  scope : string;  (** emitting subsystem: "engine", "scp", "cup", ... *)
  name : string;  (** event type within the scope: "send", "vote", ... *)
  fields : (string * Json.t) list;  (** typed payload, order preserved *)
}

type sink

val create : unit -> sink
(** A sink with no subscribers (events are still sequenced). *)

val subscribe : sink -> (event -> unit) -> unit
(** Adds a subscriber; subscribers run in subscription order at every
    {!emit}. *)

val emit :
  sink -> time:int -> scope:string -> name:string ->
  (string * Json.t) list -> unit
(** Stamps the event with the next sequence number and fans it out. *)

val event_count : sink -> int
(** Events emitted so far (= the next sequence number). *)

val event_to_json : event -> Json.t
(** [{"t": time, "seq": seq, "scope": scope, "ev": name, ...fields}] —
    fields are spliced into the same object, in emission order. *)

val event_to_line : event -> string
(** {!event_to_json} rendered compactly, without the trailing
    newline. *)

val to_buffer : Buffer.t -> sink
(** A fresh sink whose events are appended to the buffer as JSONL. *)

val to_channel : out_channel -> sink
(** A fresh sink writing JSONL to the channel (caller closes it). *)

val recording : unit -> sink * (unit -> event list)
(** A fresh sink plus an accessor returning all events emitted so far,
    in order — the in-memory subscriber the unit tests use. *)
