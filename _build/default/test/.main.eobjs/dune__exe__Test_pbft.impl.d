test/test_pbft.ml: Alcotest Bftcup Delay Engine Graphkit List Pbft Pid QCheck QCheck_alcotest Scp Simkit
