(** Domain-pool backend for {!Exec} (OCaml 5 variant).

    Copied to [exec_domains.mli] by a dune rule when the compiler
    supports domains; see [exec_domains_stub.mli] for the 4.14 side.
    Both variants expose exactly this signature.

    The pool is {e persistent}: domains are spawned once per process
    (lazily, on the first batch that wants them, capped at
    [Domain.recommended_domain_count () - 1] helpers) and parked on a
    condition variable between batches. *)

val available : bool
(** Whether this runtime can actually spawn domains ([true] here;
    [false] in the stub). *)

val locked : (unit -> 'a) -> 'a
(** Runs the thunk inside the backend's global lock — the critical
    section {!Exec} arms {!Core.Cache} with. The stub's version is the
    identity: without domains there is nothing to race. *)

val map_chunked :
  chunk:int -> domains:int -> (int -> unit) -> int -> (int * string) list
(** [map_chunked ~chunk ~domains do_job n] runs [do_job i] for every
    [i] in [0..n-1] across up to [domains] workers (the caller counts
    as one; the rest come from the parked pool, spawned on first use),
    handing out chunks of [chunk] consecutive indices from a
    mutex-protected counter. Returns the failures as
    [(job index, exception text)] pairs, in no particular order; a
    failure abandons the rest of its chunk only. Blocks until every
    participating worker has drained back to the pool — workers are
    parked, not joined, between calls. Concurrent submissions are
    serialized, each batch running with its own chunk counter. *)

val shutdown : unit -> unit
(** Joins and discards every parked domain. Idempotent; a later batch
    lazily respawns a fresh pool. Also registered [at_exit] on first
    spawn, so a process never hangs on parked domains. *)

val pool_size : unit -> int
(** Currently parked worker domains (excludes submitters). *)

val pool_peak : unit -> int
(** High-water mark of {!pool_size} over the process lifetime. *)

val pool_batches : unit -> int
(** Batches executed by this backend (including 1-worker inline
    batches on machines where the domain cap clamps to the caller). *)

type task
(** A detached unit of work on its own domain — the daemon's
    per-client handlers. Not a pool seat: tasks are IO-bound and
    uncapped. *)

val detach : (unit -> unit) -> task
(** Starts [f] on a fresh domain (the stub runs it inline before
    returning, degrading gracefully to sequential behaviour). *)

val join_task : task -> unit
(** Blocks until the task's thunk has returned. *)
