lib/scp/fvoting.ml: Fbqs Graphkit List Pid Statement
